package abnn2

// Telemetry facade: the observability layer in internal/trace and
// internal/transport, re-exported for users of the public API. Tracing
// is enabled per endpoint via Config.Trace; traffic metering is always
// on and exposed through Client.Stats, Server.Stats, and the Stats
// return of Serve.

import (
	"io"

	"abnn2/internal/trace"
	"abnn2/internal/transport"
)

// Stats aggregates one endpoint's traffic totals. For a Client or
// Server, BytesAB is what that endpoint sent and BytesBA what it
// received; over a lossless transport the two parties' views mirror
// each other.
type Stats = transport.Stats

// Meter collects Stats for a connection; see MeteredPipe.
type Meter = transport.Meter

// TraceSpan is one completed protocol phase: its name ("setup",
// "offline", "triplets", "bank", "bank-refill", "batch", "online",
// "input", "matmul", "relu", "pool", "argmax", "output", "idle"),
// nesting (root spans partition a
// session's traffic), layer/batch attribution, wall time, and the
// bytes, messages, and flights it moved.
type TraceSpan = trace.Span

// TraceSink receives completed spans; set one as Config.Trace. Emit may
// be called from the protocol goroutine and must not block for long.
type TraceSink = trace.Sink

// TraceCollector is an in-memory TraceSink for tests and post-run
// analysis.
type TraceCollector = trace.Collector

// NewTraceCollector returns an empty in-memory sink.
func NewTraceCollector() *TraceCollector { return &trace.Collector{} }

// NewTraceWriter returns a sink streaming spans to w as JSON lines —
// the dump format of the CLIs' -trace-out flags, readable back with
// ReadTrace.
func NewTraceWriter(w io.Writer) TraceSink { return trace.NewJSONL(w) }

// MultiTraceSink fans spans out to several sinks; nils are skipped.
func MultiTraceSink(sinks ...TraceSink) TraceSink { return trace.Multi(sinks...) }

// ReadTrace parses a JSONL span dump produced by NewTraceWriter.
func ReadTrace(r io.Reader) ([]TraceSpan, error) { return trace.ReadJSONL(r) }

// TraceRoots filters a dump down to its root spans, which partition the
// session's traffic (summing their bytes equals the endpoint's Stats).
func TraceRoots(spans []TraceSpan) []TraceSpan { return trace.Roots(spans) }

// TraceTable renders a per-phase/per-layer breakdown of a span dump —
// the offline/online communication and latency split of the paper's
// tables — as a fixed-width text table.
func TraceTable(spans []TraceSpan) string {
	return trace.FormatTable(trace.Summarize(spans))
}

// TraceFlight is one wire message stamped at an endpoint: direction,
// per-direction sequence number, size, and the endpoint's wall-clock
// stamp. Both parties stamp every flight, so two dumps of the same
// session merge into a cross-party timeline (see BuildTimeline).
type TraceFlight = trace.Flight

// Timeline is a merged two-party account of one session: both parties'
// flights reconciled onto the server clock, with every interval of the
// session's wall time attributed to compute, wire, admission queue, or
// bank wait. Produced by BuildTimeline, rendered by FormatTimeline.
type Timeline = trace.Timeline

// TimelineInterval is one attributed slice of a Timeline.
type TimelineInterval = trace.Interval

// ReadTraceDump parses a JSONL dump produced by NewTraceWriter,
// returning both spans and flight stamps.
func ReadTraceDump(r io.Reader) ([]TraceSpan, []TraceFlight, error) {
	return trace.ReadDump(r)
}

// BuildTimeline merges client- and server-side spans and flights of one
// session into a reconciled cross-party timeline: it estimates the clock
// offset from matched flight pairs, shifts client stamps onto the server
// clock, and attributes every interval of the session's wall time.
func BuildTimeline(session uint64, spans []TraceSpan, flights []TraceFlight) (*Timeline, error) {
	return trace.BuildTimeline(session, spans, flights)
}

// FormatTimeline renders a Timeline as a fixed-width text report.
func FormatTimeline(tl *Timeline) string { return trace.FormatTimeline(tl) }

// TraceSessions lists the session ids for which flights from both
// parties are present in a merged dump — the sessions BuildTimeline can
// reconcile.
func TraceSessions(flights []TraceFlight) []uint64 { return trace.Sessions(flights) }

// FlightRecorder is a bounded in-memory per-session ring of spans and
// flights — the always-on flight recorder behind the serving runtime's
// /debug/flightrecorder endpoint and anomaly dumps. It implements
// TraceSink, so it can also tee from Config.Trace via MultiTraceSink.
type FlightRecorder = trace.Recorder

// NewFlightRecorder returns a recorder keeping the last perSession
// events for each of the last maxSessions sessions (<=0 selects the
// defaults: 256 events, 64 sessions).
func NewFlightRecorder(perSession, maxSessions int) *FlightRecorder {
	return trace.NewRecorder(perSession, maxSessions)
}

// Default flight-recorder sizing.
const (
	DefaultRecorderEvents   = trace.DefaultRecorderEvents
	DefaultRecorderSessions = trace.DefaultRecorderSessions
)
