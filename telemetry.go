package abnn2

// Telemetry facade: the observability layer in internal/trace and
// internal/transport, re-exported for users of the public API. Tracing
// is enabled per endpoint via Config.Trace; traffic metering is always
// on and exposed through Client.Stats, Server.Stats, and the Stats
// return of Serve.

import (
	"io"

	"abnn2/internal/trace"
	"abnn2/internal/transport"
)

// Stats aggregates one endpoint's traffic totals. For a Client or
// Server, BytesAB is what that endpoint sent and BytesBA what it
// received; over a lossless transport the two parties' views mirror
// each other.
type Stats = transport.Stats

// Meter collects Stats for a connection; see MeteredPipe.
type Meter = transport.Meter

// TraceSpan is one completed protocol phase: its name ("setup",
// "offline", "triplets", "bank", "bank-refill", "batch", "online",
// "input", "matmul", "relu", "pool", "argmax", "output", "idle"),
// nesting (root spans partition a
// session's traffic), layer/batch attribution, wall time, and the
// bytes, messages, and flights it moved.
type TraceSpan = trace.Span

// TraceSink receives completed spans; set one as Config.Trace. Emit may
// be called from the protocol goroutine and must not block for long.
type TraceSink = trace.Sink

// TraceCollector is an in-memory TraceSink for tests and post-run
// analysis.
type TraceCollector = trace.Collector

// NewTraceCollector returns an empty in-memory sink.
func NewTraceCollector() *TraceCollector { return &trace.Collector{} }

// NewTraceWriter returns a sink streaming spans to w as JSON lines —
// the dump format of the CLIs' -trace-out flags, readable back with
// ReadTrace.
func NewTraceWriter(w io.Writer) TraceSink { return trace.NewJSONL(w) }

// MultiTraceSink fans spans out to several sinks; nils are skipped.
func MultiTraceSink(sinks ...TraceSink) TraceSink { return trace.Multi(sinks...) }

// ReadTrace parses a JSONL span dump produced by NewTraceWriter.
func ReadTrace(r io.Reader) ([]TraceSpan, error) { return trace.ReadJSONL(r) }

// TraceRoots filters a dump down to its root spans, which partition the
// session's traffic (summing their bytes equals the endpoint's Stats).
func TraceRoots(spans []TraceSpan) []TraceSpan { return trace.Roots(spans) }

// TraceTable renders a per-phase/per-layer breakdown of a span dump —
// the offline/online communication and latency split of the paper's
// tables — as a fixed-width text table.
func TraceTable(spans []TraceSpan) string {
	return trace.FormatTable(trace.Summarize(spans))
}
