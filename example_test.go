package abnn2_test

import (
	"fmt"

	"abnn2"
)

// Example demonstrates the minimal train → quantize → secure-classify
// flow. Both parties run in one process over an in-memory pipe; in a real
// deployment each side holds one end of a TCP connection (see
// cmd/abnn2-server and cmd/abnn2-client).
func Example() {
	// The model owner trains and quantizes.
	ds := abnn2.SyntheticDataset(400, 42)
	train, test := ds.Split(0.9)
	model := abnn2.NewMLP(784, 16, 10)
	model.Train(train.Inputs, train.Labels, abnn2.TrainOptions{Epochs: 2})
	qm, err := model.Quantize("4(2,2)", 8)
	if err != nil {
		fmt.Println("quantize:", err)
		return
	}

	// Secure inference: the server never sees inputs, the client never
	// sees weights. Seeds fixed only so the example is deterministic.
	serverConn, clientConn := abnn2.Pipe()
	go abnn2.Serve(serverConn, qm, abnn2.Config{RingBits: 64, Seed: 1})
	client, err := abnn2.Dial(clientConn, qm.Arch(), abnn2.Config{RingBits: 64, Seed: 2})
	if err != nil {
		fmt.Println("dial:", err)
		return
	}
	classes, err := client.Classify(test.Inputs[:1])
	if err != nil {
		fmt.Println("classify:", err)
		return
	}
	fmt.Println("secure == plaintext:", classes[0] == qm.Predict(test.Inputs[0]))
	// Output: secure == plaintext: true
}

// ExampleClient_ClassifyPrivate shows the argmax finish: the client
// learns only the class index, never the score vector.
func ExampleClient_ClassifyPrivate() {
	ds := abnn2.SyntheticDataset(300, 7)
	train, test := ds.Split(0.9)
	model := abnn2.NewMLP(784, 12, 10)
	model.Train(train.Inputs, train.Labels, abnn2.TrainOptions{Epochs: 2})
	qm, err := model.Quantize("ternary", 8)
	if err != nil {
		fmt.Println("quantize:", err)
		return
	}
	serverConn, clientConn := abnn2.Pipe()
	go abnn2.Serve(serverConn, qm, abnn2.Config{RingBits: 64, Seed: 3})
	client, err := abnn2.Dial(clientConn, qm.Arch(), abnn2.Config{RingBits: 64, Seed: 4})
	if err != nil {
		fmt.Println("dial:", err)
		return
	}
	classes, err := client.ClassifyPrivate(test.Inputs[:1])
	if err != nil {
		fmt.Println("classify:", err)
		return
	}
	fmt.Println("matches plaintext:", classes[0] == qm.Predict(test.Inputs[0]))
	// Output: matches plaintext: true
}
