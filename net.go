package abnn2

import (
	"context"
	"fmt"
	"math/rand/v2"
	"net"
	"time"
)

// TCP dialing with capped, jittered exponential backoff. A freshly
// started server (or a listener bound an instant ago on a loaded
// machine) can reject the first connection attempts; retrying with
// backoff makes client startup robust without hanging on real failures —
// the context bounds the total wait. The jitter spreads out the retries
// of many clients dialing the same restarted server, so they do not
// reconnect as a thundering herd on the same backoff schedule.

const (
	dialInitialBackoff = 50 * time.Millisecond
	dialMaxBackoff     = 2 * time.Second
	dialAttemptTimeout = 2 * time.Second
)

// jitterBackoff spreads d uniformly over [d/2, 3d/2), keeping the mean
// at d so the expected total dial time is unchanged.
func jitterBackoff(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + rand.N(d)
}

// DialTCP connects to a TCP abnn2 endpoint and returns the framed
// connection. Failed attempts are retried with capped exponential
// backoff (50ms doubling to 2s, each wait jittered over ±50%) until ctx
// is cancelled or its deadline passes; use context.WithTimeout to bound
// the total dial time.
func DialTCP(ctx context.Context, addr string) (Conn, error) {
	d := net.Dialer{Timeout: dialAttemptTimeout}
	backoff := dialInitialBackoff
	var lastErr error
	for {
		c, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return Stream(c), nil
		}
		lastErr = err
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("abnn2: dial %s: %w (last attempt: %v)", addr, ctx.Err(), lastErr)
		case <-time.After(jitterBackoff(backoff)):
		}
		if backoff *= 2; backoff > dialMaxBackoff {
			backoff = dialMaxBackoff
		}
	}
}
