package abnn2

import (
	"context"
	"fmt"
	"net"
	"time"
)

// TCP dialing with capped exponential backoff. A freshly started server
// (or a listener bound an instant ago on a loaded machine) can reject
// the first connection attempts; retrying with backoff makes client
// startup robust without hanging on real failures — the context bounds
// the total wait.

const (
	dialInitialBackoff = 50 * time.Millisecond
	dialMaxBackoff     = 2 * time.Second
	dialAttemptTimeout = 2 * time.Second
)

// DialTCP connects to a TCP abnn2 endpoint and returns the framed
// connection. Failed attempts are retried with capped exponential
// backoff (50ms doubling to 2s) until ctx is cancelled or its deadline
// passes; use context.WithTimeout to bound the total dial time.
func DialTCP(ctx context.Context, addr string) (Conn, error) {
	d := net.Dialer{Timeout: dialAttemptTimeout}
	backoff := dialInitialBackoff
	var lastErr error
	for {
		c, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return Stream(c), nil
		}
		lastErr = err
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("abnn2: dial %s: %w (last attempt: %v)", addr, ctx.Err(), lastErr)
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > dialMaxBackoff {
			backoff = dialMaxBackoff
		}
	}
}
