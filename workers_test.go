package abnn2

import (
	"sync"
	"testing"

	"abnn2/internal/transport"
)

// runSecureWorkers runs one full Serve/Dial inference over a metered
// pipe at the given worker count and returns the classifications plus
// the exact wire traffic.
func runSecureWorkers(t *testing.T, qm *QuantizedModel, inputs [][]float64, workers int) ([]int, transport.Stats) {
	t.Helper()
	sc, cc, meter := MeteredPipe()
	defer sc.Close()
	var (
		wg     sync.WaitGroup
		srvErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, srvErr = Serve(sc, qm, Config{RingBits: 64, Seed: 1, Workers: workers})
	}()
	client, err := Dial(cc, qm.Arch(), Config{RingBits: 64, Seed: 2, Workers: workers})
	if err != nil {
		t.Fatalf("dial (workers=%d): %v", workers, err)
	}
	got, err := client.Classify(inputs)
	if err != nil {
		t.Fatalf("classify (workers=%d): %v", workers, err)
	}
	sc.Close()
	wg.Wait()
	if srvErr != nil {
		t.Fatalf("server (workers=%d): %v", workers, srvErr)
	}
	return got, meter.Snapshot()
}

// TestWorkersProduceIdenticalResults is the concurrency tier's anchor:
// a full secure inference with Workers: 1 and Workers: 8 must classify
// identically and, with Seed set, put exactly the same number of bytes
// and flights on the wire in each direction. Run under -race this also
// proves the parallel kernels share no unsynchronized state.
func TestWorkersProduceIdenticalResults(t *testing.T) {
	qm, test := trainSmall(t, "8(2,2,2,2)")
	inputs := test.Inputs[:3]

	seq, seqStats := runSecureWorkers(t, qm, inputs, 1)
	par, parStats := runSecureWorkers(t, qm, inputs, 8)

	for k := range inputs {
		if seq[k] != par[k] {
			t.Errorf("input %d: workers=1 class %d, workers=8 class %d", k, seq[k], par[k])
		}
		if want := qm.Predict(inputs[k]); seq[k] != want {
			t.Errorf("input %d: secure class %d, plaintext %d", k, seq[k], want)
		}
	}
	if seqStats != parStats {
		t.Errorf("wire traffic differs across worker counts:\n workers=1: %+v\n workers=8: %+v", seqStats, parStats)
	}
}

// TestWorkersMultiBatchAndOptimizedReLU covers the remaining kernel
// paths under both worker counts: the multi-batch triplet mode (batch
// size > 1) and the sign-bit ReLU reshare rounds.
func TestWorkersMultiBatchAndOptimizedReLU(t *testing.T) {
	qm, test := trainSmall(t, "ternary")
	inputs := test.Inputs[:4]

	run := func(workers int) ([]int, transport.Stats) {
		sc, cc, meter := MeteredPipe()
		defer sc.Close()
		var (
			wg     sync.WaitGroup
			srvErr error
		)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, srvErr = Serve(sc, qm, Config{RingBits: 32, OptimizedReLU: true, Seed: 3, Workers: workers})
		}()
		client, err := Dial(cc, qm.Arch(), Config{RingBits: 32, OptimizedReLU: true, Seed: 4, Workers: workers})
		if err != nil {
			t.Fatalf("dial (workers=%d): %v", workers, err)
		}
		got, err := client.Classify(inputs)
		if err != nil {
			t.Fatalf("classify (workers=%d): %v", workers, err)
		}
		sc.Close()
		wg.Wait()
		if srvErr != nil {
			t.Fatalf("server (workers=%d): %v", workers, srvErr)
		}
		return got, meter.Snapshot()
	}

	seq, seqStats := run(1)
	par, parStats := run(8)
	for k := range inputs {
		if seq[k] != par[k] {
			t.Errorf("input %d: workers=1 class %d, workers=8 class %d", k, seq[k], par[k])
		}
	}
	if seqStats != parStats {
		t.Errorf("wire traffic differs across worker counts:\n workers=1: %+v\n workers=8: %+v", seqStats, parStats)
	}
}

func TestConfigRejectsNegativeWorkers(t *testing.T) {
	_, cc := Pipe()
	defer cc.Close()
	if _, err := Dial(cc, Arch{}, Config{Workers: -1}); err == nil {
		t.Fatal("Dial accepted negative Workers")
	}
}
