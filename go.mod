module abnn2

go 1.22
