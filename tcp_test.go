package abnn2

import (
	"context"
	"encoding/json"
	"net"
	"testing"
	"time"
)

// End-to-end over real TCP, exercising the same flow as the
// abnn2-server / abnn2-client binaries: arch handshake, then secure
// classification. DialTCP's capped backoff absorbs the first-connect
// flakiness of freshly bound listeners on loaded CI machines.
func TestSecureInferenceOverTCP(t *testing.T) {
	qm, test := trainSmall(t, "4(2,2)")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	defer ln.Close()
	archJSON, err := json.Marshal(qm.Arch())
	if err != nil {
		t.Fatal(err)
	}
	srvErr := make(chan error, 1)
	go func() {
		tcp, err := ln.Accept()
		if err != nil {
			srvErr <- err
			return
		}
		defer tcp.Close()
		conn := Stream(tcp)
		if err := conn.Send(archJSON); err != nil {
			srvErr <- err
			return
		}
		_, err = Serve(conn, qm, Config{RingBits: 64, RoundTimeout: time.Minute})
		srvErr <- err
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	conn, err := DialTCP(ctx, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	var arch Arch
	if err := json.Unmarshal(raw, &arch); err != nil {
		t.Fatal(err)
	}
	if arch.SchemeName != "4(2,2)" {
		t.Fatalf("arch scheme = %q", arch.SchemeName)
	}
	client, err := Dial(conn, arch, Config{RingBits: 64, RoundTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	inputs := test.Inputs[:2]
	got, err := client.Classify(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for k, x := range inputs {
		if want := qm.Predict(x); got[k] != want {
			t.Errorf("input %d: secure %d, plaintext %d", k, got[k], want)
		}
	}
	client.Close()
	if err := <-srvErr; err != nil {
		t.Fatalf("server: %v", err)
	}
}

// DialTCP must keep retrying until a listener appears.
func TestDialTCPRetriesUntilListenerAppears(t *testing.T) {
	// Reserve an address, then release it so the first dial attempts fail.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()

	accepted := make(chan struct{})
	go func() {
		time.Sleep(200 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			return // port raced away; the dial below will fail the test
		}
		defer ln2.Close()
		c, err := ln2.Accept()
		if err == nil {
			c.Close()
		}
		close(accepted)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	conn, err := DialTCP(ctx, addr)
	if err != nil {
		t.Fatalf("DialTCP did not survive late-bound listener: %v", err)
	}
	conn.Close()
	select {
	case <-accepted:
	case <-time.After(5 * time.Second):
		t.Fatal("listener never accepted")
	}
}

// A cancelled context must stop the retry loop promptly with an error
// that carries both the cause and the last attempt's failure.
func TestDialTCPHonorsContext(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := DialTCP(ctx, addr); err == nil {
		t.Fatal("DialTCP succeeded against a dead address")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("DialTCP took %v after context expiry", d)
	}
}
