package abnn2

import (
	"encoding/json"
	"net"
	"testing"
	"time"
)

// dialRetry connects to addr with a short per-attempt timeout, retrying
// until the overall deadline. A freshly bound listener can reject the
// first attempt on loaded CI machines; a bounded retry keeps the test
// deterministic without hanging on real failures.
func dialRetry(t *testing.T, addr string, deadline time.Duration) net.Conn {
	t.Helper()
	var lastErr error
	for end := time.Now().Add(deadline); time.Now().Before(end); {
		c, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err == nil {
			return c
		}
		lastErr = err
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("dial %s: %v", addr, lastErr)
	return nil
}

// End-to-end over real TCP, exercising the same flow as the
// abnn2-server / abnn2-client binaries: arch handshake, then secure
// classification.
func TestSecureInferenceOverTCP(t *testing.T) {
	qm, test := trainSmall(t, "4(2,2)")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	defer ln.Close()
	archJSON, err := json.Marshal(qm.Arch())
	if err != nil {
		t.Fatal(err)
	}
	srvErr := make(chan error, 1)
	go func() {
		tcp, err := ln.Accept()
		if err != nil {
			srvErr <- err
			return
		}
		defer tcp.Close()
		conn := Stream(tcp)
		if err := conn.Send(archJSON); err != nil {
			srvErr <- err
			return
		}
		srvErr <- Serve(conn, qm, Config{RingBits: 64})
	}()

	tcp := dialRetry(t, ln.Addr().String(), 10*time.Second)
	conn := Stream(tcp)
	raw, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	var arch Arch
	if err := json.Unmarshal(raw, &arch); err != nil {
		t.Fatal(err)
	}
	if arch.SchemeName != "4(2,2)" {
		t.Fatalf("arch scheme = %q", arch.SchemeName)
	}
	client, err := Dial(conn, arch, Config{RingBits: 64})
	if err != nil {
		t.Fatal(err)
	}
	inputs := test.Inputs[:2]
	got, err := client.Classify(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for k, x := range inputs {
		if want := qm.Predict(x); got[k] != want {
			t.Errorf("input %d: secure %d, plaintext %d", k, got[k], want)
		}
	}
	tcp.Close()
	if err := <-srvErr; err != nil {
		t.Fatalf("server: %v", err)
	}
}
