#!/bin/sh
# Serving-runtime load smoke: boot a race-enabled multi-tenant server,
# wait for /readyz, drive it with abnn2-load over TCP (which fails on any
# session error or any retryable rejection missing its retry-after
# hint), then audit the shed accounting on /metrics — every shed must be
# typed and, when retryable, hinted. Finally, run one traced client and
# reconcile its dump with the server's via abnn2-inspect -timeline: the
# merged cross-party timeline must attribute the session's wall time to
# compute/wire/queue/bank-wait within 1%, or the script fails.
#
# Tuned to finish in about a minute on one CI core: a tiny model, a
# deliberately small -max-conns so shedding actually happens, and a
# short burst.
set -eu

GO="${GO:-go}"
WORK="$(mktemp -d)"
SRV_PID=""
cleanup() {
    [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
    [ -n "$SRV_PID" ] && wait "$SRV_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

ADDR=127.0.0.1:19800
METRICS=127.0.0.1:19801

echo "== train tiny model"
$GO run ./cmd/abnn2-train -arch fig4 -scheme "4(2,2)" -epochs 1 -samples 200 \
    -out "$WORK/model.json" >/dev/null

echo "== build race-enabled binaries"
$GO build -race -o "$WORK/abnn2-server" ./cmd/abnn2-server
$GO build -o "$WORK/abnn2-load" ./cmd/abnn2-load
$GO build -o "$WORK/abnn2-client" ./cmd/abnn2-client
$GO build -o "$WORK/abnn2-inspect" ./cmd/abnn2-inspect

echo "== boot server (small admission cap so backpressure fires)"
"$WORK/abnn2-server" -model "$WORK/model.json" -listen "$ADDR" \
    -metrics-addr "$METRICS" -max-conns 2 -workers 1 \
    -round-timeout 2m -trace-out "$WORK/server-spans.jsonl" \
    >"$WORK/server.log" 2>&1 &
SRV_PID=$!

echo "== wait for /readyz"
i=0
until curl -fsS "http://$METRICS/readyz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 120 ]; then
        echo "server never became ready" >&2
        cat "$WORK/server.log" >&2
        exit 1
    fi
    if ! kill -0 "$SRV_PID" 2>/dev/null; then
        echo "server died during startup" >&2
        cat "$WORK/server.log" >&2
        exit 1
    fi
    sleep 0.5
done
curl -fsS "http://$METRICS/healthz" >/dev/null

echo "== drive load (exits non-zero on failures or hintless rejections)"
"$WORK/abnn2-load" -connect "$ADDR" -clients 8 -duration 10s \
    -ring 64 -workers 1 -session-batches 2 -require-hints

echo "== audit shed accounting on /metrics"
SCRAPE="$WORK/metrics.txt"
curl -fsS "http://$METRICS/metrics" >"$SCRAPE"
grep -q 'abnn2_serve_sessions_total' "$SCRAPE" || {
    echo "metrics missing serve series" >&2
    exit 1
}
# Every retryable shed must have carried a retry-after hint: the sum of
# retryable-coded sheds equals the hinted-shed counter.
awk '
    /^abnn2_serve_shed_total\{code="(saturated|bank-dry|draining)"\}/ { retryable += $NF }
    /^abnn2_serve_shed_hinted_total/ { hinted = $NF }
    END {
        printf "retryable sheds: %d, hinted: %d\n", retryable, hinted
        exit (retryable == hinted) ? 0 : 1
    }
' "$SCRAPE" || {
    echo "shed-without-hint detected" >&2
    exit 1
}

echo "== cross-party timeline (traced client vs server dump)"
"$WORK/abnn2-client" -connect "$ADDR" -n 2 -ring 64 -workers 1 \
    -trace-out "$WORK/client-spans.jsonl" >/dev/null
# The load clients above did not trace, so exactly one session carries
# flights from both parties and -timeline auto-detects it. The server
# flushes its dump when its session goroutine finishes — a beat after
# the client exits — so retry briefly before judging.
i=0
until "$WORK/abnn2-inspect" \
    -timeline "$WORK/client-spans.jsonl,$WORK/server-spans.jsonl" \
    -tolerance 0.01 >"$WORK/timeline.txt" 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 20 ]; then
        echo "timeline reconciliation failed" >&2
        cat "$WORK/timeline.txt" >&2
        exit 1
    fi
    sleep 0.5
done
cat "$WORK/timeline.txt"

echo "== flight recorder endpoint"
curl -fsS "http://$METRICS/debug/flightrecorder" | grep -q '"sessions"' || {
    echo "/debug/flightrecorder gave no session list" >&2
    exit 1
}

echo "== graceful shutdown"
kill -TERM "$SRV_PID"
wait "$SRV_PID" || {
    echo "server exited non-zero" >&2
    tail -50 "$WORK/server.log" >&2
    exit 1
}
SRV_PID=""
echo "loadtest OK"
