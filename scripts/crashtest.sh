#!/bin/sh
# Crash-recovery chaos: boot a race-enabled server with a durable bank
# store, prefetch peer-paired correlations from a durable client, SIGKILL
# the server mid-load, restart it on the same store directory, and prove
# the two invariants the durable bank exists for:
#
#   1. single-use survives SIGKILL — no correlation id is ever claimed
#      twice, audited from both parties' claim journals by
#      `abnn2-inspect -bank-audit` (the journal is ground truth: every
#      claim lands there, fsynced, before the correlation is handed out);
#   2. recovered pools are bit-exact — the banked run after the crash
#      predicts identically to a from-scratch inline run on the same
#      inputs.
#
# Tuned to finish in a couple of minutes on one CI core.
set -eu

GO="${GO:-go}"
WORK="$(mktemp -d)"
SRV_PID=""
cleanup() {
    [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
    [ -n "$SRV_PID" ] && wait "$SRV_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

ADDR=127.0.0.1:19810
METRICS=127.0.0.1:19811
SRV_BANK="$WORK/srv-bank"
CLI_BANK="$WORK/cli-bank"
N=2

echo "== train tiny model"
$GO run ./cmd/abnn2-train -arch fig4 -scheme "4(2,2)" -epochs 1 -samples 200 \
    -out "$WORK/model.json" >/dev/null

echo "== build binaries (server race-enabled)"
$GO build -race -o "$WORK/abnn2-server" ./cmd/abnn2-server
$GO build -o "$WORK/abnn2-client" ./cmd/abnn2-client
$GO build -o "$WORK/abnn2-inspect" ./cmd/abnn2-inspect

boot_server() {
    log="$1"
    "$WORK/abnn2-server" -model "$WORK/model.json" -listen "$ADDR" \
        -metrics-addr "$METRICS" -workers 1 -round-timeout 2m \
        -bank-capacity 8 -bank-prewarm "$N" -bank-dir "$SRV_BANK" \
        -bank-fsync 1 >"$log" 2>&1 &
    SRV_PID=$!
    i=0
    until curl -fsS "http://$METRICS/readyz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 240 ]; then
            echo "server never became ready" >&2
            cat "$log" >&2
            exit 1
        fi
        if ! kill -0 "$SRV_PID" 2>/dev/null; then
            echo "server died during startup" >&2
            cat "$log" >&2
            exit 1
        fi
        sleep 0.5
    done
}

echo "== boot durable server (gen 1)"
boot_server "$WORK/server1.log"

echo "== prefetch peer-paired correlations into the client's own store"
"$WORK/abnn2-client" -connect "$ADDR" -n "$N" -bank-dir "$CLI_BANK" \
    -prefetch 6 >"$WORK/prefetch.out" 2>"$WORK/prefetch.log"

echo "== drive banked load and SIGKILL the server mid-stream"
(
    for i in 1 2 3 4 5 6 7 8; do
        "$WORK/abnn2-client" -connect "$ADDR" -n "$N" -bank-dir "$CLI_BANK" \
            >>"$WORK/load.out" 2>>"$WORK/load.log" || true
    done
) &
LOAD_PID=$!
sleep 3
kill -9 "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""
wait "$LOAD_PID" 2>/dev/null || true

echo "== restart server (gen 2) on the same store directory"
boot_server "$WORK/server2.log"
grep -q 'bank store recovered' "$WORK/server2.log" || {
    echo "restarted server did not report store recovery" >&2
    cat "$WORK/server2.log" >&2
    exit 1
}

echo "== banked run on the recovered pools vs a from-scratch inline run"
"$WORK/abnn2-client" -connect "$ADDR" -n "$N" -bank-dir "$CLI_BANK" \
    >"$WORK/banked.out" 2>"$WORK/banked.log"
"$WORK/abnn2-client" -connect "$ADDR" -n "$N" \
    >"$WORK/inline.out" 2>"$WORK/inline.log"
grep '^input' "$WORK/banked.out" >"$WORK/banked.pred"
grep '^input' "$WORK/inline.out" >"$WORK/inline.pred"
[ -s "$WORK/banked.pred" ] || { echo "banked run produced no predictions" >&2; exit 1; }
if ! diff -u "$WORK/inline.pred" "$WORK/banked.pred"; then
    echo "recovered-pool predictions diverge from inline" >&2
    exit 1
fi

echo "== drain gen 2 so both journals are flushed"
kill -TERM "$SRV_PID"
wait "$SRV_PID" || {
    echo "server exited non-zero on drain" >&2
    tail -50 "$WORK/server2.log" >&2
    exit 1
}
SRV_PID=""

echo "== audit both claim journals for double-spent correlation ids"
"$WORK/abnn2-inspect" -bank-audit "$SRV_BANK"
"$WORK/abnn2-inspect" -bank-audit "$CLI_BANK"

echo "crashtest OK"
