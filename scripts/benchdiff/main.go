// Command benchdiff guards the online path against performance
// regressions. It compares freshly measured bank benchmark documents
// (written by abnn2-bench -baseline-out) against the checked-in
// baselines and exits non-zero when the online path got more than
// -threshold slower.
//
// Usage:
//
//	benchdiff [-threshold 0.20] BASELINE FRESH [BASELINE FRESH ...]
//
// Each pair must hold the same table kind ("bank-split" or
// "bank-durable") measured with the same -quick setting. Because the
// baseline and the fresh run usually come from different machines, raw
// walls are not comparable: the offline-heavy rows (end-to-end walls,
// cold-start first prediction) calibrate a machine speed factor — the
// geometric mean of fresh/baseline over those rows — and the online
// rows (online-only walls, warm-start first prediction) are judged
// after dividing by it. A uniformly slower machine therefore passes; an
// online path that slowed down relative to the offline path fails.
// Wire traffic is deterministic, so comm_mb is compared raw under the
// same threshold.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
)

type document struct {
	Table string `json:"table"`
	Quick bool   `json:"quick"`
	Rows  []row  `json:"rows"`
}

// row carries the union of the bank-split and bank-durable schemas;
// absent fields decode to zero and are simply not consulted.
type row struct {
	Scheme   string  `json:"scheme"`
	Batch    int     `json:"batch"`
	Mode     string  `json:"mode"`
	WallSec  float64 `json:"wall_sec"`
	FirstSec float64 `json:"first_sec"`
	CommMB   float64 `json:"comm_mb"`
}

// spec says, per table kind, which rows calibrate the machine speed
// factor and which rows are the guarded online path.
type spec struct {
	calibMode, judgeMode string
	metric               string
	value                func(row) float64
}

var specs = map[string]spec{
	"bank-split":   {"end-to-end", "online-only", "wall_sec", func(r row) float64 { return r.WallSec }},
	"bank-durable": {"cold-start", "warm-start", "first_sec", func(r row) float64 { return r.FirstSec }},
}

func load(path string) (document, error) {
	var doc document
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("parse %s: %w", path, err)
	}
	if _, ok := specs[doc.Table]; !ok {
		return doc, fmt.Errorf("%s: unknown table kind %q", path, doc.Table)
	}
	return doc, nil
}

func key(r row) string { return fmt.Sprintf("%s/batch=%d/%s", r.Scheme, r.Batch, r.Mode) }

func index(rows []row) map[string]row {
	m := make(map[string]row, len(rows))
	for _, r := range rows {
		m[key(r)] = r
	}
	return m
}

// comparePair diffs one baseline/fresh document pair and returns the
// human-readable verdict lines plus whether the pair failed.
func comparePair(basePath, freshPath string, threshold float64) ([]string, bool) {
	base, err := load(basePath)
	if err != nil {
		return []string{err.Error()}, true
	}
	fresh, err := load(freshPath)
	if err != nil {
		return []string{err.Error()}, true
	}
	if base.Table != fresh.Table {
		return []string{fmt.Sprintf("%s is %q but %s is %q — mismatched pair",
			basePath, base.Table, freshPath, fresh.Table)}, true
	}
	if base.Quick != fresh.Quick {
		return []string{fmt.Sprintf("%s: quick=%v vs fresh quick=%v — shapes differ, rerun abnn2-bench with matching -quick",
			base.Table, base.Quick, fresh.Quick)}, true
	}
	sp := specs[base.Table]
	baseRows, freshRows := index(base.Rows), index(fresh.Rows)

	// Machine speed factor from the offline-heavy calibration rows.
	var logSum float64
	var calibrated int
	for k, b := range baseRows {
		f, ok := freshRows[k]
		if !ok || b.Mode != sp.calibMode {
			continue
		}
		bv, fv := sp.value(b), sp.value(f)
		if bv <= 0 || fv <= 0 {
			continue
		}
		logSum += math.Log(fv / bv)
		calibrated++
	}
	if calibrated == 0 {
		return []string{fmt.Sprintf("%s: no matched %q rows to calibrate the machine speed factor",
			base.Table, sp.calibMode)}, true
	}
	factor := math.Exp(logSum / float64(calibrated))

	lines := []string{fmt.Sprintf("%s: machine speed factor %.2fx (from %d %s rows)",
		base.Table, factor, calibrated, sp.calibMode)}
	failed := false
	keys := make([]string, 0, len(baseRows))
	for k := range baseRows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b := baseRows[k]
		if b.Mode != sp.judgeMode {
			continue
		}
		f, ok := freshRows[k]
		if !ok {
			lines = append(lines, fmt.Sprintf("  FAIL %s: row missing from fresh run", k))
			failed = true
			continue
		}
		norm := sp.value(f) / factor
		ratio := norm / sp.value(b)
		verdict := "ok  "
		if ratio > 1+threshold {
			verdict, failed = "FAIL", true
		}
		lines = append(lines, fmt.Sprintf("  %s %s: %s %.4fs -> %.4fs (%.4fs normalized, %+.1f%%)",
			verdict, k, sp.metric, sp.value(b), sp.value(f), norm, (ratio-1)*100))
		commRatio := f.CommMB / b.CommMB
		verdict = "ok  "
		if commRatio > 1+threshold {
			verdict, failed = "FAIL", true
		}
		lines = append(lines, fmt.Sprintf("  %s %s: comm_mb %.2f -> %.2f (%+.1f%%)",
			verdict, k, b.CommMB, f.CommMB, (commRatio-1)*100))
	}
	return lines, failed
}

func main() {
	threshold := flag.Float64("threshold", 0.20,
		"fail when a normalized online-path value regresses by more than this fraction")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 || len(args)%2 != 0 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold F] BASELINE FRESH [BASELINE FRESH ...]")
		os.Exit(2)
	}
	failed := false
	for i := 0; i < len(args); i += 2 {
		lines, bad := comparePair(args[i], args[i+1], *threshold)
		for _, l := range lines {
			fmt.Println(l)
		}
		failed = failed || bad
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: online-path regression beyond %.0f%%\n", *threshold*100)
		os.Exit(1)
	}
}
