#!/bin/sh
# Bench regression gate: re-measure the offline/online bank split and
# the durable cold/warm start on this machine, then compare against the
# checked-in BENCH_baseline.json / BENCH_durable.json with
# scripts/benchdiff. The comparer calibrates a machine speed factor
# from the offline-heavy rows, so a uniformly slower CI box passes —
# only the online path regressing relative to the offline path (or
# wire traffic growing) fails, at BENCHDIFF_THRESHOLD (default 20%).
#
# Regenerate the baselines after an intentional perf change with:
#
#	go run ./cmd/abnn2-bench -bank -baseline-out BENCH_baseline.json
#	go run ./cmd/abnn2-bench -bank-durable -baseline-out BENCH_durable.json
set -eu

GO="${GO:-go}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT INT TERM
cd "$(dirname "$0")/.."

echo "== fresh bank-split measurement (full shapes, ~20s)"
$GO run ./cmd/abnn2-bench -bank -baseline-out "$WORK/bank.json"

echo "== fresh durable cold/warm measurement"
$GO run ./cmd/abnn2-bench -bank-durable -baseline-out "$WORK/durable.json"

echo "== compare against checked-in baselines"
$GO run ./scripts/benchdiff -threshold "${BENCHDIFF_THRESHOLD:-0.20}" \
    BENCH_baseline.json "$WORK/bank.json" \
    BENCH_durable.json "$WORK/durable.json"

echo "benchdiff OK"
