package abnn2

import (
	"testing"
	"time"
)

func TestJitterBackoffRange(t *testing.T) {
	if got := jitterBackoff(0); got != 0 {
		t.Fatalf("jitterBackoff(0) = %v", got)
	}
	d := 80 * time.Millisecond
	lo, hi := d, d
	for i := 0; i < 2000; i++ {
		j := jitterBackoff(d)
		if j < d/2 || j >= d+d/2 {
			t.Fatalf("jitterBackoff(%v) = %v outside [%v, %v)", d, j, d/2, d+d/2)
		}
		if j < lo {
			lo = j
		}
		if j > hi {
			hi = j
		}
	}
	// 2000 draws must spread well past the quartiles; a constant (no
	// jitter) or a one-sided bug would trip one of these.
	if lo > d*3/4 || hi < d*5/4 {
		t.Errorf("jitter spread [%v, %v] suspiciously narrow", lo, hi)
	}
}
