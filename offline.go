package abnn2

// Remote offline sessions: a genuinely remote client/server pair runs
// the real two-party offline protocol over its connection ahead of need
// and each party durably stores its own half of every correlation,
// keyed by the peer it generated with. No in-process dealer is
// involved — the material is exactly what a live offline phase produces,
// because it IS a live offline phase, just run early. Later online
// sessions announce a stored correlation id (plus the client's peer id)
// and skip the offline phase entirely.
//
// Wire protocol, after the serve-layer offline handshake, all little-
// endian, one correlation per round trip:
//
//	client → server  'R' | u64 id | u32 batch    request one correlation
//	server → client  'G' | u64 id                accepted: both sides now
//	                                             run the offline protocol
//	server → client  'N' | u64 id                refused (pool at capacity,
//	                                             duplicate id, store error)
//	server → client  'A' | u64 id                server half persisted
//	client → server  'D'                         done, close cleanly
//
// The decision round ('G'/'N') precedes generation so a refused request
// costs one round trip, not an offline phase. The server persists before
// acking; a client that crashes between 'A' and its own persist leaves
// an orphaned server half, which is never claimable and costs only disk.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"abnn2/internal/bank"
	"abnn2/internal/core"
	"abnn2/internal/quant"
	"abnn2/internal/ring"
	"abnn2/internal/transport"
)

// offlineSessionTag is the OT session tag of remote offline sessions,
// distinct from both live sessions and the bank's internal dealer
// (0xBA).
const offlineSessionTag = 0xBC

const (
	offlineReq  = 'R'
	offlineGo   = 'G'
	offlineAck  = 'A'
	offlineNak  = 'N'
	offlineDone = 'D'
)

// ServeOfflineSession runs the server side of a remote offline-
// replenishment session until the client sends done or hangs up. Every
// generated server half is persisted under the client's peer id before
// it is acknowledged; cfg.Bank must carry a recovered durable store.
// Returns nil on a clean client shutdown.
func ServeOfflineSession(ctx context.Context, conn Conn, model *QuantizedModel, cfg Config, clientPeer BankPeerID) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if cfg.Bank == nil || cfg.Bank.Store() == nil {
		return fmt.Errorf("abnn2: offline sessions require a bank with a durable store")
	}
	b := cfg.Bank
	sc := newSessionConn(ctx, conn, cfg.RoundTimeout, cfg.flightFunc("server"))
	defer sc.release()
	tr := cfg.tracer(sc, "server")
	scheme := model.qm.Layers[0].Scheme
	p := core.Params{Ring: ring.New(cfg.ringBits()), Scheme: scheme, Workers: cfg.Workers, Trace: tr}
	modelID, err := bank.ModelID(model.qm)
	if err != nil {
		return err
	}
	sp := tr.Start("setup")
	strip, err := guardVal("offline session setup", func() (*core.ServerTriplets, error) {
		return core.NewServerTripletsSeeded(sc, p, offlineSessionTag, cfg.rng())
	})
	sp.End(err)
	if err != nil {
		return err
	}
	keyBase := BankKey{Model: modelID, Scheme: scheme.Name(), RingBits: cfg.ringBits(), Backend: bank.SessionBackend}
	for {
		raw, err := sc.recvIdle()
		if err != nil {
			if errors.Is(err, transport.ErrClosed) || errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		if len(raw) == 1 && raw[0] == offlineDone {
			return nil
		}
		if len(raw) != 13 || raw[0] != offlineReq {
			return fmt.Errorf("abnn2: malformed offline request")
		}
		id := binary.LittleEndian.Uint64(raw[1:9])
		batch := int(binary.LittleEndian.Uint32(raw[9:13]))
		if batch <= 0 || batch > 1<<20 {
			return fmt.Errorf("abnn2: offline request batch %d out of range", batch)
		}
		key := keyBase
		key.Batch = batch
		// Refuse before generating: a full pool or reused id costs the
		// client one round trip, not a wasted offline phase.
		if b.PeerDepth(clientPeer, key) >= b.Capacity() {
			if err := sendOfflineReply(sc, offlineNak, id); err != nil {
				return err
			}
			continue
		}
		if err := sendOfflineReply(sc, offlineGo, id); err != nil {
			return err
		}
		osp := tr.Start("offline-replenish").SetBatch(batch)
		corr, err := guardVal("offline replenish", func() (*core.ServerCorr, error) {
			return strip.OfflineCorr(model.qm, batch)
		})
		osp.End(err)
		if err != nil {
			// The two sides are mid-protocol; there is no resync point.
			return err
		}
		status := byte(offlineAck)
		if perr := b.PutPeerServer(clientPeer, key, id, corr); perr != nil {
			status = offlineNak
		}
		if err := sendOfflineReply(sc, status, id); err != nil {
			return err
		}
	}
}

func sendOfflineReply(sc *sessionConn, status byte, id uint64) error {
	msg := make([]byte, 9)
	msg[0] = status
	binary.LittleEndian.PutUint64(msg[1:], id)
	return sc.Send(msg)
}

// ReplenishSession runs the client side of a remote offline session over
// an admitted offline connection: it requests up to n correlations of
// the given batch size and durably stores every acknowledged client
// half under serverPeer. cfg.BankModel must be the server's bank id
// (from the offline handshake) so both parties key the same pool.
// Returns how many correlations landed; fewer than n with a nil error
// means the server's pool for this peer is at capacity.
func ReplenishSession(ctx context.Context, conn Conn, arch Arch, cfg Config, serverPeer BankPeerID, batch, n int) (int, error) {
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	if cfg.Bank == nil || cfg.Bank.Store() == nil {
		return 0, fmt.Errorf("abnn2: replenish sessions require a bank with a durable store")
	}
	if cfg.BankModel == "" {
		return 0, fmt.Errorf("abnn2: replenish sessions require Config.BankModel")
	}
	if batch <= 0 || batch > 1<<20 {
		return 0, fmt.Errorf("abnn2: batch size %d out of range", batch)
	}
	b := cfg.Bank
	scheme, err := quant.Parse(arch.SchemeName)
	if err != nil {
		return 0, fmt.Errorf("abnn2: architecture scheme: %w", err)
	}
	sc := newSessionConn(ctx, conn, cfg.RoundTimeout, cfg.flightFunc("client"))
	defer sc.release()
	tr := cfg.tracer(sc, "client")
	p := core.Params{Ring: ring.New(cfg.ringBits()), Scheme: scheme, Workers: cfg.Workers, Trace: tr}
	root := cfg.rng()
	trng, shares := root.Child("triplets"), root.Child("shares")
	sp := tr.Start("setup")
	ctrip, err := guardVal("replenish setup", func() (*core.ClientTriplets, error) {
		return core.NewClientTriplets(sc, p, offlineSessionTag, trng)
	})
	sp.End(err)
	if err != nil {
		return 0, err
	}
	key := BankKey{Model: cfg.BankModel, Scheme: arch.SchemeName, RingBits: cfg.ringBits(),
		Batch: batch, Backend: bank.SessionBackend}
	done := func(got int) (int, error) {
		// Best-effort: the server also treats a hangup as a clean end.
		_ = sc.Send([]byte{offlineDone})
		return got, nil
	}
	got := 0
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			_, _ = done(got)
			return got, ctx.Err()
		}
		id := bank.NewCorrID()
		req := make([]byte, 13)
		req[0] = offlineReq
		binary.LittleEndian.PutUint64(req[1:9], id)
		binary.LittleEndian.PutUint32(req[9:13], uint32(batch))
		if err := sc.Send(req); err != nil {
			return got, err
		}
		status, err := recvOfflineReply(sc, id)
		if err != nil {
			return got, err
		}
		if status == offlineNak {
			return done(got) // pool at capacity: not an error, just enough
		}
		if status != offlineGo {
			return got, fmt.Errorf("abnn2: unexpected offline reply %#x", status)
		}
		osp := tr.Start("offline-replenish").SetBatch(batch)
		corr, err := guardVal("replenish offline", func() (*core.ClientCorr, error) {
			return ctrip.OfflineCorr(arch, shares, batch)
		})
		osp.End(err)
		if err != nil {
			return got, err
		}
		status, err = recvOfflineReply(sc, id)
		if err != nil {
			return got, err
		}
		if status == offlineAck {
			if err := b.PutPeerClient(serverPeer, key, id, corr); err != nil {
				return got, err
			}
			got++
		}
		// A nak after generation: the server failed to persist; drop our
		// half and keep going — the streams stay in lockstep either way.
	}
	return done(got)
}

func recvOfflineReply(sc *sessionConn, wantID uint64) (byte, error) {
	raw, err := sc.Recv()
	if err != nil {
		return 0, err
	}
	if len(raw) != 9 {
		return 0, fmt.Errorf("abnn2: malformed offline reply")
	}
	if got := binary.LittleEndian.Uint64(raw[1:9]); got != wantID {
		return 0, fmt.Errorf("abnn2: offline reply for id %d, want %d", got, wantID)
	}
	return raw[0], nil
}
