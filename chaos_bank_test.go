package abnn2

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// Bank chaos suite: banked provisioning under hostile conditions — dry
// pools, forged correlation IDs, shutdown racing replenishment and live
// sessions. The invariant is the same error-or-fallback discipline the
// transport chaos tests enforce: a session either completes correctly
// or returns an error promptly; nothing hangs, nothing leaks.

// chaosBank builds a bank over the chaos model, returning the bank, the
// registered model ID, and the pool key for the given batch size.
func chaosBank(t *testing.T, qm *QuantizedModel, opts BankOptions) (*Bank, string, func(batch int) BankKey) {
	t.Helper()
	if opts.Seed == 0 {
		opts.Seed = 0xC0A5
	}
	b := NewBank(opts)
	id, err := RegisterBankModel(b, qm)
	if err != nil {
		b.Close()
		t.Fatalf("register bank model: %v", err)
	}
	return b, id, func(batch int) BankKey {
		return BankKey{Model: id, Scheme: qm.Scheme(), RingBits: 32,
			Batch: batch, Backend: BankSessionBackend}
	}
}

// TestChaosBankDryPool: a cold pool under OfflineBanked must fail the
// batch immediately — and under OfflineAuto must fall back to the
// inline offline phase and still classify correctly. Either way the
// background warm-up the misses kicked off dies with Close.
func TestChaosBankDryPool(t *testing.T) {
	qm := chaosModel(t)
	time.Sleep(20 * time.Millisecond)
	base := runtime.NumGoroutine()

	t.Run("banked-errors", func(t *testing.T) {
		b, id, _ := chaosBank(t, qm, BankOptions{Capacity: 2})
		defer b.Close()
		sconn, cconn := Pipe()
		scfg := Config{RingBits: 32, RoundTimeout: chaosRoundTimeout,
			Bank: b, OfflineMode: OfflineBanked}
		ccfg := Config{RingBits: 32, Seed: 77, RoundTimeout: chaosRoundTimeout,
			Bank: b, OfflineMode: OfflineBanked, BankModel: id}
		srvErr, cliErr, _ := runParties(t, qm, sconn, cconn, scfg, ccfg)
		if cliErr == nil {
			t.Fatal("dry pool under OfflineBanked completed a batch")
		}
		if !strings.Contains(cliErr.Error(), "dry") {
			t.Errorf("client error %q does not mention the dry pool", cliErr)
		}
		// The server never saw a batch; a clean hang-up is not an error.
		if srvErr != nil {
			t.Logf("server saw: %v", srvErr)
		}
	})

	t.Run("auto-falls-back", func(t *testing.T) {
		b, id, _ := chaosBank(t, qm, BankOptions{Capacity: 2})
		defer b.Close()
		sconn, cconn := Pipe()
		scfg := Config{RingBits: 32, RoundTimeout: chaosRoundTimeout,
			Bank: b, OfflineMode: OfflineAuto}
		ccfg := Config{RingBits: 32, Seed: 78, RoundTimeout: chaosRoundTimeout,
			Bank: b, OfflineMode: OfflineAuto, BankModel: id}
		srvErr, cliErr, classes := runParties(t, qm, sconn, cconn, scfg, ccfg)
		if srvErr != nil || cliErr != nil {
			t.Fatalf("auto fallback failed: server=%v client=%v", srvErr, cliErr)
		}
		for k, x := range chaosInputs(2) {
			if classes[k] != qm.Predict(x) {
				t.Errorf("fallback run misclassified input %d", k)
			}
		}
	})

	settleGoroutines(t, base, "bank dry pool")
}

// forgeIDConn corrupts the first banked announcement it carries: the
// correlation ID of the 13-byte flight is flipped, simulating a client
// claiming a correlation it never drew.
type forgeIDConn struct {
	Conn
	mu    sync.Mutex
	fired bool
}

func (c *forgeIDConn) Send(msg []byte) error {
	c.mu.Lock()
	if !c.fired && len(msg) == 13 {
		c.fired = true
		forged := append([]byte(nil), msg...)
		forged[5] ^= 0xFF // low byte of the correlation ID
		msg = forged
	}
	c.mu.Unlock()
	return c.Conn.Send(msg)
}

func (c *forgeIDConn) Fired() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fired
}

// TestChaosBankForgedCorrelationID: a tampered announcement must be
// rejected by the server as an unknown correlation — an immediate
// protocol error on both sides, never a hang, and the honestly parked
// server half stays claimable by nobody but its owner.
func TestChaosBankForgedCorrelationID(t *testing.T) {
	qm := chaosModel(t)
	time.Sleep(20 * time.Millisecond)
	base := runtime.NumGoroutine()

	b, id, keyFor := chaosBank(t, qm, BankOptions{Capacity: 1})
	defer b.Close()
	if err := b.Prewarm(keyFor(2), 1); err != nil {
		t.Fatalf("prewarm: %v", err)
	}
	sconn, cconn := Pipe()
	forged := &forgeIDConn{Conn: cconn}
	scfg := Config{RingBits: 32, RoundTimeout: chaosRoundTimeout,
		Bank: b, OfflineMode: OfflineBanked}
	ccfg := Config{RingBits: 32, Seed: 79, RoundTimeout: chaosRoundTimeout,
		Bank: b, OfflineMode: OfflineBanked, BankModel: id}
	srvErr, cliErr, _ := runParties(t, qm, sconn, forged, scfg, ccfg)
	if !forged.Fired() {
		t.Fatal("no banked announcement crossed the wire")
	}
	if srvErr == nil {
		t.Fatal("server accepted a forged correlation ID")
	}
	if !strings.Contains(srvErr.Error(), "correlation") {
		t.Errorf("server error %q does not mention the correlation claim", srvErr)
	}
	if cliErr == nil {
		t.Error("client completed a batch the server rejected")
	}
	settleGoroutines(t, base, "forged correlation ID")
}

// TestChaosBankCloseMidReplenish: with Low = Capacity every draw leaves
// the pool below its watermark, so a refill is guaranteed to be running
// when Close lands. Close must cancel the in-flight generator pair and
// return promptly, leaving no goroutines behind.
func TestChaosBankCloseMidReplenish(t *testing.T) {
	qm := chaosModel(t)
	time.Sleep(20 * time.Millisecond)
	base := runtime.NumGoroutine()

	b, id, keyFor := chaosBank(t, qm, BankOptions{Capacity: 8, Low: 8})
	if err := b.Prewarm(keyFor(2), 1); err != nil {
		t.Fatalf("prewarm: %v", err)
	}
	sconn, cconn := Pipe()
	scfg := Config{RingBits: 32, RoundTimeout: chaosRoundTimeout,
		Bank: b, OfflineMode: OfflineBanked}
	ccfg := Config{RingBits: 32, Seed: 80, RoundTimeout: chaosRoundTimeout,
		Bank: b, OfflineMode: OfflineBanked, BankModel: id}
	srvErr, cliErr, classes := runParties(t, qm, sconn, cconn, scfg, ccfg)
	if srvErr != nil || cliErr != nil {
		t.Fatalf("banked run failed: server=%v client=%v", srvErr, cliErr)
	}
	for k, x := range chaosInputs(2) {
		if classes[k] != qm.Predict(x) {
			t.Errorf("banked run misclassified input %d", k)
		}
	}
	// The draw above left depth 0 < Low 8: replenishment is in flight.
	closed := make(chan error, 1)
	go func() { closed <- b.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(chaosWatchdog):
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("Close hung on in-flight replenishment:\n%s", buf[:n])
	}
	settleGoroutines(t, base, "close mid-replenish")
}

// TestChaosBankConcurrentDrain: several OfflineAuto sessions race a
// Drain + Close. Sessions that draw before the close use the bank;
// sessions that lose the race fall back inline — every one must finish
// correctly, and the shutdown must not deadlock against live Acquires.
func TestChaosBankConcurrentDrain(t *testing.T) {
	qm := chaosModel(t)
	time.Sleep(20 * time.Millisecond)
	base := runtime.NumGoroutine()

	b, id, keyFor := chaosBank(t, qm, BankOptions{Capacity: 2})
	if err := b.Prewarm(keyFor(2), 2); err != nil {
		t.Fatalf("prewarm: %v", err)
	}
	const sessions = 3
	var wg sync.WaitGroup
	errs := make([]error, 2*sessions)
	misses := make([][]int, sessions)
	for i := 0; i < sessions; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			sconn, cconn := Pipe()
			scfg := Config{RingBits: 32, RoundTimeout: chaosRoundTimeout,
				Bank: b, OfflineMode: OfflineAuto}
			ccfg := Config{RingBits: 32, Seed: 90 + uint64(i), RoundTimeout: chaosRoundTimeout,
				Bank: b, OfflineMode: OfflineAuto, BankModel: id}
			srvErr, cliErr, classes := runParties(t, qm, sconn, cconn, scfg, ccfg)
			errs[2*i], errs[2*i+1] = srvErr, cliErr
			if cliErr == nil {
				for k, x := range chaosInputs(2) {
					if classes[k] != qm.Predict(x) {
						misses[i] = append(misses[i], k)
					}
				}
			}
		}()
	}
	// Shut the bank down while the sessions are mid-provision.
	time.Sleep(5 * time.Millisecond)
	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	drainErr := b.Drain(dctx)
	cancel()
	closeErr := b.Close()
	wg.Wait()
	if drainErr != nil {
		t.Errorf("drain: %v", drainErr)
	}
	if closeErr != nil {
		t.Errorf("close: %v", closeErr)
	}
	for i, err := range errs {
		if err != nil {
			t.Errorf("session %d party %d: %v", i/2, i%2, err)
		}
	}
	for i, m := range misses {
		if len(m) > 0 {
			t.Errorf("session %d misclassified inputs %v", i, m)
		}
	}
	settleGoroutines(t, base, "concurrent drain")
}

// TestChaosBankDryConcurrent: N parallel strict-banked sessions race a
// capacity-1 pool. Each session must either complete correctly (it won
// the draw, or a miss-triggered refill landed in time) or fail with the
// typed ErrBankDry — never hang, never leak. The same race under
// OfflineAuto must complete every session via inline fallback.
func TestChaosBankDryConcurrent(t *testing.T) {
	qm := chaosModel(t)
	time.Sleep(20 * time.Millisecond)
	base := runtime.NumGoroutine()

	const sessions = 4

	t.Run("banked-typed-error-or-success", func(t *testing.T) {
		b, id, keyFor := chaosBank(t, qm, BankOptions{Capacity: 1})
		defer b.Close()
		if err := b.Prewarm(keyFor(2), 1); err != nil {
			t.Fatalf("prewarm: %v", err)
		}
		var wg sync.WaitGroup
		cliErrs := make([]error, sessions)
		classes := make([][]int, sessions)
		for i := 0; i < sessions; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				sconn, cconn := Pipe()
				scfg := Config{RingBits: 32, RoundTimeout: chaosRoundTimeout,
					Bank: b, OfflineMode: OfflineBanked}
				ccfg := Config{RingBits: 32, Seed: 300 + uint64(i), RoundTimeout: chaosRoundTimeout,
					Bank: b, OfflineMode: OfflineBanked, BankModel: id}
				_, cliErrs[i], classes[i] = runParties(t, qm, sconn, cconn, scfg, ccfg)
			}()
		}
		wg.Wait()
		completed := 0
		for i, err := range cliErrs {
			switch {
			case err == nil:
				completed++
				for k, x := range chaosInputs(2) {
					if classes[i][k] != qm.Predict(x) {
						t.Errorf("session %d misclassified input %d", i, k)
					}
				}
			case errors.Is(err, ErrBankDry):
				// The typed retryable outcome — what the serve layer turns
				// into a bank-dry rejection.
			default:
				t.Errorf("session %d failed without the typed dry error: %v", i, err)
			}
		}
		if completed == 0 {
			t.Error("no session won the prewarmed correlation")
		}
	})

	t.Run("auto-all-succeed", func(t *testing.T) {
		b, id, keyFor := chaosBank(t, qm, BankOptions{Capacity: 1})
		defer b.Close()
		if err := b.Prewarm(keyFor(2), 1); err != nil {
			t.Fatalf("prewarm: %v", err)
		}
		var wg sync.WaitGroup
		errs := make([]error, 2*sessions)
		for i := 0; i < sessions; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				sconn, cconn := Pipe()
				scfg := Config{RingBits: 32, RoundTimeout: chaosRoundTimeout,
					Bank: b, OfflineMode: OfflineAuto}
				ccfg := Config{RingBits: 32, Seed: 400 + uint64(i), RoundTimeout: chaosRoundTimeout,
					Bank: b, OfflineMode: OfflineAuto, BankModel: id}
				var classes []int
				errs[2*i], errs[2*i+1], classes = runParties(t, qm, sconn, cconn, scfg, ccfg)
				if errs[2*i+1] == nil {
					for k, x := range chaosInputs(2) {
						if classes[k] != qm.Predict(x) {
							t.Errorf("session %d misclassified input %d", i, k)
						}
					}
				}
			}()
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Errorf("session %d party %d: %v", i/2, i%2, err)
			}
		}
	})

	settleGoroutines(t, base, "bank dry concurrent")
}
