package abnn2_test

import (
	"testing"

	"abnn2/internal/testkit"
)

// TestConformanceSmoke runs a slice of the internal/testkit differential
// sweep through the public facade: seeded random models, full two-party
// inference over an in-memory transport, exact equality against the
// plaintext quantized network. The full 200-model sweep lives in
// internal/testkit (go test ./internal/testkit/ or make conformance);
// this root-level cut keeps the facade itself on the conformance hook
// with a handful of seeds spanning the eta and ring-width grid.
func TestConformanceSmoke(t *testing.T) {
	seeds := []uint64{0, 1, 2, 3, 4, 5, 11, 23}
	if testing.Short() {
		seeds = seeds[:4]
	}
	for _, seed := range seeds {
		c := testkit.Generate(seed)
		t.Run(c.Desc(), func(t *testing.T) {
			t.Parallel()
			if err := testkit.CheckCase(c); err != nil {
				t.Fatal(err)
			}
		})
	}
}
