// WAN example: the same secure prediction costs very different wall time
// on different links. This example runs one protocol execution, records
// its exact byte/flight profile, and prices it under the paper's three
// link models (LAN, the Table 3 WAN, the QUOTIENT WAN) — the methodology
// behind every WAN column in EXPERIMENTS.md.
package main

import (
	"fmt"
	"log"
	"time"

	"abnn2"
	"abnn2/internal/transport"
)

func main() {
	log.SetFlags(0)

	ds := abnn2.SyntheticDataset(600, 42)
	train, test := ds.Split(0.9)
	model := abnn2.NewMLP(784, 32, 10)
	model.Train(train.Inputs, train.Labels, abnn2.TrainOptions{Epochs: 2})

	for _, scheme := range []string{"binary", "8(2,2,2,2)"} {
		qm, err := model.Quantize(scheme, 8)
		if err != nil {
			log.Fatal(err)
		}
		serverConn, clientConn, meter := abnn2.MeteredPipe()
		go abnn2.Serve(serverConn, qm, abnn2.Config{RingBits: 32})
		client, err := abnn2.Dial(clientConn, qm.Arch(), abnn2.Config{RingBits: 32})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		if _, err := client.Classify(test.Inputs[:1]); err != nil {
			log.Fatal(err)
		}
		compute := time.Since(start)
		stats := meter.Snapshot()
		serverConn.Close()

		fmt.Printf("scheme %s: %0.2f MB in %d messages / %d flights, compute %v\n",
			scheme, float64(stats.TotalBytes())/(1<<20), stats.Messages, stats.Flights,
			compute.Round(time.Millisecond))
		for _, nm := range []transport.NetModel{transport.LAN, transport.WANTable3, transport.WANQuotient} {
			fmt.Printf("  %-22s transfer %8v + latency %8v -> total %8v\n",
				nm.Name,
				(nm.NetworkTime(transport.Stats{BytesAB: stats.BytesAB, BytesBA: stats.BytesBA})).Round(time.Millisecond),
				(time.Duration(stats.Flights) * (nm.RTT / 2)).Round(time.Millisecond),
				nm.TotalTime(compute, stats).Round(time.Millisecond))
		}
		fmt.Println()
	}
	fmt.Println("on a WAN, flights x RTT/2 dominates small batches; bytes dominate large ones —")
	fmt.Println("which is why the paper's speedups over SecureML grow from ~2-3x (LAN) to ~25-36x (WAN).")
}
