// Quickstart: train a small network, quantize it to 8-bit weights, and
// run a secure two-party prediction in-process. Shows that the secure
// result matches plaintext quantized inference exactly.
package main

import (
	"fmt"
	"log"

	"abnn2"
)

func main() {
	log.SetFlags(0)

	// 1. Train a float model (the server's private asset).
	ds := abnn2.SyntheticDataset(1000, 42)
	train, test := ds.Split(0.9)
	model := abnn2.NewMLP(784, 32, 10)
	model.Train(train.Inputs, train.Labels, abnn2.TrainOptions{Epochs: 3})

	// 2. Quantize to 8-bit weights, fragmented as (2,2,2,2) — the paper's
	//    sweet spot for 8-bit models.
	qm, err := model.Quantize("8(2,2,2,2)", 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("float accuracy:     %.1f%%\n", 100*model.Accuracy(test.Inputs, test.Labels))
	fmt.Printf("quantized accuracy: %.1f%%\n", 100*qm.Accuracy(test.Inputs, test.Labels))

	// 3. Secure inference: server goroutine owns the model, client owns
	//    the inputs. Only the architecture is shared.
	serverConn, clientConn := abnn2.Pipe()
	go func() {
		if _, err := abnn2.Serve(serverConn, qm, abnn2.Config{RingBits: 64}); err != nil {
			log.Printf("server: %v", err)
		}
	}()
	client, err := abnn2.Dial(clientConn, qm.Arch(), abnn2.Config{RingBits: 64})
	if err != nil {
		log.Fatal(err)
	}
	inputs := test.Inputs[:5]
	classes, err := client.Classify(inputs)
	if err != nil {
		log.Fatal(err)
	}

	// 4. The secure protocol computes exactly the plaintext quantized
	//    function — verify.
	fmt.Println("\ninput  secure  plaintext  true")
	for i, x := range inputs {
		fmt.Printf("%5d  %6d  %9d  %4d\n", i, classes[i], qm.Predict(x), test.Labels[i])
		if classes[i] != qm.Predict(x) {
			log.Fatal("secure and plaintext predictions diverged — this is a bug")
		}
	}
	fmt.Println("\nsecure predictions match plaintext quantized inference exactly")
	serverConn.Close()
}
