// MNIST-scale example: the paper's Figure 4 network (784-128-128-10)
// trained on the synthetic MNIST-shaped dataset, then served securely
// with batch prediction — the workload behind the paper's Tables 2, 4
// and 5. Reports float/quantized/secure accuracy and per-phase cost.
package main

import (
	"fmt"
	"log"
	"time"

	"abnn2"
)

func main() {
	log.SetFlags(0)

	fmt.Println("== training the Figure 4 network (784-128-128-10) ==")
	ds := abnn2.SyntheticDataset(2000, 42)
	train, test := ds.Split(0.9)
	model := abnn2.Fig4Network()
	start := time.Now()
	model.Train(train.Inputs, train.Labels, abnn2.TrainOptions{Epochs: 3})
	fmt.Printf("trained in %v\n", time.Since(start).Round(time.Millisecond))

	qm, err := model.Quantize("8(2,2,2,2)", 8)
	if err != nil {
		log.Fatal(err)
	}
	floatAcc := model.Accuracy(test.Inputs, test.Labels)
	qAcc := qm.Accuracy(test.Inputs, test.Labels)
	fmt.Printf("float accuracy %.1f%%, 8-bit quantized accuracy %.1f%%\n", 100*floatAcc, 100*qAcc)

	fmt.Println("\n== secure batch prediction (batch = 16) ==")
	serverConn, clientConn, meter := abnn2.MeteredPipe()
	spans := abnn2.NewTraceCollector() // both parties emit into one dump
	cfg := abnn2.Config{RingBits: 64, Trace: spans}
	go func() {
		if _, err := abnn2.Serve(serverConn, qm, cfg); err != nil {
			log.Printf("server: %v", err)
		}
	}()
	setupStart := time.Now()
	client, err := abnn2.Dial(clientConn, qm.Arch(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	setup := time.Since(setupStart)
	setupStats := meter.Snapshot()

	batch := test.Inputs[:16]
	predStart := time.Now()
	classes, err := client.Classify(batch)
	if err != nil {
		log.Fatal(err)
	}
	pred := time.Since(predStart)
	predStats := meter.Snapshot().Sub(setupStats)

	correct, matches := 0, 0
	for i, c := range classes {
		if c == test.Labels[i] {
			correct++
		}
		if c == qm.Predict(batch[i]) {
			matches++
		}
	}
	fmt.Printf("secure batch accuracy: %d/%d correct\n", correct, len(batch))
	fmt.Printf("secure vs plaintext quantized: %d/%d identical (must be all)\n", matches, len(batch))
	fmt.Printf("\nsetup (base OTs):        %8v  %7.2f MB\n", setup.Round(time.Millisecond),
		float64(setupStats.TotalBytes())/(1<<20))
	fmt.Printf("prediction (off+online): %8v  %7.2f MB, %d flights\n", pred.Round(time.Millisecond),
		float64(predStats.TotalBytes())/(1<<20), predStats.Flights)
	fmt.Printf("amortized per input:     %8v  %7.2f MB\n",
		(pred / time.Duration(len(batch))).Round(time.Millisecond),
		float64(predStats.TotalBytes())/(1<<20)/float64(len(batch)))
	serverConn.Close()

	fmt.Println("\n== per-phase trace (both parties, from Config.Trace) ==")
	fmt.Print(abnn2.TraceTable(spans.Spans()))
}
