// CNN example: secure inference over a convolutional network — an
// extension beyond the paper's FC-only evaluation. Convolutions run as
// im2col matrix triplets (the same 1-out-of-N OT machinery; the weights
// are reused across spatial positions exactly like the paper's
// multi-batch reuse), and max pooling runs as a garbled-circuit
// tournament fused with the ReLU. The demo finishes with the private
// argmax protocol, so the client learns only the predicted class.
package main

import (
	"fmt"
	"log"
	"time"

	"abnn2"
)

func main() {
	log.SetFlags(0)

	fmt.Println("== training a small CNN (conv 5x5 -> ReLU -> pool 2 -> FC) ==")
	ds := abnn2.SyntheticDataset(800, 42)
	train, test := ds.Split(0.9)
	model := abnn2.NewSmallCNN(4)
	start := time.Now()
	model.Train(train.Inputs, train.Labels, abnn2.TrainOptions{Epochs: 2, BatchSize: 16})
	fmt.Printf("trained in %v, float accuracy %.1f%%\n",
		time.Since(start).Round(time.Millisecond), 100*model.Accuracy(test.Inputs, test.Labels))

	qm, err := model.Quantize("8(2,2,2,2)", 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("8-bit quantized accuracy %.1f%%\n", 100*qm.Accuracy(test.Inputs, test.Labels))

	serverConn, clientConn, meter := abnn2.MeteredPipe()
	go func() {
		if _, err := abnn2.Serve(serverConn, qm, abnn2.Config{RingBits: 64}); err != nil {
			log.Printf("server: %v", err)
		}
	}()
	client, err := abnn2.Dial(clientConn, qm.Arch(), abnn2.Config{RingBits: 64})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== secure CNN prediction with private argmax ==")
	inputs := test.Inputs[:4]
	start = time.Now()
	classes, err := client.ClassifyPrivate(inputs)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	allMatch := true
	for k, x := range inputs {
		plain := qm.Predict(x)
		fmt.Printf("input %d: secure class %d, plaintext %d, true label %d\n",
			k, classes[k], plain, test.Labels[k])
		if classes[k] != plain {
			allMatch = false
		}
	}
	if !allMatch {
		log.Fatal("secure CNN diverged from plaintext — this is a bug")
	}
	fmt.Printf("\nbatch of %d in %v, %.2f MB total; the client saw only the class indices,\n",
		len(inputs), elapsed.Round(time.Millisecond), float64(meter.Snapshot().TotalBytes())/(1<<20))
	fmt.Println("the server saw nothing: conv runs as OT triplets, pool+ReLU and argmax inside GC.")
	serverConn.Close()
}
