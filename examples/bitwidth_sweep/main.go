// Bitwidth sweep: the paper's headline feature is *arbitrary-bitwidth*
// quantization — the same protocol adapts to any weight bitwidth by
// choosing the fragmentation (N, gamma). This example quantizes one
// trained model at every bitwidth from binary to 8-bit, runs secure
// inference for each, and reports the accuracy/communication trade-off.
package main

import (
	"fmt"
	"log"
	"time"

	"abnn2"
)

func main() {
	log.SetFlags(0)

	ds := abnn2.SyntheticDataset(1200, 42)
	train, test := ds.Split(0.85)
	model := abnn2.NewMLP(784, 32, 10)
	model.Train(train.Inputs, train.Labels, abnn2.TrainOptions{Epochs: 3})
	fmt.Printf("float accuracy: %.1f%%\n\n", 100*model.Accuracy(test.Inputs, test.Labels))

	schemes := []string{"binary", "ternary", "3(2,1)", "4(2,2)", "6(2,2,2)", "8(2,2,2,2)"}
	fmt.Printf("%-12s %9s %12s %12s %10s\n", "scheme", "accuracy", "secure-time", "comm(MB)", "match")
	for _, scheme := range schemes {
		qm, err := model.Quantize(scheme, 8)
		if err != nil {
			log.Fatal(err)
		}
		acc := qm.Accuracy(test.Inputs, test.Labels)

		serverConn, clientConn, meter := abnn2.MeteredPipe()
		go abnn2.Serve(serverConn, qm, abnn2.Config{RingBits: 64})
		client, err := abnn2.Dial(clientConn, qm.Arch(), abnn2.Config{RingBits: 64})
		if err != nil {
			log.Fatal(err)
		}
		inputs := test.Inputs[:4]
		start := time.Now()
		classes, err := client.Classify(inputs)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		match := true
		for i := range inputs {
			if classes[i] != qm.Predict(inputs[i]) {
				match = false
			}
		}
		fmt.Printf("%-12s %8.1f%% %12v %12.2f %10v\n",
			scheme, 100*acc, elapsed.Round(time.Millisecond),
			float64(meter.Snapshot().TotalBytes())/(1<<20), match)
		serverConn.Close()
	}
	fmt.Println("\nhigher bitwidth buys accuracy with protocol cost growing in gamma and N —")
	fmt.Println("the (2,2,...)-style fragmentations keep N=4 and scale gamma with the bitwidth.")
}
