// An external test package: internal/bench drives the public facade for
// the offline/online split table, so an in-package test file here would
// close an import cycle.
package abnn2_test

// One testing.B benchmark per paper table plus the ablations, backed by
// the same harness as cmd/abnn2-bench. The benchmarks run the scaled-down
// (Quick) configurations so `go test -bench=.` completes in minutes on
// one core; `abnn2-bench` (no flags) runs the full paper shapes and is
// what EXPERIMENTS.md records. Custom metrics report exact protocol
// traffic alongside ns/op.

import (
	"testing"

	"abnn2/internal/bench"
)

func reportRows(b *testing.B, commMB float64) {
	b.ReportMetric(commMB, "comm-MB")
}

func BenchmarkTable1OTComplexity(b *testing.B) {
	var rows []bench.Table1Row
	for i := 0; i < b.N; i++ {
		rows = bench.Table1(bench.Options{Quick: true})
	}
	reportRows(b, rows[1].CommMB)
}

func BenchmarkTable2OfflineTriplets(b *testing.B) {
	var rows []bench.Table2Row
	for i := 0; i < b.N; i++ {
		rows = bench.Table2(bench.Options{Quick: true})
	}
	var total float64
	for _, r := range rows {
		total += r.CommMB
	}
	reportRows(b, total)
}

func BenchmarkTable3MatmulVsSecureML(b *testing.B) {
	var rows []bench.Table3Row
	for i := 0; i < b.N; i++ {
		rows = bench.Table3(bench.Options{Quick: true})
	}
	var total float64
	for _, r := range rows {
		total += r.CommMB
	}
	reportRows(b, total)
}

func BenchmarkTable4EndToEndVsMiniONN(b *testing.B) {
	var rows []bench.Table4Row
	for i := 0; i < b.N; i++ {
		rows = bench.Table4(bench.Options{Quick: true})
	}
	var total float64
	for _, r := range rows {
		total += r.CommMB
	}
	reportRows(b, total)
}

func BenchmarkTable5VsQuotient(b *testing.B) {
	var rows []bench.Table5Row
	for i := 0; i < b.N; i++ {
		rows = bench.Table5(bench.Options{Quick: true})
	}
	for _, r := range rows {
		if !r.Reference {
			reportRows(b, r.CommMB)
			break
		}
	}
}

// BenchmarkTableBankSplit reports both halves of the correlation-bank
// split: the end-to-end request path (inline offline + online) and the
// online-only path of a banked session, as separate comm metrics.
func BenchmarkTableBankSplit(b *testing.B) {
	var rows []bench.TableBankRow
	for i := 0; i < b.N; i++ {
		rows = bench.TableBank(bench.Options{Quick: true})
	}
	for _, r := range rows {
		if r.Batch != 1 {
			continue
		}
		switch r.Mode {
		case "end-to-end":
			b.ReportMetric(r.CommMB, "e2e-MB")
		case "online-only":
			b.ReportMetric(r.CommMB, "online-MB")
		}
	}
}

func BenchmarkAblationOneBatch(b *testing.B) {
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		rows = bench.AblationOneBatch(bench.Options{Quick: true})
	}
	reportRows(b, rows[1].CommMB)
}

func BenchmarkAblationMultiBatch(b *testing.B) {
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		rows = bench.AblationMultiBatch(bench.Options{Quick: true})
	}
	reportRows(b, rows[0].CommMB)
}

func BenchmarkAblationReLU(b *testing.B) {
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		rows = bench.AblationReLU(bench.Options{Quick: true})
	}
	reportRows(b, rows[1].CommMB)
}

func BenchmarkAblationFragmentN(b *testing.B) {
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		rows = bench.AblationFragmentN(bench.Options{Quick: true})
	}
	reportRows(b, rows[1].CommMB)
}

func BenchmarkAblationRing(b *testing.B) {
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		rows = bench.AblationRing(bench.Options{Quick: true})
	}
	reportRows(b, rows[1].CommMB)
}
