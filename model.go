package abnn2

import (
	"fmt"

	"abnn2/internal/core"
	"abnn2/internal/nn"
	"abnn2/internal/prg"
	"abnn2/internal/quant"
)

// Model is a float multilayer perceptron with ReLU activations, the form
// in which networks are trained before quantization.
type Model struct{ m *nn.Model }

// NewMLP builds a model from layer sizes, e.g. NewMLP(784, 128, 128, 10)
// for the paper's evaluation network, initialised with Xavier weights
// from the given seed.
func NewMLP(sizes ...int) *Model {
	m := nn.NewModel(sizes...)
	m.InitXavier(prg.New(prg.SeedFromInt(0x5eed)))
	return &Model{m: m}
}

// Fig4Network returns the paper's 3-layer evaluation architecture.
func Fig4Network() *Model {
	m := nn.Fig4Network()
	m.InitXavier(prg.New(prg.SeedFromInt(0x5eed)))
	return &Model{m: m}
}

// NewSmallCNN returns a compact convolutional network for 28x28 inputs:
// Conv(1->channels, 5x5) + ReLU + MaxPool(2) -> FC(channels*12*12 -> 10).
// Convolutions run securely as im2col matrix triplets and pooling as a
// garbled-circuit max — both beyond the paper's FC-only evaluation.
func NewSmallCNN(channels int) *Model {
	m := nn.SmallCNN(channels)
	m.InitXavier(prg.New(prg.SeedFromInt(0x5eed)))
	return &Model{m: m}
}

// TrainOptions configures SGD training.
type TrainOptions struct {
	Epochs    int     // default 5
	BatchSize int     // default 32
	LR        float64 // default 0.05
	Seed      uint64  // default 1
}

// Train fits the model with minibatch SGD on softmax cross-entropy and
// returns the final average loss.
func (m *Model) Train(inputs [][]float64, labels []int, opt TrainOptions) float64 {
	cfg := nn.DefaultTrainConfig()
	if opt.Epochs > 0 {
		cfg.Epochs = opt.Epochs
	}
	if opt.BatchSize > 0 {
		cfg.BatchSize = opt.BatchSize
	}
	if opt.LR > 0 {
		cfg.LR = opt.LR
	}
	if opt.Seed != 0 {
		cfg.Seed = opt.Seed
	}
	return m.m.Train(inputs, labels, cfg)
}

// Accuracy evaluates float classification accuracy.
func (m *Model) Accuracy(inputs [][]float64, labels []int) float64 {
	return m.m.Accuracy(inputs, labels)
}

// Predict returns the argmax class for one input.
func (m *Model) Predict(x []float64) int { return m.m.Predict(x) }

// Quantize converts the model to integer weights under the named scheme
// ("binary", "ternary", "8(2,2,2,2)", "3(2,1)", ...) with the given
// fixed-point fractional bits for activations.
func (m *Model) Quantize(scheme string, fracBits uint) (*QuantizedModel, error) {
	s, err := quant.Parse(scheme)
	if err != nil {
		return nil, err
	}
	return &QuantizedModel{qm: nn.Quantize(m.m, s, fracBits)}, nil
}

// QuantizeRequant is Quantize plus per-layer requantization: activations
// are rescaled back to the 2^-fracBits fixed-point scale after every
// layer via local probabilistic truncation (SecureML-style), so deep
// networks fit small rings such as Z_2^32. The trade is a +-1-per-neuron
// truncation slack; predictions can differ from plaintext quantized
// inference in rare near-tie cases.
func (m *Model) QuantizeRequant(scheme string, fracBits uint) (*QuantizedModel, error) {
	s, err := quant.Parse(scheme)
	if err != nil {
		return nil, err
	}
	return &QuantizedModel{qm: nn.QuantizeRequant(m.m, s, fracBits, 6)}, nil
}

// MarshalJSON serialises the float model.
func (m *Model) MarshalJSON() ([]byte, error) { return nn.MarshalModel(m.m) }

// LoadModel parses a float model from JSON.
func LoadModel(data []byte) (*Model, error) {
	inner, err := nn.UnmarshalModel(data)
	if err != nil {
		return nil, err
	}
	return &Model{m: inner}, nil
}

// QuantizedModel is an integer-weight model ready for secure inference.
type QuantizedModel struct{ qm *nn.QuantizedModel }

// Arch returns the public architecture a client needs to Dial.
func (q *QuantizedModel) Arch() Arch { return core.ArchOf(q.qm) }

// Accuracy evaluates quantized (plaintext) classification accuracy —
// bit-identical to what the secure protocol computes.
func (q *QuantizedModel) Accuracy(inputs [][]float64, labels []int) float64 {
	return q.qm.Accuracy(inputs, labels)
}

// Predict runs plaintext quantized inference (argmax).
func (q *QuantizedModel) Predict(x []float64) int { return q.qm.Predict(x) }

// Scheme returns the quantization scheme designation.
func (q *QuantizedModel) Scheme() string { return q.qm.Layers[0].Scheme.Name() }

// MarshalJSON serialises the quantized model.
func (q *QuantizedModel) MarshalJSON() ([]byte, error) { return nn.MarshalQuantized(q.qm) }

// LoadQuantizedModel parses a quantized model from JSON, validating every
// weight against its scheme.
func LoadQuantizedModel(data []byte) (*QuantizedModel, error) {
	inner, err := nn.UnmarshalQuantized(data)
	if err != nil {
		return nil, err
	}
	return &QuantizedModel{qm: inner}, nil
}

// Dataset is a labelled input set.
type Dataset struct {
	Inputs [][]float64
	Labels []int
}

// SyntheticDataset generates the deterministic MNIST-shaped synthetic
// dataset used throughout the examples and benchmarks (28x28 images in
// [0,1], 10 classes). See DESIGN.md for why a synthetic stand-in is
// faithful for this paper's experiments.
func SyntheticDataset(n int, seed uint64) Dataset {
	ds := nn.SyntheticMNIST(n, 0.2, seed)
	return Dataset{Inputs: ds.X, Labels: ds.Labels}
}

// Split partitions a dataset at the fraction.
func (d Dataset) Split(trainFrac float64) (train, test Dataset) {
	if trainFrac < 0 || trainFrac > 1 {
		panic(fmt.Sprintf("abnn2: train fraction %v out of [0,1]", trainFrac))
	}
	cut := int(float64(len(d.Inputs)) * trainFrac)
	return Dataset{Inputs: d.Inputs[:cut], Labels: d.Labels[:cut]},
		Dataset{Inputs: d.Inputs[cut:], Labels: d.Labels[cut:]}
}
