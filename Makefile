# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet race bench tables ablations accuracy fuzz chaos clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# Full suite under the race detector (the concurrency test tier).
race:
	$(GO) test -race ./...

# Scaled-down benchmark suite (minutes on one core).
bench:
	$(GO) test -bench=. -benchmem ./...

# Full paper tables (can take tens of minutes on one core).
tables:
	$(GO) run ./cmd/abnn2-bench

ablations:
	$(GO) run ./cmd/abnn2-bench -ablations

accuracy:
	$(GO) run ./cmd/abnn2-bench -accuracy

# Fault-injection tier under the race detector: full inference through
# every transport fault class, disconnects at every subprotocol message
# boundary, cancellation, and goroutine-leak checks.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestRoundTimeout' -v .
	$(GO) test -race -count=1 -run 'DisconnectAtEveryMessage|TestOfflineSurvivesPeerDisappearing' ./internal/core
	$(GO) test -race -count=1 ./internal/transport

# Short fuzz pass over every fuzz target.
fuzz:
	$(GO) test ./internal/quant -fuzz FuzzParse -fuzztime 10s
	$(GO) test ./internal/nn -fuzz FuzzUnmarshalQuantized -fuzztime 10s
	$(GO) test ./internal/nn -fuzz FuzzUnmarshalModel -fuzztime 10s
	$(GO) test ./internal/ring -fuzz FuzzDecodeVec -fuzztime 10s
	$(GO) test ./internal/transport -fuzz FuzzStreamRecv -fuzztime 10s
	$(GO) test ./internal/transport -fuzz FuzzStreamRoundTrip -fuzztime 10s
	$(GO) test ./internal/par -fuzz FuzzParMap -fuzztime 10s

clean:
	$(GO) clean ./...
	rm -rf internal/*/testdata/fuzz
