# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet race bench benchdiff tables ablations accuracy bank bank-durable conformance plan fuzz corpus chaos loadtest crashtest clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# Full suite under the race detector (the concurrency test tier).
race:
	$(GO) test -race ./...

# Scaled-down benchmark suite (minutes on one core).
bench:
	$(GO) test -bench=. -benchmem ./...

# Bench regression gate: re-measure the bank split and durable start-up
# on this machine, normalize away machine speed via the offline-heavy
# rows, and fail on >20% online-path regression against the checked-in
# BENCH_*.json baselines (threshold via BENCHDIFF_THRESHOLD).
benchdiff:
	GO="$(GO)" scripts/benchdiff.sh

# Full paper tables (can take tens of minutes on one core).
tables:
	$(GO) run ./cmd/abnn2-bench

ablations:
	$(GO) run ./cmd/abnn2-bench -ablations

accuracy:
	$(GO) run ./cmd/abnn2-bench -accuracy

# Correlation-bank tier under the race detector: the bank's own unit
# tests, the banked-vs-inline dual-execution equivalence suite (plus the
# banked golden transcript), the bank chaos tests, and the offline/online
# bench split.
bank:
	$(GO) test -race -count=1 ./internal/bank
	$(GO) test -race -count=1 -run 'TestBanked|TestBankMatmul|TestGoldenSessionBanked' ./internal/testkit
	$(GO) test -race -count=1 -run 'TestChaosBank' -v .
	$(GO) test -count=1 -run 'TestTableBankSplit|TestBankBaselineFile' ./internal/bench

# Durable-bank tier under the race detector: the on-disk store's
# recovery/claim unit tests, the bank-over-store integration tests, the
# remote offline replenishment suite (peer pairing, crash single-use,
# link cuts), the serve-layer offline handshake and recovery gating, the
# 40-seed peer-banked equivalence sweep, and the cold/warm durable bench
# check.
bank-durable:
	$(GO) test -race -count=1 -run 'TestStore|TestScope|TestNewCorrID|TestBank|TestReplenisher' ./internal/bank
	$(GO) test -race -count=1 -run 'TestRemoteOffline' -v .
	$(GO) test -race -count=1 -run 'TestOffline|TestRecoveryGates|TestDrainFlushes' ./internal/serve
	$(GO) test -race -count=1 -run 'TestPeerBankedEquivalenceSweep' ./internal/testkit
	$(GO) test -count=1 -run 'TestTableBankDurable|TestBankDurableFile' ./internal/bench

# Crash-recovery chaos: SIGKILL a race-built durable server mid-load,
# restart it on the same store directory, and audit the claim journal
# for double-spent correlation ids (plus banked-vs-inline agreement on
# the recovered pools).
crashtest:
	GO="$(GO)" scripts/crashtest.sh

# Fault-injection tier under the race detector: full inference through
# every transport fault class, disconnects at every subprotocol message
# boundary, cancellation, and goroutine-leak checks.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestRoundTimeout' -v .
	$(GO) test -race -count=1 -run 'TestChaos' -v ./internal/serve
	$(GO) test -race -count=1 -run 'DisconnectAtEveryMessage|TestOfflineSurvivesPeerDisappearing' ./internal/core
	$(GO) test -race -count=1 ./internal/transport

# Serving-runtime smoke under load: boot a race-enabled server, wait for
# /readyz, hammer it with abnn2-load (which exits non-zero on failures or
# on any retryable rejection missing its retry-after hint), and check the
# shed accounting on /metrics.
loadtest:
	GO="$(GO)" scripts/loadtest.sh

# Conformance tier: the full 200-model differential sweep (secure
# inference vs plaintext QNN, exact equality) plus golden wire
# transcripts and the backend/edge cross-checks. `-short` runs a 40-seed
# cut that still covers the full eta x ring-width grid.
conformance:
	$(GO) test -count=1 ./internal/testkit
	$(GO) test -count=1 -run TestConformanceSmoke .

# Protocol-planner tier under the race detector: the cost-model unit
# tests and plan wire-parser fuzz seeds, the 40-seed mixed-plan
# differential sweep (random per-layer backends per seed, bit-identity
# vs plaintext and vs the single-backend run), the planned golden
# transcript and serve-layer plan handshake tests, and the measured
# planner-vs-uniform bench gate.
plan:
	$(GO) test -race -count=1 ./internal/plan
	$(GO) test -race -count=1 -run 'TestMixedPlanSweep|TestGoldenSessionPlanned' ./internal/testkit
	$(GO) test -race -count=1 -run 'TestServePlannedSessionEndToEnd|TestRejectBadPlan|TestRequiredPlanMismatch' ./internal/serve
	$(GO) test -count=1 -run 'TestTablePlanShapes' ./internal/bench

# Short fuzz pass over every fuzz target.
fuzz:
	$(GO) test ./internal/quant -fuzz FuzzParse -fuzztime 10s
	$(GO) test ./internal/nn -fuzz FuzzUnmarshalQuantized -fuzztime 10s
	$(GO) test ./internal/nn -fuzz FuzzUnmarshalModel -fuzztime 10s
	$(GO) test ./internal/ring -fuzz FuzzDecodeVec -fuzztime 10s
	$(GO) test ./internal/transport -fuzz FuzzStreamRecv -fuzztime 10s
	$(GO) test ./internal/transport -fuzz FuzzStreamRoundTrip -fuzztime 10s
	$(GO) test ./internal/par -fuzz FuzzParMap -fuzztime 10s
	$(GO) test ./internal/otext -fuzz FuzzSenderExtend -fuzztime 10s
	$(GO) test ./internal/otext -fuzz FuzzRecvChosen -fuzztime 10s
	$(GO) test ./internal/otext -fuzz FuzzRecvCorrelatedRing -fuzztime 10s
	$(GO) test ./internal/gc -fuzz FuzzEvaluatorRun -fuzztime 10s
	$(GO) test ./internal/gc -fuzz 'FuzzEvaluate$$' -fuzztime 10s
	$(GO) test ./internal/core -fuzz FuzzTripletPayloadOneBatch -fuzztime 10s
	$(GO) test ./internal/core -fuzz FuzzTripletPayloadMultiBatch -fuzztime 10s
	$(GO) test ./internal/baseot -fuzz 'FuzzReceive$$' -fuzztime 10s
	$(GO) test ./internal/baseot -fuzz 'FuzzSend$$' -fuzztime 10s
	$(GO) test ./internal/paillier -fuzz FuzzUnmarshalCiphertext -fuzztime 10s
	$(GO) test ./internal/bank -fuzz FuzzScanSegment -fuzztime 10s
	$(GO) test ./internal/bank -fuzz FuzzScanJournal -fuzztime 10s
	$(GO) test ./internal/bank -fuzz FuzzDecodeCorr -fuzztime 10s
	$(GO) test ./internal/plan -fuzz FuzzUnmarshalPlan -fuzztime 10s

# Regenerate the checked-in wire-parser seed corpora
# (internal/*/testdata/fuzz). Run after changing any wire format.
corpus:
	$(GO) run ./internal/testkit/gencorpus

# The checked-in seed corpora under internal/*/testdata/fuzz are source,
# not build output — clean only removes crashers the fuzzer minimised
# into the Go build cache, which `go clean -fuzzcache` handles.
clean:
	$(GO) clean ./...
