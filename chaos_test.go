package abnn2

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"abnn2/internal/transport"
)

// Chaos suite: full secure inference under injected transport faults.
// The invariant under test is error-not-hang: whatever a peer does —
// stall, truncate, corrupt, drop a message, or disconnect mid-round —
// both parties must return (an error where the protocol cannot
// complete), within their deadlines, without leaking goroutines and
// without panicking the process.

const (
	chaosRoundTimeout = 2 * time.Second
	chaosWatchdog     = 60 * time.Second
)

// chaosModel returns a tiny Xavier-initialised quantized MLP. Chaos runs
// exercise protocol structure (OT extension, triplets, GC ReLU, reveal),
// not accuracy, so no training is needed.
func chaosModel(t *testing.T) *QuantizedModel {
	t.Helper()
	qm, err := NewMLP(12, 8, 4).Quantize("4(2,2)", 6)
	if err != nil {
		t.Fatal(err)
	}
	return qm
}

func chaosInputs(n int) [][]float64 {
	ins := make([][]float64, n)
	for k := range ins {
		x := make([]float64, 12)
		for i := range x {
			x[i] = float64((k*31+i*17)%23)/23 - 0.5
		}
		ins[k] = x
	}
	return ins
}

// runParties runs one inference between Serve and Classify, closing each
// party's endpoint as it finishes (as the binaries do), and fails the
// test with full stacks if either side hangs past the watchdog.
func runParties(t *testing.T, qm *QuantizedModel, sconn, cconn Conn, scfg, ccfg Config) (srvErr, cliErr error, classes []int) {
	t.Helper()
	sch := make(chan error, 1)
	cch := make(chan error, 1)
	go func() {
		_, err := Serve(sconn, qm, scfg)
		sconn.Close()
		sch <- err
	}()
	go func() {
		client, err := DialContext(context.Background(), cconn, qm.Arch(), ccfg)
		if err != nil {
			cconn.Close()
			cch <- err
			return
		}
		defer client.Close()
		classes, err = client.Classify(chaosInputs(2))
		cch <- err
	}()
	watchdog := time.After(chaosWatchdog)
	for sch != nil || cch != nil {
		select {
		case srvErr = <-sch:
			sch = nil
		case cliErr = <-cch:
			cch = nil
		case <-watchdog:
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("chaos run hung (server done=%v client done=%v):\n%s",
				sch == nil, cch == nil, buf[:n])
		}
	}
	return srvErr, cliErr, classes
}

// settleGoroutines waits for the goroutine count to return to base,
// failing with full stacks if it does not: a leak means some protocol
// path blocked forever instead of erroring out.
func settleGoroutines(t *testing.T, base int, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Errorf("%s: %d goroutines, want <= %d — leak:\n%s", what, runtime.NumGoroutine(), base, buf[:n])
}

// sampleIndices picks up to k message indices spread over [0, n),
// always including the first and last.
func sampleIndices(n, k int) []int {
	if n <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	seen := map[int]bool{}
	var out []int
	for i := 0; i < k; i++ {
		idx := i * (n - 1) / max(k-1, 1)
		if !seen[idx] {
			seen[idx] = true
			out = append(out, idx)
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestChaosFaultMatrix injects every fault class at message indices
// spread across the whole protocol, on each side in turn.
func TestChaosFaultMatrix(t *testing.T) {
	qm := chaosModel(t)
	cfg := Config{RingBits: 32, RoundTimeout: chaosRoundTimeout}
	ccfg := cfg
	ccfg.Seed = 99

	// Clean run: warms the worker pool, verifies the configuration, and
	// discovers how many messages each side sends.
	sf := transport.Fault(nil, transport.FaultPlan{})
	cf := transport.Fault(nil, transport.FaultPlan{})
	{
		sconn, cconn := Pipe()
		sf, cf = transport.Fault(sconn, transport.FaultPlan{}), transport.Fault(cconn, transport.FaultPlan{})
		srvErr, cliErr, classes := runParties(t, qm, sf, cf, cfg, ccfg)
		if srvErr != nil || cliErr != nil {
			t.Fatalf("clean run failed: server=%v client=%v", srvErr, cliErr)
		}
		for k, x := range chaosInputs(2) {
			if classes[k] != qm.Predict(x) {
				t.Fatalf("clean run misclassified input %d", k)
			}
		}
	}
	t.Logf("clean run: server sends %d messages, client sends %d", sf.Sends(), cf.Sends())

	time.Sleep(50 * time.Millisecond)
	// Each subtest runs on its own goroutine under the parent, so the
	// in-subtest baseline is one above what the parent observes here.
	base := runtime.NumGoroutine() + 1

	points := 4
	if testing.Short() {
		points = 2
	}
	sides := []struct {
		name  string
		sends int
	}{
		{"client", cf.Sends()},
		{"server", sf.Sends()},
	}
	for _, side := range sides {
		side := side
		for _, class := range transport.FaultClasses {
			class := class
			for _, idx := range sampleIndices(side.sends, points) {
				idx := idx
				t.Run(fmt.Sprintf("%s-%s-msg%d", side.name, class, idx), func(t *testing.T) {
					plan := transport.FaultPlan{
						Class:   class,
						Message: idx,
						Seed:    uint64(idx)*1000 + 7,
						Delay:   100 * time.Millisecond, // well under the round timeout
					}
					sconn, cconn := Pipe()
					var faulted *transport.FaultConn
					if side.name == "client" {
						faulted = transport.Fault(cconn, plan)
						cconn = faulted
					} else {
						faulted = transport.Fault(sconn, plan)
						sconn = faulted
					}
					srvErr, cliErr, classes := runParties(t, qm, sconn, cconn, cfg, ccfg)
					if !faulted.Fired() {
						t.Fatalf("fault at message %d never fired (%d sends observed)", idx, faulted.Sends())
					}
					switch class {
					case transport.FaultDelay:
						// A delay below the round timeout must be absorbed.
						if srvErr != nil || cliErr != nil {
							t.Fatalf("tolerable delay failed the run: server=%v client=%v", srvErr, cliErr)
						}
						for k, x := range chaosInputs(2) {
							if classes[k] != qm.Predict(x) {
								t.Errorf("delayed run misclassified input %d", k)
							}
						}
					case transport.FaultDrop, transport.FaultTruncate, transport.FaultDisconnect:
						// The protocol cannot complete; at least one party must
						// report it. (The other may legitimately see only the
						// resulting hangup — or nothing, when the lost message
						// was the last one it was owed.)
						if srvErr == nil && cliErr == nil {
							t.Fatalf("%v at message %d went unnoticed", class, idx)
						}
					case transport.FaultCorrupt:
						// Corruption must never hang or kill the process;
						// whether it is detectable depends on which message it
						// hits (a corrupted share is valid bytes), so no error
						// assertion. Contained panics are acceptable here.
						var pe *PanicError
						if errors.As(srvErr, &pe) || errors.As(cliErr, &pe) {
							t.Logf("corruption surfaced as contained panic: %v", pe)
						}
					}
					settleGoroutines(t, base, t.Name())
				})
			}
		}
	}
}

// TestChaosServerCancelledWhileIdle: cancelling the server's context
// must abort the between-batches idle wait (which has no round
// deadline) and return an error wrapping the context's error.
func TestChaosServerCancelledWhileIdle(t *testing.T) {
	qm := chaosModel(t)
	time.Sleep(20 * time.Millisecond)
	base := runtime.NumGoroutine()

	sconn, cconn := Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := ServeContext(ctx, sconn, qm, Config{RingBits: 32})
		done <- err
	}()
	client, err := Dial(cconn, qm.Arch(), Config{RingBits: 32, Seed: 3})
	if err != nil {
		t.Fatalf("setup: %v", err)
	}
	// One full batch proves the session works; then the client goes
	// quiet and the server sits in its idle announcement wait.
	if _, err := client.Classify(chaosInputs(1)); err != nil {
		t.Fatalf("classify: %v", err)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("ServeContext returned %v, want context.Canceled", err)
		}
	case <-time.After(chaosWatchdog):
		t.Fatal("ServeContext did not return after cancellation")
	}
	client.Close()
	sconn.Close()
	settleGoroutines(t, base+2, "server cancellation")
}

// TestChaosClientCancelledMidSetup: cancelling the client's context
// while it is blocked mid-handshake (no server on the other end) must
// abort the dial rather than hang it.
func TestChaosClientCancelledMidSetup(t *testing.T) {
	qm := chaosModel(t)
	time.Sleep(20 * time.Millisecond)
	base := runtime.NumGoroutine()

	sconn, cconn := Pipe()
	defer sconn.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := DialContext(ctx, cconn, qm.Arch(), Config{RingBits: 32, Seed: 4})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the dial block in base-OT recv
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("DialContext returned %v, want context.Canceled", err)
		}
	case <-time.After(chaosWatchdog):
		t.Fatal("DialContext did not return after cancellation")
	}
	settleGoroutines(t, base+2, "client cancellation")
}

// TestRoundTimeoutAllowsIdleBetweenBatches: RoundTimeout bounds protocol
// rounds, not the server's idle wait — a client may pause between
// batches for longer than the round timeout without being disconnected.
func TestRoundTimeoutAllowsIdleBetweenBatches(t *testing.T) {
	qm := chaosModel(t)
	sconn, cconn := Pipe()
	srvErr := make(chan error, 1)
	go func() {
		_, err := Serve(sconn, qm, Config{RingBits: 32, RoundTimeout: 100 * time.Millisecond})
		srvErr <- err
	}()
	client, err := Dial(cconn, qm.Arch(), Config{RingBits: 32, Seed: 5, RoundTimeout: chaosRoundTimeout})
	if err != nil {
		t.Fatalf("setup: %v", err)
	}
	if _, err := client.Classify(chaosInputs(1)); err != nil {
		t.Fatalf("first batch: %v", err)
	}
	time.Sleep(400 * time.Millisecond) // several round timeouts of idling
	if _, err := client.Classify(chaosInputs(1)); err != nil {
		t.Fatalf("batch after idle pause: %v", err)
	}
	client.Close()
	if err := <-srvErr; err != nil {
		t.Fatalf("server: %v", err)
	}
}
