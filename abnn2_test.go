package abnn2

import (
	"sync"
	"testing"
)

// trainSmall builds a small trained+quantized model for API tests.
func trainSmall(t *testing.T, scheme string) (*QuantizedModel, Dataset) {
	t.Helper()
	ds := SyntheticDataset(300, 21)
	train, test := ds.Split(0.8)
	m := NewMLP(784, 16, 10)
	m.Train(train.Inputs, train.Labels, TrainOptions{Epochs: 2})
	qm, err := m.Quantize(scheme, 8)
	if err != nil {
		t.Fatalf("quantize: %v", err)
	}
	return qm, test
}

func TestSecureClassifyMatchesPlaintext(t *testing.T) {
	qm, test := trainSmall(t, "8(2,2,2,2)")
	sc, cc := Pipe()
	defer sc.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	var srvErr error
	go func() {
		defer wg.Done()
		_, srvErr = Serve(sc, qm, Config{RingBits: 64, Seed: 1})
	}()
	client, err := Dial(cc, qm.Arch(), Config{RingBits: 64, Seed: 2})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	inputs := test.Inputs[:3]
	got, err := client.Classify(inputs)
	if err != nil {
		t.Fatalf("classify: %v", err)
	}
	for k, x := range inputs {
		if want := qm.Predict(x); got[k] != want {
			t.Errorf("input %d: secure class %d, plaintext %d", k, got[k], want)
		}
	}
	sc.Close()
	wg.Wait()
	if srvErr != nil {
		t.Fatalf("server: %v", srvErr)
	}
}

func TestSecureClassifyMultipleBatches(t *testing.T) {
	qm, test := trainSmall(t, "ternary")
	sc, cc := Pipe()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		Serve(sc, qm, Config{RingBits: 64, Seed: 3})
	}()
	client, err := Dial(cc, qm.Arch(), Config{RingBits: 64, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		inputs := test.Inputs[round*2 : round*2+2]
		got, err := client.Classify(inputs)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for k, x := range inputs {
			if want := qm.Predict(x); got[k] != want {
				t.Errorf("round %d input %d: %d want %d", round, k, got[k], want)
			}
		}
	}
	sc.Close()
	wg.Wait()
}

func TestOptimizedReLUConfig(t *testing.T) {
	qm, test := trainSmall(t, "binary")
	sc, cc := Pipe()
	defer sc.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		Serve(sc, qm, Config{RingBits: 64, OptimizedReLU: true, Seed: 5})
	}()
	client, err := Dial(cc, qm.Arch(), Config{RingBits: 64, OptimizedReLU: true, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.Classify(test.Inputs[:2])
	if err != nil {
		t.Fatal(err)
	}
	for k := range got {
		if want := qm.Predict(test.Inputs[k]); got[k] != want {
			t.Errorf("input %d: %d want %d", k, got[k], want)
		}
	}
}

func TestFloatModelJSONAndPredict(t *testing.T) {
	m := Fig4Network()
	x := make([]float64, 784)
	x[5] = 1
	class := m.Predict(x)
	data, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Predict(x) != class {
		t.Error("prediction changed after float model roundtrip")
	}
	if _, err := LoadModel([]byte("nope")); err == nil {
		t.Error("garbage model accepted")
	}
}

func TestModelJSONRoundTrip(t *testing.T) {
	qm, test := trainSmall(t, "4(2,2)")
	data, err := qm.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	qm2, err := LoadQuantizedModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if qm2.Scheme() != "4(2,2)" {
		t.Errorf("scheme after roundtrip: %s", qm2.Scheme())
	}
	for _, x := range test.Inputs[:5] {
		if qm.Predict(x) != qm2.Predict(x) {
			t.Error("prediction changed after roundtrip")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	qm, _ := trainSmall(t, "binary")
	sc, cc := Pipe()
	defer sc.Close()
	if _, err := NewServer(sc, qm, Config{RingBits: 70}); err == nil {
		t.Error("RingBits 70 accepted by server")
	}
	if _, err := Dial(cc, qm.Arch(), Config{RingBits: 4}); err == nil {
		t.Error("RingBits 4 accepted by client")
	}
}

func TestDialRejectsBadScheme(t *testing.T) {
	arch := Arch{SchemeName: "nonsense"}
	_, cc := Pipe()
	if _, err := Dial(cc, arch, Config{}); err == nil {
		t.Error("bad scheme accepted")
	}
}

func TestClassifyValidatesInput(t *testing.T) {
	qm, _ := trainSmall(t, "binary")
	sc, cc := Pipe()
	defer sc.Close()
	go Serve(sc, qm, Config{RingBits: 64})
	client, err := Dial(cc, qm.Arch(), Config{RingBits: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Classify(nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := client.Classify([][]float64{{1, 2}}); err == nil {
		t.Error("wrong feature count accepted")
	}
}

func TestClassifyPrivateMatchesClassify(t *testing.T) {
	qm, test := trainSmall(t, "8(2,2,2,2)")
	sc, cc := Pipe()
	defer sc.Close()
	go Serve(sc, qm, Config{RingBits: 64, Seed: 11})
	client, err := Dial(cc, qm.Arch(), Config{RingBits: 64, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	inputs := test.Inputs[:3]
	private, err := client.ClassifyPrivate(inputs)
	if err != nil {
		t.Fatalf("classify private: %v", err)
	}
	for k, x := range inputs {
		if want := qm.Predict(x); private[k] != want {
			t.Errorf("input %d: private class %d, plaintext %d", k, private[k], want)
		}
	}
}

func TestSecureCNNViaFacade(t *testing.T) {
	ds := SyntheticDataset(200, 61)
	train, test := ds.Split(0.8)
	m := NewSmallCNN(2)
	m.Train(train.Inputs, train.Labels, TrainOptions{Epochs: 1, BatchSize: 16})
	qm, err := m.Quantize("8(2,2,2,2)", 8)
	if err != nil {
		t.Fatal(err)
	}
	sc, cc := Pipe()
	defer sc.Close()
	go Serve(sc, qm, Config{RingBits: 64, Seed: 13})
	client, err := Dial(cc, qm.Arch(), Config{RingBits: 64, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	inputs := test.Inputs[:2]
	got, err := client.Classify(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for k, x := range inputs {
		if want := qm.Predict(x); got[k] != want {
			t.Errorf("input %d: secure CNN class %d, plaintext %d", k, got[k], want)
		}
	}
}

// Requantized models run on the small 32-bit ring and still classify
// correctly end to end.
func TestSecureClassifyRequant32(t *testing.T) {
	ds := SyntheticDataset(300, 51)
	train, test := ds.Split(0.8)
	m := NewMLP(784, 16, 10)
	m.Train(train.Inputs, train.Labels, TrainOptions{Epochs: 2})
	qm, err := m.QuantizeRequant("8(2,2,2,2)", 8)
	if err != nil {
		t.Fatal(err)
	}
	sc, cc := Pipe()
	defer sc.Close()
	go Serve(sc, qm, Config{RingBits: 32, Seed: 9})
	client, err := Dial(cc, qm.Arch(), Config{RingBits: 32, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	inputs := test.Inputs[:4]
	got, err := client.Classify(inputs)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for k, x := range inputs {
		if got[k] == qm.Predict(x) {
			agree++
		}
	}
	// Truncation slack can flip near-ties; demand full agreement here (the
	// synthetic task has wide margins) to catch systematic errors.
	if agree != len(inputs) {
		t.Errorf("only %d/%d secure predictions match plaintext requant inference", agree, len(inputs))
	}
}

func TestQuantizationAccuracyLadder(t *testing.T) {
	// Higher bitwidth should not be (much) worse than lower bitwidth.
	ds := SyntheticDataset(400, 31)
	train, test := ds.Split(0.75)
	m := NewMLP(784, 16, 10)
	m.Train(train.Inputs, train.Labels, TrainOptions{Epochs: 3})
	acc := map[string]float64{}
	for _, s := range []string{"binary", "ternary", "4(2,2)", "8(2,2,2,2)"} {
		qm, err := m.Quantize(s, 8)
		if err != nil {
			t.Fatal(err)
		}
		acc[s] = qm.Accuracy(test.Inputs, test.Labels)
	}
	if acc["8(2,2,2,2)"]+0.15 < acc["binary"] {
		t.Errorf("8-bit accuracy %.3f far below binary %.3f", acc["8(2,2,2,2)"], acc["binary"])
	}
	floatAcc := m.Accuracy(test.Inputs, test.Labels)
	if acc["8(2,2,2,2)"] < floatAcc-0.15 {
		t.Errorf("8-bit accuracy %.3f far below float %.3f", acc["8(2,2,2,2)"], floatAcc)
	}
}
