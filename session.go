package abnn2

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"abnn2/internal/par"
	"abnn2/internal/trace"
	"abnn2/internal/transport"
)

// Session hardening: every blocking wire operation of a protocol session
// runs through a sessionConn, which arms a per-round deadline
// (Config.RoundTimeout), aborts mid-round on context cancellation, and
// maps both conditions to useful errors. Panics provoked by malformed
// peer data deeper in the stack are caught at the same boundary by
// guard/guardVal and converted to *PanicError, so one bad peer can
// never hang or kill a process that serves others.

// PanicError is a panic converted to an error at the session boundary.
// Protocol code validates peer messages and returns errors for malformed
// data it anticipates; PanicError is the backstop for the cases it does
// not — typically a shape or size invariant deep in the numeric layers
// violated by a hostile or buggy peer.
type PanicError struct {
	Op    string // the session operation that panicked, e.g. "handle batch"
	Value any    // the original panic value
	Stack []byte // stack of the panicking goroutine
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("abnn2: panic during %s (malformed peer data?): %v", e.Op, e.Value)
}

// guard runs fn, converting a panic — including one rethrown from a
// worker-pool chunk — into a *PanicError.
func guard(op string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = recoveredError(op, r)
		}
	}()
	return fn()
}

// guardVal is guard for operations that return a value.
func guardVal[T any](op string, fn func() (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			var zero T
			v, err = zero, recoveredError(op, r)
		}
	}()
	return fn()
}

func recoveredError(op string, r any) *PanicError {
	if cp, ok := r.(*par.ChunkPanic); ok {
		return &PanicError{Op: op, Value: cp.Value, Stack: cp.Stack}
	}
	return &PanicError{Op: op, Value: r, Stack: debug.Stack()}
}

// sessionConn wraps the protocol connection of one session. Before each
// blocking operation it arms a deadline of now+RoundTimeout (when
// configured); a cancellation watcher aborts in-flight operations by
// setting an immediate deadline when the session context is cancelled.
type sessionConn struct {
	inner    Conn
	meter    *transport.Meter
	timeout  time.Duration
	ctx      context.Context
	stop     chan struct{}
	stopOnce sync.Once
}

// newSessionConn wraps conn. The watcher goroutine (only started for
// cancellable contexts) exits when the context fires or the session is
// released — Close and release are both sufficient, so sessions never
// leak goroutines.
//
// Every session is metered single-endedly (see transport.MeterEndpoint):
// the cost is one mutex-protected counter update per framed message, no
// allocations, so metering is always on and Stats always available.
//
// obs, when non-nil, is additionally called once per transferred message
// (see transport.MeterEndpointObserved) — the wire-flight stamper behind
// cross-party timeline reconciliation.
func newSessionConn(ctx context.Context, conn Conn, timeout time.Duration, obs transport.FlightFunc) *sessionConn {
	mc, meter := transport.MeterEndpointObserved(conn, obs)
	c := &sessionConn{inner: mc, meter: meter, timeout: timeout, ctx: ctx, stop: make(chan struct{})}
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				// Abort any blocked and all future operations. The per-op
				// context check below turns the resulting timeout into the
				// context's error.
				conn.SetDeadline(time.Now())
			case <-c.stop:
			}
		}()
	}
	return c
}

// release stops the cancellation watcher. Idempotent.
func (c *sessionConn) release() { c.stopOnce.Do(func() { close(c.stop) }) }

// Stats returns this endpoint's traffic totals so far: BytesAB is what
// this party sent, BytesBA what it received.
func (c *sessionConn) Stats() transport.Stats { return c.meter.Snapshot() }

// counters adapts the session meter to the tracer's counter source, so
// spans are stamped with byte/message/flight deltas automatically.
func (c *sessionConn) counters() trace.Counters {
	s := c.meter.Snapshot()
	return trace.Counters{BytesSent: s.BytesAB, BytesRecvd: s.BytesBA, Messages: s.Messages, Flights: s.Flights}
}

// arm sets the round deadline. Streams without deadline support degrade
// to unbounded rounds rather than failing the session.
func (c *sessionConn) arm() {
	if c.timeout > 0 {
		_ = c.inner.SetDeadline(time.Now().Add(c.timeout))
	}
}

// opErr classifies an operation error: context cancellation wins, then a
// round timeout is labelled as such.
func (c *sessionConn) opErr(err error) error {
	if err == nil {
		return nil
	}
	if cerr := c.ctx.Err(); cerr != nil {
		return fmt.Errorf("abnn2: session aborted: %w", cerr)
	}
	if c.timeout > 0 && transport.IsTimeout(err) {
		return fmt.Errorf("abnn2: protocol round exceeded %v: %w", c.timeout, err)
	}
	return err
}

func (c *sessionConn) Send(msg []byte) error {
	// Arm before checking the context: if cancellation lands between the
	// check and the op, the watcher's immediate deadline overrides this
	// one and still aborts the op.
	c.arm()
	if cerr := c.ctx.Err(); cerr != nil {
		return fmt.Errorf("abnn2: session aborted: %w", cerr)
	}
	return c.opErr(c.inner.Send(msg))
}

func (c *sessionConn) Recv() ([]byte, error) {
	c.arm()
	if cerr := c.ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("abnn2: session aborted: %w", cerr)
	}
	msg, err := c.inner.Recv()
	return msg, c.opErr(err)
}

// recvIdle blocks for the next message with no round deadline: it is the
// between-batches wait of a server, where a client may legitimately sit
// idle indefinitely. Context cancellation still aborts it.
func (c *sessionConn) recvIdle() ([]byte, error) {
	if c.timeout > 0 {
		_ = c.inner.SetDeadline(time.Time{})
	}
	// The context check must follow the disarm: if the watcher's abort
	// deadline raced with the disarm and lost, this check still observes
	// the cancelled context; if cancellation lands after the check, the
	// watcher re-arms an immediate deadline and aborts the Recv.
	if cerr := c.ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("abnn2: session aborted: %w", cerr)
	}
	msg, err := c.inner.Recv()
	return msg, c.opErr(err)
}

func (c *sessionConn) SetDeadline(t time.Time) error { return c.inner.SetDeadline(t) }

func (c *sessionConn) Close() error {
	c.release()
	return c.inner.Close()
}
