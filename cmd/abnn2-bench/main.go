// Command abnn2-bench regenerates the paper's evaluation tables (1-5)
// and the ablation studies from DESIGN.md.
//
// Usage:
//
//	abnn2-bench                 # every table, full paper configuration
//	abnn2-bench -table 3        # one table
//	abnn2-bench -quick          # scaled-down shapes (< 1 minute total)
//	abnn2-bench -ablations      # ablation studies only
//
// Full mode runs the exact paper shapes (Figure 4 network, batch sizes up
// to 128) and can take several minutes on one core; see EXPERIMENTS.md
// for recorded outputs and the paper-vs-measured discussion.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"abnn2/internal/bench"
	"abnn2/internal/plan"
	"abnn2/internal/trace"
)

func main() {
	table := flag.String("table", "all", "which table to run: 1..5 or all")
	quick := flag.Bool("quick", false, "scaled-down shapes for a fast run")
	ablations := flag.Bool("ablations", false, "run ablation studies instead of tables")
	accuracy := flag.Bool("accuracy", false, "run the quantization accuracy ladder instead of tables")
	bankSplit := flag.Bool("bank", false, "run the offline/online correlation-bank split instead of tables")
	bankDurable := flag.Bool("bank-durable", false, "run the durable-bank cold/warm start-up split instead of tables")
	baselineOut := flag.String("baseline-out", "", "with -bank or -bank-durable: also write the rows as a JSON baseline to this file")
	workers := flag.Int("workers", 0, "worker goroutines for protocol kernels (0 = one per CPU)")
	traceOut := flag.String("trace-out", "", "append per-phase protocol spans as JSONL to this file (empty = off); replay with abnn2-inspect -trace")
	planFlag := flag.String("plan", "", "for -table plan: "+plan.FlagUsage)
	linkFlag := flag.String("link", "", "for -table plan: link model pricing the plan (lan, wan, or MBps:RTTms; empty = wan)")
	planOut := flag.String("plan-out", "", "for -table plan: also write the evaluated plan as JSON to this file (feed back via -plan @file)")
	flag.Parse()

	opt := bench.Options{Quick: *quick, Out: os.Stdout, Workers: *workers, Plan: *planFlag, Link: *linkFlag}
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "abnn2-bench: open trace output: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		opt.Trace = trace.NewJSONL(f)
	}
	if *accuracy {
		bench.Accuracy(opt)
		return
	}
	writeBaseline := func(table string, rows any) {
		if *baselineOut == "" {
			return
		}
		doc := struct {
			Table   string `json:"table"`
			Quick   bool   `json:"quick"`
			Workers int    `json:"workers"`
			Rows    any    `json:"rows"`
		}{Table: table, Quick: *quick, Workers: *workers, Rows: rows}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "abnn2-bench: marshal baseline: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*baselineOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "abnn2-bench: write baseline: %v\n", err)
			os.Exit(1)
		}
	}
	if *bankSplit {
		writeBaseline("bank-split", bench.TableBank(opt))
		return
	}
	if *bankDurable {
		writeBaseline("bank-durable", bench.TableBankDurable(opt))
		return
	}
	if *ablations {
		bench.AblationOneBatch(opt)
		bench.AblationMultiBatch(opt)
		bench.AblationReLU(opt)
		bench.AblationFragmentN(opt)
		bench.AblationRing(opt)
		bench.AblationXONN(opt)
		return
	}
	run := map[string]func(bench.Options){
		"1":   func(o bench.Options) { bench.Table1(o) },
		"2":   func(o bench.Options) { bench.Table2(o) },
		"3":   func(o bench.Options) { bench.Table3(o) },
		"4":   func(o bench.Options) { bench.Table4(o) },
		"5":   func(o bench.Options) { bench.Table5(o) },
		"cnn": func(o bench.Options) { bench.TableCNN(o) },
		"plan": func(o bench.Options) {
			rows := bench.TablePlan(o)
			writeBaseline("plan", rows)
			if *planOut != "" && len(rows) > 0 {
				writePlanJSON(*planOut, rows[0].Plan)
			}
		},
	}
	if *table == "all" {
		for _, k := range []string{"1", "2", "3", "4", "5", "cnn"} {
			run[k](opt)
		}
		return
	}
	f, ok := run[*table]
	if !ok {
		fmt.Fprintf(os.Stderr, "abnn2-bench: unknown table %q (want 1..5, cnn, plan, or all)\n", *table)
		os.Exit(2)
	}
	f(opt)
}

// writePlanJSON persists an evaluated plan (its compact string form,
// e.g. "abnn2,minionn") as the JSON @file form -plan accepts.
func writePlanJSON(path, planStr string) {
	p, err := plan.FromString(planStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "abnn2-bench: plan-out: %v\n", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "abnn2-bench: plan-out: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "abnn2-bench: plan-out: %v\n", err)
		os.Exit(1)
	}
}
