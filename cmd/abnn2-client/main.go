// Command abnn2-client connects to abnn2-server, receives the public
// architecture, and requests secure predictions for synthetic inputs.
// The server never sees the inputs; the client never sees the weights.
//
// Usage:
//
//	abnn2-client -connect localhost:9000 -n 4
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"abnn2"
)

func main() {
	addr := flag.String("connect", "localhost:9000", "server address")
	n := flag.Int("n", 4, "number of inputs to classify (one batch)")
	ringBits := flag.Uint("ring", 64, "share ring bit width l (must match server)")
	optRelu := flag.Bool("optimized-relu", false, "must match the server's setting")
	seed := flag.Uint64("dataset-seed", 7, "synthetic dataset seed")
	workers := flag.Int("workers", 0, "worker goroutines for protocol kernels (0 = one per CPU)")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("abnn2-client: ")

	tcp, err := net.Dial("tcp", *addr)
	if err != nil {
		log.Fatalf("dial: %v", err)
	}
	defer tcp.Close()
	conn := abnn2.Stream(tcp)
	raw, err := conn.Recv()
	if err != nil {
		log.Fatalf("recv architecture: %v", err)
	}
	var arch abnn2.Arch
	if err := json.Unmarshal(raw, &arch); err != nil {
		log.Fatalf("parse architecture: %v", err)
	}
	fmt.Printf("architecture: %d layers, input %d, output %d, scheme %s\n",
		len(arch.Layers), arch.InputSize(), arch.OutputSize(), arch.SchemeName)

	client, err := abnn2.Dial(conn, arch, abnn2.Config{RingBits: *ringBits, OptimizedReLU: *optRelu, Workers: *workers})
	if err != nil {
		log.Fatalf("setup: %v", err)
	}
	ds := abnn2.SyntheticDataset(*n, *seed)
	start := time.Now()
	classes, err := client.Classify(ds.Inputs)
	if err != nil {
		log.Fatalf("classify: %v", err)
	}
	elapsed := time.Since(start)
	correct := 0
	for i, c := range classes {
		fmt.Printf("input %2d: predicted class %d (true label %d)\n", i, c, ds.Labels[i])
		if c == ds.Labels[i] {
			correct++
		}
	}
	fmt.Printf("%d/%d match the true labels; batch took %v (offline+online)\n", correct, len(classes), elapsed)
}
