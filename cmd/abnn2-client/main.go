// Command abnn2-client connects to abnn2-server, completes the model
// handshake, and requests secure predictions for synthetic inputs. The
// server never sees the inputs; the client never sees the weights.
//
// The connect is retried with capped, jittered exponential backoff until
// -dial-timeout expires, so the client can be started before (or
// concurrently with) the server. Server backpressure is honored: a
// typed retryable rejection (saturated, bank-dry, draining) makes the
// client wait the server's retry-after hint — jittered, so a herd of
// shed clients does not stampede back together — and reconnect until
// admitted or out of budget. -round-timeout bounds each protocol round
// once admitted.
//
// Usage:
//
//	abnn2-client -connect localhost:9000 -n 4
//	abnn2-client -connect localhost:9000 -model mnist -n 4
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"abnn2"
	"abnn2/internal/serve"
)

func main() {
	addr := flag.String("connect", "localhost:9000", "server address")
	model := flag.String("model", "", "model name to request (empty = server default)")
	n := flag.Int("n", 4, "number of inputs to classify (one batch)")
	ringBits := flag.Uint("ring", 64, "share ring bit width l (must match server)")
	optRelu := flag.Bool("optimized-relu", false, "must match the server's setting")
	seed := flag.Uint64("dataset-seed", 7, "synthetic dataset seed")
	workers := flag.Int("workers", 0, "worker goroutines for protocol kernels (0 = one per CPU)")
	dialTimeout := flag.Duration("dial-timeout", 30*time.Second, "total connect budget including retries and admission backoff")
	roundTimeout := flag.Duration("round-timeout", time.Minute, "per-round protocol deadline (0 = unbounded)")
	traceOut := flag.String("trace-out", "", "append protocol spans as JSONL to this file (empty = off)")
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("component", "abnn2-client")

	var traceSink abnn2.TraceSink
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			logger.Error("open trace output", "err", err)
			os.Exit(1)
		}
		defer f.Close()
		traceSink = abnn2.NewTraceWriter(f)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *dialTimeout)
	defer cancel()
	conn, arch, err := serve.DialModel(ctx, *addr, *model)
	if err != nil {
		var rej *serve.RejectError
		if errors.As(err, &rej) {
			logger.Error("server rejected the connection", "code", rej.Rejection.Code,
				"retryable", rej.Rejection.Retryable, "reason", rej.Rejection.Reason)
		} else {
			logger.Error("dial", "addr", *addr, "err", err)
		}
		os.Exit(1)
	}
	defer conn.Close()
	fmt.Printf("architecture: %d layers, input %d, output %d, scheme %s\n",
		len(arch.Layers), arch.InputSize(), arch.OutputSize(), arch.SchemeName)

	cfg := abnn2.Config{
		RingBits:      *ringBits,
		OptimizedReLU: *optRelu,
		Workers:       *workers,
		RoundTimeout:  *roundTimeout,
		Trace:         traceSink,
	}
	client, err := abnn2.Dial(conn, arch, cfg)
	if err != nil {
		logger.Error("setup", "err", err)
		os.Exit(1)
	}
	defer client.Close()
	ds := abnn2.SyntheticDataset(*n, *seed)
	start := time.Now()
	classes, err := client.Classify(ds.Inputs)
	if err != nil {
		logger.Error("classify", "err", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	correct := 0
	for i, c := range classes {
		fmt.Printf("input %2d: predicted class %d (true label %d)\n", i, c, ds.Labels[i])
		if c == ds.Labels[i] {
			correct++
		}
	}
	fmt.Printf("%d/%d match the true labels; batch took %v (offline+online)\n", correct, len(classes), elapsed)
	stats := client.Stats()
	fmt.Printf("traffic: sent %d B, received %d B, %d messages, %d flights\n",
		stats.BytesAB, stats.BytesBA, stats.Messages, stats.Flights)
}
