// Command abnn2-client connects to abnn2-server, completes the model
// handshake, and requests secure predictions for synthetic inputs. The
// server never sees the inputs; the client never sees the weights.
//
// The connect is retried with capped, jittered exponential backoff until
// -dial-timeout expires, so the client can be started before (or
// concurrently with) the server. Server backpressure is honored: a
// typed retryable rejection (saturated, bank-dry, draining) makes the
// client wait the server's retry-after hint — jittered, so a herd of
// shed clients does not stampede back together — and reconnect until
// admitted or out of budget. -round-timeout bounds each protocol round
// once admitted.
//
// With -bank-dir the client keeps a durable correlation store of its
// own: -prefetch N first runs a remote offline-replenishment session
// against the server — the genuine two-party offline protocol, no
// dealer — persisting N peer-paired client halves, and the inference
// session then provisions each batch from that store (announcing the
// stored correlation id) instead of running the offline phase inline.
// Prefetched material survives restarts and stays bound to the server
// peer it was generated with.
//
// Usage:
//
//	abnn2-client -connect localhost:9000 -n 4
//	abnn2-client -connect localhost:9000 -model mnist -n 4
//	abnn2-client -connect localhost:9000 -bank-dir /var/lib/abnn2 -prefetch 8 -n 4
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"abnn2"
	"abnn2/internal/plan"
	"abnn2/internal/serve"
)

func main() {
	addr := flag.String("connect", "localhost:9000", "server address")
	model := flag.String("model", "", "model name to request (empty = server default)")
	n := flag.Int("n", 4, "number of inputs to classify (one batch)")
	ringBits := flag.Uint("ring", 64, "share ring bit width l (must match server)")
	optRelu := flag.Bool("optimized-relu", false, "must match the server's setting")
	seed := flag.Uint64("dataset-seed", 7, "synthetic dataset seed")
	workers := flag.Int("workers", 0, "worker goroutines for protocol kernels (0 = one per CPU)")
	dialTimeout := flag.Duration("dial-timeout", 30*time.Second, "total connect budget including retries and admission backoff")
	roundTimeout := flag.Duration("round-timeout", time.Minute, "per-round protocol deadline (0 = unbounded)")
	traceOut := flag.String("trace-out", "", "append protocol spans as JSONL to this file (empty = off)")
	bankDir := flag.String("bank-dir", "", "durable correlation store directory for peer-paired offline material (empty = off)")
	prefetch := flag.Int("prefetch", 0, "run a remote offline session stocking this many correlations of batch -n before inference (requires -bank-dir)")
	planFlag := flag.String("plan", "", plan.FlagUsage)
	linkFlag := flag.String("link", "wan", "link model pricing -plan auto: lan, wan, or MBps:RTTms")
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("component", "abnn2-client")
	if *prefetch > 0 && *bankDir == "" {
		logger.Error("-prefetch requires -bank-dir")
		os.Exit(1)
	}
	if *planFlag != "" && *prefetch > 0 {
		// Peer-paired pools hold all-ABNN2 material; a planned session
		// cannot draw from them.
		logger.Error("-plan cannot be combined with -prefetch (peer-paired pools are all-ABNN2)")
		os.Exit(1)
	}

	var traceSink abnn2.TraceSink
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			logger.Error("open trace output", "err", err)
			os.Exit(1)
		}
		defer f.Close()
		traceSink = abnn2.NewTraceWriter(f)
	}

	// Durable client-side correlation store: peer-paired offline material
	// lands here and survives restarts, with claim-before-use keeping
	// every correlation single-use even through crashes.
	var store *abnn2.BankStore
	var cbank *abnn2.Bank
	if *bankDir != "" {
		var err error
		store, err = abnn2.OpenBankStore(abnn2.BankStoreOptions{Dir: *bankDir})
		if err != nil {
			logger.Error("open bank store", "dir", *bankDir, "err", err)
			os.Exit(1)
		}
		defer store.Close()
		rstats, err := store.Recover()
		if err != nil {
			logger.Error("bank store recovery", "dir", *bankDir, "err", err)
			os.Exit(1)
		}
		logger.Info("bank store recovered", "dir", *bankDir, "peer", store.PeerID().String(),
			"records", rstats.Records, "claimed", rstats.Claimed,
			"torn_tails", rstats.TornTails, "quarantined", rstats.Quarantined)
		cbank = abnn2.NewBank(abnn2.BankOptions{Capacity: *prefetch, Workers: *workers, Store: store})
		defer cbank.Close()
	}

	baseCfg := abnn2.Config{
		RingBits:      *ringBits,
		OptimizedReLU: *optRelu,
		Workers:       *workers,
		RoundTimeout:  *roundTimeout,
		Trace:         traceSink,
	}
	dialFailed := func(what string, err error) {
		var rej *serve.RejectError
		if errors.As(err, &rej) {
			logger.Error("server rejected the "+what, "code", rej.Rejection.Code,
				"retryable", rej.Rejection.Retryable, "reason", rej.Rejection.Reason)
		} else {
			logger.Error(what+" dial", "addr", *addr, "err", err)
		}
		os.Exit(1)
	}

	// Prefetch: run the genuine two-party offline protocol ahead of need,
	// storing the client halves under the server's peer id. The initial
	// fill is synchronous — inference should find the pool warm — and a
	// background replenisher then keeps it above the low watermark for as
	// long as the process lives.
	if *prefetch > 0 {
		octx, ocancel := context.WithTimeout(context.Background(), *dialTimeout)
		oconn, oinfo, err := serve.DialOffline(octx, *addr, *model, store.PeerID().String())
		if err != nil {
			dialFailed("offline session", err)
		}
		serverPeer, err := abnn2.ParseBankPeerID(oinfo.Peer)
		if err != nil {
			logger.Error("server peer id", "peer", oinfo.Peer, "err", err)
			os.Exit(1)
		}
		ocfg := baseCfg
		ocfg.Bank, ocfg.BankModel, ocfg.SessionID = cbank, oinfo.BankID, oinfo.SessionID
		start := time.Now()
		got, rerr := abnn2.ReplenishSession(octx, oconn, oinfo.Arch, ocfg, serverPeer, *n, *prefetch)
		oconn.Close()
		ocancel()
		if rerr != nil {
			logger.Error("offline replenishment failed", "stored", got, "err", rerr)
			os.Exit(1)
		}
		logger.Info("correlations prefetched", "stored", got, "batch", *n,
			"dur", time.Since(start).Round(time.Millisecond))

		// Background replenishment: every draw during inference lowers the
		// pool; the replenisher tops it back up to the prefetch target with
		// fresh remote offline sessions, so a long-lived client never
		// degrades to the inline offline phase.
		low := *prefetch / 2
		if low < 1 {
			low = 1
		}
		rep, err := abnn2.NewBankReplenisher(abnn2.BankReplenishOptions{
			Bank: cbank,
			Peer: serverPeer,
			Keys: []abnn2.BankKey{{Model: oinfo.BankID, Scheme: oinfo.Arch.SchemeName,
				RingBits: *ringBits, Batch: *n, Backend: abnn2.BankSessionBackend}},
			Low:    low,
			Target: *prefetch,
			Run: func(ctx context.Context, key abnn2.BankKey, n int) (int, error) {
				rctx, cancel := context.WithTimeout(ctx, *dialTimeout)
				defer cancel()
				rconn, rinfo, err := serve.DialOffline(rctx, *addr, *model, store.PeerID().String())
				if err != nil {
					return 0, err
				}
				defer rconn.Close()
				rcfg := baseCfg
				rcfg.Bank, rcfg.BankModel, rcfg.SessionID = cbank, rinfo.BankID, rinfo.SessionID
				return abnn2.ReplenishSession(rctx, rconn, rinfo.Arch, rcfg, serverPeer, key.Batch, n)
			},
		})
		if err != nil {
			logger.Error("bank replenisher", "err", err)
			os.Exit(1)
		}
		rep.Start()
		defer rep.Close()
		logger.Info("background replenisher started", "low", low, "target", *prefetch)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *dialTimeout)
	defer cancel()
	dialStart := time.Now()
	conn, info, err := serve.DialModelInfo(ctx, *addr, *model)
	if err != nil {
		dialFailed("connection", err)
	}
	defer conn.Close()
	if traceSink != nil && info.SessionID != 0 {
		// Record connect + handshake + admission wait as a client-side
		// "dial" span, so the merged timeline can attribute pre-protocol
		// time to the admission queue rather than to compute.
		traceSink.Emit(abnn2.TraceSpan{ID: 1<<62 | info.SessionID, Party: "client",
			Session: info.SessionID, Name: "dial", Layer: -1,
			Start: dialStart, Dur: time.Since(dialStart)})
	}
	arch := info.Arch
	fmt.Printf("architecture: %d layers, input %d, output %d, scheme %s\n",
		len(arch.Layers), arch.InputSize(), arch.OutputSize(), arch.SchemeName)

	cfg := baseCfg
	cfg.SessionID = info.SessionID
	if *planFlag != "" {
		// The plan is computed from public state only (architecture, ring
		// width, batch, link); the server re-validates it per batch.
		link, err := plan.ParseLink(*linkFlag)
		if err != nil {
			logger.Error("bad -link", "err", err)
			os.Exit(1)
		}
		p, est, err := plan.FromFlag(*planFlag, plan.Input{
			Arch: arch, RingBits: *ringBits, Batch: *n, Link: link})
		if err != nil {
			logger.Error("bad -plan", "err", err)
			os.Exit(1)
		}
		fmt.Printf("plan: %s\n", p)
		if est != nil {
			fmt.Print(est.Table())
		}
		cfg.Plan = p
	}
	if cbank != nil && info.BankID != "" && info.Peer != "" {
		// Provision from the durable peer-paired pool; a dry pool falls
		// back to the inline offline phase (OfflineAuto).
		cfg.Bank, cfg.BankModel, cfg.BankPeer = cbank, info.BankID, info.Peer
	}
	client, err := abnn2.Dial(conn, arch, cfg)
	if err != nil {
		logger.Error("setup", "err", err)
		os.Exit(1)
	}
	defer client.Close()
	ds := abnn2.SyntheticDataset(*n, *seed)
	start := time.Now()
	classes, err := client.Classify(ds.Inputs)
	if err != nil {
		logger.Error("classify", "err", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	correct := 0
	for i, c := range classes {
		fmt.Printf("input %2d: predicted class %d (true label %d)\n", i, c, ds.Labels[i])
		if c == ds.Labels[i] {
			correct++
		}
	}
	fmt.Printf("%d/%d match the true labels; batch took %v (offline+online)\n", correct, len(classes), elapsed)
	stats := client.Stats()
	fmt.Printf("traffic: sent %d B, received %d B, %d messages, %d flights\n",
		stats.BytesAB, stats.BytesBA, stats.Messages, stats.Flights)
}
