// Command abnn2-server serves secure predictions for a quantized model
// over TCP. On each accepted connection it first sends the model's public
// architecture as JSON (shapes, ReLU positions, scheme name, fixed-point
// precision — never weights), then answers secure inference batches until
// the client disconnects.
//
// The server is built to survive hostile or broken clients: each
// connection is served in its own goroutine with panics contained at the
// session boundary, protocol rounds are bounded by -round-timeout so a
// stalled peer cannot pin a worker forever, concurrent sessions are
// capped by -max-conns, and SIGINT/SIGTERM triggers a graceful drain —
// no new connections, in-flight batches run to completion within
// -grace, then remaining sessions are aborted.
//
// Usage:
//
//	abnn2-train -out model.json
//	abnn2-server -model model.json -listen :9000
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"abnn2"
)

func main() {
	modelPath := flag.String("model", "model.json", "quantized model JSON")
	listen := flag.String("listen", ":9000", "listen address")
	ringBits := flag.Uint("ring", 64, "share ring bit width l")
	optRelu := flag.Bool("optimized-relu", false, "use the sign-leaking optimized ReLU (section 4.2)")
	workers := flag.Int("workers", 0, "worker goroutines for protocol kernels (0 = one per CPU)")
	maxConns := flag.Int("max-conns", 16, "maximum concurrent client sessions")
	roundTimeout := flag.Duration("round-timeout", time.Minute, "per-round protocol deadline (0 = unbounded)")
	grace := flag.Duration("grace", 30*time.Second, "drain period for in-flight sessions on shutdown")
	maxMsg := flag.Int("max-message", 0, "per-message size limit in bytes (0 = default 64 MiB)")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("abnn2-server: ")

	data, err := os.ReadFile(*modelPath)
	if err != nil {
		log.Fatalf("read model: %v", err)
	}
	qm, err := abnn2.LoadQuantizedModel(data)
	if err != nil {
		log.Fatalf("parse model: %v", err)
	}
	cfg := abnn2.Config{
		RingBits:      *ringBits,
		OptimizedReLU: *optRelu,
		Workers:       *workers,
		RoundTimeout:  *roundTimeout,
	}
	archJSON, err := json.Marshal(qm.Arch())
	if err != nil {
		log.Fatalf("marshal arch: %v", err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("serving %s model (%s) on %s, ring=%d relu-optimized=%v max-conns=%d round-timeout=%v",
		*modelPath, qm.Scheme(), ln.Addr(), *ringBits, *optRelu, *maxConns, *roundTimeout)

	// Shutdown protocol: the signal closes the listener (unblocking
	// Accept); in-flight sessions keep their own context so they can
	// finish within the grace period before being cancelled.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	connCtx, abortConns := context.WithCancel(context.Background())
	defer abortConns()
	go func() {
		<-sigCtx.Done()
		ln.Close()
	}()

	var wg sync.WaitGroup
	sem := make(chan struct{}, *maxConns)
	var acceptDelay time.Duration
	for {
		tcp, err := ln.Accept()
		if err != nil {
			if sigCtx.Err() != nil {
				break // shutting down; the listener was closed on purpose
			}
			// Transient accept failures (fd exhaustion, aborted handshakes)
			// must not kill a server with live sessions: back off and retry.
			if acceptDelay == 0 {
				acceptDelay = 50 * time.Millisecond
			} else if acceptDelay *= 2; acceptDelay > time.Second {
				acceptDelay = time.Second
			}
			log.Printf("accept: %v; retrying in %v", err, acceptDelay)
			time.Sleep(acceptDelay)
			continue
		}
		acceptDelay = 0
		select {
		case sem <- struct{}{}:
		default:
			log.Printf("%s: rejected, at capacity (%d sessions)", tcp.RemoteAddr(), *maxConns)
			tcp.Close()
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			defer tcp.Close()
			conn := abnn2.StreamLimit(tcp, *maxMsg)
			if err := conn.Send(archJSON); err != nil {
				log.Printf("%s: send arch: %v", tcp.RemoteAddr(), err)
				return
			}
			log.Printf("%s: connected", tcp.RemoteAddr())
			// ServeContext contains panics from malformed peer data and
			// enforces the round deadline, so one bad client costs at most
			// its own session.
			if err := abnn2.ServeContext(connCtx, conn, qm, cfg); err != nil {
				log.Printf("%s: %v", tcp.RemoteAddr(), err)
				return
			}
			log.Printf("%s: done", tcp.RemoteAddr())
		}()
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		log.Printf("shutdown: all sessions drained")
	case <-time.After(*grace):
		log.Printf("shutdown: grace period %v expired, aborting in-flight sessions", *grace)
		abortConns()
		<-done
	}
}
