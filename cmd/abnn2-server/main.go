// Command abnn2-server serves secure predictions for a quantized model
// over TCP. On each accepted connection it first sends the model's public
// architecture as JSON (shapes, ReLU positions, scheme name, fixed-point
// precision — never weights), then answers secure inference batches until
// the client disconnects.
//
// The server is built to survive hostile or broken clients: each
// connection is served in its own goroutine with panics contained at the
// session boundary, protocol rounds are bounded by -round-timeout so a
// stalled peer cannot pin a worker forever, concurrent sessions are
// capped by -max-conns, and SIGINT/SIGTERM triggers a graceful drain —
// no new connections, in-flight batches run to completion within
// -grace, then remaining sessions are aborted.
//
// Observability: every session is assigned an ID that correlates its
// structured log lines, trace spans, and metrics. -metrics-addr starts
// an HTTP endpoint exposing Prometheus text at /metrics, an
// expvar-style JSON document at /vars, and the pprof profiles under
// /debug/pprof/. -trace-out appends every protocol span (per phase, per
// layer, with byte/flight/duration attribution) to a JSONL file that
// abnn2-inspect -trace can replay into a breakdown table.
//
// Usage:
//
//	abnn2-train -out model.json
//	abnn2-server -model model.json -listen :9000 -metrics-addr :9090
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"abnn2"
	"abnn2/internal/bank"
	"abnn2/internal/metrics"
)

func main() {
	modelPath := flag.String("model", "model.json", "quantized model JSON")
	listen := flag.String("listen", ":9000", "listen address")
	ringBits := flag.Uint("ring", 64, "share ring bit width l")
	optRelu := flag.Bool("optimized-relu", false, "use the sign-leaking optimized ReLU (section 4.2)")
	workers := flag.Int("workers", 0, "worker goroutines for protocol kernels (0 = one per CPU)")
	maxConns := flag.Int("max-conns", 16, "maximum concurrent client sessions")
	roundTimeout := flag.Duration("round-timeout", time.Minute, "per-round protocol deadline (0 = unbounded)")
	grace := flag.Duration("grace", 30*time.Second, "drain period for in-flight sessions on shutdown")
	maxMsg := flag.Int("max-message", 0, "per-message size limit in bytes (0 = default 64 MiB)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /vars and /debug/pprof on this address (empty = off)")
	traceOut := flag.String("trace-out", "", "append protocol spans as JSONL to this file (empty = off)")
	bankCap := flag.Int("bank-capacity", 0, "correlation pool capacity per batch size (0 = bank off); "+
		"pools serve co-located clients sharing this process's bank — see DESIGN.md")
	bankLow := flag.Int("bank-low", 0, "pool low watermark triggering background refill (0 = capacity/2)")
	bankPrewarm := flag.String("bank-prewarm", "1", "comma-separated batch sizes to prewarm correlation pools for")
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("component", "abnn2-server")

	data, err := os.ReadFile(*modelPath)
	if err != nil {
		logger.Error("read model", "err", err)
		os.Exit(1)
	}
	qm, err := abnn2.LoadQuantizedModel(data)
	if err != nil {
		logger.Error("parse model", "err", err)
		os.Exit(1)
	}
	archJSON, err := json.Marshal(qm.Arch())
	if err != nil {
		logger.Error("marshal arch", "err", err)
		os.Exit(1)
	}

	// Telemetry: the metrics bridge always aggregates spans (the cost is
	// a few counter updates per phase); the HTTP endpoint and the JSONL
	// dump are opt-in.
	registry := metrics.NewRegistry()
	srvMetrics := metrics.NewServerMetrics(registry)
	traceSink := abnn2.TraceSink(srvMetrics)
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			logger.Error("open trace output", "err", err)
			os.Exit(1)
		}
		defer f.Close()
		traceSink = abnn2.MultiTraceSink(srvMetrics, abnn2.NewTraceWriter(f))
	}
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", registry.Handler())
		mux.Handle("/vars", registry.JSONHandler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		msrv := &http.Server{Addr: *metricsAddr, Handler: mux}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("metrics endpoint", "err", err)
			}
		}()
		defer msrv.Close()
		logger.Info("metrics endpoint up", "addr", *metricsAddr)
	}

	// Correlation bank: precomputes the offline phase off the request
	// path. Replenishment runs in the background; pool depth, hit/miss
	// and refill counters land in the metrics registry, refill spans in
	// the trace sink. Banked provisioning requires client and server to
	// share the bank instance (an in-process trust domain), so over TCP
	// this serves embedded/load-harness deployments; remote clients keep
	// using the inline offline phase.
	var corrBank *abnn2.Bank
	if *bankCap > 0 {
		corrBank = abnn2.NewBank(abnn2.BankOptions{
			Capacity: *bankCap,
			Low:      *bankLow,
			Workers:  *workers,
			Trace:    traceSink,
			Observer: bank.NewMetricsObserver(registry),
		})
		modelID, err := abnn2.RegisterBankModel(corrBank, qm)
		if err != nil {
			logger.Error("register bank model", "err", err)
			os.Exit(1)
		}
		batches := parseBatchList(*bankPrewarm)
		go func() {
			for _, b := range batches {
				key := abnn2.BankKey{Model: modelID, Scheme: qm.Scheme(),
					RingBits: *ringBits, Batch: b, Backend: bank.SessionBackend}
				if err := corrBank.Prewarm(key, *bankCap); err != nil {
					logger.Warn("bank prewarm", "batch", b, "err", err)
					return
				}
				logger.Info("bank pool warm", "key", key.String(), "depth", corrBank.Depth(key))
			}
		}()
		logger.Info("correlation bank up", "capacity", *bankCap, "model_id", modelID[:12])
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Error("listen", "err", err)
		os.Exit(1)
	}
	logger.Info("serving",
		"model", *modelPath, "scheme", qm.Scheme(), "addr", ln.Addr().String(),
		"ring", *ringBits, "relu_optimized", *optRelu,
		"max_conns", *maxConns, "round_timeout", *roundTimeout)

	// Shutdown protocol: the signal closes the listener (unblocking
	// Accept); in-flight sessions keep their own context so they can
	// finish within the grace period before being cancelled.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	connCtx, abortConns := context.WithCancel(context.Background())
	defer abortConns()
	go func() {
		<-sigCtx.Done()
		ln.Close()
	}()

	var wg sync.WaitGroup
	var nextSession atomic.Uint64
	sem := make(chan struct{}, *maxConns)
	var acceptDelay time.Duration
	for {
		tcp, err := ln.Accept()
		if err != nil {
			if sigCtx.Err() != nil {
				break // shutting down; the listener was closed on purpose
			}
			// Transient accept failures (fd exhaustion, aborted handshakes)
			// must not kill a server with live sessions: back off and retry.
			if acceptDelay == 0 {
				acceptDelay = 50 * time.Millisecond
			} else if acceptDelay *= 2; acceptDelay > time.Second {
				acceptDelay = time.Second
			}
			logger.Warn("accept failed", "err", err, "retry_in", acceptDelay)
			time.Sleep(acceptDelay)
			continue
		}
		acceptDelay = 0
		select {
		case sem <- struct{}{}:
		default:
			srvMetrics.ConnsRejected.Inc()
			logger.Warn("rejected at capacity", "remote", tcp.RemoteAddr().String(), "max_conns", *maxConns)
			tcp.Close()
			continue
		}
		session := nextSession.Add(1)
		srvMetrics.ConnsTotal.Inc()
		srvMetrics.ConnsActive.Add(1)
		// The session ID tags this connection's log lines, its trace
		// spans, and (through the spans) its metrics contributions.
		connLog := logger.With("session", session, "remote", tcp.RemoteAddr().String())
		cfg := abnn2.Config{
			RingBits:      *ringBits,
			OptimizedReLU: *optRelu,
			Workers:       *workers,
			RoundTimeout:  *roundTimeout,
			Trace:         traceSink,
			SessionID:     session,
			Bank:          corrBank,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			defer srvMetrics.ConnsActive.Add(-1)
			defer tcp.Close()
			conn := abnn2.StreamLimit(tcp, *maxMsg)
			if err := conn.Send(archJSON); err != nil {
				connLog.Error("send arch", "err", err)
				return
			}
			connLog.Info("connected")
			// ServeContext contains panics from malformed peer data and
			// enforces the round deadline, so one bad client costs at most
			// its own session.
			start := time.Now()
			stats, err := abnn2.ServeContext(connCtx, conn, qm, cfg)
			srvMetrics.ObserveSession(err, time.Since(start))
			if err != nil {
				connLog.Error("session failed", "err", err,
					"bytes_sent", stats.BytesAB, "bytes_recvd", stats.BytesBA)
				return
			}
			connLog.Info("session done",
				"bytes_sent", stats.BytesAB, "bytes_recvd", stats.BytesBA,
				"messages", stats.Messages, "flights", stats.Flights,
				"dur", time.Since(start).Round(time.Millisecond))
		}()
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		logger.Info("shutdown: all sessions drained")
	case <-time.After(*grace):
		logger.Warn("shutdown: grace period expired, aborting in-flight sessions", "grace", *grace)
		abortConns()
		<-done
	}
	if corrBank != nil {
		// In-flight pool replenishment gets the same grace the sessions
		// had; whatever is still generating afterwards is force-cancelled
		// (Close unblocks the generator protocol mid-round).
		dctx, cancel := context.WithTimeout(context.Background(), *grace)
		if err := corrBank.Drain(dctx); err != nil {
			logger.Warn("shutdown: bank drain expired, aborting replenishment", "err", err)
		}
		cancel()
		_ = corrBank.Close()
		logger.Info("shutdown: correlation bank closed")
	}
}

// parseBatchList parses the -bank-prewarm CSV; bad entries are skipped.
func parseBatchList(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		if n, err := strconv.Atoi(f); err == nil && n > 0 {
			out = append(out, n)
		}
	}
	return out
}
