// Command abnn2-server serves secure predictions over TCP through the
// resilient multi-tenant runtime in internal/serve. On each accepted
// connection the client opens with a model handshake (naming one of the
// hot models, or the default); the server answers with the model's
// public architecture (shapes, ReLU positions, scheme name, fixed-point
// precision — never weights) and serves secure inference batches until
// the client disconnects, or sheds the connection with a typed,
// retryable rejection carrying a retry-after hint.
//
// Resilience: admission is bounded (-max-conns session slots sized
// against worker-pool capacity), the handshake runs under
// -handshake-timeout so a slow-loris client can never pin a slot,
// protocol rounds are bounded by -round-timeout, panics are contained at
// the session boundary, and SIGINT/SIGTERM triggers a graceful drain —
// new handshakes are shed as "draining", in-flight batches run to
// completion within -grace, then remaining sessions are aborted. With a
// correlation bank configured the server degrades gracefully: sessions
// draw precomputed offline material while pools last and fall back to
// inline offline generation when they run dry (or shed with "bank-dry"
// under -offline banked).
//
// Observability: every session is assigned an ID that correlates its
// structured log lines, trace spans, and metrics. -metrics-addr starts
// an HTTP endpoint exposing Prometheus text at /metrics, an
// expvar-style JSON document at /vars, liveness and readiness at
// /healthz and /readyz (ready gates on bank prewarm and flips off at
// drain), and the pprof profiles under /debug/pprof/. -trace-out
// appends every protocol span to a JSONL file that abnn2-inspect -trace
// can replay into a breakdown table.
//
// Usage:
//
//	abnn2-train -out model.json
//	abnn2-server -model model.json -models alt=other.json -listen :9000 -metrics-addr :9090
package main

import (
	"context"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"abnn2"
	"abnn2/internal/bank"
	"abnn2/internal/metrics"
	"abnn2/internal/plan"
	"abnn2/internal/serve"
)

func main() {
	modelPath := flag.String("model", "model.json", "default quantized model JSON (registered under its file stem)")
	extraModels := flag.String("models", "", "additional hot models as comma-separated name=path pairs")
	listen := flag.String("listen", ":9000", "listen address")
	ringBits := flag.Uint("ring", 64, "share ring bit width l")
	optRelu := flag.Bool("optimized-relu", false, "use the sign-leaking optimized ReLU (section 4.2)")
	workers := flag.Int("workers", 0, "worker goroutines for protocol kernels (0 = one per CPU)")
	maxConns := flag.Int("max-conns", 0, "maximum concurrently admitted sessions (0 = derive from CPU count and -workers)")
	handshakeTimeout := flag.Duration("handshake-timeout", 10*time.Second, "deadline for a new connection to complete the model handshake")
	roundTimeout := flag.Duration("round-timeout", time.Minute, "per-round protocol deadline (0 = unbounded)")
	grace := flag.Duration("grace", 30*time.Second, "drain period for in-flight sessions on shutdown")
	maxMsg := flag.Int("max-message", 0, "per-message size limit in bytes (0 = default 64 MiB)")
	offlineMode := flag.String("offline", "auto", "offline provisioning: auto (bank with inline fallback), inline, banked (shed when pools are dry)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /vars, /healthz, /readyz, /debug/flightrecorder and /debug/pprof on this address (empty = off)")
	traceOut := flag.String("trace-out", "", "append protocol spans and flight stamps as JSONL to this file (empty = off)")
	slo := flag.Duration("slo", 0, "per-session latency SLO; breaches count in abnn2_slo_breaches_total and trigger diagnostics dumps (0 = off)")
	diagDir := flag.String("diag-dir", "", "write anomaly-triggered flight-recorder dumps (SLO breach, session error, shed) to this directory (empty = off)")
	diagProfile := flag.Duration("diag-profile", 0, "capture a CPU profile window of this length on each anomaly burst (0 = off; requires -diag-dir)")
	recorderEvents := flag.Int("recorder-events", abnn2.DefaultRecorderEvents, "flight-recorder ring size per session (0 = disable the recorder)")
	recorderSessions := flag.Int("recorder-sessions", abnn2.DefaultRecorderSessions, "flight-recorder session rings kept (LRU)")
	bankCap := flag.Int("bank-capacity", 0, "correlation pool capacity per (model, batch) (0 = bank off); "+
		"pools serve co-located clients sharing this process's bank — see DESIGN.md")
	bankLow := flag.Int("bank-low", 0, "pool low watermark triggering background refill (0 = capacity/2)")
	bankPrewarm := flag.String("bank-prewarm", "1", "comma-separated batch sizes to prewarm correlation pools for, per model")
	bankDir := flag.String("bank-dir", "", "durable bank store directory: pools persist across restarts and remote "+
		"clients may run peer-paired offline replenishment sessions (empty = memory-only; requires -bank-capacity > 0)")
	bankFsync := flag.Int("bank-fsync", 1, "fsync the claim journal every N claims (1 = every claim, the only "+
		"setting that makes single-use survive power loss)")
	planFlag := flag.String("plan", "", "required "+plan.FlagUsage+"; single-model registries only")
	linkFlag := flag.String("link", "wan", "link model pricing -plan auto: lan, wan, or MBps:RTTms")
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("component", "abnn2-server")

	mode, err := parseOfflineMode(*offlineMode)
	if err != nil {
		logger.Error("bad -offline", "err", err)
		os.Exit(1)
	}
	if mode == abnn2.OfflineBanked && *bankCap <= 0 {
		logger.Error("-offline banked requires -bank-capacity > 0")
		os.Exit(1)
	}
	if *bankDir != "" && *bankCap <= 0 {
		logger.Error("-bank-dir requires -bank-capacity > 0")
		os.Exit(1)
	}

	// Model registry: -model is the default entry, -models adds more hot
	// models, each admissible by name in the client handshake.
	registry := serve.NewRegistry()
	loadModel := func(name, path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			logger.Error("read model", "path", path, "err", err)
			os.Exit(1)
		}
		qm, err := abnn2.LoadQuantizedModel(data)
		if err != nil {
			logger.Error("parse model", "path", path, "err", err)
			os.Exit(1)
		}
		if _, err := registry.Add(name, qm); err != nil {
			logger.Error("register model", "name", name, "err", err)
			os.Exit(1)
		}
		logger.Info("model registered", "name", name, "scheme", qm.Scheme())
	}
	loadModel(modelStem(*modelPath), *modelPath)
	for _, pair := range splitNonEmpty(*extraModels) {
		name, path, ok := strings.Cut(pair, "=")
		if !ok {
			logger.Error("bad -models entry (want name=path)", "entry", pair)
			os.Exit(1)
		}
		loadModel(strings.TrimSpace(name), strings.TrimSpace(path))
	}

	// Telemetry: the metrics bridge always aggregates spans (the cost is
	// a few counter updates per phase); the HTTP endpoint and the JSONL
	// dump are opt-in.
	reg := metrics.NewRegistry()
	srvMetrics := metrics.NewServerMetrics(reg)
	serveMetrics := serve.NewMetrics(reg)
	traceSink := abnn2.TraceSink(srvMetrics)
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			logger.Error("open trace output", "err", err)
			os.Exit(1)
		}
		defer f.Close()
		traceSink = abnn2.MultiTraceSink(srvMetrics, abnn2.NewTraceWriter(f))
	}

	// Correlation bank: precomputes the offline phase off the request
	// path for every registered model. Banked provisioning requires
	// client and server to share the bank instance (an in-process trust
	// domain), so over TCP this serves embedded/load-harness deployments;
	// remote clients keep using the inline offline phase.
	var corrBank *abnn2.Bank
	var store *abnn2.BankStore
	if *bankCap > 0 {
		obs := bank.NewMetricsObserver(reg)
		if *bankDir != "" {
			var err error
			store, err = abnn2.OpenBankStore(abnn2.BankStoreOptions{
				Dir:        *bankDir,
				FsyncEvery: *bankFsync,
				Observer:   obs,
			})
			if err != nil {
				logger.Error("open bank store", "dir", *bankDir, "err", err)
				os.Exit(1)
			}
			logger.Info("durable bank store up", "dir", *bankDir,
				"peer", store.PeerID().String(), "fsync_every", *bankFsync)
		}
		corrBank = abnn2.NewBank(abnn2.BankOptions{
			Capacity: *bankCap,
			Low:      *bankLow,
			Workers:  *workers,
			Trace:    traceSink,
			Observer: obs,
			Store:    store,
		})
		logger.Info("correlation bank up", "capacity", *bankCap, "models", registry.Len())
	}

	// Flight recorder and anomaly diagnostics: the recorder is always on
	// (a bounded in-memory ring per session) unless sized to zero; the
	// diagnostics directory turns anomalies into on-disk dumps.
	var recorder *abnn2.FlightRecorder
	if *recorderEvents > 0 {
		recorder = abnn2.NewFlightRecorder(*recorderEvents, *recorderSessions)
	}
	if *diagDir != "" {
		if err := os.MkdirAll(*diagDir, 0o755); err != nil {
			logger.Error("create diagnostics dir", "dir", *diagDir, "err", err)
			os.Exit(1)
		}
	}

	// Required plan: every session must announce exactly this per-layer
	// backend schedule. The plan is per-model (layer counts must match),
	// so it is limited to single-model registries.
	var reqPlan *abnn2.Plan
	if *planFlag != "" {
		if registry.Len() != 1 {
			logger.Error("-plan requires a single-model registry", "models", registry.Len())
			os.Exit(1)
		}
		link, err := plan.ParseLink(*linkFlag)
		if err != nil {
			logger.Error("bad -link", "err", err)
			os.Exit(1)
		}
		p, est, err := plan.FromFlag(*planFlag, plan.Input{
			Arch: registry.Default().Quant.Arch(), RingBits: *ringBits, Batch: 1, Link: link})
		if err != nil {
			logger.Error("bad -plan", "err", err)
			os.Exit(1)
		}
		reqPlan = p
		logger.Info("plan required", "plan", p.String())
		if est != nil {
			os.Stderr.WriteString(est.Table())
		}
	}

	rt, err := serve.New(serve.Options{
		Registry:         registry,
		Bank:             corrBank,
		MaxSessions:      *maxConns,
		HandshakeTimeout: *handshakeTimeout,
		Session: abnn2.Config{
			RingBits:      *ringBits,
			OptimizedReLU: *optRelu,
			Workers:       *workers,
			RoundTimeout:  *roundTimeout,
			Trace:         traceSink,
			OfflineMode:   mode,
			Plan:          reqPlan,
		},
		Metrics:     serveMetrics,
		Logger:      logger,
		Recorder:    recorder,
		SLO:         *slo,
		DiagDir:     *diagDir,
		DiagProfile: *diagProfile,
	})
	if err != nil {
		logger.Error("serve runtime", "err", err)
		os.Exit(1)
	}
	if corrBank != nil {
		// Readiness gates on recovery then prewarm: /readyz answers 503
		// until the durable store's recovery scan has completed (restoring
		// persisted pools) and the pools for every (model, batch) pair have
		// been attempted.
		var keys []abnn2.BankKey
		for _, name := range registry.Names() {
			m, _ := registry.Get(name)
			for _, b := range parseBatchList(*bankPrewarm) {
				keys = append(keys, abnn2.BankKey{Model: m.BankID, Scheme: m.Quant.Scheme(),
					RingBits: *ringBits, Batch: b, Backend: bank.SessionBackend})
			}
		}
		if store != nil {
			rt.StartRecovery(store, keys, *bankCap)
		} else {
			rt.StartPrewarm(keys, *bankCap)
		}
	}

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/vars", reg.JSONHandler())
		mux.Handle("/healthz", rt.HealthzHandler())
		mux.Handle("/readyz", rt.ReadyzHandler())
		mux.Handle("/debug/flightrecorder", rt.FlightRecorderHandler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		msrv := &http.Server{Addr: *metricsAddr, Handler: mux}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("metrics endpoint", "err", err)
			}
		}()
		defer msrv.Close()
		logger.Info("metrics endpoint up", "addr", *metricsAddr)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Error("listen", "err", err)
		os.Exit(1)
	}
	logger.Info("serving",
		"models", strings.Join(registry.Names(), ","), "addr", ln.Addr().String(),
		"ring", *ringBits, "relu_optimized", *optRelu, "offline", mode.String(),
		"max_sessions", rt.Admission().Max(), "round_timeout", *roundTimeout)

	// Shutdown protocol: the signal closes the listener (unblocking
	// Accept) and drains the runtime — new handshakes are shed as
	// "draining", in-flight sessions keep their own context so they can
	// finish within the grace period before being cancelled.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	connCtx, abortConns := context.WithCancel(context.Background())
	defer abortConns()
	go func() {
		<-sigCtx.Done()
		ln.Close()
	}()

	var acceptDelay time.Duration
	for {
		tcp, err := ln.Accept()
		if err != nil {
			if sigCtx.Err() != nil {
				break // shutting down; the listener was closed on purpose
			}
			// Transient accept failures (fd exhaustion, aborted handshakes)
			// must not kill a server with live sessions: back off and retry.
			if acceptDelay == 0 {
				acceptDelay = 50 * time.Millisecond
			} else if acceptDelay *= 2; acceptDelay > time.Second {
				acceptDelay = time.Second
			}
			logger.Warn("accept failed", "err", err, "retry_in", acceptDelay)
			time.Sleep(acceptDelay)
			continue
		}
		acceptDelay = 0
		srvMetrics.ConnsTotal.Inc()
		// The runtime owns the connection's whole lifecycle: handshake
		// deadline, admission or typed rejection, session serve, close.
		go func() {
			srvMetrics.ConnsActive.Add(1)
			defer srvMetrics.ConnsActive.Add(-1)
			start := time.Now()
			err := rt.HandleConn(connCtx, abnn2.StreamLimit(tcp, *maxMsg), tcp.RemoteAddr().String())
			srvMetrics.ObserveSession(err, time.Since(start))
		}()
	}

	dctx, cancelDrain := context.WithTimeout(context.Background(), *grace)
	if err := rt.Drain(dctx); err != nil {
		logger.Warn("shutdown: grace period expired, aborting in-flight sessions", "err", err)
		abortConns()
		_ = rt.Drain(context.Background())
	} else {
		logger.Info("shutdown: all sessions drained")
	}
	cancelDrain()
	if corrBank != nil {
		// In-flight pool replenishment gets the same grace the sessions
		// had; whatever is still generating afterwards is force-cancelled
		// (Close unblocks the generator protocol mid-round).
		bctx, cancel := context.WithTimeout(context.Background(), *grace)
		if err := corrBank.Drain(bctx); err != nil {
			logger.Warn("shutdown: bank drain expired, aborting replenishment", "err", err)
		}
		cancel()
		_ = corrBank.Close()
		logger.Info("shutdown: correlation bank closed")
	}
	if store != nil {
		if err := store.Close(); err != nil {
			logger.Warn("shutdown: bank store close", "err", err)
		} else {
			logger.Info("shutdown: bank store closed")
		}
	}
}

// modelStem names a model after its file: "models/mnist.json" → "mnist".
func modelStem(path string) string {
	base := filepath.Base(path)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

func parseOfflineMode(s string) (abnn2.OfflineMode, error) {
	switch s {
	case "auto":
		return abnn2.OfflineAuto, nil
	case "inline":
		return abnn2.OfflineInline, nil
	case "banked":
		return abnn2.OfflineBanked, nil
	}
	return 0, strconv.ErrSyntax
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// parseBatchList parses the -bank-prewarm CSV; bad entries are skipped.
func parseBatchList(s string) []int {
	var out []int
	for _, f := range splitNonEmpty(s) {
		if n, err := strconv.Atoi(f); err == nil && n > 0 {
			out = append(out, n)
		}
	}
	return out
}
