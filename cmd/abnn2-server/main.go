// Command abnn2-server serves secure predictions for a quantized model
// over TCP. On each accepted connection it first sends the model's public
// architecture as JSON (shapes, ReLU positions, scheme name, fixed-point
// precision — never weights), then answers secure inference batches until
// the client disconnects.
//
// Usage:
//
//	abnn2-train -out model.json
//	abnn2-server -model model.json -listen :9000
package main

import (
	"encoding/json"
	"flag"
	"log"
	"net"
	"os"

	"abnn2"
)

func main() {
	modelPath := flag.String("model", "model.json", "quantized model JSON")
	listen := flag.String("listen", ":9000", "listen address")
	ringBits := flag.Uint("ring", 64, "share ring bit width l")
	optRelu := flag.Bool("optimized-relu", false, "use the sign-leaking optimized ReLU (section 4.2)")
	workers := flag.Int("workers", 0, "worker goroutines for protocol kernels (0 = one per CPU)")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("abnn2-server: ")

	data, err := os.ReadFile(*modelPath)
	if err != nil {
		log.Fatalf("read model: %v", err)
	}
	qm, err := abnn2.LoadQuantizedModel(data)
	if err != nil {
		log.Fatalf("parse model: %v", err)
	}
	cfg := abnn2.Config{RingBits: *ringBits, OptimizedReLU: *optRelu, Workers: *workers}
	archJSON, err := json.Marshal(qm.Arch())
	if err != nil {
		log.Fatalf("marshal arch: %v", err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("serving %s model (%s) on %s, ring=%d relu-optimized=%v",
		*modelPath, qm.Scheme(), ln.Addr(), *ringBits, *optRelu)
	for {
		tcp, err := ln.Accept()
		if err != nil {
			log.Fatalf("accept: %v", err)
		}
		go func() {
			defer tcp.Close()
			conn := abnn2.Stream(tcp)
			if err := conn.Send(archJSON); err != nil {
				log.Printf("%s: send arch: %v", tcp.RemoteAddr(), err)
				return
			}
			log.Printf("%s: connected", tcp.RemoteAddr())
			if err := abnn2.Serve(conn, qm, cfg); err != nil {
				log.Printf("%s: %v", tcp.RemoteAddr(), err)
				return
			}
			log.Printf("%s: done", tcp.RemoteAddr())
		}()
	}
}
