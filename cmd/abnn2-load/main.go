// Command abnn2-load is the load generator for the serving runtime: it
// drives many concurrent secure-inference clients — in-memory against an
// embedded runtime, or over TCP against a running abnn2-server — and
// reports latency quantiles and throughput from the live
// internal/metrics series.
//
// Every client honors the server's backpressure protocol: a typed
// retryable rejection (saturated, bank-dry, draining) is retried after
// the server's retry-after hint with jitter, so the generator doubles as
// a conformance check of the admission path. -require-hints turns a
// retryable rejection without a hint into a non-zero exit, which the CI
// loadtest job asserts on.
//
// In-memory mode (the default) builds its own multi-tenant runtime:
// -tenants small synthetic models (or the one model given with -model),
// an optional correlation bank (-bank-capacity), and a bounded admission
// controller (-max-sessions) — thousands of clients are then pipe pairs,
// no sockets needed. TCP mode (-connect) exercises a real server
// end-to-end, including DialTCP's jittered backoff.
//
// Usage:
//
//	abnn2-load -clients 64 -duration 10s -max-sessions 8
//	abnn2-load -connect localhost:9000 -clients 32 -duration 5s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"abnn2"
	"abnn2/internal/bank"
	"abnn2/internal/metrics"
	"abnn2/internal/serve"
)

func main() {
	connect := flag.String("connect", "", "server address for TCP mode (empty = embedded in-memory runtime)")
	modelPath := flag.String("model", "", "quantized model JSON for the embedded runtime (empty = synthetic models)")
	modelNames := flag.String("model-names", "", "comma-separated model names clients request round-robin (empty = server default)")
	tenants := flag.Int("tenants", 2, "synthetic models to register in the embedded runtime")
	clients := flag.Int("clients", 16, "concurrent clients")
	duration := flag.Duration("duration", 5*time.Second, "load duration (ignored when -requests > 0)")
	requests := flag.Int("requests", 0, "requests per client (0 = run until -duration)")
	sessionBatches := flag.Int("session-batches", 4, "batches per session before a client reconnects (slot turnover)")
	batch := flag.Int("batch", 1, "inputs per prediction batch")
	ringBits := flag.Uint("ring", 32, "share ring bit width l (must match the server in TCP mode)")
	optRelu := flag.Bool("optimized-relu", false, "use the sign-leaking optimized ReLU (must match the server in TCP mode)")
	workers := flag.Int("workers", 1, "worker goroutines per session kernel")
	roundTimeout := flag.Duration("round-timeout", time.Minute, "per-round protocol deadline")
	maxSessions := flag.Int("max-sessions", 0, "embedded runtime admission capacity (0 = CPU-derived)")
	bankCap := flag.Int("bank-capacity", 0, "embedded runtime correlation pool capacity (0 = bank off)")
	offline := flag.String("offline", "auto", "embedded runtime offline mode: auto, inline, banked")
	dialTimeout := flag.Duration("dial-timeout", 30*time.Second, "per-connect budget including admission retries")
	requireHints := flag.Bool("require-hints", false, "exit non-zero if any retryable rejection lacked a retry-after hint")
	seed := flag.Uint64("seed", 11, "synthetic input seed")
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("component", "abnn2-load")

	// Latency and outcome series live in an internal/metrics registry, so
	// the report below reads the same representation a scraper would.
	reg := metrics.NewRegistry()
	st := &loadStats{
		Latency:    reg.NewHistogram("abnn2_load_latency_seconds", "End-to-end latency of one prediction batch.", metrics.DurationBuckets),
		Requests:   reg.NewCounter("abnn2_load_requests_total", "Prediction batches completed."),
		Failures:   reg.NewCounter("abnn2_load_failures_total", "Prediction batches or sessions that failed."),
		Sessions:   reg.NewCounter("abnn2_load_sessions_total", "Sessions admitted."),
		Rejections: reg.NewCounterVec("abnn2_load_rejections_total", "Typed rejections observed, by code.", "code"),
		Hintless:   reg.NewCounter("abnn2_load_hintless_rejections_total", "Retryable rejections that carried no retry-after hint."),
	}

	mode, err := parseOfflineMode(*offline)
	if err != nil {
		logger.Error("bad -offline", "value", *offline)
		os.Exit(1)
	}

	names := splitNonEmpty(*modelNames)
	var dial func(ctx context.Context, i int) (abnn2.Conn, abnn2.Arch, abnn2.Config, error)
	ccfg := abnn2.Config{RingBits: *ringBits, OptimizedReLU: *optRelu, Workers: *workers, RoundTimeout: *roundTimeout}

	if *connect != "" {
		addr := *connect
		dial = func(ctx context.Context, i int) (abnn2.Conn, abnn2.Arch, abnn2.Config, error) {
			conn, err := abnn2.DialTCP(ctx, addr)
			if err != nil {
				return nil, abnn2.Arch{}, ccfg, err
			}
			info, err := serve.ClientHandshakeInfo(conn, pick(names, i))
			if err != nil {
				conn.Close()
				return nil, abnn2.Arch{}, ccfg, err
			}
			cfg := ccfg
			cfg.SessionID = info.SessionID
			return conn, info.Arch, cfg, nil
		}
		fmt.Printf("mode=tcp addr=%s clients=%d\n", addr, *clients)
	} else {
		rt, bankIDs, cleanup, err := embeddedRuntime(logger, *modelPath, *tenants, ccfg,
			*maxSessions, *bankCap, *batch, mode)
		if err != nil {
			logger.Error("embedded runtime", "err", err)
			os.Exit(1)
		}
		defer cleanup()
		for ready, reason := rt.ReadyState(); !ready; ready, reason = rt.ReadyState() {
			logger.Info("waiting for runtime readiness", "reason", reason)
			time.Sleep(250 * time.Millisecond)
		}
		if len(names) == 0 {
			names = rt.Registry().Names()
		}
		dial = func(ctx context.Context, i int) (abnn2.Conn, abnn2.Arch, abnn2.Config, error) {
			name := pick(names, i)
			conn, arch, err := rt.Connect(ctx, name)
			cfg := ccfg
			if rt.Bank() != nil && mode != abnn2.OfflineInline {
				// In-process clients share the runtime's trust domain, so they
				// may draw banked correlations like an embedded deployment.
				cfg.Bank = rt.Bank()
				cfg.OfflineMode = mode
				cfg.BankModel = bankIDs[name]
			}
			return conn, arch, cfg, err
		}
		fmt.Printf("mode=inproc tenants=%s max_sessions=%d bank_capacity=%d offline=%s clients=%d\n",
			strings.Join(rt.Registry().Names(), ","), rt.Admission().Max(), *bankCap, mode, *clients)
	}

	ctx := context.Background()
	var cancel context.CancelFunc
	if *requests <= 0 {
		ctx, cancel = context.WithTimeout(ctx, *duration)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			runClient(ctx, i, dial, st, *batch, *seed, *requests, *sessionBatches, *dialTimeout)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Report straight from the metrics series.
	reqs := st.Requests.Value()
	fmt.Printf("requests: %d ok, %d failed; sessions: %d admitted, %d retries after rejection\n",
		reqs, st.Failures.Value(), st.Sessions.Value(), st.Retries.Load())
	codes, counts := rejectionLines(st)
	for i, c := range codes {
		fmt.Printf("rejections[%s]: %d\n", c, counts[i])
	}
	if reqs > 0 {
		fmt.Printf("latency: p50=%s p90=%s p99=%s mean=%s\n",
			secs(st.Latency.Quantile(0.50)), secs(st.Latency.Quantile(0.90)),
			secs(st.Latency.Quantile(0.99)), secs(st.Latency.Sum()/float64(st.Latency.Count())))
		fmt.Printf("throughput: %.1f req/s over %v (batch=%d → %.1f inferences/s)\n",
			float64(reqs)/elapsed.Seconds(), elapsed.Round(time.Millisecond),
			*batch, float64(reqs)*float64(*batch)/elapsed.Seconds())
	}
	fmt.Printf("wire: sent %d B, received %d B\n", st.BytesSent.Load(), st.BytesRecvd.Load())

	switch {
	case st.Failures.Value() > 0:
		logger.Error("load run had failures", "failed", st.Failures.Value())
		os.Exit(1)
	case *requireHints && st.Hintless.Value() > 0:
		logger.Error("retryable rejections without retry-after hints", "count", st.Hintless.Value())
		os.Exit(1)
	case reqs == 0:
		logger.Error("no requests completed")
		os.Exit(1)
	}
}

// loadStats couples the metrics series with a few plain counters that
// have no natural series shape.
type loadStats struct {
	Latency    *metrics.Histogram
	Requests   *metrics.Counter
	Failures   *metrics.Counter
	Sessions   *metrics.Counter
	Rejections *metrics.CounterVec
	Hintless   *metrics.Counter

	Retries    atomic.Int64
	BytesSent  atomic.Int64
	BytesRecvd atomic.Int64
}

// runClient is one client's life: connect (riding out rejections with
// the server's hints), run a session of a few batches, reconnect, until
// the budget is spent. Session turnover is what lets shed clients take
// over freed slots mid-run.
func runClient(ctx context.Context, id int,
	dial func(context.Context, int) (abnn2.Conn, abnn2.Arch, abnn2.Config, error),
	st *loadStats, batch int, seed uint64, requests, sessionBatches int, dialTimeout time.Duration) {
	done := 0
	for ctx.Err() == nil && (requests <= 0 || done < requests) {
		conn, arch, cfg, err := connectRetry(ctx, id, dial, st, dialTimeout)
		if err != nil {
			if ctx.Err() == nil {
				st.Failures.Inc()
			}
			return
		}
		// Inputs are shaped by the model the handshake admitted us to.
		inputs := makeInputs(batch, seed+uint64(id), arch.InputSize())
		st.Sessions.Inc()
		client, err := abnn2.Dial(conn, arch, cfg)
		if err != nil {
			if ctx.Err() == nil {
				st.Failures.Inc()
			}
			conn.Close()
			continue
		}
		for b := 0; b < sessionBatches && ctx.Err() == nil && (requests <= 0 || done < requests); b++ {
			t0 := time.Now()
			if _, err := client.Classify(inputs); err != nil {
				switch {
				case ctx.Err() != nil:
				case errors.Is(err, abnn2.ErrBankDry):
					// Strict banked mode ran the pool dry mid-session: a
					// degradation event, not a failure — reconnect and the
					// admission gate re-checks depth (refill is under way).
					st.Rejections.With(serve.RejectBankDry).Inc()
				default:
					st.Failures.Inc()
				}
				break
			}
			st.Latency.Observe(time.Since(t0).Seconds())
			st.Requests.Inc()
			done++
		}
		stats := client.Stats()
		st.BytesSent.Add(int64(stats.BytesAB))
		st.BytesRecvd.Add(int64(stats.BytesBA))
		client.Close()
	}
}

// connectRetry dials until admitted, honoring typed retryable
// rejections: wait the server's hint (jittered; a default when the hint
// is missing), then try again. Gives up on permanent rejections, dial
// errors, context expiry, and a spent dialTimeout budget. The dial runs
// under ctx itself — not a derived timeout — because an in-process dial
// spawns the server session on that context, which must outlive the
// connect.
func connectRetry(ctx context.Context, id int,
	dial func(context.Context, int) (abnn2.Conn, abnn2.Arch, abnn2.Config, error),
	st *loadStats, dialTimeout time.Duration) (abnn2.Conn, abnn2.Arch, abnn2.Config, error) {
	deadline := time.Now().Add(dialTimeout)
	for {
		conn, arch, cfg, err := dial(ctx, id)
		if err == nil {
			return conn, arch, cfg, nil
		}
		var rej *serve.RejectError
		if !errors.As(err, &rej) || !rej.Temporary() {
			return nil, arch, cfg, err
		}
		st.Rejections.With(rej.Rejection.Code).Inc()
		wait := rej.Rejection.RetryAfter()
		if wait <= 0 {
			st.Hintless.Inc()
			wait = 100 * time.Millisecond
		}
		if time.Now().After(deadline) {
			return nil, arch, cfg, fmt.Errorf("admission retry budget spent (last: %w)", err)
		}
		st.Retries.Add(1)
		select {
		case <-ctx.Done():
			return nil, arch, cfg, ctx.Err()
		case <-time.After(serve.Jitter(wait)):
		}
	}
}

// embeddedRuntime builds the in-memory serving runtime: tenant models
// (loaded or synthetic), optional bank, admission, and logging. The
// returned map resolves model name → bank model ID for banked clients.
func embeddedRuntime(logger *slog.Logger, modelPath string, tenants int, ccfg abnn2.Config,
	maxSessions, bankCap, batch int, mode abnn2.OfflineMode,
) (*serve.Runtime, map[string]string, func(), error) {
	registry := serve.NewRegistry()
	if modelPath != "" {
		data, err := os.ReadFile(modelPath)
		if err != nil {
			return nil, nil, nil, err
		}
		qm, err := abnn2.LoadQuantizedModel(data)
		if err != nil {
			return nil, nil, nil, err
		}
		if _, err := registry.Add("m0", qm); err != nil {
			return nil, nil, nil, err
		}
	} else {
		if tenants < 1 {
			tenants = 1
		}
		for i := 0; i < tenants; i++ {
			// Distinct hidden sizes give each tenant a distinct architecture
			// and bank identity; untrained weights are fine — load runs
			// exercise protocol cost, not accuracy.
			qm, err := abnn2.NewMLP(12, 8+2*i, 4).Quantize("4(2,2)", 6)
			if err != nil {
				return nil, nil, nil, err
			}
			if _, err := registry.Add(fmt.Sprintf("m%d", i), qm); err != nil {
				return nil, nil, nil, err
			}
		}
	}
	var corrBank *abnn2.Bank
	if bankCap > 0 {
		corrBank = abnn2.NewBank(abnn2.BankOptions{Capacity: bankCap, Workers: ccfg.Workers})
	}
	scfg := ccfg
	scfg.OfflineMode = mode
	rt, err := serve.New(serve.Options{
		Registry:    registry,
		Bank:        corrBank,
		MaxSessions: maxSessions,
		Session:     scfg,
		Logger:      logger,
	})
	if err != nil {
		if corrBank != nil {
			corrBank.Close()
		}
		return nil, nil, nil, err
	}
	bankIDs := make(map[string]string)
	var keys []abnn2.BankKey
	for _, name := range registry.Names() {
		m, _ := registry.Get(name)
		bankIDs[name] = m.BankID
		if corrBank != nil {
			keys = append(keys, abnn2.BankKey{Model: m.BankID, Scheme: m.Quant.Scheme(),
				RingBits: ccfg.RingBits, Batch: batch, Backend: bank.SessionBackend})
		}
	}
	// Readiness (polled by main before the run) gates on this prewarm.
	rt.StartPrewarm(keys, bankCap)
	cleanup := func() {
		if corrBank != nil {
			corrBank.Close()
		}
	}
	return rt, bankIDs, cleanup, nil
}

// makeInputs builds one deterministic batch of inputs of the given
// dimension.
func makeInputs(batch int, seed uint64, dim int) [][]float64 {
	if batch < 1 {
		batch = 1
	}
	ins := make([][]float64, batch)
	for k := range ins {
		x := make([]float64, dim)
		for i := range x {
			x[i] = float64((uint64(k*31+i*17)+seed)%23)/23 - 0.5
		}
		ins[k] = x
	}
	return ins
}

// secs renders a latency in seconds as a rounded duration; NaN (empty
// histogram) renders as "n/a".
func secs(s float64) string {
	if s != s {
		return "n/a"
	}
	return time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond).String()
}

func pick(names []string, i int) string {
	if len(names) == 0 {
		return ""
	}
	return names[i%len(names)]
}

func rejectionLines(st *loadStats) ([]string, []int64) {
	type kv struct {
		code string
		n    int64
	}
	var rows []kv
	// CounterVec has no public iteration; go through the Prometheus text
	// would be overkill — track codes we know instead.
	for _, code := range []string{serve.RejectSaturated, serve.RejectBankDry, serve.RejectDraining,
		serve.RejectUnknownModel, serve.RejectBadHello} {
		if n := st.Rejections.With(code).Value(); n > 0 {
			rows = append(rows, kv{code, n})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	codes := make([]string, len(rows))
	counts := make([]int64, len(rows))
	for i, r := range rows {
		codes[i], counts[i] = r.code, r.n
	}
	return codes, counts
}

func parseOfflineMode(s string) (abnn2.OfflineMode, error) {
	switch s {
	case "auto":
		return abnn2.OfflineAuto, nil
	case "inline":
		return abnn2.OfflineInline, nil
	case "banked":
		return abnn2.OfflineBanked, nil
	}
	return 0, fmt.Errorf("unknown offline mode %q", s)
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
