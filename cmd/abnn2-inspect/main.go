// Command abnn2-inspect prints a quantized model's structure and its
// predicted secure-inference cost: per-layer OT counts and offline
// communication from the paper's Table 1 closed forms, plus GC costs for
// the activation layers — before running any protocol. Useful for sizing
// batch/bitwidth/link trade-offs offline.
//
// With -trace it instead replays a recorded span dump (the JSONL files
// written by the -trace-out flags of abnn2-server, abnn2-client, and
// abnn2-bench) and prints the measured per-phase/per-layer breakdown —
// the observed counterpart of the projections above, in the shape of
// the paper's cost tables.
//
// With -timeline it merges the JSONL dumps of a session's two endpoints
// (client and server -trace-out files, comma-separated) into one
// reconciled cross-party timeline: it estimates the clock offset between
// the parties from matched wire flights, shifts the client's stamps onto
// the server clock, and attributes every interval of the session's wall
// time to compute, wire transit, admission-queue wait, or bank wait —
// exiting non-zero if the attribution does not tile the wall time within
// -tolerance.
//
// With -bank-audit it instead audits a durable bank store directory's
// claim journal for double-spent correlation ids — the single-use
// invariant scripts/crashtest.sh asserts after SIGKILL/restart cycles —
// exiting non-zero if any id was claimed twice.
//
// Usage:
//
//	abnn2-train -out model.json
//	abnn2-inspect -model model.json -batch 1,32,128 -wan 9,72
//	abnn2-inspect -trace spans.jsonl
//	abnn2-inspect -timeline client.jsonl,server.jsonl
//	abnn2-inspect -bank-audit /var/lib/abnn2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"abnn2/internal/bank"
	"abnn2/internal/core"
	"abnn2/internal/nn"
	"abnn2/internal/otext"
	"abnn2/internal/plan"
	"abnn2/internal/trace"
)

func main() {
	modelPath := flag.String("model", "model.json", "quantized model JSON")
	batches := flag.String("batch", "1,32,128", "comma-separated batch sizes to project")
	ringBits := flag.Uint("ring", 32, "share ring bit width l")
	wan := flag.String("wan", "9,72", "WAN model as bandwidthMBps,rttMs")
	tracePath := flag.String("trace", "", "replay a JSONL span dump instead of projecting a model")
	timeline := flag.String("timeline", "", "merge comma-separated JSONL dumps (client and server) into a cross-party session timeline")
	session := flag.Uint64("session", 0, "session id for -timeline (0 = the unique session both parties recorded)")
	tolerance := flag.Float64("tolerance", 0.01, "allowed fraction of wall time left unattributed by -timeline before failing")
	jsonOut := flag.Bool("json", false, "emit the -timeline result as JSON instead of a table")
	bankAudit := flag.String("bank-audit", "", "audit a bank store directory's claim journal for double-spent ids")
	planFlag := flag.String("plan", "", "print the "+
		"protocol planner's predicted per-layer cost table for -model (auto, a backend name, or @file); "+
		"with -trace, also the measured per-layer offline spans beside it")
	linkFlag := flag.String("link", "wan", "link model pricing -plan: lan, wan, or MBps:RTTms")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("abnn2-inspect: ")

	if *bankAudit != "" {
		auditBank(*bankAudit)
		return
	}
	if *timeline != "" {
		buildTimeline(*timeline, *session, *tolerance, *jsonOut)
		return
	}
	if *planFlag != "" {
		planReport(*modelPath, *planFlag, *linkFlag, *batches, *ringBits, *tracePath)
		return
	}
	if *tracePath != "" {
		replayTrace(*tracePath)
		return
	}

	data, err := os.ReadFile(*modelPath)
	if err != nil {
		log.Fatalf("read model: %v", err)
	}
	qm, err := nn.UnmarshalQuantized(data)
	if err != nil {
		log.Fatalf("parse model: %v", err)
	}
	bws, rtt, err := parseWAN(*wan)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("model: %d layers, scheme %s, frac %d, ring Z_2^%d\n",
		len(qm.Layers), qm.Layers[0].Scheme.Name(), qm.Frac, *ringBits)
	fmt.Println("\nlayers:")
	var neurons int
	for i, l := range qm.Layers {
		kind := "FC"
		extra := ""
		if l.Conv != nil {
			kind = "conv"
			extra = fmt.Sprintf(" %dx%d/%d over %dx%dx%d", l.Conv.Kh, l.Conv.Kw, l.Conv.Stride, l.Conv.Ci, l.Conv.H, l.Conv.W)
		}
		if l.Pool != nil {
			extra += fmt.Sprintf(" + pool %d", l.Pool.K)
		}
		relu := ""
		if l.ReLU {
			relu = " + ReLU"
			neurons += l.OutputSize()
		}
		req := ""
		if l.ReqC != 0 {
			req = fmt.Sprintf(" (requant %d/2^%d)", l.ReqC, l.ReqT)
		}
		fmt.Printf("  %d: %s %d -> %d%s%s%s\n", i, kind, l.In, l.OutputSize(), extra, relu, req)
	}

	fmt.Printf("\nprojected offline cost (Table 1 closed forms), WAN %.1f MB/s + %d ms RTT:\n", bws, rtt)
	fmt.Printf("%8s %14s %12s %14s\n", "batch", "#OT", "offline MB", "WAN transfer s")
	for _, bStr := range strings.Split(*batches, ",") {
		b, err := strconv.Atoi(strings.TrimSpace(bStr))
		if err != nil || b <= 0 {
			log.Fatalf("bad batch size %q", bStr)
		}
		var ots int64
		var bits float64
		for _, l := range qm.Layers {
			sh := core.MatShape{M: l.Out, N: l.ColRows(), O: b * l.Cols()}
			c := core.OfflineComplexity(*ringBits, l.Scheme, sh)
			ots += c.NumOTs
			bits += c.CommBits
		}
		mb := bits / 8 / (1 << 20)
		fmt.Printf("%8d %14d %12.2f %14.2f\n", b, ots, mb, bits/8/(bws*1e6))
	}

	// GC activation cost: ~3l AND gates per neuron per prediction.
	perNeuronAND := 3 * int(*ringBits)
	fmt.Printf("\nactivations: %d ReLU neurons/prediction -> ~%d AND gates, ~%.2f MB garbled tables each\n",
		neurons, neurons*perNeuronAND,
		float64(neurons*perNeuronAND)*2*16/(1<<20))
	fmt.Printf("(kappa = %d; one-batch C-OT and multi-batch packing selected automatically per batch)\n", otext.Kappa)
}

// planReport prints the protocol planner's predicted per-layer cost
// table for a model, and — when a span dump is supplied — the measured
// per-layer offline ("triplets") spans beside the predictions, so a
// recorded run can be judged against the cost model that planned it.
func planReport(modelPath, planVal, linkVal, batches string, ringBits uint, tracePath string) {
	data, err := os.ReadFile(modelPath)
	if err != nil {
		log.Fatalf("read model: %v", err)
	}
	qm, err := nn.UnmarshalQuantized(data)
	if err != nil {
		log.Fatalf("parse model: %v", err)
	}
	link, err := plan.ParseLink(linkVal)
	if err != nil {
		log.Fatal(err)
	}
	batch := 1
	if first := strings.Split(batches, ",")[0]; first != "" {
		if b, err := strconv.Atoi(strings.TrimSpace(first)); err == nil && b > 0 {
			batch = b
		}
	}
	in := plan.Input{Arch: core.ArchOf(qm), RingBits: ringBits, Batch: batch, Link: link}
	p, est, err := plan.FromFlag(planVal, in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %s (batch %d, %s link)\n", p, batch, link.Name)
	if est == nil {
		log.Fatalf("plan %s cannot be priced by the cost model", p)
	}
	fmt.Print(est.Table())
	if tracePath == "" {
		return
	}

	f, err := os.Open(tracePath)
	if err != nil {
		log.Fatalf("open trace: %v", err)
	}
	defer f.Close()
	spans, err := trace.ReadJSONL(f)
	if err != nil {
		log.Fatalf("parse trace: %v", err)
	}
	// One party's view of each layer's offline span is the measured
	// counterpart of the predicted row; prefer the client's (both
	// directions of the shared wire appear in either).
	party := "server"
	for _, s := range spans {
		if s.Party == "client" && s.Name == "triplets" {
			party = "client"
			break
		}
	}
	type agg struct {
		bytes, flights int64
		dur            float64
		n              int
	}
	perLayer := map[int]*agg{}
	for _, s := range spans {
		if s.Name != "triplets" || s.Party != party || s.Layer < 0 {
			continue
		}
		a := perLayer[s.Layer]
		if a == nil {
			a = &agg{}
			perLayer[s.Layer] = a
		}
		a.bytes += s.Bytes()
		a.flights += s.Flights
		a.dur += s.Dur.Seconds()
		a.n++
	}
	if len(perLayer) == 0 {
		log.Fatalf("trace %s holds no per-layer triplets spans", tracePath)
	}
	fmt.Printf("\nmeasured offline spans (%s party, %s):\n", party, tracePath)
	fmt.Printf("%5s %10s %12s %12s %9s %8s\n", "layer", "runs", "meas comm", "pred comm", "flights", "wall s")
	for li, l := range est.Layers {
		a := perLayer[li]
		if a == nil {
			fmt.Printf("%5d %10s\n", li, "-")
			continue
		}
		fmt.Printf("%5d %10d %12s %12s %9d %8.3f\n",
			li, a.n, fmtMB(a.bytes), fmtMB(int64(l.Chosen.CommBits/8)), a.flights, a.dur)
	}
}

// fmtMB renders a byte count in MB with enough precision for small
// layers.
func fmtMB(b int64) string {
	return fmt.Sprintf("%.3f MB", float64(b)/(1<<20))
}

// replayTrace loads a recorded span dump and prints the measured
// per-phase/per-layer cost breakdown plus per-session root totals.
func replayTrace(path string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatalf("open trace: %v", err)
	}
	defer f.Close()
	spans, err := trace.ReadJSONL(f)
	if err != nil {
		log.Fatalf("parse trace: %v", err)
	}
	if len(spans) == 0 {
		log.Fatalf("trace %s holds no spans", path)
	}
	sessions := map[uint64]bool{}
	for _, s := range spans {
		sessions[s.Session] = true
	}
	fmt.Printf("%s: %d spans, %d sessions\n\n", path, len(spans), len(sessions))
	fmt.Print(trace.FormatTable(trace.Summarize(spans)))

	roots := trace.Roots(spans)
	var sent, recvd, flights int64
	batches := 0
	for _, r := range roots {
		sent += r.BytesSent
		recvd += r.BytesRecvd
		flights += r.Flights
		if r.Name == "batch" && r.Err == "" {
			batches++
		}
	}
	fmt.Printf("\nroot totals: %d B sent, %d B received, %d flights, %d completed batches\n",
		sent, recvd, flights, batches)
}

// buildTimeline merges the span/flight dumps named in paths (comma-
// separated; typically the client's and the server's -trace-out files)
// and prints the reconciled cross-party timeline of one session. With
// session == 0 the session is auto-detected: exactly one session must
// have flights from both parties.
func buildTimeline(paths string, session uint64, tolerance float64, jsonOut bool) {
	var spans []trace.Span
	var flights []trace.Flight
	for _, p := range strings.Split(paths, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		f, err := os.Open(p)
		if err != nil {
			log.Fatalf("open dump: %v", err)
		}
		ss, ff, err := trace.ReadDump(f)
		f.Close()
		if err != nil {
			log.Fatalf("parse dump %s: %v", p, err)
		}
		spans = append(spans, ss...)
		flights = append(flights, ff...)
	}
	if session == 0 {
		ids := trace.Sessions(flights)
		switch len(ids) {
		case 0:
			log.Fatalf("no session has flights from both parties (did both endpoints trace with -trace-out?)")
		case 1:
			session = ids[0]
		default:
			log.Fatalf("%d sessions have flights from both parties (%v); pick one with -session", len(ids), ids)
		}
	}
	tl, err := trace.BuildTimeline(session, spans, flights)
	if err != nil {
		log.Fatal(err)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tl); err != nil {
			log.Fatalf("encode timeline: %v", err)
		}
	} else {
		fmt.Print(trace.FormatTimeline(tl))
	}
	if err := tl.Check(tolerance); err != nil {
		log.Fatal(err)
	}
}

func parseWAN(s string) (float64, int, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("abnn2-inspect: -wan wants bandwidthMBps,rttMs")
	}
	bw, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil || bw <= 0 {
		return 0, 0, fmt.Errorf("abnn2-inspect: bad bandwidth %q", parts[0])
	}
	rtt, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil || rtt < 0 {
		return 0, 0, fmt.Errorf("abnn2-inspect: bad RTT %q", parts[1])
	}
	return bw, rtt, nil
}

// auditBank scans a durable store's claim journal for double-spent
// correlation ids and exits non-zero when any are found.
func auditBank(dir string) {
	res, err := bank.AuditJournal(dir)
	if err != nil {
		log.Fatalf("bank audit: %v", err)
	}
	fmt.Printf("bank audit of %s:\n", dir)
	fmt.Printf("  journal entries: %d\n", res.Entries)
	if res.TornTail {
		fmt.Println("  torn tail: yes (crashed append; recovery truncates it)")
	}
	if len(res.Dupes) == 0 {
		fmt.Println("  double-spent ids: none")
		return
	}
	for _, d := range res.Dupes {
		fmt.Printf("  DOUBLE SPEND: scope %016x id %016x claimed %d times\n",
			d.ScopeHash, d.ID, d.Count)
	}
	os.Exit(1)
}
