// Command abnn2-train trains the paper's Figure 4 network on the
// synthetic MNIST-shaped dataset, quantizes it under a chosen scheme, and
// writes both models as JSON. The quantized model file is what
// abnn2-server serves.
//
// Usage:
//
//	abnn2-train -scheme "8(2,2,2,2)" -epochs 5 -out model.json
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"abnn2"
)

func main() {
	scheme := flag.String("scheme", "8(2,2,2,2)", "quantization scheme (binary, ternary, or eta(w1,w2,...))")
	arch := flag.String("arch", "fig4", "architecture: fig4 (paper's 784-128-128-10 MLP) or cnn (conv+pool)")
	epochs := flag.Int("epochs", 5, "training epochs")
	samples := flag.Int("samples", 2000, "synthetic dataset size")
	frac := flag.Uint("frac", 8, "activation fixed-point fractional bits")
	requant := flag.Bool("requant", false, "insert per-layer requantization (enables small rings like l=32)")
	out := flag.String("out", "model.json", "output path for the quantized model")
	floatOut := flag.String("float-out", "", "optional output path for the float model")
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("component", "abnn2-train")

	ds := abnn2.SyntheticDataset(*samples, 42)
	train, test := ds.Split(0.9)
	var model *abnn2.Model
	switch *arch {
	case "fig4":
		model = abnn2.Fig4Network()
		fmt.Printf("training Fig.4 network (784-128-128-10) on %d samples, %d epochs...\n", len(train.Inputs), *epochs)
	case "cnn":
		model = abnn2.NewSmallCNN(4)
		fmt.Printf("training small CNN (conv 5x5 -> pool 2 -> FC) on %d samples, %d epochs...\n", len(train.Inputs), *epochs)
	default:
		logger.Error("unknown architecture (want fig4 or cnn)", "arch", *arch)
		os.Exit(1)
	}
	loss := model.Train(train.Inputs, train.Labels, abnn2.TrainOptions{Epochs: *epochs})
	floatAcc := model.Accuracy(test.Inputs, test.Labels)
	fmt.Printf("final loss %.4f, float test accuracy %.1f%%\n", loss, 100*floatAcc)

	quantize := model.Quantize
	if *requant {
		quantize = model.QuantizeRequant
	}
	qm, err := quantize(*scheme, *frac)
	if err != nil {
		logger.Error("quantize", "err", err)
		os.Exit(1)
	}
	qAcc := qm.Accuracy(test.Inputs, test.Labels)
	fmt.Printf("quantized (%s) test accuracy %.1f%%\n", *scheme, 100*qAcc)

	data, err := qm.MarshalJSON()
	if err != nil {
		logger.Error("marshal", "err", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		logger.Error("write model", "path", *out, "err", err)
		os.Exit(1)
	}
	fmt.Printf("wrote quantized model to %s (%d bytes)\n", *out, len(data))

	if *floatOut != "" {
		fdata, err := model.MarshalJSON()
		if err != nil {
			logger.Error("marshal float model", "err", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*floatOut, fdata, 0o644); err != nil {
			logger.Error("write float model", "path", *floatOut, "err", err)
			os.Exit(1)
		}
		fmt.Printf("wrote float model to %s\n", *floatOut)
	}
}
