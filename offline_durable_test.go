package abnn2

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// Remote offline session suite: the no-dealer replenishment path end to
// end — two genuinely separate stores filled over a pipe by the real
// two-party offline protocol, peer-banked online sessions provisioned
// from them, single-use across simulated crashes, and error-not-hang
// under link faults.

// durableParty is one side of a remote pair: its own store and bank.
type durableParty struct {
	store *BankStore
	bank  *Bank
}

func newDurableParty(t *testing.T, dir string, capacity int) *durableParty {
	t.Helper()
	st, err := OpenBankStore(BankStoreOptions{Dir: dir})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	if _, err := st.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	b := NewBank(BankOptions{Capacity: capacity, Store: st})
	t.Cleanup(func() {
		b.Close()
		st.Close()
	})
	return &durableParty{store: st, bank: b}
}

// replenishPair runs one remote offline session over a pipe, the server
// side in a goroutine, and returns how many correlations the client
// stored. Both parties end up with their half in their own store.
func replenishPair(t *testing.T, qm *QuantizedModel, srv, cli *durableParty, batch, n int) int {
	t.Helper()
	id, err := BankModelID(qm)
	if err != nil {
		t.Fatal(err)
	}
	sconn, cconn := Pipe()
	scfg := Config{RingBits: 32, RoundTimeout: chaosRoundTimeout, Bank: srv.bank}
	ccfg := Config{RingBits: 32, Seed: 0x0FF1, RoundTimeout: chaosRoundTimeout,
		Bank: cli.bank, BankModel: id}
	srvErr := make(chan error, 1)
	go func() {
		err := ServeOfflineSession(context.Background(), sconn, qm, scfg, cli.store.PeerID())
		sconn.Close()
		srvErr <- err
	}()
	got, err := ReplenishSession(context.Background(), cconn, qm.Arch(), ccfg,
		srv.store.PeerID(), batch, n)
	cconn.Close()
	if err != nil {
		t.Fatalf("replenish session: %v", err)
	}
	if serr := <-srvErr; serr != nil {
		t.Fatalf("offline serve session: %v", serr)
	}
	return got
}

// peerConfigs returns the online-session configs that provision from the
// two parties' peer-paired pools, OfflineBanked so any fallback fails
// loudly.
func peerConfigs(t *testing.T, qm *QuantizedModel, srv, cli *durableParty) (Config, Config) {
	t.Helper()
	id, err := BankModelID(qm)
	if err != nil {
		t.Fatal(err)
	}
	scfg := Config{RingBits: 32, RoundTimeout: chaosRoundTimeout,
		Bank: srv.bank, OfflineMode: OfflineBanked}
	ccfg := Config{RingBits: 32, Seed: 0x0FF2, RoundTimeout: chaosRoundTimeout,
		Bank: cli.bank, OfflineMode: OfflineBanked, BankModel: id,
		BankPeer: srv.store.PeerID().String()}
	return scfg, ccfg
}

// TestRemoteOfflinePeerBanked: replenish over the wire, then serve a
// banked batch from the stored peer pairs and check the predictions
// against the plaintext model. No dealer exists anywhere in this test.
func TestRemoteOfflinePeerBanked(t *testing.T) {
	qm := chaosModel(t)
	time.Sleep(20 * time.Millisecond)
	base := runtime.NumGoroutine()

	srv := newDurableParty(t, t.TempDir(), 4)
	cli := newDurableParty(t, t.TempDir(), 4)
	if got := replenishPair(t, qm, srv, cli, 2, 2); got != 2 {
		t.Fatalf("replenished %d correlations, want 2", got)
	}

	scfg, ccfg := peerConfigs(t, qm, srv, cli)
	for round := 0; round < 2; round++ {
		sconn, cconn := Pipe()
		srvErr, cliErr, classes := runParties(t, qm, sconn, cconn, scfg, ccfg)
		if srvErr != nil || cliErr != nil {
			t.Fatalf("round %d: peer-banked session failed: server=%v client=%v",
				round, srvErr, cliErr)
		}
		for k, x := range chaosInputs(2) {
			if classes[k] != qm.Predict(x) {
				t.Errorf("round %d: input %d misclassified", round, k)
			}
		}
	}
	// Both pairs are spent; a third banked-only session must fail dry,
	// not fall back and not hang.
	sconn, cconn := Pipe()
	_, cliErr, _ := runParties(t, qm, sconn, cconn, scfg, ccfg)
	if cliErr == nil {
		t.Fatal("third session succeeded on two stored pairs — double spend")
	}
	if !strings.Contains(cliErr.Error(), "dry") {
		t.Errorf("exhausted pool error %q does not mention dryness", cliErr)
	}
	settleGoroutines(t, base, "remote offline peer-banked")
}

// TestRemoteOfflineCrashSingleUse: a correlation spent before a crash
// must stay spent after both parties restart on the same directories
// (claim-before-use across SIGKILL, modeled by abandoning the first
// store generation without Close or Sync).
func TestRemoteOfflineCrashSingleUse(t *testing.T) {
	qm := chaosModel(t)
	srvDir, cliDir := t.TempDir(), t.TempDir()

	srv1 := newDurableParty(t, srvDir, 4)
	cli1 := newDurableParty(t, cliDir, 4)
	if got := replenishPair(t, qm, srv1, cli1, 2, 2); got != 2 {
		t.Fatalf("replenished %d correlations, want 2", got)
	}
	scfg, ccfg := peerConfigs(t, qm, srv1, cli1)
	sconn, cconn := Pipe()
	if srvErr, cliErr, _ := runParties(t, qm, sconn, cconn, scfg, ccfg); srvErr != nil || cliErr != nil {
		t.Fatalf("pre-crash session failed: server=%v client=%v", srvErr, cliErr)
	}

	// Crash both parties: new stores on the same dirs, the old ones left
	// un-synced. FsyncEvery=1 means the spent pair's claims are already
	// on disk.
	srv2 := newDurableParty(t, srvDir, 4)
	cli2 := newDurableParty(t, cliDir, 4)
	if d := cli2.bank.PeerDepth(srv2.store.PeerID(), bankSessionKeyForTest(t, qm, 2)); d != 1 {
		t.Fatalf("client peer depth after restart = %d, want 1 (one of two spent)", d)
	}
	scfg2, ccfg2 := peerConfigs(t, qm, srv2, cli2)
	sconn, cconn = Pipe()
	srvErr, cliErr, classes := runParties(t, qm, sconn, cconn, scfg2, ccfg2)
	if srvErr != nil || cliErr != nil {
		t.Fatalf("post-crash session failed: server=%v client=%v", srvErr, cliErr)
	}
	for k, x := range chaosInputs(2) {
		if classes[k] != qm.Predict(x) {
			t.Errorf("post-crash session misclassified input %d", k)
		}
	}
	// The surviving pair is now spent too: nothing left to double-spend.
	sconn, cconn = Pipe()
	if _, cliErr, _ := runParties(t, qm, sconn, cconn, scfg2, ccfg2); cliErr == nil {
		t.Fatal("session succeeded after every stored pair was spent")
	}
}

// bankSessionKeyForTest derives the session pool key the parties use.
func bankSessionKeyForTest(t *testing.T, qm *QuantizedModel, batch int) BankKey {
	t.Helper()
	id, err := BankModelID(qm)
	if err != nil {
		t.Fatal(err)
	}
	return BankKey{Model: id, Scheme: qm.Scheme(), RingBits: 32,
		Batch: batch, Backend: BankSessionBackend}
}

// TestRemoteOfflineServerAtCapacity: the server naks requests past its
// pool capacity before generation — the client gets fewer correlations
// with a nil error and one cheap round trip per refusal.
func TestRemoteOfflineServerAtCapacity(t *testing.T) {
	qm := chaosModel(t)
	srv := newDurableParty(t, t.TempDir(), 1)
	cli := newDurableParty(t, t.TempDir(), 4)
	if got := replenishPair(t, qm, srv, cli, 2, 3); got != 1 {
		t.Fatalf("replenished %d correlations against capacity 1, want 1", got)
	}
	if d := cli.bank.PeerDepth(srv.store.PeerID(), bankSessionKeyForTest(t, qm, 2)); d != 1 {
		t.Fatalf("client stored %d halves, want 1", d)
	}
}

// hangupConn closes the underlying pipe after the Nth send, modeling a
// link cut mid-replenishment.
type hangupConn struct {
	Conn
	mu    sync.Mutex
	after int
	sent  int
}

func (c *hangupConn) Send(msg []byte) error {
	c.mu.Lock()
	c.sent++
	cut := c.sent > c.after
	c.mu.Unlock()
	if cut {
		c.Conn.Close()
		return errors.New("link cut")
	}
	return c.Conn.Send(msg)
}

// TestRemoteOfflineLinkCut: a connection dying mid-session must error
// both parties promptly — no hang, no goroutine leak, and the partial
// material that did land stays usable.
func TestRemoteOfflineLinkCut(t *testing.T) {
	qm := chaosModel(t)
	time.Sleep(20 * time.Millisecond)
	base := runtime.NumGoroutine()

	for _, after := range []int{1, 3, 8} {
		srv := newDurableParty(t, t.TempDir(), 4)
		cli := newDurableParty(t, t.TempDir(), 4)
		id, err := BankModelID(qm)
		if err != nil {
			t.Fatal(err)
		}
		sconn, cconn := Pipe()
		cut := &hangupConn{Conn: cconn, after: after}
		scfg := Config{RingBits: 32, RoundTimeout: chaosRoundTimeout, Bank: srv.bank}
		ccfg := Config{RingBits: 32, Seed: 0x0FF3, RoundTimeout: chaosRoundTimeout,
			Bank: cli.bank, BankModel: id}
		srvErr := make(chan error, 1)
		go func() {
			err := ServeOfflineSession(context.Background(), sconn, qm, scfg, cli.store.PeerID())
			sconn.Close()
			srvErr <- err
		}()
		_, rerr := ReplenishSession(context.Background(), cut, qm.Arch(), ccfg,
			srv.store.PeerID(), 2, 3)
		cconn.Close()
		if rerr == nil {
			t.Fatalf("after=%d: replenish survived a cut link", after)
		}
		select {
		case <-srvErr: // any outcome, as long as it returns
		case <-time.After(chaosWatchdog):
			t.Fatalf("after=%d: offline server hung on a cut link", after)
		}
	}
	settleGoroutines(t, base, "remote offline link cut")
}

// TestRemoteOfflineRequiresStore: both entry points refuse to run
// without a durable store — peer pairing with nowhere to persist would
// be silent data loss.
func TestRemoteOfflineRequiresStore(t *testing.T) {
	qm := chaosModel(t)
	memBank := NewBank(BankOptions{Capacity: 2})
	defer memBank.Close()
	sconn, cconn := Pipe()
	defer sconn.Close()
	defer cconn.Close()
	err := ServeOfflineSession(context.Background(), sconn, qm,
		Config{RingBits: 32, Bank: memBank}, BankPeerID{1})
	if err == nil || !strings.Contains(err.Error(), "durable store") {
		t.Fatalf("ServeOfflineSession without a store: %v", err)
	}
	_, err = ReplenishSession(context.Background(), cconn, qm.Arch(),
		Config{RingBits: 32, Bank: memBank, BankModel: "x"}, BankPeerID{1}, 2, 1)
	if err == nil || !strings.Contains(err.Error(), "durable store") {
		t.Fatalf("ReplenishSession without a store: %v", err)
	}
}
