// Package quant implements arbitrary-bitwidth weight quantization and the
// fragment decomposition at the heart of ABNN2 (paper equation 2):
//
//	w * r = sum_{i=0}^{gamma-1} N^i * w[i] * r
//
// An eta-bit weight is split into gamma fragments; fragment i has its own
// candidate count N_i = 2^{width_i} and contributes Value(i, t) * r to the
// product. The paper's tuple notation, e.g. eta = 8 with (2,2,2,2) or
// (3,3,2), lists fragment widths from the lowest bit to the highest.
//
// Signed weights are handled inside the top fragment: because the OT
// sender enumerates every candidate value anyway, the candidates of the
// top fragment are interpreted in two's complement, so signed
// multiplication costs nothing extra. Ternary {-1,0,1} weights are a
// dedicated 3-candidate scheme, matching the paper's "ternary" rows.
package quant

import (
	"fmt"
	"strconv"
	"strings"
)

// Scheme describes how one quantized weight is decomposed into OT
// choices. Implementations must satisfy, for all representable w:
//
//	sum_i Value(i, Decompose(w)[i]) == w
type Scheme interface {
	// Name is the paper-style designation, e.g. "8(2,2,2,2)" or "ternary".
	Name() string
	// Gamma is the number of fragments (OTs per weight element).
	Gamma() int
	// FragmentN returns the candidate count of fragment i.
	FragmentN(i int) int
	// Value returns the signed integer contribution of candidate t at
	// fragment i.
	Value(i, t int) int64
	// Decompose splits w into per-fragment candidate indices. It returns
	// an error if w is outside the representable range.
	Decompose(w int64) ([]int, error)
	// Range returns the representable closed interval [min, max].
	Range() (min, max int64)
}

// bitScheme decomposes an eta-bit two's-complement (or unsigned) weight
// into fragments of the given widths, lowest bits first.
type bitScheme struct {
	widths []uint
	eta    uint
	signed bool
}

// NewBitScheme builds a power-of-two fragment scheme. widths are listed
// from the lowest bit to the highest (paper convention). If signed, the
// weight is interpreted in two's complement over eta = sum(widths) bits.
func NewBitScheme(signed bool, widths ...uint) Scheme {
	if len(widths) == 0 {
		panic("quant: scheme needs at least one fragment")
	}
	var eta uint
	for _, w := range widths {
		if w == 0 || w > 8 {
			panic(fmt.Sprintf("quant: fragment width %d out of range [1,8]", w))
		}
		eta += w
	}
	if eta > 32 {
		panic(fmt.Sprintf("quant: total bitwidth %d exceeds 32", eta))
	}
	cp := make([]uint, len(widths))
	copy(cp, widths)
	return &bitScheme{widths: cp, eta: eta, signed: signed}
}

func (s *bitScheme) Name() string {
	parts := make([]string, len(s.widths))
	for i, w := range s.widths {
		parts[i] = strconv.Itoa(int(w))
	}
	// The "u" prefix mirrors Parse: without it an unsigned scheme's name
	// would deserialise as the signed scheme of the same widths, whose
	// range rejects the upper half of the unsigned weights.
	prefix := ""
	if !s.signed {
		prefix = "u"
	}
	return fmt.Sprintf("%s%d(%s)", prefix, s.eta, strings.Join(parts, ","))
}

func (s *bitScheme) Gamma() int { return len(s.widths) }

func (s *bitScheme) FragmentN(i int) int { return 1 << s.widths[i] }

func (s *bitScheme) offset(i int) uint {
	var off uint
	for k := 0; k < i; k++ {
		off += s.widths[k]
	}
	return off
}

func (s *bitScheme) Value(i, t int) int64 {
	n := 1 << s.widths[i]
	if t < 0 || t >= n {
		panic(fmt.Sprintf("quant: candidate %d out of range [0,%d)", t, n))
	}
	v := int64(t)
	if s.signed && i == len(s.widths)-1 && t >= n/2 {
		v -= int64(n) // two's-complement top fragment
	}
	return v << s.offset(i)
}

func (s *bitScheme) Range() (int64, int64) {
	if s.signed {
		return -(int64(1) << (s.eta - 1)), (int64(1) << (s.eta - 1)) - 1
	}
	return 0, (int64(1) << s.eta) - 1
}

func (s *bitScheme) Decompose(w int64) ([]int, error) {
	min, max := s.Range()
	if w < min || w > max {
		return nil, fmt.Errorf("quant: weight %d outside %s range [%d,%d]", w, s.Name(), min, max)
	}
	u := uint64(w) & ((1 << s.eta) - 1) // two's complement over eta bits
	out := make([]int, len(s.widths))
	for i, width := range s.widths {
		out[i] = int(u & ((1 << width) - 1))
		u >>= width
	}
	return out, nil
}

// ternaryScheme is the single-fragment {-1, 0, +1} scheme with three
// candidates, matching the paper's ternary rows (N = 3).
type ternaryScheme struct{}

// Ternary returns the ternary weight scheme.
func Ternary() Scheme { return ternaryScheme{} }

func (ternaryScheme) Name() string          { return "ternary" }
func (ternaryScheme) Gamma() int            { return 1 }
func (ternaryScheme) FragmentN(int) int     { return 3 }
func (ternaryScheme) Range() (int64, int64) { return -1, 1 }

func (ternaryScheme) Value(i, t int) int64 {
	switch t {
	case 0:
		return 0
	case 1:
		return 1
	case 2:
		return -1
	}
	panic(fmt.Sprintf("quant: ternary candidate %d out of range", t))
}

func (ternaryScheme) Decompose(w int64) ([]int, error) {
	switch w {
	case 0:
		return []int{0}, nil
	case 1:
		return []int{1}, nil
	case -1:
		return []int{2}, nil
	}
	return nil, fmt.Errorf("quant: weight %d is not ternary", w)
}

// named wraps a scheme with a display name, e.g. "binary" for 1(1).
type named struct {
	Scheme
	name string
}

func (n named) Name() string { return n.name }

// Binary returns the single-bit {0, 1} scheme, the paper's "binary" rows.
func Binary() Scheme { return named{Scheme: NewBitScheme(false, 1), name: "binary"} }

// Uniform returns the signed scheme with gamma fragments of `width` bits
// each, e.g. Uniform(2, 4) is 8(2,2,2,2).
func Uniform(width uint, gamma int) Scheme {
	widths := make([]uint, gamma)
	for i := range widths {
		widths[i] = width
	}
	return NewBitScheme(true, widths...)
}

// Parse converts a paper-style designation into a Scheme: "binary",
// "ternary", or "eta(w1,w2,...)" such as "8(2,2,2,2)" (signed) and
// "u8(2,2,2,2)" (unsigned).
func Parse(s string) (Scheme, error) {
	switch s {
	case "binary":
		return Binary(), nil
	case "ternary":
		return Ternary(), nil
	}
	signed := true
	body := s
	if strings.HasPrefix(body, "u") {
		signed = false
		body = body[1:]
	}
	open := strings.IndexByte(body, '(')
	if open < 0 || !strings.HasSuffix(body, ")") {
		return nil, fmt.Errorf("quant: cannot parse scheme %q", s)
	}
	eta, err := strconv.Atoi(body[:open])
	if err != nil {
		return nil, fmt.Errorf("quant: bad bitwidth in %q: %v", s, err)
	}
	parts := strings.Split(body[open+1:len(body)-1], ",")
	widths := make([]uint, len(parts))
	var sum int
	for i, p := range parts {
		w, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("quant: bad fragment width %q in %q", p, s)
		}
		widths[i] = uint(w)
		sum += w
	}
	if sum != eta {
		return nil, fmt.Errorf("quant: widths in %q sum to %d, want %d", s, sum, eta)
	}
	return NewBitScheme(signed, widths...), nil
}

// OneBit returns the (1,...,1) scheme with eta fragments, the paper's
// baseline corresponding to 1-out-of-2 OT (SecureML-style decomposition).
func OneBit(eta uint, signed bool) Scheme {
	widths := make([]uint, eta)
	for i := range widths {
		widths[i] = 1
	}
	return NewBitScheme(signed, widths...)
}
