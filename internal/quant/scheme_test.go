package quant

import (
	"testing"
	"testing/quick"
)

// recompose sums fragment values; the core invariant is recompose == w.
func recompose(s Scheme, frags []int) int64 {
	var sum int64
	for i, t := range frags {
		sum += s.Value(i, t)
	}
	return sum
}

func TestDecomposeRecomposeAllSchemes(t *testing.T) {
	schemes := []Scheme{
		Binary(),
		Ternary(),
		NewBitScheme(true, 2, 2, 2, 2),
		NewBitScheme(true, 3, 3, 2),
		NewBitScheme(true, 4, 4),
		NewBitScheme(true, 2, 2, 2),
		NewBitScheme(true, 3, 3),
		NewBitScheme(true, 2, 2),
		NewBitScheme(true, 4),
		NewBitScheme(true, 2, 1),
		NewBitScheme(true, 3),
		NewBitScheme(false, 1, 1, 1, 1, 1, 1, 1, 1),
		OneBit(8, true),
	}
	for _, s := range schemes {
		min, max := s.Range()
		for w := min; w <= max; w++ {
			frags, err := s.Decompose(w)
			if err != nil {
				t.Fatalf("%s: decompose(%d): %v", s.Name(), w, err)
			}
			if len(frags) != s.Gamma() {
				t.Fatalf("%s: %d fragments, want %d", s.Name(), len(frags), s.Gamma())
			}
			for i, f := range frags {
				if f < 0 || f >= s.FragmentN(i) {
					t.Fatalf("%s: fragment %d value %d out of [0,%d)", s.Name(), i, f, s.FragmentN(i))
				}
			}
			if got := recompose(s, frags); got != w {
				t.Fatalf("%s: recompose(%d) = %d", s.Name(), w, got)
			}
		}
	}
}

func TestDecomposeOutOfRange(t *testing.T) {
	cases := []struct {
		s Scheme
		w int64
	}{
		{Binary(), 2},
		{Binary(), -1},
		{Ternary(), 2},
		{NewBitScheme(true, 2, 2), 8},
		{NewBitScheme(true, 2, 2), -9},
	}
	for _, c := range cases {
		if _, err := c.s.Decompose(c.w); err == nil {
			t.Errorf("%s: decompose(%d) accepted", c.s.Name(), c.w)
		}
	}
}

func TestSchemeNames(t *testing.T) {
	cases := map[string]Scheme{
		"binary":     Binary(),
		"ternary":    Ternary(),
		"8(2,2,2,2)": NewBitScheme(true, 2, 2, 2, 2),
		"8(3,3,2)":   NewBitScheme(true, 3, 3, 2),
		"3(2,1)":     NewBitScheme(true, 2, 1),
		"u4(2,2)":    NewBitScheme(false, 2, 2),
	}
	for want, s := range cases {
		if s.Name() != want {
			t.Errorf("name = %q, want %q", s.Name(), want)
		}
	}
}

func TestParse(t *testing.T) {
	good := []string{"binary", "ternary", "8(2,2,2,2)", "6(3,3)", "4(2,2)", "3(2,1)", "u8(1,1,1,1,1,1,1,1)"}
	for _, s := range good {
		sch, err := Parse(s)
		if err != nil {
			t.Errorf("Parse(%q): %v", s, err)
			continue
		}
		min, max := sch.Range()
		frags, err := sch.Decompose(min)
		if err != nil || recompose(sch, frags) != min {
			t.Errorf("Parse(%q): min roundtrip failed", s)
		}
		frags, err = sch.Decompose(max)
		if err != nil || recompose(sch, frags) != max {
			t.Errorf("Parse(%q): max roundtrip failed", s)
		}
	}
	// Name/Parse must be mutually inverse: models serialise schemes by
	// name, so a scheme whose name parses to a different scheme corrupts
	// the model on reload (this caught the unsigned "u" prefix omission).
	for _, s := range good {
		sch, err := Parse(s)
		if err != nil {
			continue
		}
		back, err := Parse(sch.Name())
		if err != nil {
			t.Errorf("Parse(Name(%q)) = %q failed: %v", s, sch.Name(), err)
			continue
		}
		min, max := sch.Range()
		bmin, bmax := back.Range()
		if bmin != min || bmax != max || back.Gamma() != sch.Gamma() {
			t.Errorf("Parse(Name(%q)): range/gamma changed (%d..%d gamma %d)", s, bmin, bmax, back.Gamma())
		}
	}
	bad := []string{"", "8", "8(2,2)", "8(2,2,2,x)", "(2,2)", "8[2,2,2,2]"}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestUniform(t *testing.T) {
	s := Uniform(2, 4)
	if s.Name() != "8(2,2,2,2)" || s.Gamma() != 4 {
		t.Errorf("Uniform(2,4) = %s gamma %d", s.Name(), s.Gamma())
	}
}

// Property: for the signed 8-bit scheme, decompose/recompose round-trips
// arbitrary in-range weights.
func TestDecomposeProperty(t *testing.T) {
	s := NewBitScheme(true, 3, 3, 2)
	f := func(raw int8) bool {
		w := int64(raw)
		frags, err := s.Decompose(w)
		return err == nil && recompose(s, frags) == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantizerRoundTrip(t *testing.T) {
	s := NewBitScheme(true, 2, 2, 2, 2) // range [-128, 127]
	q := NewQuantizer(s, 2.0)           // scale = 2/127
	for _, w := range []float64{0, 1.0, -1.0, 1.99, -2.0, 0.015} {
		v := q.Quantize(w)
		back := q.Dequantize(v)
		if diff := back - w; diff > q.Scale/2+1e-9 || diff < -q.Scale/2-1e-9 {
			t.Errorf("quantize(%v) -> %d -> %v (err %v > scale/2)", w, v, back, diff)
		}
	}
}

func TestQuantizerClamps(t *testing.T) {
	q := NewQuantizer(Ternary(), 1.0)
	if v := q.Quantize(5.0); v != 1 {
		t.Errorf("overflow quantized to %d, want clamp to 1", v)
	}
	if v := q.Quantize(-5.0); v != -1 {
		t.Errorf("underflow quantized to %d, want clamp to -1", v)
	}
}

func TestDecomposeAll(t *testing.T) {
	s := Ternary()
	cs, err := DecomposeAll(s, []int64{0, 1, -1, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0}, {1}, {2}, {1}}
	for i := range want {
		if cs[i][0] != want[i][0] {
			t.Errorf("weight %d: choice %d want %d", i, cs[i][0], want[i][0])
		}
	}
	if _, err := DecomposeAll(s, []int64{0, 7}); err == nil {
		t.Error("out-of-range weight accepted")
	}
}

func TestMaxAbs(t *testing.T) {
	if MaxAbs([]float64{-3, 2, 1}) != 3 {
		t.Error("MaxAbs wrong")
	}
	if MaxAbs(nil) != 0 {
		t.Error("MaxAbs(nil) != 0")
	}
}
