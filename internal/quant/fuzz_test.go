package quant

import "testing"

// FuzzParse hammers the scheme parser: it must never panic, and anything
// it accepts must be internally consistent (decompose/recompose
// round-trips over the whole range).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{"binary", "ternary", "8(2,2,2,2)", "u4(1,3)", "3(2,1)", "", "8(", "9(2,2)", "x(1)"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		scheme, err := Parse(s)
		if err != nil {
			return
		}
		min, max := scheme.Range()
		if min > max {
			t.Fatalf("%q: inverted range [%d,%d]", s, min, max)
		}
		// Sample the range edges plus zero if representable.
		for _, w := range []int64{min, max, 0} {
			if w < min || w > max {
				continue
			}
			frags, err := scheme.Decompose(w)
			if err != nil {
				t.Fatalf("%q: decompose(%d): %v", s, w, err)
			}
			var sum int64
			for i, fr := range frags {
				if fr < 0 || fr >= scheme.FragmentN(i) {
					t.Fatalf("%q: fragment %d out of range", s, i)
				}
				sum += scheme.Value(i, fr)
			}
			if sum != w {
				t.Fatalf("%q: recompose(%d) = %d", s, w, sum)
			}
		}
	})
}
