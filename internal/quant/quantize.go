package quant

import (
	"fmt"
	"math"
)

// Quantizer converts floating-point weights to scheme-representable
// integers by uniform symmetric quantization: q = clamp(round(w/scale)).
// The dequantized weight is q*scale, so the fixed-point pipeline multiplies
// activations by q and folds scale into the layer's output interpretation.
type Quantizer struct {
	Scheme Scheme
	Scale  float64
}

// NewQuantizer chooses the scale so that maxAbs (the largest weight
// magnitude to represent) maps to the edge of the scheme's range.
func NewQuantizer(s Scheme, maxAbs float64) Quantizer {
	min, max := s.Range()
	// The binding constraint is the smaller magnitude side.
	edge := float64(max)
	if min != 0 && -float64(min) < edge {
		edge = -float64(min)
	}
	if edge == 0 || maxAbs == 0 {
		return Quantizer{Scheme: s, Scale: 1}
	}
	return Quantizer{Scheme: s, Scale: maxAbs / edge}
}

// Quantize maps a float weight to the nearest representable integer.
func (q Quantizer) Quantize(w float64) int64 {
	min, max := q.Scheme.Range()
	v := int64(math.Round(w / q.Scale))
	if v < min {
		v = min
	}
	if v > max {
		v = max
	}
	return v
}

// Dequantize maps a quantized integer back to its real value.
func (q Quantizer) Dequantize(v int64) float64 { return float64(v) * q.Scale }

// QuantizeAll quantizes a weight slice, returning the integer weights.
func (q Quantizer) QuantizeAll(ws []float64) []int64 {
	out := make([]int64, len(ws))
	for i, w := range ws {
		out[i] = q.Quantize(w)
	}
	return out
}

// MaxAbs returns the largest magnitude in ws, used to calibrate a
// quantizer for a layer.
func MaxAbs(ws []float64) float64 {
	var m float64
	for _, w := range ws {
		if a := math.Abs(w); a > m {
			m = a
		}
	}
	return m
}

// DecomposeAll decomposes a slice of quantized weights, returning a
// gamma-per-weight choice matrix: choices[j] are the fragment indices of
// weight j. It fails fast on any out-of-range weight.
func DecomposeAll(s Scheme, ws []int64) ([][]int, error) {
	out := make([][]int, len(ws))
	for j, w := range ws {
		c, err := s.Decompose(w)
		if err != nil {
			return nil, fmt.Errorf("quant: weight %d: %w", j, err)
		}
		out[j] = c
	}
	return out, nil
}
