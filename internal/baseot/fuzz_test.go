package baseot

import (
	"crypto/elliptic"
	"testing"

	"abnn2/internal/prg"
	"abnn2/internal/transport"
)

// Both base-OT roles parse exactly the flights the other party sends:
// the receiver parses (A, ciphertexts), the sender parses the B-point
// batch. Each is stateless, so every fuzz iteration uses a fresh
// buffered pipe with the hostile flights pre-fed; the subject's own
// outgoing flights sit in the pipe buffer and are discarded with it.

func validPoint() []byte {
	x, y := curve.ScalarBaseMult([]byte{1})
	return elliptic.Marshal(curve, x, y)
}

// FuzzReceive fuzzes the receiver's two inbound flights: the sender
// point A and the ciphertext batch (valid length n*2*MsgSize = 64 for
// n=2).
func FuzzReceive(f *testing.F) {
	g := validPoint()
	f.Add(g, make([]byte, 64))
	f.Add(g, make([]byte, 63))
	f.Add([]byte{}, []byte{})
	f.Add(make([]byte, 65), make([]byte, 64))
	f.Fuzz(func(t *testing.T, araw, cts []byte) {
		a, b := transport.Pipe()
		a.Send(araw)
		a.Send(cts)
		rng := prg.New(prg.SeedFromInt(7))
		Receive(b, []byte{0, 1}, rng)
	})
}

// FuzzSend fuzzes the sender's one inbound flight: the batch of receiver
// points B_i (valid length n*65 = 130 for n=2 over P-256). Off-curve and
// truncated points must be rejected without panicking.
func FuzzSend(f *testing.F) {
	g := validPoint()
	valid := append(append([]byte{}, g...), g...)
	f.Add(valid)
	f.Add(valid[:129])
	f.Add([]byte{})
	f.Add(make([]byte, 130))
	f.Fuzz(func(t *testing.T, braw []byte) {
		a, b := transport.Pipe()
		a.Send(braw)
		rng := prg.New(prg.SeedFromInt(8))
		var pairs [][2]Msg
		pairs = append(pairs, [2]Msg{{1}, {2}}, [2]Msg{{3}, {4}})
		Send(b, pairs, rng)
	})
}
