// Package baseot implements the "simplest OT" protocol of Chou and
// Orlandi over the NIST P-256 curve. These base oblivious transfers are
// the public-key bootstrap for the OT extensions in internal/otext: a
// batch of kappa (or 2*kappa for KK13) base OTs is run once per session
// and all subsequent transfers use only symmetric-key operations.
//
// Security is against semi-honest adversaries, the model of the paper.
package baseot

import (
	"crypto/elliptic"
	"fmt"
	"math/big"

	"abnn2/internal/prg"
	"abnn2/internal/transport"
)

// MsgSize is the base-OT payload size: 16 bytes, exactly one PRG seed.
// Base OTs only ever transfer seeds; longer payloads use OT extension.
const MsgSize = 16

// Msg is one base-OT message.
type Msg [MsgSize]byte

var oracle = prg.NewOracle("baseot/chou-orlandi")

// curve is the group; P-256 gives > 128-bit security matching kappa.
var curve = elliptic.P256()

// Send runs the sender side of a batch of len(pairs) base OTs over conn.
// pairs[i][b] is delivered if the receiver's i-th choice bit is b.
func Send(conn transport.Conn, pairs [][2]Msg, rng *prg.PRG) error {
	n := len(pairs)
	// Sender secret a, announce A = aG.
	a := randScalar(rng)
	ax, ay := curve.ScalarBaseMult(a.Bytes())
	if err := conn.Send(elliptic.Marshal(curve, ax, ay)); err != nil {
		return fmt.Errorf("baseot: send A: %w", err)
	}
	// Receive all B_i in one message.
	raw, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("baseot: recv B: %w", err)
	}
	ptLen := pointLen()
	if len(raw) != n*ptLen {
		return fmt.Errorf("baseot: expected %d B-points (%d bytes), got %d bytes", n, n*ptLen, len(raw))
	}
	// For each i: k0 = H(i, a*B_i), k1 = H(i, a*(B_i - A)).
	// Negate A once for the subtraction.
	negAy := new(big.Int).Sub(curve.Params().P, ay)
	out := make([]byte, 0, n*2*MsgSize)
	for i := 0; i < n; i++ {
		bx, by := elliptic.Unmarshal(curve, raw[i*ptLen:(i+1)*ptLen])
		if bx == nil {
			return fmt.Errorf("baseot: invalid point for OT %d", i)
		}
		k0x, k0y := curve.ScalarMult(bx, by, a.Bytes())
		dx, dy := curve.Add(bx, by, ax, negAy)
		k1x, k1y := curve.ScalarMult(dx, dy, a.Bytes())
		k0 := deriveKey(uint64(i), 0, k0x, k0y)
		k1 := deriveKey(uint64(i), 1, k1x, k1y)
		var c0, c1 Msg
		prg.XORBytes(c0[:], pairs[i][0][:], k0[:])
		prg.XORBytes(c1[:], pairs[i][1][:], k1[:])
		out = append(out, c0[:]...)
		out = append(out, c1[:]...)
	}
	if err := conn.Send(out); err != nil {
		return fmt.Errorf("baseot: send ciphertexts: %w", err)
	}
	return nil
}

// Receive runs the receiver side for the given choice bits (one per OT,
// values 0 or 1) and returns the chosen messages.
func Receive(conn transport.Conn, choices []byte, rng *prg.PRG) ([]Msg, error) {
	n := len(choices)
	raw, err := conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("baseot: recv A: %w", err)
	}
	ax, ay := elliptic.Unmarshal(curve, raw)
	if ax == nil {
		return nil, fmt.Errorf("baseot: invalid A point")
	}
	// For each OT choose b_i; B_i = b_i*G + c_i*A.
	scalars := make([]*big.Int, n)
	buf := make([]byte, 0, n*pointLen())
	for i := 0; i < n; i++ {
		b := randScalar(rng)
		scalars[i] = b
		bx, by := curve.ScalarBaseMult(b.Bytes())
		if choices[i]&1 == 1 {
			bx, by = curve.Add(bx, by, ax, ay)
		}
		buf = append(buf, elliptic.Marshal(curve, bx, by)...)
	}
	if err := conn.Send(buf); err != nil {
		return nil, fmt.Errorf("baseot: send B: %w", err)
	}
	cts, err := conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("baseot: recv ciphertexts: %w", err)
	}
	if len(cts) != n*2*MsgSize {
		return nil, fmt.Errorf("baseot: expected %d ciphertext bytes, got %d", n*2*MsgSize, len(cts))
	}
	out := make([]Msg, n)
	for i := 0; i < n; i++ {
		// k_c = H(i, b_i * A).
		kx, ky := curve.ScalarMult(ax, ay, scalars[i].Bytes())
		k := deriveKey(uint64(i), uint64(choices[i]&1), kx, ky)
		ct := cts[i*2*MsgSize+int(choices[i]&1)*MsgSize:][:MsgSize]
		prg.XORBytes(out[i][:], ct, k[:])
	}
	return out, nil
}

func pointLen() int {
	return 1 + 2*((curve.Params().BitSize+7)/8) // uncompressed marshal
}

func deriveKey(index, branch uint64, x, y *big.Int) Msg {
	data := make([]byte, 0, 64)
	data = append(data, x.Bytes()...)
	data = append(data, y.Bytes()...)
	blk := oracle.Block(0, index, branch, data)
	return Msg(blk)
}

func randScalar(rng *prg.PRG) *big.Int {
	nOrder := curve.Params().N
	byteLen := (nOrder.BitLen() + 7) / 8
	for {
		b := rng.Bytes(byteLen)
		k := new(big.Int).SetBytes(b)
		if k.Sign() > 0 && k.Cmp(nOrder) < 0 {
			return k
		}
	}
}
