package baseot

import (
	"bytes"
	"sync"
	"testing"

	"abnn2/internal/prg"
	"abnn2/internal/transport"
)

// runOT executes a batch of base OTs over an in-memory pipe and returns
// the receiver's outputs.
func runOT(t *testing.T, pairs [][2]Msg, choices []byte) []Msg {
	t.Helper()
	a, b := transport.Pipe()
	defer a.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	var sendErr error
	go func() {
		defer wg.Done()
		sendErr = Send(a, pairs, prg.New(prg.SeedFromInt(100)))
	}()
	got, err := Receive(b, choices, prg.New(prg.SeedFromInt(200)))
	wg.Wait()
	if sendErr != nil {
		t.Fatalf("sender: %v", sendErr)
	}
	if err != nil {
		t.Fatalf("receiver: %v", err)
	}
	return got
}

func makePairs(n int) [][2]Msg {
	g := prg.New(prg.SeedFromInt(42))
	pairs := make([][2]Msg, n)
	for i := range pairs {
		copy(pairs[i][0][:], g.Bytes(MsgSize))
		copy(pairs[i][1][:], g.Bytes(MsgSize))
	}
	return pairs
}

func TestCorrectness(t *testing.T) {
	const n = 32
	pairs := makePairs(n)
	choices := make([]byte, n)
	for i := range choices {
		choices[i] = byte(i % 2)
	}
	got := runOT(t, pairs, choices)
	for i := range got {
		want := pairs[i][choices[i]]
		if got[i] != want {
			t.Errorf("OT %d: got %x want %x", i, got[i], want)
		}
		// Sanity: the other message must differ (they're random) and must
		// not equal the output.
		other := pairs[i][1-choices[i]]
		if got[i] == other {
			t.Errorf("OT %d: receiver output equals the unchosen message", i)
		}
	}
}

func TestAllZeroAndAllOneChoices(t *testing.T) {
	const n = 8
	pairs := makePairs(n)
	for _, bit := range []byte{0, 1} {
		choices := bytes.Repeat([]byte{bit}, n)
		got := runOT(t, pairs, choices)
		for i := range got {
			if got[i] != pairs[i][bit] {
				t.Errorf("bit=%d OT %d mismatch", bit, i)
			}
		}
	}
}

func TestSingleOT(t *testing.T) {
	pairs := makePairs(1)
	got := runOT(t, pairs, []byte{1})
	if got[0] != pairs[0][1] {
		t.Fatal("single OT mismatch")
	}
}

// The receiver's messages to the sender must not depend on the choice bits
// in any way the sender can detect without the discrete log; here we check
// the weaker but still meaningful property that transcripts for different
// choices have identical lengths and structure.
func TestTranscriptShapeIndependentOfChoice(t *testing.T) {
	lenFor := func(choice byte) (int, int) {
		a, b, m := transport.MeteredPipe()
		defer a.Close()
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			Send(a, makePairs(4), prg.New(prg.SeedFromInt(1)))
		}()
		Receive(b, bytes.Repeat([]byte{choice}, 4), prg.New(prg.SeedFromInt(2)))
		wg.Wait()
		s := m.Snapshot()
		return int(s.BytesAB), int(s.BytesBA)
	}
	ab0, ba0 := lenFor(0)
	ab1, ba1 := lenFor(1)
	if ab0 != ab1 || ba0 != ba1 {
		t.Errorf("transcript shape depends on choice: (%d,%d) vs (%d,%d)", ab0, ba0, ab1, ba1)
	}
}

// A peer sending garbage instead of curve points must produce an error,
// not a panic (elliptic.Unmarshal returns nil on invalid input).
func TestRejectsMalformedPoints(t *testing.T) {
	a, b := transport.Pipe()
	defer a.Close()
	done := make(chan error, 1)
	go func() {
		_, err := Receive(b, []byte{0}, prg.New(prg.SeedFromInt(1)))
		done <- err
	}()
	if err := a.Send([]byte{0x99, 0x01, 0x02}); err != nil { // not a valid point
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Fatal("receiver accepted malformed A point")
	}

	// And the sender side: garbage B points.
	a2, b2 := transport.Pipe()
	defer a2.Close()
	sendDone := make(chan error, 1)
	go func() {
		sendDone <- Send(a2, makePairs(1), prg.New(prg.SeedFromInt(2)))
	}()
	if _, err := b2.Recv(); err != nil { // consume the A point
		t.Fatal(err)
	}
	if err := b2.Send(make([]byte, 65)); err != nil { // wrong-content point
		t.Fatal(err)
	}
	if err := <-sendDone; err == nil {
		t.Fatal("sender accepted malformed B point")
	}
}

func TestFlightCount(t *testing.T) {
	a, b, m := transport.MeteredPipe()
	defer a.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		Send(a, makePairs(2), prg.New(prg.SeedFromInt(1)))
	}()
	Receive(b, []byte{0, 1}, prg.New(prg.SeedFromInt(2)))
	wg.Wait()
	if f := m.Snapshot().Flights; f != 3 {
		t.Errorf("base OT used %d flights, want 3 (A, B, ciphertexts)", f)
	}
}
