package nn

import (
	"math"
	"testing"

	"abnn2/internal/prg"
	"abnn2/internal/quant"
	"abnn2/internal/ring"
)

func TestConvGeometry(t *testing.T) {
	c := ConvSpec{Ci: 1, H: 28, W: 28, Kh: 5, Kw: 5, Stride: 1, Pad: 0}
	if c.OutH() != 24 || c.OutW() != 24 || c.Positions() != 576 || c.ColRows() != 25 {
		t.Fatalf("geometry: %d %d %d %d", c.OutH(), c.OutW(), c.Positions(), c.ColRows())
	}
	padded := ConvSpec{Ci: 3, H: 8, W: 8, Kh: 3, Kw: 3, Stride: 2, Pad: 1}
	if padded.OutH() != 4 || padded.ColRows() != 27 {
		t.Fatalf("padded geometry: %d %d", padded.OutH(), padded.ColRows())
	}
}

func TestConvValidate(t *testing.T) {
	bad := []ConvSpec{
		{Ci: 0, H: 4, W: 4, Kh: 2, Kw: 2, Stride: 1},
		{Ci: 1, H: 4, W: 4, Kh: 2, Kw: 2, Stride: 0},
		{Ci: 1, H: 4, W: 4, Kh: 9, Kw: 2, Stride: 1},
		{Ci: 1, H: 4, W: 4, Kh: 2, Kw: 2, Stride: 1, Pad: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

// Direct convolution vs im2col matmul on a hand-checkable case.
func TestIm2ColMatchesDirectConv(t *testing.T) {
	c := ConvSpec{Ci: 2, H: 5, W: 5, Kh: 3, Kw: 3, Stride: 1, Pad: 1}
	rng := prg.New(prg.SeedFromInt(1))
	x := make([]float64, c.InputSize())
	for i := range x {
		x[i] = float64(rng.Intn(10)) - 5
	}
	k := make([]float64, c.ColRows()) // one output channel
	for i := range k {
		k[i] = float64(rng.Intn(7)) - 3
	}
	col := c.Im2ColFloat(x)
	p := c.Positions()
	got := make([]float64, p)
	for j := 0; j < p; j++ {
		for r := 0; r < c.ColRows(); r++ {
			got[j] += k[r] * col[r*p+j]
		}
	}
	// Direct: for each output position, sum over kernel with padding.
	ow := c.OutW()
	for py := 0; py < c.OutH(); py++ {
		for px := 0; px < ow; px++ {
			var want float64
			for ci := 0; ci < c.Ci; ci++ {
				for ky := 0; ky < c.Kh; ky++ {
					for kx := 0; kx < c.Kw; kx++ {
						y := py*c.Stride + ky - c.Pad
						xx := px*c.Stride + kx - c.Pad
						if y < 0 || y >= c.H || xx < 0 || xx >= c.W {
							continue
						}
						want += k[ci*9+ky*3+kx] * x[ci*25+y*5+xx]
					}
				}
			}
			if math.Abs(got[py*ow+px]-want) > 1e-9 {
				t.Fatalf("position (%d,%d): %v vs %v", py, px, got[py*ow+px], want)
			}
		}
	}
}

// col2im must be the exact adjoint of im2col: <im2col(x), g> = <x, col2im(g)>.
func TestCol2ImAdjoint(t *testing.T) {
	c := ConvSpec{Ci: 2, H: 6, W: 6, Kh: 3, Kw: 3, Stride: 1, Pad: 1}
	rng := prg.New(prg.SeedFromInt(2))
	x := make([]float64, c.InputSize())
	g := make([]float64, c.ColRows()*c.Positions())
	for i := range x {
		x[i] = float64(rng.Intn(100)) / 10
	}
	for i := range g {
		g[i] = float64(rng.Intn(100)) / 10
	}
	col := c.Im2ColFloat(x)
	var lhs float64
	for i := range col {
		lhs += col[i] * g[i]
	}
	back := c.Col2ImFloat(g)
	var rhs float64
	for i := range x {
		rhs += x[i] * back[i]
	}
	if math.Abs(lhs-rhs) > 1e-6 {
		t.Fatalf("adjoint mismatch: %v vs %v", lhs, rhs)
	}
}

func TestIm2ColRingMatchesFloat(t *testing.T) {
	c := ConvSpec{Ci: 1, H: 4, W: 4, Kh: 2, Kw: 2, Stride: 2, Pad: 0}
	r := ring.New(32)
	xf := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	xr := make(ring.Vec, 16)
	for i, v := range xf {
		xr[i] = r.FromSigned(int64(v))
	}
	colF := c.Im2ColFloat(xf)
	colR := c.Im2ColRing(xr)
	for i := range colF {
		if int64(colF[i]) != r.Signed(colR[i]) {
			t.Fatalf("col[%d]: float %v ring %d", i, colF[i], r.Signed(colR[i]))
		}
	}
}

func TestPoolWindows(t *testing.T) {
	p := PoolSpec{K: 2}
	wins := p.Windows(2, 4, 4)
	if len(wins) != 2*2*2 {
		t.Fatalf("window count %d", len(wins))
	}
	// First window of channel 0: indices {0,1,4,5}.
	want := []int{0, 1, 4, 5}
	for i, w := range wins[0] {
		if w != want[i] {
			t.Fatalf("window 0 = %v", wins[0])
		}
	}
	// Non-overlap: every index appears exactly once.
	seen := map[int]bool{}
	for _, win := range wins {
		for _, idx := range win {
			if seen[idx] {
				t.Fatalf("index %d in two windows", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != 2*4*4 {
		t.Fatalf("windows cover %d of %d inputs", len(seen), 32)
	}
}

func TestCNNForwardShapes(t *testing.T) {
	m := SmallCNN(4)
	out := m.Forward(make([]float64, 784))
	if len(out) != NumClasses {
		t.Fatalf("output size %d", len(out))
	}
	if m.Layers[0].OutputSize() != 4*12*12 {
		t.Fatalf("conv output size %d", m.Layers[0].OutputSize())
	}
}

func TestCNNTrainingLearns(t *testing.T) {
	ds := SyntheticMNIST(300, 0.2, 17)
	train, test := ds.Split(0.8)
	m := SmallCNN(4)
	m.InitXavier(prg.New(prg.SeedFromInt(3)))
	cfg := TrainConfig{Epochs: 2, BatchSize: 16, LR: 0.05, Seed: 2}
	m.Train(train.X, train.Labels, cfg)
	acc := m.Accuracy(test.X, test.Labels)
	if acc < 0.6 {
		t.Errorf("CNN accuracy %.3f after training, want >= 0.6", acc)
	}
}

func TestQuantizedCNNForwardRing(t *testing.T) {
	// A tiny CNN evaluated via ForwardRing against the float model on
	// integer-valued inputs/weights (so both are exact).
	conv := ConvSpec{Ci: 1, H: 4, W: 4, Kh: 2, Kw: 2, Stride: 2, Pad: 0}
	m := NewCustomModel(
		NewConvLayer(conv, 2, true, &PoolSpec{K: 2}),
		NewFCLayer(2*1*1, 2, false),
	)
	rng := prg.New(prg.SeedFromInt(4))
	for _, l := range m.Layers {
		for i := range l.W {
			l.W[i] = float64(rng.Intn(5) - 2)
		}
		for i := range l.B {
			l.B[i] = float64(rng.Intn(3) - 1)
		}
	}
	// Build the integer twin directly (Scale 1, frac 0) so float and ring
	// evaluations are both exact integer arithmetic.
	qm := &QuantizedModel{Frac: 0}
	for _, l := range m.Layers {
		ql := &QuantizedLayer{
			In: l.In, Out: l.Out,
			W: make([]int64, len(l.W)), B: make([]int64, len(l.B)),
			Scale: 1, ReLU: l.ReLU, Scheme: quant.NewBitScheme(true, 2, 2),
			Conv: l.Conv, Pool: l.Pool,
		}
		for i, w := range l.W {
			ql.W[i] = int64(w)
		}
		for i, b := range l.B {
			ql.B[i] = int64(b)
		}
		qm.Layers = append(qm.Layers, ql)
	}
	r := ring.New(32)
	x := make([]float64, 16)
	for i := range x {
		x[i] = float64(rng.Intn(9) - 4)
	}
	xe := qm.EncodeInput(r, x)
	got := qm.ForwardRing(r, xe)
	want := m.Forward(x)
	for i := range want {
		if r.Signed(got[i]) != int64(want[i]) {
			t.Fatalf("output %d: ring %d float %v", i, r.Signed(got[i]), want[i])
		}
	}
}

func TestCNNSerializationRoundTrip(t *testing.T) {
	m := SmallCNN(2)
	m.InitXavier(prg.New(prg.SeedFromInt(5)))
	data, err := MarshalModel(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := UnmarshalModel(data)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 784)
	x[100] = 0.5
	a, b := m.Forward(x), m2.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("float CNN roundtrip diverged")
		}
	}
	qm := Quantize(m, quant.Uniform(2, 4), 8)
	qdata, err := MarshalQuantized(qm)
	if err != nil {
		t.Fatal(err)
	}
	qm2, err := UnmarshalQuantized(qdata)
	if err != nil {
		t.Fatal(err)
	}
	if qm2.Layers[0].Conv == nil || qm2.Layers[0].Pool == nil {
		t.Fatal("conv/pool specs lost in quantized roundtrip")
	}
	if qm.Predict(x) != qm2.Predict(x) {
		t.Fatal("quantized CNN roundtrip diverged")
	}
}
