package nn

import (
	"testing"

	"abnn2/internal/quant"
)

// FuzzUnmarshalQuantized: arbitrary bytes must never panic the parser,
// and anything accepted must survive a marshal/unmarshal round trip.
func FuzzUnmarshalQuantized(f *testing.F) {
	m := NewModel(3, 2)
	qm := Quantize(m, quant.Uniform(2, 2), 4)
	good, _ := MarshalQuantized(qm)
	f.Add(good)
	f.Add([]byte(`{"frac":8,"layers":[]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"frac":8,"layers":[{"in":1,"out":1,"w":[9],"b":[0],"scale":1,"scheme":"ternary"}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		qm, err := UnmarshalQuantized(data)
		if err != nil {
			return
		}
		re, err := MarshalQuantized(qm)
		if err != nil {
			t.Fatalf("accepted model failed to marshal: %v", err)
		}
		if _, err := UnmarshalQuantized(re); err != nil {
			t.Fatalf("remarshalled model rejected: %v", err)
		}
	})
}

// FuzzUnmarshalModel: same contract for float models.
func FuzzUnmarshalModel(f *testing.F) {
	m := NewModel(3, 2)
	good, _ := MarshalModel(m)
	f.Add(good)
	f.Add([]byte(`{"layers":[{"in":2,"out":1,"w":[1,2],"b":[0],"relu":true}]}`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := UnmarshalModel(data)
		if err != nil {
			return
		}
		x := make([]float64, m.Layers[0].In)
		_ = m.Forward(x) // must not panic on accepted models
	})
}
