package nn

import (
	"encoding/json"
	"fmt"

	"abnn2/internal/quant"
)

// Wire formats for models, used by cmd/abnn2-train and the server binary.

type convJSON struct {
	Ci     int `json:"ci"`
	H      int `json:"h"`
	W      int `json:"w"`
	Kh     int `json:"kh"`
	Kw     int `json:"kw"`
	Stride int `json:"stride"`
	Pad    int `json:"pad"`
}

func convToJSON(c *ConvSpec) *convJSON {
	if c == nil {
		return nil
	}
	return &convJSON{Ci: c.Ci, H: c.H, W: c.W, Kh: c.Kh, Kw: c.Kw, Stride: c.Stride, Pad: c.Pad}
}

func convFromJSON(c *convJSON) (*ConvSpec, error) {
	if c == nil {
		return nil, nil
	}
	spec := &ConvSpec{Ci: c.Ci, H: c.H, W: c.W, Kh: c.Kh, Kw: c.Kw, Stride: c.Stride, Pad: c.Pad}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

type poolJSON struct {
	K int `json:"k"`
}

type layerJSON struct {
	In   int       `json:"in"`
	Out  int       `json:"out"`
	W    []float64 `json:"w"`
	B    []float64 `json:"b"`
	ReLU bool      `json:"relu"`
	Conv *convJSON `json:"conv,omitempty"`
	Pool *poolJSON `json:"pool,omitempty"`
}

type modelJSON struct {
	Layers []layerJSON `json:"layers"`
}

// MarshalModel serialises a float model to JSON.
func MarshalModel(m *Model) ([]byte, error) {
	mj := modelJSON{}
	for _, l := range m.Layers {
		lj := layerJSON{In: l.In, Out: l.Out, W: l.W, B: l.B, ReLU: l.ReLU, Conv: convToJSON(l.Conv)}
		if l.Pool != nil {
			lj.Pool = &poolJSON{K: l.Pool.K}
		}
		mj.Layers = append(mj.Layers, lj)
	}
	return json.Marshal(mj)
}

// UnmarshalModel parses a float model from JSON, validating shapes.
func UnmarshalModel(data []byte) (*Model, error) {
	var mj modelJSON
	if err := json.Unmarshal(data, &mj); err != nil {
		return nil, fmt.Errorf("nn: parse model: %w", err)
	}
	m := &Model{}
	for i, lj := range mj.Layers {
		conv, err := convFromJSON(lj.Conv)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d: %w", i, err)
		}
		l := &Layer{In: lj.In, Out: lj.Out, W: lj.W, B: lj.B, ReLU: lj.ReLU, Conv: conv}
		if lj.Pool != nil {
			l.Pool = &PoolSpec{K: lj.Pool.K}
		}
		if len(l.W) != l.Out*l.colRows() || len(l.B) != l.Out {
			return nil, fmt.Errorf("nn: layer %d shape mismatch: %d weights for %dx%d, %d biases",
				i, len(l.W), l.Out, l.colRows(), len(l.B))
		}
		m.Layers = append(m.Layers, l)
	}
	if len(m.Layers) == 0 {
		return nil, fmt.Errorf("nn: model has no layers")
	}
	// Full structural validation (panics converted to errors).
	if err := safeValidate(m); err != nil {
		return nil, err
	}
	return m, nil
}

func safeValidate(m *Model) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("nn: invalid model: %v", r)
		}
	}()
	NewCustomModel(m.Layers...)
	return nil
}

type qLayerJSON struct {
	In     int       `json:"in"`
	Out    int       `json:"out"`
	W      []int64   `json:"w"`
	B      []int64   `json:"b"`
	Scale  float64   `json:"scale"`
	ReLU   bool      `json:"relu"`
	Scheme string    `json:"scheme"`
	ReqC   uint64    `json:"reqc,omitempty"`
	ReqT   uint      `json:"reqt,omitempty"`
	Conv   *convJSON `json:"conv,omitempty"`
	Pool   *poolJSON `json:"pool,omitempty"`
}

type qModelJSON struct {
	Layers []qLayerJSON `json:"layers"`
	Frac   uint         `json:"frac"`
}

// MarshalQuantized serialises a quantized model.
func MarshalQuantized(qm *QuantizedModel) ([]byte, error) {
	mj := qModelJSON{Frac: qm.Frac}
	for _, l := range qm.Layers {
		lj := qLayerJSON{
			In: l.In, Out: l.Out, W: l.W, B: l.B,
			Scale: l.Scale, ReLU: l.ReLU, Scheme: l.Scheme.Name(),
			ReqC: l.ReqC, ReqT: l.ReqT, Conv: convToJSON(l.Conv),
		}
		if l.Pool != nil {
			lj.Pool = &poolJSON{K: l.Pool.K}
		}
		mj.Layers = append(mj.Layers, lj)
	}
	return json.Marshal(mj)
}

// UnmarshalQuantized parses a quantized model, resolving scheme names and
// validating every weight against its scheme.
func UnmarshalQuantized(data []byte) (*QuantizedModel, error) {
	var mj qModelJSON
	if err := json.Unmarshal(data, &mj); err != nil {
		return nil, fmt.Errorf("nn: parse quantized model: %w", err)
	}
	qm := &QuantizedModel{Frac: mj.Frac}
	for i, lj := range mj.Layers {
		scheme, err := quant.Parse(lj.Scheme)
		if err != nil {
			return nil, fmt.Errorf("nn: quantized layer %d: %w", i, err)
		}
		if _, err := quant.DecomposeAll(scheme, lj.W); err != nil {
			return nil, fmt.Errorf("nn: quantized layer %d: %w", i, err)
		}
		if lj.ReqT > 62 {
			return nil, fmt.Errorf("nn: quantized layer %d: requant shift %d too large", i, lj.ReqT)
		}
		conv, err := convFromJSON(lj.Conv)
		if err != nil {
			return nil, fmt.Errorf("nn: quantized layer %d: %w", i, err)
		}
		ql := &QuantizedLayer{
			In: lj.In, Out: lj.Out, W: lj.W, B: lj.B,
			Scale: lj.Scale, ReLU: lj.ReLU, Scheme: scheme,
			ReqC: lj.ReqC, ReqT: lj.ReqT, Conv: conv,
		}
		if lj.Pool != nil {
			ql.Pool = &PoolSpec{K: lj.Pool.K}
		}
		if len(ql.W) != ql.Out*ql.ColRows() || len(ql.B) != ql.Out {
			return nil, fmt.Errorf("nn: quantized layer %d shape mismatch", i)
		}
		if ql.Pool != nil {
			if ql.Conv == nil {
				return nil, fmt.Errorf("nn: quantized layer %d: pooling without convolution", i)
			}
			if err := ql.Pool.Validate(ql.Conv.OutH(), ql.Conv.OutW()); err != nil {
				return nil, fmt.Errorf("nn: quantized layer %d: %w", i, err)
			}
		}
		qm.Layers = append(qm.Layers, ql)
	}
	if len(qm.Layers) == 0 {
		return nil, fmt.Errorf("nn: quantized model has no layers")
	}
	return qm, nil
}
