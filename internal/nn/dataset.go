package nn

import (
	"math"

	"abnn2/internal/prg"
)

// The real MNIST files are not available offline, so the accuracy
// experiments use a deterministic synthetic stand-in with the same shape:
// 28x28 grayscale images in [0,1], 10 classes. Each class is a smooth
// random template; samples are the template plus Gaussian pixel noise.
// The protocol-cost experiments are input-independent, and the secure
// pipeline is verified bit-exact against plaintext regardless of data
// (see DESIGN.md, "Substitutions").

// ImageSide and NumClasses mirror MNIST's geometry.
const (
	ImageSide   = 28
	ImagePixels = ImageSide * ImageSide
	NumClasses  = 10
)

// Dataset is a labelled image set.
type Dataset struct {
	X      [][]float64
	Labels []int
}

// SyntheticMNIST generates n samples deterministically from the seed.
// noise is the Gaussian sigma added per pixel (0.25 gives a task hard
// enough that a linear model is clearly beaten by the MLP).
func SyntheticMNIST(n int, noise float64, seed uint64) *Dataset {
	rng := prg.New(prg.SeedFromInt(seed))
	templates := classTemplates(rng.Child("templates"))
	sampleRng := rng.Child("samples")
	ds := &Dataset{X: make([][]float64, n), Labels: make([]int, n)}
	for s := 0; s < n; s++ {
		c := sampleRng.Intn(NumClasses)
		img := make([]float64, ImagePixels)
		for p := range img {
			v := templates[c][p] + noise*gaussian(sampleRng)
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			img[p] = v
		}
		ds.X[s] = img
		ds.Labels[s] = c
	}
	return ds
}

// classTemplates builds 10 smooth pseudo-digit templates: a few random
// Gaussian blobs per class laid on the 28x28 grid.
func classTemplates(rng *prg.PRG) [][]float64 {
	ts := make([][]float64, NumClasses)
	for c := range ts {
		img := make([]float64, ImagePixels)
		blobs := 3 + rng.Intn(3)
		for b := 0; b < blobs; b++ {
			cx := 4 + float64(rng.Intn(20))
			cy := 4 + float64(rng.Intn(20))
			sigma := 2.0 + 2.0*float64(rng.Uint64())/float64(math.MaxUint64)
			amp := 0.5 + 0.5*float64(rng.Uint64())/float64(math.MaxUint64)
			for y := 0; y < ImageSide; y++ {
				for x := 0; x < ImageSide; x++ {
					d2 := (float64(x)-cx)*(float64(x)-cx) + (float64(y)-cy)*(float64(y)-cy)
					img[y*ImageSide+x] += amp * math.Exp(-d2/(2*sigma*sigma))
				}
			}
		}
		// Normalise to [0,1].
		var max float64
		for _, v := range img {
			if v > max {
				max = v
			}
		}
		if max > 0 {
			for p := range img {
				img[p] /= max
			}
		}
		ts[c] = img
	}
	return ts
}

// gaussian samples N(0,1) by Box-Muller.
func gaussian(rng *prg.PRG) float64 {
	u1 := (float64(rng.Uint64()) + 1) / (float64(math.MaxUint64) + 2)
	u2 := float64(rng.Uint64()) / float64(math.MaxUint64)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Split partitions the dataset into train and test halves at the ratio.
func (d *Dataset) Split(trainFrac float64) (train, test *Dataset) {
	cut := int(float64(len(d.X)) * trainFrac)
	return &Dataset{X: d.X[:cut], Labels: d.Labels[:cut]},
		&Dataset{X: d.X[cut:], Labels: d.Labels[cut:]}
}
