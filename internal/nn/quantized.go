package nn

import (
	"fmt"
	"math"

	"abnn2/internal/quant"
	"abnn2/internal/ring"
)

// QuantizedLayer is a fully connected layer with integer weights produced
// by a quant.Scheme. Bias is pre-scaled to the layer's output fixed-point
// scale so the server can add it to its share locally for free.
type QuantizedLayer struct {
	In, Out int
	W       []int64 // row-major quantized weights
	B       []int64 // bias in output-scale integer units
	Scale   float64 // weight dequantization scale
	ReLU    bool
	Scheme  quant.Scheme

	// ReqC/ReqT, when ReqC != 0, requantize the layer output by the
	// public rational ReqC/2^ReqT (≈ Scale), returning activations to the
	// input fixed-point scale. Both parties apply it locally to their
	// shares (SecureML-style truncation); see internal/core/truncate.go.
	ReqC uint64
	ReqT uint

	// Conv marks a convolutional layer (weights are Out x Ci*Kh*Kw,
	// applied per position over an im2col expansion); Pool applies
	// non-overlapping max pooling after the activation.
	Conv *ConvSpec
	Pool *PoolSpec
}

// OutputSize returns the flattened per-sample output length.
func (l *QuantizedLayer) OutputSize() int {
	if l.Conv == nil {
		return l.Out
	}
	p := l.Conv.Positions()
	if l.Pool != nil {
		p /= l.Pool.K * l.Pool.K
	}
	return l.Out * p
}

// ColRows returns the matmul inner dimension: In for FC layers,
// Ci*Kh*Kw for convolutions.
func (l *QuantizedLayer) ColRows() int {
	if l.Conv == nil {
		return l.In
	}
	return l.Conv.ColRows()
}

// Cols returns the matmul column count per sample: 1 for FC layers,
// the number of output positions for convolutions.
func (l *QuantizedLayer) Cols() int {
	if l.Conv == nil {
		return 1
	}
	return l.Conv.Positions()
}

// WMat converts the layer's weights into a ring matrix (two's complement
// embedding), the form consumed by both the secure protocol's plaintext
// reference and correctness checks.
func (l *QuantizedLayer) WMat(r ring.Ring) *ring.Mat {
	m := ring.NewMat(l.Out, l.ColRows())
	for i, w := range l.W {
		m.Data[i] = r.FromSigned(w)
	}
	return m
}

// QuantizedModel is the integer twin of a Model: the exact function the
// secure protocol evaluates over Z_{2^l}. Frac is the fixed-point
// fractional bit count used to encode the (float) input activations.
type QuantizedModel struct {
	Layers []*QuantizedLayer
	Frac   uint
}

// Quantize converts a float model to integer weights under the given
// scheme, calibrating each layer's scale to its largest weight magnitude.
// frac is the input fixed-point precision. Activations are NOT rescaled
// between layers (magnitudes grow layer by layer, as in the paper), so
// pick the ring large enough — Z_2^64 is always safe for the Figure 4
// network. For Z_2^32 operation see QuantizeRequant.
func Quantize(m *Model, scheme quant.Scheme, frac uint) *QuantizedModel {
	return quantize(m, scheme, frac, 0)
}

// QuantizeRequant converts a float model like Quantize but inserts a
// public requantization c/2^t ~= scale after every layer, returning
// activations to the 2^-frac fixed-point scale. Shares are rescaled
// locally via SecureML-style probabilistic truncation, so deep networks
// fit small rings (Z_2^32). cBits bounds the multiplier width: raw-output
// bits + cBits must stay below l-1 (6 is safe for the Figure 4 network on
// Z_2^32).
func QuantizeRequant(m *Model, scheme quant.Scheme, frac uint, cBits uint) *QuantizedModel {
	if cBits == 0 {
		cBits = 6
	}
	return quantize(m, scheme, frac, cBits)
}

func quantize(m *Model, scheme quant.Scheme, frac uint, cBits uint) *QuantizedModel {
	qm := &QuantizedModel{Frac: frac}
	// Output scale of the previous layer in real units per integer unit;
	// inputs are encoded as x*2^frac, so the initial scale is 2^-frac.
	actScale := 1.0 / float64(uint64(1)<<frac)
	for _, l := range m.Layers {
		q := quant.NewQuantizer(scheme, quant.MaxAbs(l.W))
		ql := &QuantizedLayer{
			In:     l.In,
			Out:    l.Out,
			W:      q.QuantizeAll(l.W),
			B:      make([]int64, l.Out),
			Scale:  q.Scale,
			ReLU:   l.ReLU,
			Scheme: scheme,
			Conv:   l.Conv,
			Pool:   l.Pool,
		}
		// This layer's raw outputs carry scale actScale * q.Scale.
		outScale := actScale * q.Scale
		for i, b := range l.B {
			ql.B[i] = int64(math.Round(b / outScale))
		}
		if cBits > 0 {
			ql.ReqC, ql.ReqT = requantParams(q.Scale, cBits)
			outScale *= float64(uint64(1)<<ql.ReqT) / float64(ql.ReqC)
		}
		actScale = outScale
		qm.Layers = append(qm.Layers, ql)
	}
	return qm
}

// requantParams approximates scale by c/2^t with c of about cBits bits.
func requantParams(scale float64, cBits uint) (uint64, uint) {
	if scale <= 0 {
		return 1, 0
	}
	// Want c = scale * 2^t in [2^(cBits-1), 2^cBits).
	t := int(cBits) - 1 - int(math.Floor(math.Log2(scale)))
	if t < 0 {
		t = 0
	}
	if t > 62 {
		t = 62
	}
	c := uint64(math.Round(scale * math.Pow(2, float64(t))))
	if c == 0 {
		c = 1
	}
	return c, uint(t)
}

// ForwardRing evaluates the quantized network over the ring exactly as the
// secure protocol does: matrix multiply mod 2^l, local bias add, optional
// requantization, ReLU on the two's-complement sign. Without
// requantization this is bit-exact against the secure pipeline; with it,
// the secure result may differ by one unit per truncation (the SecureML
// probabilistic-truncation slack).
func (qm *QuantizedModel) ForwardRing(r ring.Ring, x ring.Vec) ring.Vec {
	for _, l := range qm.Layers {
		if len(x) != l.In {
			panic(fmt.Sprintf("nn: input size %d for %dx%d quantized layer", len(x), l.Out, l.In))
		}
		// Columnise: FC uses the vector directly, conv expands im2col.
		var xcol *ring.Mat
		p := l.Cols()
		if l.Conv != nil {
			xcol = &ring.Mat{Rows: l.ColRows(), Cols: p, Data: l.Conv.Im2ColRing(x)}
		} else {
			xcol = &ring.Mat{Rows: l.In, Cols: 1, Data: x}
		}
		ym := r.MulMat(l.WMat(r), xcol)
		y := ym.Data // Out x P, row-major = channel-major flattening
		for o := 0; o < l.Out; o++ {
			b := r.FromSigned(l.B[o])
			for j := 0; j < p; j++ {
				y[o*p+j] = r.Add(y[o*p+j], b)
			}
		}
		if l.ReqC != 0 {
			for i := range y {
				// floor(signed(y)*c / 2^t), the exact reference of the
				// two-share local truncation.
				v := r.Signed(r.MulConst(l.ReqC, y[i]))
				y[i] = r.FromSigned(v >> l.ReqT)
			}
		}
		if l.ReLU {
			for i := range y {
				if r.IsNegative(y[i]) {
					y[i] = 0
				}
			}
		}
		if l.Pool != nil {
			windows := l.Pool.Windows(l.Out, l.Conv.OutH(), l.Conv.OutW())
			pooled := make(ring.Vec, len(windows))
			for wi, win := range windows {
				best := y[win[0]]
				for _, ii := range win[1:] {
					if r.Signed(y[ii]) > r.Signed(best) {
						best = y[ii]
					}
				}
				pooled[wi] = best
			}
			x = pooled
		} else {
			x = y
		}
	}
	return x
}

// EncodeInput converts a float input vector into ring elements at the
// model's fixed-point precision.
func (qm *QuantizedModel) EncodeInput(r ring.Ring, x []float64) ring.Vec {
	fp := ring.NewFixedPoint(r, qm.Frac)
	out := make(ring.Vec, len(x))
	for i, v := range x {
		out[i] = fp.Encode(v)
	}
	return out
}

// OutputScale returns the real value represented by one integer unit of
// the network output: the product of all layer scales and 2^-frac, with
// each requantization folding its layer's scale back out.
func (qm *QuantizedModel) OutputScale() float64 {
	s := 1.0 / float64(uint64(1)<<qm.Frac)
	for _, l := range qm.Layers {
		s *= l.Scale
		if l.ReqC != 0 {
			s *= float64(uint64(1)<<l.ReqT) / float64(l.ReqC)
		}
	}
	return s
}

// Predict runs fixed-point inference over Z_{2^64} and returns the argmax
// class. With 64-bit arithmetic the 3-layer evaluation network cannot
// overflow for 8-bit weights, so this matches the secure protocol's
// output exactly.
func (qm *QuantizedModel) Predict(x []float64) int {
	r := ring.New(64)
	out := qm.ForwardRing(r, qm.EncodeInput(r, x))
	best, bestV := 0, r.Signed(out[0])
	for i := 1; i < len(out); i++ {
		if v := r.Signed(out[i]); v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// Accuracy evaluates quantized classification accuracy.
func (qm *QuantizedModel) Accuracy(xs [][]float64, labels []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	correct := 0
	for i, x := range xs {
		if qm.Predict(x) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}

// InputSize returns the expected input dimension.
func (qm *QuantizedModel) InputSize() int { return qm.Layers[0].In }

// OutputSize returns the network output dimension.
func (qm *QuantizedModel) OutputSize() int { return qm.Layers[len(qm.Layers)-1].Out }
