// Package nn is the plaintext neural-network substrate: multilayer
// perceptrons and small CNNs (conv + non-overlapping max pooling) with
// ReLU activations, an SGD trainer, a deterministic synthetic dataset,
// and quantized fixed-point inference that exactly mirrors what the
// secure protocol computes over Z_{2^l}.
//
// Every layer is evaluated as a matrix multiplication over columns: a
// fully connected layer has one column, a convolution has one column per
// output position (im2col). The secure engine exploits exactly the same
// unification.
//
// The paper's evaluation network (its Figure 4) is a 3-layer MLP over
// 28x28 inputs; Fig4Network builds it.
package nn

import (
	"fmt"
	"math"

	"abnn2/internal/prg"
)

// Layer is one linear layer y = W*cols(x) + b with optional ReLU and max
// pooling. For fully connected layers Conv and Pool are nil and W is
// Out x In; for convolutions W is Out x (Ci*Kh*Kw) and In = Ci*H*W.
type Layer struct {
	In, Out int // input vector length; output channels (rows of W)
	W       []float64
	B       []float64 // one bias per output row (channel)
	ReLU    bool
	Conv    *ConvSpec
	Pool    *PoolSpec // requires Conv (pooling needs a spatial grid)
}

// cols returns the number of matmul columns P.
func (l *Layer) cols() int {
	if l.Conv == nil {
		return 1
	}
	return l.Conv.Positions()
}

// colRows returns the matmul inner dimension n.
func (l *Layer) colRows() int {
	if l.Conv == nil {
		return l.In
	}
	return l.Conv.ColRows()
}

// OutputSize returns the flattened output length after pooling.
func (l *Layer) OutputSize() int {
	p := l.cols()
	if l.Pool != nil {
		p /= l.Pool.K * l.Pool.K
	}
	return l.Out * p
}

// validate panics on inconsistent geometry; layers are built by library
// code, so a bad layer is a programming error.
func (l *Layer) validate() {
	if len(l.W) != l.Out*l.colRows() || len(l.B) != l.Out {
		panic(fmt.Sprintf("nn: layer has %d weights and %d biases for shape %dx%d",
			len(l.W), len(l.B), l.Out, l.colRows()))
	}
	if l.Conv != nil {
		if err := l.Conv.Validate(); err != nil {
			panic(err)
		}
		if l.In != l.Conv.InputSize() {
			panic(fmt.Sprintf("nn: conv layer In=%d, spec wants %d", l.In, l.Conv.InputSize()))
		}
	}
	if l.Pool != nil {
		if l.Conv == nil {
			panic("nn: pooling requires a convolutional layer")
		}
		if err := l.Pool.Validate(l.Conv.OutH(), l.Conv.OutW()); err != nil {
			panic(err)
		}
	}
}

// NewFCLayer builds a fully connected layer.
func NewFCLayer(in, out int, relu bool) *Layer {
	return &Layer{In: in, Out: out, W: make([]float64, out*in), B: make([]float64, out), ReLU: relu}
}

// NewConvLayer builds a convolutional layer with co output channels and
// optional non-overlapping max pooling.
func NewConvLayer(spec ConvSpec, co int, relu bool, pool *PoolSpec) *Layer {
	l := &Layer{
		In:   spec.InputSize(),
		Out:  co,
		W:    make([]float64, co*spec.ColRows()),
		B:    make([]float64, co),
		ReLU: relu,
		Conv: &spec,
		Pool: pool,
	}
	l.validate()
	return l
}

// Model is a feed-forward stack of layers.
type Model struct {
	Layers []*Layer
}

// NewModel builds a fully connected model from layer sizes; every layer
// except the last gets a ReLU, matching the paper's FC-ReLU-FC-ReLU-FC
// structure.
func NewModel(sizes ...int) *Model {
	if len(sizes) < 2 {
		panic("nn: model needs at least input and output sizes")
	}
	m := &Model{}
	for i := 0; i+1 < len(sizes); i++ {
		m.Layers = append(m.Layers, NewFCLayer(sizes[i], sizes[i+1], i+2 < len(sizes)))
	}
	return m
}

// NewCustomModel assembles a model from explicit layers, validating that
// each layer's output feeds the next layer's input.
func NewCustomModel(layers ...*Layer) *Model {
	if len(layers) == 0 {
		panic("nn: empty model")
	}
	for i, l := range layers {
		l.validate()
		if i > 0 && layers[i-1].OutputSize() != l.In {
			panic(fmt.Sprintf("nn: layer %d expects %d inputs, previous layer outputs %d",
				i, l.In, layers[i-1].OutputSize()))
		}
	}
	return &Model{Layers: layers}
}

// InitXavier initialises weights with Xavier/Glorot uniform scaling using
// deterministic randomness from rng.
func (m *Model) InitXavier(rng *prg.PRG) {
	for _, l := range m.Layers {
		bound := math.Sqrt(6.0 / float64(l.colRows()+l.Out))
		for i := range l.W {
			u := float64(rng.Uint64()) / float64(math.MaxUint64)
			l.W[i] = (2*u - 1) * bound
		}
	}
}

// layerState is the per-layer forward trace the trainer needs.
type layerState struct {
	xcol    []float64 // n x P column matrix
	z       []float64 // Out x P pre-activation
	act     []float64 // flattened output (after relu+pool)
	poolIdx []int     // per pooled output, the within-z index of the max
}

// forwardLayer evaluates one layer, optionally recording state.
func (l *Layer) forwardLayer(x []float64, trace bool) layerState {
	if len(x) != l.In {
		panic(fmt.Sprintf("nn: input size %d for layer expecting %d", len(x), l.In))
	}
	var xcol []float64
	if l.Conv != nil {
		xcol = l.Conv.Im2ColFloat(x)
	} else {
		xcol = x
	}
	n, p := l.colRows(), l.cols()
	z := make([]float64, l.Out*p)
	for o := 0; o < l.Out; o++ {
		row := l.W[o*n : (o+1)*n]
		for j := 0; j < p; j++ {
			acc := l.B[o]
			for i, w := range row {
				acc += w * xcol[i*p+j]
			}
			z[o*p+j] = acc
		}
	}
	// ReLU.
	act := z
	if l.ReLU {
		act = make([]float64, len(z))
		for i, v := range z {
			if v > 0 {
				act[i] = v
			}
		}
	}
	st := layerState{z: z}
	if trace {
		st.xcol = xcol
	}
	// Max pooling over the Out x OutH x OutW grid.
	if l.Pool != nil {
		windows := l.Pool.Windows(l.Out, l.Conv.OutH(), l.Conv.OutW())
		pooled := make([]float64, len(windows))
		idx := make([]int, len(windows))
		for wi, win := range windows {
			best := win[0]
			for _, ii := range win[1:] {
				if act[ii] > act[best] {
					best = ii
				}
			}
			pooled[wi] = act[best]
			idx[wi] = best
		}
		st.act = pooled
		st.poolIdx = idx
	} else {
		st.act = act
	}
	return st
}

// Forward runs the float forward pass, returning the output activations.
func (m *Model) Forward(x []float64) []float64 {
	for _, l := range m.Layers {
		x = l.forwardLayer(x, false).act
	}
	return x
}

// Predict returns the argmax class of the forward pass.
func (m *Model) Predict(x []float64) int {
	return argmax(m.Forward(x))
}

// Accuracy evaluates classification accuracy over a dataset.
func (m *Model) Accuracy(xs [][]float64, labels []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	correct := 0
	for i, x := range xs {
		if m.Predict(x) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}

func argmax(v []float64) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// Fig4Network returns the paper's evaluation architecture (Figure 4):
// FC 784->128, ReLU, FC 128->128, ReLU, FC 128->10.
func Fig4Network() *Model { return NewModel(784, 128, 128, 10) }

// SmallCNN returns a compact CNN for the 28x28 synthetic dataset:
// Conv(1->co, 5x5, stride 1) + ReLU + MaxPool 2 -> FC(co*12*12 -> 10).
// It exercises every secure layer type (conv triplets, combined
// ReLU+pool GC, FC triplets).
func SmallCNN(co int) *Model {
	conv := ConvSpec{Ci: 1, H: 28, W: 28, Kh: 5, Kw: 5, Stride: 1, Pad: 0}
	return NewCustomModel(
		NewConvLayer(conv, co, true, &PoolSpec{K: 2}),
		NewFCLayer(co*12*12, NumClasses, false),
	)
}
