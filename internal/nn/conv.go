package nn

import (
	"fmt"

	"abnn2/internal/ring"
)

// Convolution and pooling support. A convolution is evaluated as a
// matrix multiplication over an im2col expansion: the expansion is a
// *public* rearrangement of the input, so in the secure protocol both
// parties apply it locally to their shares and the existing triplet
// machinery handles the rest (see internal/core/inference.go).
//
// Feature maps are flattened channel-major: index = c*(H*W) + y*W + x.

// ConvSpec describes a 2D convolution's geometry. The weight matrix of
// the owning layer is Co x (Ci*Kh*Kw), applied at every output position.
type ConvSpec struct {
	Ci, H, W int // input channels and spatial size
	Kh, Kw   int // kernel size
	Stride   int
	Pad      int
}

// OutH returns the output feature-map height.
func (c ConvSpec) OutH() int { return (c.H+2*c.Pad-c.Kh)/c.Stride + 1 }

// OutW returns the output feature-map width.
func (c ConvSpec) OutW() int { return (c.W+2*c.Pad-c.Kw)/c.Stride + 1 }

// Positions returns the number of output spatial positions P.
func (c ConvSpec) Positions() int { return c.OutH() * c.OutW() }

// ColRows returns the im2col row count n = Ci*Kh*Kw.
func (c ConvSpec) ColRows() int { return c.Ci * c.Kh * c.Kw }

// InputSize returns the flattened input length Ci*H*W.
func (c ConvSpec) InputSize() int { return c.Ci * c.H * c.W }

// Validate checks the geometry.
func (c ConvSpec) Validate() error {
	if c.Ci <= 0 || c.H <= 0 || c.W <= 0 || c.Kh <= 0 || c.Kw <= 0 {
		return fmt.Errorf("nn: conv dimensions must be positive: %+v", c)
	}
	if c.Stride <= 0 {
		return fmt.Errorf("nn: conv stride must be positive")
	}
	if c.Pad < 0 {
		return fmt.Errorf("nn: conv padding must be non-negative")
	}
	if c.Kh > c.H+2*c.Pad || c.Kw > c.W+2*c.Pad {
		return fmt.Errorf("nn: kernel %dx%d larger than padded input %dx%d", c.Kh, c.Kw, c.H+2*c.Pad, c.W+2*c.Pad)
	}
	return nil
}

// colIndex returns the flattened input index for im2col row r at output
// position p, or -1 for a padding cell.
func (c ConvSpec) colIndex(r, p int) int {
	kw := r % c.Kw
	kh := (r / c.Kw) % c.Kh
	ci := r / (c.Kw * c.Kh)
	ow := c.OutW()
	px := p % ow
	py := p / ow
	y := py*c.Stride + kh - c.Pad
	x := px*c.Stride + kw - c.Pad
	if y < 0 || y >= c.H || x < 0 || x >= c.W {
		return -1
	}
	return ci*(c.H*c.W) + y*c.W + x
}

// Im2ColFloat expands one flattened sample into the n x P column matrix
// (row-major, n rows of P values).
func (c ConvSpec) Im2ColFloat(x []float64) []float64 {
	n, p := c.ColRows(), c.Positions()
	out := make([]float64, n*p)
	for r := 0; r < n; r++ {
		for j := 0; j < p; j++ {
			if idx := c.colIndex(r, j); idx >= 0 {
				out[r*p+j] = x[idx]
			}
		}
	}
	return out
}

// Col2ImFloat scatters gradients from column space back to input space
// (the transpose of Im2ColFloat), accumulating overlaps.
func (c ConvSpec) Col2ImFloat(col []float64) []float64 {
	n, p := c.ColRows(), c.Positions()
	out := make([]float64, c.InputSize())
	for r := 0; r < n; r++ {
		for j := 0; j < p; j++ {
			if idx := c.colIndex(r, j); idx >= 0 {
				out[idx] += col[r*p+j]
			}
		}
	}
	return out
}

// Im2ColRing expands a ring-element sample; padding cells become 0,
// which is correct on additive shares because both parties insert the
// same zeros (0 + 0 = 0).
func (c ConvSpec) Im2ColRing(x ring.Vec) ring.Vec {
	n, p := c.ColRows(), c.Positions()
	out := make(ring.Vec, n*p)
	for r := 0; r < n; r++ {
		for j := 0; j < p; j++ {
			if idx := c.colIndex(r, j); idx >= 0 {
				out[r*p+j] = x[idx]
			}
		}
	}
	return out
}

// PoolSpec describes non-overlapping max pooling (stride = window) on a
// Co x Oh x Ow feature map. Non-overlap means every input belongs to
// exactly one window, which the secure pooling protocol relies on.
type PoolSpec struct {
	K int // window edge (K x K), stride K
}

// Validate checks the pool against the grid it is applied to.
func (p PoolSpec) Validate(oh, ow int) error {
	if p.K <= 1 {
		return fmt.Errorf("nn: pool window must be > 1")
	}
	if oh%p.K != 0 || ow%p.K != 0 {
		return fmt.Errorf("nn: pool %d does not divide feature map %dx%d", p.K, oh, ow)
	}
	return nil
}

// Windows enumerates, for a Co x Oh x Ow map flattened channel-major,
// the input indices of every pooling window, in output order
// (channel-major over the pooled grid).
func (p PoolSpec) Windows(co, oh, ow int) [][]int {
	ph, pw := oh/p.K, ow/p.K
	out := make([][]int, 0, co*ph*pw)
	for c := 0; c < co; c++ {
		base := c * oh * ow
		for py := 0; py < ph; py++ {
			for px := 0; px < pw; px++ {
				win := make([]int, 0, p.K*p.K)
				for dy := 0; dy < p.K; dy++ {
					for dx := 0; dx < p.K; dx++ {
						win = append(win, base+(py*p.K+dy)*ow+(px*p.K+dx))
					}
				}
				out = append(out, win)
			}
		}
	}
	return out
}
