package nn

import (
	"math"

	"abnn2/internal/prg"
)

// TrainConfig controls SGD training.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Seed      uint64
}

// DefaultTrainConfig is tuned for the synthetic dataset: a few epochs
// reach high accuracy on the 3-layer network.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 5, BatchSize: 32, LR: 0.05, Seed: 1}
}

// Train fits the model with minibatch SGD on softmax cross-entropy loss.
// It returns the final average loss. Deterministic for a fixed seed.
// Works for both fully connected and convolutional models (backprop runs
// through im2col and max-pool argmax routing).
func (m *Model) Train(xs [][]float64, labels []int, cfg TrainConfig) float64 {
	rng := prg.New(prg.SeedFromInt(cfg.Seed))
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Fisher-Yates shuffle with deterministic randomness.
		for i := n - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			idx[i], idx[j] = idx[j], idx[i]
		}
		var epochLoss float64
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			epochLoss += m.step(xs, labels, idx[start:end], cfg.LR)
		}
		lastLoss = epochLoss / float64((n+cfg.BatchSize-1)/cfg.BatchSize)
	}
	return lastLoss
}

// step runs one minibatch update and returns the batch loss.
func (m *Model) step(xs [][]float64, labels []int, batch []int, lr float64) float64 {
	nl := len(m.Layers)
	gW := make([][]float64, nl)
	gB := make([][]float64, nl)
	for li, l := range m.Layers {
		gW[li] = make([]float64, len(l.W))
		gB[li] = make([]float64, len(l.B))
	}
	var loss float64
	for _, s := range batch {
		// Forward with traces.
		states := make([]layerState, nl)
		x := xs[s]
		for li, l := range m.Layers {
			states[li] = l.forwardLayer(x, true)
			x = states[li].act
		}
		// Softmax cross-entropy on the final activations.
		logits := states[nl-1].act
		probs := softmax(logits)
		loss += -math.Log(math.Max(probs[labels[s]], 1e-12))
		// dAct on the final layer output.
		dAct := make([]float64, len(logits))
		copy(dAct, probs)
		dAct[labels[s]] -= 1
		// Backward.
		for li := nl - 1; li >= 0; li-- {
			l := m.Layers[li]
			st := states[li]
			nIn, p := l.colRows(), l.cols()
			// Through pooling: scatter each pooled gradient to its argmax.
			dZ := dAct
			if l.Pool != nil {
				dZ = make([]float64, len(st.z))
				for wi, src := range st.poolIdx {
					dZ[src] += dAct[wi]
				}
			}
			// Through ReLU.
			if l.ReLU {
				masked := make([]float64, len(dZ))
				for i := range dZ {
					if st.z[i] > 0 {
						masked[i] = dZ[i]
					}
				}
				dZ = masked
			}
			// Weight and bias gradients: dW = dZ * xcol^T.
			for o := 0; o < l.Out; o++ {
				gwRow := gW[li][o*nIn : (o+1)*nIn]
				for j := 0; j < p; j++ {
					d := dZ[o*p+j]
					if d == 0 {
						continue
					}
					gB[li][o] += d
					for i := 0; i < nIn; i++ {
						gwRow[i] += d * st.xcol[i*p+j]
					}
				}
			}
			// Input gradient for the next (earlier) layer.
			if li > 0 {
				dCol := make([]float64, nIn*p)
				for i := 0; i < nIn; i++ {
					for j := 0; j < p; j++ {
						var acc float64
						for o := 0; o < l.Out; o++ {
							acc += l.W[o*nIn+i] * dZ[o*p+j]
						}
						dCol[i*p+j] = acc
					}
				}
				if l.Conv != nil {
					dAct = l.Conv.Col2ImFloat(dCol)
				} else {
					dAct = dCol
				}
			}
		}
	}
	scale := lr / float64(len(batch))
	for li, l := range m.Layers {
		for i := range l.W {
			l.W[i] -= scale * gW[li][i]
		}
		for i := range l.B {
			l.B[i] -= scale * gB[li][i]
		}
	}
	return loss / float64(len(batch))
}

func softmax(v []float64) []float64 {
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	out := make([]float64, len(v))
	var sum float64
	for i, x := range v {
		out[i] = math.Exp(x - m)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}
