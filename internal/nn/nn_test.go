package nn

import (
	"math"
	"testing"

	"abnn2/internal/prg"
	"abnn2/internal/quant"
	"abnn2/internal/ring"
)

func TestForwardKnown(t *testing.T) {
	m := NewModel(2, 2, 1)
	// Layer 0: identity-ish with ReLU.
	m.Layers[0].W = []float64{1, 0, 0, 1}
	m.Layers[0].B = []float64{0, -1}
	// Layer 1: sum.
	m.Layers[1].W = []float64{1, 1}
	m.Layers[1].B = []float64{0.5}
	out := m.Forward([]float64{2, 0.5})
	// h = ReLU([2, -0.5]) = [2, 0]; y = 2 + 0 + 0.5 = 2.5.
	if math.Abs(out[0]-2.5) > 1e-12 {
		t.Fatalf("forward = %v, want 2.5", out[0])
	}
}

func TestModelShapes(t *testing.T) {
	m := Fig4Network()
	if len(m.Layers) != 3 {
		t.Fatalf("fig4 layers = %d", len(m.Layers))
	}
	dims := [][2]int{{784, 128}, {128, 128}, {128, 10}}
	for i, l := range m.Layers {
		if l.In != dims[i][0] || l.Out != dims[i][1] {
			t.Errorf("layer %d: %dx%d", i, l.Out, l.In)
		}
		wantReLU := i < 2
		if l.ReLU != wantReLU {
			t.Errorf("layer %d relu = %v", i, l.ReLU)
		}
	}
}

func TestSyntheticDatasetDeterministic(t *testing.T) {
	a := SyntheticMNIST(10, 0.1, 5)
	b := SyntheticMNIST(10, 0.1, 5)
	for i := range a.X {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("labels differ across identical seeds")
		}
		for p := range a.X[i] {
			if a.X[i][p] != b.X[i][p] {
				t.Fatal("pixels differ across identical seeds")
			}
		}
	}
	c := SyntheticMNIST(10, 0.1, 6)
	same := true
	for p := range a.X[0] {
		if a.X[0][p] != c.X[0][p] {
			same = false
			break
		}
	}
	if same && a.Labels[0] == c.Labels[0] {
		t.Error("different seeds produced identical first samples")
	}
}

func TestDatasetRangesAndSplit(t *testing.T) {
	ds := SyntheticMNIST(50, 0.25, 7)
	for i, x := range ds.X {
		if len(x) != ImagePixels {
			t.Fatalf("sample %d has %d pixels", i, len(x))
		}
		for _, v := range x {
			if v < 0 || v > 1 {
				t.Fatalf("pixel %v out of [0,1]", v)
			}
		}
		if ds.Labels[i] < 0 || ds.Labels[i] >= NumClasses {
			t.Fatalf("label %d out of range", ds.Labels[i])
		}
	}
	train, test := ds.Split(0.8)
	if len(train.X) != 40 || len(test.X) != 10 {
		t.Fatalf("split sizes %d/%d", len(train.X), len(test.X))
	}
}

// Training on the synthetic task must reach high accuracy; this exercises
// forward, backward, and the dataset end to end. Uses a smaller network
// than Fig4 to keep the test fast.
func TestTrainingLearns(t *testing.T) {
	ds := SyntheticMNIST(600, 0.2, 11)
	train, test := ds.Split(0.8)
	m := NewModel(ImagePixels, 32, NumClasses)
	m.InitXavier(prg.New(prg.SeedFromInt(1)))
	before := m.Accuracy(test.X, test.Labels)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 3
	m.Train(train.X, train.Labels, cfg)
	after := m.Accuracy(test.X, test.Labels)
	if after < 0.8 {
		t.Errorf("accuracy after training = %.3f (before %.3f), want >= 0.8", after, before)
	}
	if after <= before {
		t.Errorf("training did not improve accuracy: %.3f -> %.3f", before, after)
	}
}

func TestQuantizePreservesPrediction(t *testing.T) {
	ds := SyntheticMNIST(400, 0.2, 13)
	train, test := ds.Split(0.75)
	m := NewModel(ImagePixels, 32, NumClasses)
	m.InitXavier(prg.New(prg.SeedFromInt(2)))
	cfg := DefaultTrainConfig()
	cfg.Epochs = 3
	m.Train(train.X, train.Labels, cfg)
	floatAcc := m.Accuracy(test.X, test.Labels)
	qm := Quantize(m, quant.NewBitScheme(true, 2, 2, 2, 2), 8)
	qAcc := qm.Accuracy(test.X, test.Labels)
	if qAcc < floatAcc-0.1 {
		t.Errorf("8-bit quantization dropped accuracy too far: float %.3f -> quant %.3f", floatAcc, qAcc)
	}
}

func TestQuantizedWeightsInRange(t *testing.T) {
	m := NewModel(4, 3, 2)
	m.InitXavier(prg.New(prg.SeedFromInt(3)))
	for _, scheme := range []quant.Scheme{quant.Binary(), quant.Ternary(), quant.Uniform(2, 2)} {
		qm := Quantize(m, scheme, 8)
		for li, l := range qm.Layers {
			if _, err := quant.DecomposeAll(scheme, l.W); err != nil {
				t.Errorf("%s layer %d: %v", scheme.Name(), li, err)
			}
		}
	}
}

func TestForwardRingMatchesInt(t *testing.T) {
	// Small handcrafted network evaluated both by ForwardRing and by a
	// direct int64 computation.
	qm := &QuantizedModel{
		Frac: 4,
		Layers: []*QuantizedLayer{
			{In: 3, Out: 2, W: []int64{1, -2, 3, 0, 1, -1}, B: []int64{5, -5}, Scale: 1, ReLU: true, Scheme: quant.Uniform(2, 2)},
			{In: 2, Out: 1, W: []int64{2, -3}, B: []int64{1}, Scale: 1, ReLU: false, Scheme: quant.Uniform(2, 2)},
		},
	}
	r := ring.New(32)
	x := []int64{10, -20, 5}
	xe := make(ring.Vec, 3)
	for i, v := range x {
		xe[i] = r.FromSigned(v)
	}
	out := qm.ForwardRing(r, xe)
	// h0 = 10+40+15+5 = 70; h1 = -20-5-5 = -30 -> 0.
	// y = 2*70 - 0 + 1 = 141.
	if got := r.Signed(out[0]); got != 141 {
		t.Fatalf("ForwardRing = %d, want 141", got)
	}
}

func TestEncodeInputAndScale(t *testing.T) {
	qm := &QuantizedModel{Frac: 8, Layers: []*QuantizedLayer{
		{In: 1, Out: 1, W: []int64{1}, B: []int64{0}, Scale: 0.5, Scheme: quant.Uniform(2, 2)},
	}}
	r := ring.New(32)
	enc := qm.EncodeInput(r, []float64{1.5})
	if r.Signed(enc[0]) != 384 {
		t.Fatalf("encoded 1.5 -> %d, want 384", r.Signed(enc[0]))
	}
	if s := qm.OutputScale(); math.Abs(s-0.5/256) > 1e-15 {
		t.Fatalf("OutputScale = %v", s)
	}
}

func TestModelSerializationRoundTrip(t *testing.T) {
	m := NewModel(3, 4, 2)
	m.InitXavier(prg.New(prg.SeedFromInt(4)))
	data, err := MarshalModel(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := UnmarshalModel(data)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, -0.2, 0.3}
	a, b := m.Forward(x), m2.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("forward differs after roundtrip")
		}
	}
}

func TestQuantizedSerializationRoundTrip(t *testing.T) {
	m := NewModel(3, 4, 2)
	m.InitXavier(prg.New(prg.SeedFromInt(5)))
	qm := Quantize(m, quant.NewBitScheme(true, 3, 3, 2), 8)
	data, err := MarshalQuantized(qm)
	if err != nil {
		t.Fatal(err)
	}
	qm2, err := UnmarshalQuantized(data)
	if err != nil {
		t.Fatal(err)
	}
	if qm2.Layers[0].Scheme.Name() != "8(3,3,2)" {
		t.Errorf("scheme name after roundtrip: %s", qm2.Layers[0].Scheme.Name())
	}
	x := []float64{0.5, 0.25, -0.5}
	if qm.Predict(x) != qm2.Predict(x) {
		t.Error("prediction differs after roundtrip")
	}
}

func TestUnmarshalRejectsBadShapes(t *testing.T) {
	bad := []string{
		`{"layers":[{"in":2,"out":1,"w":[1],"b":[0],"relu":false}]}`,
		`{"layers":[]}`,
		`not json`,
	}
	for _, s := range bad {
		if _, err := UnmarshalModel([]byte(s)); err == nil {
			t.Errorf("UnmarshalModel accepted %q", s)
		}
	}
	badQ := `{"frac":8,"layers":[{"in":1,"out":1,"w":[9],"b":[0],"scale":1,"relu":false,"scheme":"ternary"}]}`
	if _, err := UnmarshalQuantized([]byte(badQ)); err == nil {
		t.Error("UnmarshalQuantized accepted out-of-range ternary weight")
	}
}
