package plan

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"abnn2/internal/baseline"
	"abnn2/internal/core"
	"abnn2/internal/quant"
)

// Link models the channel the offline phase runs over. Predicted layer
// time is CommBits / bandwidth + Flights * RTT + compute / ComputeAmort.
type Link struct {
	Name string `json:"name,omitempty"`
	// BandwidthMBps is the link bandwidth in megabytes per second.
	BandwidthMBps float64 `json:"bandwidth_mbps"`
	// RTTms is the round-trip time in milliseconds; every protocol
	// flight pair pays one.
	RTTms float64 `json:"rtt_ms"`
	// ComputeAmort divides predicted offline *compute* time. On a WAN
	// the offline phase is bank-precomputed ahead of need (overlapping
	// with idle link time across many sessions), so compute is heavily
	// amortized relative to the wire; on a LAN inline generation pays
	// it in full. Must be >= 1.
	ComputeAmort float64 `json:"compute_amort"`
}

// LAN is the datacenter preset: 10 Gbit/s, 0.2 ms RTT, inline offline
// (compute paid in full).
func LAN() Link { return Link{Name: "lan", BandwidthMBps: 1250, RTTms: 0.2, ComputeAmort: 1} }

// WAN is the wide-area preset matching the paper's evaluation setting
// (72 Mbit/s-class broadband, 72 ms RTT); offline compute is assumed
// bank-amortized across sessions.
func WAN() Link { return Link{Name: "wan", BandwidthMBps: 9, RTTms: 72, ComputeAmort: 64} }

// ParseLink accepts "lan", "wan", or "<MBps>:<RTTms>" (custom link,
// ComputeAmort 1).
func ParseLink(s string) (Link, error) {
	switch s {
	case "lan":
		return LAN(), nil
	case "wan":
		return WAN(), nil
	}
	parts := strings.Split(s, ":")
	if len(parts) == 2 {
		bw, err1 := strconv.ParseFloat(parts[0], 64)
		rtt, err2 := strconv.ParseFloat(parts[1], 64)
		if err1 == nil && err2 == nil && bw > 0 && rtt >= 0 {
			return Link{Name: s, BandwidthMBps: bw, RTTms: rtt, ComputeAmort: 1}, nil
		}
	}
	return Link{}, fmt.Errorf("plan: cannot parse link %q (want lan, wan, or MBps:RTTms)", s)
}

// Compute-cost constants. These are coarse single-core calibrations —
// the planner needs relative magnitudes (symmetric-crypto OTs are
// orders of magnitude cheaper than Paillier ops), not microbenchmark
// accuracy; mispredicting compute by 2x cannot flip a choice that comm
// and RTT do not already support.
const (
	// secondsPerOT prices one OT-extension invocation (hashing, ring
	// arithmetic, payload packing) on either party.
	secondsPerOT = 200e-9
	// secondsPerByte prices touching one payload byte beyond the OT
	// fixed cost.
	secondsPerByte = 0.5e-9
	// paillierCubeSeconds prices one Paillier ciphertext operation as
	// cube of the key size: enc/dec are modexps over a 2*keyBits
	// modulus, cubic in keyBits. 5e-12 * 1024^3 ~ 5 ms/op, the measured
	// order of magnitude for the Go bignum baseline.
	paillierCubeSeconds = 5e-12
)

// Candidate is one evaluated (backend, scheme) option for a layer.
type Candidate struct {
	Choice   Choice
	CommBits float64 // predicted offline wire bits, both directions
	Flights  int     // wire flights (each pair of flights costs one RTT)
	Compute  float64 // seconds of offline compute, before amortization
	Seconds  float64 // total predicted seconds under the link
}

// LayerEstimate is the planner's full view of one layer: every
// applicable candidate (sorted by predicted cost) and the chosen one.
type LayerEstimate struct {
	Layer      int
	Shape      core.MatShape
	Chosen     Candidate
	Candidates []Candidate
}

// Estimate is a priced plan: per-layer predictions plus totals.
type Estimate struct {
	Link   Link
	Layers []LayerEstimate
}

// TotalSeconds sums the predicted per-layer cost. Layers execute
// sequentially in the offline protocol, so the sum is the end-to-end
// prediction.
func (e *Estimate) TotalSeconds() float64 {
	var t float64
	for _, l := range e.Layers {
		t += l.Chosen.Seconds
	}
	return t
}

// TotalCommBits sums predicted offline communication.
func (e *Estimate) TotalCommBits() float64 {
	var b float64
	for _, l := range e.Layers {
		b += l.Chosen.CommBits
	}
	return b
}

// Input is everything the planner needs; all fields are public protocol
// state, so client and server compute identical plans from it.
type Input struct {
	Arch     core.Arch
	RingBits uint
	Batch    int
	Link     Link
	// MiniONNBits overrides the Paillier key size (0 = baseline
	// default).
	MiniONNBits int
}

func (in Input) validate() error {
	if err := in.Arch.Validate(); err != nil {
		return err
	}
	if in.RingBits == 0 || in.RingBits > 64 {
		return fmt.Errorf("plan: ring bits %d outside [1,64]", in.RingBits)
	}
	if in.Batch <= 0 {
		return fmt.Errorf("plan: batch must be positive")
	}
	if in.Link.BandwidthMBps <= 0 || in.Link.ComputeAmort < 1 {
		return fmt.Errorf("plan: malformed link %+v", in.Link)
	}
	return nil
}

func (in Input) keyBits() int {
	if in.MiniONNBits > 0 {
		return in.MiniONNBits
	}
	return baseline.MiniONNKeyBits
}

// price converts a candidate's raw resources into seconds under the
// link model.
func (l Link) price(c *Candidate) {
	c.Seconds = c.CommBits/8/(l.BandwidthMBps*1e6) + float64(c.Flights)/2*l.RTTms/1e3 + c.Compute/l.ComputeAmort
}

// abnn2Candidate prices the ABNN2 backend for one layer under a
// concrete fragmentation scheme (the session scheme when override is
// "").
func abnn2Candidate(in Input, sh core.MatShape, sc quant.Scheme, override string) Candidate {
	cx := core.OfflineComplexity(in.RingBits, sc, sh)
	chunks := int(math.Ceil(float64(cx.NumOTs) / 4096))
	c := Candidate{
		Choice:   Choice{Backend: core.BackendABNN2, Scheme: override},
		CommBits: cx.CommBits,
		Flights:  2 * chunks,
		Compute:  float64(cx.NumOTs)*secondsPerOT + cx.CommBits/8*secondsPerByte,
	}
	in.Link.price(&c)
	return c
}

// candidates enumerates every applicable (backend, scheme) option for
// one layer, in a fixed deterministic order.
func candidates(in Input, session quant.Scheme, l core.LayerSpec) []Candidate {
	sh := core.MatShape{M: l.Out, N: l.ColRows(), O: in.Batch * l.Cols()}
	out := []Candidate{abnn2Candidate(in, sh, session, "")}

	// Alternative η/γ decompositions of the same weight range: for
	// bit schemes, re-fragment the η bits into uniform widths (plus a
	// remainder fragment). Candidate counts trade payload size against
	// OT count, so the best width is shape- and link-dependent.
	for _, sc := range altSchemes(session) {
		out = append(out, abnn2Candidate(in, sh, sc, sc.Name()))
	}

	cx := core.SecureMLComplexity(in.RingBits, sh)
	sml := Candidate{
		Choice:   Choice{Backend: core.BackendSecureML},
		CommBits: cx.CommBits,
		Flights:  2 * int(math.Ceil(float64(sh.M)*float64(sh.N)*float64(in.RingBits)/8192)),
		Compute:  float64(cx.NumOTs)*secondsPerOT + cx.CommBits/8*secondsPerByte,
	}
	in.Link.price(&sml)
	out = append(out, sml)

	kb := in.keyBits()
	mcx := core.MiniONNComplexity(kb, sh)
	ops := (float64(sh.N) + float64(sh.M)) * float64(sh.O)
	mon := Candidate{
		Choice:   Choice{Backend: core.BackendMiniONN},
		CommBits: mcx.CommBits,
		Flights:  3, // public key, ciphertexts up, ciphertexts down
		Compute:  ops * paillierCubeSeconds * float64(kb) * float64(kb) * float64(kb),
	}
	in.Link.price(&mon)
	out = append(out, mon)

	if min, max := session.Range(); min >= -1 && max <= 1 && sh.O == 1 {
		qcx := core.QuotientComplexity(in.RingBits, sh)
		quo := Candidate{
			Choice:   Choice{Backend: core.BackendQuotient},
			CommBits: qcx.CommBits,
			Flights:  2,
			Compute:  float64(qcx.NumOTs)*secondsPerOT + qcx.CommBits/8*secondsPerByte,
		}
		in.Link.price(&quo)
		out = append(out, quo)
	}
	return out
}

// altSchemes enumerates alternative uniform-width decompositions of a
// bit scheme's η bits (same range, same signedness). Ternary and binary
// have no alternatives. The order is fixed (ascending width), keeping
// the planner deterministic.
func altSchemes(session quant.Scheme) []quant.Scheme {
	eta := bitEta(session)
	if eta < 2 {
		return nil
	}
	signed := false
	if min, _ := session.Range(); min < 0 {
		signed = true
	}
	var out []quant.Scheme
	for w := uint(1); w <= 8 && w <= eta; w++ {
		widths := make([]uint, 0, eta/w+1)
		rem := eta
		for rem >= w {
			widths = append(widths, w)
			rem -= w
		}
		if rem > 0 {
			widths = append(widths, rem)
		}
		sc := quant.NewBitScheme(signed, widths...)
		if sc.Name() == session.Name() {
			continue
		}
		out = append(out, sc)
	}
	return out
}

// bitEta returns the total bit width of a power-of-two fragment scheme,
// or 0 for schemes (like ternary) that are not bit decompositions.
func bitEta(sc quant.Scheme) uint {
	var eta uint
	for f := 0; f < sc.Gamma(); f++ {
		n := sc.FragmentN(f)
		if n&(n-1) != 0 {
			return 0
		}
		for n > 1 {
			eta++
			n >>= 1
		}
	}
	return eta
}

// Choose runs the planner: per layer, evaluate every applicable
// candidate and keep the cheapest. Strict-less-than comparison over a
// fixed enumeration order makes the result deterministic for a fixed
// Input.
func Choose(in Input) (*Plan, *Estimate, error) {
	if err := in.validate(); err != nil {
		return nil, nil, err
	}
	session, err := quant.Parse(in.Arch.SchemeName)
	if err != nil {
		return nil, nil, fmt.Errorf("plan: session scheme: %w", err)
	}
	p := &Plan{Layers: make([]Choice, len(in.Arch.Layers))}
	est := &Estimate{Link: in.Link, Layers: make([]LayerEstimate, len(in.Arch.Layers))}
	for li, l := range in.Arch.Layers {
		cands := candidates(in, session, l)
		best := cands[0]
		for _, c := range cands[1:] {
			if c.Seconds < best.Seconds {
				best = c
			}
		}
		sorted := append([]Candidate(nil), cands...)
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Seconds < sorted[j].Seconds })
		p.Layers[li] = best.Choice
		est.Layers[li] = LayerEstimate{
			Layer:      li,
			Shape:      core.MatShape{M: l.Out, N: l.ColRows(), O: in.Batch * l.Cols()},
			Chosen:     best,
			Candidates: sorted,
		}
	}
	return p, est, nil
}

// EstimatePlan prices a given plan (rather than choosing one), for
// predicted-vs-measured reporting.
func EstimatePlan(in Input, p *Plan) (*Estimate, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(in.Arch, in.Batch); err != nil {
		return nil, err
	}
	session, err := quant.Parse(in.Arch.SchemeName)
	if err != nil {
		return nil, fmt.Errorf("plan: session scheme: %w", err)
	}
	est := &Estimate{Link: in.Link, Layers: make([]LayerEstimate, len(p.Layers))}
	for li, ch := range p.Layers {
		l := in.Arch.Layers[li]
		cands := candidates(in, session, l)
		var chosen *Candidate
		for i := range cands {
			if cands[i].Choice == ch {
				chosen = &cands[i]
				break
			}
		}
		if chosen == nil {
			// A valid choice outside the planner's enumeration (e.g. a
			// hand-written scheme override): price it directly.
			sh := core.MatShape{M: l.Out, N: l.ColRows(), O: in.Batch * l.Cols()}
			var c Candidate
			switch ch.Backend {
			case core.BackendABNN2:
				sc := session
				if ch.Scheme != "" {
					if sc, err = quant.Parse(ch.Scheme); err != nil {
						return nil, err
					}
				}
				c = abnn2Candidate(in, sh, sc, ch.Scheme)
			default:
				return nil, fmt.Errorf("plan: layer %d: cannot price %s", li, ch.Backend)
			}
			chosen = &c
		}
		est.Layers[li] = LayerEstimate{
			Layer:  li,
			Shape:  core.MatShape{M: l.Out, N: l.ColRows(), O: in.Batch * l.Cols()},
			Chosen: *chosen,
		}
	}
	return est, nil
}
