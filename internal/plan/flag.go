package plan

import (
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"abnn2/internal/core"
)

// FlagUsage documents the shared -plan flag value syntax.
const FlagUsage = "per-layer offline backend plan: auto (cost-model planner under -link), " +
	"a backend name (abnn2, secureml, minionn, quotient) for a uniform plan, " +
	"or @file naming a JSON plan (empty = no plan, the all-ABNN2 default)"

// FromFlag resolves a -plan flag value against a model: "auto" runs
// the cost-model planner under in.Link, a backend name builds a
// uniform plan, and "@path" loads a JSON plan file. The empty value
// means no plan (nil, nil, nil). The estimate is nil when the plan
// validates but cannot be priced.
func FromFlag(val string, in Input) (*Plan, *Estimate, error) {
	switch {
	case val == "":
		return nil, nil, nil
	case val == "auto":
		return Choose(in)
	case strings.HasPrefix(val, "@"):
		data, err := os.ReadFile(val[1:])
		if err != nil {
			return nil, nil, fmt.Errorf("plan: %w", err)
		}
		p, err := FromJSON(data)
		if err != nil {
			return nil, nil, err
		}
		if err := p.Validate(in.Arch, in.Batch); err != nil {
			return nil, nil, err
		}
		est, _ := EstimatePlan(in, p)
		return p, est, nil
	default:
		b, err := core.ParseBackend(val)
		if err != nil {
			return nil, nil, fmt.Errorf("plan: bad -plan value %q: want auto, a backend name, or @file", val)
		}
		p := Uniform(b, len(in.Arch.Layers))
		if err := p.Validate(in.Arch, in.Batch); err != nil {
			return nil, nil, err
		}
		est, _ := EstimatePlan(in, p)
		return p, est, nil
	}
}

// Table renders the estimate as an aligned predicted-cost table, one
// row per layer plus a totals row.
func (e *Estimate) Table() string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "layer\tshape\tbackend\tpred comm\tflights\tpred time")
	var flights int
	for _, l := range e.Layers {
		name := l.Chosen.Choice.Backend.String()
		if s := l.Chosen.Choice.Scheme; s != "" {
			name += ":" + s
		}
		fmt.Fprintf(w, "%d\t%dx%dx%d\t%s\t%s\t%d\t%.3fs\n",
			l.Layer, l.Shape.M, l.Shape.N, l.Shape.O, name,
			fmtBits(l.Chosen.CommBits), l.Chosen.Flights, l.Chosen.Seconds)
		flights += l.Chosen.Flights
	}
	fmt.Fprintf(w, "total\t\t%s\t%s\t%d\t%.3fs\n", e.Link.Name, fmtBits(e.TotalCommBits()), flights, e.TotalSeconds())
	w.Flush()
	return sb.String()
}

// fmtBits renders a bit count as bytes with a binary unit.
func fmtBits(bits float64) string {
	b := bits / 8
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", b/(1<<10))
	}
	return fmt.Sprintf("%.0f B", b)
}
