// Package plan implements the cost-model-driven per-layer protocol
// planner. Given a model's public architecture, its quantization scheme,
// and link parameters, it evaluates the analytic Complexity formulas
// (internal/core) per backend per layer — communication and compute,
// priced under the link model — and emits a Plan: one (backend, η/γ
// decomposition) choice per linear layer minimizing predicted
// end-to-end cost.
//
// Correctness does not depend on the plan: every backend produces the
// same additive triplet shares, so any plan yields bit-identical
// predictions (the conformance sweep in internal/testkit locks this).
// The plan only moves where the offline bytes and round trips are
// spent, which is why the client may propose one and the server only
// validates feasibility, never utility.
package plan

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"abnn2/internal/core"
	"abnn2/internal/quant"
)

// Wire-format bounds. The plan frame is attacker-shaped bytes at the
// server, so every limit is enforced by Unmarshal before any allocation
// proportional to the peer's claim.
const (
	// MaxLayers bounds the per-plan layer count (far above any real
	// model; a frame claiming more is rejected, not truncated).
	MaxLayers = 1024
	// MaxSchemeName bounds one scheme designation's byte length.
	MaxSchemeName = 64
)

// planMagic starts every marshalled plan frame.
const planMagic = "ABP1"

// Choice fixes one layer's offline backend. Scheme, when non-empty, is
// a quant designation overriding the session fragmentation scheme; it
// is only meaningful for the ABNN2 backend (the baselines do not
// fragment) and must quantize the same weight range.
type Choice struct {
	Backend core.BackendID `json:"-"`
	Scheme  string         `json:"scheme,omitempty"`
}

// choiceJSON is the @file form of a Choice, with the backend by name.
type choiceJSON struct {
	Backend string `json:"backend"`
	Scheme  string `json:"scheme,omitempty"`
}

// MarshalJSON encodes the backend by name ("abnn2", "secureml", ...).
func (c Choice) MarshalJSON() ([]byte, error) {
	return json.Marshal(choiceJSON{Backend: c.Backend.String(), Scheme: c.Scheme})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (c *Choice) UnmarshalJSON(b []byte) error {
	var j choiceJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	id, err := core.ParseBackend(j.Backend)
	if err != nil {
		return err
	}
	c.Backend, c.Scheme = id, j.Scheme
	return nil
}

// Plan assigns one Choice per linear layer of a model.
type Plan struct {
	Layers []Choice `json:"layers"`
}

// Uniform builds the plan running every one of n layers on backend b
// under the session scheme.
func Uniform(b core.BackendID, n int) *Plan {
	p := &Plan{Layers: make([]Choice, n)}
	for i := range p.Layers {
		p.Layers[i] = Choice{Backend: b}
	}
	return p
}

// IsUniform reports whether every layer runs the same backend with no
// scheme override, and which backend that is.
func (p *Plan) IsUniform() (core.BackendID, bool) {
	if len(p.Layers) == 0 {
		return 0, false
	}
	b := p.Layers[0].Backend
	for _, c := range p.Layers {
		if c.Backend != b || c.Scheme != "" {
			return 0, false
		}
	}
	return b, true
}

// String renders the plan compactly, e.g. "abnn2,abnn2,minionn".
func (p *Plan) String() string {
	parts := make([]string, len(p.Layers))
	for i, c := range p.Layers {
		parts[i] = c.Backend.String()
		if c.Scheme != "" {
			parts[i] += ":" + c.Scheme
		}
	}
	return strings.Join(parts, ",")
}

// Marshal encodes the plan frame: "ABP1", a little-endian uint16 layer
// count, then per layer one backend byte, one scheme-length byte, and
// the scheme designation bytes (length 0 = inherit session scheme).
func (p *Plan) Marshal() []byte {
	out := make([]byte, 0, 6+2*len(p.Layers))
	out = append(out, planMagic...)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(p.Layers)))
	for _, c := range p.Layers {
		out = append(out, byte(c.Backend), byte(len(c.Scheme)))
		out = append(out, c.Scheme...)
	}
	return out
}

// Unmarshal strictly parses a plan frame: bad magic, layer counts
// beyond MaxLayers, unknown backend ids, over-long scheme names,
// truncation, and trailing bytes are all rejected.
func Unmarshal(b []byte) (*Plan, error) {
	if len(b) < len(planMagic)+2 || string(b[:len(planMagic)]) != planMagic {
		return nil, fmt.Errorf("plan: bad frame header")
	}
	n := int(binary.LittleEndian.Uint16(b[len(planMagic):]))
	if n == 0 || n > MaxLayers {
		return nil, fmt.Errorf("plan: layer count %d outside [1,%d]", n, MaxLayers)
	}
	rest := b[len(planMagic)+2:]
	p := &Plan{Layers: make([]Choice, 0, n)}
	for i := 0; i < n; i++ {
		if len(rest) < 2 {
			return nil, fmt.Errorf("plan: truncated at layer %d", i)
		}
		id, sl := core.BackendID(rest[0]), int(rest[1])
		if !id.Valid() {
			return nil, fmt.Errorf("plan: layer %d: unknown backend id %d", i, rest[0])
		}
		if sl > MaxSchemeName {
			return nil, fmt.Errorf("plan: layer %d: scheme name %d bytes, max %d", i, sl, MaxSchemeName)
		}
		rest = rest[2:]
		if len(rest) < sl {
			return nil, fmt.Errorf("plan: truncated scheme at layer %d", i)
		}
		p.Layers = append(p.Layers, Choice{Backend: id, Scheme: string(rest[:sl])})
		rest = rest[sl:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("plan: %d trailing bytes", len(rest))
	}
	return p, nil
}

// Fingerprint returns a short stable identifier of the exact plan
// bytes, used to key banked correlations ("plan:<fingerprint>" in
// BankKey.Backend) so a pool only ever serves the schedule it was
// generated under.
func (p *Plan) Fingerprint() string {
	sum := sha256.Sum256(p.Marshal())
	return hex.EncodeToString(sum[:8])
}

// Schedule lowers the plan to the core execution form, parsing scheme
// overrides. It does not validate against an architecture; pair with
// Validate (or core.Schedule.Validate) first on untrusted input.
func (p *Plan) Schedule() (core.Schedule, error) {
	s := make(core.Schedule, len(p.Layers))
	for i, c := range p.Layers {
		s[i].Backend = c.Backend
		if c.Scheme != "" {
			sc, err := quant.Parse(c.Scheme)
			if err != nil {
				return nil, fmt.Errorf("plan: layer %d: %w", i, err)
			}
			s[i].Scheme = sc
		}
	}
	return s, nil
}

// Validate checks the plan against a public architecture: layer count,
// backend applicability (QUOTIENT is vector-only, so conv layers and
// batches above 1 reject it), and scheme overrides that parse and
// preserve the session scheme's weight range. Weight-value checks
// (ternary range, override representability) happen server-side in
// ServerEngine.SetSchedule, which holds the weights.
func (p *Plan) Validate(arch core.Arch, batch int) error {
	if len(p.Layers) != len(arch.Layers) {
		return fmt.Errorf("plan: %d layers, model has %d", len(p.Layers), len(arch.Layers))
	}
	session, err := quant.Parse(arch.SchemeName)
	if err != nil {
		return fmt.Errorf("plan: session scheme: %w", err)
	}
	smin, smax := session.Range()
	for i, c := range p.Layers {
		if !c.Backend.Valid() {
			return fmt.Errorf("plan: layer %d: unknown backend %d", i, uint8(c.Backend))
		}
		if c.Scheme != "" {
			if c.Backend != core.BackendABNN2 {
				return fmt.Errorf("plan: layer %d: scheme override on %s", i, c.Backend)
			}
			sc, err := quant.Parse(c.Scheme)
			if err != nil {
				return fmt.Errorf("plan: layer %d: %w", i, err)
			}
			if min, max := sc.Range(); min > smin || max < smax {
				return fmt.Errorf("plan: layer %d: scheme %s range [%d,%d] narrower than session %s [%d,%d]",
					i, c.Scheme, min, max, arch.SchemeName, smin, smax)
			}
		}
		if c.Backend == core.BackendQuotient {
			l := arch.Layers[i]
			if o := batch * l.Cols(); o != 1 {
				return fmt.Errorf("plan: layer %d: quotient backend requires o=1, got o=%d", i, o)
			}
			if smin < -1 || smax > 1 {
				return fmt.Errorf("plan: layer %d: quotient backend requires a ternary scheme, session is %s", i, arch.SchemeName)
			}
		}
	}
	sched, err := p.Schedule()
	if err != nil {
		return err
	}
	return sched.Validate(arch, nil)
}

// FromString parses the compact String form back into a plan:
// comma-separated backend names, each optionally ":scheme"-suffixed.
func FromString(s string) (*Plan, error) {
	parts := strings.Split(s, ",")
	if len(parts) == 0 || len(parts) > MaxLayers {
		return nil, fmt.Errorf("plan: layer count %d outside [1,%d]", len(parts), MaxLayers)
	}
	p := &Plan{Layers: make([]Choice, len(parts))}
	for i, part := range parts {
		name, scheme, _ := strings.Cut(part, ":")
		id, err := core.ParseBackend(strings.TrimSpace(name))
		if err != nil {
			return nil, fmt.Errorf("plan: layer %d: %w", i, err)
		}
		if len(scheme) > MaxSchemeName {
			return nil, fmt.Errorf("plan: layer %d: scheme name %d bytes, max %d", i, len(scheme), MaxSchemeName)
		}
		p.Layers[i] = Choice{Backend: id, Scheme: scheme}
	}
	return p, nil
}

// FromJSON parses the @file form of a plan.
func FromJSON(b []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	if len(p.Layers) == 0 || len(p.Layers) > MaxLayers {
		return nil, fmt.Errorf("plan: layer count %d outside [1,%d]", len(p.Layers), MaxLayers)
	}
	return &p, nil
}
