package plan

import (
	"testing"

	"abnn2/internal/core"
	"abnn2/internal/nn"
)

// refArch mirrors the bench planner reference CNN (conv 1->4 3x3 on
// 28x28 with fused ReLU+pool, then FC 676->10, 2x2-bit scheme): the two
// layers have opposite cost structure, so link pricing — not a single
// dominant backend — decides the plan.
func refArch() core.Arch {
	conv := &nn.ConvSpec{Ci: 1, H: 28, W: 28, Kh: 3, Kw: 3, Stride: 1, Pad: 0}
	return core.Arch{
		Frac:       8,
		SchemeName: "4(2,2)",
		Layers: []core.LayerSpec{
			{In: conv.InputSize(), Out: 4, ReLU: true, Conv: conv, Pool: &nn.PoolSpec{K: 2}},
			{In: 4 * 13 * 13, Out: nn.NumClasses},
		},
	}
}

func refInput(link Link) Input {
	return Input{Arch: refArch(), RingBits: 32, Batch: 1, Link: link, MiniONNBits: 512}
}

// TestCrossoverFlipsLayer: moving the reference CNN from the LAN preset
// to the WAN preset must flip at least one layer's backend — the whole
// point of a link-priced planner. Concretely the fat-link LAN pays
// MiniONN's Paillier compute in full (OT backends win everywhere),
// while on the thin 72 ms link the wide FC layer's chunked OT flights
// lose to two compact ciphertext transfers, making the WAN plan a
// genuine mix.
func TestCrossoverFlipsLayer(t *testing.T) {
	lanPlan, _, err := Choose(refInput(LAN()))
	if err != nil {
		t.Fatal(err)
	}
	wanPlan, _, err := Choose(refInput(WAN()))
	if err != nil {
		t.Fatal(err)
	}
	flips := 0
	for i := range lanPlan.Layers {
		if lanPlan.Layers[i].Backend != wanPlan.Layers[i].Backend {
			flips++
		}
	}
	if flips == 0 {
		t.Fatalf("LAN plan %s and WAN plan %s agree on every layer's backend; the link model is not pricing anything",
			lanPlan, wanPlan)
	}
	if _, uni := wanPlan.IsUniform(); uni {
		t.Fatalf("WAN plan %s is uniform; expected a mixed per-layer schedule on the reference CNN", wanPlan)
	}
}

// TestCostMonotoneInShape: for every backend, growing any matmul
// dimension (rows, inner dimension, batch) must grow predicted
// communication strictly and predicted time monotonically. A cost
// formula that shrinks under a bigger layer is transcribing the
// Complexity algebra wrongly.
func TestCostMonotoneInShape(t *testing.T) {
	shapes := []core.LayerSpec{
		{In: 16, Out: 8},
		{In: 32, Out: 8},  // inner dimension up
		{In: 32, Out: 24}, // rows up
	}
	for _, b := range []core.BackendID{core.BackendABNN2, core.BackendSecureML, core.BackendMiniONN} {
		var prevComm, prevSec float64
		for step, l := range shapes {
			in := Input{
				Arch:        core.Arch{Frac: 4, SchemeName: "4(2,2)", Layers: []core.LayerSpec{l}},
				RingBits:    32,
				Batch:       1,
				Link:        WAN(),
				MiniONNBits: 512,
			}
			est, err := EstimatePlan(in, Uniform(b, 1))
			if err != nil {
				t.Fatalf("%s step %d: %v", b, step, err)
			}
			comm, sec := est.TotalCommBits(), est.TotalSeconds()
			if step > 0 && comm <= prevComm {
				t.Errorf("%s: comm not strictly increasing at step %d: %.0f -> %.0f bits", b, step, prevComm, comm)
			}
			if step > 0 && sec < prevSec {
				t.Errorf("%s: predicted time decreased at step %d: %.6f -> %.6f s", b, step, prevSec, sec)
			}
			prevComm, prevSec = comm, sec
		}
		// Batch growth, same layer.
		var prevBComm float64
		for step, batch := range []int{1, 2, 4} {
			in := Input{
				Arch:        core.Arch{Frac: 4, SchemeName: "4(2,2)", Layers: []core.LayerSpec{{In: 16, Out: 8}}},
				RingBits:    32,
				Batch:       batch,
				Link:        WAN(),
				MiniONNBits: 512,
			}
			est, err := EstimatePlan(in, Uniform(b, 1))
			if err != nil {
				t.Fatalf("%s batch %d: %v", b, batch, err)
			}
			if comm := est.TotalCommBits(); step > 0 && comm <= prevBComm {
				t.Errorf("%s: comm not strictly increasing in batch at %d: %.0f -> %.0f bits", b, batch, prevBComm, comm)
			} else {
				prevBComm = comm
			}
		}
	}
}

// TestChooseDeterministic: the plan travels the wire and both parties
// must independently agree on what "auto" means, so Choose has to be a
// pure function of its Input — same plan bytes, same fingerprint, same
// predicted totals on every call.
func TestChooseDeterministic(t *testing.T) {
	for _, link := range []Link{LAN(), WAN()} {
		p1, e1, err := Choose(refInput(link))
		if err != nil {
			t.Fatal(err)
		}
		p2, e2, err := Choose(refInput(link))
		if err != nil {
			t.Fatal(err)
		}
		if p1.String() != p2.String() {
			t.Errorf("%s: Choose not deterministic: %s vs %s", link.Name, p1, p2)
		}
		if p1.Fingerprint() != p2.Fingerprint() {
			t.Errorf("%s: fingerprints differ for identical inputs", link.Name)
		}
		if e1.TotalSeconds() != e2.TotalSeconds() || e1.TotalCommBits() != e2.TotalCommBits() {
			t.Errorf("%s: estimates differ for identical inputs", link.Name)
		}
	}
}
