package plan

import (
	"bytes"
	"testing"

	"abnn2/internal/core"
)

// FuzzUnmarshalPlan: the plan frame is attacker-shaped bytes at the
// server (it rides the client's batch announcement), so arbitrary input
// must never panic the parser, and anything accepted must re-marshal to
// exactly the bytes that were accepted — the encoding is canonical, and
// Unmarshal rejects trailing garbage, so the round trip is an identity.
func FuzzUnmarshalPlan(f *testing.F) {
	mixed := &Plan{Layers: []Choice{
		{Backend: core.BackendABNN2, Scheme: "8(2,2,2,2)"},
		{Backend: core.BackendMiniONN},
		{Backend: core.BackendSecureML},
	}}
	f.Add(mixed.Marshal())
	f.Add(Uniform(core.BackendQuotient, 1).Marshal())
	f.Add([]byte("ABP1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Unmarshal(data)
		if err != nil {
			return
		}
		re := p.Marshal()
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted plan does not round-trip: got %x, want %x", re, data)
		}
		// Derived forms must not panic on any accepted frame.
		_ = p.Fingerprint()
		_ = p.String()
		if _, uni := p.IsUniform(); uni && len(p.Layers) == 0 {
			t.Fatal("empty plan reported uniform")
		}
	})
}
