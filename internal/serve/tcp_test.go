package serve

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"abnn2"
	"abnn2/internal/metrics"
)

// serveTCP runs an accept loop feeding HandleConn, as cmd/abnn2-server
// does, until the listener closes.
func serveTCP(t *testing.T, rt *Runtime) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { _ = rt.HandleConn(ctx, abnn2.Stream(c), c.RemoteAddr().String()) }()
		}
	}()
	return ln.Addr().String(), func() { cancel(); ln.Close() }
}

// TestDialModelRetryOverTCP is the acceptance loop of the backpressure
// design: a saturated server sheds a client with a typed, hinted,
// retryable rejection, and the retrying client completes successfully
// once a slot frees.
func TestDialModelRetryOverTCP(t *testing.T) {
	m := NewMetrics(metrics.NewRegistry())
	rt := testRuntime(t, Options{MaxSessions: 1, Metrics: m})
	addr, stop := serveTCP(t, rt)
	defer stop()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Client 1 takes the only slot and holds it mid-protocol.
	hold, _, err := DialModel(ctx, addr, "")
	if err != nil {
		t.Fatalf("holder dial: %v", err)
	}

	// Verify a bare handshake is shed while the slot is held.
	conn, err := abnn2.DialTCP(ctx, addr)
	if err != nil {
		t.Fatalf("probe dial: %v", err)
	}
	_, err = ClientHandshake(conn, "")
	conn.Close()
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Rejection.Code != RejectSaturated {
		t.Fatalf("probe err = %v, want saturated rejection", err)
	}
	if rej.Rejection.RetryAfter() <= 0 {
		t.Fatalf("saturated rejection carried no retry hint: %+v", rej.Rejection)
	}

	// Client 2 retries through DialModel while the slot frees shortly.
	var released atomic.Bool
	go func() {
		time.Sleep(150 * time.Millisecond)
		released.Store(true)
		hold.Close()
	}()
	conn2, arch, err := DialModel(ctx, addr, "")
	if err != nil {
		t.Fatalf("retrying dial: %v", err)
	}
	if !released.Load() {
		t.Error("retrying client admitted while the slot was still held")
	}
	client, err := abnn2.Dial(conn2, arch, abnn2.Config{RingBits: 32, RoundTimeout: testRoundTimeout})
	if err != nil {
		t.Fatalf("session dial: %v", err)
	}
	defer client.Close()
	if _, err := client.Classify(testInputs(2)); err != nil {
		t.Fatalf("classify after retry: %v", err)
	}

	if shed := m.Shed.With(RejectSaturated).Value(); shed < 1 {
		t.Errorf("shed[saturated] = %d, want >= 1", shed)
	}
	if m.ShedHinted.Value() != m.Shed.With(RejectSaturated).Value() {
		t.Errorf("hinted sheds %d != saturated sheds %d — a shed without a hint",
			m.ShedHinted.Value(), m.Shed.With(RejectSaturated).Value())
	}
}

// TestDialModelPermanentRejection: an unknown model must fail fast, not
// consume the whole dial budget retrying.
func TestDialModelPermanentRejection(t *testing.T) {
	rt := testRuntime(t, Options{})
	addr, stop := serveTCP(t, rt)
	defer stop()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	_, _, err := DialModel(ctx, addr, "no-such-model")
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Rejection.Code != RejectUnknownModel {
		t.Fatalf("err = %v, want unknown-model rejection", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("permanent rejection took %v — it was retried", elapsed)
	}
}
