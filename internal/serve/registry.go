package serve

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"abnn2"
)

// Model is one registry entry: a hot quantized model, its pre-marshalled
// public architecture (sent on every admission), and — when a bank is
// attached — its pool identity.
type Model struct {
	Name     string
	Quant    *abnn2.QuantizedModel
	ArchJSON json.RawMessage
	// BankID is the model's correlation-pool identity, set by
	// Runtime-level bank registration; empty when no bank is configured.
	BankID string
}

// Registry holds the models a runtime serves, by name. The first model
// added is the default, handed to clients whose hello names no model.
// All methods are safe for concurrent use; models can be added while the
// runtime is serving (they become admissible immediately).
type Registry struct {
	mu      sync.RWMutex
	models  map[string]*Model
	defName string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{models: make(map[string]*Model)}
}

// Add registers a model under name. The first Add sets the registry
// default. Duplicate names are an error: silently replacing a model
// mid-serve would break sessions mid-handshake.
func (r *Registry) Add(name string, qm *abnn2.QuantizedModel) (*Model, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: empty model name")
	}
	if qm == nil {
		return nil, fmt.Errorf("serve: nil model %q", name)
	}
	archJSON, err := json.Marshal(qm.Arch())
	if err != nil {
		return nil, fmt.Errorf("serve: marshal arch of %q: %w", name, err)
	}
	m := &Model{Name: name, Quant: qm, ArchJSON: archJSON}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.models[name]; dup {
		return nil, fmt.Errorf("serve: model %q already registered", name)
	}
	if len(r.models) == 0 {
		r.defName = name
	}
	r.models[name] = m
	return m, nil
}

// Get resolves a hello's model request; the empty name selects the
// default model.
func (r *Registry) Get(name string) (*Model, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		name = r.defName
	}
	m, ok := r.models[name]
	return m, ok
}

// Default returns the registry's default model (nil when empty).
func (r *Registry) Default() *Model {
	m, _ := r.Get("")
	return m
}

// Names returns the registered model names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.models))
	for n := range r.models {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Len returns the number of registered models.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.models)
}
