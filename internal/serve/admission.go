package serve

import (
	"sync"
	"time"
)

// Admission is the runtime's session-level admission controller: a
// counting semaphore sized from compute capacity, plus an EWMA of
// session hold times that turns "no slot free" into a concrete
// retry-after hint. Acquire never blocks — a full server sheds load
// immediately (the client's backoff is the queue) instead of stacking
// goroutines behind a semaphore.
type Admission struct {
	mu     sync.Mutex
	max    int
	active int
	// ewmaHold tracks how long an admitted session holds its slot, so
	// the retry hint approximates the time until a slot frees rather
	// than a blind constant. Zero until the first release.
	ewmaHold time.Duration
}

// retry hint clamp: short enough to keep shed clients responsive when a
// slot frees, long enough to keep a saturated server from being hammered.
const (
	minRetryAfter = 25 * time.Millisecond
	maxRetryAfter = 5 * time.Second
)

// NewAdmission returns a controller admitting at most max concurrent
// sessions (minimum 1).
func NewAdmission(max int) *Admission {
	if max < 1 {
		max = 1
	}
	return &Admission{max: max}
}

// TryAcquire claims one session slot without blocking. The returned
// release frees the slot and feeds the hold duration into the retry-hint
// estimate; it is idempotent-unsafe and must be called exactly once.
func (a *Admission) TryAcquire() (release func(), ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.active >= a.max {
		return nil, false
	}
	a.active++
	start := time.Now()
	return func() { a.release(time.Since(start)) }, true
}

func (a *Admission) release(held time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.active--
	// EWMA with alpha 1/4: stable against one outlier session, adapts
	// within a few releases when the workload shifts.
	if a.ewmaHold == 0 {
		a.ewmaHold = held
	} else {
		a.ewmaHold += (held - a.ewmaHold) / 4
	}
}

// Active returns the number of currently admitted sessions.
func (a *Admission) Active() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.active
}

// Max returns the admission capacity.
func (a *Admission) Max() int { return a.max }

// RetryAfter estimates how long a shed client should wait before
// reconnecting: the expected time until one of the max slots frees,
// assuming sessions hold their slots for about the observed EWMA.
// Clamped to [25ms, 5s]; the default before any session has completed is
// the low clamp (optimistic — early sheds retry quickly and re-measure).
func (a *Admission) RetryAfter() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	hint := a.ewmaHold / time.Duration(a.max)
	if hint < minRetryAfter {
		hint = minRetryAfter
	}
	if hint > maxRetryAfter {
		hint = maxRetryAfter
	}
	return hint
}
