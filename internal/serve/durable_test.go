package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"abnn2"
)

// Durable serving suite: the runtime's offline-session handshake branch,
// recovery-gated readiness, and the drain-time claim journal flush.

// durableRuntime builds a runtime whose bank persists to a fresh store
// under dir, recovery already completed (synchronously, for test
// determinism the recovery gate is exercised separately).
func durableRuntime(t *testing.T, dir string, capacity int) (*Runtime, *abnn2.BankStore) {
	t.Helper()
	st, err := abnn2.OpenBankStore(abnn2.BankStoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recover(); err != nil {
		t.Fatal(err)
	}
	b := abnn2.NewBank(abnn2.BankOptions{Capacity: capacity, Store: st})
	rt := testRuntime(t, Options{Bank: b})
	t.Cleanup(func() {
		b.Close()
		st.Close()
	})
	rt.mu.Lock()
	rt.store = st
	rt.mu.Unlock()
	return rt, st
}

// clientParty is the remote client's own store+bank for offline tests.
func clientParty(t *testing.T) (*abnn2.BankStore, *abnn2.Bank) {
	t.Helper()
	st, err := abnn2.OpenBankStore(abnn2.BankStoreOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recover(); err != nil {
		t.Fatal(err)
	}
	b := abnn2.NewBank(abnn2.BankOptions{Capacity: 4, Store: st})
	t.Cleanup(func() {
		b.Close()
		st.Close()
	})
	return st, b
}

// TestOfflineHandshakeAndSession: an offline hello is admitted, carries
// the server's bank identity and peer id, and the replenished pool then
// backs a peer-banked inference session through the normal handshake.
func TestOfflineHandshakeAndSession(t *testing.T) {
	rt, srvStore := durableRuntime(t, t.TempDir(), 4)
	cliStore, cliBank := clientParty(t)

	sconn, cconn := abnn2.Pipe()
	go func() { _ = rt.HandleConn(context.Background(), sconn, "inproc") }()
	info, err := ClientHandshakeOffline(cconn, "", cliStore.PeerID().String())
	if err != nil {
		t.Fatalf("offline handshake: %v", err)
	}
	if info.BankID == "" || info.Peer != srvStore.PeerID().String() {
		t.Fatalf("offline handshake info incomplete: bank=%q peer=%q", info.BankID, info.Peer)
	}
	serverPeer, err := abnn2.ParseBankPeerID(info.Peer)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := abnn2.Config{RingBits: 32, RoundTimeout: testRoundTimeout,
		Bank: cliBank, BankModel: info.BankID}
	got, err := abnn2.ReplenishSession(context.Background(), cconn, info.Arch, ccfg,
		serverPeer, 2, 2)
	cconn.Close()
	if err != nil || got != 2 {
		t.Fatalf("replenish: got=%d err=%v", got, err)
	}

	// The stored pairs back real sessions through the normal handshake.
	for i := 0; i < 2; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		conn, info2, err := func() (abnn2.Conn, HandshakeInfo, error) {
			sc, cc := abnn2.Pipe()
			go func() { _ = rt.HandleConn(ctx, sc, "inproc") }()
			inf, err := clientHandshakeInfo(cc, hello{V: helloVersion})
			return cc, inf, err
		}()
		if err != nil {
			cancel()
			t.Fatalf("session %d handshake: %v", i, err)
		}
		if info2.BankID != info.BankID || info2.Peer != info.Peer {
			t.Fatalf("normal handshake bank info differs from offline handshake")
		}
		cfg := abnn2.Config{RingBits: 32, RoundTimeout: testRoundTimeout,
			Bank: cliBank, OfflineMode: abnn2.OfflineBanked,
			BankModel: info2.BankID, BankPeer: info2.Peer}
		client, err := abnn2.Dial(conn, info2.Arch, cfg)
		if err != nil {
			cancel()
			t.Fatalf("session %d dial: %v", i, err)
		}
		if _, err := client.Classify(testInputs(2)); err != nil {
			t.Fatalf("session %d classify (peer-banked): %v", i, err)
		}
		client.Close()
		cancel()
	}
}

// TestOfflineHandshakeRejections: offline hellos are refused without a
// durable bank (permanent) and with a malformed peer id (permanent).
func TestOfflineHandshakeRejections(t *testing.T) {
	t.Run("no-store", func(t *testing.T) {
		b := abnn2.NewBank(abnn2.BankOptions{Capacity: 2})
		defer b.Close()
		rt := testRuntime(t, Options{Bank: b})
		sconn, cconn := abnn2.Pipe()
		defer cconn.Close()
		go func() { _ = rt.HandleConn(context.Background(), sconn, "inproc") }()
		_, err := ClientHandshakeOffline(cconn, "", abnn2.BankPeerID{1}.String())
		var rej *RejectError
		if !errors.As(err, &rej) || rej.Temporary() {
			t.Fatalf("offline hello without a store: %v, want permanent rejection", err)
		}
	})
	t.Run("bad-peer", func(t *testing.T) {
		rt, _ := durableRuntime(t, t.TempDir(), 2)
		sconn, cconn := abnn2.Pipe()
		defer cconn.Close()
		go func() { _ = rt.HandleConn(context.Background(), sconn, "inproc") }()
		_, err := ClientHandshakeOffline(cconn, "", "not-a-peer-id")
		var rej *RejectError
		if !errors.As(err, &rej) || rej.Temporary() {
			t.Fatalf("offline hello with a bad peer: %v, want permanent rejection", err)
		}
	})
}

// TestRecoveryGatesReadiness: /readyz answers 503 while the store's
// recovery scan runs, then flips ready; offline hellos during recovery
// are shed retryably.
func TestRecoveryGatesReadiness(t *testing.T) {
	dir := t.TempDir()
	// Seed the store with some persisted state so recovery has work.
	{
		st, err := abnn2.OpenBankStore(abnn2.BankStoreOptions{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Recover(); err != nil {
			t.Fatal(err)
		}
		st.Close()
	}
	st, err := abnn2.OpenBankStore(abnn2.BankStoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	b := abnn2.NewBank(abnn2.BankOptions{Capacity: 2, Store: st})
	rt := testRuntime(t, Options{Bank: b})
	t.Cleanup(func() {
		b.Close()
		st.Close()
	})

	// Gate manually (StartRecovery's goroutine races the assertion), then
	// verify the reason strings on both sides of the flip.
	rt.recovered.Store(false)
	if ready, reason := rt.ReadyState(); ready || reason != "bank store recovery in progress" {
		t.Fatalf("ReadyState during recovery = %v %q", ready, reason)
	}
	sconn, cconn := abnn2.Pipe()
	go func() { _ = rt.HandleConn(context.Background(), sconn, "inproc") }()
	_, herr := ClientHandshakeOffline(cconn, "", abnn2.BankPeerID{1}.String())
	cconn.Close()
	var rej *RejectError
	if !errors.As(herr, &rej) || !rej.Temporary() {
		t.Fatalf("offline hello during recovery: %v, want retryable rejection", herr)
	}

	rt.StartRecovery(st, nil, 0)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if ready, _ := rt.ReadyState(); ready {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("runtime never became ready after StartRecovery")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !st.Recovered() {
		t.Fatal("StartRecovery completed without recovering the store")
	}
}

// TestDrainFlushesJournal: Drain succeeds with no live connections and
// leaves the store's claim journal synced (Sync on a drained store is a
// no-op, proving the flush already happened).
func TestDrainFlushesJournal(t *testing.T) {
	rt, st := durableRuntime(t, t.TempDir(), 2)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := rt.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := st.Sync(); err != nil {
		t.Fatalf("sync after drain: %v", err)
	}
	if ready, reason := rt.ReadyState(); ready || reason != "draining" {
		t.Fatalf("ReadyState after drain = %v %q", ready, reason)
	}
}
