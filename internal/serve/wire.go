// Package serve is the resilient multi-tenant serving runtime behind
// cmd/abnn2-server: a registry of hot models, bounded admission control,
// explicit backpressure, and graceful degradation from banked to inline
// offline provisioning.
//
// The runtime adds one handshake round in front of the protocol: the
// client opens with a small JSON hello naming the model it wants, and the
// server answers either with the model's public architecture (admitted)
// or with a typed, wire-encoded Rejection. Rejections distinguish
// retryable overload (saturated, bank-dry, draining — each carrying a
// retry-after hint the client backs off on) from permanent refusals
// (unknown model, malformed hello), so a loaded server sheds work in one
// cheap round trip instead of hanging, dropping, or half-serving
// connections. See DESIGN.md, "Serving runtime".
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"time"

	"abnn2"
)

// helloVersion is the handshake wire version. A server answers an
// unknown version with a non-retryable bad-hello rejection, so the field
// doubles as the magic that distinguishes a runtime client from a stray
// connection.
const helloVersion = 1

// maxHelloBytes bounds the first client flight. A hello is a short JSON
// object; anything bigger is hostile or lost.
const maxHelloBytes = 4096

// hello is the client's opening flight: wire version and requested model
// (empty selects the registry's default model). Offline asks for a
// remote offline-replenishment session instead of an inference session;
// it requires Peer, the client's durable bank identity, under which the
// server will store its correlation halves. Plan, when present, is the
// marshalled per-layer protocol plan the client intends to announce on
// every batch; the server validates it against the model at admission —
// a plan it cannot serve is refused in the handshake round, before any
// base-OT work.
type hello struct {
	V       int    `json:"abnn2"`
	Model   string `json:"model,omitempty"`
	Offline bool   `json:"offline,omitempty"`
	Peer    string `json:"peer,omitempty"`
	Plan    []byte `json:"plan,omitempty"`
}

// helloReply is the server's answer: the model's public architecture on
// admission, a Rejection otherwise. BankID is the model's bank identity
// and Peer the server's durable bank identity, both present only when
// the server runs a durable bank — together they let the client key
// peer-paired pools identically to the server.
type helloReply struct {
	OK     bool            `json:"ok"`
	Model  string          `json:"model,omitempty"`
	Arch   json.RawMessage `json:"arch,omitempty"`
	BankID string          `json:"bank_id,omitempty"`
	Peer   string          `json:"peer,omitempty"`
	// Session is the server-assigned session id. Clients stamp their
	// spans and flights with it so the two parties' dumps merge into one
	// timeline (abnn2-inspect -timeline).
	Session uint64     `json:"session,omitempty"`
	Reject  *Rejection `json:"reject,omitempty"`
}

// Rejection codes. Saturated, bank-dry and draining are retryable: the
// condition is expected to clear and the rejection carries a retry-after
// hint. Unknown-model and bad-hello are permanent for this server.
const (
	RejectSaturated    = "saturated"     // admission capacity exhausted
	RejectBankDry      = "bank-dry"      // banked-only server with empty pools
	RejectDraining     = "draining"      // shutdown in progress
	RejectUnknownModel = "unknown-model" // requested model not registered
	RejectBadHello     = "bad-hello"     // malformed or wrong-version hello
	RejectBadPlan      = "bad-plan"      // proposed plan invalid for the model
)

// Rejection is the typed load-shedding answer of an overloaded or
// unwilling server. Retryable rejections always carry a non-zero
// RetryAfterMillis hint; clients should wait about that long (with
// jitter) before reconnecting.
type Rejection struct {
	Code             string `json:"code"`
	Retryable        bool   `json:"retryable"`
	RetryAfterMillis int64  `json:"retry_after_ms,omitempty"`
	Reason           string `json:"reason,omitempty"`
}

// RetryAfter returns the server's backoff hint as a duration (zero when
// the rejection is not retryable or carried no hint).
func (r Rejection) RetryAfter() time.Duration {
	if r.RetryAfterMillis <= 0 {
		return 0
	}
	return time.Duration(r.RetryAfterMillis) * time.Millisecond
}

// RejectError is a Rejection as a client-side error, returned by
// ClientHandshake and DialModel. Use errors.As to recover the typed
// rejection and its retry hint.
type RejectError struct {
	Rejection Rejection
}

func (e *RejectError) Error() string {
	r := e.Rejection
	if r.Retryable {
		return fmt.Sprintf("serve: rejected (%s, retry after %v): %s", r.Code, r.RetryAfter(), r.Reason)
	}
	return fmt.Sprintf("serve: rejected (%s): %s", r.Code, r.Reason)
}

// Temporary reports whether the server marked the rejection retryable,
// matching the net.Error convention retry loops already understand.
func (e *RejectError) Temporary() bool { return e.Rejection.Retryable }

// HandshakeInfo is everything an admitted handshake tells the client:
// the model's public architecture, and — when the server runs a durable
// bank — the model's bank identity and the server's durable peer ID,
// ready for abnn2.Config.BankModel/BankPeer or a replenish session.
type HandshakeInfo struct {
	Model  string
	Arch   abnn2.Arch
	BankID string
	Peer   string
	// SessionID is the server-assigned session id; set it as
	// abnn2.Config.SessionID so client-side spans and flights correlate
	// with the server's dump of the same session.
	SessionID uint64
}

// ClientHandshake performs one handshake attempt on an established
// connection: it sends the hello for the named model (empty = server
// default) and decodes the reply. A server-side rejection comes back as
// a *RejectError; on success the returned architecture is ready for
// abnn2.Dial on the same connection.
func ClientHandshake(conn abnn2.Conn, model string) (abnn2.Arch, error) {
	info, err := clientHandshakeInfo(conn, hello{V: helloVersion, Model: model})
	return info.Arch, err
}

// ClientHandshakeInfo is ClientHandshake returning the full handshake
// info (bank identity, server peer ID, session id) on an established
// connection.
func ClientHandshakeInfo(conn abnn2.Conn, model string) (HandshakeInfo, error) {
	return clientHandshakeInfo(conn, hello{V: helloVersion, Model: model})
}

// ClientHandshakeOffline performs the handshake for a remote offline-
// replenishment session: peer is this client's durable bank identity
// (hex). On success the connection is ready for abnn2.ReplenishSession
// with the returned BankID and Peer.
func ClientHandshakeOffline(conn abnn2.Conn, model, peer string) (HandshakeInfo, error) {
	return clientHandshakeInfo(conn, hello{V: helloVersion, Model: model, Offline: true, Peer: peer})
}

// ClientHandshakePlan performs the handshake proposing a per-layer
// protocol plan. The server validates the plan against the model at
// admission and answers a permanent bad-plan rejection if it cannot
// serve it; on success the same plan must be set as abnn2.Config.Plan
// for the Dial on this connection.
func ClientHandshakePlan(conn abnn2.Conn, model string, p *abnn2.Plan) (HandshakeInfo, error) {
	h := hello{V: helloVersion, Model: model}
	if p != nil {
		h.Plan = p.Marshal()
	}
	return clientHandshakeInfo(conn, h)
}

// clientHandshakeInfo sends h and decodes the full reply.
func clientHandshakeInfo(conn abnn2.Conn, h hello) (HandshakeInfo, error) {
	var info HandshakeInfo
	raw, err := json.Marshal(h)
	if err != nil {
		return info, err
	}
	if err := conn.Send(raw); err != nil {
		return info, fmt.Errorf("serve: send hello: %w", err)
	}
	reply, err := conn.Recv()
	if err != nil {
		return info, fmt.Errorf("serve: recv hello reply: %w", err)
	}
	var hr helloReply
	if err := json.Unmarshal(reply, &hr); err != nil {
		return info, fmt.Errorf("serve: malformed hello reply: %w", err)
	}
	if !hr.OK {
		if hr.Reject == nil {
			return info, fmt.Errorf("serve: rejected without a reason")
		}
		return info, &RejectError{Rejection: *hr.Reject}
	}
	if err := json.Unmarshal(hr.Arch, &info.Arch); err != nil {
		return info, fmt.Errorf("serve: malformed architecture: %w", err)
	}
	info.Model, info.BankID, info.Peer, info.SessionID = hr.Model, hr.BankID, hr.Peer, hr.Session
	return info, nil
}

// defaultRetryAfter backs off a retryable rejection that carried no hint
// (a server older than the hint field, or a zero estimate).
const defaultRetryAfter = 100 * time.Millisecond

// Jitter spreads a backoff delay uniformly over [d/2, 3d/2), so a herd
// of clients rejected at the same instant does not reconnect at the same
// instant either.
func Jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + rand.N(d)
}

// DialModel connects to a serving runtime over TCP and completes the
// model handshake, honoring the server's backpressure: retryable
// rejections are retried with the server's retry-after hint (jittered)
// until ctx expires, while permanent rejections fail immediately. On
// success the connection is admitted and the architecture ready for
// abnn2.Dial.
func DialModel(ctx context.Context, addr, model string) (abnn2.Conn, abnn2.Arch, error) {
	conn, info, err := dialHello(ctx, addr, hello{V: helloVersion, Model: model})
	return conn, info.Arch, err
}

// DialModelInfo is DialModel returning the full handshake info — bank
// identity and server peer ID included — for clients that provision from
// peer-paired pools (abnn2.Config.BankModel/BankPeer).
func DialModelInfo(ctx context.Context, addr, model string) (abnn2.Conn, HandshakeInfo, error) {
	return dialHello(ctx, addr, hello{V: helloVersion, Model: model})
}

// DialOffline connects for a remote offline-replenishment session: peer
// is this client's durable bank identity (hex). The same backpressure
// handling as DialModel applies; on success the connection is admitted
// and ready for abnn2.ReplenishSession with the returned BankID and
// Peer.
func DialOffline(ctx context.Context, addr, model, peer string) (abnn2.Conn, HandshakeInfo, error) {
	return dialHello(ctx, addr, hello{V: helloVersion, Model: model, Offline: true, Peer: peer})
}

// DialModelPlan is DialModel proposing a per-layer protocol plan in the
// hello. A bad-plan rejection is permanent and fails immediately; on
// success the same plan must be set as abnn2.Config.Plan for the Dial
// on the returned connection.
func DialModelPlan(ctx context.Context, addr, model string, p *abnn2.Plan) (abnn2.Conn, HandshakeInfo, error) {
	h := hello{V: helloVersion, Model: model}
	if p != nil {
		h.Plan = p.Marshal()
	}
	return dialHello(ctx, addr, h)
}

func dialHello(ctx context.Context, addr string, h hello) (abnn2.Conn, HandshakeInfo, error) {
	for {
		conn, err := abnn2.DialTCP(ctx, addr)
		if err != nil {
			return nil, HandshakeInfo{}, err
		}
		info, err := clientHandshakeInfo(conn, h)
		if err == nil {
			return conn, info, nil
		}
		conn.Close()
		var rej *RejectError
		if !errors.As(err, &rej) || !rej.Temporary() {
			return nil, info, err
		}
		wait := rej.Rejection.RetryAfter()
		if wait <= 0 {
			wait = defaultRetryAfter
		}
		select {
		case <-ctx.Done():
			return nil, info, fmt.Errorf("serve: dial %s: %w (last rejection: %v)", addr, ctx.Err(), err)
		case <-time.After(Jitter(wait)):
		}
	}
}
