package serve

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"abnn2/internal/trace"
)

// Anomaly-triggered diagnostics: the runtime keeps an always-on flight
// recorder (trace.Recorder) per session; when a session breaches the
// latency SLO, ends with an error, or a connection is shed, the
// diagnostics component dumps that session's recorded events to the
// diagnostics directory — so the evidence for a slow or failed session
// is on disk before anyone asks, without ever tracing at full fidelity.
// Dumps contain metadata only (names, sizes, timings), never shares,
// keys, or payload bytes.

// maxDiagDumps bounds dumps per process: an anomaly storm (a dead bank,
// a flapping client) must not fill the disk with near-identical dumps.
// Suppressed dumps are still counted in abnn2_diag_suppressed_total.
const maxDiagDumps = 64

// diagnostics writes anomaly dumps. A nil *diagnostics disables every
// method.
type diagnostics struct {
	dir     string
	rec     *trace.Recorder
	profile time.Duration // CPU profile window per anomaly, 0 = off
	m       *Metrics
	log     *slog.Logger

	dumps     atomic.Int64
	profiling atomic.Bool
	wg        sync.WaitGroup
}

// diagDump is the JSON document written per anomaly.
type diagDump struct {
	Time      time.Time             `json:"time"`
	Reason    string                `json:"reason"` // "slo-breach" | "error" | "shed"
	Session   uint64                `json:"session,omitempty"`
	Model     string                `json:"model,omitempty"`
	Remote    string                `json:"remote,omitempty"`
	ElapsedMS int64                 `json:"elapsed_ms,omitempty"`
	SLOMS     int64                 `json:"slo_ms,omitempty"`
	Err       string                `json:"err,omitempty"`
	Dropped   int64                 `json:"events_dropped,omitempty"`
	Events    []trace.RecorderEvent `json:"events,omitempty"`
}

func newDiagnostics(dir string, rec *trace.Recorder, profile time.Duration, m *Metrics, log *slog.Logger) *diagnostics {
	if dir == "" {
		return nil
	}
	return &diagnostics{dir: dir, rec: rec, profile: profile, m: m, log: log}
}

// sessionAnomaly dumps one session's recorder ring. reason is
// "slo-breach" or "error".
func (d *diagnostics) sessionAnomaly(reason string, session uint64, model, remote string, elapsed, slo time.Duration, err error) {
	if d == nil {
		return
	}
	dump := diagDump{
		Time: time.Now(), Reason: reason, Session: session,
		Model: model, Remote: remote,
		ElapsedMS: elapsed.Milliseconds(), SLOMS: slo.Milliseconds(),
	}
	if err != nil {
		dump.Err = err.Error()
	}
	dump.Events, dump.Dropped = d.rec.Session(session)
	d.write(dump)
	d.startProfile()
}

// shed dumps a rejection. Sheds happen before a session exists, so there
// is no recorder ring to attach — the dump documents the rejection
// itself, giving the diagnostics directory one timeline of everything
// that went wrong on this server.
func (d *diagnostics) shed(rej Rejection, remote string) {
	if d == nil {
		return
	}
	d.write(diagDump{
		Time: time.Now(), Reason: "shed", Remote: remote,
		Err: fmt.Sprintf("%s: %s", rej.Code, rej.Reason),
	})
}

func (d *diagnostics) write(dump diagDump) {
	if n := d.dumps.Add(1); n > maxDiagDumps {
		d.m.diagSuppressed()
		return
	}
	raw, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		d.log.Warn("diag dump encode failed", "err", err)
		return
	}
	name := fmt.Sprintf("diag-%s-%d-session-%d.json",
		dump.Reason, dump.Time.UnixNano(), dump.Session)
	path := filepath.Join(d.dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		d.log.Warn("diag dump write failed", "path", path, "err", err)
		return
	}
	d.m.diagDump()
	d.log.Info("diagnostics dump written", "path", path, "reason", dump.Reason, "session", dump.Session)
}

// startProfile captures one CPU profile window per anomaly burst: the
// first trigger wins, later triggers while a window is open are no-ops
// (runtime/pprof supports one CPU profile at a time anyway).
func (d *diagnostics) startProfile() {
	if d.profile <= 0 || !d.profiling.CompareAndSwap(false, true) {
		return
	}
	path := filepath.Join(d.dir, fmt.Sprintf("diag-cpu-%d.pprof", time.Now().UnixNano()))
	f, err := os.Create(path)
	if err != nil {
		d.log.Warn("diag profile create failed", "path", path, "err", err)
		d.profiling.Store(false)
		return
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		// Another profiler (the pprof HTTP endpoint) is already running.
		d.log.Warn("diag profile start failed", "err", err)
		f.Close()
		os.Remove(path)
		d.profiling.Store(false)
		return
	}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		time.Sleep(d.profile)
		pprof.StopCPUProfile()
		f.Close()
		d.profiling.Store(false)
		d.log.Info("diagnostics CPU profile written", "path", path, "window", d.profile)
	}()
}

// wait blocks until in-flight profile windows finish; Drain calls it so
// shutdown does not abandon a half-written profile.
func (d *diagnostics) wait() {
	if d != nil {
		d.wg.Wait()
	}
}

// FlightRecorderHandler serves the always-on per-session flight recorder
// (mount at /debug/flightrecorder on the metrics listener). Without
// parameters it lists recorded session ids; with ?session=N it returns
// that session's ring as JSON, oldest event first.
func (rt *Runtime) FlightRecorderHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := rt.recorder
		if rec == nil {
			http.Error(w, "flight recorder disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		q := r.URL.Query().Get("session")
		if q == "" {
			_ = json.NewEncoder(w).Encode(map[string]any{"sessions": rec.Sessions()})
			return
		}
		id, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, "bad session id", http.StatusBadRequest)
			return
		}
		events, dropped := rec.Session(id)
		if events == nil {
			http.Error(w, "unknown session", http.StatusNotFound)
			return
		}
		_ = json.NewEncoder(w).Encode(map[string]any{
			"session": id, "events_dropped": dropped, "events": events,
		})
	})
}
