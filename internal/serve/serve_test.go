package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"abnn2"
	"abnn2/internal/metrics"
)

const testRoundTimeout = 5 * time.Second

// testModel returns a tiny Xavier-initialised quantized MLP; serve tests
// exercise admission and lifecycle, not accuracy.
func testModel(t *testing.T, hidden int) *abnn2.QuantizedModel {
	t.Helper()
	qm, err := abnn2.NewMLP(12, hidden, 4).Quantize("4(2,2)", 6)
	if err != nil {
		t.Fatal(err)
	}
	return qm
}

func testRegistry(t *testing.T, names ...string) *Registry {
	t.Helper()
	r := NewRegistry()
	for i, n := range names {
		if _, err := r.Add(n, testModel(t, 8+2*i)); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func testRuntime(t *testing.T, opts Options) *Runtime {
	t.Helper()
	if opts.Registry == nil {
		opts.Registry = testRegistry(t, "m0")
	}
	if opts.Session.RingBits == 0 {
		opts.Session.RingBits = 32
	}
	if opts.Session.RoundTimeout == 0 {
		opts.Session.RoundTimeout = testRoundTimeout
	}
	rt, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func testInputs(n int) [][]float64 {
	ins := make([][]float64, n)
	for k := range ins {
		x := make([]float64, 12)
		for i := range x {
			x[i] = float64((k*31+i*17)%23)/23 - 0.5
		}
		ins[k] = x
	}
	return ins
}

// classifyOnce runs one admitted session end to end: Connect, Dial,
// Classify, Close.
func classifyOnce(t *testing.T, rt *Runtime, model string) []int {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	conn, arch, err := rt.Connect(ctx, model)
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	client, err := abnn2.Dial(conn, arch, abnn2.Config{RingBits: 32, RoundTimeout: testRoundTimeout})
	if err != nil {
		conn.Close()
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()
	classes, err := client.Classify(testInputs(2))
	if err != nil {
		t.Fatalf("classify: %v", err)
	}
	return classes
}

func TestRegistryDefaultAndLookup(t *testing.T) {
	r := testRegistry(t, "alpha", "beta")
	if def := r.Default(); def == nil || def.Name != "alpha" {
		t.Fatalf("default = %v, want alpha (first added)", def)
	}
	if m, ok := r.Get(""); !ok || m.Name != "alpha" {
		t.Fatalf("empty name resolved to %v", m)
	}
	if m, ok := r.Get("beta"); !ok || m.Name != "beta" {
		t.Fatalf("beta resolved to %v", m)
	}
	if _, ok := r.Get("gamma"); ok {
		t.Fatal("unknown model resolved")
	}
	if got := r.Names(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("names = %v", got)
	}
	if _, err := r.Add("alpha", testModel(t, 8)); err == nil {
		t.Fatal("duplicate Add succeeded")
	}
	if _, err := r.Add("", testModel(t, 8)); err == nil {
		t.Fatal("empty-name Add succeeded")
	}
}

func TestAdmissionCapacityAndHints(t *testing.T) {
	a := NewAdmission(2)
	rel1, ok := a.TryAcquire()
	if !ok {
		t.Fatal("first acquire refused")
	}
	rel2, ok := a.TryAcquire()
	if !ok {
		t.Fatal("second acquire refused")
	}
	if _, ok := a.TryAcquire(); ok {
		t.Fatal("over-capacity acquire admitted")
	}
	if got := a.Active(); got != 2 {
		t.Fatalf("active = %d, want 2", got)
	}
	// Hint before any release: the optimistic low clamp.
	if got := a.RetryAfter(); got != minRetryAfter {
		t.Fatalf("cold hint = %v, want %v", got, minRetryAfter)
	}
	rel1()
	rel2()
	if got := a.Active(); got != 0 {
		t.Fatalf("active after release = %d, want 0", got)
	}
	if _, ok := a.TryAcquire(); !ok {
		t.Fatal("slot not reusable after release")
	}
	// Hints stay inside the clamp whatever the EWMA has seen.
	if got := a.RetryAfter(); got < minRetryAfter || got > maxRetryAfter {
		t.Fatalf("hint %v outside [%v, %v]", got, minRetryAfter, maxRetryAfter)
	}
}

func TestAdmissionMinimumCapacity(t *testing.T) {
	a := NewAdmission(0)
	if a.Max() != 1 {
		t.Fatalf("max = %d, want clamp to 1", a.Max())
	}
}

func TestServeSessionEndToEnd(t *testing.T) {
	reg := testRegistry(t, "m0", "m1")
	rt := testRuntime(t, Options{Registry: reg})
	for _, name := range []string{"", "m0", "m1"} {
		qm, _ := reg.Get(name)
		classes := classifyOnce(t, rt, name)
		for k, x := range testInputs(2) {
			if want := qm.Quant.Predict(x); classes[k] != want {
				t.Errorf("model %q input %d: secure %d, plaintext %d", name, k, classes[k], want)
			}
		}
	}
}

func TestRejectUnknownModel(t *testing.T) {
	rt := testRuntime(t, Options{})
	_, _, err := rt.Connect(context.Background(), "no-such-model")
	var rej *RejectError
	if !errors.As(err, &rej) {
		t.Fatalf("err = %v, want *RejectError", err)
	}
	if rej.Rejection.Code != RejectUnknownModel || rej.Temporary() {
		t.Fatalf("rejection = %+v, want permanent unknown-model", rej.Rejection)
	}
}

func TestRejectBadHello(t *testing.T) {
	rt := testRuntime(t, Options{})
	for _, raw := range [][]byte{
		[]byte("not json"),
		[]byte(`{"abnn2":99}`), // wrong version
		append([]byte(`{"abnn2":1,"model":"`), append(make([]byte, maxHelloBytes), '"', '}')...),
	} {
		sconn, cconn := abnn2.Pipe()
		done := make(chan error, 1)
		go func() { done <- rt.HandleConn(context.Background(), sconn, "test") }()
		if err := cconn.Send(raw); err != nil {
			t.Fatalf("send: %v", err)
		}
		reply, err := cconn.Recv()
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		var hr helloReply
		if err := json.Unmarshal(reply, &hr); err != nil {
			t.Fatalf("reply not JSON: %v", err)
		}
		if hr.OK || hr.Reject == nil || hr.Reject.Code != RejectBadHello || hr.Reject.Retryable {
			t.Fatalf("reply = %+v, want permanent bad-hello rejection", hr)
		}
		var rej *RejectError
		if err := <-done; !errors.As(err, &rej) || rej.Rejection.Code != RejectBadHello {
			t.Fatalf("HandleConn err = %v, want bad-hello RejectError", err)
		}
		cconn.Close()
	}
}

func TestRejectSaturatedWithHint(t *testing.T) {
	m := NewMetrics(metrics.NewRegistry())
	rt := testRuntime(t, Options{MaxSessions: 1, Metrics: m})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Occupy the only slot: admitted but never progressing (no Dial).
	hold, _, err := rt.Connect(ctx, "")
	if err != nil {
		t.Fatalf("holder connect: %v", err)
	}
	defer hold.Close()

	_, _, err = rt.Connect(ctx, "")
	var rej *RejectError
	if !errors.As(err, &rej) {
		t.Fatalf("err = %v, want *RejectError", err)
	}
	r := rej.Rejection
	if r.Code != RejectSaturated || !r.Retryable || r.RetryAfterMillis <= 0 {
		t.Fatalf("rejection = %+v, want retryable saturated with a hint", r)
	}
	if got := m.Shed.With(RejectSaturated).Value(); got != 1 {
		t.Errorf("shed[saturated] = %d, want 1", got)
	}
	if got := m.ShedHinted.Value(); got != 1 {
		t.Errorf("shed hinted = %d, want 1", got)
	}

	// Free the slot; a retrying client must now be admitted.
	hold.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, _, err := rt.Connect(ctx, "")
		if err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("still rejected after slot freed: %v", err)
		}
		time.Sleep(Jitter(rej.Rejection.RetryAfter()))
	}
}

func TestDrainShedsAndReadyz(t *testing.T) {
	rt := testRuntime(t, Options{})
	healthz := httptest.NewRecorder()
	rt.HealthzHandler().ServeHTTP(healthz, httptest.NewRequest("GET", "/healthz", nil))
	if healthz.Code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", healthz.Code)
	}
	readyz := httptest.NewRecorder()
	rt.ReadyzHandler().ServeHTTP(readyz, httptest.NewRequest("GET", "/readyz", nil))
	if readyz.Code != http.StatusOK {
		t.Fatalf("readyz = %d, want 200 before drain", readyz.Code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := rt.Drain(ctx); err != nil {
		t.Fatalf("drain idle runtime: %v", err)
	}

	readyz = httptest.NewRecorder()
	rt.ReadyzHandler().ServeHTTP(readyz, httptest.NewRequest("GET", "/readyz", nil))
	if readyz.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d, want 503 while draining", readyz.Code)
	}
	// Liveness must not flip: a draining server is alive.
	healthz = httptest.NewRecorder()
	rt.HealthzHandler().ServeHTTP(healthz, httptest.NewRequest("GET", "/healthz", nil))
	if healthz.Code != http.StatusOK {
		t.Fatalf("healthz = %d during drain, want 200", healthz.Code)
	}

	_, _, err := rt.Connect(context.Background(), "")
	var rej *RejectError
	if !errors.As(err, &rej) {
		t.Fatalf("err = %v, want *RejectError", err)
	}
	r := rej.Rejection
	if r.Code != RejectDraining || !r.Retryable || r.RetryAfterMillis <= 0 {
		t.Fatalf("rejection = %+v, want retryable draining with a hint", r)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("New with no registry succeeded")
	}
	if _, err := New(Options{Registry: NewRegistry()}); err == nil {
		t.Error("New with empty registry succeeded")
	}
	reg := testRegistry(t, "m0")
	if _, err := New(Options{Registry: reg,
		Session: abnn2.Config{OfflineMode: abnn2.OfflineBanked}}); err == nil {
		t.Error("New with OfflineBanked and no bank succeeded")
	}
}

func TestJitterRange(t *testing.T) {
	if got := Jitter(0); got != 0 {
		t.Fatalf("Jitter(0) = %v", got)
	}
	d := 100 * time.Millisecond
	lo, hi := d, d
	for i := 0; i < 2000; i++ {
		j := Jitter(d)
		if j < d/2 || j >= d+d/2 {
			t.Fatalf("Jitter(%v) = %v outside [%v, %v)", d, j, d/2, d+d/2)
		}
		if j < lo {
			lo = j
		}
		if j > hi {
			hi = j
		}
	}
	// With 2000 draws the spread must cover a good part of the interval;
	// a constant (broken jitter) would fail both bounds.
	if lo > d*3/4 || hi < d*5/4 {
		t.Errorf("jitter spread [%v, %v] suspiciously narrow", lo, hi)
	}
}

func TestRejectionRetryAfter(t *testing.T) {
	if got := (Rejection{RetryAfterMillis: 250}).RetryAfter(); got != 250*time.Millisecond {
		t.Fatalf("RetryAfter = %v", got)
	}
	if got := (Rejection{}).RetryAfter(); got != 0 {
		t.Fatalf("RetryAfter without hint = %v", got)
	}
	e := &RejectError{Rejection: Rejection{Code: RejectSaturated, Retryable: true, RetryAfterMillis: 40}}
	if !e.Temporary() {
		t.Fatal("retryable rejection not Temporary")
	}
	perm := &RejectError{Rejection: Rejection{Code: RejectUnknownModel}}
	if perm.Temporary() {
		t.Fatal("permanent rejection reported Temporary")
	}
}
