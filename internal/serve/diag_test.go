package serve

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"abnn2"
	"abnn2/internal/metrics"
	"abnn2/internal/trace"
)

// Diagnostics suite: the always-on flight recorder, anomaly-triggered
// dumps, and the merged cross-party timeline over a real in-process
// session. Run with -race; every test ends with zero leaked goroutines.

// readDumps parses every diag-*.json file in dir.
func readDumps(t *testing.T, dir string) []diagDump {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "diag-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	var out []diagDump
	for _, p := range matches {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		var d diagDump
		if err := json.Unmarshal(raw, &d); err != nil {
			t.Fatalf("parse %s: %v", p, err)
		}
		out = append(out, d)
	}
	return out
}

// TestDiagSLOBreachDumpsDelayedSession is the acceptance scenario: a
// session slower than the SLO must leave an automatic flight-recorder
// dump in the diagnostics directory whose events identify the delayed
// flights — without tracing having been requested, and without leaking
// goroutines.
func TestDiagSLOBreachDumpsDelayedSession(t *testing.T) {
	base := runtime.NumGoroutine()
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	m := NewMetrics(reg)
	rt := testRuntime(t, Options{
		Metrics:     m,
		Recorder:    trace.NewRecorder(0, 0),
		SLO:         time.Nanosecond, // every real session breaches
		DiagDir:     dir,
		DiagProfile: 20 * time.Millisecond,
	})
	// Drive the session on a background context so the server observes a
	// clean client shutdown (a cancelled context would end the session on
	// the error path instead of the SLO path).
	conn, arch, err := rt.Connect(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	client, err := abnn2.Dial(conn, arch, abnn2.Config{RingBits: 32, RoundTimeout: testRoundTimeout})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Classify(testInputs(2)); err != nil {
		t.Fatal(err)
	}
	client.Close()
	conn.Close()

	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := rt.Drain(dctx); err != nil {
		t.Fatal(err)
	}

	dumps := readDumps(t, dir)
	var breach *diagDump
	for i := range dumps {
		if dumps[i].Reason == "slo-breach" {
			breach = &dumps[i]
		}
	}
	if breach == nil {
		t.Fatalf("no slo-breach dump in %s (got %d dumps)", dir, len(dumps))
	}
	if breach.Session == 0 || breach.Model != "m0" {
		t.Errorf("dump = session %d model %q, want a real session of m0", breach.Session, breach.Model)
	}
	if breach.ElapsedMS < 0 || breach.SLOMS != 0 {
		t.Errorf("dump elapsed/slo = %d/%d ms", breach.ElapsedMS, breach.SLOMS)
	}
	// The ring must pin the anomaly on specific wire activity: recorded
	// flight stamps with direction, sequence and wall time.
	flights := 0
	for _, ev := range breach.Events {
		if ev.Flight != nil {
			flights++
			if ev.Flight.Dir == "" || ev.Flight.Seq == 0 || ev.Flight.Wall.IsZero() {
				t.Fatalf("recorded flight lacks identity: %+v", ev.Flight)
			}
			if ev.Flight.Session != breach.Session {
				t.Fatalf("recorded flight of session %d in dump of session %d",
					ev.Flight.Session, breach.Session)
			}
		}
	}
	if flights == 0 {
		t.Error("dump holds no flight events — the delayed flights are unidentifiable")
	}
	if m.DiagDumps.Value() == 0 {
		t.Error("abnn2_diag_dumps_total still zero")
	}
	// The CPU profile window must have been captured and closed by Drain.
	if profs, _ := filepath.Glob(filepath.Join(dir, "diag-cpu-*.pprof")); len(profs) != 1 {
		t.Errorf("%d CPU profiles, want 1", len(profs))
	}
	settleGoroutines(t, base, "diag SLO breach")
}

func TestDiagErrorDump(t *testing.T) {
	base := runtime.NumGoroutine()
	dir := t.TempDir()
	rt := testRuntime(t, Options{
		Recorder: trace.NewRecorder(0, 0),
		DiagDir:  dir,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	conn, _, err := rt.Connect(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	// Abandon the session right after admission: the server's protocol
	// read fails and the error path must dump.
	conn.Close()

	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if err := rt.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range readDumps(t, dir) {
		if d.Reason == "error" && d.Err != "" {
			found = true
		}
	}
	if !found {
		t.Error("failed session left no error dump")
	}
	settleGoroutines(t, base, "diag error dump")
}

func TestDiagShedDumpAndCap(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	m := NewMetrics(reg)
	rt := testRuntime(t, Options{Metrics: m, DiagDir: dir})
	// Every rejected handshake dumps; past the per-process cap the dumps
	// are suppressed but still counted.
	for i := 0; i < maxDiagDumps+5; i++ {
		if _, _, err := rt.Connect(context.Background(), "no-such-model"); err == nil {
			t.Fatal("unknown model admitted")
		}
	}
	files, err := filepath.Glob(filepath.Join(dir, "diag-shed-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != maxDiagDumps {
		t.Errorf("%d shed dumps on disk, want the cap %d", len(files), maxDiagDumps)
	}
	if got := m.DiagSuppressed.Value(); got != 5 {
		t.Errorf("suppressed = %d, want 5", got)
	}
	dumps := readDumps(t, dir)
	if len(dumps) == 0 || dumps[0].Reason != "shed" || !strings.Contains(dumps[0].Err, RejectUnknownModel) {
		t.Errorf("first dump = %+v, want a shed naming the rejection", dumps[0])
	}
}

func TestFlightRecorderHandler(t *testing.T) {
	rec := trace.NewRecorder(8, 8)
	rt := testRuntime(t, Options{Recorder: rec})
	classifyOnce(t, rt, "")
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := rt.Drain(dctx); err != nil {
		t.Fatal(err)
	}

	h := rt.FlightRecorderHandler()
	get := func(url string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", url, nil))
		return w
	}

	w := get("/debug/flightrecorder")
	if w.Code != 200 {
		t.Fatalf("list status = %d", w.Code)
	}
	var list struct {
		Sessions []uint64 `json:"sessions"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil || len(list.Sessions) != 1 {
		t.Fatalf("sessions = %v (err %v), want one", list.Sessions, err)
	}

	w = get("/debug/flightrecorder?session=" + jsonUint(list.Sessions[0]))
	if w.Code != 200 {
		t.Fatalf("session status = %d", w.Code)
	}
	var dump struct {
		Session uint64                `json:"session"`
		Events  []trace.RecorderEvent `json:"events"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &dump); err != nil || len(dump.Events) == 0 {
		t.Fatalf("session dump = %d events (err %v), want > 0", len(dump.Events), err)
	}

	if w = get("/debug/flightrecorder?session=bogus"); w.Code != 400 {
		t.Errorf("bad id status = %d, want 400", w.Code)
	}
	if w = get("/debug/flightrecorder?session=424242"); w.Code != 404 {
		t.Errorf("unknown session status = %d, want 404", w.Code)
	}

	// A runtime without a recorder answers 404 at the root.
	bare := testRuntime(t, Options{})
	w = httptest.NewRecorder()
	bare.FlightRecorderHandler().ServeHTTP(w, httptest.NewRequest("GET", "/debug/flightrecorder", nil))
	if w.Code != 404 {
		t.Errorf("disabled recorder status = %d, want 404", w.Code)
	}
}

func jsonUint(v uint64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// TestServeTimelineEndToEnd drives a real session over a pipe with both
// endpoints tracing, merges the two dumps, and requires the reconciled
// timeline to attribute the session's wall time within 1% — the same
// invariant scripts/loadtest.sh asserts over TCP in CI.
func TestServeTimelineEndToEnd(t *testing.T) {
	base := runtime.NumGoroutine()
	srvTrace := abnn2.NewTraceCollector()
	rt := testRuntime(t, Options{Session: abnn2.Config{
		RingBits: 32, RoundTimeout: testRoundTimeout, Trace: srvTrace,
	}})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sconn, cconn := abnn2.Pipe()
	go func() { _ = rt.HandleConn(ctx, sconn, "test") }()
	info, err := ClientHandshakeInfo(cconn, "")
	if err != nil {
		t.Fatal(err)
	}
	if info.SessionID == 0 {
		t.Fatal("handshake carried no session id")
	}
	cliTrace := abnn2.NewTraceCollector()
	client, err := abnn2.Dial(cconn, info.Arch, abnn2.Config{
		RingBits: 32, RoundTimeout: testRoundTimeout,
		Trace: cliTrace, SessionID: info.SessionID,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Classify(testInputs(2)); err != nil {
		t.Fatal(err)
	}
	client.Close()
	cconn.Close()
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if err := rt.Drain(dctx); err != nil {
		t.Fatal(err)
	}

	spans := append(srvTrace.Spans(), cliTrace.Spans()...)
	flights := append(srvTrace.Flights(), cliTrace.Flights()...)
	ids := trace.Sessions(flights)
	if len(ids) != 1 || ids[0] != info.SessionID {
		t.Fatalf("two-party sessions = %v, want [%d]", ids, info.SessionID)
	}
	tl, err := trace.BuildTimeline(info.SessionID, spans, flights)
	if err != nil {
		t.Fatal(err)
	}
	if err := tl.Check(0.01); err != nil {
		t.Fatalf("timeline does not tile the session: %v\n%s", err, trace.FormatTimeline(tl))
	}
	// Same process, same clock: the estimated offset must be tiny.
	if off := tl.Offset; off < -time.Second || off > time.Second {
		t.Errorf("same-host clock offset = %v", off)
	}
	// A real session computes and talks; both classes must show up, and
	// the server's admission span must have put the handshake in queue.
	for _, class := range []string{trace.ClassCompute, trace.ClassWire, trace.ClassQueue} {
		if tl.ByClass[class] <= 0 {
			t.Errorf("class %s absent from a real session:\n%s", class, trace.FormatTimeline(tl))
		}
	}
	settleGoroutines(t, base, "timeline end to end")
}
