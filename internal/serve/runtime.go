package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"abnn2"
	"abnn2/internal/plan"
	"abnn2/internal/trace"
)

// Options configures a Runtime.
type Options struct {
	// Registry holds the served models; must contain at least one.
	Registry *Registry
	// Bank, when non-nil, provisions sessions from precomputed
	// correlation pools. Every registered model is given its own pools
	// (New registers them); sessions degrade per Session.OfflineMode when
	// pools run dry.
	Bank *abnn2.Bank
	// MaxSessions bounds concurrently admitted sessions. 0 derives a
	// default from GOMAXPROCS and Session.Workers (each session fans its
	// kernels across Workers goroutines, so capacity is compute slots
	// with 2x oversubscription for wire waits).
	MaxSessions int
	// HandshakeTimeout bounds the model handshake on a new connection:
	// hello receive and reply send. A connection that has not completed
	// it is closed — a slow-loris peer holds a socket, never a session
	// slot. Default 10s.
	HandshakeTimeout time.Duration
	// Session is the per-session configuration template: ring width,
	// ReLU variant, workers, round timeout, trace sink, offline mode.
	// SessionID and Bank are filled per connection by the runtime.
	Session abnn2.Config
	// Metrics, when non-nil, receives the runtime's admission and
	// session series; see NewMetrics.
	Metrics *Metrics
	// Logger receives structured serve-layer logs; nil discards them.
	Logger *slog.Logger
	// Recorder, when non-nil, is the always-on per-session flight
	// recorder: the runtime tees every session's spans and flights into
	// it (alongside Session.Trace) and serves it at
	// /debug/flightrecorder via FlightRecorderHandler. Anomaly triggers
	// dump its rings to DiagDir.
	Recorder *trace.Recorder
	// SLO is the per-session latency objective. Sessions slower than it
	// bump the abnn2_slo_* burn-rate series and — with DiagDir set —
	// trigger a flight-recorder dump. 0 disables SLO accounting.
	SLO time.Duration
	// DiagDir, when non-empty, enables anomaly-triggered diagnostics:
	// SLO breaches, session errors, and sheds dump the session's
	// recorder ring there as JSON. The directory must exist.
	DiagDir string
	// DiagProfile, when positive, additionally captures one CPU profile
	// window of that length per anomaly burst into DiagDir.
	DiagProfile time.Duration
}

// retry hints for sheds whose wait is not slot-bound: a draining server
// wants clients to find another replica soon but not hammer this one;
// a dry bank refills in roughly one offline-phase time.
const (
	drainRetryAfter   = time.Second
	bankDryRetryAfter = 250 * time.Millisecond
)

// Runtime is the resilient serving runtime: it owns admission,
// backpressure, degradation, and lifecycle for every connection handed
// to HandleConn, whatever transport it arrived on.
type Runtime struct {
	reg       *Registry
	bank      *abnn2.Bank
	adm       *Admission
	hsTimeout time.Duration
	session   abnn2.Config
	m         *Metrics
	log       *slog.Logger
	recorder  *trace.Recorder
	slo       time.Duration
	diag      *diagnostics

	nextSession atomic.Uint64
	prewarmed   atomic.Bool
	recovered   atomic.Bool

	mu       sync.Mutex
	nconns   int
	draining bool
	store    *abnn2.BankStore // set by StartRecovery; flushed on Drain
}

// New builds a runtime over a non-empty registry. When a bank is
// configured, every registered model is registered with it here, so each
// model gets its own correlation pools keyed by its identity.
func New(opts Options) (*Runtime, error) {
	if opts.Registry == nil || opts.Registry.Len() == 0 {
		return nil, fmt.Errorf("serve: registry is empty")
	}
	if opts.Session.OfflineMode == abnn2.OfflineBanked && opts.Bank == nil {
		return nil, fmt.Errorf("serve: OfflineBanked sessions require Options.Bank")
	}
	log := opts.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	max := opts.MaxSessions
	if max <= 0 {
		max = defaultMaxSessions(opts.Session.Workers)
	}
	hs := opts.HandshakeTimeout
	if hs <= 0 {
		hs = 10 * time.Second
	}
	rt := &Runtime{
		reg:       opts.Registry,
		bank:      opts.Bank,
		adm:       NewAdmission(max),
		hsTimeout: hs,
		session:   opts.Session,
		m:         opts.Metrics,
		log:       log,
		recorder:  opts.Recorder,
		slo:       opts.SLO,
	}
	if rt.recorder != nil {
		// Tee every session's spans and flights into the recorder; Multi
		// forwards flights to the members that consume them.
		rt.session.Trace = trace.Multi(rt.session.Trace, rt.recorder)
	}
	rt.diag = newDiagnostics(opts.DiagDir, rt.recorder, opts.DiagProfile, opts.Metrics, log)
	if rt.bank != nil {
		for _, name := range rt.reg.Names() {
			m, _ := rt.reg.Get(name)
			id, err := abnn2.RegisterBankModel(rt.bank, m.Quant)
			if err != nil {
				return nil, fmt.Errorf("serve: register %q with bank: %w", name, err)
			}
			m.BankID = id
		}
	}
	rt.prewarmed.Store(true) // until StartPrewarm says otherwise
	rt.recovered.Store(true) // until StartRecovery says otherwise
	rt.m.setReady(true)
	return rt, nil
}

// defaultMaxSessions sizes admission from compute capacity: GOMAXPROCS
// divided by the per-session worker fan-out, times two — sessions
// alternate kernel bursts with wire waits, so 2x oversubscription keeps
// cores busy without thrashing.
func defaultMaxSessions(workers int) int {
	ncpu := runtime.GOMAXPROCS(0)
	if workers <= 0 || workers > ncpu {
		workers = ncpu
	}
	n := ncpu / workers * 2
	if n < 2 {
		n = 2
	}
	return n
}

// Admission exposes the runtime's admission controller (for health
// introspection and tests).
func (rt *Runtime) Admission() *Admission { return rt.adm }

// Bank returns the runtime's correlation bank (nil when banking is off).
func (rt *Runtime) Bank() *abnn2.Bank { return rt.bank }

// Registry returns the runtime's model registry.
func (rt *Runtime) Registry() *Registry { return rt.reg }

// StartPrewarm begins background prewarming of the given pool keys to
// depth each, gating readiness: /readyz answers 503 until every key has
// been attempted. Prewarm failures are logged and skipped — pools warm
// lazily on first miss — so a broken key degrades capacity, not startup.
func (rt *Runtime) StartPrewarm(keys []abnn2.BankKey, depth int) {
	if rt.bank == nil || len(keys) == 0 {
		return
	}
	rt.prewarmed.Store(false)
	rt.m.setReady(false)
	rt.trackConn()
	go func() {
		defer rt.untrackConn()
		for _, key := range keys {
			if err := rt.bank.Prewarm(key, depth); err != nil {
				rt.log.Warn("bank prewarm failed", "key", key.String(), "err", err)
				continue
			}
			rt.log.Info("bank pool warm", "key", key.String(), "depth", rt.bank.Depth(key))
		}
		rt.prewarmed.Store(true)
		ready, _ := rt.ReadyState()
		rt.m.setReady(ready)
	}()
}

// StartRecovery begins background recovery of the bank's durable store,
// gating readiness: /readyz answers 503 until the recovery scan has
// completed, so banked sessions never run against an unvalidated store.
// On success the bank's persisted dealer pairs are restored into their
// pools, then prewarming of keys starts (so prewarm tops up what
// recovery did not restore, instead of racing it). A failed recovery is
// logged and leaves the store disabled — the bank serves memory-only,
// degrading durability rather than startup — and the runtime still
// becomes ready.
func (rt *Runtime) StartRecovery(store *abnn2.BankStore, keys []abnn2.BankKey, depth int) {
	if store == nil {
		rt.StartPrewarm(keys, depth)
		return
	}
	rt.mu.Lock()
	rt.store = store
	rt.mu.Unlock()
	rt.recovered.Store(false)
	rt.m.setReady(false)
	rt.trackConn()
	go func() {
		defer rt.untrackConn()
		stats, err := store.Recover()
		if err != nil {
			rt.log.Error("bank store recovery failed; serving memory-only", "dir", store.Dir(), "err", err)
		} else {
			rt.log.Info("bank store recovered", "dir", store.Dir(),
				"scopes", stats.Scopes, "records", stats.Records, "claimed", stats.Claimed,
				"torn_tails", stats.TornTails, "quarantined", stats.Quarantined)
			if rt.bank != nil {
				if n, rerr := rt.bank.Restore(); rerr != nil {
					rt.log.Warn("bank restore failed", "err", rerr)
				} else if n > 0 {
					rt.log.Info("bank pools restored from store", "pairs", n)
				}
			}
		}
		rt.recovered.Store(true)
		ready, _ := rt.ReadyState()
		rt.m.setReady(ready)
		rt.StartPrewarm(keys, depth)
	}()
}

// ReadyState reports whether the runtime should receive traffic, with a
// human-readable reason when it should not.
func (rt *Runtime) ReadyState() (bool, string) {
	rt.mu.Lock()
	draining := rt.draining
	rt.mu.Unlock()
	switch {
	case draining:
		return false, "draining"
	case rt.reg.Len() == 0:
		return false, "no models registered"
	case !rt.recovered.Load():
		return false, "bank store recovery in progress"
	case !rt.prewarmed.Load():
		return false, "bank prewarm in progress"
	}
	return true, "ready"
}

// Drain puts the runtime into shutdown: every subsequent handshake is
// shed with a retryable draining rejection, and Drain waits for the
// connections already inside HandleConn to finish. It returns ctx's
// error if they outlive it; callers then cancel the session contexts to
// force the stragglers out.
func (rt *Runtime) Drain(ctx context.Context) error {
	rt.mu.Lock()
	rt.draining = true
	store := rt.store
	rt.mu.Unlock()
	rt.m.setReady(false)
	// In-flight diagnostics profile windows must finish before the
	// process exits, or the profile file is truncated mid-write.
	defer rt.diag.wait()
	// Flush the claim journal even when sessions outlive the deadline: an
	// abandoned drain must not leave claims in OS buffers.
	if store != nil {
		defer func() {
			if err := store.Sync(); err != nil {
				rt.log.Warn("claim journal flush on drain failed", "err", err)
			}
		}()
	}
	for {
		rt.mu.Lock()
		n := rt.nconns
		rt.mu.Unlock()
		if n == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("serve: drain: %d connections still live: %w", n, ctx.Err())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func (rt *Runtime) trackConn() {
	rt.mu.Lock()
	rt.nconns++
	rt.mu.Unlock()
}

func (rt *Runtime) untrackConn() {
	rt.mu.Lock()
	rt.nconns--
	rt.mu.Unlock()
}

// HandleConn runs one connection through its whole lifecycle: handshake
// under deadline, admission, typed rejection or session serve, cleanup.
// It always closes conn. The returned error describes the outcome for
// callers that log or test; sheds return the *RejectError the client
// saw.
//
// The handshake deadline is armed before the first read, so a peer that
// connects and never speaks (slow loris) is dropped when it expires —
// having consumed a socket and a parked goroutine for the duration, but
// never a session slot.
func (rt *Runtime) HandleConn(ctx context.Context, conn abnn2.Conn, remote string) error {
	rt.trackConn()
	defer rt.untrackConn()
	defer conn.Close()
	rt.m.handshake()
	hsStart := time.Now()
	_ = conn.SetDeadline(hsStart.Add(rt.hsTimeout))

	raw, err := conn.Recv()
	if err != nil {
		rt.m.handshakeFail()
		rt.log.Warn("handshake read failed", "remote", remote, "err", err)
		return fmt.Errorf("serve: handshake read: %w", err)
	}
	var h hello
	if len(raw) > maxHelloBytes || json.Unmarshal(raw, &h) != nil || h.V != helloVersion {
		return rt.reject(conn, remote, Rejection{
			Code:   RejectBadHello,
			Reason: "malformed hello or unsupported version",
		})
	}
	model, ok := rt.reg.Get(h.Model)
	if !ok {
		return rt.reject(conn, remote, Rejection{
			Code:   RejectUnknownModel,
			Reason: fmt.Sprintf("model %q is not served here", h.Model),
		})
	}
	if h.Offline {
		if len(h.Plan) > 0 {
			// Replenishment generates the all-ABNN2 session material;
			// planned pools are filled by planned online sessions.
			return rt.reject(conn, remote, Rejection{
				Code:   RejectBadPlan,
				Reason: "offline replenishment sessions do not take a plan",
			})
		}
		return rt.handleOffline(ctx, conn, remote, model, h)
	}
	sessPlan, perr := rt.checkPlan(model, h)
	if perr != nil {
		return rt.reject(conn, remote, Rejection{Code: RejectBadPlan, Reason: perr.Error()})
	}
	release, rej, degraded := rt.admit(model)
	if rej != nil {
		return rt.reject(conn, remote, *rej)
	}
	defer release()

	// The session id is assigned before the reply so it can ride in it:
	// the client stamps its spans and flights with the server's id,
	// which is what lets -timeline merge the two dumps.
	id := rt.nextSession.Add(1)
	hr := helloReply{OK: true, Model: model.Name, Arch: model.ArchJSON, Session: id}
	if rt.bank != nil && rt.bank.Store() != nil {
		hr.BankID, hr.Peer = model.BankID, rt.bank.Store().PeerID().String()
	}
	reply, err := json.Marshal(hr)
	if err != nil {
		return err
	}
	if err := conn.Send(reply); err != nil {
		rt.m.handshakeFail()
		rt.log.Warn("handshake reply failed", "remote", remote, "err", err)
		return fmt.Errorf("serve: handshake reply: %w", err)
	}
	// Handshake done: hand deadline control to the session layer (which
	// arms per-round deadlines from Config.RoundTimeout).
	_ = conn.SetDeadline(time.Time{})

	if degraded {
		rt.m.degraded()
		rt.log.Info("admitted degraded (pools dry, inline offline)",
			"session", id, "model", model.Name, "remote", remote)
	}
	rt.emitAdmission(id, hsStart)
	cfg := rt.session
	cfg.SessionID = id
	cfg.Bank = rt.bank
	if sessPlan != nil {
		// The admitted plan becomes the session's requirement: every
		// batch announcement must carry this exact plan.
		cfg.Plan = sessPlan
	}
	rt.m.sessionStart(model.Name)
	start := time.Now()
	stats, err := abnn2.ServeContext(ctx, conn, model.Quant, cfg)
	elapsed := time.Since(start)
	rt.m.sessionEnd(err)
	rt.m.observeSession(model.Name, elapsed, rt.slo)
	if err != nil {
		rt.diag.sessionAnomaly("error", id, model.Name, remote, elapsed, rt.slo, err)
		rt.log.Error("session failed", "session", id, "model", model.Name, "remote", remote,
			"err", err, "bytes_sent", stats.BytesAB, "bytes_recvd", stats.BytesBA)
		return err
	}
	if rt.slo > 0 && elapsed > rt.slo {
		rt.diag.sessionAnomaly("slo-breach", id, model.Name, remote, elapsed, rt.slo, nil)
		rt.log.Warn("session breached latency SLO", "session", id, "model", model.Name,
			"remote", remote, "elapsed", elapsed.Round(time.Millisecond), "slo", rt.slo)
	}
	rt.log.Info("session done", "session", id, "model", model.Name, "remote", remote,
		"bytes_sent", stats.BytesAB, "bytes_recvd", stats.BytesBA,
		"dur", elapsed.Round(time.Millisecond))
	return nil
}

// syntheticSpanBase offsets hand-built span ids (admission, dial) away
// from the per-session tracer's small sequential ids.
const syntheticSpanBase = uint64(1) << 62

// emitAdmission records the handshake+admission window as a root span on
// the session trace, so timeline reconciliation can attribute the
// pre-protocol wait to the queue class.
func (rt *Runtime) emitAdmission(id uint64, hsStart time.Time) {
	if rt.session.Trace == nil {
		return
	}
	rt.session.Trace.Emit(trace.Span{
		ID: syntheticSpanBase | id, Party: "server", Session: id,
		Name: "admission", Layer: -1,
		Start: hsStart, Dur: time.Since(hsStart),
	})
}

// handleOffline serves a remote offline-replenishment session: the
// client and this server run the real two-party offline protocol and
// each durably stores its half of every correlation under the other's
// peer id. Offline sessions take a normal session slot — they cost the
// same compute as an inline offline phase — but skip the bank-dry
// check, since their whole point is to fill pools.
func (rt *Runtime) handleOffline(ctx context.Context, conn abnn2.Conn, remote string, model *Model, h hello) error {
	if rt.bank == nil || rt.bank.Store() == nil {
		return rt.reject(conn, remote, Rejection{
			Code:   RejectBadHello,
			Reason: "offline sessions require a server with a durable bank store",
		})
	}
	peer, err := abnn2.ParseBankPeerID(h.Peer)
	if err != nil {
		return rt.reject(conn, remote, Rejection{
			Code:   RejectBadHello,
			Reason: "offline sessions require the client's bank peer id",
		})
	}
	if !rt.recovered.Load() {
		// The store refuses writes until recovery completes; shedding here
		// saves the client a doomed offline phase.
		return rt.reject(conn, remote, Rejection{
			Code: RejectBankDry, Retryable: true,
			RetryAfterMillis: bankDryRetryAfter.Milliseconds(),
			Reason:           "bank store recovery in progress",
		})
	}
	rt.mu.Lock()
	draining := rt.draining
	rt.mu.Unlock()
	if draining {
		return rt.reject(conn, remote, Rejection{
			Code: RejectDraining, Retryable: true,
			RetryAfterMillis: drainRetryAfter.Milliseconds(),
			Reason:           "server is draining for shutdown",
		})
	}
	release, ok := rt.adm.TryAcquire()
	if !ok {
		return rt.reject(conn, remote, Rejection{
			Code: RejectSaturated, Retryable: true,
			RetryAfterMillis: rt.adm.RetryAfter().Milliseconds(),
			Reason:           fmt.Sprintf("all %d session slots busy", rt.adm.Max()),
		})
	}
	defer release()

	id := rt.nextSession.Add(1)
	reply, err := json.Marshal(helloReply{OK: true, Model: model.Name, Arch: model.ArchJSON,
		BankID: model.BankID, Peer: rt.bank.Store().PeerID().String(), Session: id})
	if err != nil {
		return err
	}
	if err := conn.Send(reply); err != nil {
		rt.m.handshakeFail()
		rt.log.Warn("handshake reply failed", "remote", remote, "err", err)
		return fmt.Errorf("serve: handshake reply: %w", err)
	}
	_ = conn.SetDeadline(time.Time{})

	cfg := rt.session
	cfg.SessionID = id
	cfg.Bank = rt.bank
	rt.m.offlineStart()
	start := time.Now()
	err = abnn2.ServeOfflineSession(ctx, conn, model.Quant, cfg, peer)
	rt.m.offlineEnd(err)
	if err != nil {
		rt.diag.sessionAnomaly("error", id, model.Name, remote, time.Since(start), 0, err)
		rt.log.Error("offline session failed", "session", id, "model", model.Name,
			"remote", remote, "peer", h.Peer, "err", err)
		return err
	}
	rt.log.Info("offline session done", "session", id, "model", model.Name,
		"remote", remote, "peer", h.Peer,
		"dur", time.Since(start).Round(time.Millisecond))
	return nil
}

// checkPlan validates a hello's proposed per-layer protocol plan
// against the requested model. A nil return with a nil plan means the
// hello proposed none. Validation runs before admission — a plan the
// server cannot execute is refused in the handshake round, before the
// client sinks base-OT work into a doomed session.
func (rt *Runtime) checkPlan(model *Model, h hello) (*abnn2.Plan, error) {
	if len(h.Plan) == 0 {
		return nil, nil
	}
	if rt.session.Plan != nil && !bytes.Equal(h.Plan, rt.session.Plan.Marshal()) {
		return nil, fmt.Errorf("this server requires plan %s", rt.session.Plan)
	}
	p, err := plan.Unmarshal(h.Plan)
	if err != nil {
		return nil, err
	}
	// Batch 1 is the most permissive shape; the session layer re-checks
	// against each announced batch.
	if err := p.Validate(model.Quant.Arch(), 1); err != nil {
		return nil, err
	}
	return p, nil
}

// admit decides one handshake: a session slot plus degradation status,
// or a typed rejection. Decision order: draining beats saturation beats
// bank state, so a shutting-down server answers consistently whatever
// its load.
func (rt *Runtime) admit(model *Model) (release func(), rej *Rejection, degraded bool) {
	rt.mu.Lock()
	draining := rt.draining
	rt.mu.Unlock()
	if draining {
		return nil, &Rejection{
			Code: RejectDraining, Retryable: true,
			RetryAfterMillis: drainRetryAfter.Milliseconds(),
			Reason:           "server is draining for shutdown",
		}, false
	}
	release, ok := rt.adm.TryAcquire()
	if !ok {
		return nil, &Rejection{
			Code: RejectSaturated, Retryable: true,
			RetryAfterMillis: rt.adm.RetryAfter().Milliseconds(),
			Reason:           fmt.Sprintf("all %d session slots busy", rt.adm.Max()),
		}, false
	}
	if rt.bank != nil && rt.session.OfflineMode != abnn2.OfflineInline {
		if depth := rt.bankDepth(model); depth == 0 {
			if rt.session.OfflineMode == abnn2.OfflineBanked {
				// Admitting would hand the client a session whose every batch
				// fails; shed instead, while the miss-triggered refill runs.
				release()
				return nil, &Rejection{
					Code: RejectBankDry, Retryable: true,
					RetryAfterMillis: bankDryRetryAfter.Milliseconds(),
					Reason:           fmt.Sprintf("correlation pools for model %q are dry", model.Name),
				}, false
			}
			degraded = true // OfflineAuto: serve inline while pools refill
		}
	}
	return release, nil, degraded
}

// bankDepth sums the live depths of the model's session pools across all
// batch sizes.
func (rt *Runtime) bankDepth(m *Model) int {
	if rt.bank == nil || m.BankID == "" {
		return 0
	}
	total := 0
	for key, depth := range rt.bank.Snapshot().Depths {
		if key.Model == m.BankID {
			total += depth
		}
	}
	return total
}

// reject sheds one connection: metrics, log, best-effort wire reply
// (still under the handshake deadline), close. The client observes the
// same *RejectError this returns.
func (rt *Runtime) reject(conn abnn2.Conn, remote string, rej Rejection) error {
	rt.m.shed(rej)
	rt.diag.shed(rej, remote)
	rt.log.Warn("shed", "remote", remote, "code", rej.Code,
		"retryable", rej.Retryable, "retry_after_ms", rej.RetryAfterMillis)
	if reply, err := json.Marshal(helloReply{OK: false, Reject: &rej}); err == nil {
		_ = conn.Send(reply)
	}
	return &RejectError{Rejection: rej}
}

// Connect opens an in-process session against the runtime: a pipe pair
// whose server end is served by HandleConn on a background goroutine,
// and whose client end completes the handshake here. The load harness
// and tests use it to drive the exact admission path TCP clients hit,
// minus the network. On rejection the returned error is the
// *RejectError, the pipe is closed, and the serving goroutine has
// already exited by way of its own close.
func (rt *Runtime) Connect(ctx context.Context, model string) (abnn2.Conn, abnn2.Arch, error) {
	sconn, cconn := abnn2.Pipe()
	go func() { _ = rt.HandleConn(ctx, sconn, "inproc") }()
	arch, err := ClientHandshake(cconn, model)
	if err != nil {
		cconn.Close()
		return nil, arch, err
	}
	return cconn, arch, nil
}

// ConnectPlan is Connect proposing a per-layer protocol plan in the
// handshake; the same plan must then be set as abnn2.Config.Plan for
// the Dial on the returned connection.
func (rt *Runtime) ConnectPlan(ctx context.Context, model string, p *abnn2.Plan) (abnn2.Conn, abnn2.Arch, error) {
	sconn, cconn := abnn2.Pipe()
	go func() { _ = rt.HandleConn(ctx, sconn, "inproc") }()
	info, err := ClientHandshakePlan(cconn, model, p)
	if err != nil {
		cconn.Close()
		return nil, info.Arch, err
	}
	return cconn, info.Arch, nil
}
