package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"abnn2"
	"abnn2/internal/metrics"
	"abnn2/internal/transport"
)

// Serve-layer chaos suite: the admission, backpressure and degradation
// machinery under concurrent multi-tenant load, hostile clients, and
// injected transport faults. The invariant is the same error-not-hang
// discipline as the protocol chaos suite, lifted one layer up: every
// client either completes, or observes a typed retryable rejection it
// can act on, or gets a prompt error — and the runtime ends every run
// with zero admitted sessions and zero leaked goroutines. Run with
// -race: the admission path is the most contended code in the repo.

const chaosServeWatchdog = 120 * time.Second

// settleGoroutines waits for the goroutine count to return to base,
// failing with full stacks if it does not.
func settleGoroutines(t *testing.T, base int, what string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Errorf("%s: %d goroutines, want <= %d — leak:\n%s", what, runtime.NumGoroutine(), base, buf[:n])
}

// watchdog fails the test with full stacks if fn does not return in time.
func watchdog(t *testing.T, what string, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() { fn(); close(done) }()
	select {
	case <-done:
	case <-time.After(chaosServeWatchdog):
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("%s hung:\n%s", what, buf[:n])
	}
}

// connectHonoringHints is the well-behaved client loop: retry typed
// retryable rejections after their (jittered) hint. It records every
// hint observed so the test can assert none were missing.
func connectHonoringHints(ctx context.Context, rt *Runtime, model string, hintless *int32, mu *sync.Mutex,
) (abnn2.Conn, abnn2.Arch, error) {
	for {
		conn, arch, err := rt.Connect(ctx, model)
		if err == nil {
			return conn, arch, nil
		}
		var rej *RejectError
		if !errors.As(err, &rej) || !rej.Temporary() {
			return nil, arch, err
		}
		wait := rej.Rejection.RetryAfter()
		if wait <= 0 {
			mu.Lock()
			*hintless++
			mu.Unlock()
			wait = defaultRetryAfter
		}
		select {
		case <-ctx.Done():
			return nil, arch, ctx.Err()
		case <-time.After(Jitter(wait)):
		}
	}
}

// TestChaosServeMultiTenantLoad: many clients, two tenant models, a
// deliberately small admission capacity. Every client must complete all
// its sessions by riding the backpressure protocol; every retryable
// rejection must carry a hint; the runtime must end idle and leak-free.
func TestChaosServeMultiTenantLoad(t *testing.T) {
	time.Sleep(20 * time.Millisecond)
	base := runtime.NumGoroutine()

	reg := testRegistry(t, "tenant-a", "tenant-b")
	m := NewMetrics(metrics.NewRegistry())
	rt := testRuntime(t, Options{Registry: reg, MaxSessions: 2, Metrics: m})

	const (
		clients           = 8
		sessionsPerClient = 2
	)
	ctx, cancel := context.WithTimeout(context.Background(), chaosServeWatchdog)
	defer cancel()

	var mu sync.Mutex
	var hintless int32
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		i := i
		model := []string{"tenant-a", "tenant-b"}[i%2]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := 0; s < sessionsPerClient; s++ {
				conn, arch, err := connectHonoringHints(ctx, rt, model, &hintless, &mu)
				if err != nil {
					errs[i] = fmt.Errorf("session %d connect: %w", s, err)
					return
				}
				client, err := abnn2.Dial(conn, arch, abnn2.Config{
					RingBits: 32, RoundTimeout: testRoundTimeout, Seed: 100 + uint64(i)})
				if err != nil {
					conn.Close()
					errs[i] = fmt.Errorf("session %d dial: %w", s, err)
					return
				}
				_, err = client.Classify(testInputs(2))
				client.Close()
				if err != nil {
					errs[i] = fmt.Errorf("session %d classify: %w", s, err)
					return
				}
			}
		}()
	}
	watchdog(t, "multi-tenant load", wg.Wait)

	for i, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}
	if hintless > 0 {
		t.Errorf("%d retryable rejections carried no retry-after hint", hintless)
	}
	if got := m.SessionsTotal.With("tenant-a").Value() + m.SessionsTotal.With("tenant-b").Value(); got != clients*sessionsPerClient {
		t.Errorf("sessions served = %d, want %d", got, clients*sessionsPerClient)
	}
	// Clients closed their ends; the server side releases each slot when
	// it observes the hang-up — settle before asserting.
	deadline := time.Now().Add(15 * time.Second)
	for rt.Admission().Active() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if active := rt.Admission().Active(); active != 0 {
		t.Errorf("%d sessions still admitted after the run", active)
	}
	if m.SessionsActive.Value() != 0 {
		t.Errorf("sessions_active gauge = %d after the run", m.SessionsActive.Value())
	}
	settleGoroutines(t, base, "multi-tenant load")
}

// TestChaosServeSlowLoris: clients that connect and never speak must be
// cut by the handshake deadline without ever holding a session slot, and
// an honest client arriving meanwhile must be served normally.
func TestChaosServeSlowLoris(t *testing.T) {
	time.Sleep(20 * time.Millisecond)
	base := runtime.NumGoroutine()

	rt := testRuntime(t, Options{MaxSessions: 1, HandshakeTimeout: 200 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), chaosServeWatchdog)
	defer cancel()

	// A pack of silent connections, enough to pin every slot if the
	// deadline (or slot accounting) were wrong.
	const loris = 5
	handled := make(chan error, loris)
	var pins []abnn2.Conn
	for i := 0; i < loris; i++ {
		sconn, cconn := abnn2.Pipe()
		pins = append(pins, cconn)
		go func() { handled <- rt.HandleConn(ctx, sconn, "loris") }()
	}

	// An honest client while the loris pack is still parked.
	qm := rt.Registry().Default().Quant
	classes := classifyOnce(t, rt, "")
	for k, x := range testInputs(2) {
		if want := qm.Predict(x); classes[k] != want {
			t.Errorf("honest client misclassified input %d: %d != %d", k, classes[k], want)
		}
	}

	// Every loris must be evicted by the deadline, with an error, having
	// never claimed a slot.
	for i := 0; i < loris; i++ {
		select {
		case err := <-handled:
			if err == nil {
				t.Error("silent connection handled without error")
			}
		case <-time.After(chaosServeWatchdog):
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("slow-loris connection still parked:\n%s", buf[:n])
		}
	}
	// The honest session's server goroutine releases its slot a beat
	// after the client hangs up — settle before asserting, as above. A
	// loris that really claimed a slot would never release it and still
	// trips the deadline.
	deadline := time.Now().Add(15 * time.Second)
	for rt.Admission().Active() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if active := rt.Admission().Active(); active != 0 {
		t.Errorf("loris pack holds %d session slots", active)
	}
	for _, c := range pins {
		c.Close()
	}
	settleGoroutines(t, base, "slow loris")
}

// TestChaosServeFaultsUnderLoad: every transport fault class injected
// into an admitted session, while a concurrent healthy session runs on
// the same runtime. The faulted session must error-or-complete promptly,
// the healthy one must classify correctly, and neither may leak a slot
// or a goroutine.
func TestChaosServeFaultsUnderLoad(t *testing.T) {
	time.Sleep(20 * time.Millisecond)
	base := runtime.NumGoroutine()

	rt := testRuntime(t, Options{MaxSessions: 4})
	qm := rt.Registry().Default().Quant

	for _, class := range transport.FaultClasses {
		for _, msg := range []int{0, 3} {
			t.Run(fmt.Sprintf("%v-msg%d", class, msg), func(t *testing.T) {
				ctx, cancel := context.WithTimeout(context.Background(), chaosServeWatchdog)
				defer cancel()

				// Healthy session concurrent with the faulted one. No t.Fatal
				// in this goroutine: every exit path must send on the channel
				// or the receive below would hang the test.
				healthy := make(chan error, 1)
				go func() {
					healthy <- func() (err error) {
						defer func() {
							if r := recover(); r != nil {
								err = fmt.Errorf("panic: %v", r)
							}
						}()
						conn, arch, err := rt.Connect(ctx, "")
						if err != nil {
							return fmt.Errorf("connect: %w", err)
						}
						client, err := abnn2.Dial(conn, arch, abnn2.Config{
							RingBits: 32, RoundTimeout: testRoundTimeout})
						if err != nil {
							conn.Close()
							return fmt.Errorf("dial: %w", err)
						}
						defer client.Close()
						classes, err := client.Classify(testInputs(2))
						if err != nil {
							return fmt.Errorf("classify: %w", err)
						}
						for k, x := range testInputs(2) {
							if classes[k] != qm.Predict(x) {
								return fmt.Errorf("misclassified input %d", k)
							}
						}
						return nil
					}()
				}()

				conn, arch, err := rt.Connect(ctx, "")
				if err != nil {
					t.Fatalf("connect: %v", err)
				}
				faulted := transport.Fault(conn, transport.FaultPlan{
					Class: class, Message: msg, Seed: 0xFA010 + uint64(msg),
					Delay: 50 * time.Millisecond,
				})
				watchdog(t, fmt.Sprintf("faulted session (%v msg %d)", class, msg), func() {
					client, err := abnn2.Dial(faulted, arch, abnn2.Config{
						RingBits: 32, RoundTimeout: 2 * time.Second, Seed: 7})
					if err == nil {
						_, err = client.Classify(testInputs(2))
						client.Close()
					} else {
						faulted.Close()
					}
					// Delay faults must still complete; destructive faults may
					// error — but must not hang (the watchdog is the assertion).
					if class == transport.FaultDelay && err != nil {
						t.Errorf("delay fault broke the session: %v", err)
					}
				})
				if err := <-healthy; err != nil {
					t.Errorf("healthy session alongside %v fault: %v", class, err)
				}
			})
		}
	}

	// Whatever the faults did, every slot must be home by now.
	deadline := time.Now().Add(15 * time.Second)
	for rt.Admission().Active() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if active := rt.Admission().Active(); active != 0 {
		t.Errorf("%d session slots leaked across fault classes", active)
	}
	settleGoroutines(t, base, "faults under load")
}

// TestChaosServeDrainUnderLoad: Drain must wait for in-flight sessions,
// shed newcomers with a retryable draining rejection, and return once
// the stragglers finish.
func TestChaosServeDrainUnderLoad(t *testing.T) {
	time.Sleep(20 * time.Millisecond)
	base := runtime.NumGoroutine()

	rt := testRuntime(t, Options{MaxSessions: 2})
	ctx, cancel := context.WithTimeout(context.Background(), chaosServeWatchdog)
	defer cancel()

	// One session mid-flight when the drain lands.
	conn, arch, err := rt.Connect(ctx, "")
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	sessionDone := make(chan error, 1)
	go func() {
		client, err := abnn2.Dial(conn, arch, abnn2.Config{RingBits: 32, RoundTimeout: testRoundTimeout})
		if err != nil {
			conn.Close()
			sessionDone <- err
			return
		}
		_, err = client.Classify(testInputs(2))
		client.Close()
		sessionDone <- err
	}()

	drainDone := make(chan error, 1)
	go func() {
		dctx, dcancel := context.WithTimeout(context.Background(), chaosServeWatchdog)
		defer dcancel()
		drainDone <- rt.Drain(dctx)
	}()

	// Wait until the drain flag is set (Drain sets it before waiting), so
	// the newcomer probe below deterministically races nothing.
	for {
		if ready, reason := rt.ReadyState(); !ready && reason == "draining" {
			break
		}
		select {
		case <-ctx.Done():
			t.Fatal("drain flag never set")
		case <-time.After(2 * time.Millisecond):
		}
	}

	// While draining, a newcomer is shed with the typed rejection.
	_, _, err = rt.Connect(ctx, "")
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Rejection.Code != RejectDraining {
		t.Fatalf("newcomer during drain got %v, want draining rejection", err)
	}
	if !rej.Temporary() || rej.Rejection.RetryAfter() <= 0 {
		t.Fatalf("draining rejection not retryable-with-hint: %+v", rej.Rejection)
	}

	if err := <-sessionDone; err != nil {
		t.Errorf("in-flight session failed during drain: %v", err)
	}
	select {
	case err := <-drainDone:
		if err != nil {
			t.Errorf("drain: %v", err)
		}
	case <-time.After(chaosServeWatchdog):
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("drain never returned:\n%s", buf[:n])
	}
	settleGoroutines(t, base, "drain under load")
}

// TestChaosServeBankedMultiTenant: two tenants over one bank with tiny
// pools and strict banked sessions server-side. Clients must observe
// only completions or typed retryable rejections (saturated or
// bank-dry) — never a hang — and pools refill between sheds so the run
// makes progress.
func TestChaosServeBankedMultiTenant(t *testing.T) {
	time.Sleep(20 * time.Millisecond)
	base := runtime.NumGoroutine()

	reg := testRegistry(t, "tenant-a", "tenant-b")
	bank := abnn2.NewBank(abnn2.BankOptions{Capacity: 2, Workers: 1, Seed: 0xD1CE})
	defer bank.Close()
	m := NewMetrics(metrics.NewRegistry())
	rt := testRuntime(t, Options{
		Registry: reg, Bank: bank, MaxSessions: 2, Metrics: m,
		Session: abnn2.Config{RingBits: 32, RoundTimeout: testRoundTimeout, OfflineMode: abnn2.OfflineAuto},
	})

	ctx, cancel := context.WithTimeout(context.Background(), chaosServeWatchdog)
	defer cancel()
	var mu sync.Mutex
	var hintless int32
	const clients = 6
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		i := i
		model := []string{"tenant-a", "tenant-b"}[i%2]
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, arch, err := connectHonoringHints(ctx, rt, model, &hintless, &mu)
			if err != nil {
				errs[i] = err
				return
			}
			client, err := abnn2.Dial(conn, arch, abnn2.Config{
				RingBits: 32, RoundTimeout: testRoundTimeout, Seed: 200 + uint64(i)})
			if err != nil {
				conn.Close()
				errs[i] = err
				return
			}
			_, err = client.Classify(testInputs(2))
			client.Close()
			errs[i] = err
		}()
	}
	watchdog(t, "banked multi-tenant", wg.Wait)
	for i, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}
	if hintless > 0 {
		t.Errorf("%d retryable rejections carried no hint", hintless)
	}
	settleGoroutines(t, base, "banked multi-tenant")
}
