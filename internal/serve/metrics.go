package serve

import (
	"time"

	"abnn2/internal/metrics"
)

// Metrics is the serving runtime's metric set, registered alongside the
// protocol-level ServerMetrics on the same registry. Every method on a
// nil *Metrics is a no-op, so an uninstrumented runtime pays nothing.
type Metrics struct {
	Handshakes     *metrics.Counter
	HandshakeFails *metrics.Counter
	Shed           *metrics.CounterVec // by rejection code
	ShedHinted     *metrics.Counter    // retryable sheds that carried a retry-after hint
	Degraded       *metrics.Counter    // sessions admitted inline because pools were dry
	SessionsActive *metrics.Gauge
	SessionsTotal  *metrics.CounterVec // by model name
	SessionsFailed *metrics.Counter
	OfflineTotal   *metrics.Counter // admitted remote offline-replenishment sessions
	OfflineFailed  *metrics.Counter // offline sessions that ended with an error
	Ready          *metrics.Gauge   // 1 when /readyz answers 200

	// SLO burn-rate series (PR 9): every finished inference session
	// counts toward SLOSessions; sessions slower than the configured SLO
	// count toward SLOBreaches, so breach/session is the burn rate.
	SLOSessions    *metrics.Counter      // sessions measured against the latency SLO
	SLOBreaches    *metrics.CounterVec   // SLO-breaching sessions, by model
	SessionLatency *metrics.HistogramVec // end-to-end session latency, by model
	DiagDumps      *metrics.Counter      // anomaly-triggered flight-recorder dumps written
	DiagSuppressed *metrics.Counter      // anomaly dumps suppressed by the dump cap
}

// NewMetrics registers the serving series on r.
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		Handshakes:     r.NewCounter("abnn2_serve_handshakes_total", "Connections that began the model handshake."),
		HandshakeFails: r.NewCounter("abnn2_serve_handshake_failures_total", "Handshakes that failed before admission (timeout, malformed hello, dead conn)."),
		Shed:           r.NewCounterVec("abnn2_serve_shed_total", "Connections shed with a typed rejection, by code.", "code"),
		ShedHinted:     r.NewCounter("abnn2_serve_shed_hinted_total", "Retryable sheds that carried a retry-after hint."),
		Degraded:       r.NewCounter("abnn2_serve_degraded_total", "Sessions admitted with inline (non-banked) offline provisioning because pools were dry."),
		SessionsActive: r.NewGauge("abnn2_serve_sessions_active", "Admitted sessions currently being served."),
		SessionsTotal:  r.NewCounterVec("abnn2_serve_sessions_total", "Admitted sessions, by model.", "model"),
		SessionsFailed: r.NewCounter("abnn2_serve_sessions_failed_total", "Admitted sessions that ended with a protocol error."),
		OfflineTotal:   r.NewCounter("abnn2_serve_offline_sessions_total", "Admitted remote offline-replenishment sessions."),
		OfflineFailed:  r.NewCounter("abnn2_serve_offline_sessions_failed_total", "Remote offline-replenishment sessions that ended with an error."),
		Ready:          r.NewGauge("abnn2_serve_ready", "Whether the runtime reports ready (prewarm done, not draining)."),
		SLOSessions:    r.NewCounter("abnn2_slo_sessions_total", "Inference sessions measured against the latency SLO."),
		SLOBreaches:    r.NewCounterVec("abnn2_slo_breaches_total", "Inference sessions that breached the latency SLO, by model.", "model"),
		SessionLatency: r.NewHistogramVec("abnn2_session_latency_seconds", "End-to-end inference session latency, by model.", "model", metrics.DurationBuckets),
		DiagDumps:      r.NewCounter("abnn2_diag_dumps_total", "Anomaly-triggered flight-recorder dumps written to the diagnostics directory."),
		DiagSuppressed: r.NewCounter("abnn2_diag_suppressed_total", "Anomaly dumps suppressed by the per-process dump cap."),
	}
}

func (m *Metrics) handshake() {
	if m != nil {
		m.Handshakes.Inc()
	}
}

func (m *Metrics) handshakeFail() {
	if m != nil {
		m.HandshakeFails.Inc()
	}
}

func (m *Metrics) shed(rej Rejection) {
	if m == nil {
		return
	}
	m.Shed.With(rej.Code).Inc()
	if rej.Retryable && rej.RetryAfterMillis > 0 {
		m.ShedHinted.Inc()
	}
}

func (m *Metrics) degraded() {
	if m != nil {
		m.Degraded.Inc()
	}
}

func (m *Metrics) sessionStart(model string) {
	if m != nil {
		m.SessionsActive.Add(1)
		m.SessionsTotal.With(model).Inc()
	}
}

func (m *Metrics) sessionEnd(err error) {
	if m == nil {
		return
	}
	m.SessionsActive.Add(-1)
	if err != nil {
		m.SessionsFailed.Inc()
	}
}

func (m *Metrics) offlineStart() {
	if m != nil {
		m.SessionsActive.Add(1)
		m.OfflineTotal.Inc()
	}
}

func (m *Metrics) offlineEnd(err error) {
	if m == nil {
		return
	}
	m.SessionsActive.Add(-1)
	if err != nil {
		m.OfflineFailed.Inc()
	}
}

// observeSession records a finished inference session's latency and its
// SLO outcome. slo <= 0 disables breach accounting but still feeds the
// latency histogram.
func (m *Metrics) observeSession(model string, elapsed, slo time.Duration) {
	if m == nil {
		return
	}
	m.SessionLatency.With(model).Observe(elapsed.Seconds())
	if slo > 0 {
		m.SLOSessions.Inc()
		if elapsed > slo {
			m.SLOBreaches.With(model).Inc()
		}
	}
}

func (m *Metrics) diagDump() {
	if m != nil {
		m.DiagDumps.Inc()
	}
}

func (m *Metrics) diagSuppressed() {
	if m != nil {
		m.DiagSuppressed.Inc()
	}
}

func (m *Metrics) setReady(ready bool) {
	if m == nil {
		return
	}
	if ready {
		m.Ready.Set(1)
	} else {
		m.Ready.Set(0)
	}
}
