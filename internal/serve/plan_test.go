package serve

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"abnn2"
	"abnn2/internal/core"
)

// testPlan is the mixed schedule the planned serve tests run the
// two-layer test MLP under: the hidden layer on the SecureML baseline,
// the output layer on ABNN2.
func testPlan() *abnn2.Plan {
	return &abnn2.Plan{Layers: []abnn2.PlanChoice{
		{Backend: core.BackendSecureML},
		{Backend: core.BackendABNN2},
	}}
}

// TestServePlannedSessionEndToEnd: a client proposing a valid mixed
// plan in the hello is admitted, the admitted plan becomes the
// session's requirement, and the planned session predicts exactly what
// the plaintext model does.
func TestServePlannedSessionEndToEnd(t *testing.T) {
	reg := testRegistry(t, "m0")
	rt := testRuntime(t, Options{Registry: reg})
	p := testPlan()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	conn, arch, err := rt.ConnectPlan(ctx, "m0", p)
	if err != nil {
		t.Fatalf("connect with plan: %v", err)
	}
	client, err := abnn2.Dial(conn, arch, abnn2.Config{
		RingBits: 32, RoundTimeout: testRoundTimeout, Plan: p,
	})
	if err != nil {
		conn.Close()
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()
	classes, err := client.Classify(testInputs(2))
	if err != nil {
		t.Fatalf("classify: %v", err)
	}
	qm, _ := reg.Get("m0")
	for k, x := range testInputs(2) {
		if want := qm.Quant.Predict(x); classes[k] != want {
			t.Errorf("input %d: planned secure %d, plaintext %d", k, classes[k], want)
		}
	}
}

// TestRejectBadPlan: an infeasible plan (wrong layer count) and a
// malformed plan frame are both refused in the handshake round with the
// permanent bad-plan code — before admission, before any base-OT work.
func TestRejectBadPlan(t *testing.T) {
	rt := testRuntime(t, Options{})

	short := &abnn2.Plan{Layers: []abnn2.PlanChoice{{Backend: core.BackendABNN2}}}
	_, _, err := rt.ConnectPlan(context.Background(), "", short)
	var rej *RejectError
	if !errors.As(err, &rej) {
		t.Fatalf("err = %v, want *RejectError", err)
	}
	if rej.Rejection.Code != RejectBadPlan || rej.Temporary() {
		t.Fatalf("rejection = %+v, want permanent bad-plan", rej.Rejection)
	}

	// A frame that does not parse at all.
	raw, err := json.Marshal(hello{V: helloVersion, Plan: []byte("not a plan frame")})
	if err != nil {
		t.Fatal(err)
	}
	sconn, cconn := abnn2.Pipe()
	done := make(chan error, 1)
	go func() { done <- rt.HandleConn(context.Background(), sconn, "test") }()
	if err := cconn.Send(raw); err != nil {
		t.Fatalf("send: %v", err)
	}
	reply, err := cconn.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	var hr helloReply
	if err := json.Unmarshal(reply, &hr); err != nil {
		t.Fatalf("reply not JSON: %v", err)
	}
	if hr.OK || hr.Reject == nil || hr.Reject.Code != RejectBadPlan || hr.Reject.Retryable {
		t.Fatalf("reply = %+v, want permanent bad-plan rejection", hr)
	}
	if err := <-done; !errors.As(err, &rej) || rej.Rejection.Code != RejectBadPlan {
		t.Fatalf("HandleConn err = %v, want bad-plan RejectError", err)
	}
	cconn.Close()
}

// TestRequiredPlanMismatch: a runtime pinned to a required plan
// (single-model servers started with -plan) admits only hellos carrying
// that exact plan, and runs them end to end.
func TestRequiredPlanMismatch(t *testing.T) {
	reg := testRegistry(t, "m0")
	required := testPlan()
	rt := testRuntime(t, Options{Registry: reg, Session: abnn2.Config{Plan: required}})

	other := &abnn2.Plan{Layers: []abnn2.PlanChoice{
		{Backend: core.BackendABNN2},
		{Backend: core.BackendSecureML},
	}}
	_, _, err := rt.ConnectPlan(context.Background(), "m0", other)
	var rej *RejectError
	if !errors.As(err, &rej) {
		t.Fatalf("err = %v, want *RejectError", err)
	}
	if rej.Rejection.Code != RejectBadPlan || rej.Temporary() {
		t.Fatalf("rejection = %+v, want permanent bad-plan", rej.Rejection)
	}

	// The matching plan is admitted and completes.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	conn, arch, err := rt.ConnectPlan(ctx, "m0", required)
	if err != nil {
		t.Fatalf("connect with required plan: %v", err)
	}
	client, err := abnn2.Dial(conn, arch, abnn2.Config{
		RingBits: 32, RoundTimeout: testRoundTimeout, Plan: required,
	})
	if err != nil {
		conn.Close()
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()
	if _, err := client.Classify(testInputs(1)); err != nil {
		t.Fatalf("classify under required plan: %v", err)
	}
}
