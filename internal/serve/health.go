package serve

import (
	"fmt"
	"net/http"
)

// Health endpoints, mounted on the metrics listener by cmd/abnn2-server:
//
//   - /healthz answers 200 while the process is alive — liveness only,
//     never load-dependent, so orchestrators do not restart a merely
//     saturated server.
//   - /readyz answers 200 once the runtime should receive traffic
//     (models registered, bank prewarm finished, not draining) and 503
//     with the blocking reason otherwise — the signal load balancers
//     gate on, flipping back to 503 the moment Drain begins.

// HealthzHandler reports process liveness.
func (rt *Runtime) HealthzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
}

// ReadyzHandler reports traffic readiness, with the blocking reason in
// the 503 body.
func (rt *Runtime) ReadyzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		ready, reason := rt.ReadyState()
		if !ready {
			http.Error(w, reason, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, reason)
	})
}
