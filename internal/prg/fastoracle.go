package prg

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
)

// FastOracle is a fixed-key-AES instantiation of the random oracle used
// on the protocols' hot paths (OT-extension pads, where millions of
// evaluations dominate runtime). Modern MPC implementations (JustGarble,
// emp-toolkit, ABY) model a random oracle with a fixed-key AES
// permutation for exactly this reason; with AES-NI one evaluation is an
// order of magnitude cheaper than SHA-256.
//
// Construction (pi = AES-128 with a per-oracle fixed key derived from the
// domain label):
//
//	absorb:  h <- pi(h XOR b) XOR h XOR b        (Miyaguchi-Preneel style)
//	         over header block (session, index, tweak) then data blocks,
//	         finalised with a length block
//	expand:  out_i = pi(h XOR tau_i) XOR h       (Even-Mansour style)
//
// where tau_i are distinct counter blocks tagged with a domain byte so
// absorption and expansion queries cannot collide. This is the standard
// heuristic instantiation; see DESIGN.md for the security model note.
type FastOracle struct {
	block   cipher.Block
	scratch sync.Pool // *oracleScratch
}

// oracleScratch holds the per-call buffers. Without it every Encrypt call
// through the cipher.Block interface would heap-allocate its operands
// (escape analysis cannot see through the interface), dominating the
// OT-extension hot path.
type oracleScratch struct {
	h, b, x, e [16]byte
}

// NewFastOracle derives the fixed AES key from the domain label.
func NewFastOracle(label string) *FastOracle {
	sum := sha256.Sum256([]byte("abnn2/fastoracle/" + label))
	blk, err := aes.NewCipher(sum[:16])
	if err != nil {
		panic(fmt.Sprintf("prg: %v", err)) // impossible: key length is fixed
	}
	return &FastOracle{block: blk}
}

// Hash returns n oracle bytes for the query (session, index, tweak, data).
func (o *FastOracle) Hash(session, index, tweak uint64, data []byte, n int) []byte {
	s, _ := o.scratch.Get().(*oracleScratch)
	if s == nil {
		s = new(oracleScratch)
	}
	for i := range s.h {
		s.h[i] = 0
	}
	// Header blocks.
	binary.LittleEndian.PutUint64(s.b[0:], session)
	binary.LittleEndian.PutUint64(s.b[8:], index)
	o.absorb(s)
	binary.LittleEndian.PutUint64(s.b[0:], tweak)
	binary.LittleEndian.PutUint64(s.b[8:], uint64(len(data)))
	o.absorb(s)
	// Data blocks, zero-padded.
	for off := 0; off+16 <= len(data); off += 16 {
		copy(s.b[:], data[off:off+16])
		o.absorb(s)
	}
	if tail := len(data) % 16; tail != 0 {
		for i := range s.b {
			s.b[i] = 0
		}
		copy(s.b[:], data[len(data)-tail:])
		o.absorb(s)
	}
	// Finalisation block (domain-separates absorb from expand).
	for i := range s.b {
		s.b[i] = 0
	}
	s.b[15] = 0xA5
	o.absorb(s)
	// Expand.
	out := make([]byte, (n+15)&^15)
	for i := 0; i*16 < n; i++ {
		binary.LittleEndian.PutUint64(s.x[0:], uint64(i)^binary.LittleEndian.Uint64(s.h[0:8]))
		binary.LittleEndian.PutUint64(s.x[8:], binary.LittleEndian.Uint64(s.h[8:16]))
		s.x[15] ^= 0xEE
		o.block.Encrypt(s.e[:], s.x[:])
		XORBytes(out[i*16:(i+1)*16], s.e[:], s.h[:])
	}
	o.scratch.Put(s)
	return out[:n]
}

// absorb updates h <- pi(h XOR b) XOR h XOR b, consuming s.b.
func (o *FastOracle) absorb(s *oracleScratch) {
	XORBytes(s.x[:], s.h[:], s.b[:])
	o.block.Encrypt(s.e[:], s.x[:])
	XORBytes(s.h[:], s.e[:], s.x[:])
}
