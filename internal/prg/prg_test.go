package prg

import (
	"bytes"
	"testing"
	"testing/quick"

	"abnn2/internal/ring"
)

func TestDeterminism(t *testing.T) {
	a := New(SeedFromInt(7))
	b := New(SeedFromInt(7))
	if !bytes.Equal(a.Bytes(100), b.Bytes(100)) {
		t.Fatal("same seed produced different streams")
	}
}

func TestDistinctSeedsDistinctStreams(t *testing.T) {
	a := New(SeedFromInt(1))
	b := New(SeedFromInt(2))
	if bytes.Equal(a.Bytes(32), b.Bytes(32)) {
		t.Fatal("different seeds produced identical 32-byte prefixes")
	}
}

func TestStreamAdvances(t *testing.T) {
	g := New(SeedFromInt(3))
	x, y := g.Bytes(16), g.Bytes(16)
	if bytes.Equal(x, y) {
		t.Fatal("consecutive reads identical")
	}
}

func TestFillMatchesBytes(t *testing.T) {
	a := New(SeedFromInt(4))
	b := New(SeedFromInt(4))
	buf := make([]byte, 48)
	// Pre-dirty the buffer: Fill must overwrite, not XOR into, old content.
	for i := range buf {
		buf[i] = 0xAA
	}
	a.Fill(buf)
	if !bytes.Equal(buf, b.Bytes(48)) {
		t.Fatal("Fill diverged from Bytes")
	}
}

func TestElemReduced(t *testing.T) {
	r := ring.New(12)
	g := New(SeedFromInt(5))
	for i := 0; i < 1000; i++ {
		if e := g.Elem(r); e > r.Mask() {
			t.Fatalf("element %d out of ring", e)
		}
	}
}

func TestVecAndMatShapes(t *testing.T) {
	r := ring.New(32)
	g := New(SeedFromInt(6))
	if v := g.Vec(r, 17); len(v) != 17 {
		t.Fatalf("Vec len %d", len(v))
	}
	m := g.Mat(r, 3, 5)
	if m.Rows != 3 || m.Cols != 5 || len(m.Data) != 15 {
		t.Fatalf("Mat shape %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
}

func TestIntnBoundsAndUniformity(t *testing.T) {
	g := New(SeedFromInt(8))
	counts := make([]int, 5)
	const draws = 50000
	for i := 0; i < draws; i++ {
		v := g.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		// Expected 10000 each; allow 5% deviation.
		if c < 9500 || c > 10500 {
			t.Errorf("bucket %d count %d, suspiciously non-uniform", i, c)
		}
	}
}

func TestIntnPanicsOnBadBound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(SeedFromInt(9)).Intn(0)
}

func TestChildIndependence(t *testing.T) {
	g1 := New(SeedFromInt(10))
	g2 := New(SeedFromInt(10))
	c1 := g1.Child("a")
	c2 := g2.Child("a")
	if !bytes.Equal(c1.Bytes(32), c2.Bytes(32)) {
		t.Fatal("children of identical parents with same tag differ")
	}
	g3 := New(SeedFromInt(10))
	c3 := g3.Child("b")
	if bytes.Equal(New(SeedFromInt(10)).Child("a").Bytes(32), c3.Bytes(32)) {
		t.Fatal("different tags produced identical children")
	}
}

func TestOracleDomainSeparation(t *testing.T) {
	o1 := NewOracle("ot")
	o2 := NewOracle("gc")
	data := []byte("payload")
	if bytes.Equal(o1.Hash(1, 2, 3, data, 16), o2.Hash(1, 2, 3, data, 16)) {
		t.Fatal("different labels collide")
	}
	if bytes.Equal(o1.Hash(1, 2, 3, data, 16), o1.Hash(1, 2, 4, data, 16)) {
		t.Fatal("different tweaks collide")
	}
	if bytes.Equal(o1.Hash(1, 2, 3, data, 16), o1.Hash(1, 9, 3, data, 16)) {
		t.Fatal("different indices collide")
	}
	if bytes.Equal(o1.Hash(1, 2, 3, data, 16), o1.Hash(5, 2, 3, data, 16)) {
		t.Fatal("different sessions collide")
	}
}

func TestOracleDeterministicAndExtensible(t *testing.T) {
	o := NewOracle("x")
	a := o.Hash(1, 2, 3, []byte("d"), 100)
	b := o.Hash(1, 2, 3, []byte("d"), 100)
	if !bytes.Equal(a, b) {
		t.Fatal("oracle not deterministic")
	}
	if len(a) != 100 {
		t.Fatalf("oracle output len %d", len(a))
	}
	// Prefix property: a shorter query is a prefix of a longer one with the
	// same inputs (counter-mode extension).
	short := o.Hash(1, 2, 3, []byte("d"), 32)
	if !bytes.Equal(a[:32], short) {
		t.Fatal("extension not prefix-consistent")
	}
}

func TestOracleBlockMatchesHash(t *testing.T) {
	o := NewOracle("y")
	blk := o.Block(1, 2, 3, []byte("data"))
	h := o.Hash(1, 2, 3, []byte("data"), ROWidth)
	if !bytes.Equal(blk[:], h) {
		t.Fatal("Block and Hash disagree")
	}
}

func TestFastOracleDeterministic(t *testing.T) {
	o := NewFastOracle("t")
	a := o.Hash(1, 2, 3, []byte("hello world data"), 48)
	b := o.Hash(1, 2, 3, []byte("hello world data"), 48)
	if !bytes.Equal(a, b) {
		t.Fatal("FastOracle not deterministic")
	}
	if len(a) != 48 {
		t.Fatalf("output length %d", len(a))
	}
}

func TestFastOracleSeparation(t *testing.T) {
	o := NewFastOracle("t")
	o2 := NewFastOracle("u")
	data := []byte("0123456789abcdef") // exactly one block
	base := o.Hash(1, 2, 3, data, 16)
	diffs := [][]byte{
		o.Hash(9, 2, 3, data, 16),
		o.Hash(1, 9, 3, data, 16),
		o.Hash(1, 2, 9, data, 16),
		o.Hash(1, 2, 3, []byte("0123456789abcdeX"), 16),
		o.Hash(1, 2, 3, data[:15], 16), // shorter data must differ
		o2.Hash(1, 2, 3, data, 16),     // different label
	}
	for i, d := range diffs {
		if bytes.Equal(base, d) {
			t.Errorf("variant %d collided with base query", i)
		}
	}
}

func TestFastOraclePrefixConsistent(t *testing.T) {
	o := NewFastOracle("t")
	long := o.Hash(1, 2, 3, []byte("x"), 100)
	short := o.Hash(1, 2, 3, []byte("x"), 32)
	if !bytes.Equal(long[:32], short) {
		t.Fatal("expansion not prefix-consistent")
	}
}

func TestFastOracleConcurrent(t *testing.T) {
	o := NewFastOracle("t")
	want := o.Hash(5, 6, 7, []byte("abc"), 32)
	done := make(chan bool, 8)
	for w := 0; w < 8; w++ {
		go func() {
			ok := true
			for i := 0; i < 200; i++ {
				if !bytes.Equal(o.Hash(5, 6, 7, []byte("abc"), 32), want) {
					ok = false
				}
			}
			done <- ok
		}()
	}
	for w := 0; w < 8; w++ {
		if !<-done {
			t.Fatal("concurrent FastOracle calls diverged")
		}
	}
}

func TestXORBytes(t *testing.T) {
	a := []byte{1, 2, 3}
	b := []byte{255, 0, 3}
	dst := make([]byte, 3)
	XORBytes(dst, a, b)
	if !bytes.Equal(dst, []byte{254, 2, 0}) {
		t.Fatalf("XORBytes = %v", dst)
	}
	// Property: x ^ x = 0, x ^ 0 = x.
	f := func(x []byte) bool {
		z := make([]byte, len(x))
		XORBytes(z, x, x)
		for _, v := range z {
			if v != 0 {
				return false
			}
		}
		zero := make([]byte, len(x))
		XORBytes(z, x, zero)
		return bytes.Equal(z, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXORBytesPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on length mismatch")
		}
	}()
	XORBytes(make([]byte, 2), make([]byte, 2), make([]byte, 3))
}
