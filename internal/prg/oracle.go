package prg

import (
	"crypto/sha256"
	"encoding/binary"
)

// ROWidth is the random-oracle output width in bytes. The paper fixes the
// RO output to 128 bits ("the bit output of random oracle is 128",
// section 4.1.3), which is what the Table 1 communication formulas assume.
const ROWidth = 16

// Oracle is the random oracle H used by the OT extensions and the
// multiplication protocols. Each call is domain-separated by a protocol
// label and a (session, index, tweak) triple so that every invocation in a
// protocol transcript queries a distinct point of the oracle.
//
// The oracle is stateless and safe for concurrent use.
type Oracle struct {
	label []byte
}

// NewOracle returns an oracle for the given protocol domain label.
func NewOracle(label string) *Oracle {
	return &Oracle{label: []byte(label)}
}

// Hash returns min(n, 32) oracle bytes for the query (session, index,
// tweak, data). For n > 32 it extends output with counter-mode hashing.
func (o *Oracle) Hash(session uint64, index uint64, tweak uint64, data []byte, n int) []byte {
	out := make([]byte, 0, n)
	var hdr [24]byte
	binary.LittleEndian.PutUint64(hdr[0:], session)
	binary.LittleEndian.PutUint64(hdr[8:], index)
	binary.LittleEndian.PutUint64(hdr[16:], tweak)
	var ctr uint32
	for len(out) < n {
		h := sha256.New()
		h.Write(o.label)
		h.Write(hdr[:])
		var cb [4]byte
		binary.LittleEndian.PutUint32(cb[:], ctr)
		h.Write(cb[:])
		h.Write(data)
		out = h.Sum(out)
		ctr++
	}
	return out[:n]
}

// Block returns a single 128-bit oracle output, the common case in the
// OT-extension inner loops (one RO block per transferred message).
func (o *Oracle) Block(session, index, tweak uint64, data []byte) [ROWidth]byte {
	var out [ROWidth]byte
	h := sha256.New()
	h.Write(o.label)
	var hdr [24]byte
	binary.LittleEndian.PutUint64(hdr[0:], session)
	binary.LittleEndian.PutUint64(hdr[8:], index)
	binary.LittleEndian.PutUint64(hdr[16:], tweak)
	h.Write(hdr[:])
	h.Write([]byte{0, 0, 0, 0})
	h.Write(data)
	copy(out[:], h.Sum(nil))
	return out
}

// XORBytes sets dst = a XOR b; all three must have equal length. It returns
// dst for chaining.
func XORBytes(dst, a, b []byte) []byte {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("prg: XORBytes length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] ^ b[i]
	}
	return dst
}
