package prg

import "testing"

func BenchmarkPRGFill4KiB(b *testing.B) {
	g := New(SeedFromInt(1))
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Fill(buf)
	}
}

func BenchmarkOracleBlock(b *testing.B) {
	o := NewOracle("bench")
	data := make([]byte, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = o.Block(1, uint64(i), 0, data)
	}
}

func BenchmarkOracleHash512(b *testing.B) {
	o := NewOracle("bench")
	data := make([]byte, 32)
	b.SetBytes(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = o.Hash(1, uint64(i), 0, data, 512)
	}
}
