// Package prg provides the symmetric-key primitives the protocols are
// built from: an AES-CTR pseudorandom generator and a SHA-256-based random
// oracle with explicit domain separation.
//
// Protocol code never touches crypto/rand directly except through NewSeed;
// all other randomness is expanded from seeds so that tests and benchmarks
// are deterministic.
package prg

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"abnn2/internal/ring"
)

// SeedSize is the PRG seed length in bytes (AES-128 key).
const SeedSize = 16

// Seed is a 128-bit PRG seed, matching the computational security parameter
// kappa = 128 used throughout the paper.
type Seed [SeedSize]byte

// NewSeed samples a fresh seed from the OS CSPRNG.
func NewSeed() Seed {
	var s Seed
	if _, err := rand.Read(s[:]); err != nil {
		// The OS CSPRNG failing is unrecoverable for a cryptographic
		// protocol; continuing silently would be a security bug.
		panic(fmt.Sprintf("prg: OS entropy unavailable: %v", err))
	}
	return s
}

// SeedFromInt derives a deterministic seed from an integer. For tests and
// reproducible benchmarks only.
func SeedFromInt(v uint64) Seed {
	var s Seed
	binary.LittleEndian.PutUint64(s[:8], v)
	s[8] = 0x5e // fixed tweak so SeedFromInt(0) != all-zero key
	return s
}

// PRG is a deterministic byte stream expanded from a Seed via AES-128-CTR.
// It is not safe for concurrent use.
type PRG struct {
	stream cipher.Stream
}

// New returns a PRG expanding the given seed.
func New(seed Seed) *PRG {
	block, err := aes.NewCipher(seed[:])
	if err != nil {
		// aes.NewCipher only fails on bad key length, impossible here.
		panic(fmt.Sprintf("prg: %v", err))
	}
	var iv [aes.BlockSize]byte
	return &PRG{stream: cipher.NewCTR(block, iv[:])}
}

// Fill overwrites p with pseudorandom bytes.
func (g *PRG) Fill(p []byte) {
	for i := range p {
		p[i] = 0
	}
	g.stream.XORKeyStream(p, p)
}

// Bytes returns n fresh pseudorandom bytes.
func (g *PRG) Bytes(n int) []byte {
	p := make([]byte, n)
	g.stream.XORKeyStream(p, p)
	return p
}

// Read implements io.Reader (never fails), so a PRG can drive stdlib
// consumers such as crypto/rand.Prime for deterministic key generation.
func (g *PRG) Read(p []byte) (int, error) {
	g.Fill(p)
	return len(p), nil
}

// Uint64 returns a pseudorandom 64-bit value.
func (g *PRG) Uint64() uint64 {
	var buf [8]byte
	g.stream.XORKeyStream(buf[:], buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

// Elem samples a uniform element of r.
func (g *PRG) Elem(r ring.Ring) ring.Elem {
	return g.Uint64() & r.Mask()
}

// Vec samples a uniform n-element vector over r.
func (g *PRG) Vec(r ring.Ring, n int) ring.Vec {
	v := make(ring.Vec, n)
	mask := r.Mask()
	for i := range v {
		v[i] = g.Uint64() & mask
	}
	return v
}

// Mat samples a uniform rows x cols matrix over r.
func (g *PRG) Mat(r ring.Ring, rows, cols int) *ring.Mat {
	m := ring.NewMat(rows, cols)
	mask := r.Mask()
	for i := range m.Data {
		m.Data[i] = g.Uint64() & mask
	}
	return m
}

// Intn returns a pseudorandom value in [0, n). n must be positive.
// Rejection sampling keeps the distribution exactly uniform.
func (g *PRG) Intn(n int) int {
	if n <= 0 {
		panic("prg: Intn with non-positive bound")
	}
	bound := uint64(n)
	limit := ^uint64(0) - ^uint64(0)%bound
	for {
		v := g.Uint64()
		if v < limit {
			return int(v % bound)
		}
	}
}

// Child derives an independent sub-PRG labelled by tag. Used to hand
// deterministic but distinct randomness to protocol sub-components.
func (g *PRG) Child(tag string) *PRG {
	var seed Seed
	material := g.Bytes(SeedSize)
	h := sha256.New()
	h.Write([]byte("prg-child"))
	h.Write([]byte(tag))
	h.Write(material)
	copy(seed[:], h.Sum(nil))
	return New(seed)
}
