// Package bench regenerates every table of the paper's evaluation
// section (Tables 1-5) plus the ablation studies listed in DESIGN.md.
// Each table function runs the real protocols between two in-process
// parties over metered pipes, measures wall time and exact wire traffic,
// and applies the paper's published link parameters analytically to
// produce LAN/WAN rows (see internal/transport's NetModel and DESIGN.md,
// "Substitutions").
//
// All randomness is seeded: rerunning a table reproduces it bit for bit.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"abnn2/internal/trace"
	"abnn2/internal/transport"
)

// Options tunes how much work the tables do. The zero value runs the
// full paper configuration; Quick trims batch sizes and dimensions so the
// whole suite finishes in well under a minute (used by `go test -bench`).
type Options struct {
	Quick bool
	Out   io.Writer // defaults to io.Discard when nil
	// Workers bounds the per-party kernel parallelism (core.Params.Workers)
	// of every measured protocol run. 0 means one worker per CPU; set 1 to
	// measure the sequential baselines.
	Workers int
	// Trace, when non-nil, receives per-phase spans from every traced
	// protocol run (both parties, Label set to the table row identity) —
	// the raw material behind each table entry. Nil disables tracing.
	Trace trace.Sink
	// Plan is TablePlan's -plan flag value ("" = auto); Link its -link
	// value ("" = wan). Other tables ignore both.
	Plan string
	Link string
}

func (o Options) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

// measurement is one protocol execution's cost profile.
type measurement struct {
	Wall  time.Duration
	Stats transport.Stats
}

// CommMB reports traffic in MiB, the unit the paper labels "MB".
func (m measurement) CommMB() float64 {
	return float64(m.Stats.TotalBytes()) / (1 << 20)
}

// timeUnder applies a network model: measured compute plus modelled wire
// time, in seconds.
func (m measurement) timeUnder(nm transport.NetModel) float64 {
	return nm.TotalTime(m.Wall, m.Stats).Seconds()
}

// runPair executes the two protocol sides concurrently over a metered
// pipe and returns the cost profile. Errors from either side abort.
func runPair(client func(transport.Conn) error, server func(transport.Conn) error) (measurement, error) {
	return runPairT(Options{}, "",
		func(c transport.Conn, _ *trace.Tracer) error { return client(c) },
		func(c transport.Conn, _ *trace.Tracer) error { return server(c) })
}

// pairTracers builds the two parties' tracers over a shared pipe meter
// (nil, nil when tracing is off). The pipe meter attributes BytesAB to
// the client side, so the server's view swaps directions.
func pairTracers(opt Options, label string, meter *transport.Meter) (cli, srv *trace.Tracer) {
	if opt.Trace == nil {
		return nil, nil
	}
	counters := func(swap bool) func() trace.Counters {
		return func() trace.Counters {
			s := meter.Snapshot()
			if swap {
				s.BytesAB, s.BytesBA = s.BytesBA, s.BytesAB
			}
			return trace.Counters{BytesSent: s.BytesAB, BytesRecvd: s.BytesBA, Messages: s.Messages, Flights: s.Flights}
		}
	}
	cli = trace.New(opt.Trace, trace.WithParty("client"), trace.WithLabel(label), trace.WithCounters(counters(false)))
	srv = trace.New(opt.Trace, trace.WithParty("server"), trace.WithLabel(label), trace.WithCounters(counters(true)))
	return cli, srv
}

// runPairT is runPair with tracing: each side receives its own tracer
// (nil when opt.Trace is nil), both emitting to opt.Trace with the
// given row label.
func runPairT(opt Options, label string, client func(transport.Conn, *trace.Tracer) error, server func(transport.Conn, *trace.Tracer) error) (measurement, error) {
	ca, cb, meter := transport.MeteredPipe()
	defer ca.Close()
	cliTr, srvTr := pairTracers(opt, label, meter)
	errc := make(chan error, 1)
	start := time.Now()
	go func() { errc <- server(cb, srvTr) }()
	cerr := client(ca, cliTr)
	serr := <-errc
	wall := time.Since(start)
	if cerr != nil {
		return measurement{}, fmt.Errorf("client: %w", cerr)
	}
	if serr != nil {
		return measurement{}, fmt.Errorf("server: %w", serr)
	}
	return measurement{Wall: wall, Stats: meter.Snapshot()}, nil
}

// table is a tiny fixed-width text table writer.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

func secs(v float64) string { return fmt.Sprintf("%.3f", v) }
func mb(v float64) string   { return fmt.Sprintf("%.2f", v) }
func count(v int64) string  { return fmt.Sprintf("%d", v) }

// fig4Shapes are the paper's evaluation network layer shapes (Figure 4).
type layerShape struct{ M, N int }

var fig4Shapes = []layerShape{{128, 784}, {128, 128}, {10, 128}}
