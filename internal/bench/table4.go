package bench

import (
	"fmt"
	"time"

	"abnn2/internal/baseline"
	"abnn2/internal/core"
	"abnn2/internal/nn"
	"abnn2/internal/prg"
	"abnn2/internal/quant"
	"abnn2/internal/ring"
	"abnn2/internal/trace"
	"abnn2/internal/transport"
)

// Table4Row records one end-to-end secure prediction measurement on the
// Figure 4 network.
type Table4Row struct {
	System string // "MiniONN" or the ABNN2 scheme name
	L      uint   // ring bits
	Batch  int
	LANSec float64
	WANSec float64 // 24.3 MB/s, 40 ms RTT (the QUOTIENT WAN setting)
	CommMB float64
	Note   string // e.g. "extrapolated from batch 8"
}

// table4Schemes matches the paper's "Our" rows.
var table4Schemes = []quant.Scheme{
	quant.NewBitScheme(true, 2, 2),
	quant.NewBitScheme(true, 2, 1),
	quant.Ternary(),
	quant.Binary(),
}

// Table4 reproduces the paper's Table 4: end-to-end prediction on the
// Figure 4 network, ABNN2 (four schemes, l in {32, 64}) vs MiniONN
// (HE offline + identical online), batch sizes 1 and 128.
//
// MiniONN at large batch is measured at a smaller batch and extrapolated
// linearly (per-sample encryptions dominate and scale exactly linearly);
// the Note column marks extrapolated rows.
func Table4(opt Options) []Table4Row {
	batches := []int{1, 128}
	shapes := fig4Shapes
	minionnCap := 8
	rings := []uint{32, 64}
	if opt.Quick {
		batches = []int{1, 8}
		shapes = []layerShape{{32, 96}, {32, 32}, {10, 32}}
		minionnCap = 2
		rings = []uint{32}
	}
	var rows []Table4Row
	for _, l := range rings {
		rg := ring.New(l)
		for _, sc := range table4Schemes {
			for _, batch := range batches {
				meas, err := runEndToEnd(rg, sc, shapes, batch, core.ReLUGC, opt,
					fmt.Sprintf("table4 %s l=%d batch=%d", sc.Name(), l, batch))
				if err != nil {
					panic(fmt.Sprintf("bench: table4 %s l=%d batch=%d: %v", sc.Name(), l, batch, err))
				}
				rows = append(rows, Table4Row{
					System: "Our " + sc.Name(),
					L:      l,
					Batch:  batch,
					LANSec: meas.timeUnder(transport.LAN),
					WANSec: meas.timeUnder(transport.WANQuotient),
					CommMB: meas.CommMB(),
				})
			}
		}
		for _, batch := range batches {
			row := measureMiniONN(rg, shapes, batch, minionnCap, opt)
			rows = append(rows, row)
		}
	}
	t := &table{header: []string{"system", "l", "batch", "LAN(s)", "WAN(s)", "comm(MB)", "note"}}
	for _, r := range rows {
		t.add(r.System, fmt.Sprint(r.L), fmt.Sprint(r.Batch), secs(r.LANSec), secs(r.WANSec), mb(r.CommMB), r.Note)
	}
	fmt.Fprintf(opt.out(), "Table 4: end-to-end prediction, Fig.4 network, vs MiniONN\n%s\n", t)
	return rows
}

// runEndToEnd measures a complete offline+online secure inference on a
// synthetic network with the given layer shapes.
func runEndToEnd(rg ring.Ring, scheme quant.Scheme, shapes []layerShape, batch int, variant core.ReLUVariant, opt Options, label string) (measurement, error) {
	return runEndToEndModel(rg, syntheticQuantized(scheme, shapes), batch, variant, opt, label)
}

// runEndToEndModel measures a complete offline+online secure inference
// for an explicit quantized model. With opt.Trace set, both parties emit
// per-phase spans labelled with the table row identity.
func runEndToEndModel(rg ring.Ring, qm *nn.QuantizedModel, batch int, variant core.ReLUVariant, opt Options, label string) (measurement, error) {
	scheme := qm.Layers[0].Scheme
	arch := core.ArchOf(qm)
	return runPairT(opt, label,
		func(conn transport.Conn, tr *trace.Tracer) error {
			p := core.Params{Ring: rg, Scheme: scheme, Workers: opt.Workers, Trace: tr}
			cli, err := core.NewClientEngine(conn, arch, p, variant, prg.New(prg.SeedFromInt(11)))
			if err != nil {
				return err
			}
			if err := cli.Offline(batch); err != nil {
				return err
			}
			X := prg.New(prg.SeedFromInt(12)).Mat(rg, arch.InputSize(), batch)
			_, err = cli.Predict(X)
			return err
		},
		func(conn transport.Conn, tr *trace.Tracer) error {
			p := core.Params{Ring: rg, Scheme: scheme, Workers: opt.Workers, Trace: tr}
			srv, err := core.NewServerEngine(conn, qm, p, variant)
			if err != nil {
				return err
			}
			if err := srv.Offline(batch); err != nil {
				return err
			}
			return srv.Online()
		},
	)
}

// syntheticQuantized builds a quantized model with random in-range
// weights for the given shapes (benchmarks only care about cost, which is
// weight-value independent).
func syntheticQuantized(scheme quant.Scheme, shapes []layerShape) *nn.QuantizedModel {
	rng := prg.New(prg.SeedFromInt(13))
	min, max := scheme.Range()
	span := int(max - min + 1)
	qm := &nn.QuantizedModel{Frac: 8}
	for li, sh := range shapes {
		l := &nn.QuantizedLayer{
			In: sh.N, Out: sh.M,
			W:      make([]int64, sh.M*sh.N),
			B:      make([]int64, sh.M),
			Scale:  1,
			ReLU:   li+1 < len(shapes),
			Scheme: scheme,
		}
		for i := range l.W {
			l.W[i] = min + int64(rng.Intn(span))
		}
		qm.Layers = append(qm.Layers, l)
	}
	return qm
}

// measureMiniONN measures the MiniONN baseline: HE offline phase plus the
// same online phase ABNN2 uses (MiniONN's online is likewise additive
// shares + GC activations). Batches beyond cap are extrapolated.
func measureMiniONN(rg ring.Ring, shapes []layerShape, batch, maxBatch int, opt Options) Table4Row {
	measured := batch
	note := ""
	if batch > maxBatch {
		measured = maxBatch
		note = fmt.Sprintf("extrapolated from batch %d", maxBatch)
	}
	offline := func(b int) measurement {
		m, err := runMiniONNOffline(rg, shapes, b)
		if err != nil {
			panic(fmt.Sprintf("bench: minionn offline batch %d: %v", b, err))
		}
		return m
	}
	one := offline(1)
	est := one
	if measured > 1 {
		atCap := offline(measured)
		if batch > measured {
			// Linear extrapolation from (1, measured) to batch.
			scale := float64(batch-1) / float64(measured-1)
			est.Wall = one.Wall + time.Duration(float64(atCap.Wall-one.Wall)*scale)
			est.Stats.BytesAB = one.Stats.BytesAB + int64(float64(atCap.Stats.BytesAB-one.Stats.BytesAB)*scale)
			est.Stats.BytesBA = one.Stats.BytesBA + int64(float64(atCap.Stats.BytesBA-one.Stats.BytesBA)*scale)
			est.Stats.Flights = atCap.Stats.Flights
		} else {
			est = atCap
		}
	}
	// Online phase: identical to ABNN2's (binary weights used as the
	// cheapest stand-in; online cost is scheme-independent).
	online, err := runOnlineOnly(rg, shapes, batch, opt)
	if err != nil {
		panic(fmt.Sprintf("bench: minionn online batch %d: %v", batch, err))
	}
	total := measurement{Wall: est.Wall + online.Wall, Stats: est.Stats.Add(online.Stats)}
	return Table4Row{
		System: "MiniONN",
		L:      rg.Bits(),
		Batch:  batch,
		LANSec: total.timeUnder(transport.LAN),
		WANSec: total.timeUnder(transport.WANQuotient),
		CommMB: total.CommMB(),
		Note:   note,
	}
}

// runMiniONNOffline generates HE triplets for every layer.
func runMiniONNOffline(rg ring.Ring, shapes []layerShape, batch int) (measurement, error) {
	keyBits := baseline.MiniONNKeyBits
	return runPair(
		func(conn transport.Conn) error {
			rng := prg.New(prg.SeedFromInt(21))
			cl, err := baseline.NewMiniONNClient(conn, rg, keyBits, rng)
			if err != nil {
				return err
			}
			for _, sh := range shapes {
				R := rng.Mat(rg, sh.N, batch)
				if _, err := cl.GenerateClient(sh.M, R); err != nil {
					return err
				}
			}
			return nil
		},
		func(conn transport.Conn) error {
			rng := prg.New(prg.SeedFromInt(22))
			sv, err := baseline.NewMiniONNServer(conn, rg, rng)
			if err != nil {
				return err
			}
			for _, sh := range shapes {
				W := make([]int64, sh.M*sh.N)
				for i := range W {
					W[i] = int64(rng.Intn(255)) - 127
				}
				if _, err := sv.GenerateServer(W, sh.M, sh.N, batch); err != nil {
					return err
				}
			}
			return nil
		},
	)
}

// runOnlineOnly measures just the online phase of the reference engine
// (the offline phase is run but excluded from the measurement window).
func runOnlineOnly(rg ring.Ring, shapes []layerShape, batch int, opt Options) (measurement, error) {
	scheme := quant.Binary()
	qm := syntheticQuantized(scheme, shapes)
	arch := core.ArchOf(qm)
	ca, cb, meter := transport.MeteredPipe()
	defer ca.Close()
	cliTr, srvTr := pairTracers(opt, fmt.Sprintf("online-only batch=%d", batch), meter)
	cp := core.Params{Ring: rg, Scheme: scheme, Workers: opt.Workers, Trace: cliTr}
	sp := core.Params{Ring: rg, Scheme: scheme, Workers: opt.Workers, Trace: srvTr}
	type ready struct {
		srv *core.ServerEngine
		err error
	}
	srvReady := make(chan ready, 1)
	srvDone := make(chan error, 1)
	go func() {
		srv, err := core.NewServerEngine(cb, qm, sp, core.ReLUGC)
		if err == nil {
			err = srv.Offline(batch)
		}
		srvReady <- ready{srv, err}
		if err != nil {
			return
		}
		srvDone <- srv.Online()
	}()
	cli, err := core.NewClientEngine(ca, arch, cp, core.ReLUGC, prg.New(prg.SeedFromInt(23)))
	if err != nil {
		return measurement{}, err
	}
	if err := cli.Offline(batch); err != nil {
		return measurement{}, err
	}
	r := <-srvReady
	if r.err != nil {
		return measurement{}, r.err
	}
	meter.Reset()
	start := time.Now()
	X := prg.New(prg.SeedFromInt(24)).Mat(rg, arch.InputSize(), batch)
	if _, err := cli.Predict(X); err != nil {
		return measurement{}, err
	}
	if err := <-srvDone; err != nil {
		return measurement{}, err
	}
	return measurement{Wall: time.Since(start), Stats: meter.Snapshot()}, nil
}
