package bench

import (
	"fmt"
	"time"

	"abnn2"
	"abnn2/internal/transport"
)

// The offline/online split table: the same model and batch size served
// twice — end-to-end, with the inline offline phase (OT extension +
// triplets) on the request path, and online-only, with both parties
// drawing prewarmed correlations from a bank so the request path is the
// 13-byte announcement plus the online rounds. The gap between the two
// rows is exactly what the correlation bank buys.

// TableBankRow is one measured row of the split. Values are per batch,
// averaged over the run's iterations.
type TableBankRow struct {
	Scheme  string  `json:"scheme"`
	Batch   int     `json:"batch"`
	Mode    string  `json:"mode"` // "end-to-end" or "online-only"
	WallSec float64 `json:"wall_sec"`
	CommMB  float64 `json:"comm_mb"`
	LANSec  float64 `json:"lan_sec"`
	WANSec  float64 `json:"wan_sec"`
}

// TableBank measures the offline/online split. Quick mode shrinks the
// model and batch sizes; the full configuration uses the paper's
// Figure 4 MLP shape.
func TableBank(opt Options) []TableBankRow {
	const scheme, frac = "4(2,2)", uint(6)
	sizes := []int{784, 128, 128, 10}
	batches := []int{1, 32}
	if opt.Quick {
		sizes = []int{32, 16, 10}
		batches = []int{1, 4}
	}
	const iters = 3
	qm, err := abnn2.NewMLP(sizes...).Quantize(scheme, frac)
	if err != nil {
		fmt.Fprintf(opt.out(), "bank table: quantize: %v\n", err)
		return nil
	}
	var rows []TableBankRow
	tb := &table{header: []string{"scheme", "batch", "mode", "wall(s)", "comm(MB)", "LAN(s)", "WAN(s)"}}
	for _, batch := range batches {
		for _, banked := range []bool{false, true} {
			m, err := runBankSession(qm, sizes[0], batch, iters, opt.Workers, banked)
			if err != nil {
				fmt.Fprintf(opt.out(), "bank table: batch=%d banked=%v: %v\n", batch, banked, err)
				return rows
			}
			mode := "end-to-end"
			if banked {
				mode = "online-only"
			}
			r := TableBankRow{
				Scheme:  scheme,
				Batch:   batch,
				Mode:    mode,
				WallSec: m.Wall.Seconds(),
				CommMB:  m.CommMB(),
				LANSec:  m.timeUnder(transport.LAN),
				WANSec:  m.timeUnder(transport.WANTable3),
			}
			rows = append(rows, r)
			tb.add(r.Scheme, count(int64(r.Batch)), r.Mode,
				secs(r.WallSec), mb(r.CommMB), secs(r.LANSec), secs(r.WANSec))
		}
	}
	fmt.Fprintf(opt.out(), "Offline/online split (correlation bank), per batch over %d iterations:\n%s\n", iters, tb)
	return rows
}

// runBankSession serves iters batches over one facade session and
// returns the per-batch cost of the request path — the client's wall
// time and wire traffic across its Infer calls, session setup excluded.
// With banked set, a bank is prewarmed with iters correlations first
// (off the measured path, which is the point) and both parties run
// OfflineBanked so a silent inline fallback cannot flatter the row.
func runBankSession(qm *abnn2.QuantizedModel, inputSize, batch, iters, workers int, banked bool) (measurement, error) {
	inputs := make([][]float64, batch)
	for k := range inputs {
		x := make([]float64, inputSize)
		for i := range x {
			x[i] = float64((k*31+i*17)%23)/23 - 0.5
		}
		inputs[k] = x
	}
	scfg := abnn2.Config{RingBits: 32, Seed: 101, Workers: workers}
	ccfg := abnn2.Config{RingBits: 32, Seed: 102, Workers: workers}
	if banked {
		b := abnn2.NewBank(abnn2.BankOptions{Capacity: iters, Workers: workers, Seed: 7})
		defer b.Close()
		id, err := abnn2.RegisterBankModel(b, qm)
		if err != nil {
			return measurement{}, fmt.Errorf("register model: %w", err)
		}
		key := abnn2.BankKey{Model: id, Scheme: qm.Scheme(), RingBits: 32,
			Batch: batch, Backend: abnn2.BankSessionBackend}
		if err := b.Prewarm(key, iters); err != nil {
			return measurement{}, fmt.Errorf("prewarm: %w", err)
		}
		scfg.Bank, scfg.OfflineMode = b, abnn2.OfflineBanked
		ccfg.Bank, ccfg.OfflineMode, ccfg.BankModel = b, abnn2.OfflineBanked, id
	}
	sconn, cconn := transport.Pipe()
	srvErr := make(chan error, 1)
	go func() {
		_, err := abnn2.Serve(sconn, qm, scfg)
		srvErr <- err
	}()
	client, err := abnn2.Dial(cconn, qm.Arch(), ccfg)
	if err != nil {
		cconn.Close()
		<-srvErr
		return measurement{}, fmt.Errorf("dial: %w", err)
	}
	before := client.Stats()
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := client.Infer(inputs); err != nil {
			client.Close()
			<-srvErr
			return measurement{}, fmt.Errorf("infer %d: %w", i, err)
		}
	}
	wall := time.Since(start)
	after := client.Stats()
	client.Close()
	if err := <-srvErr; err != nil {
		return measurement{}, fmt.Errorf("server: %w", err)
	}
	n := int64(iters)
	return measurement{
		Wall: wall / time.Duration(iters),
		Stats: transport.Stats{
			BytesAB:  (after.BytesAB - before.BytesAB) / n,
			BytesBA:  (after.BytesBA - before.BytesBA) / n,
			Messages: (after.Messages - before.Messages) / n,
			Flights:  (after.Flights - before.Flights) / n,
		},
	}, nil
}
