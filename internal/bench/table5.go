package bench

import (
	"fmt"

	"abnn2/internal/core"
	"abnn2/internal/quant"
	"abnn2/internal/ring"
	"abnn2/internal/transport"
)

// Table5Row compares ABNN2 against QUOTIENT's published numbers.
type Table5Row struct {
	System    string
	Batch     int
	LANSec    float64
	WANSec    float64
	CommMB    float64 // -1 when unpublished
	Reference bool    // true for QUOTIENT's paper numbers
}

// quotientPublished are the numbers QUOTIENT reports for the same
// network and WAN setting (copied from the paper's Table 5; QUOTIENT's
// code is not public, so the comparison target is its published result —
// exactly what the ABNN2 authors did).
var quotientPublished = []Table5Row{
	{System: "QUOTIENT", Batch: 1, LANSec: 0.356, WANSec: 6.8, CommMB: -1, Reference: true},
	{System: "QUOTIENT", Batch: 128, LANSec: 2.24, WANSec: 8.3, CommMB: -1, Reference: true},
}

// Table5 reproduces the paper's Table 5: ABNN2 with binary weights over
// Z_2^32 on the Figure 4 network vs QUOTIENT's published ternary-network
// results, batch 1 and 128, under the 24.3 MB/s / 40 ms WAN model.
func Table5(opt Options) []Table5Row {
	batches := []int{1, 128}
	shapes := fig4Shapes
	if opt.Quick {
		batches = []int{1, 8}
		shapes = []layerShape{{32, 96}, {32, 32}, {10, 32}}
	}
	rg := ring.New(32)
	rows := append([]Table5Row{}, quotientPublished...)
	for _, batch := range batches {
		meas, err := runEndToEnd(rg, quant.Binary(), shapes, batch, core.ReLUGC, opt,
			fmt.Sprintf("table5 batch=%d", batch))
		if err != nil {
			panic(fmt.Sprintf("bench: table5 batch %d: %v", batch, err))
		}
		rows = append(rows, Table5Row{
			System: "Our binary",
			Batch:  batch,
			LANSec: meas.timeUnder(transport.LAN),
			WANSec: meas.timeUnder(transport.WANQuotient),
			CommMB: meas.CommMB(),
		})
	}
	t := &table{header: []string{"system", "batch", "LAN(s)", "WAN(s)", "comm(MB)"}}
	for _, r := range rows {
		comm := "-"
		if r.CommMB >= 0 {
			comm = mb(r.CommMB)
		}
		name := r.System
		if r.Reference {
			name += " (published)"
		}
		t.add(name, fmt.Sprint(r.Batch), secs(r.LANSec), secs(r.WANSec), comm)
	}
	fmt.Fprintf(opt.out(), "Table 5: comparison with QUOTIENT (their published numbers), l=32\n%s\n", t)
	return rows
}
