package bench

import (
	"fmt"

	"abnn2/internal/core"
	"abnn2/internal/nn"
	"abnn2/internal/prg"
	"abnn2/internal/quant"
	"abnn2/internal/ring"
	"abnn2/internal/transport"
)

// TableCNNRow records one secure CNN inference measurement (extension
// experiment — the paper evaluates FC networks only).
type TableCNNRow struct {
	Scheme string
	Batch  int
	LANSec float64
	WANSec float64
	CommMB float64
}

// TableCNN measures secure inference over the SmallCNN architecture
// (conv 5x5 -> ReLU+pool fused in GC -> FC): convolution triplets reuse
// one OT per weight fragment across all 576 spatial positions — the
// paper's multi-batch insight applied to space.
func TableCNN(opt Options) []TableCNNRow {
	batches := []int{1, 8}
	channels := 4
	if opt.Quick {
		batches = []int{1}
		channels = 2
	}
	rg := ring.New(32)
	schemes := []quant.Scheme{quant.Binary(), quant.Ternary(), quant.Uniform(2, 4)}
	var rows []TableCNNRow
	for _, sc := range schemes {
		for _, batch := range batches {
			meas, err := runSecureCNN(rg, sc, channels, batch, opt)
			if err != nil {
				panic(fmt.Sprintf("bench: cnn %s batch %d: %v", sc.Name(), batch, err))
			}
			rows = append(rows, TableCNNRow{
				Scheme: sc.Name(),
				Batch:  batch,
				LANSec: meas.timeUnder(transport.LAN),
				WANSec: meas.timeUnder(transport.WANQuotient),
				CommMB: meas.CommMB(),
			})
		}
	}
	t := &table{header: []string{"scheme", "batch", "LAN(s)", "WAN(s)", "comm(MB)"}}
	for _, r := range rows {
		t.add(r.Scheme, fmt.Sprint(r.Batch), secs(r.LANSec), secs(r.WANSec), mb(r.CommMB))
	}
	fmt.Fprintf(opt.out(), "Extension: secure CNN (conv 5x5 + pool 2 + FC, %d channels), l=32\n%s\n", channels, t)
	return rows
}

// runSecureCNN builds a random in-range quantized CNN and measures one
// offline+online secure inference.
func runSecureCNN(rg ring.Ring, scheme quant.Scheme, channels, batch int, opt Options) (measurement, error) {
	rng := prg.New(prg.SeedFromInt(51))
	min, max := scheme.Range()
	span := int(max - min + 1)
	randW := func(n int) []int64 {
		w := make([]int64, n)
		for i := range w {
			w[i] = min + int64(rng.Intn(span))
		}
		return w
	}
	conv := &nn.ConvSpec{Ci: 1, H: 28, W: 28, Kh: 5, Kw: 5, Stride: 1, Pad: 0}
	fcIn := channels * 12 * 12
	qm := &nn.QuantizedModel{Frac: 8, Layers: []*nn.QuantizedLayer{
		{
			In: conv.InputSize(), Out: channels,
			W: randW(channels * conv.ColRows()), B: randW(channels),
			Scale: 1, ReLU: true, Scheme: scheme,
			Conv: conv, Pool: &nn.PoolSpec{K: 2},
		},
		{
			In: fcIn, Out: nn.NumClasses,
			W: randW(nn.NumClasses * fcIn), B: randW(nn.NumClasses),
			Scale: 1, Scheme: scheme,
		},
	}}
	return runEndToEndModel(rg, qm, batch, core.ReLUGC, opt,
		fmt.Sprintf("cnn %s batch=%d", scheme.Name(), batch))
}
