package bench

import (
	"fmt"

	"abnn2/internal/core"
	"abnn2/internal/quant"
)

// Table1Row is one analytic comparison row.
type Table1Row struct {
	System string
	NumOTs int64
	CommMB float64
}

// Table1 reproduces the paper's Table 1: analytic OT counts and
// communication for SecureML vs ABNN2's multi-batch and one-batch
// variants, for an m x n quantized matrix times an n x o matrix.
// The defaults mirror the microbenchmark scale (128 x 1000, l = 64,
// 8-bit weights as (2,2,2,2)); Quick shrinks n.
func Table1(opt Options) []Table1Row {
	m, n, o := 128, 1000, 16
	if opt.Quick {
		n = 100
	}
	const l = 64
	scheme := quant.Uniform(2, 4)
	shMulti := core.MatShape{M: m, N: n, O: o}
	shOne := core.MatShape{M: m, N: n, O: 1}

	rows := []Table1Row{}
	add := func(c core.Complexity) {
		rows = append(rows, Table1Row{System: c.Label, NumOTs: c.NumOTs, CommMB: c.CommMB()})
	}
	add(core.SecureMLComplexity(l, shMulti))
	add(core.MultiBatchComplexity(l, scheme, shMulti))
	add(core.SecureMLComplexity(l, shOne))
	add(core.OneBatchComplexity(l, scheme, shOne))

	t := &table{header: []string{"system", "#OT", "comm(MB)"}}
	for _, r := range rows {
		t.add(r.System, count(r.NumOTs), mb(r.CommMB))
	}
	fmt.Fprintf(opt.out(), "Table 1: OT complexity, %dx%d * %dx{%d,1}, l=%d, kappa=128\n%s\n",
		m, n, n, o, l, t)
	return rows
}
