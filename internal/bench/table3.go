package bench

import (
	"fmt"

	"abnn2/internal/baseline"
	"abnn2/internal/prg"
	"abnn2/internal/quant"
	"abnn2/internal/ring"
	"abnn2/internal/transport"
)

// Table3Row records one offline matrix-multiplication microbenchmark:
// a 128 x d quantized matrix times a d-vector, l = 64.
type Table3Row struct {
	System string // "binary", "ternary", "8(2,2,2,2)", "SecureML"
	D      int
	LANSec float64
	WANSec float64 // 9 MB/s, 72 ms RTT (the Table 3 setting)
	CommMB float64
}

// Table3 reproduces the paper's Table 3: ABNN2's one-batch offline
// matrix multiplication vs the SecureML OT baseline across d in
// {100, 500, 1000}, reported under LAN and the 9MB/s-72ms WAN model.
func Table3(opt Options) []Table3Row {
	ds := []int{100, 500, 1000}
	if opt.Quick {
		ds = []int{100}
	}
	const m = 128
	rg := ring.New(64)
	schemes := []quant.Scheme{quant.Binary(), quant.Ternary(), quant.Uniform(2, 4)}
	var rows []Table3Row
	for _, d := range ds {
		for _, sc := range schemes {
			meas, err := runOfflineNetwork(rg, sc, []layerShape{{m, d}}, 1, opt.Workers)
			if err != nil {
				panic(fmt.Sprintf("bench: table3 %s d=%d: %v", sc.Name(), d, err))
			}
			rows = append(rows, Table3Row{
				System: sc.Name(),
				D:      d,
				LANSec: meas.timeUnder(transport.LAN),
				WANSec: meas.timeUnder(transport.WANTable3),
				CommMB: meas.CommMB(),
			})
		}
		meas, err := runSecureML(rg, m, d)
		if err != nil {
			panic(fmt.Sprintf("bench: table3 secureml d=%d: %v", d, err))
		}
		rows = append(rows, Table3Row{
			System: "SecureML",
			D:      d,
			LANSec: meas.timeUnder(transport.LAN),
			WANSec: meas.timeUnder(transport.WANTable3),
			CommMB: meas.CommMB(),
		})
	}
	t := &table{header: []string{"d", "system", "LAN(s)", "WAN(s)", "comm(MB)"}}
	for _, r := range rows {
		t.add(fmt.Sprint(r.D), r.System, secs(r.LANSec), secs(r.WANSec), mb(r.CommMB))
	}
	fmt.Fprintf(opt.out(), "Table 3: offline matmul 128 x d, l=64, one-batch\n%s\n", t)
	return rows
}

// runSecureML measures the SecureML baseline triplet generation for an
// m x d full-width matrix times a d-vector.
func runSecureML(rg ring.Ring, m, d int) (measurement, error) {
	return runPair(
		func(conn transport.Conn) error {
			rng := prg.New(prg.SeedFromInt(3))
			cl, err := baseline.NewSecureMLClient(conn, rg, 1, rng)
			if err != nil {
				return err
			}
			R := rng.Mat(rg, d, 1)
			_, err = cl.GenerateClient(m, R)
			return err
		},
		func(conn transport.Conn) error {
			rng := prg.New(prg.SeedFromInt(4))
			sv, err := baseline.NewSecureMLServer(conn, rg, 1, rng)
			if err != nil {
				return err
			}
			W := make([]int64, m*d)
			for i := range W {
				W[i] = int64(rng.Uint64()) // full-width weights
			}
			_, err = sv.GenerateServer(W, m, d, 1)
			return err
		},
	)
}
