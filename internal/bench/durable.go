package bench

import (
	"context"
	"fmt"
	"os"
	"time"

	"abnn2"
	"abnn2/internal/transport"
)

// The durable-bank start-up table: the same banked prediction served
// from a cold store (fresh directory — recovery finds nothing, the
// remote offline protocol must run on the boot path) and from a warm
// store (stocked by a previous run — recovery restores persisted
// peer-paired correlations and the boot path is a directory scan plus
// one claim). The gap between the rows is what persistence buys at
// restart time: the offline protocol's latency and wire traffic move
// off the first request.

// TableDurableRow is one measured start-up mode.
type TableDurableRow struct {
	Scheme    string  `json:"scheme"`
	Batch     int     `json:"batch"`
	Mode      string  `json:"mode"`      // "cold-start" or "warm-start"
	BootSec   float64 `json:"boot_sec"`  // store open + recovery (+ replenishment when cold)
	FirstSec  float64 `json:"first_sec"` // boot through the first banked prediction
	CommMB    float64 `json:"comm_mb"`   // wire traffic in the same window
	Recovered int     `json:"recovered"` // records recovery found on disk
}

// TableBankDurable measures cold-start vs warm-start time-to-first-
// prediction over a durable store pair.
func TableBankDurable(opt Options) []TableDurableRow {
	const scheme, frac = "4(2,2)", uint(6)
	sizes := []int{784, 128, 128, 10}
	batch := 8
	if opt.Quick {
		sizes = []int{32, 16, 10}
		batch = 2
	}
	qm, err := abnn2.NewMLP(sizes...).Quantize(scheme, frac)
	if err != nil {
		fmt.Fprintf(opt.out(), "durable table: quantize: %v\n", err)
		return nil
	}
	var rows []TableDurableRow
	tb := &table{header: []string{"scheme", "batch", "mode", "boot(s)", "first(s)", "comm(MB)", "recovered"}}
	for _, mode := range []string{"cold-start", "warm-start"} {
		r, err := runDurableStart(qm, sizes[0], batch, opt.Workers, mode == "warm-start")
		if err != nil {
			fmt.Fprintf(opt.out(), "durable table: %s: %v\n", mode, err)
			return rows
		}
		r.Scheme, r.Batch, r.Mode = scheme, batch, mode
		rows = append(rows, r)
		tb.add(r.Scheme, count(int64(r.Batch)), r.Mode,
			secs(r.BootSec), secs(r.FirstSec), mb(r.CommMB), count(int64(r.Recovered)))
	}
	fmt.Fprintf(opt.out(), "Durable bank start-up (time to first banked prediction):\n%s\n", tb)
	return rows
}

// durableStartDirs builds the two parties' store directories; when warm
// is set they are stocked off the clock by a full remote offline session
// and everything is closed again, modeling a restart.
func durableStartDirs(qm *abnn2.QuantizedModel, batch, workers int, warm bool) (srvDir, cliDir string, err error) {
	srvDir, err = os.MkdirTemp("", "abnn2-durable-srv-*")
	if err != nil {
		return "", "", err
	}
	cliDir, err = os.MkdirTemp("", "abnn2-durable-cli-*")
	if err != nil {
		return "", "", err
	}
	if !warm {
		return srvDir, cliDir, nil
	}
	srvStore, srvBank, err := openDurableParty(srvDir, workers)
	if err != nil {
		return "", "", err
	}
	cliStore, cliBank, err := openDurableParty(cliDir, workers)
	if err != nil {
		return "", "", err
	}
	_, err = replenishOnce(qm, srvStore, srvBank, cliStore, cliBank, batch, workers)
	cliBank.Close()
	cliStore.Close()
	srvBank.Close()
	srvStore.Close()
	if err != nil {
		return "", "", fmt.Errorf("stock warm store: %w", err)
	}
	return srvDir, cliDir, nil
}

func openDurableParty(dir string, workers int) (*abnn2.BankStore, *abnn2.Bank, error) {
	st, err := abnn2.OpenBankStore(abnn2.BankStoreOptions{Dir: dir})
	if err != nil {
		return nil, nil, err
	}
	if _, err := st.Recover(); err != nil {
		st.Close()
		return nil, nil, err
	}
	b := abnn2.NewBank(abnn2.BankOptions{Capacity: 1, Workers: workers, Store: st})
	return st, b, nil
}

// replenishOnce runs one remote offline session over a metered pipe,
// storing one peer-paired correlation in each party's store, and returns
// the session's wire traffic.
func replenishOnce(qm *abnn2.QuantizedModel, srvStore *abnn2.BankStore, srvBank *abnn2.Bank,
	cliStore *abnn2.BankStore, cliBank *abnn2.Bank, batch, workers int) (transport.Stats, error) {
	id, err := abnn2.BankModelID(qm)
	if err != nil {
		return transport.Stats{}, err
	}
	sconn, cconn, meter := transport.MeteredPipe()
	scfg := abnn2.Config{RingBits: 32, Seed: 201, Workers: workers, Bank: srvBank}
	ccfg := abnn2.Config{RingBits: 32, Seed: 202, Workers: workers, Bank: cliBank, BankModel: id}
	srvErr := make(chan error, 1)
	go func() {
		err := abnn2.ServeOfflineSession(context.Background(), sconn, qm, scfg, cliStore.PeerID())
		sconn.Close()
		srvErr <- err
	}()
	got, err := abnn2.ReplenishSession(context.Background(), cconn, qm.Arch(), ccfg,
		srvStore.PeerID(), batch, 1)
	cconn.Close()
	if err != nil {
		return transport.Stats{}, fmt.Errorf("replenish: %w", err)
	}
	if serr := <-srvErr; serr != nil {
		return transport.Stats{}, fmt.Errorf("offline serve: %w", serr)
	}
	if got != 1 {
		return transport.Stats{}, fmt.Errorf("replenished %d correlations, want 1", got)
	}
	return meter.Snapshot(), nil
}

// runDurableStart measures one start-up: store open + recovery (+ the
// remote offline session when the store is cold) through the first
// banked prediction.
func runDurableStart(qm *abnn2.QuantizedModel, inputSize, batch, workers int, warm bool) (TableDurableRow, error) {
	srvDir, cliDir, err := durableStartDirs(qm, batch, workers, warm)
	if srvDir != "" {
		defer os.RemoveAll(srvDir)
	}
	if cliDir != "" {
		defer os.RemoveAll(cliDir)
	}
	if err != nil {
		return TableDurableRow{}, err
	}
	id, err := abnn2.BankModelID(qm)
	if err != nil {
		return TableDurableRow{}, err
	}
	inputs := make([][]float64, batch)
	for k := range inputs {
		x := make([]float64, inputSize)
		for i := range x {
			x[i] = float64((k*31+i*17)%23)/23 - 0.5
		}
		inputs[k] = x
	}

	var row TableDurableRow
	start := time.Now()
	srvStore, err := abnn2.OpenBankStore(abnn2.BankStoreOptions{Dir: srvDir})
	if err != nil {
		return row, err
	}
	defer srvStore.Close()
	cliStore, err := abnn2.OpenBankStore(abnn2.BankStoreOptions{Dir: cliDir})
	if err != nil {
		return row, err
	}
	defer cliStore.Close()
	sstats, err := srvStore.Recover()
	if err != nil {
		return row, err
	}
	if _, err := cliStore.Recover(); err != nil {
		return row, err
	}
	row.Recovered = sstats.Records
	srvBank := abnn2.NewBank(abnn2.BankOptions{Capacity: 1, Workers: workers, Store: srvStore})
	defer srvBank.Close()
	cliBank := abnn2.NewBank(abnn2.BankOptions{Capacity: 1, Workers: workers, Store: cliStore})
	defer cliBank.Close()
	var comm transport.Stats
	if !warm {
		// Cold boot must run the offline protocol before serving.
		comm, err = replenishOnce(qm, srvStore, srvBank, cliStore, cliBank, batch, workers)
		if err != nil {
			return row, err
		}
	}
	row.BootSec = time.Since(start).Seconds()

	scfg := abnn2.Config{RingBits: 32, Seed: 203, Workers: workers,
		Bank: srvBank, OfflineMode: abnn2.OfflineBanked}
	ccfg := abnn2.Config{RingBits: 32, Seed: 204, Workers: workers,
		Bank: cliBank, OfflineMode: abnn2.OfflineBanked,
		BankModel: id, BankPeer: srvStore.PeerID().String()}
	sconn, cconn := transport.Pipe()
	srvErr := make(chan error, 1)
	go func() {
		_, err := abnn2.Serve(sconn, qm, scfg)
		srvErr <- err
	}()
	client, err := abnn2.Dial(cconn, qm.Arch(), ccfg)
	if err != nil {
		cconn.Close()
		<-srvErr
		return row, fmt.Errorf("dial: %w", err)
	}
	if _, err := client.Infer(inputs); err != nil {
		client.Close()
		<-srvErr
		return row, fmt.Errorf("first banked inference: %w", err)
	}
	row.FirstSec = time.Since(start).Seconds()
	comm = comm.Add(client.Stats())
	client.Close()
	if err := <-srvErr; err != nil {
		return row, fmt.Errorf("server: %w", err)
	}
	row.CommMB = float64(comm.TotalBytes()) / (1 << 20)
	return row, nil
}
