package bench

import (
	"encoding/json"
	"os"
	"strconv"
	"strings"
	"testing"
)

// The table functions back both the bench harness and these shape
// assertions: the *relationships* the paper reports must hold in our
// reproduction (who wins, and in which direction ratios point).

func quickOpts() Options { return Options{Quick: true} }

func TestTable1Shapes(t *testing.T) {
	rows := Table1(quickOpts())
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	secML, ours := rows[0], rows[1]
	if ours.NumOTs >= secML.NumOTs {
		t.Errorf("ABNN2 multi-batch OTs (%d) should be far below SecureML (%d)", ours.NumOTs, secML.NumOTs)
	}
	if ours.CommMB >= secML.CommMB {
		t.Errorf("ABNN2 multi-batch comm (%.2f) should beat SecureML (%.2f)", ours.CommMB, secML.CommMB)
	}
	secML1, ours1 := rows[2], rows[3]
	if ours1.CommMB >= secML1.CommMB {
		t.Errorf("ABNN2 1-batch comm (%.2f) should beat SecureML (%.2f)", ours1.CommMB, secML1.CommMB)
	}
}

func TestTable2Shapes(t *testing.T) {
	rows := Table2(quickOpts())
	byKey := map[string]Table2Row{}
	for _, r := range rows {
		byKey[r.Scheme+"/"+itoa(r.Batch)] = r
	}
	// The paper's headline: (2,2,2,2) communicates less than (1,...,1)
	// at batch 1, and binary < ternary < everything.
	if byKey["8(2,2,2,2)/1"].CommMB >= byKey["8(1,1,1,1,1,1,1,1)/1"].CommMB {
		t.Error("(2,2,2,2) should communicate less than (1,...,1) at batch 1")
	}
	if byKey["binary/1"].CommMB >= byKey["ternary/1"].CommMB {
		t.Error("binary should communicate less than ternary")
	}
	if byKey["ternary/1"].CommMB >= byKey["8(2,2,2,2)/1"].CommMB {
		t.Error("ternary should communicate less than 8-bit")
	}
	// Larger batches amortize: comm per prediction must fall.
	b1 := byKey["8(2,2,2,2)/1"]
	b8 := byKey["8(2,2,2,2)/8"]
	if b8.CommMB/8 >= b1.CommMB {
		t.Errorf("multi-batch per-prediction comm (%.2f) should beat single (%.2f)", b8.CommMB/8, b1.CommMB)
	}
	// At batch 1, (3,3,2) beats (4,4) on comm (paper Table 2: 18.47 < 20.72).
	if byKey["8(3,3,2)/1"].CommMB >= byKey["8(4,4)/1"].CommMB {
		t.Error("(3,3,2) should communicate less than (4,4) at batch 1")
	}
}

func TestTable3Shapes(t *testing.T) {
	rows := Table3(quickOpts())
	var binary, ternary, eight, secml Table3Row
	for _, r := range rows {
		switch r.System {
		case "binary":
			binary = r
		case "ternary":
			ternary = r
		case "8(2,2,2,2)":
			eight = r
		case "SecureML":
			secml = r
		}
	}
	if binary.CommMB >= secml.CommMB || ternary.CommMB >= secml.CommMB || eight.CommMB >= secml.CommMB {
		t.Errorf("all quantized schemes should beat SecureML comm: b=%.2f t=%.2f 8=%.2f vs %.2f",
			binary.CommMB, ternary.CommMB, eight.CommMB, secml.CommMB)
	}
	if binary.WANSec >= secml.WANSec {
		t.Errorf("binary WAN (%.2f) should beat SecureML (%.2f)", binary.WANSec, secml.WANSec)
	}
	// WAN slower than LAN for everything.
	for _, r := range rows {
		if r.WANSec <= r.LANSec {
			t.Errorf("%s: WAN %.3f <= LAN %.3f", r.System, r.WANSec, r.LANSec)
		}
	}
}

func TestTable4Shapes(t *testing.T) {
	rows := Table4(quickOpts())
	get := func(system string, batch int) Table4Row {
		for _, r := range rows {
			if r.System == system && r.Batch == batch {
				return r
			}
		}
		t.Fatalf("row %s/%d missing", system, batch)
		return Table4Row{}
	}
	big := 8 // quick mode's large batch
	// ABNN2 should beat MiniONN at the larger batch (the paper's claim:
	// 3-7x LAN at batchsize 128).
	mini := get("MiniONN", big)
	ours := get("Our binary", big)
	if ours.LANSec >= mini.LANSec {
		t.Errorf("ABNN2 binary LAN (%.2f) should beat MiniONN (%.2f) at batch %d", ours.LANSec, mini.LANSec, big)
	}
	// Comm ordering within our schemes: binary <= ternary <= 3(2,1) <= 4(2,2).
	b := get("Our binary", 1).CommMB
	tern := get("Our ternary", 1).CommMB
	s21 := get("Our 3(2,1)", 1).CommMB
	s22 := get("Our 4(2,2)", 1).CommMB
	if !(b <= tern && tern <= s21 && s21 <= s22) {
		t.Errorf("comm ordering violated: binary=%.2f ternary=%.2f 3(2,1)=%.2f 4(2,2)=%.2f", b, tern, s21, s22)
	}
}

func TestTable5Shapes(t *testing.T) {
	rows := Table5(quickOpts())
	foundRef, foundOurs := false, false
	for _, r := range rows {
		if r.Reference {
			foundRef = true
		} else {
			foundOurs = true
			if r.CommMB <= 0 {
				t.Error("our rows must have measured comm")
			}
		}
	}
	if !foundRef || !foundOurs {
		t.Error("table 5 must contain both published and measured rows")
	}
}

func TestAblationOneBatchSavesComm(t *testing.T) {
	rows := AblationOneBatch(quickOpts())
	if rows[1].CommMB >= rows[0].CommMB {
		t.Errorf("C-OT (%.2f MB) should beat naive (%.2f MB)", rows[1].CommMB, rows[0].CommMB)
	}
}

func TestAblationMultiBatchSavesComm(t *testing.T) {
	rows := AblationMultiBatch(quickOpts())
	// Multi-batch trades payload for fewer column matrices; the win is in
	// the 2*kappa column term, which dominates for small o*l. At the
	// ablation's parameters the reuse must strictly reduce total comm.
	if rows[0].CommMB >= rows[1].CommMB {
		t.Errorf("multi-batch (%.2f MB) should beat repeated one-batch (%.2f MB)", rows[0].CommMB, rows[1].CommMB)
	}
}

func TestAblationReLU(t *testing.T) {
	rows := AblationReLU(quickOpts())
	if rows[1].CommMB >= rows[0].CommMB {
		t.Errorf("optimized ReLU (%.2f MB) should beat Algorithm 2 (%.2f MB)", rows[1].CommMB, rows[0].CommMB)
	}
}

func TestAblationFragmentN(t *testing.T) {
	rows := AblationFragmentN(quickOpts())
	by := map[string]AblationRow{}
	for _, r := range rows {
		by[r.Label] = r
	}
	// (2,2,2,2) must beat (1 x 8) — the paper's Table 2 relationship —
	// and N=256 must be catastrophically worse than N=16.
	if by["8(2,2,2,2)"].CommMB >= by["8(1,1,1,1,1,1,1,1)"].CommMB {
		t.Error("N=4 should communicate less than N=2 for 8-bit weights")
	}
	if by["8(8)"].CommMB <= by["8(4,4)"].CommMB {
		t.Error("N=256 should communicate more than N=16")
	}
}

func TestAblationRing(t *testing.T) {
	rows := AblationRing(quickOpts())
	if rows[1].CommMB >= rows[0].CommMB {
		t.Errorf("l=32 requant (%.2f MB) should communicate less than l=64 (%.2f MB)", rows[1].CommMB, rows[0].CommMB)
	}
}

func TestTableCNNShapes(t *testing.T) {
	rows := TableCNN(quickOpts())
	by := map[string]TableCNNRow{}
	for _, r := range rows {
		by[r.Scheme] = r
		if r.CommMB <= 0 {
			t.Errorf("%s: empty measurement", r.Scheme)
		}
	}
	if by["binary"].CommMB >= by["8(2,2,2,2)"].CommMB {
		t.Error("binary CNN should communicate less than 8-bit")
	}
}

func TestAccuracyLadder(t *testing.T) {
	rows := Accuracy(quickOpts())
	by := map[string]AccuracyRow{}
	for _, r := range rows {
		if r.SecureMatch != 1.0 {
			t.Errorf("%s: secure agreement %.2f, want 1.0", r.Scheme, r.SecureMatch)
		}
		by[r.Scheme] = r
	}
	// 8-bit must not trail binary; it should track float closely.
	if by["8(2,2,2,2)"].QuantAcc+0.1 < by["binary"].QuantAcc {
		t.Errorf("8-bit accuracy %.3f far below binary %.3f", by["8(2,2,2,2)"].QuantAcc, by["binary"].QuantAcc)
	}
	if by["8(2,2,2,2)"].QuantAcc < by["8(2,2,2,2)"].FloatAcc-0.15 {
		t.Errorf("8-bit accuracy %.3f far below float %.3f", by["8(2,2,2,2)"].QuantAcc, by["8(2,2,2,2)"].FloatAcc)
	}
}

func TestAblationXONN(t *testing.T) {
	rows := AblationXONN(quickOpts())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.CommMB <= 0 || r.WallSec <= 0 {
			t.Errorf("row %q has empty measurement", r.Label)
		}
	}
}

func TestTableFormatting(t *testing.T) {
	tb := &table{header: []string{"a", "bb"}}
	tb.add("x", "y")
	out := tb.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "-") {
		t.Errorf("table output malformed:\n%s", out)
	}
}

func itoa(v int) string { return strconv.Itoa(v) }

// TestTableBankSplit is the acceptance check behind the correlation
// bank: for every batch size, the online-only row (banked provisioning)
// must land strictly below the end-to-end row (inline offline phase) in
// both wall time and wire traffic.
func TestTableBankSplit(t *testing.T) {
	rows := TableBank(quickOpts())
	if len(rows) == 0 || len(rows)%2 != 0 {
		t.Fatalf("got %d rows, want a non-empty even number", len(rows))
	}
	for i := 0; i+1 < len(rows); i += 2 {
		e2e, online := rows[i], rows[i+1]
		if e2e.Mode != "end-to-end" || online.Mode != "online-only" || e2e.Batch != online.Batch {
			t.Fatalf("row pairing broken: %+v / %+v", e2e, online)
		}
		if online.CommMB >= e2e.CommMB {
			t.Errorf("batch %d: online-only comm %.3f MB not below end-to-end %.3f MB",
				e2e.Batch, online.CommMB, e2e.CommMB)
		}
		if online.WallSec >= e2e.WallSec {
			t.Errorf("batch %d: online-only wall %.4fs not below end-to-end %.4fs",
				e2e.Batch, online.WallSec, e2e.WallSec)
		}
	}
}

// TestBankBaselineFile keeps the checked-in BENCH_baseline.json honest:
// it must parse, hold bank-split rows, and every recorded online-only
// row must beat its end-to-end sibling — the property the baseline
// exists to document. Regenerate with:
//
//	go run ./cmd/abnn2-bench -bank -baseline-out BENCH_baseline.json
func TestBankBaselineFile(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_baseline.json")
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	var doc struct {
		Table string         `json:"table"`
		Rows  []TableBankRow `json:"rows"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("parse baseline: %v", err)
	}
	if doc.Table != "bank-split" {
		t.Fatalf("baseline table %q, want bank-split", doc.Table)
	}
	e2e := map[int]TableBankRow{}
	online := map[int]TableBankRow{}
	for _, r := range doc.Rows {
		switch r.Mode {
		case "end-to-end":
			e2e[r.Batch] = r
		case "online-only":
			online[r.Batch] = r
		default:
			t.Errorf("unknown mode %q", r.Mode)
		}
	}
	if len(e2e) == 0 || len(e2e) != len(online) {
		t.Fatalf("baseline holds %d end-to-end and %d online-only rows", len(e2e), len(online))
	}
	for batch, e := range e2e {
		o, ok := online[batch]
		if !ok {
			t.Errorf("batch %d has no online-only row", batch)
			continue
		}
		if o.CommMB >= e.CommMB || o.WallSec >= e.WallSec {
			t.Errorf("batch %d: recorded online-only (%.4fs, %.3f MB) not below end-to-end (%.4fs, %.3f MB)",
				batch, o.WallSec, o.CommMB, e.WallSec, e.CommMB)
		}
	}
}

// TestTableBankDurable is the acceptance check behind the durable store:
// a warm start (recovered persisted correlations) must reach its first
// banked prediction faster and with less wire traffic than a cold start
// (remote offline session on the boot path), and recovery must actually
// have found the persisted records.
func TestTableBankDurable(t *testing.T) {
	rows := TableBankDurable(quickOpts())
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want cold + warm", len(rows))
	}
	cold, warm := rows[0], rows[1]
	if cold.Mode != "cold-start" || warm.Mode != "warm-start" {
		t.Fatalf("row order broken: %+v / %+v", cold, warm)
	}
	if cold.Recovered != 0 {
		t.Errorf("cold start recovered %d records from a fresh directory", cold.Recovered)
	}
	if warm.Recovered < 1 {
		t.Errorf("warm start recovered %d records, want at least 1", warm.Recovered)
	}
	if warm.CommMB >= cold.CommMB {
		t.Errorf("warm-start comm %.3f MB not below cold-start %.3f MB", warm.CommMB, cold.CommMB)
	}
	if warm.FirstSec >= cold.FirstSec {
		t.Errorf("warm-start first prediction %.4fs not below cold-start %.4fs",
			warm.FirstSec, cold.FirstSec)
	}
}

// TestBankDurableFile keeps the checked-in BENCH_durable.json honest: it
// must parse, hold one cold and one warm row, and the recorded warm
// start must beat the cold start on both axes. Regenerate with:
//
//	go run ./cmd/abnn2-bench -bank-durable -baseline-out BENCH_durable.json
func TestBankDurableFile(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_durable.json")
	if err != nil {
		t.Fatalf("read durable baseline: %v", err)
	}
	var doc struct {
		Table string            `json:"table"`
		Rows  []TableDurableRow `json:"rows"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("parse durable baseline: %v", err)
	}
	if doc.Table != "bank-durable" {
		t.Fatalf("baseline table %q, want bank-durable", doc.Table)
	}
	modes := map[string]TableDurableRow{}
	for _, r := range doc.Rows {
		modes[r.Mode] = r
	}
	cold, okC := modes["cold-start"]
	warm, okW := modes["warm-start"]
	if !okC || !okW || len(doc.Rows) != 2 {
		t.Fatalf("baseline holds rows %v, want exactly cold-start and warm-start", doc.Rows)
	}
	if warm.Recovered < 1 {
		t.Errorf("recorded warm start recovered %d records", warm.Recovered)
	}
	if warm.CommMB >= cold.CommMB || warm.FirstSec >= cold.FirstSec {
		t.Errorf("recorded warm start (%.4fs, %.3f MB) not below cold start (%.4fs, %.3f MB)",
			warm.FirstSec, warm.CommMB, cold.FirstSec, cold.CommMB)
	}
}
