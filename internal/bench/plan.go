package bench

import (
	"fmt"
	"sync"

	"abnn2/internal/core"
	"abnn2/internal/nn"
	"abnn2/internal/plan"
	"abnn2/internal/prg"
	"abnn2/internal/quant"
	"abnn2/internal/ring"
	"abnn2/internal/trace"
	"abnn2/internal/transport"
)

// TablePlanRow records one measured run of the planner comparison: a
// per-layer backend plan (mixed or uniform) executed end to end.
type TablePlanRow struct {
	Plan    string `json:"plan"`
	Uniform bool   `json:"uniform"`
	// OfflineMB is the offline-phase wire traffic (from the "offline"
	// trace span), the part of the session a plan actually moves; CommMB
	// is the whole session including the plan-independent online phase.
	OfflineMB float64 `json:"offline_mb"`
	CommMB    float64 `json:"comm_mb"`
	LANSec    float64 `json:"lan_sec"`
	WANSec    float64 `json:"wan_sec"`
}

// offlineComm sums one party's view of the offline-phase spans, giving
// the measured counterpart of Estimate.TotalCommBits.
type offlineComm struct {
	mu    sync.Mutex
	bytes int64
	next  trace.Sink
}

func (s *offlineComm) Emit(sp trace.Span) {
	if sp.Name == "offline" && sp.Party == "client" {
		s.mu.Lock()
		s.bytes += sp.Bytes()
		s.mu.Unlock()
	}
	if s.next != nil {
		s.next.Emit(sp)
	}
}

// planRingBits is the ring width of the planner comparison (the paper's
// CNN evaluation width).
const planRingBits = 32

// planKeyBits is the Paillier key size the planner comparison runs the
// MiniONN backend with. Smaller than the paper's 1024 so the
// HE-uniform baseline row stays measurable on one core; key size scales
// MiniONN's wire and CPU cost together, so the crossover structure the
// table demonstrates is the same one the full-size key produces on
// real hardware.
const planKeyBits = 512

// PlanReferenceModel is the planner evaluation network: a 2-bit-weight
// CNN (conv 1->4 3x3 on 28x28, fused ReLU+pool 2, FC 676->10) whose
// two layers have opposite cost structure — the convolution amortizes
// one OT per weight fragment over 676 spatial positions (ABNN2
// territory on wire and clock alike), while the wide FC layer needs
// thousands of OTs in chunked flights, where the HE baseline's two
// compact ciphertext transfers win on a thin high-latency link. The
// multi-bit scheme keeps QUOTIENT inapplicable, so the planner must
// find the crossover rather than a ternary shortcut.
func PlanReferenceModel() *nn.QuantizedModel {
	scheme := quant.Uniform(2, 2) // "4(2,2)": eta=4 split into two 2-bit fragments
	rng := prg.New(prg.SeedFromInt(53))
	min, max := scheme.Range()
	span := int(max - min + 1)
	randW := func(n int) []int64 {
		w := make([]int64, n)
		for i := range w {
			w[i] = min + int64(rng.Intn(span))
		}
		return w
	}
	channels := 4
	conv := &nn.ConvSpec{Ci: 1, H: 28, W: 28, Kh: 3, Kw: 3, Stride: 1, Pad: 0}
	fcIn := channels * 13 * 13
	return &nn.QuantizedModel{Frac: 8, Layers: []*nn.QuantizedLayer{
		{
			In: conv.InputSize(), Out: channels,
			W: randW(channels * conv.ColRows()), B: randW(channels),
			Scale: 1, ReLU: true, Scheme: scheme,
			Conv: conv, Pool: &nn.PoolSpec{K: 2},
		},
		{
			In: fcIn, Out: nn.NumClasses,
			W: randW(nn.NumClasses * fcIn), B: randW(nn.NumClasses),
			Scale: 1, Scheme: scheme,
		},
	}}
}

// TablePlan runs the protocol-planner comparison on the reference CNN:
// the plan the cost model chooses under the WAN link (or Options.Plan
// when set) against every applicable uniform single-backend plan, each
// executed for real over a metered pipe. The predicted table prints
// first, then the measured rows it is judged against.
func TablePlan(opt Options) []TablePlanRow {
	rg := ring.New(planRingBits)
	qm := PlanReferenceModel()
	arch := core.ArchOf(qm)
	batch := 1
	keyBits := planKeyBits
	link := plan.WAN()
	if opt.Link != "" {
		var err error
		if link, err = plan.ParseLink(opt.Link); err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
	}
	in := plan.Input{Arch: arch, RingBits: planRingBits, Batch: batch, Link: link, MiniONNBits: keyBits}
	val := opt.Plan
	if val == "" {
		val = "auto"
	}
	chosen, est, err := plan.FromFlag(val, in)
	if err != nil {
		panic(fmt.Sprintf("bench: plan %q: %v", val, err))
	}
	if est != nil {
		fmt.Fprintf(opt.out(), "Planner: predicted offline cost under %s link (keyBits=%d)\n%s\n",
			link.Name, keyBits, est.Table())
	}

	type entry struct {
		p       *plan.Plan
		uniform bool
	}
	_, uni := chosen.IsUniform()
	entries := []entry{{chosen, uni}}
	for _, b := range core.Backends() {
		u := plan.Uniform(b, len(arch.Layers))
		if u.Validate(arch, batch) != nil {
			continue // e.g. QUOTIENT on a multi-bit scheme
		}
		if u.String() == chosen.String() {
			continue
		}
		entries = append(entries, entry{u, true})
	}

	var rows []TablePlanRow
	for _, e := range entries {
		sched, err := e.p.Schedule()
		if err != nil {
			panic(fmt.Sprintf("bench: plan %s: %v", e.p, err))
		}
		oc := &offlineComm{next: opt.Trace}
		ropt := opt
		ropt.Trace = oc
		meas, err := runPlanned(rg, qm, batch, sched, keyBits, ropt, "plan "+e.p.String())
		if err != nil {
			panic(fmt.Sprintf("bench: plan %s: %v", e.p, err))
		}
		rows = append(rows, TablePlanRow{
			Plan:      e.p.String(),
			Uniform:   e.uniform,
			OfflineMB: float64(oc.bytes) / (1 << 20),
			CommMB:    meas.CommMB(),
			LANSec:    meas.timeUnder(transport.LAN),
			WANSec:    meas.timeUnder(transport.WANTable3),
		})
	}
	t := &table{header: []string{"plan", "LAN(s)", "WAN(s)", "offline(MB)", "comm(MB)"}}
	for _, r := range rows {
		t.add(r.Plan, secs(r.LANSec), secs(r.WANSec), mb(r.OfflineMB), mb(r.CommMB))
	}
	fmt.Fprintf(opt.out(), "Planner: measured, reference CNN, l=%d, batch=%d\n%s\n", planRingBits, batch, t)
	return rows
}

// runPlanned measures one offline+online secure inference under a
// per-layer backend schedule (nil = the all-ABNN2 default).
func runPlanned(rg ring.Ring, qm *nn.QuantizedModel, batch int, sched core.Schedule, miniONNBits int, opt Options, label string) (measurement, error) {
	scheme := qm.Layers[0].Scheme
	arch := core.ArchOf(qm)
	return runPairT(opt, label,
		func(conn transport.Conn, tr *trace.Tracer) error {
			p := core.Params{Ring: rg, Scheme: scheme, Workers: opt.Workers, Trace: tr, MiniONNBits: miniONNBits}
			cli, err := core.NewClientEngine(conn, arch, p, core.ReLUGC, prg.New(prg.SeedFromInt(11)))
			if err != nil {
				return err
			}
			if err := cli.SetSchedule(sched); err != nil {
				return err
			}
			if err := cli.Offline(batch); err != nil {
				return err
			}
			X := prg.New(prg.SeedFromInt(12)).Mat(rg, arch.InputSize(), batch)
			_, err = cli.Predict(X)
			return err
		},
		func(conn transport.Conn, tr *trace.Tracer) error {
			p := core.Params{Ring: rg, Scheme: scheme, Workers: opt.Workers, Trace: tr, MiniONNBits: miniONNBits}
			srv, err := core.NewServerEngine(conn, qm, p, core.ReLUGC)
			if err != nil {
				return err
			}
			if err := srv.SetSchedule(sched); err != nil {
				return err
			}
			if err := srv.Offline(batch); err != nil {
				return err
			}
			return srv.Online()
		},
	)
}
