package bench

import (
	"fmt"
	"sync"

	"abnn2/internal/core"
	"abnn2/internal/nn"
	"abnn2/internal/prg"
	"abnn2/internal/quant"
	"abnn2/internal/ring"
	"abnn2/internal/transport"
)

// AccuracyRow reports classification quality for one quantization scheme
// and the secure/plaintext agreement rate.
type AccuracyRow struct {
	Scheme      string
	FloatAcc    float64
	QuantAcc    float64
	SecureMatch float64 // fraction of secure predictions equal to plaintext quantized
}

// Accuracy reproduces the paper's *motivation* (section 1: quantization
// "provides a much more efficient solution ... practically and
// securely"): it trains the Figure 4 network on the synthetic dataset,
// quantizes it at every bitwidth, reports the accuracy ladder, and runs
// a batch through the secure protocol to confirm prediction-level
// equality with plaintext quantized inference.
func Accuracy(opt Options) []AccuracyRow {
	trainN, testN, secureN := 2000, 400, 16
	hidden := 128
	epochs := 3
	if opt.Quick {
		trainN, testN, secureN = 400, 100, 4
		hidden = 24
		epochs = 2
	}
	ds := nn.SyntheticMNIST(trainN+testN, 0.25, 42)
	model := nn.NewModel(nn.ImagePixels, hidden, hidden, nn.NumClasses)
	model.InitXavier(prg.New(prg.SeedFromInt(1)))
	cfg := nn.DefaultTrainConfig()
	cfg.Epochs = epochs
	model.Train(ds.X[:trainN], ds.Labels[:trainN], cfg)
	testX, testY := ds.X[trainN:], ds.Labels[trainN:]
	floatAcc := model.Accuracy(testX, testY)

	schemes := []quant.Scheme{
		quant.Binary(), quant.Ternary(),
		quant.NewBitScheme(true, 2, 1),
		quant.Uniform(2, 2), quant.Uniform(2, 3), quant.Uniform(2, 4),
	}
	var rows []AccuracyRow
	for _, sc := range schemes {
		qm := nn.Quantize(model, sc, 8)
		qAcc := qm.Accuracy(testX, testY)
		match := secureAgreement(qm, sc, testX[:secureN], opt.Workers)
		rows = append(rows, AccuracyRow{
			Scheme:      sc.Name(),
			FloatAcc:    floatAcc,
			QuantAcc:    qAcc,
			SecureMatch: match,
		})
	}
	t := &table{header: []string{"scheme", "float acc", "quant acc", "secure==plain"}}
	for _, r := range rows {
		t.add(r.Scheme, fmt.Sprintf("%.1f%%", 100*r.FloatAcc),
			fmt.Sprintf("%.1f%%", 100*r.QuantAcc), fmt.Sprintf("%.0f%%", 100*r.SecureMatch))
	}
	fmt.Fprintf(opt.out(), "Accuracy ladder (synthetic MNIST-shaped data, Fig.4-style network)\n%s\n", t)
	return rows
}

// secureAgreement runs one secure batch and returns the fraction of
// predictions identical to plaintext quantized inference (expected: 1.0,
// the protocol is exact over Z_2^64).
func secureAgreement(qm *nn.QuantizedModel, sc quant.Scheme, inputs [][]float64, workers int) float64 {
	rg := ring.New(64)
	p := core.Params{Ring: rg, Scheme: sc, Workers: workers}
	arch := core.ArchOf(qm)
	batch := len(inputs)
	ca, cb := transport.Pipe()
	defer ca.Close()
	var (
		serr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv, err := core.NewServerEngine(ca, qm, p, core.ReLUGC)
		if err == nil {
			err = srv.Offline(batch)
		}
		if err == nil {
			err = srv.Online()
		}
		serr = err
	}()
	cli, err := core.NewClientEngine(cb, arch, p, core.ReLUGC, prg.New(prg.SeedFromInt(2)))
	if err != nil {
		panic(err)
	}
	if err := cli.Offline(batch); err != nil {
		panic(err)
	}
	X := ring.NewMat(arch.InputSize(), batch)
	fp := ring.NewFixedPoint(rg, qm.Frac)
	for k, x := range inputs {
		for i, v := range x {
			X.Set(i, k, fp.Encode(v))
		}
	}
	out, err := cli.Predict(X)
	wg.Wait()
	if serr != nil || err != nil {
		panic(fmt.Sprintf("bench: accuracy secure run: %v %v", serr, err))
	}
	agree := 0
	for k, x := range inputs {
		best := 0
		for i := 1; i < out.Rows; i++ {
			if rg.Signed(out.At(i, k)) > rg.Signed(out.At(best, k)) {
				best = i
			}
		}
		if best == qm.Predict(x) {
			agree++
		}
	}
	return float64(agree) / float64(batch)
}
