package bench

import (
	"fmt"
	"time"

	"abnn2/internal/baseline"
	"abnn2/internal/core"
	"abnn2/internal/prg"
	"abnn2/internal/quant"
	"abnn2/internal/ring"
	"abnn2/internal/transport"
)

// Ablation studies for the design choices DESIGN.md calls out. Each
// returns structured rows and prints a table.

// AblationRow is a generic labelled measurement.
type AblationRow struct {
	Label   string
	WallSec float64
	WANSec  float64
	CommMB  float64
}

// AblationOneBatch compares the section 4.1.3 correlated-OT packaging
// (N-1 ciphertexts) against the naive Fig. 3 protocol (N ciphertexts)
// for single-prediction offline matmul.
func AblationOneBatch(opt Options) []AblationRow {
	m, n := 128, 512
	if opt.Quick {
		n = 64
	}
	rg := ring.New(32)
	scheme := quant.Uniform(2, 4)
	rows := []AblationRow{}
	for _, mode := range []core.Mode{core.NaiveN, core.OneBatch} {
		meas, err := runOfflineMode(rg, scheme, layerShape{m, n}, 1, mode, opt.Workers)
		if err != nil {
			panic(fmt.Sprintf("bench: one-batch ablation %v: %v", mode, err))
		}
		rows = append(rows, AblationRow{
			Label:   mode.String(),
			WallSec: meas.Wall.Seconds(),
			WANSec:  meas.timeUnder(transport.WANTable3),
			CommMB:  meas.CommMB(),
		})
	}
	printAblation(opt, "Ablation: one-batch C-OT vs naive 1-of-N (128x"+fmt.Sprint(n)+", 8(2,2,2,2), l=32)", rows)
	return rows
}

// AblationMultiBatch compares the section 4.1.2 OT-reuse scheme against
// running the one-batch protocol once per column, for a batch of o
// predictions.
func AblationMultiBatch(opt Options) []AblationRow {
	m, n, o := 128, 256, 16
	if opt.Quick {
		n, o = 64, 4
	}
	rg := ring.New(32)
	scheme := quant.Uniform(2, 4)
	rows := []AblationRow{}

	multi, err := runOfflineMode(rg, scheme, layerShape{m, n}, o, core.MultiBatch, opt.Workers)
	if err != nil {
		panic(fmt.Sprintf("bench: multi-batch ablation: %v", err))
	}
	rows = append(rows, AblationRow{
		Label:   fmt.Sprintf("multi-batch (1 OT reused for %d columns)", o),
		WallSec: multi.Wall.Seconds(),
		WANSec:  multi.timeUnder(transport.WANTable3),
		CommMB:  multi.CommMB(),
	})

	// Naive: o independent one-batch runs on one session.
	var naive measurement
	start := time.Now()
	meas, err := runRepeatedOneBatch(rg, scheme, layerShape{m, n}, o, opt.Workers)
	if err != nil {
		panic(fmt.Sprintf("bench: repeated one-batch: %v", err))
	}
	naive = meas
	naive.Wall = time.Since(start)
	rows = append(rows, AblationRow{
		Label:   fmt.Sprintf("repeated one-batch (%d separate runs)", o),
		WallSec: naive.Wall.Seconds(),
		WANSec:  naive.timeUnder(transport.WANTable3),
		CommMB:  naive.CommMB(),
	})
	printAblation(opt, "Ablation: multi-batch OT reuse vs per-column OTs", rows)
	return rows
}

// AblationReLU compares the Algorithm-2 GC ReLU against the section 4.2
// optimised (sign-leaking) protocol on the Figure 4 network.
func AblationReLU(opt Options) []AblationRow {
	shapes := fig4Shapes
	batch := 8
	if opt.Quick {
		shapes = []layerShape{{32, 96}, {32, 32}, {10, 32}}
		batch = 2
	}
	rg := ring.New(32)
	rows := []AblationRow{}
	for _, v := range []core.ReLUVariant{core.ReLUGC, core.ReLUOptimized} {
		meas, err := runEndToEnd(rg, quant.Uniform(2, 4), shapes, batch, v, opt, "ablation-relu "+v.String())
		if err != nil {
			panic(fmt.Sprintf("bench: relu ablation %v: %v", v, err))
		}
		rows = append(rows, AblationRow{
			Label:   "ReLU " + v.String(),
			WallSec: meas.Wall.Seconds(),
			WANSec:  meas.timeUnder(transport.WANQuotient),
			CommMB:  meas.CommMB(),
		})
	}
	printAblation(opt, fmt.Sprintf("Ablation: Algorithm-2 ReLU vs optimized sign-bit ReLU (batch %d)", batch), rows)
	return rows
}

// AblationFragmentN sweeps the fragment size for 8-bit weights,
// validating the paper's claim that 2-bit fragments (N = 4) are the sweet
// spot and N = 16 is the practical maximum.
func AblationFragmentN(opt Options) []AblationRow {
	m, n := 128, 512
	if opt.Quick {
		n = 64
	}
	rg := ring.New(32)
	schemes := []quant.Scheme{
		quant.OneBit(8, true),          // N=2,  gamma=8
		quant.Uniform(2, 4),            // N=4,  gamma=4
		quant.NewBitScheme(true, 4, 4), // N=16, gamma=2
		quant.NewBitScheme(true, 8),    // N=256, gamma=1
	}
	rows := []AblationRow{}
	for _, sc := range schemes {
		meas, err := runOfflineMode(rg, sc, layerShape{m, n}, 1, core.OneBatch, opt.Workers)
		if err != nil {
			panic(fmt.Sprintf("bench: fragment ablation %s: %v", sc.Name(), err))
		}
		rows = append(rows, AblationRow{
			Label:   sc.Name(),
			WallSec: meas.Wall.Seconds(),
			WANSec:  meas.timeUnder(transport.WANTable3),
			CommMB:  meas.CommMB(),
		})
	}
	printAblation(opt, "Ablation: fragment size sweep for 8-bit weights (one-batch)", rows)
	return rows
}

// AblationXONN compares the two binary-network design points: ABNN2 with
// binary weights (OT-based linear layers, full-precision activations)
// vs an XONN-style fully binarized network evaluated entirely inside one
// garbled circuit (weights AND activations binary). Same topology.
func AblationXONN(opt Options) []AblationRow {
	sizes := []int{784, 128, 10}
	if opt.Quick {
		sizes = []int{96, 32, 10}
	}
	rows := []AblationRow{}

	// ABNN2, binary weights, batch 1, l=32.
	shapes := []layerShape{{sizes[1], sizes[0]}, {sizes[2], sizes[1]}}
	meas, err := runEndToEnd(ring.New(32), quant.Binary(), shapes, 1, core.ReLUGC, opt, "ablation-xonn")
	if err != nil {
		panic(fmt.Sprintf("bench: xonn ablation abnn2: %v", err))
	}
	rows = append(rows, AblationRow{
		Label:   "ABNN2 binary weights (OT linear + GC ReLU)",
		WallSec: meas.Wall.Seconds(),
		WANSec:  meas.timeUnder(transport.WANQuotient),
		CommMB:  meas.CommMB(),
	})

	// XONN-style fully binary network, one GC for everything.
	bnn := baseline.NewBNN(prg.New(prg.SeedFromInt(41)), sizes...)
	input := make([]byte, sizes[0])
	xm, err := runPair(
		func(conn transport.Conn) error {
			_, err := baseline.XONNQuery(conn, bnn, input, 3, prg.New(prg.SeedFromInt(42)))
			return err
		},
		func(conn transport.Conn) error {
			return baseline.XONNServe(conn, bnn, 3, prg.New(prg.SeedFromInt(43)))
		},
	)
	if err != nil {
		panic(fmt.Sprintf("bench: xonn ablation xonn: %v", err))
	}
	rows = append(rows, AblationRow{
		Label:   "XONN-style fully binary (single GC)",
		WallSec: xm.Wall.Seconds(),
		WANSec:  xm.timeUnder(transport.WANQuotient),
		CommMB:  xm.CommMB(),
	})
	printAblation(opt, "Ablation: binary-weight ABNN2 vs XONN-style binary network (batch 1)", rows)
	return rows
}

// AblationRing compares end-to-end cost on Z_2^64 (no rescaling, the
// always-safe configuration) against Z_2^32 with requantization (the
// truncation extension): halving l roughly halves every payload.
func AblationRing(opt Options) []AblationRow {
	shapes := fig4Shapes
	batch := 8
	if opt.Quick {
		shapes = []layerShape{{32, 96}, {32, 32}, {10, 32}}
		batch = 2
	}
	scheme := quant.Uniform(2, 4)
	rows := []AblationRow{}
	for _, cfg := range []struct {
		label   string
		bits    uint
		requant bool
	}{
		{"l=64, no rescale", 64, false},
		{"l=32 + requantization", 32, true},
	} {
		qm := syntheticQuantized(scheme, shapes)
		if cfg.requant {
			for _, l := range qm.Layers {
				l.ReqC, l.ReqT = 13, 12 // ~Scale=1 rescale; cost-equivalent
			}
		}
		meas, err := runEndToEndModel(ring.New(cfg.bits), qm, batch, core.ReLUGC, opt, "ablation-ring "+cfg.label)
		if err != nil {
			panic(fmt.Sprintf("bench: ring ablation %s: %v", cfg.label, err))
		}
		rows = append(rows, AblationRow{
			Label:   cfg.label,
			WallSec: meas.Wall.Seconds(),
			WANSec:  meas.timeUnder(transport.WANQuotient),
			CommMB:  meas.CommMB(),
		})
	}
	printAblation(opt, fmt.Sprintf("Ablation: ring width (batch %d; l=32 needs the requantization extension)", batch), rows)
	return rows
}

func printAblation(opt Options, title string, rows []AblationRow) {
	t := &table{header: []string{"variant", "wall(s)", "WAN(s)", "comm(MB)"}}
	for _, r := range rows {
		t.add(r.Label, secs(r.WallSec), secs(r.WANSec), mb(r.CommMB))
	}
	fmt.Fprintf(opt.out(), "%s\n%s\n", title, t)
}

// runOfflineMode is runOfflineNetwork for a single layer with an explicit
// packaging mode.
func runOfflineMode(rg ring.Ring, scheme quant.Scheme, sh layerShape, o int, mode core.Mode, workers int) (measurement, error) {
	p := core.Params{Ring: rg, Scheme: scheme, Workers: workers}
	return runPair(
		func(conn transport.Conn) error {
			rng := prg.New(prg.SeedFromInt(31))
			ct, err := core.NewClientTriplets(conn, p, 1, rng)
			if err != nil {
				return err
			}
			R := rng.Mat(rg, sh.N, o)
			_, err = ct.GenerateClient(core.MatShape{M: sh.M, N: sh.N, O: o}, R, mode)
			return err
		},
		func(conn transport.Conn) error {
			st, err := core.NewServerTriplets(conn, p, 1)
			if err != nil {
				return err
			}
			rng := prg.New(prg.SeedFromInt(32))
			min, max := scheme.Range()
			span := int(max - min + 1)
			W := make([]int64, sh.M*sh.N)
			for i := range W {
				W[i] = min + int64(rng.Intn(span))
			}
			_, err = st.GenerateServer(core.MatShape{M: sh.M, N: sh.N, O: o}, W, mode)
			return err
		},
	)
}

// runRepeatedOneBatch runs o sequential one-batch generations over a
// single session pair (the strawman the multi-batch scheme replaces).
func runRepeatedOneBatch(rg ring.Ring, scheme quant.Scheme, sh layerShape, o int, workers int) (measurement, error) {
	p := core.Params{Ring: rg, Scheme: scheme, Workers: workers}
	return runPair(
		func(conn transport.Conn) error {
			rng := prg.New(prg.SeedFromInt(33))
			ct, err := core.NewClientTriplets(conn, p, 1, rng)
			if err != nil {
				return err
			}
			for k := 0; k < o; k++ {
				R := rng.Mat(rg, sh.N, 1)
				if _, err := ct.GenerateClient(core.MatShape{M: sh.M, N: sh.N, O: 1}, R, core.OneBatch); err != nil {
					return err
				}
			}
			return nil
		},
		func(conn transport.Conn) error {
			st, err := core.NewServerTriplets(conn, p, 1)
			if err != nil {
				return err
			}
			rng := prg.New(prg.SeedFromInt(34))
			min, max := scheme.Range()
			span := int(max - min + 1)
			W := make([]int64, sh.M*sh.N)
			for i := range W {
				W[i] = min + int64(rng.Intn(span))
			}
			for k := 0; k < o; k++ {
				if _, err := st.GenerateServer(core.MatShape{M: sh.M, N: sh.N, O: 1}, W, core.OneBatch); err != nil {
					return err
				}
			}
			return nil
		},
	)
}
