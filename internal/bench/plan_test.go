package bench

import "testing"

// TestTablePlanShapes is the planner's acceptance gate: under the WAN
// preset the cost model must pick a genuinely mixed per-layer schedule
// for the reference CNN, and that schedule's *measured* offline wire
// traffic (summed from the "offline" trace spans of a real run) must
// strictly beat every uniform single-backend schedule. Byte counts are
// deterministic under seeded randomness, so the comparison is exact —
// no timing noise to calibrate around.
func TestTablePlanShapes(t *testing.T) {
	rows := TablePlan(quickOpts())
	if len(rows) < 3 {
		t.Fatalf("got %d rows, want the chosen plan plus at least two uniform baselines", len(rows))
	}
	chosen := rows[0]
	if chosen.Uniform {
		t.Fatalf("planner chose the uniform plan %q under WAN; expected a mixed schedule", chosen.Plan)
	}
	if chosen.OfflineMB <= 0 {
		t.Fatalf("chosen plan %q recorded no offline traffic", chosen.Plan)
	}
	for _, r := range rows[1:] {
		if !r.Uniform {
			continue
		}
		if chosen.OfflineMB >= r.OfflineMB {
			t.Errorf("mixed plan %q offline %.3f MB does not beat uniform %q offline %.3f MB",
				chosen.Plan, chosen.OfflineMB, r.Plan, r.OfflineMB)
		}
	}
}
