package bench

import (
	"fmt"

	"abnn2/internal/core"
	"abnn2/internal/prg"
	"abnn2/internal/quant"
	"abnn2/internal/ring"
	"abnn2/internal/transport"
)

// Table2Row records the offline triplet-generation cost for the 3-layer
// network under one fragmentation scheme and batch size.
type Table2Row struct {
	Eta    string // weight bitwidth group ("8", "6", ... or "-")
	Scheme string // fragmentation designation
	Batch  int
	LANSec float64 // compute + LAN-model time
	CommMB float64
}

// table2Schemes mirrors the paper's row set: every fragmentation of
// eta in {8,6,4,3}, plus ternary and binary.
var table2Schemes = []struct {
	eta    string
	scheme quant.Scheme
}{
	{"8", quant.OneBit(8, true)},
	{"8", quant.Uniform(2, 4)},
	{"8", quant.NewBitScheme(true, 3, 3, 2)},
	{"8", quant.NewBitScheme(true, 4, 4)},
	{"6", quant.OneBit(6, true)},
	{"6", quant.NewBitScheme(true, 2, 2, 2)},
	{"6", quant.NewBitScheme(true, 3, 3)},
	{"4", quant.OneBit(4, true)},
	{"4", quant.NewBitScheme(true, 2, 2)},
	{"4", quant.NewBitScheme(true, 4)},
	{"3", quant.OneBit(3, true)},
	{"3", quant.NewBitScheme(true, 2, 1)},
	{"3", quant.NewBitScheme(true, 3)},
	{"-", quant.Ternary()},
	{"-", quant.Binary()},
}

// Table2 reproduces the paper's Table 2: offline dot-product triplet
// generation for the Figure 4 network over Z_2^32 in the LAN setting,
// for every fragmentation scheme and batch size.
func Table2(opt Options) []Table2Row {
	batches := []int{1, 32, 64, 128}
	shapes := fig4Shapes
	if opt.Quick {
		batches = []int{1, 8}
		shapes = []layerShape{{32, 96}, {32, 32}, {10, 32}}
	}
	rg := ring.New(32)
	var rows []Table2Row
	for _, sc := range table2Schemes {
		for _, batch := range batches {
			m, err := runOfflineNetwork(rg, sc.scheme, shapes, batch, opt.Workers)
			if err != nil {
				panic(fmt.Sprintf("bench: table2 %s batch %d: %v", sc.scheme.Name(), batch, err))
			}
			rows = append(rows, Table2Row{
				Eta:    sc.eta,
				Scheme: sc.scheme.Name(),
				Batch:  batch,
				LANSec: m.timeUnder(transport.LAN),
				CommMB: m.CommMB(),
			})
		}
	}
	t := &table{header: []string{"eta", "scheme", "batch", "LAN(s)", "comm(MB)"}}
	for _, r := range rows {
		t.add(r.Eta, r.Scheme, fmt.Sprint(r.Batch), secs(r.LANSec), mb(r.CommMB))
	}
	fmt.Fprintf(opt.out(), "Table 2: offline triplet generation, Fig.4 network, l=32, LAN\n%s\n", t)
	return rows
}

// runOfflineNetwork generates the offline triplets for every layer of a
// network, measuring the combined cost.
func runOfflineNetwork(rg ring.Ring, scheme quant.Scheme, shapes []layerShape, batch int, workers int) (measurement, error) {
	p := core.Params{Ring: rg, Scheme: scheme, Workers: workers}
	mode := core.ModeFor(batch)
	return runPair(
		func(conn transport.Conn) error {
			rng := prg.New(prg.SeedFromInt(1))
			ct, err := core.NewClientTriplets(conn, p, 1, rng)
			if err != nil {
				return err
			}
			for _, sh := range shapes {
				R := rng.Mat(rg, sh.N, batch)
				if _, err := ct.GenerateClient(core.MatShape{M: sh.M, N: sh.N, O: batch}, R, mode); err != nil {
					return err
				}
			}
			return nil
		},
		func(conn transport.Conn) error {
			st, err := core.NewServerTriplets(conn, p, 1)
			if err != nil {
				return err
			}
			wrng := prg.New(prg.SeedFromInt(2))
			min, max := scheme.Range()
			span := int(max - min + 1)
			for _, sh := range shapes {
				W := make([]int64, sh.M*sh.N)
				for i := range W {
					W[i] = min + int64(wrng.Intn(span))
				}
				if _, err := st.GenerateServer(core.MatShape{M: sh.M, N: sh.N, O: batch}, W, mode); err != nil {
					return err
				}
			}
			return nil
		},
	)
}
