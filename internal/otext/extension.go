package otext

import (
	"fmt"

	"abnn2/internal/bitmat"
	"abnn2/internal/prg"
	"abnn2/internal/transport"
)

var oracle = prg.NewFastOracle("otext/pad")

// Sender is the OT-extension sender: the party that, after each Extend
// round, can derive the pad for every candidate choice value. In ABNN2's
// multiplication protocol the *client* (holding the random share r) plays
// this role. A Sender is bound to one connection and one code and must be
// paired with exactly one Receiver performing the same sequence of calls.
// Not safe for concurrent use.
type Sender struct {
	conn    transport.Conn
	code    Code
	session uint64
	s       []byte // secret column-selection bits, WidthBits/8 bytes
	cols    []*prg.PRG
	counter uint64
}

// Receiver is the OT-extension receiver: the party whose per-OT choice
// selects which pad it learns. In ABNN2 the *server* (holding quantized
// weight fragments) plays this role.
type Receiver struct {
	conn    transport.Conn
	code    Code
	session uint64
	cols0   []*prg.PRG
	cols1   []*prg.PRG
	counter uint64
}

// NewSender performs the base-OT setup for the sending role. It samples
// the secret s and receives one seed per code column via base OT (the
// extension sender is the base-OT receiver, per IKNP). rng supplies all
// local randomness.
func NewSender(conn transport.Conn, code Code, session uint64, rng *prg.PRG) (*Sender, error) {
	w := code.WidthBits()
	s := rng.Bytes(w / 8)
	choices := make([]byte, w)
	for i := 0; i < w; i++ {
		choices[i] = (s[i/8] >> (uint(i) % 8)) & 1
	}
	seeds, err := baseOTReceive(conn, choices, rng)
	if err != nil {
		return nil, fmt.Errorf("otext: sender setup: %w", err)
	}
	cols := make([]*prg.PRG, w)
	for i := range cols {
		cols[i] = prg.New(seeds[i])
	}
	return &Sender{conn: conn, code: code, session: session, s: s, cols: cols}, nil
}

// NewReceiver performs the base-OT setup for the receiving role, sending
// one seed pair per code column.
func NewReceiver(conn transport.Conn, code Code, session uint64, rng *prg.PRG) (*Receiver, error) {
	w := code.WidthBits()
	pairs := make([][2][16]byte, w)
	cols0 := make([]*prg.PRG, w)
	cols1 := make([]*prg.PRG, w)
	for i := 0; i < w; i++ {
		var s0, s1 prg.Seed
		copy(s0[:], rng.Bytes(prg.SeedSize))
		copy(s1[:], rng.Bytes(prg.SeedSize))
		pairs[i][0] = s0
		pairs[i][1] = s1
		cols0[i] = prg.New(s0)
		cols1[i] = prg.New(s1)
	}
	if err := baseOTSend(conn, pairs, rng); err != nil {
		return nil, fmt.Errorf("otext: receiver setup: %w", err)
	}
	return &Receiver{conn: conn, code: code, session: session, cols0: cols0, cols1: cols1}, nil
}

// SenderBlock holds the sender's state for one Extend round of m OTs: the
// rows q_j from which pads for any choice value are derived.
type SenderBlock struct {
	s       *Sender
	q       *bitmat.Matrix // m_pad x w
	base    uint64         // counter value of OT 0 in this block
	m       int
	scratch []byte // codeword buffer (hot path, reused)
	masked  []byte // masked-row buffer (hot path, reused)
}

// ReceiverBlock holds the receiver's state for one Extend round: rows t_j
// yielding the pad for the choice made at each index.
type ReceiverBlock struct {
	r       *Receiver
	t       *bitmat.Matrix // m_pad x w
	base    uint64
	m       int
	choices []int
}

// Extend runs one extension round for m OTs from the receiver side with
// the given per-OT choices (each in [0, code.N())). It transmits the
// masked column matrix to the sender (one flight of m_pad * WidthBits
// bits) and returns the block from which pads are derived.
func (r *Receiver) Extend(choices []int) (*ReceiverBlock, error) {
	m := len(choices)
	if m == 0 {
		return nil, fmt.Errorf("otext: Extend with zero OTs")
	}
	w := r.code.WidthBits()
	mPad := (m + 7) &^ 7
	mBytes := mPad / 8

	// Code matrix: row j = C(choices[j]); padding rows use choice 0.
	codeRows := bitmat.New(mPad, w)
	for j := 0; j < mPad; j++ {
		c := 0
		if j < m {
			c = choices[j]
			if c < 0 || c >= r.code.N() {
				return nil, fmt.Errorf("otext: choice %d out of range [0,%d)", c, r.code.N())
			}
		}
		r.code.Encode(c, codeRows.Row(j))
	}
	codeCols := bitmat.Transpose(codeRows) // w x mPad

	// Column streams: t_i from seed0, u_i = t_i XOR PRG1_i XOR c_i.
	tCols := bitmat.New(w, mPad)
	u := make([]byte, w*mBytes)
	tmp := make([]byte, mBytes)
	for i := 0; i < w; i++ {
		ti := tCols.Row(i)
		r.cols0[i].Fill(ti)
		ui := u[i*mBytes : (i+1)*mBytes]
		r.cols1[i].Fill(tmp)
		ci := codeCols.Row(i)
		for k := 0; k < mBytes; k++ {
			ui[k] = ti[k] ^ tmp[k] ^ ci[k]
		}
	}
	if err := r.conn.Send(u); err != nil {
		return nil, fmt.Errorf("otext: send u matrix: %w", err)
	}
	blk := &ReceiverBlock{
		r:       r,
		t:       bitmat.Transpose(tCols), // mPad x w
		base:    r.counter,
		m:       m,
		choices: choices,
	}
	r.counter += uint64(mPad)
	return blk, nil
}

// Extend runs one extension round for m OTs from the sender side,
// consuming the receiver's masked column matrix.
func (s *Sender) Extend(m int) (*SenderBlock, error) {
	if m == 0 {
		return nil, fmt.Errorf("otext: Extend with zero OTs")
	}
	w := s.code.WidthBits()
	mPad := (m + 7) &^ 7
	mBytes := mPad / 8
	u, err := s.conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("otext: recv u matrix: %w", err)
	}
	if len(u) != w*mBytes {
		return nil, fmt.Errorf("otext: u matrix is %d bytes, want %d", len(u), w*mBytes)
	}
	qCols := bitmat.New(w, mPad)
	for i := 0; i < w; i++ {
		qi := qCols.Row(i)
		s.cols[i].Fill(qi)
		if (s.s[i/8]>>(uint(i)%8))&1 == 1 {
			ui := u[i*mBytes : (i+1)*mBytes]
			for k := 0; k < mBytes; k++ {
				qi[k] ^= ui[k]
			}
		}
	}
	blk := &SenderBlock{
		s:       s,
		q:       bitmat.Transpose(qCols),
		base:    s.counter,
		m:       m,
		scratch: make([]byte, w/8),
	}
	s.counter += uint64(mPad)
	return blk, nil
}

// Conn exposes the underlying connection so protocols layered on the pads
// can send their payload flights on the same channel.
func (s *Sender) Conn() transport.Conn { return s.conn }

// Conn exposes the underlying connection (see Sender.Conn).
func (r *Receiver) Conn() transport.Conn { return r.conn }

// Count returns the number of OTs in the block.
func (b *SenderBlock) Count() int   { return b.m }
func (b *ReceiverBlock) Count() int { return b.m }

// Pad returns nbytes of pad material for OT index j and candidate choice
// value v: H(session, counter_j, q_j XOR (C(v) AND s)). The receiver can
// compute the same bytes only for v equal to its choice at j.
func (b *SenderBlock) Pad(j, v int, nbytes int) []byte {
	if j < 0 || j >= b.m {
		panic(fmt.Sprintf("otext: pad index %d out of range [0,%d)", j, b.m))
	}
	row := b.q.Row(j)
	b.s.code.Encode(v, b.scratch)
	if b.masked == nil {
		b.masked = make([]byte, len(row))
	}
	sbits := b.s.s
	for k := range row {
		b.masked[k] = row[k] ^ (b.scratch[k] & sbits[k])
	}
	return oracle.Hash(b.s.session, b.base+uint64(j), 0, b.masked, nbytes)
}

// Pad returns nbytes of pad material for OT index j, valid for the choice
// the receiver made at that index: H(session, counter_j, t_j).
func (b *ReceiverBlock) Pad(j, nbytes int) []byte {
	if j < 0 || j >= b.m {
		panic(fmt.Sprintf("otext: pad index %d out of range [0,%d)", j, b.m))
	}
	return oracle.Hash(b.r.session, b.base+uint64(j), 0, b.t.Row(j), nbytes)
}

// Choice returns the receiver's choice at index j.
func (b *ReceiverBlock) Choice(j int) int { return b.choices[j] }
