package otext

import (
	"fmt"
	"sync"

	"abnn2/internal/bitmat"
	"abnn2/internal/par"
	"abnn2/internal/prg"
	"abnn2/internal/transport"
)

var oracle = prg.NewFastOracle("otext/pad")

// Sender is the OT-extension sender: the party that, after each Extend
// round, can derive the pad for every candidate choice value. In ABNN2's
// multiplication protocol the *client* (holding the random share r) plays
// this role. A Sender is bound to one connection and one code and must be
// paired with exactly one Receiver performing the same sequence of calls.
// Not safe for concurrent use.
type Sender struct {
	conn    transport.Conn
	code    Code
	session uint64
	s       []byte // secret column-selection bits, WidthBits/8 bytes
	cols    []*prg.PRG
	counter uint64
	workers int
}

// Receiver is the OT-extension receiver: the party whose per-OT choice
// selects which pad it learns. In ABNN2 the *server* (holding quantized
// weight fragments) plays this role.
type Receiver struct {
	conn    transport.Conn
	code    Code
	session uint64
	cols0   []*prg.PRG
	cols1   []*prg.PRG
	counter uint64
	workers int
}

// SetWorkers bounds the kernel parallelism of Extend (column PRG
// expansion and the bit-matrix transposes). 0, the default, means one
// worker per CPU. Any setting produces identical bytes on the wire;
// Extend itself remains a single-goroutine call.
func (s *Sender) SetWorkers(n int) { s.workers = n }

// SetWorkers mirrors Sender.SetWorkers for the receiving role.
func (r *Receiver) SetWorkers(n int) { r.workers = n }

// NewSender performs the base-OT setup for the sending role. It samples
// the secret s and receives one seed per code column via base OT (the
// extension sender is the base-OT receiver, per IKNP). rng supplies all
// local randomness.
func NewSender(conn transport.Conn, code Code, session uint64, rng *prg.PRG) (*Sender, error) {
	w := code.WidthBits()
	s := rng.Bytes(w / 8)
	choices := make([]byte, w)
	for i := 0; i < w; i++ {
		choices[i] = (s[i/8] >> (uint(i) % 8)) & 1
	}
	seeds, err := baseOTReceive(conn, choices, rng)
	if err != nil {
		return nil, fmt.Errorf("otext: sender setup: %w", err)
	}
	cols := make([]*prg.PRG, w)
	for i := range cols {
		cols[i] = prg.New(seeds[i])
	}
	return &Sender{conn: conn, code: code, session: session, s: s, cols: cols}, nil
}

// NewReceiver performs the base-OT setup for the receiving role, sending
// one seed pair per code column.
func NewReceiver(conn transport.Conn, code Code, session uint64, rng *prg.PRG) (*Receiver, error) {
	w := code.WidthBits()
	pairs := make([][2][16]byte, w)
	cols0 := make([]*prg.PRG, w)
	cols1 := make([]*prg.PRG, w)
	for i := 0; i < w; i++ {
		var s0, s1 prg.Seed
		copy(s0[:], rng.Bytes(prg.SeedSize))
		copy(s1[:], rng.Bytes(prg.SeedSize))
		pairs[i][0] = s0
		pairs[i][1] = s1
		cols0[i] = prg.New(s0)
		cols1[i] = prg.New(s1)
	}
	if err := baseOTSend(conn, pairs, rng); err != nil {
		return nil, fmt.Errorf("otext: receiver setup: %w", err)
	}
	return &Receiver{conn: conn, code: code, session: session, cols0: cols0, cols1: cols1}, nil
}

// SenderBlock holds the sender's state for one Extend round of m OTs: the
// rows q_j from which pads for any choice value are derived.
type SenderBlock struct {
	s    *Sender
	q    *bitmat.Matrix // m_pad x w
	base uint64         // counter value of OT 0 in this block
	m    int
	// Pad is on the hot path and called concurrently by the parallel
	// triplet kernels; per-call buffers come from a pool so the hot loop
	// allocates nothing and goroutines never share scratch space.
	scratch sync.Pool // *padScratch
}

// padScratch holds the per-goroutine codeword and masked-row buffers of
// SenderBlock.Pad.
type padScratch struct {
	code   []byte
	masked []byte
}

// ReceiverBlock holds the receiver's state for one Extend round: rows t_j
// yielding the pad for the choice made at each index.
type ReceiverBlock struct {
	r       *Receiver
	t       *bitmat.Matrix // m_pad x w
	base    uint64
	m       int
	choices []int
}

// Extend runs one extension round for m OTs from the receiver side with
// the given per-OT choices (each in [0, code.N())). It transmits the
// masked column matrix to the sender (one flight of m_pad * WidthBits
// bits) and returns the block from which pads are derived.
func (r *Receiver) Extend(choices []int) (*ReceiverBlock, error) {
	m := len(choices)
	if m == 0 {
		return nil, fmt.Errorf("otext: Extend with zero OTs")
	}
	w := r.code.WidthBits()
	mPad := (m + 7) &^ 7
	mBytes := mPad / 8

	for _, c := range choices {
		if c < 0 || c >= r.code.N() {
			return nil, fmt.Errorf("otext: choice %d out of range [0,%d)", c, r.code.N())
		}
	}
	// Code matrix: row j = C(choices[j]); padding rows use choice 0.
	codeRows := bitmat.New(mPad, w)
	par.Map(r.workers, mPad, func(j int) {
		c := 0
		if j < m {
			c = choices[j]
		}
		r.code.Encode(c, codeRows.Row(j))
	})
	codeCols := bitmat.TransposePar(codeRows, r.workers) // w x mPad

	// Column streams: t_i from seed0, u_i = t_i XOR PRG1_i XOR c_i.
	// Each column owns its pair of PRGs, so columns expand independently
	// on the worker pool; the per-column PRG states advance exactly as
	// they would sequentially, keeping the wire bytes identical.
	tCols := bitmat.New(w, mPad)
	u := make([]byte, w*mBytes)
	par.Chunks(r.workers, w, func(_, lo, hi int) {
		tmp := make([]byte, mBytes)
		for i := lo; i < hi; i++ {
			ti := tCols.Row(i)
			r.cols0[i].Fill(ti)
			ui := u[i*mBytes : (i+1)*mBytes]
			r.cols1[i].Fill(tmp)
			ci := codeCols.Row(i)
			for k := 0; k < mBytes; k++ {
				ui[k] = ti[k] ^ tmp[k] ^ ci[k]
			}
		}
	})
	if err := r.conn.Send(u); err != nil {
		return nil, fmt.Errorf("otext: send u matrix: %w", err)
	}
	blk := &ReceiverBlock{
		r:       r,
		t:       bitmat.TransposePar(tCols, r.workers), // mPad x w
		base:    r.counter,
		m:       m,
		choices: choices,
	}
	r.counter += uint64(mPad)
	return blk, nil
}

// Extend runs one extension round for m OTs from the sender side,
// consuming the receiver's masked column matrix.
func (s *Sender) Extend(m int) (*SenderBlock, error) {
	if m == 0 {
		return nil, fmt.Errorf("otext: Extend with zero OTs")
	}
	w := s.code.WidthBits()
	mPad := (m + 7) &^ 7
	mBytes := mPad / 8
	u, err := s.conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("otext: recv u matrix: %w", err)
	}
	if len(u) != w*mBytes {
		return nil, fmt.Errorf("otext: u matrix is %d bytes, want %d", len(u), w*mBytes)
	}
	qCols := bitmat.New(w, mPad)
	par.Map(s.workers, w, func(i int) {
		qi := qCols.Row(i)
		s.cols[i].Fill(qi)
		if (s.s[i/8]>>(uint(i)%8))&1 == 1 {
			ui := u[i*mBytes : (i+1)*mBytes]
			for k := 0; k < mBytes; k++ {
				qi[k] ^= ui[k]
			}
		}
	})
	blk := &SenderBlock{
		s:    s,
		q:    bitmat.TransposePar(qCols, s.workers),
		base: s.counter,
		m:    m,
	}
	s.counter += uint64(mPad)
	return blk, nil
}

// Conn exposes the underlying connection so protocols layered on the pads
// can send their payload flights on the same channel.
func (s *Sender) Conn() transport.Conn { return s.conn }

// Conn exposes the underlying connection (see Sender.Conn).
func (r *Receiver) Conn() transport.Conn { return r.conn }

// Count returns the number of OTs in the block.
func (b *SenderBlock) Count() int   { return b.m }
func (b *ReceiverBlock) Count() int { return b.m }

// Pad returns nbytes of pad material for OT index j and candidate choice
// value v: H(session, counter_j, q_j XOR (C(v) AND s)). The receiver can
// compute the same bytes only for v equal to its choice at j. Safe for
// concurrent use, so payload derivation can fan out across OT indices.
func (b *SenderBlock) Pad(j, v int, nbytes int) []byte {
	if j < 0 || j >= b.m {
		panic(fmt.Sprintf("otext: pad index %d out of range [0,%d)", j, b.m))
	}
	row := b.q.Row(j)
	ps, _ := b.scratch.Get().(*padScratch)
	if ps == nil {
		ps = &padScratch{code: make([]byte, b.s.code.WidthBits()/8), masked: make([]byte, len(row))}
	}
	b.s.code.Encode(v, ps.code)
	sbits := b.s.s
	for k := range row {
		ps.masked[k] = row[k] ^ (ps.code[k] & sbits[k])
	}
	out := oracle.Hash(b.s.session, b.base+uint64(j), 0, ps.masked, nbytes)
	b.scratch.Put(ps)
	return out
}

// Pad returns nbytes of pad material for OT index j, valid for the choice
// the receiver made at that index: H(session, counter_j, t_j). Safe for
// concurrent use (the block is read-only after Extend).
func (b *ReceiverBlock) Pad(j, nbytes int) []byte {
	if j < 0 || j >= b.m {
		panic(fmt.Sprintf("otext: pad index %d out of range [0,%d)", j, b.m))
	}
	return oracle.Hash(b.r.session, b.base+uint64(j), 0, b.t.Row(j), nbytes)
}

// Choice returns the receiver's choice at index j.
func (b *ReceiverBlock) Choice(j int) int { return b.choices[j] }
