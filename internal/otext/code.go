// Package otext implements IKNP-style oblivious-transfer extension and its
// 1-out-of-N generalisation by Kolesnikov and Kumaresan (KK13), the
// workhorse primitive of ABNN2's multiplication protocols (paper
// section 2.3 and Figure 1).
//
// A single generalised core covers both: the receiver's choice is encoded
// by a binary code C, the sender holds a random string s of the code
// width, and after the extension round the sender can derive a pad for
// every possible choice value v as H(q_j XOR (C(v) AND s)) while the
// receiver can derive only the pad for its actual choice. Instantiating C
// as the repetition code of width kappa = 128 yields IKNP 1-out-of-2 OT;
// instantiating it as the Walsh-Hadamard code of width 2*kappa = 256
// yields KK13 1-out-of-N OT for N up to 256, which is the "2*kappa" term
// in the communication formulas of the paper's Table 1.
package otext

import "fmt"

// Kappa is the computational security parameter in bits.
const Kappa = 128

// Code encodes receiver choices as fixed-width binary codewords. Codes
// must have minimum distance >= Kappa so that for any two distinct
// choices at least Kappa bits of the sender secret s remain hidden in the
// receiver's view.
type Code interface {
	// N is the number of encodable choices.
	N() int
	// WidthBits is the codeword length in bits (a multiple of 64).
	WidthBits() int
	// Encode writes the codeword for choice (in [0, N)) into dst, which
	// has WidthBits()/8 bytes.
	Encode(choice int, dst []byte)
}

// repetitionCode is the IKNP code: C(0) = 0^128, C(1) = 1^128.
// Distance 128 = Kappa.
type repetitionCode struct{}

func (repetitionCode) N() int         { return 2 }
func (repetitionCode) WidthBits() int { return Kappa }
func (repetitionCode) Encode(choice int, dst []byte) {
	var fill byte
	if choice&1 == 1 {
		fill = 0xFF
	}
	for i := range dst {
		dst[i] = fill
	}
}

// RepetitionCode returns the IKNP 1-out-of-2 code of width kappa.
func RepetitionCode() Code { return repetitionCode{} }

// whCode is the Walsh-Hadamard code over 8-bit messages: codeword bit x
// (x ranging over all 256 byte values) is the parity of choice AND x.
// Length 256 = 2*Kappa, minimum distance 128 = Kappa (it is a constant
// weight-128 code except for the zero word). Supports N <= 256.
// Codewords are precomputed once: Encode sits on the per-pad hot path of
// the OT extension.
type whCode struct{ n int }

var whTable = func() *[256][32]byte {
	var t [256][32]byte
	for w := 0; w < 256; w++ {
		for bytePos := 0; bytePos < 32; bytePos++ {
			var b byte
			for bit := 0; bit < 8; bit++ {
				x := byte(bytePos*8 + bit)
				b |= parity8(byte(w)&x) << uint(bit)
			}
			t[w][bytePos] = b
		}
	}
	return &t
}()

// WalshHadamardCode returns the KK13 code for 1-out-of-n OT, n in [2,256].
func WalshHadamardCode(n int) Code {
	if n < 2 || n > 256 {
		panic(fmt.Sprintf("otext: Walsh-Hadamard code supports N in [2,256], got %d", n))
	}
	return whCode{n: n}
}

func (c whCode) N() int         { return c.n }
func (c whCode) WidthBits() int { return 2 * Kappa }

func (c whCode) Encode(choice int, dst []byte) {
	if choice < 0 || choice >= c.n {
		panic(fmt.Sprintf("otext: choice %d out of range [0,%d)", choice, c.n))
	}
	copy(dst, whTable[choice][:])
}

// parity8 returns the parity (XOR of bits) of v.
func parity8(v byte) byte {
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return v & 1
}

// CodeFor returns the cheapest code supporting n choices: the repetition
// code for n = 2 (half the column traffic) and Walsh-Hadamard otherwise.
func CodeFor(n int) Code {
	if n == 2 {
		return RepetitionCode()
	}
	return WalshHadamardCode(n)
}
