package otext

import (
	"bytes"
	"sync"
	"testing"

	"abnn2/internal/prg"
	"abnn2/internal/ring"
)

// Edge-of-parameter-space tests: KK13 at its degenerate point N=2
// (where it should behave exactly like a 1-of-2 extension, the IKNP
// regime the repetition code serves) and correlated OT cross-checked
// against the generic chosen-message path it optimises.

// runChosen drives one chosen-message round over a fresh pair and
// returns the receiver's outputs.
func runChosen(t *testing.T, code Code, msgs [][][]byte, choices []int, msgLen int) [][]byte {
	t.Helper()
	snd, rcv, _, done := setupPair(t, code)
	defer done()
	var (
		serr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		serr = snd.SendChosen(msgs, msgLen)
	}()
	got, rerr := rcv.RecvChosen(choices, msgLen)
	wg.Wait()
	if serr != nil || rerr != nil {
		t.Fatalf("chosen round: send=%v recv=%v", serr, rerr)
	}
	return got
}

// TestKK13DegeneratesToTwoMessages pins the N=2 edge of the
// Walsh-Hadamard code: same message matrix, same choices, evaluated
// under both WH(2) (KK13's smallest instantiation) and the repetition
// code (the IKNP special case). The transferred messages must agree —
// the two constructions differ only in codeword width and therefore in
// bandwidth, never in output.
func TestKK13DegeneratesToTwoMessages(t *testing.T) {
	const m, msgLen = 9, 12
	g := prg.New(prg.SeedFromInt(31))
	msgs := make([][][]byte, m)
	choices := make([]int, m)
	for i := range msgs {
		msgs[i] = [][]byte{g.Bytes(msgLen), g.Bytes(msgLen)}
		choices[i] = g.Intn(2)
	}
	wh := WalshHadamardCode(2)
	if wh.N() != 2 {
		t.Fatalf("WH(2) N = %d", wh.N())
	}
	gotWH := runChosen(t, wh, msgs, choices, msgLen)
	gotRep := runChosen(t, RepetitionCode(), msgs, choices, msgLen)
	for i := range msgs {
		want := msgs[i][choices[i]]
		if !bytes.Equal(gotWH[i], want) {
			t.Errorf("OT %d: WH(2) delivered %x, want %x", i, gotWH[i], want)
		}
		if !bytes.Equal(gotRep[i], want) {
			t.Errorf("OT %d: repetition delivered %x, want %x", i, gotRep[i], want)
		}
	}
}

// TestCorrelatedMatchesChosen checks the COT optimisation against the
// generic path it shortcuts: for each OT the receiver of bit b must end
// with x0 + b*delta, exactly what a chosen-message round over the pair
// (x0, x0+delta) delivers. Ring 33 keeps the partial-byte element
// encoding in play.
func TestCorrelatedMatchesChosen(t *testing.T) {
	rg := ring.New(33)
	const m = 7
	g := prg.New(prg.SeedFromInt(32))
	deltas := g.Vec(rg, m)
	bits := make([]byte, m)
	for i := range bits {
		bits[i] = byte(g.Intn(2))
	}

	snd, rcv, _, done := setupPair(t, RepetitionCode())
	defer done()
	var (
		x0   ring.Vec
		serr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		x0, serr = snd.SendCorrelatedRing(rg, deltas)
	}()
	got, rerr := rcv.RecvCorrelatedRing(rg, bits)
	wg.Wait()
	if serr != nil || rerr != nil {
		t.Fatalf("correlated round: send=%v recv=%v", serr, rerr)
	}

	// Generic reference round over the explicit message pairs.
	elemBytes := rg.Bytes()
	msgs := make([][][]byte, m)
	choices := make([]int, m)
	for i := 0; i < m; i++ {
		m0 := rg.AppendElem(nil, x0[i])
		m1 := rg.AppendElem(nil, rg.Add(x0[i], deltas[i]))
		msgs[i] = [][]byte{m0, m1}
		choices[i] = int(bits[i])
	}
	ref := runChosen(t, RepetitionCode(), msgs, choices, elemBytes)
	for i := 0; i < m; i++ {
		want := rg.Add(x0[i], rg.Mul(rg.Reduce(uint64(bits[i])), deltas[i]))
		if got[i] != want {
			t.Errorf("OT %d: COT output %d, want x0 + b*delta = %d", i, got[i], want)
		}
		refElem, _, err := rg.DecodeVec(ref[i], 1)
		if err != nil {
			t.Fatalf("OT %d: decode reference: %v", i, err)
		}
		if refElem[0] != want {
			t.Errorf("OT %d: chosen-path reference %d disagrees with %d", i, refElem[0], want)
		}
	}
}
