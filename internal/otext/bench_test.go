package otext

import (
	"sync"
	"testing"

	"abnn2/internal/prg"
	"abnn2/internal/transport"
)

// benchPair builds a connected sender/receiver without testing.T.
func benchPair(b *testing.B, code Code) (*Sender, *Receiver, func()) {
	b.Helper()
	ca, cb := transport.Pipe()
	var (
		snd *Sender
		err error
		wg  sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		snd, err = NewSender(ca, code, 7, prg.New(prg.SeedFromInt(1)))
	}()
	rcv, rerr := NewReceiver(cb, code, 7, prg.New(prg.SeedFromInt(2)))
	wg.Wait()
	if err != nil || rerr != nil {
		b.Fatalf("setup: %v %v", err, rerr)
	}
	return snd, rcv, func() { ca.Close() }
}

func benchExtend(b *testing.B, code Code, m int) { benchExtendWorkers(b, code, m, 0) }

// benchExtendWorkers pins both parties to a worker count; workers=1 is
// the sequential baseline the parallel kernels are compared against.
func benchExtendWorkers(b *testing.B, code Code, m, workers int) {
	snd, rcv, done := benchPair(b, code)
	defer done()
	snd.SetWorkers(workers)
	rcv.SetWorkers(workers)
	choices := make([]int, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := snd.Extend(m); err != nil {
				b.Error(err)
			}
		}()
		if _, err := rcv.Extend(choices); err != nil {
			b.Fatal(err)
		}
		wg.Wait()
	}
	b.ReportMetric(float64(m)*float64(b.N), "OTs-total")
}

func BenchmarkExtendIKNP4096(b *testing.B)  { benchExtend(b, RepetitionCode(), 4096) }
func BenchmarkExtendKK13x4096(b *testing.B) { benchExtend(b, WalshHadamardCode(16), 4096) }

// Workers=1 vs Workers=8 on a large KK13 round: the ratio is the
// speedup quoted in EXPERIMENTS.md.
func BenchmarkExtendKK13x65536Workers1(b *testing.B) {
	benchExtendWorkers(b, WalshHadamardCode(256), 65536, 1)
}
func BenchmarkExtendKK13x65536Workers8(b *testing.B) {
	benchExtendWorkers(b, WalshHadamardCode(256), 65536, 8)
}

func BenchmarkPadDerivation(b *testing.B) {
	snd, rcv, done := benchPair(b, WalshHadamardCode(16))
	defer done()
	const m = 1024
	var (
		sb *SenderBlock
		wg sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		sb, _ = snd.Extend(m)
	}()
	if _, err := rcv.Extend(make([]int, m)); err != nil {
		b.Fatal(err)
	}
	wg.Wait()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sb.Pad(i%m, i%16, 64)
	}
}

func BenchmarkBaseOTSetup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, done := benchPair(b, RepetitionCode())
		done()
	}
}
