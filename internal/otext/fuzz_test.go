package otext

import (
	"sync"
	"testing"

	"abnn2/internal/prg"
	"abnn2/internal/ring"
	"abnn2/internal/transport"
)

// Wire-parser fuzzing: every flight a party receives during OT extension
// is attacker-controlled bytes until proven otherwise. The targets below
// run the real stateful protocol objects (base OTs done once per
// process) and inject the fuzzer's bytes as the peer's flight; any input
// may produce an error, none may panic or hang.

// fuzzSender builds a real Sender whose peer end is returned for flight
// injection. The throwaway Receiver exists only to run the base OTs.
func fuzzSender(f *testing.F, code Code) (*Sender, transport.Conn) {
	f.Helper()
	a, b := transport.Pipe()
	var (
		snd  *Sender
		serr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		snd, serr = NewSender(a, code, 7, prg.New(prg.SeedFromInt(1)))
	}()
	_, rerr := NewReceiver(b, code, 7, prg.New(prg.SeedFromInt(2)))
	wg.Wait()
	if serr != nil || rerr != nil {
		f.Fatalf("setup: sender=%v receiver=%v", serr, rerr)
	}
	return snd, b
}

// fuzzReceiver mirrors fuzzSender for the receiving role. A drainer
// goroutine discards the receiver's outgoing flights (u matrices) so the
// pipe buffer never fills across fuzz iterations.
func fuzzReceiver(f *testing.F, code Code) (*Receiver, transport.Conn) {
	f.Helper()
	a, b := transport.Pipe()
	var (
		rcv  *Receiver
		rerr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		rcv, rerr = NewReceiver(a, code, 7, prg.New(prg.SeedFromInt(3)))
	}()
	_, serr := NewSender(b, code, 7, prg.New(prg.SeedFromInt(4)))
	wg.Wait()
	if serr != nil || rerr != nil {
		f.Fatalf("setup: sender=%v receiver=%v", serr, rerr)
	}
	go func() {
		for {
			if _, err := b.Recv(); err != nil {
				return
			}
		}
	}()
	return rcv, b
}

// FuzzSenderExtend feeds arbitrary bytes as the u column matrix. The
// valid length for WH(16) and m=8 is 256 bytes (w columns of mPad/8
// bytes); everything else must error cleanly.
func FuzzSenderExtend(f *testing.F) {
	snd, peer := fuzzSender(f, WalshHadamardCode(16))
	f.Add(make([]byte, 256))
	f.Add(make([]byte, 255))
	f.Add([]byte{})
	f.Add(make([]byte, 1024))
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := peer.Send(data); err != nil {
			t.Skip("pipe closed")
		}
		// Error or success are both fine; panics and hangs are not.
		snd.Extend(8)
	})
}

// FuzzRecvChosen feeds arbitrary bytes as the ciphertext flight of a
// 1-of-4 chosen-message round (valid length 4*4*4 = 64).
func FuzzRecvChosen(f *testing.F) {
	rcv, peer := fuzzReceiver(f, WalshHadamardCode(4))
	choices := []int{0, 1, 2, 3}
	f.Add(make([]byte, 64))
	f.Add(make([]byte, 63))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := peer.Send(data); err != nil {
			t.Skip("pipe closed")
		}
		rcv.RecvChosen(choices, 4)
	})
}

// FuzzRecvCorrelatedRing feeds arbitrary bytes as the COT correction
// flight over the 33-bit ring (5-byte elements; valid length 3*5 = 15).
// The odd ring width exercises DecodeElem's partial-element handling.
func FuzzRecvCorrelatedRing(f *testing.F) {
	rcv, peer := fuzzReceiver(f, RepetitionCode())
	rg := ring.New(33)
	bits := []byte{1, 0, 1}
	f.Add(make([]byte, 15))
	f.Add(make([]byte, 14))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := peer.Send(data); err != nil {
			t.Skip("pipe closed")
		}
		rcv.RecvCorrelatedRing(rg, bits)
	})
}
