package otext

import (
	"fmt"

	"abnn2/internal/baseot"
	"abnn2/internal/prg"
	"abnn2/internal/ring"
	"abnn2/internal/transport"
)

// baseOTReceive and baseOTSend adapt internal/baseot to seed slices.

func baseOTReceive(conn transport.Conn, choices []byte, rng *prg.PRG) ([]prg.Seed, error) {
	msgs, err := baseot.Receive(conn, choices, rng)
	if err != nil {
		return nil, err
	}
	seeds := make([]prg.Seed, len(msgs))
	for i, m := range msgs {
		seeds[i] = prg.Seed(m)
	}
	return seeds, nil
}

func baseOTSend(conn transport.Conn, pairs [][2][16]byte, rng *prg.PRG) error {
	bp := make([][2]baseot.Msg, len(pairs))
	for i := range pairs {
		bp[i][0] = baseot.Msg(pairs[i][0])
		bp[i][1] = baseot.Msg(pairs[i][1])
	}
	return baseot.Send(conn, bp, rng)
}

// SendChosen transfers chosen messages: msgs[j][v] is delivered for OT j
// if the receiver chose v. All messages must have length msgLen. One
// flight of m * N * msgLen bytes.
func (s *Sender) SendChosen(msgs [][][]byte, msgLen int) error {
	m := len(msgs)
	blk, err := s.Extend(m)
	if err != nil {
		return err
	}
	n := s.code.N()
	out := make([]byte, 0, m*n*msgLen)
	for j := 0; j < m; j++ {
		if len(msgs[j]) != n {
			return fmt.Errorf("otext: OT %d has %d messages, want %d", j, len(msgs[j]), n)
		}
		for v := 0; v < n; v++ {
			if len(msgs[j][v]) != msgLen {
				return fmt.Errorf("otext: OT %d message %d has %d bytes, want %d", j, v, len(msgs[j][v]), msgLen)
			}
			pad := blk.Pad(j, v, msgLen)
			ct := make([]byte, msgLen)
			prg.XORBytes(ct, msgs[j][v], pad)
			out = append(out, ct...)
		}
	}
	return s.conn.Send(out)
}

// RecvChosen receives the chosen message of length msgLen for each OT.
func (r *Receiver) RecvChosen(choices []int, msgLen int) ([][]byte, error) {
	blk, err := r.Extend(choices)
	if err != nil {
		return nil, err
	}
	n := r.code.N()
	m := len(choices)
	cts, err := r.conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("otext: recv ciphertexts: %w", err)
	}
	if len(cts) != m*n*msgLen {
		return nil, fmt.Errorf("otext: ciphertexts are %d bytes, want %d", len(cts), m*n*msgLen)
	}
	out := make([][]byte, m)
	for j := 0; j < m; j++ {
		ct := cts[(j*n+choices[j])*msgLen:][:msgLen]
		pad := blk.Pad(j, msgLen)
		msg := make([]byte, msgLen)
		prg.XORBytes(msg, ct, pad)
		out[j] = msg
	}
	return out, nil
}

// SendCorrelatedRing runs m correlated OTs over ring elements, the gadget
// used by the SecureML baseline and by QUOTIENT-style binary
// multiplication. For OT j the sender learns a random x0_j (derived from
// its pad) and the receiver obtains x0_j + deltas[j] if its choice bit is
// 1, or x0_j if 0. Only one correction element per OT crosses the wire,
// so the payload is m*l bits on top of the column matrix.
//
// The code must be the repetition code (N = 2).
func (s *Sender) SendCorrelatedRing(rg ring.Ring, deltas ring.Vec) (x0 ring.Vec, err error) {
	if s.code.N() != 2 {
		return nil, fmt.Errorf("otext: correlated OT requires a 1-out-of-2 code")
	}
	m := len(deltas)
	blk, err := s.Extend(m)
	if err != nil {
		return nil, err
	}
	x0 = make(ring.Vec, m)
	buf := make([]byte, 0, rg.VecBytes(m))
	for j := 0; j < m; j++ {
		p0 := rg.FromBytesFull(blk.Pad(j, 0, 8))
		p1 := rg.FromBytesFull(blk.Pad(j, 1, 8))
		x0[j] = p0
		// Correction: c = x0 + delta - p1; a choice-1 receiver computes
		// p1 + c = x0 + delta.
		c := rg.Sub(rg.Add(p0, deltas[j]), p1)
		buf = rg.AppendElem(buf, c)
	}
	if err := s.conn.Send(buf); err != nil {
		return nil, fmt.Errorf("otext: send corrections: %w", err)
	}
	return x0, nil
}

// RecvCorrelatedRing is the receiver side of SendCorrelatedRing: for each
// choice bit b_j it returns x0_j + b_j * delta_j.
func (r *Receiver) RecvCorrelatedRing(rg ring.Ring, choiceBits []byte) (ring.Vec, error) {
	if r.code.N() != 2 {
		return nil, fmt.Errorf("otext: correlated OT requires a 1-out-of-2 code")
	}
	m := len(choiceBits)
	choices := make([]int, m)
	for j, b := range choiceBits {
		choices[j] = int(b & 1)
	}
	blk, err := r.Extend(choices)
	if err != nil {
		return nil, err
	}
	raw, err := r.conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("otext: recv corrections: %w", err)
	}
	out := make(ring.Vec, m)
	for j := 0; j < m; j++ {
		var c ring.Elem
		c, raw, err = rg.DecodeElem(raw)
		if err != nil {
			return nil, fmt.Errorf("otext: correction %d: %w", j, err)
		}
		p := rg.FromBytesFull(blk.Pad(j, 8))
		if choices[j] == 1 {
			out[j] = rg.Add(p, c)
		} else {
			out[j] = p
		}
	}
	return out, nil
}

// SendRandom returns pads usable as m random OTs without any payload
// flight: the sender learns all N pads per OT, the receiver (via
// RecvRandom) learns the pad of its choice. nbytes is the pad width.
func (s *Sender) SendRandom(m, nbytes int) ([][][]byte, error) {
	blk, err := s.Extend(m)
	if err != nil {
		return nil, err
	}
	n := s.code.N()
	out := make([][][]byte, m)
	for j := 0; j < m; j++ {
		out[j] = make([][]byte, n)
		for v := 0; v < n; v++ {
			out[j][v] = blk.Pad(j, v, nbytes)
		}
	}
	return out, nil
}

// RecvRandom is the receiver side of SendRandom.
func (r *Receiver) RecvRandom(choices []int, nbytes int) ([][]byte, error) {
	blk, err := r.Extend(choices)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(choices))
	for j := range choices {
		out[j] = blk.Pad(j, nbytes)
	}
	return out, nil
}
