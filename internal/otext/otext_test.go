package otext

import (
	"bytes"
	"sync"
	"testing"

	"abnn2/internal/prg"
	"abnn2/internal/ring"
	"abnn2/internal/transport"
)

// setupPair creates a connected Sender/Receiver pair over a metered pipe.
func setupPair(t *testing.T, code Code) (*Sender, *Receiver, *transport.Meter, func()) {
	t.Helper()
	ca, cb, m := transport.MeteredPipe()
	var (
		snd     *Sender
		sndErr  error
		wgSetup sync.WaitGroup
	)
	wgSetup.Add(1)
	go func() {
		defer wgSetup.Done()
		snd, sndErr = NewSender(ca, code, 7, prg.New(prg.SeedFromInt(11)))
	}()
	rcv, rcvErr := NewReceiver(cb, code, 7, prg.New(prg.SeedFromInt(22)))
	wgSetup.Wait()
	if sndErr != nil || rcvErr != nil {
		t.Fatalf("setup: sender=%v receiver=%v", sndErr, rcvErr)
	}
	return snd, rcv, m, func() { ca.Close() }
}

func TestCodes(t *testing.T) {
	rep := RepetitionCode()
	if rep.N() != 2 || rep.WidthBits() != 128 {
		t.Fatalf("repetition code: N=%d width=%d", rep.N(), rep.WidthBits())
	}
	buf := make([]byte, 16)
	rep.Encode(0, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("C(0) not all-zero")
		}
	}
	rep.Encode(1, buf)
	for _, b := range buf {
		if b != 0xFF {
			t.Fatal("C(1) not all-one")
		}
	}

	wh := WalshHadamardCode(16)
	if wh.N() != 16 || wh.WidthBits() != 256 {
		t.Fatalf("WH code: N=%d width=%d", wh.N(), wh.WidthBits())
	}
}

// The WH code must have minimum distance >= Kappa between any two
// codewords in range; this is the property receiver privacy rests on.
func TestWalshHadamardDistance(t *testing.T) {
	c := WalshHadamardCode(256)
	words := make([][]byte, 256)
	for v := 0; v < 256; v++ {
		words[v] = make([]byte, 32)
		c.Encode(v, words[v])
	}
	for a := 0; a < 256; a++ {
		for b := a + 1; b < 256; b++ {
			d := 0
			for k := 0; k < 32; k++ {
				x := words[a][k] ^ words[b][k]
				for ; x != 0; x &= x - 1 {
					d++
				}
			}
			if d < Kappa {
				t.Fatalf("distance(%d,%d) = %d < %d", a, b, d, Kappa)
			}
		}
	}
}

func TestCodeForSelection(t *testing.T) {
	if CodeFor(2).WidthBits() != 128 {
		t.Error("CodeFor(2) should be the repetition code")
	}
	if CodeFor(4).WidthBits() != 256 {
		t.Error("CodeFor(4) should be Walsh-Hadamard")
	}
}

func TestPadAgreement1of2(t *testing.T) {
	snd, rcv, _, done := setupPair(t, RepetitionCode())
	defer done()
	choices := []int{0, 1, 1, 0, 1, 0, 0, 1, 1, 1, 0}
	var (
		sb  *SenderBlock
		err error
		wg  sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		sb, err = snd.Extend(len(choices))
	}()
	rb, rerr := rcv.Extend(choices)
	wg.Wait()
	if err != nil || rerr != nil {
		t.Fatalf("extend: %v %v", err, rerr)
	}
	for j, c := range choices {
		want := sb.Pad(j, c, 32)
		got := rb.Pad(j, 32)
		if !bytes.Equal(want, got) {
			t.Fatalf("OT %d: pads disagree for chosen value", j)
		}
		other := sb.Pad(j, 1-c, 32)
		if bytes.Equal(other, got) {
			t.Fatalf("OT %d: receiver pad matches unchosen value", j)
		}
	}
}

func TestPadAgreement1ofN(t *testing.T) {
	for _, n := range []int{4, 16, 256} {
		snd, rcv, _, done := setupPair(t, WalshHadamardCode(n))
		g := prg.New(prg.SeedFromInt(uint64(n)))
		const m = 40
		choices := make([]int, m)
		for i := range choices {
			choices[i] = g.Intn(n)
		}
		var (
			sb *SenderBlock
			wg sync.WaitGroup
		)
		wg.Add(1)
		go func() {
			defer wg.Done()
			sb, _ = snd.Extend(m)
		}()
		rb, err := rcv.Extend(choices)
		wg.Wait()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for j, c := range choices {
			if !bytes.Equal(sb.Pad(j, c, 16), rb.Pad(j, 16)) {
				t.Fatalf("n=%d OT %d: pad mismatch", n, j)
			}
			for v := 0; v < n; v++ {
				if v != c && bytes.Equal(sb.Pad(j, v, 16), rb.Pad(j, 16)) {
					t.Fatalf("n=%d OT %d: pad for %d collides with choice %d", n, j, v, c)
				}
			}
		}
		done()
	}
}

func TestSequentialExtendsIndependent(t *testing.T) {
	snd, rcv, _, done := setupPair(t, RepetitionCode())
	defer done()
	for round := 0; round < 3; round++ {
		choices := []int{round % 2, 1, 0}
		var (
			sb *SenderBlock
			wg sync.WaitGroup
		)
		wg.Add(1)
		go func() {
			defer wg.Done()
			sb, _ = snd.Extend(len(choices))
		}()
		rb, err := rcv.Extend(choices)
		wg.Wait()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for j, c := range choices {
			if !bytes.Equal(sb.Pad(j, c, 16), rb.Pad(j, 16)) {
				t.Fatalf("round %d OT %d mismatch", round, j)
			}
		}
	}
}

func TestChosenMessages1ofN(t *testing.T) {
	const n, m, msgLen = 8, 20, 24
	snd, rcv, _, done := setupPair(t, WalshHadamardCode(n))
	defer done()
	g := prg.New(prg.SeedFromInt(77))
	msgs := make([][][]byte, m)
	for j := range msgs {
		msgs[j] = make([][]byte, n)
		for v := range msgs[j] {
			msgs[j][v] = g.Bytes(msgLen)
		}
	}
	choices := make([]int, m)
	for i := range choices {
		choices[i] = g.Intn(n)
	}
	var (
		sendErr error
		wg      sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		sendErr = snd.SendChosen(msgs, msgLen)
	}()
	got, err := rcv.RecvChosen(choices, msgLen)
	wg.Wait()
	if sendErr != nil || err != nil {
		t.Fatalf("chosen: %v %v", sendErr, err)
	}
	for j := range got {
		if !bytes.Equal(got[j], msgs[j][choices[j]]) {
			t.Fatalf("OT %d: wrong message", j)
		}
	}
}

func TestCorrelatedRing(t *testing.T) {
	rg := ring.New(32)
	snd, rcv, _, done := setupPair(t, RepetitionCode())
	defer done()
	g := prg.New(prg.SeedFromInt(88))
	const m = 50
	deltas := g.Vec(rg, m)
	bits := make([]byte, m)
	for i := range bits {
		bits[i] = byte(g.Intn(2))
	}
	var (
		x0   ring.Vec
		serr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		x0, serr = snd.SendCorrelatedRing(rg, deltas)
	}()
	xb, err := rcv.RecvCorrelatedRing(rg, bits)
	wg.Wait()
	if serr != nil || err != nil {
		t.Fatalf("cot: %v %v", serr, err)
	}
	for j := 0; j < m; j++ {
		want := x0[j]
		if bits[j] == 1 {
			want = rg.Add(x0[j], deltas[j])
		}
		if xb[j] != want {
			t.Fatalf("cot %d: got %d want %d (bit %d)", j, xb[j], want, bits[j])
		}
	}
}

func TestRandomOT(t *testing.T) {
	const n, m = 4, 10
	snd, rcv, _, done := setupPair(t, WalshHadamardCode(n))
	defer done()
	choices := []int{0, 1, 2, 3, 3, 2, 1, 0, 2, 2}
	var (
		pads [][][]byte
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		pads, _ = snd.SendRandom(m, 16)
	}()
	got, err := rcv.RecvRandom(choices, 16)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for j := range got {
		if !bytes.Equal(got[j], pads[j][choices[j]]) {
			t.Fatalf("random OT %d mismatch", j)
		}
	}
}

// Communication of one Extend must match the analytic formula:
// m_pad * WidthBits bits from receiver to sender.
func TestExtendCommunication(t *testing.T) {
	snd, rcv, meter, done := setupPair(t, WalshHadamardCode(16))
	defer done()
	meter.Reset()
	const m = 64
	choices := make([]int, m)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		snd.Extend(m)
	}()
	if _, err := rcv.Extend(choices); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	s := meter.Snapshot()
	wantBytes := int64(m * 256 / 8)
	// Receiver is party B in setupPair ordering.
	if s.BytesBA != wantBytes {
		t.Errorf("u matrix bytes = %d, want %d", s.BytesBA, wantBytes)
	}
	if s.BytesAB != 0 {
		t.Errorf("sender sent %d bytes during Extend, want 0", s.BytesAB)
	}
}

func TestChoiceOutOfRange(t *testing.T) {
	snd, rcv, _, done := setupPair(t, WalshHadamardCode(4))
	defer done()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// The sender side will error out when the pipe closes or succeed
		// reading a matrix; either way, don't block the test.
		snd.Extend(1)
	}()
	_, err := rcv.Extend([]int{7})
	if err == nil {
		t.Error("choice 7 accepted for N=4")
	}
	done() // unblock sender goroutine
	wg.Wait()
}
