package transport

import "time"

// NetModel is an analytic model of a network link: the simulated wall time
// of a protocol is
//
//	compute time + TotalBytes/Bandwidth + Flights * (RTT/2)
//
// which is the standard first-order cost model for secure-computation
// protocols (bandwidth-bound transfers plus one half-RTT per direction
// change). The paper shapes real links with `tc`; applying the same link
// parameters to measured bytes/flights reproduces the LAN-vs-WAN shape of
// its tables without root privileges or real 72 ms delays.
type NetModel struct {
	Name           string
	BandwidthBytes float64       // bytes per second, both directions
	RTT            time.Duration // round-trip time
}

var (
	// LAN models the paper's local setting: 10 Gbit/s, negligible latency.
	LAN = NetModel{Name: "LAN", BandwidthBytes: 1.25e9, RTT: 200 * time.Microsecond}

	// WANTable3 is the Table 3 WAN setting: "9MB/s and 72ms RTT".
	WANTable3 = NetModel{Name: "WAN(9MB/s,72ms)", BandwidthBytes: 9e6, RTT: 72 * time.Millisecond}

	// WANQuotient is the Tables 4-5 WAN setting: "24.3MB/s and 40ms RTT"
	// (the same environment QUOTIENT reports).
	WANQuotient = NetModel{Name: "WAN(24.3MB/s,40ms)", BandwidthBytes: 24.3e6, RTT: 40 * time.Millisecond}
)

// NetworkTime returns the simulated time spent on the wire for the given
// communication profile.
func (nm NetModel) NetworkTime(s Stats) time.Duration {
	transfer := time.Duration(float64(s.TotalBytes()) / nm.BandwidthBytes * float64(time.Second))
	latency := time.Duration(s.Flights) * (nm.RTT / 2)
	return transfer + latency
}

// TotalTime combines measured compute time with the modelled network time.
func (nm NetModel) TotalTime(compute time.Duration, s Stats) time.Duration {
	return compute + nm.NetworkTime(s)
}
