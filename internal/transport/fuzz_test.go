package transport

import (
	"bytes"
	"io"
	"testing"
)

// memStream is an in-memory ReadWriteCloser fed with arbitrary bytes, to
// fuzz the frame decoder against hostile input.
type memStream struct {
	r *bytes.Reader
}

func (m *memStream) Read(p []byte) (int, error)  { return m.r.Read(p) }
func (m *memStream) Write(p []byte) (int, error) { return len(p), nil }
func (m *memStream) Close() error                { return nil }

// FuzzStreamRecv: arbitrary byte streams must never panic the framed
// receiver and must never yield a message larger than the limit.
func FuzzStreamRecv(f *testing.F) {
	// A valid frame, a truncated frame, an oversize announcement.
	f.Add([]byte{3, 0, 0, 0, 'a', 'b', 'c'})
	f.Add([]byte{3, 0, 0, 0, 'a'})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewStream(&memStream{r: bytes.NewReader(data)})
		for i := 0; i < 4; i++ {
			msg, err := c.Recv()
			if err != nil {
				return // any error is acceptable; panics are not
			}
			if len(msg) > MaxMessageSize {
				t.Fatalf("message of %d bytes exceeds limit", len(msg))
			}
		}
	})
}

// Round trip: every message written by Send must be recovered by Recv.
func FuzzStreamRoundTrip(f *testing.F) {
	f.Add([]byte("hello"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) > 1<<16 {
			return
		}
		var buf bytes.Buffer
		w := NewStream(&bufStream{w: &buf})
		if err := w.Send(payload); err != nil {
			t.Fatalf("send: %v", err)
		}
		r := NewStream(&memStream{r: bytes.NewReader(buf.Bytes())})
		got, err := r.Recv()
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("roundtrip mismatch")
		}
	})
}

type bufStream struct{ w io.Writer }

func (b *bufStream) Read(p []byte) (int, error)  { return 0, io.EOF }
func (b *bufStream) Write(p []byte) (int, error) { return b.w.Write(p) }
func (b *bufStream) Close() error                { return nil }
