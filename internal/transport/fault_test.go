package transport

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestFaultNoneCountsSends(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	fc := Fault(a, FaultPlan{Class: FaultNone})
	go func() {
		for i := 0; i < 3; i++ {
			b.Recv()
		}
	}()
	for i := 0; i < 3; i++ {
		if err := fc.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if fc.Sends() != 3 || fc.Fired() {
		t.Fatalf("sends=%d fired=%v", fc.Sends(), fc.Fired())
	}
}

func TestFaultTruncate(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	fc := Fault(a, FaultPlan{Class: FaultTruncate, Message: 1})
	go func() {
		fc.Send([]byte("whole"))
		fc.Send([]byte("truncated"))
	}()
	m1, _ := b.Recv()
	m2, _ := b.Recv()
	if string(m1) != "whole" {
		t.Fatalf("message 0 touched: %q", m1)
	}
	if len(m2) != len("truncated")/2 {
		t.Fatalf("message 1 is %d bytes, want %d", len(m2), len("truncated")/2)
	}
	if !fc.Fired() {
		t.Fatal("fault not marked fired")
	}
}

func TestFaultCorruptDeterministic(t *testing.T) {
	orig := bytes.Repeat([]byte{0x5a}, 64)
	run := func(seed uint64) []byte {
		a, b := Pipe()
		defer a.Close()
		fc := Fault(a, FaultPlan{Class: FaultCorrupt, Message: 0, Seed: seed})
		go fc.Send(orig)
		m, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m1, m2 := run(7), run(7)
	if bytes.Equal(m1, orig) {
		t.Fatal("corruption changed nothing")
	}
	if !bytes.Equal(m1, m2) {
		t.Fatal("same seed produced different corruption")
	}
	if bytes.Equal(run(8), m1) {
		t.Fatal("different seed produced identical corruption")
	}
	// The sender's buffer must not be modified in place.
	if !bytes.Equal(orig, bytes.Repeat([]byte{0x5a}, 64)) {
		t.Fatal("corrupt mutated the caller's buffer")
	}
}

func TestFaultDropLeavesPeerWaiting(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	fc := Fault(a, FaultPlan{Class: FaultDrop, Message: 0})
	if err := fc.Send([]byte("gone")); err != nil {
		t.Fatalf("drop must report success to the sender, got %v", err)
	}
	b.SetDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := b.Recv(); !IsTimeout(err) {
		t.Fatalf("peer err = %v, want timeout (message dropped)", err)
	}
}

func TestFaultDisconnect(t *testing.T) {
	a, b := Pipe()
	fc := Fault(a, FaultPlan{Class: FaultDisconnect, Message: 0})
	if err := fc.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("sender err = %v, want ErrClosed", err)
	}
	if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("peer err = %v, want ErrClosed", err)
	}
}

func TestFaultDelay(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	const delay = 60 * time.Millisecond
	fc := Fault(a, FaultPlan{Class: FaultDelay, Message: 0, Delay: delay})
	start := time.Now()
	go fc.Send([]byte("slow"))
	m, err := b.Recv()
	if err != nil || string(m) != "slow" {
		t.Fatalf("recv %q, %v", m, err)
	}
	if d := time.Since(start); d < delay {
		t.Fatalf("message arrived after %v, want >= %v", d, delay)
	}
}
