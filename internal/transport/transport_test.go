package transport

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	go func() {
		if err := a.Send([]byte("hello")); err != nil {
			t.Errorf("send: %v", err)
		}
	}()
	msg, err := b.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if string(msg) != "hello" {
		t.Fatalf("got %q", msg)
	}
}

func TestPipeCopiesBuffer(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	buf := []byte("abc")
	if err := a.Send(buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	msg, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(msg) != "abc" {
		t.Fatalf("send did not copy: got %q", msg)
	}
}

func TestPipeDuplex(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		a.Send([]byte("ping"))
		m, err := a.Recv()
		if err != nil || string(m) != "pong" {
			t.Errorf("a recv %q %v", m, err)
		}
	}()
	go func() {
		defer wg.Done()
		m, err := b.Recv()
		if err != nil || string(m) != "ping" {
			t.Errorf("b recv %q %v", m, err)
		}
		b.Send([]byte("pong"))
	}()
	wg.Wait()
}

func TestPipeCloseUnblocksRecv(t *testing.T) {
	a, b := Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Recv did not unblock after Close")
	}
}

func TestPipeSendAfterCloseFails(t *testing.T) {
	a, b := Pipe()
	_ = b
	a.Close()
	// The buffered channel may still accept a send; a closed pipe must
	// refuse. Fill behaviour: done channel closed wins the select? Both
	// cases ready: Go picks randomly, so send repeatedly until error.
	failed := false
	for i := 0; i < 100; i++ {
		if err := a.Send([]byte("x")); err == ErrClosed {
			failed = true
			break
		}
	}
	if !failed {
		t.Log("note: buffered pipe accepted sends after close (race-tolerant)")
	}
}

func TestMeteredPipeCountsBytesAndFlights(t *testing.T) {
	a, b, m := MeteredPipe()
	defer a.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		msg, _ := b.Recv()
		_ = msg
		b.Send(make([]byte, 10)) // B -> A: flight 2
		b.Send(make([]byte, 5))  // same direction: still flight 2
	}()
	a.Send(make([]byte, 100)) // A -> B: flight 1
	a.Recv()
	a.Recv()
	wg.Wait()
	s := m.Snapshot()
	if s.BytesAB != 100 {
		t.Errorf("BytesAB = %d, want 100", s.BytesAB)
	}
	if s.BytesBA != 15 {
		t.Errorf("BytesBA = %d, want 15", s.BytesBA)
	}
	if s.Messages != 3 {
		t.Errorf("Messages = %d, want 3", s.Messages)
	}
	if s.Flights != 2 {
		t.Errorf("Flights = %d, want 2", s.Flights)
	}
}

func TestMeterResetAndSub(t *testing.T) {
	a, b, m := MeteredPipe()
	defer a.Close()
	go func() { b.Recv() }()
	a.Send(make([]byte, 7))
	before := m.Snapshot()
	go func() { b.Recv() }()
	a.Send(make([]byte, 3))
	diff := m.Snapshot().Sub(before)
	if diff.BytesAB != 3 || diff.Messages != 1 {
		t.Errorf("diff = %+v", diff)
	}
	m.Reset()
	if s := m.Snapshot(); s.TotalBytes() != 0 || s.Flights != 0 {
		t.Errorf("after reset: %+v", s)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{BytesAB: 1, BytesBA: 2, Messages: 3, Flights: 4}
	b := Stats{BytesAB: 10, BytesBA: 20, Messages: 30, Flights: 40}
	got := a.Add(b)
	if got.BytesAB != 11 || got.BytesBA != 22 || got.Messages != 33 || got.Flights != 44 {
		t.Errorf("Add = %+v", got)
	}
}

func TestStreamConnOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := ln.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		sc := NewStream(c)
		defer sc.Close()
		msg, err := sc.Recv()
		if err != nil {
			t.Errorf("server recv: %v", err)
			return
		}
		sc.Send(append([]byte("echo:"), msg...))
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	cc := NewStream(c)
	defer cc.Close()
	payload := bytes.Repeat([]byte{0xAB}, 100000)
	if err := cc.Send(payload); err != nil {
		t.Fatalf("send: %v", err)
	}
	resp, err := cc.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if len(resp) != 100005 || !bytes.Equal(resp[5:], payload) {
		t.Fatalf("bad echo, len=%d", len(resp))
	}
	<-done
}

func TestStreamRejectsOversize(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	sc := NewStream(a)
	if err := sc.Send(make([]byte, MaxMessageSize+1)); err == nil {
		t.Fatal("oversize send accepted")
	}
}

func TestNetModelTimes(t *testing.T) {
	s := Stats{BytesAB: 9_000_000, Flights: 2} // 9 MB, one round trip
	got := WANTable3.NetworkTime(s)
	// 9MB at 9MB/s = 1s, plus 2 * 36ms = 72ms.
	want := time.Second + 72*time.Millisecond
	if got < want-time.Millisecond || got > want+time.Millisecond {
		t.Errorf("NetworkTime = %v, want ~%v", got, want)
	}
	if tt := WANTable3.TotalTime(time.Second, s); tt != got+time.Second {
		t.Errorf("TotalTime = %v", tt)
	}
}

func TestNetModelLANFasterThanWAN(t *testing.T) {
	s := Stats{BytesAB: 1 << 20, BytesBA: 1 << 20, Flights: 10}
	if LAN.NetworkTime(s) >= WANTable3.NetworkTime(s) {
		t.Error("LAN not faster than WAN for same traffic")
	}
}
