package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"
)

func TestPipeDeadlineExpiresRecv(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	_ = b
	if err := a.SetDeadline(time.Now().Add(30 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := a.Recv()
	if !errors.Is(err, ErrTimeout) || !IsTimeout(err) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline wildly late")
	}
}

func TestPipeDeadlineAbortsBlockedRecv(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	_ = b
	done := make(chan error, 1)
	go func() {
		_, err := a.Recv()
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	a.SetDeadline(time.Now()) // past deadline must abort the in-flight Recv
	select {
	case err := <-done:
		if !IsTimeout(err) {
			t.Fatalf("err = %v, want timeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not unblock on past deadline")
	}
}

func TestPipeDeadlineClearRearms(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	a.SetDeadline(time.Now().Add(-time.Second))
	if _, err := a.Recv(); !IsTimeout(err) {
		t.Fatalf("expired deadline: err = %v", err)
	}
	a.SetDeadline(time.Time{}) // clear
	go b.Send([]byte("late"))
	msg, err := a.Recv()
	if err != nil || string(msg) != "late" {
		t.Fatalf("after clear: %q, %v", msg, err)
	}
}

func TestPipeDeadlineExpiresSendWhenFull(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	_ = b
	a.SetDeadline(time.Now().Add(30 * time.Millisecond))
	// Fill the buffered channel until Send blocks, then require a timeout.
	var err error
	for i := 0; i < 2000; i++ {
		if err = a.Send([]byte{1}); err != nil {
			break
		}
	}
	if !IsTimeout(err) {
		t.Fatalf("err = %v, want timeout", err)
	}
}

func TestStreamDeadlineDelegates(t *testing.T) {
	na, nb := net.Pipe() // net.Pipe supports deadlines
	defer nb.Close()
	sc := NewStream(na)
	defer sc.Close()
	sc.SetDeadline(time.Now().Add(30 * time.Millisecond))
	_, err := sc.Recv()
	if !IsTimeout(err) {
		t.Fatalf("err = %v, want timeout", err)
	}
}

func TestStreamDeadlineUnsupported(t *testing.T) {
	sc := NewStream(&memStream{r: bytes.NewReader(nil)})
	if err := sc.SetDeadline(time.Now()); !errors.Is(err, ErrDeadlineUnsupported) {
		t.Fatalf("err = %v, want ErrDeadlineUnsupported", err)
	}
}

func TestStreamLimitSymmetric(t *testing.T) {
	var buf bytes.Buffer
	w := NewStreamLimit(&bufStream{w: &buf}, 16)
	if err := w.Send(make([]byte, 17)); err == nil {
		t.Fatal("oversize send accepted under custom limit")
	}
	if err := w.Send(make([]byte, 16)); err != nil {
		t.Fatalf("in-limit send rejected: %v", err)
	}

	// A peer announcing a frame over the limit must be rejected before the
	// body is read (or allocated).
	var frame bytes.Buffer
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], 17)
	frame.Write(hdr[:])
	frame.Write(make([]byte, 17))
	r := NewStreamLimit(&memStream{r: bytes.NewReader(frame.Bytes())}, 16)
	if _, err := r.Recv(); err == nil {
		t.Fatal("oversize announcement accepted under custom limit")
	}

	// A raised limit admits frames the default would also admit.
	big := NewStreamLimit(&bufStream{w: &buf}, MaxMessageSize*2)
	if err := big.Send(make([]byte, MaxMessageSize+1)); err != nil {
		t.Fatalf("raised limit still rejects: %v", err)
	}
}
