package transport

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stats aggregates the communication profile of a protocol execution
// between two parties: total bytes in each direction, message count, and
// the number of one-way flights (direction flips), which is what latency
// multiplies in a WAN.
//
// Two attributions are in use. A MeteredPipe observes both endpoints:
// party A is the first conn of the pair. A MeterEndpoint observes one
// endpoint only: party A is that endpoint itself, so BytesAB is what it
// sent and BytesBA what it received — over a lossless transport the two
// views agree.
type Stats struct {
	BytesAB  int64 // bytes sent by party A (the first conn of MeteredPipe)
	BytesBA  int64 // bytes sent by party B
	Messages int64 // framed messages in both directions
	Flights  int64 // direction changes; a request/response exchange is 2
}

// TotalBytes returns the sum of both directions.
func (s Stats) TotalBytes() int64 { return s.BytesAB + s.BytesBA }

// Sub returns the difference s - prev, for per-phase accounting.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		BytesAB:  s.BytesAB - prev.BytesAB,
		BytesBA:  s.BytesBA - prev.BytesBA,
		Messages: s.Messages - prev.Messages,
		Flights:  s.Flights - prev.Flights,
	}
}

// Add returns s + other.
func (s Stats) Add(other Stats) Stats {
	return Stats{
		BytesAB:  s.BytesAB + other.BytesAB,
		BytesBA:  s.BytesBA + other.BytesBA,
		Messages: s.Messages + other.Messages,
		Flights:  s.Flights + other.Flights,
	}
}

// Meter collects Stats for a connection pair. Safe for concurrent use.
type Meter struct {
	mu         sync.Mutex
	stats      Stats
	lastSender int // 0 none yet, 1 = A, 2 = B
}

// Snapshot returns the current totals.
func (m *Meter) Snapshot() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Reset zeroes the counters (the direction tracker too).
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats = Stats{}
	m.lastSender = 0
}

func (m *Meter) record(sender int, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recordLocked(sender, n)
}

func (m *Meter) recordLocked(sender int, n int) {
	if sender == 1 {
		m.stats.BytesAB += int64(n)
	} else {
		m.stats.BytesBA += int64(n)
	}
	m.stats.Messages++
	if m.lastSender != sender {
		m.stats.Flights++
		m.lastSender = sender
	}
}

// meteredConn wraps a Conn, attributing sent bytes to one party.
type meteredConn struct {
	Conn
	meter *Meter
	party int
}

func (c *meteredConn) Send(msg []byte) error {
	// Record only after the transport accepts the message: a failed or
	// faulted send (timeout, injected fault, closed conn) moved nothing,
	// and counting it would inflate Stats. The meter lock is held across
	// the transport send so the two endpoints' records land in wire
	// order — otherwise the peer could receive this message and record
	// its response before we record the send, making the shared flight
	// count depend on scheduling.
	c.meter.mu.Lock()
	defer c.meter.mu.Unlock()
	if err := c.Conn.Send(msg); err != nil {
		return err
	}
	c.meter.recordLocked(c.party, len(msg))
	return nil
}

// MeteredPipe returns an in-memory connected pair whose traffic is recorded
// in the returned Meter. The first connection is party A for accounting.
func MeteredPipe() (Conn, Conn, *Meter) {
	a, b := Pipe()
	m := &Meter{}
	return &meteredConn{Conn: a, meter: m, party: 1},
		&meteredConn{Conn: b, meter: m, party: 2},
		m
}

// Metered wraps an existing pair of connections with a shared meter.
// The conns must be the two ends of the same channel.
func Metered(a, b Conn) (Conn, Conn, *Meter) {
	m := &Meter{}
	return &meteredConn{Conn: a, meter: m, party: 1},
		&meteredConn{Conn: b, meter: m, party: 2},
		m
}

// FlightFunc observes one successfully framed message crossing an
// observed endpoint: the direction ("send" or "recv"), the 1-based
// per-direction sequence number, the framed payload size, and the time
// the transport completed the operation. Implementations must be safe
// for concurrent calls and must not block: they run on the wire path.
type FlightFunc func(dir string, seq int64, n int, at time.Time)

// endpointConn meters a single endpoint in both directions: its sends
// are recorded as party A, its receives as party B. An optional
// FlightFunc additionally stamps every message with a per-direction
// ordinal and a timestamp.
type endpointConn struct {
	Conn
	meter   *Meter
	obs     FlightFunc
	sendSeq atomic.Int64
	recvSeq atomic.Int64
}

func (c *endpointConn) Send(msg []byte) error {
	if err := c.Conn.Send(msg); err != nil {
		return err
	}
	c.meter.record(1, len(msg))
	if c.obs != nil {
		c.obs("send", c.sendSeq.Add(1), len(msg), time.Now())
	}
	return nil
}

func (c *endpointConn) Recv() ([]byte, error) {
	msg, err := c.Conn.Recv()
	if err != nil {
		return nil, err
	}
	c.meter.record(2, len(msg))
	if c.obs != nil {
		c.obs("recv", c.recvSeq.Add(1), len(msg), time.Now())
	}
	return msg, nil
}

// MeterEndpoint wraps one endpoint of any connection — a TCP stream, a
// pipe half, a fault wrapper — so that the returned Meter observes both
// directions from this side alone, with no cooperation from the peer:
// in the returned Stats, BytesAB is what this endpoint sent and BytesBA
// what it received. Only successfully transferred messages are counted.
func MeterEndpoint(c Conn) (Conn, *Meter) {
	return MeterEndpointObserved(c, nil)
}

// MeterEndpointObserved is MeterEndpoint with a flight observer: obs
// (when non-nil) is called once per successfully transferred message
// with its direction, per-direction ordinal, size, and completion time.
// Because the transport is ordered and lossless, the i-th "send" at one
// endpoint is the i-th "recv" at its peer, which lets an offline merge
// pair the two parties' stamps without any wire-format change.
func MeterEndpointObserved(c Conn, obs FlightFunc) (Conn, *Meter) {
	m := &Meter{}
	return &endpointConn{Conn: c, meter: m, obs: obs}, m
}
