package transport

import "sync"

// Stats aggregates the communication profile of a protocol execution
// between two parties: total bytes in each direction, message count, and
// the number of one-way flights (direction flips), which is what latency
// multiplies in a WAN.
type Stats struct {
	BytesAB  int64 // bytes sent by party A (the first conn of MeteredPipe)
	BytesBA  int64 // bytes sent by party B
	Messages int64 // framed messages in both directions
	Flights  int64 // direction changes; a request/response exchange is 2
}

// TotalBytes returns the sum of both directions.
func (s Stats) TotalBytes() int64 { return s.BytesAB + s.BytesBA }

// Sub returns the difference s - prev, for per-phase accounting.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		BytesAB:  s.BytesAB - prev.BytesAB,
		BytesBA:  s.BytesBA - prev.BytesBA,
		Messages: s.Messages - prev.Messages,
		Flights:  s.Flights - prev.Flights,
	}
}

// Add returns s + other.
func (s Stats) Add(other Stats) Stats {
	return Stats{
		BytesAB:  s.BytesAB + other.BytesAB,
		BytesBA:  s.BytesBA + other.BytesBA,
		Messages: s.Messages + other.Messages,
		Flights:  s.Flights + other.Flights,
	}
}

// Meter collects Stats for a connection pair. Safe for concurrent use.
type Meter struct {
	mu         sync.Mutex
	stats      Stats
	lastSender int // 0 none yet, 1 = A, 2 = B
}

// Snapshot returns the current totals.
func (m *Meter) Snapshot() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Reset zeroes the counters (the direction tracker too).
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats = Stats{}
	m.lastSender = 0
}

func (m *Meter) record(sender int, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if sender == 1 {
		m.stats.BytesAB += int64(n)
	} else {
		m.stats.BytesBA += int64(n)
	}
	m.stats.Messages++
	if m.lastSender != sender {
		m.stats.Flights++
		m.lastSender = sender
	}
}

// meteredConn wraps a Conn, attributing sent bytes to one party.
type meteredConn struct {
	Conn
	meter *Meter
	party int
}

func (c *meteredConn) Send(msg []byte) error {
	// Record before sending so a concurrent receiver observing the message
	// also observes the accounting.
	c.meter.record(c.party, len(msg))
	return c.Conn.Send(msg)
}

// MeteredPipe returns an in-memory connected pair whose traffic is recorded
// in the returned Meter. The first connection is party A for accounting.
func MeteredPipe() (Conn, Conn, *Meter) {
	a, b := Pipe()
	m := &Meter{}
	return &meteredConn{Conn: a, meter: m, party: 1},
		&meteredConn{Conn: b, meter: m, party: 2},
		m
}

// Metered wraps an existing pair of connections with a shared meter.
// The conns must be the two ends of the same channel.
func Metered(a, b Conn) (Conn, Conn, *Meter) {
	m := &Meter{}
	return &meteredConn{Conn: a, meter: m, party: 1},
		&meteredConn{Conn: b, meter: m, party: 2},
		m
}
