// Package transport provides the two-party communication substrate for all
// protocols in this repository: message-framed connections, byte/round
// metering, and analytic LAN/WAN network models.
//
// The paper evaluates on real links shaped with Linux traffic control; we
// instead measure the exact bytes and communication rounds of every
// protocol run and apply the published link parameters analytically (see
// DESIGN.md, "Substitutions"). A real TCP transport is also provided for
// the two-process demo binaries.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Conn is one endpoint of a two-party message channel. Send transfers one
// framed message to the peer; Recv blocks for the next message. A Conn is
// not safe for concurrent Sends or concurrent Recvs, but one goroutine may
// Send while another Recvs (full duplex).
type Conn interface {
	Send(msg []byte) error
	Recv() ([]byte, error)
	Close() error
}

// ErrClosed is returned by operations on a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// pipeHalf is one endpoint of an in-memory duplex pipe.
type pipeHalf struct {
	out  chan<- []byte
	in   <-chan []byte
	done chan struct{}
	once *sync.Once
	peer *pipeHalf
}

// Pipe returns a connected pair of in-memory connections. Messages are
// copied on Send, so callers may reuse buffers.
func Pipe() (Conn, Conn) {
	ab := make(chan []byte, 1024)
	ba := make(chan []byte, 1024)
	done := make(chan struct{})
	once := &sync.Once{}
	a := &pipeHalf{out: ab, in: ba, done: done, once: once}
	b := &pipeHalf{out: ba, in: ab, done: done, once: once}
	a.peer, b.peer = b, a
	return a, b
}

func (p *pipeHalf) Send(msg []byte) error {
	cp := make([]byte, len(msg))
	copy(cp, msg)
	select {
	case p.out <- cp:
		return nil
	case <-p.done:
		return ErrClosed
	}
}

func (p *pipeHalf) Recv() ([]byte, error) {
	select {
	case msg := <-p.in:
		return msg, nil
	case <-p.done:
		// Drain any message that raced with Close so protocols that close
		// immediately after their final send still deliver it.
		select {
		case msg := <-p.in:
			return msg, nil
		default:
			return nil, ErrClosed
		}
	}
}

func (p *pipeHalf) Close() error {
	p.once.Do(func() { close(p.done) })
	return nil
}

// streamConn frames messages over an io.ReadWriteCloser (e.g. a TCP
// connection) with a 4-byte little-endian length prefix.
type streamConn struct {
	rw     io.ReadWriteCloser
	sendMu sync.Mutex
	recvMu sync.Mutex
}

// MaxMessageSize bounds a single framed message (64 MiB). Larger frames
// indicate a protocol bug or a hostile peer.
const MaxMessageSize = 64 << 20

// NewStream wraps a byte stream (such as a *net.TCPConn) as a framed Conn.
func NewStream(rw io.ReadWriteCloser) Conn { return &streamConn{rw: rw} }

func (s *streamConn) Send(msg []byte) error {
	if len(msg) > MaxMessageSize {
		return fmt.Errorf("transport: message of %d bytes exceeds limit", len(msg))
	}
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(msg)))
	if _, err := s.rw.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: send header: %w", err)
	}
	if _, err := s.rw.Write(msg); err != nil {
		return fmt.Errorf("transport: send body: %w", err)
	}
	return nil
}

func (s *streamConn) Recv() ([]byte, error) {
	s.recvMu.Lock()
	defer s.recvMu.Unlock()
	var hdr [4]byte
	if _, err := io.ReadFull(s.rw, hdr[:]); err != nil {
		return nil, fmt.Errorf("transport: recv header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxMessageSize {
		return nil, fmt.Errorf("transport: peer announced %d-byte message, exceeds limit", n)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(s.rw, msg); err != nil {
		return nil, fmt.Errorf("transport: recv body: %w", err)
	}
	return msg, nil
}

func (s *streamConn) Close() error { return s.rw.Close() }
