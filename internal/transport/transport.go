// Package transport provides the two-party communication substrate for all
// protocols in this repository: message-framed connections, byte/round
// metering, deadlines, fault injection, and analytic LAN/WAN network
// models.
//
// The paper evaluates on real links shaped with Linux traffic control; we
// instead measure the exact bytes and communication rounds of every
// protocol run and apply the published link parameters analytically (see
// DESIGN.md, "Substitutions"). A real TCP transport is also provided for
// the two-process demo binaries.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Conn is one endpoint of a two-party message channel. Send transfers one
// framed message to the peer; Recv blocks for the next message. A Conn is
// not safe for concurrent Sends or concurrent Recvs, but one goroutine may
// Send while another Recvs (full duplex).
//
// SetDeadline bounds all current and future Send/Recv calls: operations
// that have not completed by t fail with a timeout error (IsTimeout
// reports true). The zero time clears the deadline. SetDeadline may be
// called concurrently with blocked operations to abort them, which is how
// the session layer implements cancellation.
type Conn interface {
	Send(msg []byte) error
	Recv() ([]byte, error)
	SetDeadline(t time.Time) error
	Close() error
}

// ErrClosed is returned by operations on a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// ErrTimeout is returned by pipe connections when a deadline expires.
// Stream connections surface the underlying net.Conn timeout instead;
// use IsTimeout to classify both.
var ErrTimeout error = &timeoutError{}

type timeoutError struct{}

func (*timeoutError) Error() string   { return "transport: deadline exceeded" }
func (*timeoutError) Timeout() bool   { return true }
func (*timeoutError) Temporary() bool { return true }

// ErrDeadlineUnsupported is returned by SetDeadline on stream connections
// whose underlying ReadWriteCloser has no deadline mechanism (for example
// a bytes.Buffer). Callers that arm deadlines opportunistically should
// treat it as "no enforcement available", not as a failure.
var ErrDeadlineUnsupported = errors.New("transport: underlying stream does not support deadlines")

// IsTimeout reports whether err was caused by an expired deadline, either
// a pipe ErrTimeout or a net.Conn / os deadline error.
func IsTimeout(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrTimeout) || errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var t interface{ Timeout() bool }
	return errors.As(err, &t) && t.Timeout()
}

// deadline is a resettable cancellation signal driven by a wall-clock
// deadline, after net.pipeDeadline: wait() returns a channel that is
// closed once the currently-set deadline passes.
type deadline struct {
	mu     sync.Mutex
	timer  *time.Timer
	cancel chan struct{}
}

func makeDeadline() deadline { return deadline{cancel: make(chan struct{})} }

func isClosedChan(c <-chan struct{}) bool {
	select {
	case <-c:
		return true
	default:
		return false
	}
}

// set arms the deadline at t; the zero time disarms it.
func (d *deadline) set(t time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.timer != nil && !d.timer.Stop() {
		<-d.cancel // the timer fired; wait for its close to complete
	}
	d.timer = nil
	closed := isClosedChan(d.cancel)
	if t.IsZero() {
		if closed {
			d.cancel = make(chan struct{})
		}
		return
	}
	if dur := time.Until(t); dur > 0 {
		if closed {
			d.cancel = make(chan struct{})
		}
		cancel := d.cancel
		d.timer = time.AfterFunc(dur, func() { close(cancel) })
		return
	}
	if !closed {
		close(d.cancel)
	}
}

// wait returns the channel closed when the armed deadline passes.
func (d *deadline) wait() chan struct{} {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cancel
}

// pipeHalf is one endpoint of an in-memory duplex pipe.
type pipeHalf struct {
	out  chan<- []byte
	in   <-chan []byte
	done chan struct{}
	once *sync.Once
	peer *pipeHalf
	dl   deadline
}

// Pipe returns a connected pair of in-memory connections. Messages are
// copied on Send, so callers may reuse buffers.
func Pipe() (Conn, Conn) {
	ab := make(chan []byte, 1024)
	ba := make(chan []byte, 1024)
	done := make(chan struct{})
	once := &sync.Once{}
	a := &pipeHalf{out: ab, in: ba, done: done, once: once, dl: makeDeadline()}
	b := &pipeHalf{out: ba, in: ab, done: done, once: once, dl: makeDeadline()}
	a.peer, b.peer = b, a
	return a, b
}

func (p *pipeHalf) Send(msg []byte) error {
	cp := make([]byte, len(msg))
	copy(cp, msg)
	select {
	case p.out <- cp:
		return nil
	case <-p.done:
		return ErrClosed
	case <-p.dl.wait():
		return ErrTimeout
	}
}

func (p *pipeHalf) Recv() ([]byte, error) {
	select {
	case msg := <-p.in:
		return msg, nil
	case <-p.done:
		// Drain any message that raced with Close so protocols that close
		// immediately after their final send still deliver it.
		select {
		case msg := <-p.in:
			return msg, nil
		default:
			return nil, ErrClosed
		}
	case <-p.dl.wait():
		return nil, ErrTimeout
	}
}

// SetDeadline bounds this endpoint's Send and Recv calls, including ones
// already blocked.
func (p *pipeHalf) SetDeadline(t time.Time) error {
	p.dl.set(t)
	return nil
}

func (p *pipeHalf) Close() error {
	p.once.Do(func() { close(p.done) })
	return nil
}

// streamConn frames messages over an io.ReadWriteCloser (e.g. a TCP
// connection) with a 4-byte little-endian length prefix.
type streamConn struct {
	rw     io.ReadWriteCloser
	limit  int
	sendMu sync.Mutex
	recvMu sync.Mutex
}

// MaxMessageSize is the default bound on a single framed message
// (64 MiB). Larger frames indicate a protocol bug or a hostile peer.
// NewStreamLimit raises or lowers the bound per connection.
const MaxMessageSize = 64 << 20

// NewStream wraps a byte stream (such as a *net.TCPConn) as a framed Conn
// with the default MaxMessageSize frame limit.
func NewStream(rw io.ReadWriteCloser) Conn { return NewStreamLimit(rw, 0) }

// NewStreamLimit is NewStream with an explicit per-message size limit,
// enforced symmetrically: Send refuses to emit a larger frame and Recv
// rejects a larger announced frame before allocating for it. limit <= 0
// selects the default MaxMessageSize. Both parties must agree on the
// limit (it is public protocol configuration, like the ring width).
func NewStreamLimit(rw io.ReadWriteCloser, limit int) Conn {
	if limit <= 0 {
		limit = MaxMessageSize
	}
	return &streamConn{rw: rw, limit: limit}
}

func (s *streamConn) Send(msg []byte) error {
	if len(msg) > s.limit {
		return fmt.Errorf("transport: message of %d bytes exceeds %d-byte limit", len(msg), s.limit)
	}
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(msg)))
	if _, err := s.rw.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: send header: %w", err)
	}
	if _, err := s.rw.Write(msg); err != nil {
		return fmt.Errorf("transport: send body: %w", err)
	}
	return nil
}

func (s *streamConn) Recv() ([]byte, error) {
	s.recvMu.Lock()
	defer s.recvMu.Unlock()
	var hdr [4]byte
	if _, err := io.ReadFull(s.rw, hdr[:]); err != nil {
		return nil, fmt.Errorf("transport: recv header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	// Reject before allocating: the 4-byte header alone must never let a
	// hostile peer provoke an arbitrary-size allocation.
	if int64(n) > int64(s.limit) {
		return nil, fmt.Errorf("transport: peer announced %d-byte message, exceeds %d-byte limit", n, s.limit)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(s.rw, msg); err != nil {
		return nil, fmt.Errorf("transport: recv body: %w", err)
	}
	return msg, nil
}

// SetDeadline delegates to the underlying stream when it has deadline
// support (net.Conn does); otherwise it reports ErrDeadlineUnsupported.
func (s *streamConn) SetDeadline(t time.Time) error {
	if d, ok := s.rw.(interface{ SetDeadline(time.Time) error }); ok {
		return d.SetDeadline(t)
	}
	return ErrDeadlineUnsupported
}

func (s *streamConn) Close() error { return s.rw.Close() }
