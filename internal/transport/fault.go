package transport

import (
	"sync"
	"time"
)

// Fault injection for chaos testing. A FaultConn wraps one endpoint of a
// connection and deterministically injects a single fault at the i-th
// outgoing message: an added delay, a truncated frame, corrupted bytes, a
// silently dropped message, or a hard disconnect. Everything is driven by
// the FaultPlan — no randomness outside the seeded corruption — so a
// failing chaos case replays exactly.

// FaultClass selects the kind of injected fault.
type FaultClass int

const (
	// FaultNone injects nothing; the wrapper only counts messages. Useful
	// for discovering how many messages a protocol sends.
	FaultNone FaultClass = iota
	// FaultDelay sleeps for Plan.Delay before sending the i-th message.
	FaultDelay
	// FaultTruncate sends only the first half of the i-th message (an
	// empty frame when the message is a single byte).
	FaultTruncate
	// FaultCorrupt flips seed-selected bits of the i-th message.
	FaultCorrupt
	// FaultDrop silently discards the i-th message and reports success.
	FaultDrop
	// FaultDisconnect closes the connection instead of sending the i-th
	// message.
	FaultDisconnect
)

// FaultClasses lists every injectable fault, for chaos-suite iteration.
var FaultClasses = []FaultClass{FaultDelay, FaultTruncate, FaultCorrupt, FaultDrop, FaultDisconnect}

func (c FaultClass) String() string {
	switch c {
	case FaultNone:
		return "none"
	case FaultDelay:
		return "delay"
	case FaultTruncate:
		return "truncate"
	case FaultCorrupt:
		return "corrupt"
	case FaultDrop:
		return "drop"
	case FaultDisconnect:
		return "disconnect"
	}
	return "unknown"
}

// FaultPlan describes one injected fault.
type FaultPlan struct {
	Class   FaultClass
	Message int           // 0-based index of the outgoing message to fault
	Seed    uint64        // selects the corrupted bits for FaultCorrupt
	Delay   time.Duration // sleep length for FaultDelay
}

// FaultConn wraps a Conn with a deterministic single-fault plan. It is
// safe for the full-duplex use pattern of Conn (one sender, one
// receiver).
type FaultConn struct {
	inner Conn
	plan  FaultPlan

	mu    sync.Mutex
	sends int
	fired bool
}

// Fault wraps conn with the given plan.
func Fault(conn Conn, plan FaultPlan) *FaultConn {
	return &FaultConn{inner: conn, plan: plan}
}

// Sends returns how many Send calls the wrapper has observed.
func (f *FaultConn) Sends() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sends
}

// Fired reports whether the planned fault has been injected, i.e. the
// protocol reached the faulted message index.
func (f *FaultConn) Fired() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

func (f *FaultConn) Send(msg []byte) error {
	f.mu.Lock()
	idx := f.sends
	f.sends++
	inject := f.plan.Class != FaultNone && idx == f.plan.Message
	if inject {
		f.fired = true
	}
	f.mu.Unlock()
	if !inject {
		return f.inner.Send(msg)
	}
	switch f.plan.Class {
	case FaultDelay:
		time.Sleep(f.plan.Delay)
		return f.inner.Send(msg)
	case FaultTruncate:
		return f.inner.Send(msg[:len(msg)/2])
	case FaultCorrupt:
		cp := make([]byte, len(msg))
		copy(cp, msg)
		corrupt(cp, f.plan.Seed)
		return f.inner.Send(cp)
	case FaultDrop:
		return nil // swallowed; the peer waits for a frame that never comes
	case FaultDisconnect:
		f.inner.Close()
		return ErrClosed
	}
	return f.inner.Send(msg)
}

func (f *FaultConn) Recv() ([]byte, error) { return f.inner.Recv() }

func (f *FaultConn) SetDeadline(t time.Time) error { return f.inner.SetDeadline(t) }

func (f *FaultConn) Close() error { return f.inner.Close() }

// corrupt flips 1 + len(b)/64 seed-selected bits of b in place.
func corrupt(b []byte, seed uint64) {
	if len(b) == 0 {
		return
	}
	x := seed | 1
	for i := 0; i <= len(b)/64; i++ {
		// splitmix64 step: cheap, deterministic, and well-mixed.
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		b[int(z%uint64(len(b)))] ^= 1 << (z >> 61)
	}
}
