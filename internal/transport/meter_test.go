package transport

import (
	"math/rand"
	"sync"
	"testing"
)

// A send that fails must leave Stats untouched: the bytes never moved.
// Regression test for the metered wrapper recording before Conn.Send
// returned, which inflated Stats under fault injection.
func TestMeterSkipsFailedSends(t *testing.T) {
	a, b := Pipe()
	ma, _, meter := Metered(Fault(a, FaultPlan{Class: FaultDisconnect, Message: 1}), b)

	if err := ma.Send([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := ma.Send([]byte("never-arrives")); err == nil {
		t.Fatal("faulted send reported success")
	}
	s := meter.Snapshot()
	if s.BytesAB != 2 || s.Messages != 1 || s.Flights != 1 {
		t.Fatalf("stats after faulted send = %+v, want 2 bytes / 1 message / 1 flight", s)
	}
}

func TestMeterEndpointSkipsFailedOps(t *testing.T) {
	a, b := Pipe()
	// The fault plan fails the second send deterministically (and closes
	// the connection, so the following Recv fails too).
	ma, meter := MeterEndpoint(Fault(a, FaultPlan{Class: FaultDisconnect, Message: 1}))
	if err := ma.Send([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	if err := ma.Send([]byte("never-arrives")); err == nil {
		t.Fatal("faulted send reported success")
	}
	if _, err := ma.Recv(); err == nil {
		t.Fatal("recv on disconnected conn reported success")
	}
	s := meter.Snapshot()
	if s.BytesAB != 3 || s.BytesBA != 0 || s.Messages != 1 {
		t.Fatalf("stats = %+v, want only the successful 3-byte send", s)
	}
}

// Single-ended metering must agree with the two-ended pipe meter.
func TestMeterEndpointMatchesPipeMeter(t *testing.T) {
	pa, pb, pipeMeter := MeteredPipe()
	a, aMeter := MeterEndpoint(pa)
	b, bMeter := MeterEndpoint(pb)

	done := make(chan error, 1)
	go func() {
		for i := 0; i < 10; i++ {
			if _, err := b.Recv(); err != nil {
				done <- err
				return
			}
			if err := b.Send(make([]byte, 7)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 10; i++ {
		if err := a.Send(make([]byte, 100+i)); err != nil {
			t.Fatal(err)
		}
		if _, err := a.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	want := pipeMeter.Snapshot()
	got := aMeter.Snapshot()
	if got != want {
		t.Fatalf("endpoint view %+v, pipe view %+v", got, want)
	}
	// B's view swaps directions: its sends are the pipe's BA traffic.
	bGot := bMeter.Snapshot()
	if bGot.BytesAB != want.BytesBA || bGot.BytesBA != want.BytesAB {
		t.Fatalf("peer endpoint view %+v vs pipe view %+v", bGot, want)
	}
	if bGot.Messages != want.Messages || bGot.Flights != want.Flights {
		t.Fatalf("peer message/flight view %+v vs pipe view %+v", bGot, want)
	}
}

// Concurrent senders on both parties: totals must be exact and the
// flight count bounded by [2, Messages] — flights are direction changes,
// so interleaving affects where they fall but not their invariants.
func TestMeterFlightCountingUnderConcurrentSenders(t *testing.T) {
	const perSide = 200
	a, b, meter := MeteredPipe()

	var wg sync.WaitGroup
	recv := func(c Conn) {
		defer wg.Done()
		for i := 0; i < perSide; i++ {
			if _, err := c.Recv(); err != nil {
				t.Errorf("recv: %v", err)
				return
			}
		}
	}
	send := func(c Conn, size int) {
		defer wg.Done()
		for i := 0; i < perSide; i++ {
			if err := c.Send(make([]byte, size)); err != nil {
				t.Errorf("send: %v", err)
				return
			}
		}
	}
	wg.Add(4)
	go recv(a)
	go recv(b)
	go send(a, 3)
	go send(b, 5)
	wg.Wait()

	s := meter.Snapshot()
	if s.BytesAB != perSide*3 || s.BytesBA != perSide*5 {
		t.Fatalf("byte totals = %+v", s)
	}
	if s.Messages != 2*perSide {
		t.Fatalf("messages = %d, want %d", s.Messages, 2*perSide)
	}
	if s.Flights < 2 || s.Flights > s.Messages {
		t.Fatalf("flights = %d outside [2, %d]", s.Flights, s.Messages)
	}
}

// Property-style identities for the Stats arithmetic used in per-phase
// accounting.
func TestStatsSubAddIdentities(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randStats := func() Stats {
		return Stats{
			BytesAB:  rng.Int63n(1 << 40),
			BytesBA:  rng.Int63n(1 << 40),
			Messages: rng.Int63n(1 << 20),
			Flights:  rng.Int63n(1 << 20),
		}
	}
	for i := 0; i < 1000; i++ {
		s, o, p := randStats(), randStats(), randStats()
		if got := s.Add(o).Sub(o); got != s {
			t.Fatalf("(s+o)-o = %+v, want %+v", got, s)
		}
		if got := s.Sub(s); got != (Stats{}) {
			t.Fatalf("s-s = %+v, want zero", got)
		}
		if got := s.Add(Stats{}); got != s {
			t.Fatalf("s+0 = %+v, want %+v", got, s)
		}
		if s.Add(o) != o.Add(s) {
			t.Fatal("Add is not commutative")
		}
		if s.Add(o).Add(p) != s.Add(o.Add(p)) {
			t.Fatal("Add is not associative")
		}
		if got, want := s.Add(o).TotalBytes(), s.TotalBytes()+o.TotalBytes(); got != want {
			t.Fatalf("TotalBytes additivity: %d vs %d", got, want)
		}
	}
}
