package ring

import "fmt"

// Vec is a vector of ring elements. The ring it belongs to is carried by
// the operations, not the data, so a Vec can be reinterpreted in a smaller
// ring by reducing.
type Vec []Elem

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// AddVec returns a+b elementwise. It panics on length mismatch: share
// vectors of different layers must never be mixed.
func (r Ring) AddVec(a, b Vec) Vec {
	mustSameLen(len(a), len(b))
	out := make(Vec, len(a))
	for i := range a {
		out[i] = (a[i] + b[i]) & r.mask
	}
	return out
}

// AddVecInPlace sets a[i] += b[i] mod 2^l.
func (r Ring) AddVecInPlace(a, b Vec) {
	mustSameLen(len(a), len(b))
	for i := range a {
		a[i] = (a[i] + b[i]) & r.mask
	}
}

// SubVec returns a-b elementwise.
func (r Ring) SubVec(a, b Vec) Vec {
	mustSameLen(len(a), len(b))
	out := make(Vec, len(a))
	for i := range a {
		out[i] = (a[i] - b[i]) & r.mask
	}
	return out
}

// NegVec returns -a elementwise.
func (r Ring) NegVec(a Vec) Vec {
	out := make(Vec, len(a))
	for i := range a {
		out[i] = (-a[i]) & r.mask
	}
	return out
}

// Dot returns the inner product <a, b> mod 2^l.
func (r Ring) Dot(a, b Vec) Elem {
	mustSameLen(len(a), len(b))
	var acc uint64
	for i := range a {
		acc += a[i] * b[i]
	}
	return acc & r.mask
}

// ScaleVec returns c*a elementwise for a public constant c.
func (r Ring) ScaleVec(c uint64, a Vec) Vec {
	out := make(Vec, len(a))
	for i := range a {
		out[i] = (c * a[i]) & r.mask
	}
	return out
}

// ReduceVec reduces every element of v into the ring, in place, and
// returns v for chaining.
func (r Ring) ReduceVec(v Vec) Vec {
	for i := range v {
		v[i] &= r.mask
	}
	return v
}

// EqualVec reports elementwise equality after reduction.
func (r Ring) EqualVec(a, b Vec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i]&r.mask != b[i]&r.mask {
			return false
		}
	}
	return true
}

// Mat is a dense row-major matrix of ring elements.
type Mat struct {
	Rows, Cols int
	Data       Vec // len Rows*Cols, row-major
}

// NewMat returns a zero Rows x Cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("ring: invalid matrix shape %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make(Vec, rows*cols)}
}

// At returns element (i, j).
func (m *Mat) At(i, j int) Elem { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v Elem) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Mat) Row(i int) Vec { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	return &Mat{Rows: m.Rows, Cols: m.Cols, Data: m.Data.Clone()}
}

// MulVec returns m . x mod 2^l, an m.Rows-length vector.
func (r Ring) MulVec(m *Mat, x Vec) Vec {
	if m.Cols != len(x) {
		panic(fmt.Sprintf("ring: matvec shape mismatch %dx%d . %d", m.Rows, m.Cols, len(x)))
	}
	out := make(Vec, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var acc uint64
		for j := range row {
			acc += row[j] * x[j]
		}
		out[i] = acc & r.mask
	}
	return out
}

// MulMat returns a . b mod 2^l.
func (r Ring) MulMat(a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("ring: matmul shape mismatch %dx%d . %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMat(a.Rows, b.Cols)
	r.MulMatRows(a, b, out, 0, a.Rows)
	return out
}

// MulMatRows computes rows [lo, hi) of the product a . b into the
// preallocated a.Rows x b.Cols matrix out. Disjoint row ranges touch
// disjoint slices of out, so ranges may run concurrently — this is the
// row-sliced kernel behind the parallel matmul in internal/core.
func (r Ring) MulMatRows(a, b, out *Mat, lo, hi int) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("ring: matmul shape mismatch %dx%d . %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("ring: matmul output is %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Cols))
	}
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range brow {
				orow[j] += av * brow[j]
			}
		}
		for j := range orow {
			orow[j] &= r.mask
		}
	}
}

// AddMat returns a+b elementwise.
func (r Ring) AddMat(a, b *Mat) *Mat {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("ring: matrix add shape mismatch")
	}
	return &Mat{Rows: a.Rows, Cols: a.Cols, Data: r.AddVec(a.Data, b.Data)}
}

// SubMat returns a-b elementwise.
func (r Ring) SubMat(a, b *Mat) *Mat {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("ring: matrix sub shape mismatch")
	}
	return &Mat{Rows: a.Rows, Cols: a.Cols, Data: r.SubVec(a.Data, b.Data)}
}

// EqualMat reports equality of shape and (reduced) contents.
func (r Ring) EqualMat(a, b *Mat) bool {
	return a.Rows == b.Rows && a.Cols == b.Cols && r.EqualVec(a.Data, b.Data)
}

func mustSameLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("ring: vector length mismatch %d vs %d", a, b))
	}
}
