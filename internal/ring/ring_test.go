package ring

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadWidth(t *testing.T) {
	for _, bits := range []uint{0, 65, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", bits)
				}
			}()
			New(bits)
		}()
	}
}

func TestMaskAndBytes(t *testing.T) {
	cases := []struct {
		bits  uint
		mask  uint64
		bytes int
	}{
		{1, 1, 1},
		{8, 0xff, 1},
		{12, 0xfff, 2},
		{32, 0xffffffff, 4},
		{63, (1 << 63) - 1, 8},
		{64, ^uint64(0), 8},
	}
	for _, c := range cases {
		r := New(c.bits)
		if r.Mask() != c.mask {
			t.Errorf("bits=%d mask=%x want %x", c.bits, r.Mask(), c.mask)
		}
		if r.Bytes() != c.bytes {
			t.Errorf("bits=%d bytes=%d want %d", c.bits, r.Bytes(), c.bytes)
		}
	}
}

func TestArithmeticIdentities32(t *testing.T) {
	r := New(32)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a, b := rng.Uint64()&r.Mask(), rng.Uint64()&r.Mask()
		if got := r.Add(a, r.Neg(a)); got != 0 {
			t.Fatalf("a + (-a) = %d, want 0", got)
		}
		if r.Sub(r.Add(a, b), b) != a {
			t.Fatalf("(a+b)-b != a")
		}
		if r.Add(a, b) != r.Add(b, a) {
			t.Fatalf("add not commutative")
		}
		if r.Mul(a, b) != r.Mul(b, a) {
			t.Fatalf("mul not commutative")
		}
	}
}

func TestSignedRoundTrip(t *testing.T) {
	for _, bits := range []uint{8, 16, 32, 53, 64} {
		r := New(bits)
		half := int64(1) << (bits - 1)
		vals := []int64{0, 1, -1, half - 1, -half, 7, -42}
		for _, v := range vals {
			if got := r.Signed(r.FromSigned(v)); got != v {
				t.Errorf("bits=%d roundtrip(%d) = %d", bits, v, got)
			}
		}
	}
}

func TestIsNegative(t *testing.T) {
	r := New(16)
	if r.IsNegative(r.FromSigned(5)) {
		t.Error("5 reported negative")
	}
	if !r.IsNegative(r.FromSigned(-5)) {
		t.Error("-5 reported non-negative")
	}
	if r.IsNegative(0) {
		t.Error("0 reported negative")
	}
	// Boundary: -2^15 is negative, 2^15-1 is not.
	if !r.IsNegative(r.FromSigned(-32768)) {
		t.Error("-2^15 reported non-negative")
	}
	if r.IsNegative(r.FromSigned(32767)) {
		t.Error("2^15-1 reported negative")
	}
}

func TestFixedPointRoundTrip(t *testing.T) {
	fp := NewFixedPoint(New(32), 12)
	for _, v := range []float64{0, 1, -1, 3.14159, -2.71828, 100.5, -0.000244140625} {
		got := fp.Decode(fp.Encode(v))
		if diff := got - v; diff > 1.0/4096 || diff < -1.0/4096 {
			t.Errorf("fixed point roundtrip(%v) = %v", v, got)
		}
	}
}

func TestFixedPointMaxAbs(t *testing.T) {
	fp := NewFixedPoint(New(16), 8)
	if fp.MaxAbs() != 128 {
		t.Errorf("MaxAbs = %v, want 128", fp.MaxAbs())
	}
}

func TestNewFixedPointPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewFixedPoint with frac >= bits did not panic")
		}
	}()
	NewFixedPoint(New(8), 8)
}

// Property: addition in the ring matches uint64 addition reduced mod 2^l.
func TestAddMatchesModularProperty(t *testing.T) {
	r := New(24)
	f := func(a, b uint64) bool {
		return r.Add(r.Reduce(a), r.Reduce(b)) == (a+b)&r.Mask()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Mul distributes over Add.
func TestDistributivityProperty(t *testing.T) {
	r := New(40)
	f := func(a, b, c uint64) bool {
		a, b, c = r.Reduce(a), r.Reduce(b), r.Reduce(c)
		return r.Mul(a, r.Add(b, c)) == r.Add(r.Mul(a, b), r.Mul(a, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: signed decode of x plus signed decode of -x is 0 unless
// x = -2^(l-1) (the asymmetric two's-complement point).
func TestSignedNegationProperty(t *testing.T) {
	r := New(32)
	f := func(x uint64) bool {
		x = r.Reduce(x)
		if x == 1<<31 {
			return true
		}
		return r.Signed(x)+r.Signed(r.Neg(x)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
