// Package ring implements arithmetic over the ring Z_{2^l} for bit widths
// l in [1, 64], the algebraic substrate of every ABNN2 protocol. Elements
// are represented as uint64 values reduced modulo 2^l; for l = 64 the
// reduction is native machine arithmetic.
//
// The package also provides fixed-point encoding of real values into ring
// elements, which is how activations enter the cryptographic domain
// (paper section 2.2: "Activations will be in float-point form and be
// encoded as fixed-point").
package ring

import (
	"fmt"
	"math"
)

// Elem is a ring element. Values are kept reduced: only the low Ring.Bits
// bits may be non-zero. All operations that produce an Elem reduce it.
type Elem = uint64

// Ring describes Z_{2^l}. The zero value is invalid; use New.
type Ring struct {
	bits uint   // l
	mask uint64 // 2^l - 1
}

// New returns the ring Z_{2^bits}. It panics if bits is outside [1, 64];
// ring selection is a static configuration decision, not a runtime input.
func New(bits uint) Ring {
	if bits < 1 || bits > 64 {
		panic(fmt.Sprintf("ring: invalid bit width %d (want 1..64)", bits))
	}
	if bits == 64 {
		return Ring{bits: 64, mask: ^uint64(0)}
	}
	return Ring{bits: bits, mask: (uint64(1) << bits) - 1}
}

// Bits returns l for the ring Z_{2^l}.
func (r Ring) Bits() uint { return r.bits }

// Mask returns 2^l - 1.
func (r Ring) Mask() uint64 { return r.mask }

// Modulus returns 2^l as a float64 (exact for l <= 53, approximate above;
// used only for diagnostics).
func (r Ring) Modulus() float64 { return math.Pow(2, float64(r.bits)) }

// Bytes returns the number of bytes needed to serialize one element:
// ceil(l/8).
func (r Ring) Bytes() int { return int(r.bits+7) / 8 }

// Reduce maps an arbitrary uint64 into the ring.
func (r Ring) Reduce(x uint64) Elem { return x & r.mask }

// Add returns a+b mod 2^l.
func (r Ring) Add(a, b Elem) Elem { return (a + b) & r.mask }

// Sub returns a-b mod 2^l.
func (r Ring) Sub(a, b Elem) Elem { return (a - b) & r.mask }

// Neg returns -a mod 2^l.
func (r Ring) Neg(a Elem) Elem { return (-a) & r.mask }

// Mul returns a*b mod 2^l.
func (r Ring) Mul(a, b Elem) Elem { return (a * b) & r.mask }

// MulConst returns c*a mod 2^l for a public constant c.
func (r Ring) MulConst(c uint64, a Elem) Elem { return (c * a) & r.mask }

// Signed interprets x in two's complement over l bits, returning a value in
// [-2^(l-1), 2^(l-1)). This is how shares are decoded back to integers.
func (r Ring) Signed(x Elem) int64 {
	x &= r.mask
	if r.bits == 64 {
		return int64(x)
	}
	sign := uint64(1) << (r.bits - 1)
	if x&sign != 0 {
		return int64(x) - int64(uint64(1)<<r.bits)
	}
	return int64(x)
}

// FromSigned embeds a signed integer into the ring (two's complement).
func (r Ring) FromSigned(v int64) Elem { return uint64(v) & r.mask }

// IsNegative reports whether x, interpreted in two's complement, is < 0.
// Equivalently it returns the most significant bit of x. ReLU protocols
// branch on exactly this bit.
func (r Ring) IsNegative(x Elem) bool {
	return (x>>(r.bits-1))&1 == 1
}

// FixedPoint converts real values to and from ring elements with a given
// number of fractional bits.
type FixedPoint struct {
	R    Ring
	Frac uint // number of fractional bits
}

// NewFixedPoint returns a fixed-point codec with frac fractional bits over
// the given ring. It panics if frac >= ring bits, which would leave no
// integer part.
func NewFixedPoint(r Ring, frac uint) FixedPoint {
	if frac >= r.bits {
		panic(fmt.Sprintf("ring: frac bits %d must be < ring bits %d", frac, r.bits))
	}
	return FixedPoint{R: r, Frac: frac}
}

// Encode maps v to round(v * 2^frac) mod 2^l. Values outside the
// representable range wrap, mirroring the behaviour of the fixed-point
// pipelines in SecureML/MiniONN.
func (fp FixedPoint) Encode(v float64) Elem {
	scaled := math.Round(v * float64(uint64(1)<<fp.Frac))
	return fp.R.FromSigned(int64(scaled))
}

// Decode maps a ring element back to a real value, interpreting the element
// in two's complement.
func (fp FixedPoint) Decode(x Elem) float64 {
	return float64(fp.R.Signed(x)) / float64(uint64(1)<<fp.Frac)
}

// MaxAbs returns the largest magnitude representable: 2^(l-1-frac).
func (fp FixedPoint) MaxAbs() float64 {
	return math.Pow(2, float64(fp.R.bits-1-fp.Frac))
}
