package ring

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(rng *rand.Rand, r Ring, n int) Vec {
	v := make(Vec, n)
	for i := range v {
		v[i] = rng.Uint64() & r.Mask()
	}
	return v
}

func randMat(rng *rand.Rand, r Ring, rows, cols int) *Mat {
	m := NewMat(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Uint64() & r.Mask()
	}
	return m
}

func TestVecAddSubRoundTrip(t *testing.T) {
	r := New(32)
	rng := rand.New(rand.NewSource(2))
	a, b := randVec(rng, r, 100), randVec(rng, r, 100)
	if !r.EqualVec(r.SubVec(r.AddVec(a, b), b), a) {
		t.Fatal("(a+b)-b != a")
	}
}

func TestDotLinearity(t *testing.T) {
	r := New(32)
	rng := rand.New(rand.NewSource(3))
	a, b, c := randVec(rng, r, 50), randVec(rng, r, 50), randVec(rng, r, 50)
	left := r.Dot(a, r.AddVec(b, c))
	right := r.Add(r.Dot(a, b), r.Dot(a, c))
	if left != right {
		t.Fatalf("dot not linear: %d vs %d", left, right)
	}
}

func TestDotKnown(t *testing.T) {
	r := New(8)
	a := Vec{1, 2, 3}
	b := Vec{4, 5, 6}
	if got := r.Dot(a, b); got != 32 {
		t.Fatalf("dot = %d, want 32", got)
	}
	// Wraparound: 200*2 = 400 = 144 mod 256.
	if got := r.Dot(Vec{200}, Vec{2}); got != 144 {
		t.Fatalf("dot wrap = %d, want 144", got)
	}
}

func TestMulVecMatchesMulMat(t *testing.T) {
	r := New(32)
	rng := rand.New(rand.NewSource(4))
	m := randMat(rng, r, 7, 5)
	x := randVec(rng, r, 5)
	xm := &Mat{Rows: 5, Cols: 1, Data: x.Clone()}
	viaVec := r.MulVec(m, x)
	viaMat := r.MulMat(m, xm)
	for i := 0; i < 7; i++ {
		if viaVec[i] != viaMat.At(i, 0) {
			t.Fatalf("row %d: %d vs %d", i, viaVec[i], viaMat.At(i, 0))
		}
	}
}

func TestMulMatAssociativity(t *testing.T) {
	r := New(16)
	rng := rand.New(rand.NewSource(5))
	a := randMat(rng, r, 3, 4)
	b := randMat(rng, r, 4, 5)
	c := randMat(rng, r, 5, 2)
	left := r.MulMat(r.MulMat(a, b), c)
	right := r.MulMat(a, r.MulMat(b, c))
	if !r.EqualMat(left, right) {
		t.Fatal("(ab)c != a(bc)")
	}
}

func TestMulMatDistributesOverAdd(t *testing.T) {
	r := New(32)
	rng := rand.New(rand.NewSource(6))
	a := randMat(rng, r, 4, 6)
	b := randMat(rng, r, 6, 3)
	c := randMat(rng, r, 6, 3)
	left := r.MulMat(a, r.AddMat(b, c))
	right := r.AddMat(r.MulMat(a, b), r.MulMat(a, c))
	if !r.EqualMat(left, right) {
		t.Fatal("a(b+c) != ab+ac")
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	r := New(32)
	cases := []func(){
		func() { r.AddVec(Vec{1}, Vec{1, 2}) },
		func() { r.Dot(Vec{1}, Vec{1, 2}) },
		func() { r.MulVec(NewMat(2, 3), Vec{1, 2}) },
		func() { r.MulMat(NewMat(2, 3), NewMat(2, 3)) },
		func() { r.AddMat(NewMat(2, 3), NewMat(3, 2)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestEncodeDecodeVec(t *testing.T) {
	for _, bits := range []uint{8, 12, 32, 64} {
		r := New(bits)
		rng := rand.New(rand.NewSource(int64(bits)))
		v := randVec(rng, r, 33)
		buf := r.AppendVec(nil, v)
		if len(buf) != r.VecBytes(33) {
			t.Fatalf("bits=%d wire size %d want %d", bits, len(buf), r.VecBytes(33))
		}
		got, rest, err := r.DecodeVec(buf, 33)
		if err != nil {
			t.Fatalf("bits=%d decode: %v", bits, err)
		}
		if len(rest) != 0 {
			t.Fatalf("bits=%d %d trailing bytes", bits, len(rest))
		}
		if !r.EqualVec(got, v) {
			t.Fatalf("bits=%d roundtrip mismatch", bits)
		}
	}
}

func TestDecodeShortBuffer(t *testing.T) {
	r := New(32)
	if _, _, err := r.DecodeElem([]byte{1, 2}); err == nil {
		t.Error("DecodeElem accepted short buffer")
	}
	if _, _, err := r.DecodeVec(make([]byte, 7), 2); err == nil {
		t.Error("DecodeVec accepted short buffer")
	}
}

// Property: serialization round-trips for arbitrary elements.
func TestEncodeRoundTripProperty(t *testing.T) {
	r := New(48)
	f := func(x uint64) bool {
		x = r.Reduce(x)
		got, rest, err := r.DecodeElem(r.AppendElem(nil, x))
		return err == nil && len(rest) == 0 && got == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatRowIsView(t *testing.T) {
	m := NewMat(2, 3)
	m.Row(1)[2] = 9
	if m.At(1, 2) != 9 {
		t.Fatal("Row did not return a view")
	}
	c := m.Clone()
	c.Set(1, 2, 7)
	if m.At(1, 2) != 9 {
		t.Fatal("Clone shares storage")
	}
}

func TestVectorHelpers(t *testing.T) {
	r := New(8)
	if v := NewVec(3); len(v) != 3 {
		t.Fatalf("NewVec len %d", len(v))
	}
	a := Vec{1, 2, 3}
	r.AddVecInPlace(a, Vec{10, 20, 250})
	if !r.EqualVec(a, Vec{11, 22, 253&0xff + 0}) {
		t.Fatalf("AddVecInPlace = %v", a)
	}
	neg := r.NegVec(Vec{1, 0, 255})
	if !r.EqualVec(neg, Vec{255, 0, 1}) {
		t.Fatalf("NegVec = %v", neg)
	}
	red := r.ReduceVec(Vec{300, 5})
	if red[0] != 44 || red[1] != 5 {
		t.Fatalf("ReduceVec = %v", red)
	}
	if r.EqualVec(Vec{1}, Vec{1, 2}) {
		t.Fatal("EqualVec length mismatch reported equal")
	}
	if r.MulConst(3, 100) != 44 { // 300 mod 256
		t.Fatal("MulConst wrong")
	}
	sm := r.SubMat(&Mat{Rows: 1, Cols: 2, Data: Vec{5, 5}}, &Mat{Rows: 1, Cols: 2, Data: Vec{2, 7}})
	if sm.At(0, 0) != 3 || sm.At(0, 1) != 254 {
		t.Fatalf("SubMat = %v", sm.Data)
	}
	if r.Bits() != 8 {
		t.Fatal("Bits wrong")
	}
	if New(10).Modulus() != 1024 {
		t.Fatal("Modulus wrong")
	}
	buf := []byte{0x2A, 0, 0, 0, 0, 0, 0, 0}
	if r.FromBytesFull(buf) != 42 {
		t.Fatal("FromBytesFull wrong")
	}
}

func TestScaleVec(t *testing.T) {
	r := New(8)
	got := r.ScaleVec(3, Vec{1, 100, 200})
	want := Vec{3, 44, 88} // 300 mod 256, 600 mod 256
	if !r.EqualVec(got, want) {
		t.Fatalf("ScaleVec = %v, want %v", got, want)
	}
}
