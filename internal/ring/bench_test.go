package ring

import (
	"math/rand"
	"testing"
)

func BenchmarkDot1024(b *testing.B) {
	r := New(64)
	rng := rand.New(rand.NewSource(1))
	x, y := randVec(rng, r, 1024), randVec(rng, r, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Dot(x, y)
	}
}

func BenchmarkMulVec128x784(b *testing.B) {
	r := New(32)
	rng := rand.New(rand.NewSource(2))
	m := randMat(rng, r, 128, 784)
	x := randVec(rng, r, 784)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.MulVec(m, x)
	}
}

func BenchmarkMulMat128x784x16(b *testing.B) {
	r := New(32)
	rng := rand.New(rand.NewSource(3))
	m := randMat(rng, r, 128, 784)
	x := randMat(rng, r, 784, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.MulMat(m, x)
	}
}

func BenchmarkEncodeVec1024(b *testing.B) {
	r := New(32)
	rng := rand.New(rand.NewSource(4))
	v := randVec(rng, r, 1024)
	buf := make([]byte, 0, r.VecBytes(1024))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = r.AppendVec(buf[:0], v)
	}
}
