package ring

import "testing"

// FuzzDecodeVec: arbitrary wire bytes must never panic and must
// round-trip when re-encoded.
func FuzzDecodeVec(f *testing.F) {
	r := New(24)
	f.Add(r.AppendVec(nil, Vec{1, 2, 3}), 3)
	f.Add([]byte{}, 0)
	f.Add([]byte{1, 2}, 5)
	f.Fuzz(func(t *testing.T, data []byte, count int) {
		if count < 0 || count > 1<<16 {
			return
		}
		v, rest, err := r.DecodeVec(data, count)
		if err != nil {
			return
		}
		if len(rest)+r.VecBytes(count) != len(data) {
			t.Fatalf("consumed %d of %d bytes for %d elements", len(data)-len(rest), len(data), count)
		}
		re := r.AppendVec(nil, v)
		for i := 0; i < r.VecBytes(count); i++ {
			if re[i] != data[i] {
				t.Fatalf("re-encode differs at byte %d", i)
			}
		}
	})
}
