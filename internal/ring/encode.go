package ring

import (
	"encoding/binary"
	"fmt"
)

// Serialization of ring elements. Protocol messages carry elements in
// little-endian order truncated to Ring.Bytes() bytes each, which is what
// the communication-cost formulas in the paper's Table 1 count as "l bits
// per element".

// AppendElem appends the ceil(l/8)-byte little-endian encoding of x to dst.
func (r Ring) AppendElem(dst []byte, x Elem) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], x&r.mask)
	return append(dst, buf[:r.Bytes()]...)
}

// AppendVec appends every element of v to dst.
func (r Ring) AppendVec(dst []byte, v Vec) []byte {
	for _, x := range v {
		dst = r.AppendElem(dst, x)
	}
	return dst
}

// DecodeElem reads one element from src, returning it and the remaining
// bytes. It returns an error if src is too short: protocol framing bugs
// must surface as errors, not panics, because src crosses a trust boundary.
func (r Ring) DecodeElem(src []byte) (Elem, []byte, error) {
	n := r.Bytes()
	if len(src) < n {
		return 0, nil, fmt.Errorf("ring: short element encoding: have %d bytes, want %d", len(src), n)
	}
	var buf [8]byte
	copy(buf[:], src[:n])
	return binary.LittleEndian.Uint64(buf[:]) & r.mask, src[n:], nil
}

// DecodeVec reads count elements from src.
func (r Ring) DecodeVec(src []byte, count int) (Vec, []byte, error) {
	if need := count * r.Bytes(); len(src) < need {
		return nil, nil, fmt.Errorf("ring: short vector encoding: have %d bytes, want %d", len(src), need)
	}
	out := make(Vec, count)
	var err error
	for i := range out {
		out[i], src, err = r.DecodeElem(src)
		if err != nil {
			return nil, nil, err
		}
	}
	return out, src, nil
}

// VecBytes returns the wire size of an n-element vector.
func (r Ring) VecBytes(n int) int { return n * r.Bytes() }

// FromBytesFull interprets exactly 8 bytes as one uint64 and reduces it.
// Used when expanding PRG output into ring elements.
func (r Ring) FromBytesFull(b []byte) Elem {
	return binary.LittleEndian.Uint64(b) & r.mask
}
