// Package baseline implements the comparison systems the paper evaluates
// against: SecureML's OT-based multiplication-triplet generation (S&P'17),
// MiniONN's HE-based offline phase (CCS'17, over Paillier here — see
// DESIGN.md "Substitutions"), and QUOTIENT's ternary multiplication
// gadget (CCS'19).
package baseline

import (
	"fmt"

	"abnn2/internal/otext"
	"abnn2/internal/prg"
	"abnn2/internal/ring"
	"abnn2/internal/transport"
)

// SecureML-style offline phase: the server's weights are full-width l-bit
// values (no quantization) and every product w*r is computed by binary
// decomposition of w — l correlated OTs per element, the i-th transferring
// x0 + w_i * 2^i * r. This is the classic OT-based triplet generation the
// paper's Table 1 and Table 3 compare against.
//
// Roles mirror the ABNN2 protocol: server = OT receiver (choice bits are
// the weight bits), client = OT sender (knows r).

// SecureMLClient is the client-side generator.
type SecureMLClient struct {
	rg ring.Ring
	ot *otext.Sender
}

// SecureMLServer is the server-side generator.
type SecureMLServer struct {
	rg ring.Ring
	ot *otext.Receiver
}

// NewSecureMLClient sets up the sender role over an IKNP session.
func NewSecureMLClient(conn transport.Conn, rg ring.Ring, session uint64, rng *prg.PRG) (*SecureMLClient, error) {
	ot, err := otext.NewSender(conn, otext.RepetitionCode(), session, rng)
	if err != nil {
		return nil, fmt.Errorf("baseline: secureml client setup: %w", err)
	}
	return &SecureMLClient{rg: rg, ot: ot}, nil
}

// NewSecureMLServer sets up the receiver role.
func NewSecureMLServer(conn transport.Conn, rg ring.Ring, session uint64, rng *prg.PRG) (*SecureMLServer, error) {
	ot, err := otext.NewReceiver(conn, otext.RepetitionCode(), session, rng)
	if err != nil {
		return nil, fmt.Errorf("baseline: secureml server setup: %w", err)
	}
	return &SecureMLServer{rg: rg, ot: ot}, nil
}

// secureMLChunk bounds OTs per extension round; at l = 64 OTs per element
// this keeps messages comfortably sized.
const secureMLChunk = 8192

// GenerateClient produces the client's share matrix V (m x o) for the
// multiplication of the server's m x n matrix with the client's R (n x o).
// Each weight bit consumes one correlated OT whose correlation is the
// whole row slice 2^b * R[j][*] — o ring elements per OT, mirroring the
// multi-batch packing so the comparison against ABNN2 is apples-to-apples.
func (c *SecureMLClient) GenerateClient(m int, R *ring.Mat) (*ring.Mat, error) {
	rg := c.rg
	n, o := R.Rows, R.Cols
	l := int(rg.Bits())
	total := m * n * l
	V := ring.NewMat(m, o)
	ot := 0
	for ot < total {
		chunk := total - ot
		if chunk > secureMLChunk {
			chunk = secureMLChunk
		}
		blk, err := c.ot.Extend(chunk)
		if err != nil {
			return nil, fmt.Errorf("baseline: secureml client extend: %w", err)
		}
		payload := make([]byte, 0, chunk*o*rg.Bytes())
		for local := 0; local < chunk; local++ {
			g := ot + local
			i := g / (n * l)
			j := (g / l) % n
			b := uint(g % l)
			rrow := R.Row(j)
			vrow := V.Row(i)
			// Pads: p0 for choice 0, p1 for choice 1, o elements each.
			p0raw := blk.Pad(local, 0, o*8)
			p1raw := blk.Pad(local, 1, o*8)
			for k := 0; k < o; k++ {
				p0 := rg.FromBytesFull(p0raw[k*8:])
				p1 := rg.FromBytesFull(p1raw[k*8:])
				// Client share accumulates -x0 = -p0; correction lets a
				// choice-1 server learn p0 + 2^b*r.
				vrow[k] = rg.Add(vrow[k], rg.Neg(p0))
				delta := rg.MulConst(uint64(1)<<b, rrow[k])
				corr := rg.Sub(rg.Add(p0, delta), p1)
				payload = rg.AppendElem(payload, corr)
			}
		}
		if err := c.ot.Conn().Send(payload); err != nil {
			return nil, fmt.Errorf("baseline: secureml client payload: %w", err)
		}
		ot += chunk
	}
	// V currently holds sum(-x0); negate convention: client share v with
	// u + v = W*R means v = -sum(x0)? Server's u = sum(x_{w_b}) =
	// sum(x0 + w_b*2^b*r) = sum(x0) + W*R, so v = -sum(x0). Done above.
	return V, nil
}

// GenerateServer produces the server's share matrix U (m x o) for its
// full-width weight matrix W (m x n, row-major, signed l-bit values).
func (s *SecureMLServer) GenerateServer(W []int64, m, n, o int) (*ring.Mat, error) {
	if len(W) != m*n {
		return nil, fmt.Errorf("baseline: W has %d elements, want %d", len(W), m*n)
	}
	rg := s.rg
	l := int(rg.Bits())
	total := m * n * l
	U := ring.NewMat(m, o)
	ot := 0
	for ot < total {
		chunk := total - ot
		if chunk > secureMLChunk {
			chunk = secureMLChunk
		}
		choices := make([]int, chunk)
		for local := 0; local < chunk; local++ {
			g := ot + local
			w := rg.FromSigned(W[g/l])
			choices[local] = int((w >> uint(g%l)) & 1)
		}
		blk, err := s.ot.Extend(choices)
		if err != nil {
			return nil, fmt.Errorf("baseline: secureml server extend: %w", err)
		}
		payload, err := s.ot.Conn().Recv()
		if err != nil {
			return nil, fmt.Errorf("baseline: secureml server payload: %w", err)
		}
		if want := chunk * o * rg.Bytes(); len(payload) != want {
			return nil, fmt.Errorf("baseline: secureml payload is %d bytes, want %d", len(payload), want)
		}
		for local := 0; local < chunk; local++ {
			g := ot + local
			i := g / (n * l)
			urow := U.Row(i)
			praw := blk.Pad(local, o*8)
			for k := 0; k < o; k++ {
				p := rg.FromBytesFull(praw[k*8:])
				if choices[local] == 1 {
					corr, _, err := rg.DecodeElem(payload[(local*o+k)*rg.Bytes():])
					if err != nil {
						return nil, err
					}
					p = rg.Add(p, corr)
				}
				urow[k] = rg.Add(urow[k], p)
			}
		}
		ot += chunk
	}
	return U, nil
}
