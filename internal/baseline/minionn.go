package baseline

import (
	"fmt"
	"math/big"
	"runtime"
	"sync"

	"abnn2/internal/paillier"
	"abnn2/internal/prg"
	"abnn2/internal/ring"
	"abnn2/internal/transport"
)

// MiniONN-style offline phase over additively homomorphic encryption:
// the client sends Enc(r_j) for its share vector(s); the server
// homomorphically evaluates W*r + mask and returns one ciphertext per
// output element; the parties' shares are (-mask mod 2^l, result mod 2^l).
// MiniONN uses SIMD lattice HE; Paillier exercises the same flow (same
// message pattern, same rounds) — see DESIGN.md.
//
// Exactness over Z_2^l: the server's mask is sampled from
// [2^G, 2^G + 2^{G+sigma}) with G large enough that w.r + mask never
// leaves (0, N), so no modular wrap occurs and reducing both shares mod
// 2^l yields exact additive shares of w.r.

// MiniONNKeyBits is the default Paillier modulus size. 1024 bits keeps
// the baseline's runtime workable while preserving the protocol shape;
// production use would take 2048+.
const MiniONNKeyBits = 1024

// statSigma is the statistical masking parameter.
const statSigma = 40

// MiniONNClient owns the HE keypair and the share matrix R.
type MiniONNClient struct {
	rg   ring.Ring
	conn transport.Conn
	sk   *paillier.PrivateKey
	rng  *prg.PRG
}

// MiniONNServer holds the weights.
type MiniONNServer struct {
	rg   ring.Ring
	conn transport.Conn
	pk   *paillier.PublicKey
	rng  *prg.PRG
}

// NewMiniONNClient generates a keypair and announces the public key.
func NewMiniONNClient(conn transport.Conn, rg ring.Ring, keyBits int, rng *prg.PRG) (*MiniONNClient, error) {
	sk, err := paillier.GenerateKey(rng, keyBits)
	if err != nil {
		return nil, fmt.Errorf("baseline: minionn keygen: %w", err)
	}
	if err := conn.Send(paillier.MarshalPublicKey(&sk.PublicKey)); err != nil {
		return nil, fmt.Errorf("baseline: minionn send pk: %w", err)
	}
	return &MiniONNClient{rg: rg, conn: conn, sk: sk, rng: rng}, nil
}

// NewMiniONNServer receives the client's public key.
func NewMiniONNServer(conn transport.Conn, rg ring.Ring, rng *prg.PRG) (*MiniONNServer, error) {
	raw, err := conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("baseline: minionn recv pk: %w", err)
	}
	pk, err := paillier.UnmarshalPublicKey(raw)
	if err != nil {
		return nil, err
	}
	return &MiniONNServer{rg: rg, conn: conn, pk: pk, rng: rng}, nil
}

// GenerateClient encrypts R (n x o) column by column, sends the
// ciphertexts, and decrypts the server's response into V (m x o).
// Encryption and decryption are parallelised across cores; MiniONN's
// evaluation reports single-core numbers, but the protocol shape is
// unchanged and our benches report both wall and comm anyway.
func (c *MiniONNClient) GenerateClient(m int, R *ring.Mat) (*ring.Mat, error) {
	pk := &c.sk.PublicKey
	n, o := R.Rows, R.Cols
	ctBytes := pk.CiphertextBytes()
	// Encrypt all n*o share elements.
	msg := make([]byte, n*o*ctBytes)
	if err := parallelFor(n*o, func(idx int, rng *prg.PRG) error {
		ct, err := pk.Encrypt(rng, new(big.Int).SetUint64(R.Data[idx]))
		if err != nil {
			return err
		}
		copy(msg[idx*ctBytes:], pk.Marshal(ct))
		return nil
	}, c.rng); err != nil {
		return nil, fmt.Errorf("baseline: minionn encrypt: %w", err)
	}
	if err := c.conn.Send(msg); err != nil {
		return nil, fmt.Errorf("baseline: minionn send ciphertexts: %w", err)
	}
	resp, err := c.conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("baseline: minionn recv response: %w", err)
	}
	if len(resp) != m*o*ctBytes {
		return nil, fmt.Errorf("baseline: minionn response is %d bytes, want %d", len(resp), m*o*ctBytes)
	}
	V := ring.NewMat(m, o)
	if err := parallelFor(m*o, func(idx int, _ *prg.PRG) error {
		ct, err := pk.Unmarshal(resp[idx*ctBytes : (idx+1)*ctBytes])
		if err != nil {
			return err
		}
		plain := c.sk.Decrypt(ct)
		V.Data[idx] = plain.Uint64() & c.rg.Mask() // low l bits are exact
		return nil
	}, c.rng); err != nil {
		return nil, err
	}
	return V, nil
}

// GenerateServer homomorphically computes W*R + mask and returns the
// server share U = -mask mod 2^l (m x o).
func (s *MiniONNServer) GenerateServer(W []int64, m, n, o int) (*ring.Mat, error) {
	if len(W) != m*n {
		return nil, fmt.Errorf("baseline: W has %d elements, want %d", len(W), m*n)
	}
	pk := s.pk
	ctBytes := pk.CiphertextBytes()
	raw, err := s.conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("baseline: minionn recv ciphertexts: %w", err)
	}
	if len(raw) != n*o*ctBytes {
		return nil, fmt.Errorf("baseline: minionn ciphertexts are %d bytes, want %d", len(raw), n*o*ctBytes)
	}
	cts := make([]*paillier.Ciphertext, n*o)
	if err := parallelFor(n*o, func(idx int, _ *prg.PRG) error {
		ct, err := pk.Unmarshal(raw[idx*ctBytes : (idx+1)*ctBytes])
		if err != nil {
			return err
		}
		cts[idx] = ct
		return nil
	}, s.rng); err != nil {
		return nil, err
	}
	// Mask window: |w.r| < n * 2^eta * 2^l; pick G with slack.
	gBits := uint(s.rg.Bits()) + 20 + statSigma
	base := new(big.Int).Lsh(big.NewInt(1), gBits)
	U := ring.NewMat(m, o)
	resp := make([]byte, m*o*ctBytes)
	masks := make([]*big.Int, m*o)
	// Sample masks serially (cheap) so randomness stays deterministic.
	for idx := range masks {
		r := new(big.Int).SetBytes(s.rng.Bytes(int(gBits) / 8))
		masks[idx] = r.Add(r, base)
	}
	if err := parallelFor(m*o, func(idx int, _ *prg.PRG) error {
		i, k := idx/o, idx%o
		// acc = Enc(w_i0 * r_0k + mask), then fold the remaining terms.
		acc := pk.AddPlain(pk.MulConst(cts[0*o+k], big.NewInt(W[i*n+0])), masks[idx])
		for j := 1; j < n; j++ {
			acc = pk.Add(acc, pk.MulConst(cts[j*o+k], big.NewInt(W[i*n+j])))
		}
		copy(resp[idx*ctBytes:], pk.Marshal(acc))
		U.Data[idx] = s.rg.Neg(s.rg.Reduce(masks[idx].Uint64()))
		return nil
	}, s.rng); err != nil {
		return nil, err
	}
	if err := s.conn.Send(resp); err != nil {
		return nil, fmt.Errorf("baseline: minionn send response: %w", err)
	}
	return U, nil
}

// parallelFor runs fn over [0, n) across cores. Each worker gets an
// independent child PRG derived from rng so results are deterministic
// up to index partitioning (each index derives its own PRG).
func parallelFor(n int, fn func(idx int, rng *prg.PRG) error, rng *prg.PRG) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		g := rng.Child("par")
		for i := 0; i < n; i++ {
			if err := fn(i, g); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		ferr error
	)
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		g := rng.Child(fmt.Sprintf("par%d", w))
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i, g); err != nil {
					mu.Lock()
					if ferr == nil {
						ferr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return ferr
}
