package baseline

import (
	"fmt"

	"abnn2/internal/otext"
	"abnn2/internal/prg"
	"abnn2/internal/ring"
	"abnn2/internal/transport"
)

// QUOTIENT-style ternary multiplication (CCS'19): a ternary weight
// w in {-1, 0, 1} is written as the difference of two bits, w = b+ - b-,
// and w*r is computed with two correlated 1-out-of-2 OTs per weight
// (correlations +r and -r). ABNN2's Table 5 compares against QUOTIENT's
// published end-to-end numbers; this gadget additionally lets the
// benchmark suite compare the two ternary approaches on equal footing
// (2 binary COTs vs one 1-out-of-3 OT).

// QuotientClient is the r-holder (OT sender).
type QuotientClient struct {
	rg ring.Ring
	ot *otext.Sender
}

// QuotientServer holds the ternary weights (OT receiver).
type QuotientServer struct {
	rg ring.Ring
	ot *otext.Receiver
}

// NewQuotientClient sets up the sender role.
func NewQuotientClient(conn transport.Conn, rg ring.Ring, session uint64, rng *prg.PRG) (*QuotientClient, error) {
	ot, err := otext.NewSender(conn, otext.RepetitionCode(), session, rng)
	if err != nil {
		return nil, fmt.Errorf("baseline: quotient client setup: %w", err)
	}
	return &QuotientClient{rg: rg, ot: ot}, nil
}

// NewQuotientServer sets up the receiver role.
func NewQuotientServer(conn transport.Conn, rg ring.Ring, session uint64, rng *prg.PRG) (*QuotientServer, error) {
	ot, err := otext.NewReceiver(conn, otext.RepetitionCode(), session, rng)
	if err != nil {
		return nil, fmt.Errorf("baseline: quotient server setup: %w", err)
	}
	return &QuotientServer{rg: rg, ot: ot}, nil
}

// GenerateClient produces V (m-vector) for the product of the server's
// m x n ternary matrix with the client's r (n-vector): two COTs per
// element, correlations +r_j and -r_j.
func (c *QuotientClient) GenerateClient(m int, r ring.Vec) (ring.Vec, error) {
	rg := c.rg
	n := len(r)
	deltas := make(ring.Vec, 0, 2*m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			deltas = append(deltas, r[j], rg.Neg(r[j]))
		}
	}
	x0, err := c.ot.SendCorrelatedRing(rg, deltas)
	if err != nil {
		return nil, fmt.Errorf("baseline: quotient client COT: %w", err)
	}
	v := make(ring.Vec, m)
	for i := 0; i < m; i++ {
		var acc ring.Elem
		for j := 0; j < 2*n; j++ {
			acc = rg.Add(acc, x0[i*2*n+j])
		}
		v[i] = rg.Neg(acc)
	}
	return v, nil
}

// GenerateServer produces U for ternary weights W (m x n row-major,
// values in {-1, 0, 1}).
func (s *QuotientServer) GenerateServer(W []int64, m, n int) (ring.Vec, error) {
	if len(W) != m*n {
		return nil, fmt.Errorf("baseline: W has %d elements, want %d", len(W), m*n)
	}
	bits := make([]byte, 0, 2*m*n)
	for _, w := range W {
		switch w {
		case 1:
			bits = append(bits, 1, 0)
		case -1:
			bits = append(bits, 0, 1)
		case 0:
			bits = append(bits, 0, 0)
		default:
			return nil, fmt.Errorf("baseline: weight %d is not ternary", w)
		}
	}
	got, err := s.ot.RecvCorrelatedRing(s.rg, bits)
	if err != nil {
		return nil, fmt.Errorf("baseline: quotient server COT: %w", err)
	}
	u := make(ring.Vec, m)
	for i := 0; i < m; i++ {
		var acc ring.Elem
		for j := 0; j < 2*n; j++ {
			acc = s.rg.Add(acc, got[i*2*n+j])
		}
		u[i] = acc
	}
	return u, nil
}
