package baseline

import (
	"sync"
	"testing"

	"abnn2/internal/prg"
	"abnn2/internal/ring"
	"abnn2/internal/transport"
)

func TestSecureMLTriplets(t *testing.T) {
	rg := ring.New(32)
	for _, o := range []int{1, 3} {
		ca, cb, _ := transport.MeteredPipe()
		var (
			cl   *SecureMLClient
			cerr error
			wg   sync.WaitGroup
		)
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, cerr = NewSecureMLClient(ca, rg, 1, prg.New(prg.SeedFromInt(1)))
		}()
		sv, serr := NewSecureMLServer(cb, rg, 1, prg.New(prg.SeedFromInt(2)))
		wg.Wait()
		if cerr != nil || serr != nil {
			t.Fatalf("setup: %v %v", cerr, serr)
		}
		const m, n = 4, 5
		g := prg.New(prg.SeedFromInt(3))
		W := make([]int64, m*n)
		for i := range W {
			W[i] = int64(g.Intn(1<<16)) - (1 << 15) // full-width signed values
		}
		R := g.Mat(rg, n, o)
		var (
			V  *ring.Mat
			ce error
		)
		wg.Add(1)
		go func() {
			defer wg.Done()
			V, ce = cl.GenerateClient(m, R)
		}()
		U, se := sv.GenerateServer(W, m, n, o)
		wg.Wait()
		ca.Close()
		if ce != nil || se != nil {
			t.Fatalf("o=%d: %v %v", o, ce, se)
		}
		Wm := ring.NewMat(m, n)
		for i, w := range W {
			Wm.Data[i] = rg.FromSigned(w)
		}
		want := rg.MulMat(Wm, R)
		got := rg.AddMat(U, V)
		if !rg.EqualMat(got, want) {
			t.Fatalf("o=%d: secureml triplets incorrect", o)
		}
	}
}

func TestMiniONNTriplets(t *testing.T) {
	rg := ring.New(32)
	ca, cb, meter := transport.MeteredPipe()
	defer ca.Close()
	var (
		cl   *MiniONNClient
		cerr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl, cerr = NewMiniONNClient(ca, rg, 512, prg.New(prg.SeedFromInt(4)))
	}()
	sv, serr := NewMiniONNServer(cb, rg, prg.New(prg.SeedFromInt(5)))
	wg.Wait()
	if cerr != nil || serr != nil {
		t.Fatalf("setup: %v %v", cerr, serr)
	}
	const m, n, o = 3, 4, 2
	g := prg.New(prg.SeedFromInt(6))
	W := make([]int64, m*n)
	for i := range W {
		W[i] = int64(g.Intn(255)) - 127
	}
	R := g.Mat(rg, n, o)
	var (
		V  *ring.Mat
		ce error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		V, ce = cl.GenerateClient(m, R)
	}()
	U, se := sv.GenerateServer(W, m, n, o)
	wg.Wait()
	if ce != nil || se != nil {
		t.Fatalf("%v %v", ce, se)
	}
	Wm := ring.NewMat(m, n)
	for i, w := range W {
		Wm.Data[i] = rg.FromSigned(w)
	}
	want := rg.MulMat(Wm, R)
	got := rg.AddMat(U, V)
	if !rg.EqualMat(got, want) {
		t.Fatal("minionn triplets incorrect")
	}
	if meter.Snapshot().TotalBytes() == 0 {
		t.Fatal("no traffic recorded")
	}
}

func TestQuotientTriplets(t *testing.T) {
	rg := ring.New(32)
	ca, cb, _ := transport.MeteredPipe()
	defer ca.Close()
	var (
		cl   *QuotientClient
		cerr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl, cerr = NewQuotientClient(ca, rg, 2, prg.New(prg.SeedFromInt(7)))
	}()
	sv, serr := NewQuotientServer(cb, rg, 2, prg.New(prg.SeedFromInt(8)))
	wg.Wait()
	if cerr != nil || serr != nil {
		t.Fatalf("setup: %v %v", cerr, serr)
	}
	const m, n = 5, 6
	g := prg.New(prg.SeedFromInt(9))
	W := make([]int64, m*n)
	for i := range W {
		W[i] = int64(g.Intn(3)) - 1
	}
	r := g.Vec(rg, n)
	var (
		v  ring.Vec
		ce error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, ce = cl.GenerateClient(m, r)
	}()
	u, se := sv.GenerateServer(W, m, n)
	wg.Wait()
	if ce != nil || se != nil {
		t.Fatalf("%v %v", ce, se)
	}
	for i := 0; i < m; i++ {
		var want ring.Elem
		for j := 0; j < n; j++ {
			want = rg.Add(want, rg.Mul(rg.FromSigned(W[i*n+j]), r[j]))
		}
		if got := rg.Add(u[i], v[i]); got != want {
			t.Fatalf("row %d: %d want %d", i, got, want)
		}
	}
}

func TestQuotientRejectsNonTernary(t *testing.T) {
	rg := ring.New(32)
	ca, cb, _ := transport.MeteredPipe()
	defer ca.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		NewQuotientClient(ca, rg, 3, prg.New(prg.SeedFromInt(10)))
	}()
	sv, err := NewQuotientServer(cb, rg, 3, prg.New(prg.SeedFromInt(11)))
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sv.GenerateServer([]int64{2}, 1, 1); err == nil {
		t.Error("non-ternary weight accepted")
	}
}

// A malicious client can hand the MiniONN server any bytes as its
// Paillier ciphertext flight. An all-zero flight of the correct length
// used to reach MulConst's modular inversion (undefined for non-units)
// and panic the server; it must now fail at Unmarshal with an error.
func TestMiniONNRejectsNonUnitCiphertexts(t *testing.T) {
	ca, cb := transport.Pipe()
	rg := ring.New(32)
	var (
		srv  *MiniONNServer
		serr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv, serr = NewMiniONNServer(cb, rg, prg.New(prg.SeedFromInt(21)))
	}()
	cl, cerr := NewMiniONNClient(ca, rg, 512, prg.New(prg.SeedFromInt(22)))
	wg.Wait()
	if cerr != nil || serr != nil {
		t.Fatalf("setup: client=%v server=%v", cerr, serr)
	}
	_ = cl
	m, n, o := 2, 2, 1
	ctBytes := srv.pk.CiphertextBytes()
	if err := ca.Send(make([]byte, n*o*ctBytes)); err != nil {
		t.Fatal(err)
	}
	W := []int64{1, -3, 2, -1} // negative weights force the inversion path
	if _, err := srv.GenerateServer(W, m, n, o); err == nil {
		t.Fatal("server accepted non-unit ciphertexts")
	}
}
