package baseline

import (
	"sync"
	"testing"

	"abnn2/internal/prg"
	"abnn2/internal/transport"
)

func TestBNNForwardKnown(t *testing.T) {
	// 3 inputs -> 2 hidden -> 2 outputs, hand-computed.
	b := &BNN{
		Sizes: []int{3, 2, 2},
		Weights: [][]byte{
			{1, 1, 1, 0, 0, 0}, // hidden0 = XNOR with (1,1,1); hidden1 with (0,0,0)
			{1, 0, 0, 1},
		},
	}
	// input 101: hidden0 pop = XNOR(1,1)+XNOR(1,0)+XNOR(1,1) = 2 > 1.5 -> 1
	//            hidden1 pop = XNOR(0,1)+XNOR(0,0)+XNOR(0,1) = 1, 2*1=2 <= 3 -> 0
	// out0 = XNOR(1,1)+XNOR(0,0) = 2; out1 = XNOR(0,1)+XNOR(1,0) = 0.
	scores := b.Forward([]byte{1, 0, 1})
	if scores[0] != 2 || scores[1] != 0 {
		t.Fatalf("scores = %v, want [2 0]", scores)
	}
	if b.Predict([]byte{1, 0, 1}) != 0 {
		t.Fatal("predict != 0")
	}
}

// The garbled circuit must agree with the plaintext BNN on random
// networks and inputs, end to end over the two-party protocol.
func TestXONNSecureMatchesPlain(t *testing.T) {
	rng := prg.New(prg.SeedFromInt(1))
	b := NewBNN(rng, 24, 16, 5)
	for trial := 0; trial < 3; trial++ {
		input := make([]byte, 24)
		for i := range input {
			input[i] = byte(rng.Intn(2))
		}
		want := b.Forward(input)
		ca, cb, _ := transport.MeteredPipe()
		var (
			serr error
			wg   sync.WaitGroup
		)
		wg.Add(1)
		go func() {
			defer wg.Done()
			serr = XONNServe(ca, b, 9, prg.New(prg.SeedFromInt(uint64(10+trial))))
		}()
		got, err := XONNQuery(cb, b, input, 9, prg.New(prg.SeedFromInt(uint64(20+trial))))
		wg.Wait()
		ca.Close()
		if serr != nil || err != nil {
			t.Fatalf("trial %d: %v %v", trial, serr, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d score %d: secure %d plain %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestBinarizeModelWeights(t *testing.T) {
	b := NewBNN(prg.New(prg.SeedFromInt(2)), 2, 2)
	if err := BinarizeModelWeights(b, [][]float64{{0.5, -0.5, 0, -1}}); err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 0, 1, 0}
	for i := range want {
		if b.Weights[0][i] != want[i] {
			t.Fatalf("weights = %v", b.Weights[0])
		}
	}
	if err := BinarizeModelWeights(b, [][]float64{{1}}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestBinarize(t *testing.T) {
	got := Binarize([]float64{0.1, 0.9, 0.5}, 0.5)
	if got[0] != 0 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("binarize = %v", got)
	}
}

func TestXONNRejectsWrongInputSize(t *testing.T) {
	b := NewBNN(prg.New(prg.SeedFromInt(3)), 4, 2)
	_, cb := transport.Pipe()
	if _, err := XONNQuery(cb, b, []byte{1}, 1, prg.New(prg.SeedFromInt(4))); err == nil {
		t.Fatal("wrong input size accepted")
	}
}
