package baseline

import (
	"fmt"

	"abnn2/internal/gc"
	"abnn2/internal/prg"
	"abnn2/internal/transport"
)

// XONN-style secure binary-network inference (USENIX Security'19): both
// weights AND activations are binary, so every linear layer collapses to
// XNOR + popcount and the entire network evaluates inside one garbled
// circuit — no OT-based arithmetic at all. This is the GC-only point in
// the design space the paper positions ABNN2 against (ABNN2 quantizes
// weights but keeps full-precision activations).
//
// Roles: the server garbles (its weight bits are garbler inputs), the
// client evaluates (its binarized input is transferred by OT) and learns
// the output popcount scores directly.

// BNN is a plaintext binary network: weights in {-1,+1} encoded as bits
// (1 = +1), activations binarized by sign. Layer l maps n_l bits to
// n_{l+1} bits via XNOR-popcount threshold; the last layer outputs raw
// popcount scores.
type BNN struct {
	Sizes   []int    // layer widths, Sizes[0] = input bits
	Weights [][]byte // Weights[l][o*in+i] in {0,1}
}

// NewBNN builds a BNN with the given layer sizes and weight bits supplied
// by rng (callers binarizing a trained float model fill Weights
// themselves).
func NewBNN(rng *prg.PRG, sizes ...int) *BNN {
	if len(sizes) < 2 {
		panic("baseline: BNN needs at least two layer sizes")
	}
	b := &BNN{Sizes: sizes}
	for l := 0; l+1 < len(sizes); l++ {
		w := make([]byte, sizes[l+1]*sizes[l])
		for i := range w {
			w[i] = byte(rng.Intn(2))
		}
		b.Weights = append(b.Weights, w)
	}
	return b
}

// BinarizeModelWeights converts float weights to BNN weight bits
// (1 when the weight is non-negative).
func BinarizeModelWeights(b *BNN, floats [][]float64) error {
	if len(floats) != len(b.Weights) {
		return fmt.Errorf("baseline: %d weight layers for BNN with %d", len(floats), len(b.Weights))
	}
	for l := range floats {
		if len(floats[l]) != len(b.Weights[l]) {
			return fmt.Errorf("baseline: layer %d has %d weights, want %d", l, len(floats[l]), len(b.Weights[l]))
		}
		for i, w := range floats[l] {
			if w >= 0 {
				b.Weights[l][i] = 1
			} else {
				b.Weights[l][i] = 0
			}
		}
	}
	return nil
}

// Forward evaluates the BNN in the clear: returns the last layer's
// popcount scores. Input bits must have length Sizes[0].
func (b *BNN) Forward(input []byte) []int {
	x := input
	for l := 0; l+1 < len(b.Sizes); l++ {
		in, out := b.Sizes[l], b.Sizes[l+1]
		next := make([]byte, out)
		scores := make([]int, out)
		for o := 0; o < out; o++ {
			pop := 0
			row := b.Weights[l][o*in : (o+1)*in]
			for i, w := range row {
				if w == x[i]&1 {
					pop++ // XNOR
				}
			}
			scores[o] = pop
			if 2*pop > in {
				next[o] = 1
			}
		}
		if l+2 == len(b.Sizes) {
			return scores
		}
		x = next
	}
	panic("unreachable")
}

// Predict returns the argmax class.
func (b *BNN) Predict(input []byte) int {
	scores := b.Forward(input)
	best := 0
	for i, s := range scores {
		if s > scores[best] {
			best = i
		}
	}
	return best
}

// Circuit builds the whole-network garbled circuit: garbler inputs are
// all weight bits (layer by layer, row-major), evaluator inputs the
// binarized feature bits, outputs the final layer's popcount words.
func (b *BNN) Circuit() *gc.Circuit {
	bld := gc.NewBuilder()
	var wWires [][]int
	for l := 0; l+1 < len(b.Sizes); l++ {
		wWires = append(wWires, bld.GarblerInput(b.Sizes[l+1]*b.Sizes[l]))
	}
	x := bld.EvaluatorInput(b.Sizes[0])
	for l := 0; l+1 < len(b.Sizes); l++ {
		in, out := b.Sizes[l], b.Sizes[l+1]
		next := make([]int, out)
		for o := 0; o < out; o++ {
			xnors := make([]int, in)
			for i := 0; i < in; i++ {
				xnors[i] = bld.NOT(bld.XOR(wWires[l][o*in+i], x[i]))
			}
			pop := bld.PopCount(xnors)
			if l+2 == len(b.Sizes) {
				bld.Output(pop...)
			} else {
				next[o] = bld.GreaterConst(pop, uint64(in)/2)
			}
		}
		x = next
	}
	return bld.Finish()
}

// scoreBits returns the output word width of the final layer popcounts.
func (b *BNN) scoreBits() int {
	n := b.Sizes[len(b.Sizes)-2]
	bits := 1
	for (1 << bits) < n+1 {
		bits++
	}
	return bits
}

// XONNServe runs the server (garbler) side for one inference.
func XONNServe(conn transport.Conn, b *BNN, session uint64, rng *prg.PRG) error {
	g, err := gc.NewGarbler(conn, session, rng)
	if err != nil {
		return fmt.Errorf("baseline: xonn garbler: %w", err)
	}
	circ := b.Circuit()
	var wbits []byte
	for _, layer := range b.Weights {
		wbits = append(wbits, layer...)
	}
	return g.Run(circ, wbits)
}

// XONNQuery runs the client (evaluator) side: input are the binarized
// features; returns the output scores.
func XONNQuery(conn transport.Conn, b *BNN, input []byte, session uint64, rng *prg.PRG) ([]int, error) {
	if len(input) != b.Sizes[0] {
		return nil, fmt.Errorf("baseline: input has %d bits, want %d", len(input), b.Sizes[0])
	}
	e, err := gc.NewEvaluator(conn, session, rng)
	if err != nil {
		return nil, fmt.Errorf("baseline: xonn evaluator: %w", err)
	}
	circ := b.Circuit()
	out, err := e.Run(circ, input)
	if err != nil {
		return nil, err
	}
	sb := b.scoreBits()
	classes := b.Sizes[len(b.Sizes)-1]
	scores := make([]int, classes)
	for o := 0; o < classes; o++ {
		scores[o] = int(gc.BitsToUint(out[o*sb : (o+1)*sb]))
	}
	return scores, nil
}

// Binarize converts real-valued features into input bits by thresholding
// at the given level.
func Binarize(x []float64, threshold float64) []byte {
	out := make([]byte, len(x))
	for i, v := range x {
		if v >= threshold {
			out[i] = 1
		}
	}
	return out
}
