package par

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d, want 5", got)
	}
}

func TestNumChunks(t *testing.T) {
	cases := []struct{ workers, n, want int }{
		{1, 100, 1},
		{4, 100, 4},
		{8, 3, 3},  // never more chunks than items
		{4, 0, 0},  // empty range
		{4, -2, 0}, // degenerate range
		{3, 3, 3},
	}
	for _, c := range cases {
		if got := NumChunks(c.workers, c.n); got != c.want {
			t.Errorf("NumChunks(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

// TestChunksPartition verifies the contract the protocol kernels lean
// on: chunks tile [0, n) exactly, in order, with no gaps or overlaps.
func TestChunksPartition(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16, 100} {
		for _, n := range []int{0, 1, 2, 5, 16, 97, 4096} {
			var (
				next    = 0
				lastC   = -1
				touched = make([]bool, n)
			)
			// Run sequentially (workers resolved, but callbacks recorded
			// in completion order) — use a mutex-free check by forcing a
			// single worker... instead collect per-chunk ranges.
			type rng struct{ c, lo, hi int }
			k := NumChunks(workers, n)
			got := make([]rng, 0, k)
			var mu chan struct{} = make(chan struct{}, 1)
			mu <- struct{}{}
			Chunks(workers, n, func(c, lo, hi int) {
				<-mu
				got = append(got, rng{c, lo, hi})
				mu <- struct{}{}
				for i := lo; i < hi; i++ {
					touched[i] = true
				}
			})
			if len(got) != k {
				t.Fatalf("workers=%d n=%d: %d chunks ran, want %d", workers, n, len(got), k)
			}
			// Sort by chunk id (completion order is nondeterministic).
			for i := range got {
				for j := i + 1; j < len(got); j++ {
					if got[j].c < got[i].c {
						got[i], got[j] = got[j], got[i]
					}
				}
			}
			for _, r := range got {
				if r.c != lastC+1 {
					t.Fatalf("workers=%d n=%d: chunk ids not contiguous: %v", workers, n, got)
				}
				if r.lo != next {
					t.Fatalf("workers=%d n=%d: chunk %d starts at %d, want %d", workers, n, r.c, r.lo, next)
				}
				if r.hi < r.lo {
					t.Fatalf("workers=%d n=%d: chunk %d has hi %d < lo %d", workers, n, r.c, r.hi, r.lo)
				}
				next = r.hi
				lastC = r.c
			}
			if next != n {
				t.Fatalf("workers=%d n=%d: chunks cover [0,%d), want [0,%d)", workers, n, next, n)
			}
			for i, ok := range touched {
				if !ok {
					t.Fatalf("workers=%d n=%d: index %d never visited", workers, n, i)
				}
			}
		}
	}
}

func TestMapVisitsEveryIndexOnce(t *testing.T) {
	const n = 1000
	for _, workers := range []int{0, 1, 4, 32} {
		counts := make([]int32, n)
		Map(workers, n, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestChunksErrReturnsLowestChunkError(t *testing.T) {
	errA := fmt.Errorf("chunk 1 failed")
	errB := fmt.Errorf("chunk 3 failed")
	err := ChunksErr(4, 4, func(c, lo, hi int) error {
		switch c {
		case 1:
			return errA
		case 3:
			return errB
		}
		return nil
	})
	if err != errA {
		t.Fatalf("got %v, want lowest-chunk error %v", err, errA)
	}
	if err := ChunksErr(4, 100, func(c, lo, hi int) error { return nil }); err != nil {
		t.Fatalf("all-nil chunks returned %v", err)
	}
}

// TestNestedChunksNoDeadlock exercises the saturation path: every pool
// worker is busy with an outer chunk while inner Chunks calls submit
// more work. Direct handoff must degrade to inline execution, never
// deadlock.
func TestNestedChunksNoDeadlock(t *testing.T) {
	var total int64
	outerN := 4 * runtime.GOMAXPROCS(0)
	Chunks(outerN, outerN, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			Chunks(8, 64, func(_, ilo, ihi int) {
				atomic.AddInt64(&total, int64(ihi-ilo))
			})
		}
	})
	want := int64(outerN * 64)
	if total != want {
		t.Fatalf("nested chunks processed %d items, want %d", total, want)
	}
}

// FuzzParMap fuzzes the partition logic across worker counts, sizes and
// a salt that varies which index writes what: every slot must be
// written exactly its own value, and empty inputs must be no-ops.
func FuzzParMap(f *testing.F) {
	f.Add(1, 1, uint8(0))
	f.Add(0, 100, uint8(7))
	f.Add(8, 4096, uint8(255))
	f.Add(100, 3, uint8(1))
	f.Add(-5, 0, uint8(9))
	f.Fuzz(func(t *testing.T, workers, n int, salt uint8) {
		if n > 1<<16 {
			n %= 1 << 16
		}
		if n < 0 {
			n = -n % (1 << 16)
		}
		if workers > 1<<10 {
			workers %= 1 << 10
		}
		size := n
		if size < 0 {
			size = 0
		}
		out := make([]uint64, size)
		Map(workers, n, func(i int) {
			out[i] = uint64(i)*31 + uint64(salt)
		})
		for i := range out {
			if out[i] != uint64(i)*31+uint64(salt) {
				t.Fatalf("workers=%d n=%d salt=%d: slot %d holds %d", workers, n, salt, i, out[i])
			}
		}
		// Partition exactness for the same inputs.
		k := NumChunks(workers, n)
		var seen int32
		Chunks(workers, n, func(c, lo, hi int) {
			// Chunk c covers [c*n/k, (c+1)*n/k) by construction.
			if k > 0 && (lo != c*n/k || hi != (c+1)*n/k) {
				t.Errorf("chunk %d is [%d,%d), want [%d,%d)", c, lo, hi, c*n/k, (c+1)*n/k)
			}
			atomic.AddInt32(&seen, 1)
		})
		if int(seen) != k {
			t.Fatalf("workers=%d n=%d: %d chunks, want %d", workers, n, seen, k)
		}
	})
}

// A panic inside a pool-run chunk must re-panic on the calling goroutine
// as *ChunkPanic — never crash a pool worker — so a session-layer recover
// can contain it.
func TestChunkPanicRethrownOnCaller(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic swallowed", workers)
				}
				if workers > 1 {
					cp, ok := r.(*ChunkPanic)
					if !ok {
						t.Fatalf("workers=%d: recovered %T, want *ChunkPanic", workers, r)
					}
					if cp.Value != "boom" || len(cp.Stack) == 0 {
						t.Fatalf("workers=%d: ChunkPanic = %+v", workers, cp)
					}
				}
			}()
			Chunks(workers, 64, func(c, lo, hi int) {
				if lo <= 13 && 13 < hi {
					panic("boom")
				}
			})
		}()
	}
}

// All chunks run to completion even when one panics: no goroutine is
// abandoned mid-wait and the lowest-numbered panic wins deterministically.
func TestChunkPanicDeterministicAndComplete(t *testing.T) {
	var ran int32
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic")
		}
		if n := atomic.LoadInt32(&ran); n != 8 {
			t.Fatalf("%d chunks ran, want 8", n)
		}
	}()
	ChunksErr(8, 8, func(c, lo, hi int) error {
		atomic.AddInt32(&ran, 1)
		panic(c)
	})
}
