// Package par provides the shared bounded worker pool behind every
// parallel protocol kernel in this repository: OT-extension column
// processing, batch garbling/evaluation, and triplet matmul
// accumulation.
//
// Three properties every helper guarantees:
//
//   - Deterministic partition: [0, n) is split into contiguous ranges
//     whose boundaries depend only on the resolved worker count and n.
//     Callers write results through disjoint, index-addressed slots, so
//     protocol outputs (and seeded transcripts) are byte-identical for
//     any worker count — Workers(1) and Workers(32) produce the same
//     bytes, only at different speeds.
//
//   - Shared and bounded: one process-wide pool of GOMAXPROCS
//     goroutines serves every subsystem. A call never spawns
//     per-invocation goroutines, so a server handling many concurrent
//     sessions cannot fork an unbounded goroutine herd.
//
//   - Deadlock-free under saturation: task submission never blocks.
//     When the queue is full (nested parallelism, oversubscription) the
//     submitting goroutine runs the task inline, degrading to
//     sequential execution instead of deadlocking.
package par

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Workers resolves a configured worker count: values <= 0 mean one
// worker per logical CPU (GOMAXPROCS), mirroring Config.Workers.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// The shared pool. Workers are started lazily on first use and live for
// the process lifetime; protocol kernels are bursty enough that parking
// idle goroutines is cheaper than respawning them per call.
var (
	poolOnce  sync.Once
	taskQueue chan func()
)

func startPool() {
	// The channel is deliberately unbuffered: a submit succeeds only as
	// a direct handoff to a worker that is parked and ready to run.
	// With a buffered queue, nested Chunks calls could enqueue subtasks
	// and then block in wg.Wait while every pool worker is itself
	// blocked in wg.Wait — a deadlock. Direct handoff means a task is
	// either running on a worker or runs inline on the submitter, so
	// completion never depends on queue drain.
	taskQueue = make(chan func())
	for i := 0; i < runtime.GOMAXPROCS(0); i++ {
		go func() {
			for task := range taskQueue {
				task()
			}
		}()
	}
}

// submit hands task to a ready pool worker, or runs it inline when none
// is ready, so progress never depends on a free worker.
func submit(task func()) {
	poolOnce.Do(startPool)
	select {
	case taskQueue <- task:
	default:
		task()
	}
}

// NumChunks reports how many ranges Chunks and ChunksErr split [0, n)
// into for the given worker setting: min(Workers(workers), n), and 0
// when n <= 0. Callers use it to size per-chunk accumulator slots.
func NumChunks(workers, n int) int {
	if n <= 0 {
		return 0
	}
	k := Workers(workers)
	if k > n {
		k = n
	}
	return k
}

// Chunks splits [0, n) into NumChunks(workers, n) contiguous
// near-equal ranges and runs fn(c, lo, hi) for chunk c covering
// [lo, hi), concurrently on the shared pool. The final chunk runs on
// the calling goroutine. It returns after every chunk completes.
func Chunks(workers, n int, fn func(c, lo, hi int)) {
	// The error path is never taken; sharing the implementation keeps
	// the partition logic in one place.
	_ = ChunksErr(workers, n, func(c, lo, hi int) error {
		fn(c, lo, hi)
		return nil
	})
}

// ChunkPanic is the value re-panicked on the calling goroutine when a
// range body panics on a pool worker. Containing the panic inside the
// pool and rethrowing it on the submitter keeps panic semantics intact
// (callers may still recover) while guaranteeing that a poisoned chunk —
// e.g. a shape mismatch provoked by malformed peer data — can never kill
// an unrelated goroutine or the whole process from inside the shared
// pool.
type ChunkPanic struct {
	Value any    // the original panic value
	Stack []byte // stack of the panicking chunk
}

func (p *ChunkPanic) Error() string {
	return fmt.Sprintf("par: chunk panicked: %v", p.Value)
}

// ChunksErr is Chunks for range bodies that can fail. Every chunk runs
// to completion; the error of the lowest-numbered failing chunk is
// returned, so the result is deterministic even when several fail. A
// panicking chunk is re-panicked on the calling goroutine as a
// *ChunkPanic (again lowest-numbered first), never on a pool worker.
func ChunksErr(workers, n int, fn func(c, lo, hi int) error) error {
	k := NumChunks(workers, n)
	if k == 0 {
		return nil
	}
	if k == 1 {
		return fn(0, 0, n)
	}
	errs := make([]error, k)
	panics := make([]*ChunkPanic, k)
	var wg sync.WaitGroup
	for c := 0; c < k-1; c++ {
		c := c
		lo, hi := c*n/k, (c+1)*n/k
		wg.Add(1)
		submit(func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[c] = &ChunkPanic{Value: r, Stack: debug.Stack()}
				}
			}()
			errs[c] = fn(c, lo, hi)
		})
	}
	// The final chunk runs on the calling goroutine; its panics are
	// captured too so all chunks finish (wg.Wait) before any rethrow.
	func() {
		defer func() {
			if r := recover(); r != nil {
				panics[k-1] = &ChunkPanic{Value: r, Stack: debug.Stack()}
			}
		}()
		errs[k-1] = fn(k-1, (k-1)*n/k, n)
	}()
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn(i) for every i in [0, n) using at most Workers(workers)
// concurrent range bodies. fn must only write to state addressed by i.
func Map(workers, n int, fn func(i int)) {
	Chunks(workers, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}
