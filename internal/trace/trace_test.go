package trace

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("setup")
	if sp != nil {
		t.Fatalf("disabled tracer returned a span")
	}
	// Every method must be a no-op on the nil SpanCtx.
	sp.SetLayer(3).SetBatch(2).SetWorkers(4)
	sp.End(errors.New("ignored"))
	if got := New(nil); got != nil {
		t.Fatalf("New(nil) = %v, want nil tracer", got)
	}
}

func TestNilTracerAllocatesNothing(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Start("matmul").SetLayer(1)
		sp.End(nil)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocates %.1f per span", allocs)
	}
}

func TestSpanCountersAndNesting(t *testing.T) {
	var c Collector
	var ctr Counters
	tr := New(&c,
		WithParty("client"), WithSession(7), WithLabel("run"),
		WithCounters(func() Counters { return ctr }))

	root := tr.Start("batch").SetBatch(4)
	ctr.BytesSent += 100
	ctr.Messages++
	ctr.Flights++
	child := tr.Start("triplets").SetLayer(0).SetWorkers(8)
	ctr.BytesRecvd += 50
	ctr.Messages++
	ctr.Flights++
	child.End(nil)
	ctr.BytesSent += 10
	ctr.Messages++
	root.End(errors.New("boom"))

	spans := c.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	ch, rt := spans[0], spans[1]
	if ch.Name != "triplets" || ch.Layer != 0 || ch.Workers != 8 {
		t.Fatalf("child span = %+v", ch)
	}
	if ch.Parent != rt.ID {
		t.Fatalf("child parent = %d, want root id %d", ch.Parent, rt.ID)
	}
	if ch.BytesSent != 0 || ch.BytesRecvd != 50 || ch.Messages != 1 || ch.Flights != 1 {
		t.Fatalf("child counters = %+v", ch)
	}
	if rt.Parent != 0 || rt.Batch != 4 || rt.Layer != -1 {
		t.Fatalf("root span = %+v", rt)
	}
	if rt.BytesSent != 110 || rt.BytesRecvd != 50 || rt.Messages != 3 || rt.Flights != 2 {
		t.Fatalf("root counters = %+v", rt)
	}
	if rt.Err != "boom" {
		t.Fatalf("root err = %q", rt.Err)
	}
	for _, s := range spans {
		if s.Party != "client" || s.Session != 7 || s.Label != "run" {
			t.Fatalf("span identity = %+v", s)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	tr := New(sink, WithParty("server"))
	sp := tr.Start("offline").SetBatch(2)
	sub := tr.Start("triplets").SetLayer(1)
	sub.End(nil)
	sp.End(nil)

	spans, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "triplets" || spans[0].Layer != 1 {
		t.Fatalf("span 0 = %+v", spans[0])
	}
	if spans[1].Name != "offline" || spans[1].Batch != 2 || spans[1].Layer != -1 {
		t.Fatalf("span 1 = %+v", spans[1])
	}
}

func TestMultiFansOutAndDropsNil(t *testing.T) {
	var a, b Collector
	sink := Multi(nil, &a, nil, &b)
	tr := New(sink)
	tr.Start("setup").End(nil)
	if len(a.Spans()) != 1 || len(b.Spans()) != 1 {
		t.Fatalf("multi sink did not fan out: %d/%d", len(a.Spans()), len(b.Spans()))
	}
	if Multi(nil, nil) != nil {
		t.Fatal("Multi of only nils should be nil")
	}
	if got := Multi(&a); got != Sink(&a) {
		t.Fatal("Multi of one sink should return it unwrapped")
	}
}

func TestRootsLeavesSummarize(t *testing.T) {
	spans := []Span{
		{ID: 1, Name: "setup", Layer: -1, Party: "client", BytesSent: 10, Dur: time.Millisecond},
		{ID: 2, Name: "batch", Layer: -1, Party: "client", BytesSent: 100, BytesRecvd: 40},
		{ID: 3, Parent: 2, Name: "offline", Layer: -1, Party: "client", BytesSent: 60},
		{ID: 4, Parent: 3, Name: "triplets", Layer: 0, Party: "client", BytesSent: 30},
		{ID: 5, Parent: 3, Name: "triplets", Layer: 1, Party: "client", BytesSent: 30},
	}
	roots := Roots(spans)
	if len(roots) != 2 {
		t.Fatalf("roots = %d, want 2", len(roots))
	}
	var rootBytes int64
	for _, s := range roots {
		rootBytes += s.Bytes()
	}
	if rootBytes != 150 {
		t.Fatalf("root bytes = %d, want 150", rootBytes)
	}
	leaves := Leaves(spans)
	if len(leaves) != 3 { // setup + two triplets layers
		t.Fatalf("leaves = %d, want 3: %+v", len(leaves), leaves)
	}
	stats := Summarize(leaves)
	if len(stats) != 3 {
		t.Fatalf("summary groups = %d, want 3", len(stats))
	}
	tbl := FormatTable(stats)
	for _, want := range []string{"setup", "triplets", "total"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("table missing %q:\n%s", want, tbl)
		}
	}
}

func TestSummarizeGroupsRepeats(t *testing.T) {
	spans := []Span{
		{ID: 1, Name: "relu", Layer: 0, Party: "server", BytesSent: 5, Messages: 1},
		{ID: 2, Name: "relu", Layer: 0, Party: "server", BytesSent: 7, Messages: 1},
		{ID: 3, Name: "relu", Layer: 1, Party: "server", BytesSent: 1, Messages: 1},
	}
	stats := Summarize(spans)
	if len(stats) != 2 {
		t.Fatalf("groups = %d, want 2", len(stats))
	}
	if stats[0].Count != 2 || stats[0].BytesSent != 12 || stats[0].Messages != 2 {
		t.Fatalf("layer-0 group = %+v", stats[0])
	}
}

// Two parties of an in-process run share one sink; Emit must be
// concurrency-safe.
func TestConcurrentEmit(t *testing.T) {
	var c Collector
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			tr := New(&c, WithSession(uint64(p)))
			for i := 0; i < 100; i++ {
				tr.Start("matmul").SetLayer(i).End(nil)
			}
		}(p)
	}
	wg.Wait()
	if got := len(c.Spans()); got != 400 {
		t.Fatalf("collected %d spans, want 400", got)
	}
}
