package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// Synthetic two-party session used across the timeline tests. All times
// are expressed on the "true" server clock; client stamps are then
// shifted by -skew (the client's clock runs behind), so BuildTimeline
// must recover offset == +skew to line the parties back up.
//
// Server-true schedule (session 7, symmetric 5ms transit):
//
//	  0..10ms  client dial/handshake (span "dial")     -> queue
//	 10ms      client send #1 (40 B)
//	 10..15ms  flight in transit                        -> wire
//	 15ms      server recv #1
//	 15..20ms  server draws from the bank (span "bank") -> bank-wait
//	 20..25ms  server computes                          -> compute
//	 25ms      server send #1 (100 B)
//	 25..30ms  flight in transit                        -> wire
//	 30ms      client recv #1
//	 30..50ms  client computes (span "online")          -> compute
//	 50ms      client send #2 (8 B)
//	 50..55ms  flight in transit                        -> wire
//	 55ms      server recv #2, session ends
func twoPartySession(skew time.Duration) (spans []Span, flights []Flight) {
	base := time.Unix(1000, 0)
	srv := func(ms int) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }
	cli := func(ms int) time.Time { return srv(ms).Add(-skew) }

	flights = []Flight{
		{Party: "client", Session: 7, Dir: DirSend, Seq: 1, Bytes: 40, Wall: cli(10)},
		{Party: "server", Session: 7, Dir: DirRecv, Seq: 1, Bytes: 40, Wall: srv(15)},
		{Party: "server", Session: 7, Dir: DirSend, Seq: 1, Bytes: 100, Wall: srv(25)},
		{Party: "client", Session: 7, Dir: DirRecv, Seq: 1, Bytes: 100, Wall: cli(30)},
		{Party: "client", Session: 7, Dir: DirSend, Seq: 2, Bytes: 8, Wall: cli(50)},
		{Party: "server", Session: 7, Dir: DirRecv, Seq: 2, Bytes: 8, Wall: srv(55)},
	}
	spans = []Span{
		{ID: 100, Party: "client", Session: 7, Name: "dial", Layer: -1,
			Start: cli(0), Dur: 10 * time.Millisecond},
		{ID: 101, Party: "client", Session: 7, Name: "online", Layer: -1,
			Start: cli(30), Dur: 20 * time.Millisecond},
		{ID: 200, Party: "server", Session: 7, Name: "bank", Layer: -1,
			Start: srv(15), Dur: 5 * time.Millisecond},
	}
	return spans, flights
}

func TestEstimateOffsetRecoversSkew(t *testing.T) {
	const skew = 150 * time.Millisecond
	_, flights := twoPartySession(skew)
	var cf, sf []Flight
	for _, f := range flights {
		if f.Party == "client" {
			cf = append(cf, f)
		} else {
			sf = append(sf, f)
		}
	}
	offset, bound, pairs, err := EstimateOffset(cf, sf)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric 5ms transit: the min filter recovers the skew exactly,
	// with a bound equal to the one-way delay.
	if offset != skew {
		t.Errorf("offset = %v, want %v", offset, skew)
	}
	if bound != 5*time.Millisecond {
		t.Errorf("bound = %v, want 5ms", bound)
	}
	if pairs != 3 {
		t.Errorf("pairs = %d, want 3", pairs)
	}
}

func TestEstimateOffsetNeedsBothDirections(t *testing.T) {
	base := time.Unix(1000, 0)
	cf := []Flight{{Party: "client", Dir: DirSend, Seq: 1, Bytes: 4, Wall: base}}
	sf := []Flight{{Party: "server", Dir: DirRecv, Seq: 1, Bytes: 4, Wall: base.Add(time.Millisecond)}}
	if _, _, _, err := EstimateOffset(cf, sf); err == nil {
		t.Fatal("one-directional flight set estimated an offset")
	}
}

func TestEstimateOffsetSkipsMismatchedBytes(t *testing.T) {
	const skew = 20 * time.Millisecond
	_, flights := twoPartySession(skew)
	// Corrupt one pair: a truncated dump whose sizes disagree must not
	// poison the estimate (flight c2s #1 would otherwise set the min).
	var cf, sf []Flight
	for _, f := range flights {
		if f.Party == "client" {
			if f.Dir == DirSend && f.Seq == 1 {
				f.Bytes = 9999
			}
			cf = append(cf, f)
		} else {
			sf = append(sf, f)
		}
	}
	offset, _, pairs, err := EstimateOffset(cf, sf)
	if err != nil {
		t.Fatal(err)
	}
	if offset != skew {
		t.Errorf("offset = %v, want %v", offset, skew)
	}
	if pairs != 2 {
		t.Errorf("pairs = %d, want 2 (mismatched pair skipped)", pairs)
	}
}

func TestBuildTimelinePartition(t *testing.T) {
	const skew = 150 * time.Millisecond
	spans, flights := twoPartySession(skew)
	tl, err := BuildTimeline(7, spans, flights)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Offset != skew {
		t.Errorf("offset = %v, want %v", tl.Offset, skew)
	}
	if tl.Wall != 55*time.Millisecond {
		t.Errorf("wall = %v, want 55ms", tl.Wall)
	}
	if err := tl.Check(0.01); err != nil {
		t.Fatalf("partition: %v", err)
	}
	want := map[string]time.Duration{
		ClassQueue:    10 * time.Millisecond, // dial span
		ClassWire:     15 * time.Millisecond, // three 5ms transits
		ClassBankWait: 5 * time.Millisecond,  // server bank span
		ClassCompute:  25 * time.Millisecond, // 20..25 server + 30..50 client
	}
	for class, d := range want {
		if got := tl.ByClass[class]; got != d {
			t.Errorf("ByClass[%s] = %v, want %v", class, got, d)
		}
	}
	// Attribution carries phase names: the client compute interval must
	// be attributed to its covering "online" span.
	foundOnline := false
	for _, a := range tl.Attr {
		if a.Class == ClassCompute && a.Party == "client" && a.Phase == "online" {
			foundOnline = true
			if a.Dur != 20*time.Millisecond {
				t.Errorf("online compute = %v, want 20ms", a.Dur)
			}
		}
	}
	if !foundOnline {
		t.Error("client online compute missing from attribution")
	}
}

func TestBuildTimelineRequiresBothParties(t *testing.T) {
	spans, flights := twoPartySession(0)
	var serverOnly []Flight
	for _, f := range flights {
		if f.Party == "server" {
			serverOnly = append(serverOnly, f)
		}
	}
	if _, err := BuildTimeline(7, spans, serverOnly); err == nil {
		t.Fatal("server-only dump built a timeline")
	}
}

func TestTimelineCheckCatchesGaps(t *testing.T) {
	spans, flights := twoPartySession(0)
	tl, err := BuildTimeline(7, spans, flights)
	if err != nil {
		t.Fatal(err)
	}
	// Drop an interval: Check must notice the wall time no longer tiles.
	tl.Intervals = tl.Intervals[1:]
	if err := tl.Check(0.01); err == nil {
		t.Fatal("Check accepted a holed partition")
	}
}

func TestSessionsListsOnlyTwoPartySessions(t *testing.T) {
	_, flights := twoPartySession(0)
	// Session 9 has only client flights: not reconcilable.
	flights = append(flights, Flight{Party: "client", Session: 9, Dir: DirSend, Seq: 1, Bytes: 1, Wall: time.Unix(1000, 0)})
	ids := Sessions(flights)
	if len(ids) != 1 || ids[0] != 7 {
		t.Fatalf("Sessions = %v, want [7]", ids)
	}
}

func TestFormatTimeline(t *testing.T) {
	spans, flights := twoPartySession(30 * time.Millisecond)
	tl, err := BuildTimeline(7, spans, flights)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatTimeline(tl)
	for _, want := range []string{"session 7", "clock offset", ClassCompute, ClassWire, ClassQueue, ClassBankWait, "online", "bank", "dial"} {
		if !strings.Contains(out, want) {
			t.Errorf("report lacks %q:\n%s", want, out)
		}
	}
}

// TestTimelineThroughJSONL round-trips the merged dump through the JSONL
// writer/reader pair, as abnn2-inspect -timeline does with two -trace-out
// files.
func TestTimelineThroughJSONL(t *testing.T) {
	const skew = 42 * time.Millisecond
	spans, flights := twoPartySession(skew)
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	for _, s := range spans {
		sink.Emit(s)
	}
	for _, f := range flights {
		sink.EmitFlight(f)
	}
	gotSpans, gotFlights, err := ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotSpans) != len(spans) || len(gotFlights) != len(flights) {
		t.Fatalf("round trip: %d spans, %d flights (want %d, %d)",
			len(gotSpans), len(gotFlights), len(spans), len(flights))
	}
	tl, err := BuildTimeline(7, gotSpans, gotFlights)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Offset != skew {
		t.Errorf("offset after round trip = %v, want %v", tl.Offset, skew)
	}
	if err := tl.Check(0.01); err != nil {
		t.Fatal(err)
	}
}
