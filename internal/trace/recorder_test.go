package trace

import (
	"sync"
	"testing"
	"time"
)

func TestRecorderRingBound(t *testing.T) {
	r := NewRecorder(4, 8)
	base := time.Unix(0, 0)
	for i := 0; i < 10; i++ {
		r.EmitFlight(Flight{Session: 1, Dir: DirSend, Seq: int64(i), Wall: base})
	}
	events, dropped := r.Session(1)
	if len(events) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(events))
	}
	if dropped != 6 {
		t.Errorf("dropped = %d, want 6", dropped)
	}
	// Oldest-first unroll: the survivors are seqs 6..9.
	for i, ev := range events {
		if ev.Flight == nil || ev.Flight.Seq != int64(6+i) {
			t.Fatalf("event %d = %+v, want flight seq %d", i, ev, 6+i)
		}
	}
}

func TestRecorderMixedEvents(t *testing.T) {
	r := NewRecorder(8, 8)
	r.Emit(Span{Session: 3, Name: "online", Layer: -1})
	r.EmitFlight(Flight{Session: 3, Dir: DirRecv, Seq: 1})
	events, dropped := r.Session(3)
	if dropped != 0 || len(events) != 2 {
		t.Fatalf("got %d events (%d dropped), want 2 (0)", len(events), dropped)
	}
	if events[0].Span == nil || events[0].Span.Name != "online" {
		t.Errorf("event 0 = %+v, want the online span", events[0])
	}
	if events[1].Flight == nil || events[1].Flight.Seq != 1 {
		t.Errorf("event 1 = %+v, want the recv flight", events[1])
	}
}

func TestRecorderSessionLRU(t *testing.T) {
	r := NewRecorder(4, 2)
	r.EmitFlight(Flight{Session: 1, Seq: 1})
	r.EmitFlight(Flight{Session: 2, Seq: 1})
	// Touch 1 so 2 becomes the eviction candidate.
	r.EmitFlight(Flight{Session: 1, Seq: 2})
	r.EmitFlight(Flight{Session: 3, Seq: 1})

	if ev, _ := r.Session(2); ev != nil {
		t.Error("least recently touched session 2 not evicted")
	}
	if ev, _ := r.Session(1); len(ev) != 2 {
		t.Errorf("session 1 has %d events, want 2", len(ev))
	}
	ids := r.Sessions()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Errorf("Sessions = %v, want [1 3]", ids)
	}
}

func TestRecorderUnknownSession(t *testing.T) {
	r := NewRecorder(4, 4)
	if ev, dropped := r.Session(99); ev != nil || dropped != 0 {
		t.Errorf("unknown session returned (%v, %d)", ev, dropped)
	}
}

func TestRecorderNil(t *testing.T) {
	var r *Recorder
	r.Emit(Span{Session: 1})
	r.EmitFlight(Flight{Session: 1})
	if r.Sessions() != nil {
		t.Error("nil recorder listed sessions")
	}
	if ev, _ := r.Session(1); ev != nil {
		t.Error("nil recorder returned events")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(16, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.EmitFlight(Flight{Session: uint64(g % 3), Seq: int64(i)})
				r.Emit(Span{Session: uint64(g % 3), Name: "online"})
				r.Session(uint64(g % 3))
				r.Sessions()
			}
		}(g)
	}
	wg.Wait()
	if n := len(r.Sessions()); n != 3 {
		t.Errorf("recorded %d sessions, want 3", n)
	}
}
