package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Collector is an in-memory Sink and FlightSink, for tests and post-run
// analysis.
type Collector struct {
	mu      sync.Mutex
	spans   []Span
	flights []Flight
}

// Emit implements Sink.
func (c *Collector) Emit(s Span) {
	c.mu.Lock()
	c.spans = append(c.spans, s)
	c.mu.Unlock()
}

// EmitFlight implements FlightSink.
func (c *Collector) EmitFlight(f Flight) {
	c.mu.Lock()
	c.flights = append(c.flights, f)
	c.mu.Unlock()
}

// Spans returns a copy of everything collected so far, in emission order.
func (c *Collector) Spans() []Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Span, len(c.spans))
	copy(out, c.spans)
	return out
}

// Flights returns a copy of every flight collected so far, in emission
// order.
func (c *Collector) Flights() []Flight {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Flight, len(c.flights))
	copy(out, c.flights)
	return out
}

// JSONL writes one JSON object per span to an io.Writer — the dump
// format of the CLIs' -trace-out flags. Safe for concurrent Emit.
type JSONL struct {
	mu  sync.Mutex
	w   io.Writer
	enc *json.Encoder
}

// NewJSONL returns a JSONL sink writing to w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: w, enc: json.NewEncoder(w)}
}

// Emit implements Sink. Encoding errors are swallowed: telemetry must
// never fail the protocol it observes.
func (j *JSONL) Emit(s Span) {
	j.mu.Lock()
	_ = j.enc.Encode(s)
	j.mu.Unlock()
}

// EmitFlight implements FlightSink: flight lines interleave with span
// lines in the same dump, discriminated by "kind":"flight".
func (j *JSONL) EmitFlight(f Flight) {
	f.Kind = FlightKind
	j.mu.Lock()
	_ = j.enc.Encode(f)
	j.mu.Unlock()
}

// Multi fans every span out to several sinks (e.g. a metrics bridge and
// a JSONL dump at the same time).
func Multi(sinks ...Sink) Sink {
	var live []Sink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiSink(live)
}

type multiSink []Sink

func (m multiSink) Emit(s Span) {
	for _, sink := range m {
		sink.Emit(s)
	}
}

// EmitFlight forwards to the member sinks that consume flights.
func (m multiSink) EmitFlight(f Flight) {
	for _, sink := range m {
		if fs, ok := sink.(FlightSink); ok {
			fs.EmitFlight(f)
		}
	}
}

// ReadJSONL parses a JSONL span dump produced by the JSONL sink. Flight
// lines ("kind":"flight") are skipped; use ReadDump to get both.
func ReadJSONL(r io.Reader) ([]Span, error) {
	spans, _, err := ReadDump(r)
	return spans, err
}

// ReadDump parses a JSONL dump into its spans and flights. Both record
// kinds share one file: spans have no "kind" field, flights carry
// "kind":"flight".
func ReadDump(r io.Reader) ([]Span, []Flight, error) {
	var spans []Span
	var flights []Flight
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var kind struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(raw, &kind); err != nil {
			return nil, nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if kind.Kind == FlightKind {
			var f Flight
			if err := json.Unmarshal(raw, &f); err != nil {
				return nil, nil, fmt.Errorf("trace: line %d: %w", line, err)
			}
			flights = append(flights, f)
			continue
		}
		var s Span
		if err := json.Unmarshal(raw, &s); err != nil {
			return nil, nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		spans = append(spans, s)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("trace: read: %w", err)
	}
	return spans, flights, nil
}
