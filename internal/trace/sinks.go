package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Collector is an in-memory Sink, for tests and post-run analysis.
type Collector struct {
	mu    sync.Mutex
	spans []Span
}

// Emit implements Sink.
func (c *Collector) Emit(s Span) {
	c.mu.Lock()
	c.spans = append(c.spans, s)
	c.mu.Unlock()
}

// Spans returns a copy of everything collected so far, in emission order.
func (c *Collector) Spans() []Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Span, len(c.spans))
	copy(out, c.spans)
	return out
}

// JSONL writes one JSON object per span to an io.Writer — the dump
// format of the CLIs' -trace-out flags. Safe for concurrent Emit.
type JSONL struct {
	mu  sync.Mutex
	w   io.Writer
	enc *json.Encoder
}

// NewJSONL returns a JSONL sink writing to w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: w, enc: json.NewEncoder(w)}
}

// Emit implements Sink. Encoding errors are swallowed: telemetry must
// never fail the protocol it observes.
func (j *JSONL) Emit(s Span) {
	j.mu.Lock()
	_ = j.enc.Encode(s)
	j.mu.Unlock()
}

// Multi fans every span out to several sinks (e.g. a metrics bridge and
// a JSONL dump at the same time).
func Multi(sinks ...Sink) Sink {
	var live []Sink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiSink(live)
}

type multiSink []Sink

func (m multiSink) Emit(s Span) {
	for _, sink := range m {
		sink.Emit(s)
	}
}

// ReadJSONL parses a JSONL span dump produced by the JSONL sink.
func ReadJSONL(r io.Reader) ([]Span, error) {
	var spans []Span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var s Span
		if err := json.Unmarshal(raw, &s); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		spans = append(spans, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return spans, nil
}
