package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Cross-party timeline reconciliation: merge the span/flight dumps of a
// session's two endpoints into one timeline on the server's clock, and
// attribute every interval of the session's wall time to one of four
// classes. The attribution is a partition — the intervals tile the
// session exactly — so the per-class durations always sum to the wall
// time; Timeline.Check guards that invariant against merge regressions.
//
// Classes:
//
//	compute    a party is working between wire operations
//	wire       a message is in transit (or the receiver is blocked on it)
//	queue      dial, handshake, and admission-control wait
//	bank-wait  drawing/claiming correlations from the bank
//
// Clock offset. Each endpoint stamps its own flights with its own clock.
// Over an ordered lossless transport the i-th send of one party is the
// i-th receive of the other, so every matched (send, recv) pair bounds
// the offset from one side: recv_stamp - send_stamp = offset + transit,
// with transit > 0. Taking the minimum over each direction (the
// NTP-style min filter) and averaging the two bounds cancels the
// symmetric part of the transit time:
//
//	min_c2s = min over i of (server_recv_i - client_send_i) =  off + t1
//	min_s2c = min over j of (client_recv_j - server_send_j) = -off + t2
//	offset  = (min_c2s - min_s2c) / 2      error bound: (min_c2s + min_s2c) / 2
//
// where offset converts client stamps to the server clock. The bound is
// exact when the fastest flight in each direction saw equal transit.

// Attribution class names.
const (
	ClassCompute  = "compute"
	ClassWire     = "wire"
	ClassQueue    = "queue"
	ClassBankWait = "bank-wait"
)

// Interval is one attributed slice of the reconciled session timeline.
// Start is on the server's clock.
type Interval struct {
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur_ns"`
	Class string        `json:"class"`
	// Party owns the interval for compute/queue/bank-wait; empty for
	// wire time, which belongs to the link.
	Party string `json:"party,omitempty"`
	// Phase is the name of the innermost span covering the interval on
	// the owning party, "" when no span covers it.
	Phase string `json:"phase,omitempty"`
	// Layer is the covering span's layer index, -1 otherwise.
	Layer int `json:"layer"`
}

// AttrStat aggregates intervals by (class, party, phase, layer).
type AttrStat struct {
	Class string        `json:"class"`
	Party string        `json:"party,omitempty"`
	Phase string        `json:"phase,omitempty"`
	Layer int           `json:"layer"`
	Count int           `json:"count"`
	Dur   time.Duration `json:"dur_ns"`
}

// Timeline is the reconciled two-party view of one session.
type Timeline struct {
	Session uint64 `json:"session"`
	// Offset is added to client stamps to land on the server clock.
	Offset time.Duration `json:"clock_offset_ns"`
	// OffsetBound is the estimation error bound (half the summed minimum
	// one-way delays).
	OffsetBound time.Duration `json:"clock_offset_bound_ns"`
	// Pairs is the number of matched (send, recv) flight pairs the
	// offset was estimated from.
	Pairs int `json:"matched_flights"`
	// Start/End delimit the session on the server clock: first observed
	// event to last flight.
	Start     time.Time                `json:"start"`
	End       time.Time                `json:"end"`
	Wall      time.Duration            `json:"wall_ns"`
	Intervals []Interval               `json:"intervals"`
	ByClass   map[string]time.Duration `json:"by_class_ns"`
	Attr      []AttrStat               `json:"attribution"`
}

// EstimateOffset estimates the clock offset between the two endpoints of
// one session from their flight stamps, via the min filter described in
// the package comment. It returns the offset to add to client stamps, an
// error bound, and the number of matched pairs. Pairs whose sizes
// disagree (truncated or mismatched dumps) are skipped.
func EstimateOffset(client, server []Flight) (offset, bound time.Duration, pairs int, err error) {
	bySeq := func(fs []Flight, dir string) map[int64]Flight {
		m := make(map[int64]Flight)
		for _, f := range fs {
			if f.Dir == dir {
				m[f.Seq] = f
			}
		}
		return m
	}
	cSend, cRecv := bySeq(client, DirSend), bySeq(client, DirRecv)
	sSend, sRecv := bySeq(server, DirSend), bySeq(server, DirRecv)

	const none = time.Duration(1<<63 - 1)
	minC2S, minS2C := none, none
	for seq, cs := range cSend {
		sr, ok := sRecv[seq]
		if !ok || sr.Bytes != cs.Bytes {
			continue
		}
		pairs++
		if d := sr.Wall.Sub(cs.Wall); d < minC2S {
			minC2S = d
		}
	}
	for seq, ss := range sSend {
		cr, ok := cRecv[seq]
		if !ok || cr.Bytes != ss.Bytes {
			continue
		}
		pairs++
		if d := cr.Wall.Sub(ss.Wall); d < minS2C {
			minS2C = d
		}
	}
	if minC2S == none || minS2C == none {
		return 0, 0, pairs, fmt.Errorf("trace: need matched flights in both directions to estimate clock offset (client %d flights, server %d)", len(client), len(server))
	}
	// The bound is the half-sum of the minimum one-way delays — a
	// magnitude. Clock drift between the two minima can push the raw sum
	// below zero; report its size either way.
	if bound = (minC2S + minS2C) / 2; bound < 0 {
		bound = -bound
	}
	return (minC2S - minS2C) / 2, bound, pairs, nil
}

// BuildTimeline merges the spans and flights of one session — both
// parties' dumps concatenated — into a reconciled timeline. Spans and
// flights are filtered to the given session id; both parties must have
// contributed flights.
func BuildTimeline(session uint64, spans []Span, flights []Flight) (*Timeline, error) {
	var cf, sf []Flight
	for _, f := range flights {
		if f.Session != session {
			continue
		}
		switch f.Party {
		case "client":
			cf = append(cf, f)
		case "server":
			sf = append(sf, f)
		}
	}
	if len(cf) == 0 || len(sf) == 0 {
		return nil, fmt.Errorf("trace: session %d: flights from both parties required (client %d, server %d)", session, len(cf), len(sf))
	}
	offset, bound, pairs, err := EstimateOffset(cf, sf)
	if err != nil {
		return nil, fmt.Errorf("trace: session %d: %w", session, err)
	}

	// Reconcile onto the server clock: shift client stamps by +offset.
	shifted := make([]Flight, 0, len(cf)+len(sf))
	for _, f := range cf {
		f.Wall = f.Wall.Add(offset)
		shifted = append(shifted, f)
	}
	shifted = append(shifted, sf...)
	sort.SliceStable(shifted, func(i, j int) bool {
		if !shifted[i].Wall.Equal(shifted[j].Wall) {
			return shifted[i].Wall.Before(shifted[j].Wall)
		}
		// Ties: a send precedes the receive it caused.
		return shifted[i].Dir == DirSend && shifted[j].Dir == DirRecv
	})

	// Innermost-span lookup per party, over the session's leaf spans
	// with reconciled start times.
	leaves := map[string][]Span{}
	for _, s := range Leaves(spans) {
		if s.Session != session {
			continue
		}
		if s.Party == "client" {
			s.Start = s.Start.Add(offset)
		}
		leaves[s.Party] = append(leaves[s.Party], s)
	}

	// The session runs from the first observed event (span start or
	// flight) to the last flight; whatever happens after the final
	// flight is connection teardown, not session work.
	start := shifted[0].Wall
	for _, ss := range leaves {
		for _, s := range ss {
			if s.Start.Before(start) {
				start = s.Start
			}
		}
	}
	end := shifted[len(shifted)-1].Wall

	// Boundaries: every flight stamp, plus the edges of non-compute
	// spans (dial/admission/bank) so a single inter-flight gap can split
	// across classes when, say, admission wait ends mid-gap.
	bounds := []time.Time{start}
	for _, f := range shifted {
		bounds = append(bounds, f.Wall)
	}
	for _, ss := range leaves {
		for _, s := range ss {
			if classOfSpan(s.Name) == ClassCompute {
				continue
			}
			for _, t := range []time.Time{s.Start, s.Start.Add(s.Dur)} {
				if t.After(start) && t.Before(end) {
					bounds = append(bounds, t)
				}
			}
		}
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i].Before(bounds[j]) })

	tl := &Timeline{
		Session: session, Offset: offset, OffsetBound: bound, Pairs: pairs,
		Start: start, End: end, Wall: end.Sub(start),
		ByClass: map[string]time.Duration{},
	}
	// Flight stamps sorted, for "next flight at or after t" queries.
	ftimes := make([]time.Time, len(shifted))
	for i, f := range shifted {
		ftimes[i] = f.Wall
	}
	for i := 0; i+1 < len(bounds); i++ {
		a, b := bounds[i], bounds[i+1]
		if !b.After(a) {
			continue
		}
		// The flight that ends this gap (the first at or after b)
		// determines the class: waiting to receive is wire time, working
		// toward a send is the sender's time, refined by its spans.
		j := sort.Search(len(shifted), func(k int) bool { return !ftimes[k].Before(b) })
		if j == len(shifted) {
			break // past the last flight: teardown, out of scope
		}
		next := shifted[j]
		iv := Interval{Start: a, Dur: b.Sub(a), Layer: -1}
		if next.Dir == DirRecv {
			iv.Class = ClassWire
		} else {
			mid := a.Add(b.Sub(a) / 2)
			iv.Party = next.Party
			iv.Class = ClassCompute
			if sp, ok := covering(leaves[next.Party], mid); ok {
				iv.Class = classOfSpan(sp.Name)
				iv.Phase = sp.Name
				iv.Layer = sp.Layer
			}
		}
		tl.Intervals = append(tl.Intervals, iv)
		tl.ByClass[iv.Class] += iv.Dur
	}
	tl.Attr = aggregate(tl.Intervals)
	return tl, nil
}

// classOfSpan maps a span name to its attribution class.
func classOfSpan(name string) string {
	switch name {
	case "bank", "bank-peer", "bank-refill":
		return ClassBankWait
	case "dial", "admission":
		return ClassQueue
	}
	return ClassCompute
}

// covering returns the innermost (latest-starting) span containing t.
func covering(spans []Span, t time.Time) (Span, bool) {
	var best Span
	found := false
	for _, s := range spans {
		if t.Before(s.Start) || t.After(s.Start.Add(s.Dur)) {
			continue
		}
		if !found || s.Start.After(best.Start) {
			best, found = s, true
		}
	}
	return best, found
}

func aggregate(ivs []Interval) []AttrStat {
	type key struct {
		class, party, phase string
		layer               int
	}
	idx := map[key]int{}
	var out []AttrStat
	for _, iv := range ivs {
		k := key{iv.Class, iv.Party, iv.Phase, iv.Layer}
		i, ok := idx[k]
		if !ok {
			i = len(out)
			idx[k] = i
			out = append(out, AttrStat{Class: iv.Class, Party: iv.Party, Phase: iv.Phase, Layer: iv.Layer})
		}
		out[i].Count++
		out[i].Dur += iv.Dur
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return classRank(out[i].Class) < classRank(out[j].Class)
		}
		return out[i].Dur > out[j].Dur
	})
	return out
}

func classRank(c string) int {
	switch c {
	case ClassCompute:
		return 0
	case ClassWire:
		return 1
	case ClassQueue:
		return 2
	case ClassBankWait:
		return 3
	}
	return 4
}

// Check verifies the partition invariant: the attributed intervals must
// tile the session, summing to the wall time within the given fraction
// (e.g. 0.01 for 1%).
func (tl *Timeline) Check(frac float64) error {
	var sum time.Duration
	for _, iv := range tl.Intervals {
		sum += iv.Dur
	}
	diff := tl.Wall - sum
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > frac*float64(tl.Wall) {
		return fmt.Errorf("trace: attributed %v of %v wall time (diff %v exceeds %.1f%%)",
			sum, tl.Wall, diff, frac*100)
	}
	return nil
}

// FormatTimeline renders the reconciled timeline as a human-readable
// report: offset estimate, per-class split, and the attribution table.
func FormatTimeline(tl *Timeline) string {
	var b strings.Builder
	fmt.Fprintf(&b, "session %d: wall %v (%s .. %s, server clock)\n",
		tl.Session, tl.Wall.Round(time.Microsecond),
		tl.Start.Format("15:04:05.000000"), tl.End.Format("15:04:05.000000"))
	fmt.Fprintf(&b, "clock offset (client->server): %v ± %v, from %d matched flights\n\n",
		tl.Offset.Round(time.Microsecond), tl.OffsetBound.Round(time.Microsecond), tl.Pairs)
	for _, c := range []string{ClassCompute, ClassWire, ClassQueue, ClassBankWait} {
		d := tl.ByClass[c]
		pct := 0.0
		if tl.Wall > 0 {
			pct = 100 * float64(d) / float64(tl.Wall)
		}
		fmt.Fprintf(&b, "%10s  %12v  %5.1f%%\n", c, d.Round(time.Microsecond), pct)
	}
	b.WriteString("\n")
	rows := [][]string{{"class", "party", "phase", "layer", "count", "time"}}
	for _, a := range tl.Attr {
		layer := "-"
		if a.Layer >= 0 {
			layer = fmt.Sprint(a.Layer)
		}
		phase := a.Phase
		if phase == "" {
			phase = "-"
		}
		party := a.Party
		if party == "" {
			party = "-"
		}
		rows = append(rows, []string{a.Class, party, phase, layer,
			fmt.Sprint(a.Count), a.Dur.Round(time.Microsecond).String()})
	}
	widths := make([]int, len(rows[0]))
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for ri, r := range rows {
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Sessions lists the session ids that have flights from both parties in
// the given set — the sessions BuildTimeline can reconcile.
func Sessions(flights []Flight) []uint64 {
	parties := map[uint64]map[string]bool{}
	for _, f := range flights {
		if parties[f.Session] == nil {
			parties[f.Session] = map[string]bool{}
		}
		parties[f.Session][f.Party] = true
	}
	var out []uint64
	for id, p := range parties {
		if p["client"] && p["server"] {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
