package trace

import (
	"strings"
	"testing"
	"time"
)

// mergedTwoPartyDump models the span set of one session seen from both
// endpoints merged into one slice (the input of abnn2-inspect after
// concatenating two -trace-out files): clock-skewed start stamps, a
// client that dialed twice (first attempt shed), and a server that
// degraded from banked to inline offline provisioning mid-session.
func mergedTwoPartyDump() []Span {
	srv := time.Unix(2000, 0)
	cli := srv.Add(-90 * time.Millisecond) // client clock runs behind
	ms := time.Millisecond
	return []Span{
		// Client, first dial attempt: shed by the server, retried.
		{ID: 1, Party: "client", Session: 0, Name: "dial", Layer: -1,
			Start: cli, Dur: 12 * ms, Err: "serve: rejected (saturated, retry after 100ms)"},
		// Client, admitted second attempt.
		{ID: 2, Party: "client", Session: 5, Name: "dial", Layer: -1,
			Start: cli.Add(120 * ms), Dur: 9 * ms},
		{ID: 3, Party: "client", Session: 5, Name: "batch", Layer: -1, Batch: 2,
			Start: cli.Add(130 * ms), Dur: 80 * ms, BytesSent: 4096, BytesRecvd: 1024, Messages: 6, Flights: 6},
		{ID: 4, Parent: 3, Party: "client", Session: 5, Name: "online", Layer: -1,
			Start: cli.Add(150 * ms), Dur: 60 * ms, BytesSent: 3000, BytesRecvd: 900},
		{ID: 5, Parent: 4, Party: "client", Session: 5, Name: "matmul", Layer: 0,
			Start: cli.Add(150 * ms), Dur: 25 * ms, BytesSent: 2000},
		{ID: 6, Parent: 4, Party: "client", Session: 5, Name: "relu", Layer: 0,
			Start: cli.Add(175 * ms), Dur: 20 * ms, BytesRecvd: 800},

		// Server: first batch drew from the bank, second found the pool
		// dry and fell back to the inline offline phase.
		{ID: 10, Party: "server", Session: 5, Name: "batch", Layer: -1, Batch: 2,
			Start: srv.Add(130 * ms), Dur: 82 * ms, BytesSent: 1024, BytesRecvd: 4096, Messages: 6, Flights: 6},
		{ID: 11, Parent: 10, Party: "server", Session: 5, Name: "bank", Layer: -1,
			Start: srv.Add(131 * ms), Dur: 3 * ms},
		{ID: 12, Party: "server", Session: 5, Name: "batch", Layer: -1, Batch: 2,
			Start: srv.Add(220 * ms), Dur: 95 * ms, BytesSent: 1024, BytesRecvd: 4096, Messages: 8, Flights: 8},
		{ID: 13, Parent: 12, Party: "server", Session: 5, Name: "offline", Layer: -1,
			Start: srv.Add(221 * ms), Dur: 40 * ms, BytesSent: 512, BytesRecvd: 2048},
	}
}

func TestSummarizeMergedTwoPartyDump(t *testing.T) {
	stats := Summarize(mergedTwoPartyDump())
	find := func(party, name string, layer int) (PhaseStat, bool) {
		for _, p := range stats {
			if p.Party == party && p.Name == name && p.Layer == layer {
				return p, true
			}
		}
		return PhaseStat{}, false
	}

	// Both dial attempts aggregate into one client row — retried dials
	// must not fork per-session groups.
	dial, ok := find("client", "dial", -1)
	if !ok {
		t.Fatal("client dial row missing")
	}
	if dial.Count != 2 {
		t.Errorf("dial count = %d, want 2 (shed attempt + admitted retry)", dial.Count)
	}
	if dial.Dur != 21*time.Millisecond {
		t.Errorf("dial dur = %v, want 21ms", dial.Dur)
	}

	// The degraded session contributes both a bank row (first batch) and
	// an inline offline row (second batch) on the server.
	if bank, ok := find("server", "bank", -1); !ok || bank.Count != 1 {
		t.Errorf("server bank row = %+v (ok=%v), want count 1", bank, ok)
	}
	if off, ok := find("server", "offline", -1); !ok || off.Count != 1 {
		t.Errorf("server offline row = %+v (ok=%v), want count 1", off, ok)
	}

	// Server batches aggregate across the banked and degraded runs.
	sb, ok := find("server", "batch", -1)
	if !ok {
		t.Fatal("server batch row missing")
	}
	if sb.Count != 2 || sb.BytesRecvd != 8192 {
		t.Errorf("server batch = count %d recvd %d, want count 2 recvd 8192", sb.Count, sb.BytesRecvd)
	}

	// Parties stay separate even for same-named phases, and the order
	// groups parties together (clients first: "client" < "server").
	if stats[0].Party != "client" {
		t.Errorf("first group party = %q, want client", stats[0].Party)
	}
	if _, ok := find("client", "batch", -1); !ok {
		t.Error("client batch row missing")
	}
}

func TestSummarizeLeavesPerLayer(t *testing.T) {
	leaves := Leaves(mergedTwoPartyDump())
	stats := Summarize(leaves)
	for _, p := range stats {
		if p.Name == "online" || (p.Name == "batch" && p.Party == "client") {
			t.Errorf("non-leaf %s/%s in leaf summary", p.Party, p.Name)
		}
	}
	foundMatmul := false
	for _, p := range stats {
		if p.Name == "matmul" && p.Layer == 0 && p.Party == "client" {
			foundMatmul = true
		}
	}
	if !foundMatmul {
		t.Error("per-layer matmul row missing from leaf summary")
	}
}

func TestFormatTableMergedDump(t *testing.T) {
	out := FormatTable(Summarize(mergedTwoPartyDump()))
	for _, want := range []string{"party", "client", "server", "dial", "bank", "offline", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("table lacks %q:\n%s", want, out)
		}
	}
	// The totals row must sum both parties' message counts (6+6+8).
	if !strings.Contains(out, "20") {
		t.Errorf("table totals lack the merged message count:\n%s", out)
	}
}
