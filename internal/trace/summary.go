package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Offline analysis of recorded spans: aggregate a dump into the
// per-phase/per-layer cost tables of the paper's evaluation section.

// PhaseStat is the aggregate cost of one (party, phase, layer) group.
type PhaseStat struct {
	Party      string
	Name       string
	Layer      int // -1 when the phase is not layer-scoped
	Count      int
	Dur        time.Duration
	BytesSent  int64
	BytesRecvd int64
	Messages   int64
	Flights    int64
}

// Bytes returns the group's total traffic, both directions.
func (p PhaseStat) Bytes() int64 { return p.BytesSent + p.BytesRecvd }

// Roots filters to root spans (no parent). Root spans partition a
// session's wire traffic, so their byte counts sum to the endpoint's
// meter total; nested spans overlap their parents and would double
// count.
func Roots(spans []Span) []Span {
	var out []Span
	for _, s := range spans {
		if s.Parent == 0 {
			out = append(out, s)
		}
	}
	return out
}

// Leaves filters to spans no other span claims as parent — the
// finest-grained phases, which is what per-layer tables want.
func Leaves(spans []Span) []Span {
	hasChild := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		if s.Parent != 0 {
			hasChild[s.Parent] = true
		}
	}
	var out []Span
	for _, s := range spans {
		if !hasChild[s.ID] {
			out = append(out, s)
		}
	}
	return out
}

// Summarize aggregates spans by (party, name, layer), in first-seen
// order. Callers typically pass Roots or Leaves of a dump.
func Summarize(spans []Span) []PhaseStat {
	type key struct {
		party string
		name  string
		layer int
	}
	idx := make(map[key]int)
	var out []PhaseStat
	for _, s := range spans {
		k := key{s.Party, s.Name, s.Layer}
		i, ok := idx[k]
		if !ok {
			i = len(out)
			idx[k] = i
			out = append(out, PhaseStat{Party: s.Party, Name: s.Name, Layer: s.Layer})
		}
		out[i].Count++
		out[i].Dur += s.Dur
		out[i].BytesSent += s.BytesSent
		out[i].BytesRecvd += s.BytesRecvd
		out[i].Messages += s.Messages
		out[i].Flights += s.Flights
	}
	// Stable presentation: group parties together, keep first-seen order
	// within a party.
	sort.SliceStable(out, func(i, j int) bool { return out[i].Party < out[j].Party })
	return out
}

// FormatTable renders phase stats as a fixed-width text table, one row
// per group plus a totals row.
func FormatTable(stats []PhaseStat) string {
	var b strings.Builder
	header := []string{"party", "phase", "layer", "count", "time", "sent", "recvd", "msgs", "flights"}
	rows := [][]string{header}
	var tot PhaseStat
	for _, p := range stats {
		layer := "-"
		if p.Layer >= 0 {
			layer = fmt.Sprint(p.Layer)
		}
		rows = append(rows, []string{
			p.Party, p.Name, layer, fmt.Sprint(p.Count),
			p.Dur.Round(time.Microsecond).String(),
			fmtBytes(p.BytesSent), fmtBytes(p.BytesRecvd),
			fmt.Sprint(p.Messages), fmt.Sprint(p.Flights),
		})
		tot.Count += p.Count
		tot.Dur += p.Dur
		tot.BytesSent += p.BytesSent
		tot.BytesRecvd += p.BytesRecvd
		tot.Messages += p.Messages
		tot.Flights += p.Flights
	}
	rows = append(rows, []string{
		"", "total", "", fmt.Sprint(tot.Count),
		tot.Dur.Round(time.Microsecond).String(),
		fmtBytes(tot.BytesSent), fmtBytes(tot.BytesRecvd),
		fmt.Sprint(tot.Messages), fmt.Sprint(tot.Flights),
	})
	widths := make([]int, len(header))
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for ri, r := range rows {
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
