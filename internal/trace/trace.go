// Package trace is the protocol telemetry layer: a lightweight span API
// that records what every phase of a secure-inference session costs —
// wall time, bytes in each direction, framed messages, one-way flights,
// and worker parallelism — and hands completed spans to a pluggable Sink.
//
// A span is one protocol phase. The taxonomy (see DESIGN.md,
// "Observability") mirrors the paper's evaluation breakdowns:
//
//	setup      base-OT setup for the triplet and GC subsystems
//	idle       a server's between-batches wait for the next announcement
//	batch      one full prediction batch (offline + online), root span
//	offline    the data-independent phase of a batch
//	triplets   one layer's triplet generation (Layer set)
//	online     the data-dependent phase of a batch
//	input      masked-input transfer
//	matmul     one layer's online matrix multiplication (Layer set)
//	relu       one layer's ReLU protocol (Layer set)
//	pool       one layer's max-pool protocol (Layer set)
//	argmax     the private argmax finish
//	output     output-share transfer
//
// The package is dependency-free by design: byte counters come in
// through a caller-supplied closure (transport.Meter adapts trivially),
// so transport, core, and the public abnn2 package can all share one
// Tracer without import cycles.
//
// A nil *Tracer is the disabled tracer: every method is a no-op and the
// hot path allocates nothing, so instrumentation can stay unconditional
// at the call sites.
package trace

import (
	"sync"
	"time"
)

// Span is one completed protocol phase. Byte/message/flight counts are
// deltas of the session's wire counters between the span's start and
// end, observed from one endpoint: BytesSent is what this party put on
// the wire during the phase, BytesRecvd what it took off.
type Span struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"` // 0 = root span
	// Party identifies the endpoint ("server" or "client").
	Party string `json:"party,omitempty"`
	// Session correlates spans with connection logs and metrics; the
	// serving CLI assigns one ID per accepted connection.
	Session uint64 `json:"session,omitempty"`
	// Label is free-form run identity (benchmarks tag table rows).
	Label string `json:"label,omitempty"`
	Name  string `json:"name"`
	// Layer is the network layer index for per-layer phases, -1 otherwise.
	Layer int `json:"layer"`
	// Batch is the prediction batch size, 0 when not batch-scoped.
	Batch int `json:"batch,omitempty"`
	// Workers is the resolved kernel parallelism, 0 when not recorded.
	Workers int `json:"workers,omitempty"`

	Start      time.Time     `json:"start"`
	Dur        time.Duration `json:"dur_ns"`
	BytesSent  int64         `json:"bytes_sent"`
	BytesRecvd int64         `json:"bytes_recvd"`
	Messages   int64         `json:"messages"`
	Flights    int64         `json:"flights"`
	Err        string        `json:"err,omitempty"`
}

// Bytes returns the span's total wire traffic, both directions.
func (s Span) Bytes() int64 { return s.BytesSent + s.BytesRecvd }

// Counters is a cumulative snapshot of one endpoint's wire activity.
// Values must be monotonically non-decreasing; spans record deltas.
type Counters struct {
	BytesSent  int64
	BytesRecvd int64
	Messages   int64
	Flights    int64
}

func (c Counters) sub(prev Counters) Counters {
	return Counters{
		BytesSent:  c.BytesSent - prev.BytesSent,
		BytesRecvd: c.BytesRecvd - prev.BytesRecvd,
		Messages:   c.Messages - prev.Messages,
		Flights:    c.Flights - prev.Flights,
	}
}

// Sink receives completed spans. Implementations must be safe for
// concurrent Emit calls: two parties of an in-process run may share one
// sink.
type Sink interface {
	Emit(Span)
}

// Option configures a Tracer.
type Option func(*Tracer)

// WithParty labels every span with the endpoint role.
func WithParty(p string) Option { return func(t *Tracer) { t.party = p } }

// WithSession labels every span with a session/connection ID.
func WithSession(id uint64) Option { return func(t *Tracer) { t.session = id } }

// WithLabel labels every span with a free-form run identity.
func WithLabel(l string) Option { return func(t *Tracer) { t.label = l } }

// WithCounters supplies the cumulative wire-counter source read at span
// boundaries. Without it spans record durations only.
func WithCounters(src func() Counters) Option { return func(t *Tracer) { t.counters = src } }

// Tracer hands out spans for one session. The nil Tracer is valid and
// disabled: Start returns nil and nil *SpanCtx methods no-op without
// allocating, so call sites need no enabled-check.
//
// A Tracer tracks span nesting with an internal stack, which matches the
// strictly sequential round structure of the protocols; spans of one
// Tracer must be started and ended from one goroutine at a time.
type Tracer struct {
	sink     Sink
	party    string
	session  uint64
	label    string
	counters func() Counters

	mu     sync.Mutex
	nextID uint64
	stack  []*SpanCtx
}

// New returns a Tracer emitting to sink. A nil sink yields the disabled
// (nil) tracer.
func New(sink Sink, opts ...Option) *Tracer {
	if sink == nil {
		return nil
	}
	t := &Tracer{sink: sink}
	for _, o := range opts {
		o(t)
	}
	return t
}

// SpanCtx is an in-flight span. Attribute setters return the receiver so
// instrumentation reads as one expression; all methods are nil-safe.
type SpanCtx struct {
	t    *Tracer
	span Span
	base Counters
}

// Start opens a span. The currently open span (if any) becomes its
// parent. Returns nil when the tracer is disabled.
func (t *Tracer) Start(name string) *SpanCtx {
	if t == nil {
		return nil
	}
	sc := &SpanCtx{t: t}
	sc.span.Name = name
	sc.span.Layer = -1
	sc.span.Party = t.party
	sc.span.Session = t.session
	sc.span.Label = t.label
	t.mu.Lock()
	t.nextID++
	sc.span.ID = t.nextID
	if n := len(t.stack); n > 0 {
		sc.span.Parent = t.stack[n-1].span.ID
	}
	t.stack = append(t.stack, sc)
	t.mu.Unlock()
	if t.counters != nil {
		sc.base = t.counters()
	}
	sc.span.Start = time.Now()
	return sc
}

// Layer records the network layer index the span belongs to.
func (sc *SpanCtx) SetLayer(i int) *SpanCtx {
	if sc != nil {
		sc.span.Layer = i
	}
	return sc
}

// SetBatch records the prediction batch size.
func (sc *SpanCtx) SetBatch(n int) *SpanCtx {
	if sc != nil {
		sc.span.Batch = n
	}
	return sc
}

// SetWorkers records the resolved kernel parallelism.
func (sc *SpanCtx) SetWorkers(n int) *SpanCtx {
	if sc != nil {
		sc.span.Workers = n
	}
	return sc
}

// End completes the span — duration and counter deltas are computed here
// — and emits it to the sink. err, when non-nil, is recorded on the
// span. End is idempotent in the sense that a span can only be popped
// once; ending a span also abandons any of its children that were never
// ended themselves.
func (sc *SpanCtx) End(err error) {
	if sc == nil {
		return
	}
	sc.span.Dur = time.Since(sc.span.Start)
	if sc.t.counters != nil {
		now := sc.t.counters()
		d := now.sub(sc.base)
		sc.span.BytesSent = d.BytesSent
		sc.span.BytesRecvd = d.BytesRecvd
		sc.span.Messages = d.Messages
		sc.span.Flights = d.Flights
	}
	if err != nil {
		sc.span.Err = err.Error()
	}
	sc.t.mu.Lock()
	for i := len(sc.t.stack) - 1; i >= 0; i-- {
		if sc.t.stack[i] == sc {
			sc.t.stack = sc.t.stack[:i]
			break
		}
	}
	sc.t.mu.Unlock()
	sc.t.sink.Emit(sc.span)
}
