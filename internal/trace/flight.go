package trace

import "time"

// A Flight is one framed wire message observed at one endpoint: the
// direction, the 1-based per-direction ordinal, the framed size, and a
// timestamp anchored to the session's start. Both endpoints stamp their
// own flights; because the transport is ordered and lossless, the i-th
// send of one party is the i-th receive of the other, which is what
// timeline reconciliation (EstimateOffset) exploits to estimate the
// clock offset between the two processes without any extra protocol.
//
// Flights carry only metadata — sizes and timings — never payload
// bytes, so dumps and flight-recorder exports are safe to share.
type Flight struct {
	// Kind is always FlightKind in serialized form, so span and flight
	// lines can coexist in one JSONL dump.
	Kind    string `json:"kind,omitempty"`
	Party   string `json:"party,omitempty"`
	Session uint64 `json:"session,omitempty"`
	// Dir is DirSend or DirRecv, from this endpoint's point of view.
	Dir string `json:"dir"`
	// Seq is the 1-based ordinal of this flight within (party, dir).
	Seq int64 `json:"seq"`
	// Bytes is the framed payload size.
	Bytes int64 `json:"bytes"`
	// Wall is the stamp in this endpoint's clock, derived from a
	// monotonic reading against the session epoch so a wall-clock step
	// mid-session cannot reorder flights.
	Wall time.Time `json:"wall"`
}

// Serialized discriminators for mixed span/flight JSONL dumps.
const (
	FlightKind = "flight"
	DirSend    = "send"
	DirRecv    = "recv"
)

// FlightSink receives flight events. Sinks that also want flights —
// JSONL dumps, the Collector, the Recorder — implement it alongside
// Sink; the session layer type-asserts and stamps flights only when the
// configured trace sink consumes them. Implementations must be safe for
// concurrent EmitFlight calls.
type FlightSink interface {
	EmitFlight(Flight)
}
