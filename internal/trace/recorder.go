package trace

import "sync"

// Recorder is an always-on bounded flight recorder: a per-session ring
// buffer of recent span and flight events, cheap enough to leave enabled
// in production and dump only when an anomaly trigger fires. Rings are
// bounded per session and the session set itself is an LRU, so memory is
// O(maxSessions * perSession) regardless of traffic.
//
// A nil *Recorder is valid and disabled, like the nil Tracer.
type Recorder struct {
	perSession  int
	maxSessions int

	mu       sync.Mutex
	sessions map[uint64]*sessionRing
	order    []uint64 // LRU order, most recently touched last
}

// RecorderEvent is one recorded event: exactly one of Span or Flight is
// set.
type RecorderEvent struct {
	Span   *Span   `json:"span,omitempty"`
	Flight *Flight `json:"flight,omitempty"`
}

// Default ring sizing: 256 events covers every flight and span of an
// MNIST-scale session with room to spare; 64 sessions bounds a busy
// server's recorder well under a megabyte.
const (
	DefaultRecorderEvents   = 256
	DefaultRecorderSessions = 64
)

// NewRecorder returns a Recorder keeping the last perSession events for
// each of the last maxSessions sessions. Non-positive arguments take the
// defaults.
func NewRecorder(perSession, maxSessions int) *Recorder {
	if perSession <= 0 {
		perSession = DefaultRecorderEvents
	}
	if maxSessions <= 0 {
		maxSessions = DefaultRecorderSessions
	}
	return &Recorder{
		perSession:  perSession,
		maxSessions: maxSessions,
		sessions:    make(map[uint64]*sessionRing),
	}
}

type sessionRing struct {
	events  []RecorderEvent // ring storage, len == capacity once full
	next    int             // write cursor
	full    bool
	dropped int64 // events overwritten so far
}

// Emit implements Sink.
func (r *Recorder) Emit(s Span) {
	if r == nil {
		return
	}
	r.add(s.Session, RecorderEvent{Span: &s})
}

// EmitFlight implements FlightSink.
func (r *Recorder) EmitFlight(f Flight) {
	if r == nil {
		return
	}
	r.add(f.Session, RecorderEvent{Flight: &f})
}

func (r *Recorder) add(session uint64, ev RecorderEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ring, ok := r.sessions[session]
	if !ok {
		if len(r.order) >= r.maxSessions {
			evict := r.order[0]
			r.order = r.order[1:]
			delete(r.sessions, evict)
		}
		ring = &sessionRing{events: make([]RecorderEvent, 0, r.perSession)}
		r.sessions[session] = ring
		r.order = append(r.order, session)
	} else if r.order[len(r.order)-1] != session {
		for i, id := range r.order {
			if id == session {
				r.order = append(r.order[:i], r.order[i+1:]...)
				break
			}
		}
		r.order = append(r.order, session)
	}
	if ring.full {
		ring.events[ring.next] = ev
		ring.next = (ring.next + 1) % r.perSession
		ring.dropped++
		return
	}
	ring.events = append(ring.events, ev)
	if len(ring.events) == r.perSession {
		ring.full = true
	}
}

// Sessions returns the recorded session ids, least recently touched
// first. Nil-safe.
func (r *Recorder) Sessions() []uint64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]uint64, len(r.order))
	copy(out, r.order)
	return out
}

// Session returns a copy of one session's recorded events oldest-first,
// and how many older events the ring has already overwritten. Nil-safe;
// unknown sessions return (nil, 0).
func (r *Recorder) Session(id uint64) ([]RecorderEvent, int64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ring, ok := r.sessions[id]
	if !ok {
		return nil, 0
	}
	out := make([]RecorderEvent, 0, len(ring.events))
	if ring.full {
		out = append(out, ring.events[ring.next:]...)
		out = append(out, ring.events[:ring.next]...)
	} else {
		out = append(out, ring.events...)
	}
	return out, ring.dropped
}
