package bitmat

import (
	"math/rand"
	"testing"
)

func BenchmarkTranspose4096x256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := randomMatrix(rng, 4096, 256)
	b.SetBytes(int64(len(m.Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Transpose(m)
	}
}

func BenchmarkTranspose128x128(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := randomMatrix(rng, 128, 128)
	b.SetBytes(int64(len(m.Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Transpose(m)
	}
}
