package bitmat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	rng.Read(m.Data)
	return m
}

func TestSetGetBit(t *testing.T) {
	m := New(3, 16)
	m.SetBit(1, 9, 1)
	if m.Bit(1, 9) != 1 {
		t.Fatal("bit not set")
	}
	if m.Bit(1, 8) != 0 || m.Bit(0, 9) != 0 || m.Bit(2, 9) != 0 {
		t.Fatal("neighbouring bits disturbed")
	}
	m.SetBit(1, 9, 0)
	if m.Bit(1, 9) != 0 {
		t.Fatal("bit not cleared")
	}
}

func TestTransposeSmallKnown(t *testing.T) {
	m := New(2, 8)
	m.SetBit(0, 3, 1)
	m.SetBit(1, 5, 1)
	tr := Transpose(m)
	if tr.Rows != 8 {
		t.Fatalf("transposed rows = %d", tr.Rows)
	}
	if tr.Bit(3, 0) != 1 || tr.Bit(5, 1) != 1 {
		t.Fatal("transposed bits missing")
	}
	count := 0
	for i := 0; i < tr.Rows; i++ {
		for j := 0; j < m.Rows; j++ {
			count += int(tr.Bit(i, j))
		}
	}
	if count != 2 {
		t.Fatalf("transposed weight %d, want 2", count)
	}
}

func TestTransposeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := [][2]int{{8, 8}, {16, 128}, {128, 16}, {64, 256}, {40, 24}, {7, 8}, {129, 128}}
	for _, s := range shapes {
		m := randomMatrix(rng, s[0], s[1])
		tr := Transpose(m)
		for i := 0; i < m.Rows; i++ {
			for j := 0; j < m.Cols; j++ {
				if m.Bit(i, j) != tr.Bit(j, i) {
					t.Fatalf("shape %v: bit (%d,%d) mismatch", s, i, j)
				}
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomMatrix(rng, 64, 128)
	back := Transpose(Transpose(m))
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.Bit(i, j) != back.Bit(i, j) {
				t.Fatalf("double transpose changed bit (%d,%d)", i, j)
			}
		}
	}
}

func TestTranspose8x8Property(t *testing.T) {
	f := func(x uint64) bool {
		y := transpose8x8(x)
		for r := 0; r < 8; r++ {
			for c := 0; c < 8; c++ {
				if (x>>(8*uint(r)+uint(c)))&1 != (y>>(8*uint(c)+uint(r)))&1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXORRowInto(t *testing.T) {
	m := New(2, 16)
	m.Row(0)[0] = 0xF0
	m.XORRowInto(0, []byte{0xFF, 0x01})
	if m.Row(0)[0] != 0x0F || m.Row(0)[1] != 0x01 {
		t.Fatalf("XORRowInto result %v", m.Row(0))
	}
}

func TestNewPanics(t *testing.T) {
	cases := []func(){
		func() { New(1, 0) },
		func() { New(1, 7) },
		func() { New(-1, 8) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
