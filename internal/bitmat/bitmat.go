// Package bitmat implements packed bit matrices and their transpose, the
// data-movement core of IKNP-style OT extension: the receiver builds an
// m x w bit matrix column-wise (w = code width: 128 for IKNP, 256 for
// KK13) and both parties need it row-wise, or vice versa.
package bitmat

import (
	"fmt"

	"abnn2/internal/par"
)

// Matrix is a packed bit matrix with Rows rows of Cols bits each. Row i
// occupies Data[i*Stride : i*Stride+Stride]; bit j of row i is
// Data[i*Stride + j/8] >> (j%8) & 1 (LSB-first within each byte).
// Cols must be a multiple of 8 so rows are byte-aligned.
type Matrix struct {
	Rows, Cols int
	Stride     int // bytes per row = Cols/8
	Data       []byte
}

// New returns a zeroed Rows x Cols bit matrix. Cols must be a positive
// multiple of 8.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols <= 0 || cols%8 != 0 {
		panic(fmt.Sprintf("bitmat: invalid shape %dx%d (cols must be positive multiple of 8)", rows, cols))
	}
	stride := cols / 8
	return &Matrix{Rows: rows, Cols: cols, Stride: stride, Data: make([]byte, rows*stride)}
}

// Row returns a view of row i.
func (m *Matrix) Row(i int) []byte { return m.Data[i*m.Stride : (i+1)*m.Stride] }

// Bit returns bit (i, j).
func (m *Matrix) Bit(i, j int) byte {
	return (m.Data[i*m.Stride+j/8] >> (uint(j) % 8)) & 1
}

// SetBit sets bit (i, j) to v (0 or 1).
func (m *Matrix) SetBit(i, j int, v byte) {
	idx := i*m.Stride + j/8
	mask := byte(1) << (uint(j) % 8)
	if v&1 == 1 {
		m.Data[idx] |= mask
	} else {
		m.Data[idx] &^= mask
	}
}

// XORRowInto XORs src into row i. len(src) must equal Stride.
func (m *Matrix) XORRowInto(i int, src []byte) {
	row := m.Row(i)
	if len(src) != len(row) {
		panic("bitmat: XORRowInto length mismatch")
	}
	for k := range row {
		row[k] ^= src[k]
	}
}

// Transpose returns the Cols x Rows transpose of m. The output has
// RowsOut = m.Cols and ColsOut = m.Rows rounded up to a byte boundary in
// storage; callers must treat bits beyond m.Rows in each output row as
// padding. For the OT extensions in this repo, m.Rows is always padded to
// a multiple of 8 by the caller, so no slack bits exist in practice.
func Transpose(m *Matrix) *Matrix { return TransposePar(m, 1) }

// TransposePar is Transpose with the 8-row block loop split across the
// shared worker pool. Each row block rb writes only output-column byte
// rb of every output row, so the ranges are disjoint and the result is
// identical for any worker count. workers <= 0 means GOMAXPROCS.
func TransposePar(m *Matrix, workers int) *Matrix {
	outCols := (m.Rows + 7) &^ 7
	if outCols == 0 {
		outCols = 8
	}
	out := New(m.Cols, outCols)
	// Process in 8x8 bit blocks: read 8 rows x 8 columns, transpose the
	// 64-bit block with shift-mask tricks, write 8 output rows.
	fullRowBlocks := m.Rows / 8
	par.Map(workers, fullRowBlocks, func(rb int) {
		for cb := 0; cb < m.Stride; cb++ {
			// Gather 8 bytes: one byte (8 column bits) from each of 8 rows.
			var block uint64
			base := (rb * 8) * m.Stride
			for k := 0; k < 8; k++ {
				block |= uint64(m.Data[base+k*m.Stride+cb]) << (8 * uint(k))
			}
			block = transpose8x8(block)
			// Scatter: byte k of the transposed block holds the bits of
			// output rows cb*8+k at output column byte rb.
			obase := (cb * 8) * out.Stride
			for k := 0; k < 8; k++ {
				out.Data[obase+k*out.Stride+rb] = byte(block >> (8 * uint(k)))
			}
		}
	})
	// Tail rows (m.Rows not multiple of 8): bit-by-bit.
	for i := fullRowBlocks * 8; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.Bit(i, j) == 1 {
				out.SetBit(j, i, 1)
			}
		}
	}
	return out
}

// transpose8x8 transposes an 8x8 bit block packed row-major into a uint64
// (row k = byte k, LSB-first columns) using the classic delta-swap network.
func transpose8x8(x uint64) uint64 {
	// Swap 1x1 blocks within 2x2 tiles.
	t := (x ^ (x >> 7)) & 0x00AA00AA00AA00AA
	x = x ^ t ^ (t << 7)
	// Swap 2x2 blocks within 4x4 tiles.
	t = (x ^ (x >> 14)) & 0x0000CCCC0000CCCC
	x = x ^ t ^ (t << 14)
	// Swap 4x4 blocks within the 8x8 tile.
	t = (x ^ (x >> 28)) & 0x00000000F0F0F0F0
	x = x ^ t ^ (t << 28)
	return x
}
