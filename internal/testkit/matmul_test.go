package testkit

import (
	"testing"

	"abnn2/internal/core"
	"abnn2/internal/prg"
	"abnn2/internal/quant"
	"abnn2/internal/ring"
)

// All four secure-matmul backends against the one differential oracle
// (U + V == W*R over the ring): the ABNN2 triplet protocol in each mode
// and the three comparison baselines. A correctness bug in any backend
// — or a drift between a baseline and the protocol it is benchmarked
// against — fails here.

func randWeights(g *prg.PRG, scheme quant.Scheme, mn int) []int64 {
	min, max := scheme.Range()
	W := make([]int64, mn)
	for i := range W {
		W[i] = min + int64(g.Intn(int(max-min+1)))
	}
	return W
}

func TestMatmulBackendABNN2(t *testing.T) {
	cases := []struct {
		name   string
		scheme quant.Scheme
		o      int
		mode   core.Mode
	}{
		{"onebatch-4(2,2)", quant.NewBitScheme(true, 2, 2), 1, core.OneBatch},
		{"naiveN-4(2,2)", quant.NewBitScheme(true, 2, 2), 1, core.NaiveN},
		{"multibatch-4(2,2)", quant.NewBitScheme(true, 2, 2), 3, core.MultiBatch},
		{"multibatch-ternary", quant.Ternary(), 2, core.MultiBatch},
		{"onebatch-binary", quant.Binary(), 1, core.OneBatch},
		{"multibatch-u3(2,1)", quant.NewBitScheme(false, 2, 1), 2, core.MultiBatch},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			rg := ring.New(32)
			g := prg.New(prg.SeedFromInt(101))
			m, n := 4, 5
			W := randWeights(g, tc.scheme, m*n)
			R := g.Mat(rg, n, tc.o)
			if err := CheckMatmul(ABNN2Matmul(tc.scheme, tc.mode), rg, W, m, n, R, 500); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMatmulBackendSecureML(t *testing.T) {
	t.Parallel()
	rg := ring.New(32)
	g := prg.New(prg.SeedFromInt(102))
	m, n, o := 3, 4, 2
	W := make([]int64, m*n)
	for i := range W {
		W[i] = int64(g.Intn(255)) - 127
	}
	R := g.Mat(rg, n, o)
	if err := CheckMatmul(SecureMLMatmul(), rg, W, m, n, R, 501); err != nil {
		t.Fatal(err)
	}
}

func TestMatmulBackendMiniONN(t *testing.T) {
	t.Parallel()
	rg := ring.New(32)
	g := prg.New(prg.SeedFromInt(103))
	m, n, o := 3, 3, 2
	W := make([]int64, m*n)
	for i := range W {
		W[i] = int64(g.Intn(255)) - 127
	}
	R := g.Mat(rg, n, o)
	if err := CheckMatmul(MiniONNMatmul(512), rg, W, m, n, R, 502); err != nil {
		t.Fatal(err)
	}
}

func TestMatmulBackendQuotient(t *testing.T) {
	t.Parallel()
	rg := ring.New(32)
	g := prg.New(prg.SeedFromInt(104))
	m, n := 4, 6
	W := make([]int64, m*n)
	for i := range W {
		W[i] = int64(g.Intn(3)) - 1
	}
	R := g.Mat(rg, n, 1)
	if err := CheckMatmul(QuotientMatmul(), rg, W, m, n, R, 503); err != nil {
		t.Fatal(err)
	}
}

// Satellite: a gamma=1 scheme (one fragment, one OT per weight) is the
// degenerate point of the fragmentation machinery — the payload offsets
// collapse to a single span. OneBatch, NaiveN, and MultiBatch must all
// agree with the plaintext product there.
func TestMatmulGammaOne(t *testing.T) {
	scheme := quant.NewBitScheme(true, 4) // "4(4)": gamma=1, N=16
	if scheme.Gamma() != 1 {
		t.Fatalf("scheme gamma = %d, want 1", scheme.Gamma())
	}
	for _, rgBits := range []uint{8, 33} {
		rg := ring.New(rgBits)
		g := prg.New(prg.SeedFromInt(uint64(105 + rgBits)))
		m, n := 3, 4
		W := randWeights(g, scheme, m*n)
		for _, tc := range []struct {
			name string
			o    int
			mode core.Mode
		}{
			{"onebatch", 1, core.OneBatch},
			{"naiveN", 1, core.NaiveN},
			{"multibatch", 2, core.MultiBatch},
		} {
			R := g.Mat(rg, n, tc.o)
			if err := CheckMatmul(ABNN2Matmul(scheme, tc.mode), rg, W, m, n, R, 504); err != nil {
				t.Errorf("ring=%d %s: %v", rgBits, tc.name, err)
			}
		}
	}
}
