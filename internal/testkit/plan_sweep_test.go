package testkit

import (
	"fmt"
	"testing"

	"abnn2"
	"abnn2/internal/core"
	"abnn2/internal/plan"
	"abnn2/internal/prg"
	"abnn2/internal/quant"
	"abnn2/internal/ring"
)

// planSweepSeeds is the grid-covering prefix of the conformance sweep:
// 40 consecutive seeds hit every (eta, ring) pair (see
// TestSweepCoverage), so the mixed-plan sweep exercises every backend
// against every scheme family and ring width.
const planSweepSeeds = 40

// planSweepKeyBits keeps the MiniONN layers of the sweep measurable on
// one core; the key size is public protocol state both parties agree
// on, and share correctness is key-size independent.
const planSweepKeyBits = 512

// randomPlan draws a per-layer backend assignment for a case, seeded
// from the case seed so a failing plan reproduces from the seed alone.
// Each layer picks uniformly among its applicable backends (QUOTIENT
// only on vector layers of batch-1 sessions whose scheme range fits
// [-1,1]), and ABNN2 layers occasionally carry a scheme override
// widened to cover the session range — the planner emits exactly such
// overrides when a coarser fragmentation is cheaper.
func randomPlan(c *Case) (*plan.Plan, error) {
	arch := core.ArchOf(c.Model)
	session, err := quant.Parse(arch.SchemeName)
	if err != nil {
		return nil, err
	}
	smin, smax := session.Range()
	rng := prg.New(prg.SeedFromInt(c.Seed)).Child("testkit-plan")
	p := &plan.Plan{Layers: make([]plan.Choice, len(arch.Layers))}
	for i, l := range arch.Layers {
		cands := []core.BackendID{core.BackendABNN2, core.BackendSecureML, core.BackendMiniONN}
		if c.Batch*l.Cols() == 1 && smin >= -1 && smax <= 1 {
			cands = append(cands, core.BackendQuotient)
		}
		ch := plan.Choice{Backend: cands[rng.Intn(len(cands))]}
		if ch.Backend == core.BackendABNN2 && rng.Intn(3) == 0 {
			ch.Scheme = overrideScheme(rng, smin, smax)
		}
		p.Layers[i] = ch
	}
	return p, nil
}

// overrideScheme builds a random fragmentation of the smallest bit
// scheme covering [smin, smax] — a valid ABNN2 per-layer override for
// any session scheme with that range.
func overrideScheme(rng *prg.PRG, smin, smax int64) string {
	signed := smin < 0
	bits := 1
	for {
		var lo, hi int64
		if signed {
			lo, hi = -(int64(1) << (bits - 1)), (int64(1)<<(bits-1))-1
		} else {
			lo, hi = 0, (int64(1)<<bits)-1
		}
		if lo <= smin && hi >= smax {
			break
		}
		bits++
	}
	return quant.NewBitScheme(signed, randomPartition(rng, bits)...).Name()
}

// TestMixedPlanSweep is the planner's conformance lock: for every seed
// of the grid-covering prefix it draws a random per-layer backend
// assignment, runs the session under that plan on both parties, and
// demands bit-identity against both the plaintext ring reference
// (nn.ForwardRing) and the same case run single-backend (the all-ABNN2
// default). Any backend whose triplet shares drift from the others by
// even one ring element fails here with a reproducing seed.
func TestMixedPlanSweep(t *testing.T) {
	for seed := 0; seed < planSweepSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			c := Generate(uint64(seed))
			p, err := randomPlan(c)
			if err != nil {
				t.Fatalf("%s: draw plan: %v", c.Desc(), err)
			}
			arch := core.ArchOf(c.Model)
			if err := p.Validate(arch, c.Batch); err != nil {
				t.Fatalf("%s: generated plan %s invalid: %v", c.Desc(), p, err)
			}
			planned, err := RunSecureCfg(c, 0, func(server bool, cfg *abnn2.Config) {
				cfg.Plan = p
				cfg.MiniONNKeyBits = planSweepKeyBits
			})
			if err != nil {
				t.Fatalf("%s: plan %s: %v", c.Desc(), p, err)
			}
			uniform, err := RunSecure(c, 0)
			if err != nil {
				t.Fatalf("%s: uniform baseline: %v", c.Desc(), err)
			}
			rg := ring.New(c.RingBits)
			for k, x := range c.Inputs {
				want := c.Model.ForwardRing(rg, c.Model.EncodeInput(rg, x))
				if planned.Rows != len(want) {
					t.Fatalf("%s: plan %s: secure output has %d rows, reference %d",
						c.Desc(), p, planned.Rows, len(want))
				}
				for i, w := range want {
					if got := planned.At(i, k); got != w {
						t.Fatalf("%s: plan %s: output %d of sample %d: secure %d, plaintext %d",
							c.Desc(), p, i, k, got, w)
					}
					if got, u := planned.At(i, k), uniform.At(i, k); got != u {
						t.Fatalf("%s: plan %s: output %d of sample %d: planned %d, single-backend %d",
							c.Desc(), p, i, k, got, u)
					}
				}
			}
		})
	}
}
