package testkit

import (
	"context"
	"fmt"
	"testing"

	"abnn2"
	"abnn2/internal/nn"
	"abnn2/internal/ring"
	"abnn2/internal/transport"
)

// The peer-banked arm of the differential sweep: correlations come from
// a genuinely remote offline session — two separate durable stores
// filled over a pipe by the real two-party offline protocol, no
// in-process dealer anywhere — and the banked session then provisions
// from them (OfflineBanked, so a silent inline fallback fails the run).
// Bit-identity with the inline run and the plaintext reference certifies
// that the disk round trip and the peer-pairing protocol preserve the
// correlations exactly.

// durableSweepParty opens one party's store+bank under a test temp dir.
func durableSweepParty(t *testing.T, seed uint64) (*abnn2.BankStore, *abnn2.Bank) {
	t.Helper()
	st, err := abnn2.OpenBankStore(abnn2.BankStoreOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	if _, err := st.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	b := abnn2.NewBank(abnn2.BankOptions{Capacity: 1, Seed: seed, Store: st})
	t.Cleanup(func() {
		b.Close()
		st.Close()
	})
	return st, b
}

// runPeerBanked replenishes exactly one peer-paired correlation over an
// in-memory pipe and executes the case provisioned from it.
func runPeerBanked(t *testing.T, c *Case, optRelu bool) (*ring.Mat, error) {
	t.Helper()
	data, err := nn.MarshalQuantized(c.Model)
	if err != nil {
		return nil, fmt.Errorf("marshal model: %w", err)
	}
	qm, err := abnn2.LoadQuantizedModel(data)
	if err != nil {
		return nil, fmt.Errorf("load model: %w", err)
	}
	id, err := abnn2.BankModelID(qm)
	if err != nil {
		return nil, fmt.Errorf("model id: %w", err)
	}
	srvStore, srvBank := durableSweepParty(t, 0xE000+c.Seed)
	cliStore, cliBank := durableSweepParty(t, 0xF000+c.Seed)

	sconn, cconn := transport.Pipe()
	scfg := abnn2.Config{RingBits: c.RingBits, Seed: 4*c.Seed + 3, Bank: srvBank}
	ccfg := abnn2.Config{RingBits: c.RingBits, Seed: 4*c.Seed + 4, Bank: cliBank, BankModel: id}
	srvErr := make(chan error, 1)
	go func() {
		err := abnn2.ServeOfflineSession(context.Background(), sconn, qm, scfg, cliStore.PeerID())
		sconn.Close()
		srvErr <- err
	}()
	got, err := abnn2.ReplenishSession(context.Background(), cconn, qm.Arch(), ccfg,
		srvStore.PeerID(), c.Batch, 1)
	cconn.Close()
	if err != nil {
		return nil, fmt.Errorf("replenish: %w", err)
	}
	if serr := <-srvErr; serr != nil {
		return nil, fmt.Errorf("offline serve: %w", serr)
	}
	if got != 1 {
		return nil, fmt.Errorf("replenished %d correlations, want 1", got)
	}
	return RunSecureCfg(c, 0, func(server bool, cfg *abnn2.Config) {
		cfg.OptimizedReLU = optRelu
		cfg.OfflineMode = abnn2.OfflineBanked
		if server {
			cfg.Bank = srvBank
		} else {
			cfg.Bank = cliBank
			cfg.BankModel = id
			cfg.BankPeer = srvStore.PeerID().String()
		}
	})
}

// TestPeerBankedEquivalenceSweep: 40 consecutive seeds (one full pass
// over the eta x ring grid, see TestSweepCoverage) under both ReLU
// variants — remote-replenished peer-banked vs inline vs plaintext.
func TestPeerBankedEquivalenceSweep(t *testing.T) {
	for _, v := range []struct {
		name string
		opt  bool
	}{{"std-relu", false}, {"opt-relu", true}} {
		v := v
		t.Run(v.name, func(t *testing.T) {
			for seed := uint64(0); seed < 40; seed++ {
				seed := seed
				t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
					t.Parallel()
					c := Generate(seed)
					inline, err := RunSecureCfg(c, 0, func(server bool, cfg *abnn2.Config) {
						cfg.OptimizedReLU = v.opt
					})
					if err != nil {
						t.Fatalf("%s: inline run: %v", c.Desc(), err)
					}
					banked, err := runPeerBanked(t, c, v.opt)
					if err != nil {
						t.Fatalf("%s: peer-banked run: %v", c.Desc(), err)
					}
					if banked.Rows != inline.Rows || banked.Cols != inline.Cols {
						t.Fatalf("%s: banked output %dx%d, inline %dx%d",
							c.Desc(), banked.Rows, banked.Cols, inline.Rows, inline.Cols)
					}
					for i := range inline.Data {
						if banked.Data[i] != inline.Data[i] {
							t.Fatalf("%s: output element %d: peer-banked %d, inline %d",
								c.Desc(), i, banked.Data[i], inline.Data[i])
						}
					}
					rg := ring.New(c.RingBits)
					for k, x := range c.Inputs {
						want := c.Model.ForwardRing(rg, c.Model.EncodeInput(rg, x))
						for i, w := range want {
							if got := banked.At(i, k); got != w {
								t.Fatalf("%s: output %d of sample %d: peer-banked %d, plaintext %d",
									c.Desc(), i, k, got, w)
							}
						}
					}
				})
			}
		})
	}
}
