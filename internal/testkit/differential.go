package testkit

import (
	"fmt"

	"abnn2"
	"abnn2/internal/nn"
	"abnn2/internal/ring"
	"abnn2/internal/transport"
)

// RunSecure executes full two-party secure inference for a case over an
// in-memory pipe and returns the client's raw ring outputs (one column
// per batch input). The model travels through its JSON wire format on
// the way in, so serialisation is part of what the sweep certifies.
// workers applies to both parties (0 = one per CPU).
func RunSecure(c *Case, workers int) (*ring.Mat, error) {
	return RunSecureCfg(c, workers, nil)
}

// RunSecureCfg is RunSecure with a per-party configuration hook: when
// mutate is non-nil it runs once per endpoint, after the base fields
// (ring, seed, workers) are set, with server reporting which side the
// config belongs to. The bank equivalence suite uses it to point both
// parties at a shared correlation bank; anything Config can express
// (ReLU variant, tracing, offline mode) composes the same way.
func RunSecureCfg(c *Case, workers int, mutate func(server bool, cfg *abnn2.Config)) (*ring.Mat, error) {
	data, err := nn.MarshalQuantized(c.Model)
	if err != nil {
		return nil, fmt.Errorf("marshal model: %w", err)
	}
	qm, err := abnn2.LoadQuantizedModel(data)
	if err != nil {
		return nil, fmt.Errorf("load model: %w", err)
	}
	serverConn, clientConn := transport.Pipe()
	// Distinct non-zero seeds per party, derived from the case seed so
	// the whole run (weights, inputs, protocol randomness) reproduces
	// from one number.
	scfg := abnn2.Config{RingBits: c.RingBits, Seed: 2*c.Seed + 1, Workers: workers}
	ccfg := abnn2.Config{RingBits: c.RingBits, Seed: 2*c.Seed + 2, Workers: workers}
	if mutate != nil {
		mutate(true, &scfg)
		mutate(false, &ccfg)
	}
	srvErr := make(chan error, 1)
	go func() {
		_, err := abnn2.Serve(serverConn, qm, scfg)
		srvErr <- err
	}()
	client, err := abnn2.Dial(clientConn, qm.Arch(), ccfg)
	if err != nil {
		clientConn.Close()
		<-srvErr
		return nil, fmt.Errorf("dial: %w", err)
	}
	out, inferErr := client.Infer(c.Inputs)
	client.Close() // server sees a clean hang-up and Serve returns
	if err := <-srvErr; err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	if inferErr != nil {
		return nil, fmt.Errorf("infer: %w", inferErr)
	}
	return out, nil
}

// CheckCase is the dual-execution differential oracle: it runs the case
// through the secure two-party protocol and through the plaintext ring
// reference (nn.ForwardRing) and demands exact equality on every output
// of every batch sample. The two paths share no arithmetic code, so a
// silent bug in either shows up here with a reproducing seed.
func CheckCase(c *Case) error {
	out, err := RunSecure(c, 0)
	if err != nil {
		return fmt.Errorf("%s: %w", c.Desc(), err)
	}
	rg := ring.New(c.RingBits)
	for k, x := range c.Inputs {
		want := c.Model.ForwardRing(rg, c.Model.EncodeInput(rg, x))
		if out.Rows != len(want) {
			return fmt.Errorf("%s: secure output has %d rows, reference %d", c.Desc(), out.Rows, len(want))
		}
		for i, w := range want {
			if got := out.At(i, k); got != w {
				return fmt.Errorf("%s: output %d of sample %d: secure %d, plaintext %d",
					c.Desc(), i, k, got, w)
			}
		}
	}
	return nil
}
