package testkit

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"abnn2/internal/transport"
)

// RecordingConn wraps a transport.Conn and logs every flight this
// endpoint sends, in send order. Each party records only its own sends,
// so the log is deterministic even when both parties run concurrently
// (the interleaving across directions is not, and is not recorded).
type RecordingConn struct {
	transport.Conn
	mu      sync.Mutex
	flights [][]byte
}

// Record wraps conn so that sent flights are captured.
func Record(conn transport.Conn) *RecordingConn {
	return &RecordingConn{Conn: conn}
}

// Send logs the flight and forwards it.
func (r *RecordingConn) Send(msg []byte) error {
	cp := append([]byte(nil), msg...)
	r.mu.Lock()
	r.flights = append(r.flights, cp)
	r.mu.Unlock()
	return r.Conn.Send(msg)
}

// Transcript returns the flights sent so far.
func (r *RecordingConn) Transcript() *Transcript {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &Transcript{Flights: append([][]byte(nil), r.flights...)}
}

// Transcript is the ordered flight log of one party's sends.
type Transcript struct {
	Flights [][]byte
}

// Bytes returns the total payload bytes across all flights.
func (t *Transcript) Bytes() int {
	n := 0
	for _, f := range t.Flights {
		n += len(f)
	}
	return n
}

// Shape returns the per-flight lengths — the communication pattern. Two
// transcripts with equal shapes put the same number of flights of the
// same sizes on the wire, regardless of content.
func (t *Transcript) Shape() []int {
	s := make([]int, len(t.Flights))
	for i, f := range t.Flights {
		s[i] = len(f)
	}
	return s
}

// Equal reports whether two transcripts are byte-identical.
func (t *Transcript) Equal(o *Transcript) bool {
	if len(t.Flights) != len(o.Flights) {
		return false
	}
	for i := range t.Flights {
		if !bytes.Equal(t.Flights[i], o.Flights[i]) {
			return false
		}
	}
	return true
}

// Diff describes the first difference between two transcripts, or ""
// when they are byte-identical.
func (t *Transcript) Diff(o *Transcript) string {
	n := len(t.Flights)
	if len(o.Flights) < n {
		n = len(o.Flights)
	}
	for i := 0; i < n; i++ {
		a, b := t.Flights[i], o.Flights[i]
		if len(a) != len(b) {
			return fmt.Sprintf("flight %d: %d bytes vs %d bytes", i, len(a), len(b))
		}
		for k := range a {
			if a[k] != b[k] {
				return fmt.Sprintf("flight %d: byte %d differs (%#02x vs %#02x)", i, k, a[k], b[k])
			}
		}
	}
	if len(t.Flights) != len(o.Flights) {
		return fmt.Sprintf("flight count %d vs %d", len(t.Flights), len(o.Flights))
	}
	return ""
}

// PartyTranscript labels one party's transcript for golden serialisation.
type PartyTranscript struct {
	Party string
	T     *Transcript
}

// FormatGolden renders transcripts in the canonical golden-file format:
// one line per flight carrying its length and SHA-256, plus per-party
// totals. Comparing two renderings byte-for-byte is equivalent to
// comparing the transcripts byte-for-byte (collision-resistance of the
// hash), while keeping checked-in goldens small and diff-friendly.
func FormatGolden(protocol string, parties []PartyTranscript) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "# abnn2 golden wire transcript v1\n")
	fmt.Fprintf(&b, "protocol %s\n", protocol)
	for _, p := range parties {
		fmt.Fprintf(&b, "party %s flights=%d bytes=%d\n", p.Party, len(p.T.Flights), p.T.Bytes())
		for i, f := range p.T.Flights {
			sum := sha256.Sum256(f)
			fmt.Fprintf(&b, "  flight %d len=%d sha256=%x\n", i, len(f), sum)
		}
	}
	return b.Bytes()
}

// GoldenPath returns the testdata path of a named golden transcript.
func GoldenPath(name string) string {
	return filepath.Join("testdata", "transcripts", name+".golden")
}

// CompareGolden checks the rendered transcripts against the checked-in
// golden file. When update is true it (re)writes the file instead and
// returns nil. A missing golden without -update is an error: goldens are
// part of the repository, not generated on the fly.
func CompareGolden(name, protocol string, parties []PartyTranscript, update bool) error {
	got := FormatGolden(protocol, parties)
	path := GoldenPath(name)
	if update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		return os.WriteFile(path, got, 0o644)
	}
	want, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("missing golden %s (run with -update to record): %w", path, err)
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("transcript for %q differs from golden %s;\nrecorded:\n%s\ngolden:\n%s\nif the wire format change is intentional, regenerate with -update",
			protocol, path, got, want)
	}
	return nil
}

// EqualShapes reports whether two transcripts have identical
// communication patterns (flight counts and sizes).
func EqualShapes(a, b *Transcript) bool {
	as, bs := a.Shape(), b.Shape()
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
