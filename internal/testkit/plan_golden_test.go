package testkit

import (
	"testing"

	"abnn2"
	"abnn2/internal/core"
	"abnn2/internal/plan"
)

// TestGoldenSessionPlanned pins the full wire transcript of a planned
// session — the plan frame rides behind the batch announcement, the
// conv layer runs ABNN2 under a coarser (3,3) override of the session's
// 6(6) scheme, and the FC layer runs the SecureML baseline — and proves
// the same two invariances as the unplanned session golden on top:
//
//   - Config.Workers does not leak into the wire bytes: the Workers=8
//     transcript is byte-identical to the Workers=1 golden.
//   - The flight shapes, now including the plan frame, are independent
//     of the secret inputs: same seeds, different client inputs, same
//     flight sizes in the same order.
//
// MiniONN is deliberately absent from the pinned plan: its Paillier
// ciphertext bytes depend on GOMAXPROCS, so that backend is
// conformance-locked by TestMixedPlanSweep rather than a transcript.
func TestGoldenSessionPlanned(t *testing.T) {
	c := Generate(5) // fixed case: ring 8, scheme 6(6), batch 2, conv+pool then FC
	p := &plan.Plan{Layers: []plan.Choice{
		{Backend: core.BackendABNN2, Scheme: "6(3,3)"},
		{Backend: core.BackendSecureML},
	}}
	mutate := func(server bool, cfg *abnn2.Config) { cfg.Plan = p }

	srv1, cli1 := sessionTranscripts(t, c, 1, c.Inputs, mutate)
	parties := []PartyTranscript{
		{Party: "server", T: srv1},
		{Party: "client", T: cli1},
	}
	desc := "planned session workers=1 plan=" + p.String() + " " + c.Desc()
	if err := CompareGolden("session-planned-seed5", desc, parties, *update); err != nil {
		t.Fatal(err)
	}

	srv8, cli8 := sessionTranscripts(t, c, 8, c.Inputs, mutate)
	if d := srv1.Diff(srv8); d != "" {
		t.Errorf("server transcript differs between Workers=1 and Workers=8: %s", d)
	}
	if d := cli1.Diff(cli8); d != "" {
		t.Errorf("client transcript differs between Workers=1 and Workers=8: %s", d)
	}

	other := make([][]float64, len(c.Inputs))
	for k, x := range c.Inputs {
		o := make([]float64, len(x))
		for i := range o {
			o[i] = -x[i] + 0.25
		}
		other[k] = o
	}
	srvO, cliO := sessionTranscripts(t, c, 1, other, mutate)
	if !EqualShapes(srv1, srvO) {
		t.Error("server flight shapes of the planned session depend on the client's secret inputs")
	}
	if !EqualShapes(cli1, cliO) {
		t.Error("client flight shapes of the planned session depend on the client's secret inputs")
	}
}
