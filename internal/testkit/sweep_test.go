package testkit

import (
	"flag"
	"fmt"
	"testing"
)

// The differential sweep: hundreds of seeded models through full
// two-party inference, each checked bit-exact against the plaintext
// ring reference. Reproduce a single failure with:
//
//	go test ./internal/testkit -run TestDifferentialSweep -conformance.seed=<N>

var caseSeed = flag.Int64("conformance.seed", -1,
	"run the differential check for exactly this generator seed")

// sweepSeeds is the full sweep size. Any 40 consecutive seeds cover the
// full eta x ring grid (see Generate), so 200 covers it five times over
// with varied schemes, depths, and batch sizes.
const sweepSeeds = 200

func TestDifferentialSweep(t *testing.T) {
	if *caseSeed >= 0 {
		c := Generate(uint64(*caseSeed))
		t.Logf("case: %s", c.Desc())
		if err := CheckCase(c); err != nil {
			t.Fatal(err)
		}
		return
	}
	n := sweepSeeds
	if testing.Short() {
		n = 40 // one full pass over the eta x ring grid
	}
	for seed := 0; seed < n; seed++ {
		seed := uint64(seed)
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			if err := CheckCase(Generate(seed)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSweepCoverage proves the sweep's first 40 seeds span the whole
// conformance grid: every weight bitwidth 1..8 under every ring width,
// both batch regimes, and at least one convolutional model.
func TestSweepCoverage(t *testing.T) {
	grid := make(map[[2]int]bool)
	oneBatch, multiBatch, conv := false, false, false
	for seed := uint64(0); seed < 40; seed++ {
		c := Generate(seed)
		grid[[2]int{c.Eta, int(c.RingBits)}] = true
		if c.Batch == 1 {
			oneBatch = true
		} else {
			multiBatch = true
		}
		if c.Model.Layers[0].Conv != nil {
			conv = true
		}
	}
	for eta := 1; eta <= 8; eta++ {
		for _, l := range RingWidths {
			if !grid[[2]int{eta, int(l)}] {
				t.Errorf("eta=%d ring=%d never generated in 40 seeds", eta, l)
			}
		}
	}
	if !oneBatch || !multiBatch {
		t.Errorf("batch regimes: oneBatch=%v multiBatch=%v, want both", oneBatch, multiBatch)
	}
	if !conv {
		t.Error("no convolutional model in 40 seeds")
	}
}
