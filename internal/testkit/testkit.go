// Package testkit is the protocol conformance harness: the regression
// substrate every perf or refactor PR runs against.
//
// It provides three reusable pieces:
//
//   - A deterministic randomized-model generator (Generate): seeded
//     FC/conv/pool/ReLU stacks spanning the arbitrary-bitwidth space the
//     paper targets — weight bitwidths eta in 1..8 under every scheme
//     family (binary, ternary, signed/unsigned fragmentations), share
//     rings l in {8, 16, 32, 33, 64}, one-batch and multi-batch sizes.
//
//   - A dual-execution differential checker (CheckCase): full two-party
//     secure inference over an in-memory transport, asserted bit-exact
//     against the plaintext quantized reference (nn.ForwardRing). The
//     secure path and the reference are independent implementations of
//     the same function, so a silent arithmetic bug in either one shows
//     up as a mismatch with a reproducible seed.
//
//   - A wire-transcript recorder plus golden-file framework (Record,
//     CompareGolden): per-party, per-flight byte-level digests of
//     protocol transcripts, checked into testdata/ and regenerated with
//     -update. Goldens prove transcripts are invariant to Config.Workers
//     and that refactors do not silently change the wire format; flight
//     shapes (lengths, counts) additionally prove the communication
//     pattern is independent of secret inputs.
//
// The package is imported only by tests; it lives outside _test files so
// the root package, internal/core, and internal/baseline suites can all
// share one oracle.
package testkit
