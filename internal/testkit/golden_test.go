package testkit

import (
	"flag"
	"sync"
	"testing"

	"abnn2"
	"abnn2/internal/bank"
	"abnn2/internal/baseot"
	"abnn2/internal/core"
	"abnn2/internal/gc"
	"abnn2/internal/nn"
	"abnn2/internal/otext"
	"abnn2/internal/prg"
	"abnn2/internal/quant"
	"abnn2/internal/ring"
	"abnn2/internal/transport"
)

var update = flag.Bool("update", false, "rewrite golden transcript files")

// Golden wire-transcript tests: every protocol runs with both parties
// seeded, each party's flights are recorded, and the per-flight digests
// are compared byte-for-byte against testdata/transcripts/. A diff means
// the wire format changed — deliberately (regenerate with -update) or by
// accident (a refactor that was supposed to be transcript-neutral).

// pairConns returns the two recorded ends of an in-memory pipe.
func pairConns() (*RecordingConn, *RecordingConn) {
	a, b := transport.Pipe()
	return Record(a), Record(b)
}

// runPair drives the two protocol roles concurrently and fails the test
// on either error.
func runPair(t *testing.T, aSide, bSide func() error) {
	t.Helper()
	var (
		wg   sync.WaitGroup
		aErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		aErr = aSide()
	}()
	bErr := bSide()
	wg.Wait()
	if aErr != nil || bErr != nil {
		t.Fatalf("protocol run: a=%v b=%v", aErr, bErr)
	}
}

func compare(t *testing.T, name, protocol string, a, b *RecordingConn) {
	t.Helper()
	parties := []PartyTranscript{
		{Party: "a", T: a.Transcript()},
		{Party: "b", T: b.Transcript()},
	}
	if err := CompareGolden(name, protocol, parties, *update); err != nil {
		t.Fatal(err)
	}
}

func TestGoldenBaseOT(t *testing.T) {
	sc, rc := pairConns()
	const n = 8
	pairs := make([][2]baseot.Msg, n)
	g := prg.New(prg.SeedFromInt(1))
	for i := range pairs {
		copy(pairs[i][0][:], g.Bytes(baseot.MsgSize))
		copy(pairs[i][1][:], g.Bytes(baseot.MsgSize))
	}
	choices := []byte{0, 1, 1, 0, 1, 0, 0, 1}
	runPair(t,
		func() error { return baseot.Send(sc, pairs, prg.New(prg.SeedFromInt(2))) },
		func() error {
			_, err := baseot.Receive(rc, choices, prg.New(prg.SeedFromInt(3)))
			return err
		})
	compare(t, "baseot", "chou-orlandi n=8", sc, rc)
}

// otPair builds a seeded, recorded Sender/Receiver pair over code.
func otPair(t *testing.T, code otext.Code) (*otext.Sender, *otext.Receiver, *RecordingConn, *RecordingConn) {
	t.Helper()
	sc, rc := pairConns()
	var (
		snd  *otext.Sender
		serr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		snd, serr = otext.NewSender(sc, code, 7, prg.New(prg.SeedFromInt(11)))
	}()
	rcv, rerr := otext.NewReceiver(rc, code, 7, prg.New(prg.SeedFromInt(22)))
	wg.Wait()
	if serr != nil || rerr != nil {
		t.Fatalf("ot setup: %v %v", serr, rerr)
	}
	return snd, rcv, sc, rc
}

func chosenMsgs(n, m, msgLen int) ([][][]byte, []int) {
	g := prg.New(prg.SeedFromInt(5))
	msgs := make([][][]byte, m)
	for j := range msgs {
		msgs[j] = make([][]byte, n)
		for v := range msgs[j] {
			msgs[j][v] = g.Bytes(msgLen)
		}
	}
	choices := make([]int, m)
	for i := range choices {
		choices[i] = g.Intn(n)
	}
	return msgs, choices
}

func TestGoldenIKNP(t *testing.T) {
	snd, rcv, sc, rc := otPair(t, otext.RepetitionCode())
	msgs, choices := chosenMsgs(2, 5, 8)
	runPair(t,
		func() error { return snd.SendChosen(msgs, 8) },
		func() error {
			_, err := rcv.RecvChosen(choices, 8)
			return err
		})
	compare(t, "iknp-chosen", "iknp chosen m=5 msgLen=8", sc, rc)
}

func TestGoldenKK13(t *testing.T) {
	snd, rcv, sc, rc := otPair(t, otext.WalshHadamardCode(16))
	msgs, choices := chosenMsgs(16, 3, 8)
	runPair(t,
		func() error { return snd.SendChosen(msgs, 8) },
		func() error {
			_, err := rcv.RecvChosen(choices, 8)
			return err
		})
	compare(t, "kk13-chosen", "kk13 wh16 chosen m=3 msgLen=8", sc, rc)
}

func TestGoldenCOT(t *testing.T) {
	rg := ring.New(32)
	snd, rcv, sc, rc := otPair(t, otext.RepetitionCode())
	g := prg.New(prg.SeedFromInt(6))
	deltas := g.Vec(rg, 6)
	bits := []byte{1, 0, 1, 1, 0, 0}
	runPair(t,
		func() error {
			_, err := snd.SendCorrelatedRing(rg, deltas)
			return err
		},
		func() error {
			_, err := rcv.RecvCorrelatedRing(rg, bits)
			return err
		})
	compare(t, "cot-ring32", "correlated OT ring=32 m=6", sc, rc)
}

func TestGoldenGC(t *testing.T) {
	gcConn, ecConn := pairConns()
	var (
		garb *gc.Garbler
		gerr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		garb, gerr = gc.NewGarbler(gcConn, 7, prg.New(prg.SeedFromInt(31)))
	}()
	eval, eerr := gc.NewEvaluator(ecConn, 7, prg.New(prg.SeedFromInt(32)))
	wg.Wait()
	if gerr != nil || eerr != nil {
		t.Fatalf("gc setup: %v %v", gerr, eerr)
	}
	c := gc.BatchReLUCircuit(8, 4)
	y1 := []uint64{3, 250, 17, 128}
	z1 := []uint64{5, 9, 200, 44}
	y0 := []uint64{100, 10, 77, 60}
	garbBits := append(gc.VecToBits(y1, 8), gc.VecToBits(z1, 8)...)
	runPair(t,
		func() error { return garb.Run(c, garbBits) },
		func() error {
			_, err := eval.Run(c, gc.VecToBits(y0, 8))
			return err
		})
	compare(t, "gc-relu", "garbled ReLU bits=8 n=4", gcConn, ecConn)
}

func goldenMatmul(t *testing.T, name string, o int, mode core.Mode) {
	t.Helper()
	rg := ring.New(32)
	scheme := quant.NewBitScheme(true, 2, 2)
	p := core.Params{Ring: rg, Scheme: scheme}
	sh := core.MatShape{M: 3, N: 4, O: o}
	g := prg.New(prg.SeedFromInt(9))
	W := make([]int64, sh.M*sh.N)
	for i := range W {
		W[i] = int64(g.Intn(16) - 8)
	}
	R := g.Mat(rg, sh.N, sh.O)
	cc, sc := pairConns()
	var (
		cli  *core.ClientTriplets
		cerr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		cli, cerr = core.NewClientTriplets(cc, p, 7, prg.New(prg.SeedFromInt(41)))
	}()
	srv, serr := core.NewServerTripletsSeeded(sc, p, 7, prg.New(prg.SeedFromInt(42)))
	wg.Wait()
	if cerr != nil || serr != nil {
		t.Fatalf("triplet setup: %v %v", cerr, serr)
	}
	runPair(t,
		func() error {
			_, err := cli.GenerateClient(sh, R, mode)
			return err
		},
		func() error {
			_, err := srv.GenerateServer(sh, W, mode)
			return err
		})
	compare(t, name, "abnn2 matmul "+mode.String(), cc, sc)
}

func TestGoldenMatmulOneBatch(t *testing.T) { goldenMatmul(t, "matmul-onebatch", 1, core.OneBatch) }
func TestGoldenMatmulMultiBatch(t *testing.T) {
	goldenMatmul(t, "matmul-multibatch", 2, core.MultiBatch)
}

func goldenReLU(t *testing.T, name string, variant core.ReLUVariant) {
	t.Helper()
	rg := ring.New(16)
	cc, sc := pairConns()
	var (
		cli  *core.ClientNonlinear
		cerr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		cli, cerr = core.NewClientNonlinear(cc, rg, 7, prg.New(prg.SeedFromInt(51)))
	}()
	srv, serr := core.NewServerNonlinear(sc, rg, 7, prg.New(prg.SeedFromInt(52)))
	wg.Wait()
	if cerr != nil || serr != nil {
		t.Fatalf("relu setup: %v %v", cerr, serr)
	}
	g := prg.New(prg.SeedFromInt(53))
	y1, z1, y0 := g.Vec(rg, 5), g.Vec(rg, 5), g.Vec(rg, 5)
	runPair(t,
		func() error { return cli.ReLUClient(variant, y1, z1) },
		func() error {
			_, err := srv.ReLUServer(variant, y0)
			return err
		})
	compare(t, name, "core relu "+name, cc, sc)
}

func TestGoldenReLUGC(t *testing.T)        { goldenReLU(t, "relu-gc", core.ReLUGC) }
func TestGoldenReLUOptimized(t *testing.T) { goldenReLU(t, "relu-optimized", core.ReLUOptimized) }

// sessionTranscripts runs a full facade session (setup + one batch) for
// a generated case with both parties seeded, at the given worker count
// and inputs, and returns the two per-party transcripts. A non-nil
// mutate hook edits each party's Config before the run (the banked
// golden uses it to attach a correlation bank and trace collectors).
func sessionTranscripts(t *testing.T, c *Case, workers int, inputs [][]float64,
	mutate func(server bool, cfg *abnn2.Config)) (server, client *Transcript) {
	t.Helper()
	data, err := nn.MarshalQuantized(c.Model)
	if err != nil {
		t.Fatal(err)
	}
	qm, err := abnn2.LoadQuantizedModel(data)
	if err != nil {
		t.Fatal(err)
	}
	sConn, cConn := pairConns()
	scfg := abnn2.Config{RingBits: c.RingBits, Seed: 2*c.Seed + 1, Workers: workers}
	ccfg := abnn2.Config{RingBits: c.RingBits, Seed: 2*c.Seed + 2, Workers: workers}
	if mutate != nil {
		mutate(true, &scfg)
		mutate(false, &ccfg)
	}
	srvErr := make(chan error, 1)
	go func() {
		_, err := abnn2.Serve(sConn, qm, scfg)
		srvErr <- err
	}()
	cli, err := abnn2.Dial(cConn, qm.Arch(), ccfg)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, err := cli.Infer(inputs); err != nil {
		t.Fatalf("infer: %v", err)
	}
	cli.Close()
	if err := <-srvErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
	return sConn.Transcript(), cConn.Transcript()
}

// TestGoldenSession pins the full end-to-end session transcript (setup,
// offline, online) of a fixed generated model, and proves two
// invariances on top of the golden:
//
//   - Config.Workers does not leak into the wire bytes: the Workers=8
//     transcript is byte-identical to the Workers=1 golden.
//   - The communication *pattern* is independent of the secret inputs:
//     with the same seeds but different client inputs, every flight has
//     the same size in the same order. (The bytes themselves legally
//     differ — OT column matrices and shares are functions of the
//     secrets under fixed randomness.)
func TestGoldenSession(t *testing.T) {
	c := Generate(3) // fixed case: ring 33, unsigned 4-bit, batch 3 (multi-batch FC)
	srv1, cli1 := sessionTranscripts(t, c, 1, c.Inputs, nil)
	parties := []PartyTranscript{
		{Party: "server", T: srv1},
		{Party: "client", T: cli1},
	}
	if err := CompareGolden("session-seed3", "full session workers=1 "+c.Desc(), parties, *update); err != nil {
		t.Fatal(err)
	}

	srv8, cli8 := sessionTranscripts(t, c, 8, c.Inputs, nil)
	if d := srv1.Diff(srv8); d != "" {
		t.Errorf("server transcript differs between Workers=1 and Workers=8: %s", d)
	}
	if d := cli1.Diff(cli8); d != "" {
		t.Errorf("client transcript differs between Workers=1 and Workers=8: %s", d)
	}

	other := make([][]float64, len(c.Inputs))
	for k, x := range c.Inputs {
		o := make([]float64, len(x))
		for i := range o {
			o[i] = -x[i] + 0.25
		}
		other[k] = o
	}
	srvO, cliO := sessionTranscripts(t, c, 1, other, nil)
	if !EqualShapes(srv1, srvO) {
		t.Error("server flight shapes depend on the client's secret inputs")
	}
	if !EqualShapes(cli1, cliO) {
		t.Error("client flight shapes depend on the client's secret inputs")
	}
}

// onlySpan returns the unique span named name, failing the test if the
// dump holds zero or several of them.
func onlySpan(t *testing.T, who string, spans []abnn2.TraceSpan, name string) abnn2.TraceSpan {
	t.Helper()
	var found []abnn2.TraceSpan
	for _, s := range spans {
		if s.Name == name {
			found = append(found, s)
		}
	}
	if len(found) != 1 {
		t.Fatalf("%s: %d %q spans, want exactly 1", who, len(found), name)
	}
	return found[0]
}

// sumSpanBytes totals the wire traffic of every span named name.
func sumSpanBytes(spans []abnn2.TraceSpan, name string) int64 {
	var total int64
	for _, s := range spans {
		if s.Name == name {
			total += s.Bytes()
		}
	}
	return total
}

// TestGoldenSessionBanked pins the wire transcript of the fixed seed-3
// case served from a correlation bank, and proves the offline/online
// claim behind the bank through per-party trace spans: the banked
// session's "online" phase moves exactly the same bytes, messages and
// flights as the inline session's, while the inline "offline" wire
// traffic vanishes — drawing and claiming a correlation costs zero wire
// bytes (the 13-byte announcement is the whole provisioning flight).
func TestGoldenSessionBanked(t *testing.T) {
	c := Generate(3) // fixed case: ring 33, unsigned 4-bit, batch 3 (multi-batch FC)

	inlineSrvTr, inlineCliTr := abnn2.NewTraceCollector(), abnn2.NewTraceCollector()
	inlineSrv, inlineCli := sessionTranscripts(t, c, 1, c.Inputs, func(server bool, cfg *abnn2.Config) {
		if server {
			cfg.Trace = inlineSrvTr
		} else {
			cfg.Trace = inlineCliTr
		}
	})

	// Bank keyed by the wire round-trip of the model, like the server's
	// own derivation.
	data, err := nn.MarshalQuantized(c.Model)
	if err != nil {
		t.Fatal(err)
	}
	qm, err := nn.UnmarshalQuantized(data)
	if err != nil {
		t.Fatal(err)
	}
	b := bank.New(bank.Options{Capacity: 1, Seed: 0xBA2})
	defer b.Close()
	id, err := b.RegisterModel(qm)
	if err != nil {
		t.Fatal(err)
	}
	key := bank.Key{Model: id, Scheme: c.Scheme, RingBits: c.RingBits,
		Batch: c.Batch, Backend: bank.SessionBackend}
	if err := b.Prewarm(key, 1); err != nil {
		t.Fatal(err)
	}

	bankSrvTr, bankCliTr := abnn2.NewTraceCollector(), abnn2.NewTraceCollector()
	srv, cli := sessionTranscripts(t, c, 1, c.Inputs, func(server bool, cfg *abnn2.Config) {
		cfg.Bank = b
		cfg.OfflineMode = abnn2.OfflineBanked
		if server {
			cfg.Trace = bankSrvTr
		} else {
			cfg.Trace = bankCliTr
			cfg.BankModel = id
		}
	})
	parties := []PartyTranscript{
		{Party: "server", T: srv},
		{Party: "client", T: cli},
	}
	if err := CompareGolden("session-banked-seed3", "banked session workers=1 "+c.Desc(), parties, *update); err != nil {
		t.Fatal(err)
	}

	// The bank must shrink the session: all offline flights are gone.
	if srv.Bytes() >= inlineSrv.Bytes() || cli.Bytes() >= inlineCli.Bytes() {
		t.Errorf("banked session not smaller: server %d vs %d bytes, client %d vs %d",
			srv.Bytes(), inlineSrv.Bytes(), cli.Bytes(), inlineCli.Bytes())
	}

	for _, p := range []struct {
		name           string
		inline, banked []abnn2.TraceSpan
	}{
		{"server", inlineSrvTr.Spans(), bankSrvTr.Spans()},
		{"client", inlineCliTr.Spans(), bankCliTr.Spans()},
	} {
		on := onlySpan(t, p.name+" inline", p.inline, "online")
		onB := onlySpan(t, p.name+" banked", p.banked, "online")
		if on.BytesSent != onB.BytesSent || on.BytesRecvd != onB.BytesRecvd ||
			on.Messages != onB.Messages || on.Flights != onB.Flights {
			t.Errorf("%s online phase changed under the bank: "+
				"inline sent=%d recvd=%d msgs=%d flights=%d, banked sent=%d recvd=%d msgs=%d flights=%d",
				p.name, on.BytesSent, on.BytesRecvd, on.Messages, on.Flights,
				onB.BytesSent, onB.BytesRecvd, onB.Messages, onB.Flights)
		}
		if got := sumSpanBytes(p.inline, "offline"); got == 0 {
			t.Errorf("%s: inline session recorded no offline wire traffic", p.name)
		}
		if got := sumSpanBytes(p.banked, "offline"); got != 0 {
			t.Errorf("%s: banked session ran an inline offline phase (%d wire bytes)", p.name, got)
		}
		bankSpan := onlySpan(t, p.name+" banked", p.banked, "bank")
		if bankSpan.Bytes() != 0 {
			t.Errorf("%s: drawing/claiming a correlation moved %d wire bytes, want 0",
				p.name, bankSpan.Bytes())
		}
	}
}
