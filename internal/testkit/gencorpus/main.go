// Command gencorpus regenerates the checked-in seed corpora for the
// wire-parser fuzz targets (testdata/fuzz/<Target>/ in each package).
// The corpora encode protocol knowledge the coverage-guided mutator
// would otherwise have to rediscover: exact valid frame lengths for
// every parser, the off-by-one neighbours, and structured fills that
// exercise non-trivial decode paths (set high bits for ring
// canonicality checks, curve points for base OT). Run from the repo
// root after changing any wire format:
//
//	go run ./internal/testkit/gencorpus
package main

import (
	"crypto/elliptic"
	"fmt"
	"math/big"
	"os"
	"path/filepath"

	"abnn2/internal/bank"
	"abnn2/internal/core"
	"abnn2/internal/gc"
	"abnn2/internal/paillier"
	"abnn2/internal/plan"
	"abnn2/internal/prg"
	"abnn2/internal/ring"
)

// entry is one corpus file: a sequence of fuzz arguments, all []byte.
type entry [][]byte

func writeCorpus(dir string, entries []entry) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	for i, e := range entries {
		var buf []byte
		buf = append(buf, "go test fuzz v1\n"...)
		for _, arg := range e {
			buf = append(buf, fmt.Sprintf("[]byte(%q)\n", arg)...)
		}
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, buf, 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("%s: %d entries\n", dir, len(entries))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gencorpus:", err)
	os.Exit(1)
}

// fills returns single-argument entries around a parser's valid frame
// length: exact, both off-by-one neighbours, empty, and patterned fills
// that survive the length check and reach the decode logic.
func fills(valid int, g *prg.PRG) []entry {
	ff := make([]byte, valid)
	hi := make([]byte, valid)
	for i := range ff {
		ff[i] = 0xFF
		hi[i] = 0x80
	}
	out := []entry{
		{make([]byte, valid)},
		{ff},
		{hi},
		{g.Bytes(valid)},
		{[]byte{}},
	}
	if valid > 0 {
		out = append(out, entry{make([]byte, valid-1)}, entry{make([]byte, valid+1)})
	}
	return out
}

func main() {
	g := prg.New(prg.SeedFromInt(0xC0))

	// internal/otext: u-matrix for WH(16)/m=8 is 256 bytes; 1-of-4
	// chosen cts at msgLen 4 are 64 bytes; COT corrections for 3 OTs
	// over the 33-bit ring are 15 bytes.
	writeCorpus("internal/otext/testdata/fuzz/FuzzSenderExtend", fills(256, g))
	writeCorpus("internal/otext/testdata/fuzz/FuzzRecvChosen", fills(64, g))
	writeCorpus("internal/otext/testdata/fuzz/FuzzRecvCorrelatedRing", fills(15, g))

	// internal/gc: garbled-material flight for BatchReLUCircuit(4, 2).
	relu := gc.BatchReLUCircuit(4, 2)
	want := relu.TableBytes() + relu.NumGarbler*gc.LabelSize +
		(len(relu.Outputs)+7)/8 + relu.NumEvaluator*2*gc.LabelSize
	writeCorpus("internal/gc/testdata/fuzz/FuzzEvaluatorRun", fills(want, g))
	sign := gc.BatchSignCircuit(8, 1)
	var evalEntries []entry
	for _, e := range fills(sign.TableBytes(), g) {
		evalEntries = append(evalEntries, entry{e[0], g.Bytes(2 * gc.LabelSize)})
	}
	writeCorpus("internal/gc/testdata/fuzz/FuzzEvaluate", evalEntries)

	// internal/core: triplet payloads for shape 2x3 over 4(2,2) and the
	// 33-bit ring — 12 OTs of (N-1)*5 bytes one-batch, N*o*5 multi-batch.
	writeCorpus("internal/core/testdata/fuzz/FuzzTripletPayloadOneBatch", fills(12*3*5, g))
	writeCorpus("internal/core/testdata/fuzz/FuzzTripletPayloadMultiBatch", fills(12*4*2*5, g))

	// internal/baseot: point flights over P-256 (65-byte uncompressed
	// points). Valid points matter: random 65-byte strings are almost
	// never on the curve, so seed real multiples of the generator.
	curve := elliptic.P256()
	points := make([][]byte, 4)
	for i := range points {
		x, y := curve.ScalarBaseMult([]byte{byte(i + 1)})
		points[i] = elliptic.Marshal(curve, x, y)
	}
	recvEntries := []entry{
		{points[0], make([]byte, 64)},
		{points[1], g.Bytes(64)},
		{points[2], make([]byte, 63)},
		{make([]byte, 65), make([]byte, 64)},
		{[]byte{}, []byte{}},
	}
	writeCorpus("internal/baseot/testdata/fuzz/FuzzReceive", recvEntries)
	sendEntries := []entry{
		{append(append([]byte{}, points[0]...), points[1]...)},
		{append(append([]byte{}, points[2]...), points[3]...)},
		{make([]byte, 130)},
		{g.Bytes(130)},
		{[]byte{}},
	}
	writeCorpus("internal/baseot/testdata/fuzz/FuzzSend", sendEntries)

	// internal/paillier: the fuzz target's key is GenerateKey(seed 1,
	// 512), the package test key. Seed real ciphertexts plus the two
	// classic non-units (0 and N) at the exact wire width.
	sk, err := paillier.GenerateKey(prg.New(prg.SeedFromInt(1)), 512)
	if err != nil {
		fatal(err)
	}
	pk := &sk.PublicKey
	ctBytes := pk.CiphertextBytes()
	var pailEntries []entry
	for _, m := range []int64{0, 1, 1 << 40} {
		ct, err := pk.Encrypt(g, big.NewInt(m))
		if err != nil {
			fatal(err)
		}
		pailEntries = append(pailEntries, entry{pk.Marshal(ct)})
	}
	pailEntries = append(pailEntries,
		entry{make([]byte, ctBytes)},
		entry{pk.N.FillBytes(make([]byte, ctBytes))},
		entry{new(big.Int).Mul(pk.N, big.NewInt(3)).FillBytes(make([]byte, ctBytes))},
		entry{g.Bytes(ctBytes)},
	)
	writeCorpus("internal/paillier/testdata/fuzz/FuzzUnmarshalCiphertext", pailEntries)

	// internal/bank: the durable store's disk parsers. Seed whole valid
	// images (header + records / header + entries), their torn and
	// corrupted neighbours, and canonical correlation blobs — the
	// structured prefixes the mutator needs to reach the deep decode
	// paths (CRC check, matrix shape bounds, Z1 presence bytes).
	mat := func(rows, cols int, base uint64) *ring.Mat {
		m := ring.NewMat(rows, cols)
		for i := range m.Data {
			m.Data[i] = ring.Elem(base + uint64(i))
		}
		return m
	}
	scorr := &core.ServerCorr{Batch: 2, U: []*ring.Mat{mat(3, 2, 10), mat(2, 2, 90)}}
	ccorr := &core.ClientCorr{Batch: 2, R0: mat(3, 2, 7),
		V:  []*ring.Mat{mat(3, 2, 40), mat(2, 2, 50)},
		Z1: []*ring.Mat{nil, mat(2, 2, 60)}}
	scope := bank.Scope{Key: bank.Key{Model: "seed", Scheme: "4(2,2)",
		RingBits: 32, Batch: 2, Backend: "corpus"}}
	seg := bank.AppendSegmentHeader(nil, scope.String())
	hdrLen := len(seg)
	seg = bank.AppendSegmentRecord(seg, 1, bank.EncodeServerCorr(scorr))
	seg = bank.AppendSegmentRecord(seg, 2, bank.EncodeClientCorr(ccorr))
	crcFlip := append([]byte{}, seg...)
	crcFlip[hdrLen+8] ^= 0xFF // corrupt the first record's payload
	segEntries := []entry{
		{seg},
		{seg[:len(seg)-5]},  // torn record tail
		{seg[:hdrLen]},      // header only
		{seg[:hdrLen-3]},    // torn header
		{crcFlip},           // complete record, bad checksum
		{g.Bytes(len(seg))}, // noise at the valid length
		{[]byte{}},
	}
	writeCorpus("internal/bank/testdata/fuzz/FuzzScanSegment", segEntries)

	jn := append([]byte{}, "ABNN2JN1"...)
	jn = bank.AppendJournalEntry(jn, 0xAB, 1)
	jn = bank.AppendJournalEntry(jn, 0xCD, 2)
	jn = bank.AppendJournalEntry(jn, 0xAB, 3)
	jnFlip := append([]byte{}, jn...)
	jnFlip[len("ABNN2JN1")+4] ^= 0xFF // corrupt the first entry mid-file
	jnEntries := []entry{
		{jn},
		{jn[:len(jn)-7]}, // torn last entry
		{jn[:8]},         // header only
		{jn[:5]},         // torn header
		{jnFlip},
		{g.Bytes(len(jn))},
		{[]byte{}},
	}
	writeCorpus("internal/bank/testdata/fuzz/FuzzScanJournal", jnEntries)

	sb := bank.EncodeServerCorr(scorr)
	cb := bank.EncodeClientCorr(ccorr)
	pb := bank.EncodePair(scorr, ccorr)
	corrEntries := []entry{
		{sb}, {cb}, {pb},
		{sb[:len(sb)-3]}, // truncated matrix body
		{cb[:len(cb)-1]}, // truncated Z1 tail
		{g.Bytes(len(pb))},
		{[]byte{}},
	}
	writeCorpus("internal/bank/testdata/fuzz/FuzzDecodeCorr", corrEntries)

	// internal/plan: the plan frame the client's announcement carries.
	// Seed valid frames (mixed backends, scheme override, the one-layer
	// minimum) and the exact rejection boundaries the parser enforces:
	// zero and over-MaxLayers counts, an unknown backend id, an over-long
	// scheme claim, a truncated scheme body, and trailing bytes.
	mixedPlan := &plan.Plan{Layers: []plan.Choice{
		{Backend: core.BackendABNN2, Scheme: "8(2,2,2,2)"},
		{Backend: core.BackendMiniONN},
		{Backend: core.BackendSecureML},
	}}
	onePlan := plan.Uniform(core.BackendQuotient, 1)
	bigPlan := plan.Uniform(core.BackendABNN2, plan.MaxLayers)
	badBackend := append([]byte{}, onePlan.Marshal()...)
	badBackend[6] = 0xEE // backend byte of layer 0
	longScheme := append([]byte{}, onePlan.Marshal()...)
	longScheme[7] = plan.MaxSchemeName + 1 // scheme-length byte of layer 0
	tornScheme := mixedPlan.Marshal()
	tornScheme = tornScheme[:len(tornScheme)-3]
	zeroCount := []byte("ABP1\x00\x00")
	overCount := []byte("ABP1\xff\xff")
	planEntries := []entry{
		{mixedPlan.Marshal()},
		{onePlan.Marshal()},
		{bigPlan.Marshal()},
		{badBackend},
		{longScheme},
		{tornScheme},
		{zeroCount},
		{overCount},
		{append(onePlan.Marshal(), 0x00)}, // trailing byte
		{g.Bytes(len(mixedPlan.Marshal()))},
		{[]byte{}},
	}
	writeCorpus("internal/plan/testdata/fuzz/FuzzUnmarshalPlan", planEntries)
}
