package testkit

import (
	"fmt"
	"sync"
	"testing"

	"abnn2"
	"abnn2/internal/bank"
	"abnn2/internal/core"
	"abnn2/internal/nn"
	"abnn2/internal/prg"
	"abnn2/internal/quant"
	"abnn2/internal/ring"
)

// The dual-execution equivalence suite for the offline correlation
// bank: every case runs once with the offline phase inline and once
// with both parties drawing from a shared bank (OfflineBanked, so a
// silent inline fallback would fail the run), and the client outputs
// must match bit for bit — and both must match the plaintext ring
// reference. The bank's correlations come from the same two-party
// protocol the inline path runs, just ahead of time and under the
// bank's own randomness, so agreement here certifies that banked
// provisioning changes *when* the offline phase happens and nothing
// else.

// runBanked executes the case with both endpoints provisioning from a
// freshly prewarmed correlation bank. The model is registered through
// its JSON wire round-trip because the server derives its pool key from
// the model it loads off the wire; the pool must be keyed identically.
func runBanked(c *Case, optRelu bool) (*ring.Mat, error) {
	data, err := nn.MarshalQuantized(c.Model)
	if err != nil {
		return nil, fmt.Errorf("marshal model: %w", err)
	}
	qm, err := nn.UnmarshalQuantized(data)
	if err != nil {
		return nil, fmt.Errorf("unmarshal model: %w", err)
	}
	b := bank.New(bank.Options{Capacity: 1, Seed: 0xB000 + c.Seed})
	defer b.Close()
	id, err := b.RegisterModel(qm)
	if err != nil {
		return nil, fmt.Errorf("register model: %w", err)
	}
	key := bank.Key{Model: id, Scheme: c.Scheme, RingBits: c.RingBits,
		Batch: c.Batch, Backend: bank.SessionBackend}
	if err := b.Prewarm(key, 1); err != nil {
		return nil, fmt.Errorf("prewarm %v: %w", key, err)
	}
	return RunSecureCfg(c, 0, func(server bool, cfg *abnn2.Config) {
		cfg.OptimizedReLU = optRelu
		cfg.Bank = b
		cfg.OfflineMode = abnn2.OfflineBanked
		if !server {
			cfg.BankModel = id
		}
	})
}

// TestBankedEquivalenceSweep is the banked arm of the differential
// sweep: 40 consecutive seeds (one full pass over the eta x ring grid,
// see TestSweepCoverage) under both ReLU variants, banked vs inline vs
// plaintext.
func TestBankedEquivalenceSweep(t *testing.T) {
	for _, v := range []struct {
		name string
		opt  bool
	}{{"std-relu", false}, {"opt-relu", true}} {
		v := v
		t.Run(v.name, func(t *testing.T) {
			for seed := uint64(0); seed < 40; seed++ {
				seed := seed
				t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
					t.Parallel()
					c := Generate(seed)
					inline, err := RunSecureCfg(c, 0, func(server bool, cfg *abnn2.Config) {
						cfg.OptimizedReLU = v.opt
					})
					if err != nil {
						t.Fatalf("%s: inline run: %v", c.Desc(), err)
					}
					banked, err := runBanked(c, v.opt)
					if err != nil {
						t.Fatalf("%s: banked run: %v", c.Desc(), err)
					}
					if banked.Rows != inline.Rows || banked.Cols != inline.Cols {
						t.Fatalf("%s: banked output %dx%d, inline %dx%d",
							c.Desc(), banked.Rows, banked.Cols, inline.Rows, inline.Cols)
					}
					for i := range inline.Data {
						if banked.Data[i] != inline.Data[i] {
							t.Fatalf("%s: output element %d: banked %d, inline %d",
								c.Desc(), i, banked.Data[i], inline.Data[i])
						}
					}
					// Both arms against the plaintext reference: agreement
					// between two secure runs alone could hide a shared bug.
					rg := ring.New(c.RingBits)
					for k, x := range c.Inputs {
						want := c.Model.ForwardRing(rg, c.Model.EncodeInput(rg, x))
						for i, w := range want {
							if got := banked.At(i, k); got != w {
								t.Fatalf("%s: output %d of sample %d: banked %d, plaintext %d",
									c.Desc(), i, k, got, w)
							}
						}
					}
				})
			}
		})
	}
}

// TestBankMatmulBackendPools runs every secure-matmul backend as a bank
// Producer: pairs drawn from the pool must (a) reconstruct to W*R over
// the ring and (b) be bit-identical to calling the backend directly with
// the seed the producer drew — the bank adds queueing, not arithmetic.
func TestBankMatmulBackendPools(t *testing.T) {
	scheme := quant.NewBitScheme(true, 2, 2)
	backends := []struct {
		name    string
		run     MatmulFunc
		o       int
		ternary bool
	}{
		{"abnn2-onebatch", ABNN2Matmul(scheme, core.OneBatch), 1, false},
		{"abnn2-multibatch", ABNN2Matmul(scheme, core.MultiBatch), 3, false},
		{"secureml", SecureMLMatmul(), 2, false},
		{"minionn-512", MiniONNMatmul(512), 2, false},
		{"quotient", QuotientMatmul(), 1, true},
	}
	for bi, be := range backends {
		bi, be := bi, be
		t.Run(be.name, func(t *testing.T) {
			t.Parallel()
			rg := ring.New(32)
			prng := prg.New(prg.SeedFromInt(uint64(0xFACE + bi)))
			const m, n, draws = 4, 5, 3
			W := make([]int64, m*n)
			lo, hi := scheme.Range()
			for i := range W {
				if be.ternary {
					W[i] = int64(prng.Intn(3) - 1)
				} else {
					W[i] = lo + int64(prng.Intn(int(hi-lo+1)))
				}
			}
			R := prng.Mat(rg, n, be.o)

			b := bank.New(bank.Options{Capacity: draws, Seed: uint64(0xC0 + bi)})
			defer b.Close()
			key := bank.Key{Model: "matmul-oracle", Scheme: be.name,
				RingBits: 32, Batch: be.o, Backend: be.name}
			var mu sync.Mutex
			var seeds []uint64
			err := b.RegisterProducer(key, func(rng *prg.PRG) (bank.Pair, error) {
				s := rng.Uint64()
				mu.Lock()
				seeds = append(seeds, s)
				mu.Unlock()
				U, V, err := be.run(rg, W, m, n, R, s)
				return bank.Pair{Server: U, Client: V}, err
			})
			if err != nil {
				t.Fatalf("register producer: %v", err)
			}
			if err := b.Prewarm(key, draws); err != nil {
				t.Fatalf("prewarm: %v", err)
			}
			Wm := ring.NewMat(m, n)
			for i, w := range W {
				Wm.Data[i] = rg.FromSigned(w)
			}
			want := rg.MulMat(Wm, R)
			for d := 0; d < draws; d++ {
				id, clientHalf, ok := b.Acquire(key)
				if !ok {
					t.Fatalf("draw %d: pool dry after prewarm", d)
				}
				serverHalf, ok := b.Claim(id, key)
				if !ok {
					t.Fatalf("draw %d: claim %d failed", d, id)
				}
				U, V := serverHalf.(*ring.Mat), clientHalf.(*ring.Mat)
				got := rg.AddMat(U, V)
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						t.Fatalf("draw %d: U+V mismatch at %d: got %d, want %d",
							d, i, got.Data[i], want.Data[i])
					}
				}
				// Bit-identity against a direct call with the drawn seed:
				// pool FIFO order matches producer call order, so seeds[d]
				// is the seed behind this pair.
				mu.Lock()
				s := seeds[d]
				mu.Unlock()
				Ud, Vd, err := be.run(rg, W, m, n, R, s)
				if err != nil {
					t.Fatalf("draw %d: direct run: %v", d, err)
				}
				for i := range Ud.Data {
					if U.Data[i] != Ud.Data[i] || V.Data[i] != Vd.Data[i] {
						t.Fatalf("draw %d: banked share differs from direct call at %d: "+
							"U %d vs %d, V %d vs %d", d, i, U.Data[i], Ud.Data[i], V.Data[i], Vd.Data[i])
					}
				}
			}
		})
	}
}
