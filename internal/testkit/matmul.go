package testkit

import (
	"fmt"

	"abnn2/internal/baseline"
	"abnn2/internal/core"
	"abnn2/internal/prg"
	"abnn2/internal/quant"
	"abnn2/internal/ring"
	"abnn2/internal/transport"
)

// Secure matrix-multiplication backends behind one oracle: the ABNN2
// triplet protocol in each of its modes, plus the three comparison
// baselines (SecureML OT triplets, MiniONN Paillier, QUOTIENT ternary
// COT). All produce additive shares U (server) and V (client) of W*R,
// so one differential check — U + V == W*R over the ring — covers all
// of them.

// MatmulFunc runs one secure matmul backend for server weights W
// (m x n, row-major) and client shares R (n x o), returning the two
// output shares (m x o each). seed pins both parties' randomness.
type MatmulFunc func(rg ring.Ring, W []int64, m, n int, R *ring.Mat, seed uint64) (U, V *ring.Mat, err error)

// ABNN2Matmul returns the paper's 1-out-of-N triplet protocol under the
// given fragmentation scheme and payload mode (OneBatch and NaiveN
// require o = 1).
func ABNN2Matmul(scheme quant.Scheme, mode core.Mode) MatmulFunc {
	return func(rg ring.Ring, W []int64, m, n int, R *ring.Mat, seed uint64) (*ring.Mat, *ring.Mat, error) {
		p := core.Params{Ring: rg, Scheme: scheme}
		sh := core.MatShape{M: m, N: n, O: R.Cols}
		serverConn, clientConn := transport.Pipe()
		type res struct {
			U   *ring.Mat
			err error
		}
		ch := make(chan res, 1)
		go func() {
			srv, err := core.NewServerTripletsSeeded(serverConn, p, 7, prg.New(prg.SeedFromInt(2*seed+1)))
			if err != nil {
				ch <- res{nil, err}
				return
			}
			U, err := srv.GenerateServer(sh, W, mode)
			ch <- res{U, err}
		}()
		cli, err := core.NewClientTriplets(clientConn, p, 7, prg.New(prg.SeedFromInt(2*seed+2)))
		if err != nil {
			clientConn.Close()
			<-ch
			return nil, nil, err
		}
		V, cerr := cli.GenerateClient(sh, R, mode)
		sr := <-ch
		if sr.err != nil {
			return nil, nil, fmt.Errorf("server: %w", sr.err)
		}
		if cerr != nil {
			return nil, nil, fmt.Errorf("client: %w", cerr)
		}
		return sr.U, V, nil
	}
}

// SecureMLMatmul returns the SecureML-style bitwise OT-triplet baseline.
func SecureMLMatmul() MatmulFunc {
	return func(rg ring.Ring, W []int64, m, n int, R *ring.Mat, seed uint64) (*ring.Mat, *ring.Mat, error) {
		serverConn, clientConn := transport.Pipe()
		type res struct {
			U   *ring.Mat
			err error
		}
		ch := make(chan res, 1)
		go func() {
			srv, err := baseline.NewSecureMLServer(serverConn, rg, 7, prg.New(prg.SeedFromInt(2*seed+1)))
			if err != nil {
				ch <- res{nil, err}
				return
			}
			U, err := srv.GenerateServer(W, m, n, R.Cols)
			ch <- res{U, err}
		}()
		cli, err := baseline.NewSecureMLClient(clientConn, rg, 7, prg.New(prg.SeedFromInt(2*seed+2)))
		if err != nil {
			clientConn.Close()
			<-ch
			return nil, nil, err
		}
		V, cerr := cli.GenerateClient(m, R)
		sr := <-ch
		if sr.err != nil {
			return nil, nil, fmt.Errorf("server: %w", sr.err)
		}
		if cerr != nil {
			return nil, nil, fmt.Errorf("client: %w", cerr)
		}
		return sr.U, V, nil
	}
}

// MiniONNMatmul returns the Paillier-based MiniONN baseline. keyBits
// sizes the (test-only) modulus; 512 keeps the sweep fast.
func MiniONNMatmul(keyBits int) MatmulFunc {
	return func(rg ring.Ring, W []int64, m, n int, R *ring.Mat, seed uint64) (*ring.Mat, *ring.Mat, error) {
		serverConn, clientConn := transport.Pipe()
		type res struct {
			U   *ring.Mat
			err error
		}
		ch := make(chan res, 1)
		go func() {
			srv, err := baseline.NewMiniONNServer(serverConn, rg, prg.New(prg.SeedFromInt(2*seed+1)))
			if err != nil {
				ch <- res{nil, err}
				return
			}
			U, err := srv.GenerateServer(W, m, n, R.Cols)
			ch <- res{U, err}
		}()
		cli, err := baseline.NewMiniONNClient(clientConn, rg, keyBits, prg.New(prg.SeedFromInt(2*seed+2)))
		if err != nil {
			clientConn.Close()
			<-ch
			return nil, nil, err
		}
		V, cerr := cli.GenerateClient(m, R)
		sr := <-ch
		if sr.err != nil {
			return nil, nil, fmt.Errorf("server: %w", sr.err)
		}
		if cerr != nil {
			return nil, nil, fmt.Errorf("client: %w", cerr)
		}
		return sr.U, V, nil
	}
}

// QuotientMatmul returns the QUOTIENT ternary COT baseline. It is
// vector-only (o = 1) and requires W in {-1, 0, 1}.
func QuotientMatmul() MatmulFunc {
	return func(rg ring.Ring, W []int64, m, n int, R *ring.Mat, seed uint64) (*ring.Mat, *ring.Mat, error) {
		if R.Cols != 1 {
			return nil, nil, fmt.Errorf("quotient backend is vector-only, got o=%d", R.Cols)
		}
		serverConn, clientConn := transport.Pipe()
		type res struct {
			u   ring.Vec
			err error
		}
		ch := make(chan res, 1)
		go func() {
			srv, err := baseline.NewQuotientServer(serverConn, rg, 7, prg.New(prg.SeedFromInt(2*seed+1)))
			if err != nil {
				ch <- res{nil, err}
				return
			}
			u, err := srv.GenerateServer(W, m, n)
			ch <- res{u, err}
		}()
		cli, err := baseline.NewQuotientClient(clientConn, rg, 7, prg.New(prg.SeedFromInt(2*seed+2)))
		if err != nil {
			clientConn.Close()
			<-ch
			return nil, nil, err
		}
		v, cerr := cli.GenerateClient(m, ring.Vec(R.Data))
		sr := <-ch
		if sr.err != nil {
			return nil, nil, fmt.Errorf("server: %w", sr.err)
		}
		if cerr != nil {
			return nil, nil, fmt.Errorf("client: %w", cerr)
		}
		return &ring.Mat{Rows: m, Cols: 1, Data: sr.u}, &ring.Mat{Rows: m, Cols: 1, Data: v}, nil
	}
}

// CheckMatmul is the shared oracle: it runs the backend and demands
// that the shares reconstruct to the plaintext product, U + V == W*R
// over the ring, element by element.
func CheckMatmul(run MatmulFunc, rg ring.Ring, W []int64, m, n int, R *ring.Mat, seed uint64) error {
	U, V, err := run(rg, W, m, n, R, seed)
	if err != nil {
		return err
	}
	Wm := ring.NewMat(m, n)
	for i, w := range W {
		Wm.Data[i] = rg.FromSigned(w)
	}
	want := rg.MulMat(Wm, R)
	got := rg.AddMat(U, V)
	if got.Rows != want.Rows || got.Cols != want.Cols {
		return fmt.Errorf("share shape %dx%d, want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			return fmt.Errorf("U+V mismatch at %d: got %d, want %d (m=%d n=%d o=%d seed=%d)",
				i, got.Data[i], want.Data[i], m, n, R.Cols, seed)
		}
	}
	return nil
}
