package testkit

import (
	"bytes"
	"testing"

	"abnn2/internal/nn"
)

func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		a, err := nn.MarshalQuantized(Generate(seed).Model)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := nn.MarshalQuantized(Generate(seed).Model)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: Generate is not deterministic", seed)
		}
		ca, cb := Generate(seed), Generate(seed)
		if ca.Batch != cb.Batch || ca.RingBits != cb.RingBits || ca.Scheme != cb.Scheme {
			t.Fatalf("seed %d: case parameters not deterministic", seed)
		}
	}
}

// Every generated model must survive its own wire format: serialise,
// reparse (which validates each weight against the scheme), and match
// byte-for-byte on reserialisation.
func TestGenerateRoundTrips(t *testing.T) {
	for seed := uint64(0); seed < 60; seed++ {
		c := Generate(seed)
		data, err := nn.MarshalQuantized(c.Model)
		if err != nil {
			t.Fatalf("%s: marshal: %v", c.Desc(), err)
		}
		back, err := nn.UnmarshalQuantized(data)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", c.Desc(), err)
		}
		again, err := nn.MarshalQuantized(back)
		if err != nil {
			t.Fatalf("%s: remarshal: %v", c.Desc(), err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("%s: JSON round trip not stable", c.Desc())
		}
		if len(c.Inputs) != c.Batch {
			t.Fatalf("%s: %d inputs for batch %d", c.Desc(), len(c.Inputs), c.Batch)
		}
		for k, x := range c.Inputs {
			if len(x) != c.Model.InputSize() {
				t.Fatalf("%s: input %d has %d features, want %d", c.Desc(), k, len(x), c.Model.InputSize())
			}
		}
		for li, l := range c.Model.Layers {
			if l.ReqC != 0 {
				t.Fatalf("%s: layer %d requantizes; generated models must be exact (ReqC=0)", c.Desc(), li)
			}
		}
	}
}
