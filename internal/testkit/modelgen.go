package testkit

import (
	"fmt"

	"abnn2/internal/nn"
	"abnn2/internal/prg"
	"abnn2/internal/quant"
)

// RingWidths is the share-ring sweep the conformance harness covers: the
// byte-aligned rings, the paper's arbitrary-width case (33), and the
// word-size extremes.
var RingWidths = []uint{8, 16, 32, 33, 64}

// Case is one generated conformance scenario: a model plus the protocol
// parameters and inputs to run it under. Everything is a pure function
// of Seed, so a failure report carrying the seed is a full reproduction.
type Case struct {
	Seed     uint64
	RingBits uint
	Eta      int    // weight bitwidth of the scheme
	Scheme   string // scheme designation, e.g. "5(2,2,1)"
	Batch    int    // 1 exercises the one-batch (COT) path, >1 multi-batch
	Model    *nn.QuantizedModel
	Inputs   [][]float64
}

// Desc is a one-line human label for failure messages.
func (c *Case) Desc() string {
	kind := "fc"
	if c.Model.Layers[0].Conv != nil {
		kind = "conv"
	}
	return fmt.Sprintf("seed=%d ring=%d scheme=%s batch=%d layers=%d kind=%s",
		c.Seed, c.RingBits, c.Scheme, c.Batch, len(c.Model.Layers), kind)
}

// Generate deterministically builds the conformance case for a seed.
//
// Coverage is arranged so that any 40 consecutive seeds hit every
// (eta, ring) pair: eta cycles mod 8 and the ring mod 5, which are
// coprime. Within that frame the seed's PRG draws the scheme family
// (binary / ternary / random signed or unsigned fragmentation), the
// layer stack (1-3 FC layers, or a conv+pool front end on every sixth
// seed), weights, biases, and a batch of inputs.
//
// Generated layers never requantize (ReqC = 0): requantization carries a
// deliberate ±1 probabilistic-truncation slack (see nn.ForwardRing), and
// the differential checker asserts exact equality.
func Generate(seed uint64) *Case {
	rng := prg.New(prg.SeedFromInt(seed)).Child("testkit-model")
	c := &Case{
		Seed:     seed,
		RingBits: RingWidths[seed%uint64(len(RingWidths))],
		Eta:      int(seed%8) + 1,
	}
	scheme := pickScheme(rng, c.Eta)
	c.Scheme = scheme.Name()

	conv := seed%6 == 5
	if conv {
		c.Model = genConvModel(rng, scheme)
	} else {
		c.Model = genFCModel(rng, scheme)
	}
	c.Batch = 1 + rng.Intn(3)
	in := c.Model.InputSize()
	c.Inputs = make([][]float64, c.Batch)
	for k := range c.Inputs {
		x := make([]float64, in)
		for i := range x {
			// Uniform in about [-2, 2]; Frac-bit encoding rounds.
			x[i] = float64(rng.Intn(4097)-2048) / 1024.0
		}
		c.Inputs[k] = x
	}
	return c
}

// pickScheme draws a quantization scheme of exactly eta bits. Ternary is
// drawn at eta=2 (its range {-1,0,1} needs 2 bits) and binary at eta=1;
// otherwise eta is partitioned into random fragment widths, signed or
// unsigned.
func pickScheme(rng *prg.PRG, eta int) quant.Scheme {
	switch {
	case eta == 1 && rng.Intn(2) == 0:
		return quant.Binary()
	case eta == 2 && rng.Intn(3) == 0:
		return quant.Ternary()
	}
	widths := randomPartition(rng, eta)
	signed := rng.Intn(4) != 0 // mostly signed, as in the paper
	return quant.NewBitScheme(signed, widths...)
}

// randomPartition splits eta into fragment widths in [1,8], low bits
// first (paper convention).
func randomPartition(rng *prg.PRG, eta int) []uint {
	var widths []uint
	for eta > 0 {
		max := eta
		if max > 8 {
			max = 8
		}
		w := 1 + rng.Intn(max)
		widths = append(widths, uint(w))
		eta -= w
	}
	return widths
}

// genFCModel builds a stack of 1-3 fully connected layers with random
// small sizes, random ReLU placement, weights uniform over the scheme's
// range, and small biases.
func genFCModel(rng *prg.PRG, scheme quant.Scheme) *nn.QuantizedModel {
	depth := 1 + rng.Intn(3)
	sizes := make([]int, depth+1)
	for i := range sizes {
		sizes[i] = 1 + rng.Intn(6)
	}
	qm := &nn.QuantizedModel{Frac: uint(rng.Intn(4))}
	for d := 0; d < depth; d++ {
		l := &nn.QuantizedLayer{
			In:     sizes[d],
			Out:    sizes[d+1],
			Scale:  1,
			Scheme: scheme,
			ReLU:   rng.Intn(2) == 0,
		}
		fillWeights(rng, l, scheme)
		qm.Layers = append(qm.Layers, l)
	}
	return qm
}

// genConvModel builds Conv(1->co, 2x2 over 5x5, stride 1) [+ MaxPool(2)]
// -> FC(...->out). The 4x4 conv output divides evenly for the pool.
func genConvModel(rng *prg.PRG, scheme quant.Scheme) *nn.QuantizedModel {
	conv := &nn.ConvSpec{Ci: 1, H: 5, W: 5, Kh: 2, Kw: 2, Stride: 1, Pad: 0}
	co := 1 + rng.Intn(2)
	l0 := &nn.QuantizedLayer{
		In:     conv.InputSize(),
		Out:    co,
		Scale:  1,
		Scheme: scheme,
		ReLU:   true,
		Conv:   conv,
	}
	if rng.Intn(2) == 0 {
		l0.Pool = &nn.PoolSpec{K: 2}
	}
	fillWeights(rng, l0, scheme)
	out := 1 + rng.Intn(4)
	l1 := &nn.QuantizedLayer{
		In:     l0.OutputSize(),
		Out:    out,
		Scale:  1,
		Scheme: scheme,
	}
	fillWeights(rng, l1, scheme)
	return &nn.QuantizedModel{Layers: []*nn.QuantizedLayer{l0, l1}, Frac: uint(rng.Intn(4))}
}

// fillWeights populates W uniformly over the scheme's representable
// range and B with small signed integers.
func fillWeights(rng *prg.PRG, l *nn.QuantizedLayer, scheme quant.Scheme) {
	min, max := scheme.Range()
	span := int(max - min + 1)
	l.W = make([]int64, l.Out*l.ColRows())
	for i := range l.W {
		l.W[i] = min + int64(rng.Intn(span))
	}
	l.B = make([]int64, l.Out)
	for i := range l.B {
		l.B[i] = int64(rng.Intn(17) - 8)
	}
}
