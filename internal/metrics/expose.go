package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
)

// Export surfaces: Prometheus text exposition format (format version
// 0.0.4, what every scraper speaks) and an expvar-style JSON document
// for humans and ad-hoc tooling.

// WritePrometheus renders every registered metric in Prometheus text
// format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	r.each(func(m *metric) {
		switch it := m.item.(type) {
		case *Counter:
			pf("# HELP %s %s\n# TYPE %s counter\n%s %d\n", m.name, m.help, m.name, m.name, it.Value())
		case *Gauge:
			pf("# HELP %s %s\n# TYPE %s gauge\n%s %d\n", m.name, m.help, m.name, m.name, it.Value())
		case *CounterVec:
			pf("# HELP %s %s\n# TYPE %s counter\n", m.name, m.help, m.name)
			vals, cs := it.children()
			for i, v := range vals {
				pf("%s{%s=%s} %d\n", m.name, it.label, strconv.Quote(v), cs[i].Value())
			}
		case *GaugeVec:
			pf("# HELP %s %s\n# TYPE %s gauge\n", m.name, m.help, m.name)
			vals, gs := it.children()
			for i, v := range vals {
				pf("%s{%s=%s} %d\n", m.name, it.label, strconv.Quote(v), gs[i].Value())
			}
		case *Histogram:
			pf("# HELP %s %s\n# TYPE %s histogram\n", m.name, m.help, m.name)
			bounds, cum, sum, count := it.snapshot()
			for i, b := range bounds {
				pf("%s_bucket{le=%q} %d\n", m.name, formatFloat(b), cum[i])
			}
			pf("%s_bucket{le=\"+Inf\"} %d\n", m.name, count)
			pf("%s_sum %s\n%s_count %d\n", m.name, formatFloat(sum), m.name, count)
		case *HistogramVec:
			pf("# HELP %s %s\n# TYPE %s histogram\n", m.name, m.help, m.name)
			vals, hs := it.children()
			for i, v := range vals {
				lbl := fmt.Sprintf("%s=%s", it.label, strconv.Quote(v))
				bounds, cum, sum, count := hs[i].snapshot()
				for j, b := range bounds {
					pf("%s_bucket{%s,le=%q} %d\n", m.name, lbl, formatFloat(b), cum[j])
				}
				pf("%s_bucket{%s,le=\"+Inf\"} %d\n", m.name, lbl, count)
				pf("%s_sum{%s} %s\n%s_count{%s} %d\n", m.name, lbl, formatFloat(sum), m.name, lbl, count)
			}
		}
	})
	return err
}

// formatFloat renders a float the way Prometheus expects (shortest
// round-trip representation).
func formatFloat(f float64) string {
	if math.IsInf(f, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// WriteJSON renders every registered metric as one JSON object, keyed by
// metric name. Counters and gauges become numbers; counter families
// become objects keyed by label value; histograms become
// {count, sum, buckets}.
func (r *Registry) WriteJSON(w io.Writer) error {
	doc := make(map[string]any)
	r.each(func(m *metric) {
		switch it := m.item.(type) {
		case *Counter:
			doc[m.name] = it.Value()
		case *Gauge:
			doc[m.name] = it.Value()
		case *CounterVec:
			kids := make(map[string]int64)
			vals, cs := it.children()
			for i, v := range vals {
				kids[v] = cs[i].Value()
			}
			doc[m.name] = kids
		case *GaugeVec:
			kids := make(map[string]int64)
			vals, gs := it.children()
			for i, v := range vals {
				kids[v] = gs[i].Value()
			}
			doc[m.name] = kids
		case *Histogram:
			bounds, cum, sum, count := it.snapshot()
			buckets := make(map[string]uint64, len(bounds))
			for i, b := range bounds {
				buckets[formatFloat(b)] = cum[i]
			}
			doc[m.name] = map[string]any{"count": count, "sum": sum, "buckets": buckets}
		case *HistogramVec:
			kids := make(map[string]any)
			vals, hs := it.children()
			for i, v := range vals {
				bounds, cum, sum, count := hs[i].snapshot()
				buckets := make(map[string]uint64, len(bounds))
				for j, b := range bounds {
					buckets[formatFloat(b)] = cum[j]
				}
				kids[v] = map[string]any{"count": count, "sum": sum, "buckets": buckets}
			}
			doc[m.name] = kids
		}
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Handler serves the registry in Prometheus text format (mount at
// /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// JSONHandler serves the registry as a JSON document (mount at /vars).
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
}
