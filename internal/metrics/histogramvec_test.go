package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestHistogramVecChildren(t *testing.T) {
	r := NewRegistry()
	v := r.NewHistogramVec("test_latency_seconds", "help", "model", []float64{0.1, 1})
	v.With("mnist").Observe(0.05)
	v.With("mnist").Observe(0.5)
	v.With("cnn").Observe(5)

	labels, kids := v.children()
	if len(labels) != 2 || labels[0] != "mnist" || labels[1] != "cnn" {
		t.Fatalf("labels = %v, want [mnist cnn] in first-seen order", labels)
	}
	_, cum, sum, count := kids[0].snapshot()
	if count != 2 || cum[0] != 1 || cum[1] != 2 {
		t.Fatalf("mnist child: cum=%v count=%d", cum, count)
	}
	if sum != 0.55 {
		t.Fatalf("mnist sum = %v, want 0.55", sum)
	}
	// Children share bounds but not counts.
	if _, _, _, c := kids[1].snapshot(); c != 1 {
		t.Fatalf("cnn count = %d, want 1", c)
	}
}

func TestHistogramVecPrometheus(t *testing.T) {
	r := NewRegistry()
	v := r.NewHistogramVec("test_latency_seconds", "help", "model", []float64{0.5, 1})
	v.With("mnist").Observe(0.25)
	v.With("mnist").Observe(3)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{model="mnist",le="0.5"} 1`,
		`test_latency_seconds_bucket{model="mnist",le="+Inf"} 2`,
		`test_latency_seconds_sum{model="mnist"} 3.25`,
		`test_latency_seconds_count{model="mnist"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramVecJSON(t *testing.T) {
	r := NewRegistry()
	v := r.NewHistogramVec("test_latency_seconds", "help", "model", []float64{1})
	v.With("mnist").Observe(0.5)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	child := doc["test_latency_seconds"].(map[string]any)["mnist"].(map[string]any)
	if child["count"].(float64) != 1 || child["sum"].(float64) != 0.5 {
		t.Fatalf("mnist child = %v", child)
	}
}

func TestHistogramVecPanics(t *testing.T) {
	r := NewRegistry()
	for name, bounds := range map[string][]float64{
		"empty":    {},
		"unsorted": {1, 0.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s bounds did not panic", name)
				}
			}()
			r.NewHistogramVec("test_"+name, "help", "model", bounds)
		}()
	}
}

func TestHistogramVecConcurrent(t *testing.T) {
	r := NewRegistry()
	v := r.NewHistogramVec("test_latency_seconds", "help", "model", []float64{1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := string(rune('a' + g%3))
			for i := 0; i < 200; i++ {
				v.With(name).Observe(0.5)
			}
		}(g)
	}
	wg.Wait()
	_, kids := v.children()
	var total uint64
	for _, h := range kids {
		_, _, _, c := h.snapshot()
		total += c
	}
	if total != 1600 {
		t.Fatalf("total observations = %d, want 1600", total)
	}
}
