package metrics

import (
	"time"

	"abnn2/internal/trace"
)

// ServerMetrics is the standard metric set of a serving process. It
// doubles as a trace.Sink: pointed at by Config.Trace, every completed
// protocol span updates the live series, so the /metrics endpoint
// reflects exactly what the span dump records.
//
// Byte/message/flight totals accumulate root spans only (setup, idle,
// batch): root spans partition a session's traffic, while nested spans
// overlap their parents and would double count. The per-phase families
// accumulate every span under its own phase name, which is the live view
// of the paper's per-phase breakdown tables.
type ServerMetrics struct {
	ConnsTotal    *Counter
	ConnsActive   *Gauge
	ConnsRejected *Counter
	SessionsFail  *Counter

	BytesSent  *Counter
	BytesRecvd *Counter
	Messages   *Counter
	Rounds     *Counter

	PhaseBytes *CounterVec
	PhaseNanos *CounterVec

	Batches   *Counter
	Inference *Histogram
	BatchComm *Histogram

	SessionSeconds *Histogram
	SpanErrors     *Counter
}

// NewServerMetrics registers the standard series on r.
func NewServerMetrics(r *Registry) *ServerMetrics {
	return &ServerMetrics{
		ConnsTotal:    r.NewCounter("abnn2_connections_total", "Client connections accepted."),
		ConnsActive:   r.NewGauge("abnn2_connections_active", "Client sessions currently being served."),
		ConnsRejected: r.NewCounter("abnn2_connections_rejected_total", "Connections rejected at the concurrency cap."),
		SessionsFail:  r.NewCounter("abnn2_sessions_failed_total", "Sessions that ended with a protocol error."),

		BytesSent:  r.NewCounter("abnn2_bytes_sent_total", "Protocol bytes sent to clients."),
		BytesRecvd: r.NewCounter("abnn2_bytes_received_total", "Protocol bytes received from clients."),
		Messages:   r.NewCounter("abnn2_messages_total", "Framed protocol messages, both directions."),
		Rounds:     r.NewCounter("abnn2_rounds_total", "One-way communication flights (direction changes)."),

		PhaseBytes: r.NewCounterVec("abnn2_phase_bytes_total", "Wire bytes by protocol phase, both directions.", "phase"),
		PhaseNanos: r.NewCounterVec("abnn2_phase_duration_nanoseconds_total", "Wall time by protocol phase.", "phase"),

		Batches:   r.NewCounter("abnn2_batches_total", "Prediction batches served."),
		Inference: r.NewHistogram("abnn2_inference_seconds", "End-to-end latency of one prediction batch (offline+online).", DurationBuckets),
		BatchComm: r.NewHistogram("abnn2_batch_bytes", "Wire bytes of one prediction batch, both directions.", SizeBuckets),

		SessionSeconds: r.NewHistogram("abnn2_session_seconds", "Lifetime of one client connection, accept to close.", DurationBuckets),
		SpanErrors:     r.NewCounter("abnn2_span_errors_total", "Protocol phases that ended with an error."),
	}
}

// Emit implements trace.Sink.
func (m *ServerMetrics) Emit(s trace.Span) {
	if s.Parent == 0 {
		m.BytesSent.Add(s.BytesSent)
		m.BytesRecvd.Add(s.BytesRecvd)
		m.Messages.Add(s.Messages)
		m.Rounds.Add(s.Flights)
	}
	m.PhaseBytes.With(s.Name).Add(s.Bytes())
	m.PhaseNanos.With(s.Name).Add(int64(s.Dur))
	if s.Name == "batch" && s.Err == "" {
		m.Batches.Inc()
		m.Inference.Observe(s.Dur.Seconds())
		m.BatchComm.Observe(float64(s.Bytes()))
	}
	if s.Err != "" {
		m.SpanErrors.Inc()
	}
}

// ObserveSession records a finished session: its outcome and lifetime.
func (m *ServerMetrics) ObserveSession(err error, d time.Duration) {
	if err != nil {
		m.SessionsFail.Inc()
	}
	m.SessionSeconds.Observe(d.Seconds())
}
