package metrics

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"abnn2/internal/trace"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_counter_total", "help")
	g := r.NewGauge("test_gauge", "help")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotone
	g.Set(7)
	g.Add(-2)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_seconds", "help", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	bounds, cum, sum, count := h.snapshot()
	if len(bounds) != 3 {
		t.Fatalf("bounds = %v", bounds)
	}
	// le=0.1 holds 0.05 and 0.1 (bounds are inclusive), le=1 adds 0.5,
	// le=10 adds 5, +Inf adds 50.
	if cum[0] != 2 || cum[1] != 3 || cum[2] != 4 || count != 5 {
		t.Fatalf("cumulative = %v count=%d", cum, count)
	}
	if want := 55.65; sum != want {
		t.Fatalf("sum = %v, want %v", sum, want)
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("test_phase_bytes_total", "help", "phase")
	v.With("offline").Add(10)
	v.With("online").Add(20)
	v.With("offline").Add(5)
	vals, cs := v.children()
	if len(vals) != 2 || vals[0] != "offline" || vals[1] != "online" {
		t.Fatalf("children order = %v", vals)
	}
	if cs[0].Value() != 15 || cs[1].Value() != 20 {
		t.Fatalf("children values = %d, %d", cs[0].Value(), cs[1].Value())
	}
}

func TestRegisterPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "help")
	mustPanic(t, "duplicate", func() { r.NewGauge("dup_total", "help") })
	mustPanic(t, "invalid name", func() { r.NewCounter("bad name", "help") })
	mustPanic(t, "unsorted buckets", func() { r.NewHistogram("h", "help", []float64{2, 1}) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("abnn2_bytes_sent_total", "Bytes sent.").Add(123)
	r.NewGauge("abnn2_connections_active", "Active.").Set(2)
	r.NewCounterVec("abnn2_phase_bytes_total", "Per phase.", "phase").With("offline").Add(9)
	h := r.NewHistogram("abnn2_inference_seconds", "Latency.", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(3)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE abnn2_bytes_sent_total counter",
		"abnn2_bytes_sent_total 123",
		"# TYPE abnn2_connections_active gauge",
		"abnn2_connections_active 2",
		`abnn2_phase_bytes_total{phase="offline"} 9`,
		`abnn2_inference_seconds_bucket{le="0.5"} 1`,
		`abnn2_inference_seconds_bucket{le="+Inf"} 2`,
		"abnn2_inference_seconds_sum 3.25",
		"abnn2_inference_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestJSONExport(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("c_total", "help").Add(3)
	r.NewCounterVec("v_total", "help", "phase").With("relu").Add(7)
	r.NewHistogram("h_seconds", "help", []float64{1}).Observe(0.5)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc["c_total"].(float64) != 3 {
		t.Fatalf("c_total = %v", doc["c_total"])
	}
	if doc["v_total"].(map[string]any)["relu"].(float64) != 7 {
		t.Fatalf("v_total = %v", doc["v_total"])
	}
	hist := doc["h_seconds"].(map[string]any)
	if hist["count"].(float64) != 1 || hist["sum"].(float64) != 0.5 {
		t.Fatalf("h_seconds = %v", hist)
	}
}

func TestConcurrentUpdatesAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("race_total", "help")
	h := r.NewHistogram("race_seconds", "help", []float64{1})
	v := r.NewCounterVec("race_phase_total", "help", "phase")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j) / 1000)
				v.With("p").Inc()
				if j%100 == 0 {
					_ = r.WritePrometheus(io.Discard)
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 || v.With("p").Value() != 8000 {
		t.Fatalf("lost updates: %d %d %d", c.Value(), h.Count(), v.With("p").Value())
	}
}

// ServerMetrics fed from trace spans, scraped over HTTP — the live-export
// path of cmd/abnn2-server in miniature.
func TestServerMetricsBridge(t *testing.T) {
	r := NewRegistry()
	sm := NewServerMetrics(r)
	tr := trace.New(sm, trace.WithParty("server"), trace.WithSession(1))

	var ctr trace.Counters
	src := func() trace.Counters { return ctr }
	trace.WithCounters(src)(tr)

	setup := tr.Start("setup")
	ctr.BytesSent += 1000
	ctr.BytesRecvd += 500
	ctr.Messages += 4
	ctr.Flights += 2
	setup.End(nil)

	batch := tr.Start("batch").SetBatch(2)
	off := tr.Start("offline")
	ctr.BytesRecvd += 2000
	ctr.Messages += 2
	ctr.Flights += 1
	off.End(nil)
	ctr.BytesSent += 300
	ctr.Messages += 1
	ctr.Flights += 1
	batch.End(nil)

	sm.ConnsTotal.Inc()
	sm.ObserveSession(nil, 50*time.Millisecond)

	if got := sm.BytesSent.Value(); got != 1300 {
		t.Fatalf("bytes sent = %d, want 1300 (roots only)", got)
	}
	if got := sm.BytesRecvd.Value(); got != 2500 {
		t.Fatalf("bytes received = %d, want 2500", got)
	}
	if got := sm.Rounds.Value(); got != 4 {
		t.Fatalf("rounds = %d, want 4", got)
	}
	if got := sm.Batches.Value(); got != 1 {
		t.Fatalf("batches = %d, want 1", got)
	}
	if got := sm.PhaseBytes.With("offline").Value(); got != 2000 {
		t.Fatalf("offline phase bytes = %d, want 2000", got)
	}

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	out := string(body)
	for _, want := range []string{
		"abnn2_bytes_sent_total 1300",
		"abnn2_bytes_received_total 2500",
		"abnn2_rounds_total 4",
		"abnn2_connections_total 1",
		"abnn2_inference_seconds_count 1",
		`abnn2_phase_bytes_total{phase="batch"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("scrape missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("q", "", []float64{1, 2, 4, 8})

	if v := h.Quantile(0.5); !math.IsNaN(v) {
		t.Fatalf("empty histogram quantile = %v, want NaN", v)
	}

	// 10 samples in (1,2], 10 in (2,4]: the median sits at the 2 boundary,
	// p25 interpolates to the middle of the first occupied bucket.
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
		h.Observe(3)
	}
	if v := h.Quantile(0.5); v != 2 {
		t.Errorf("p50 = %v, want 2 (bucket boundary)", v)
	}
	if v := h.Quantile(0.25); v != 1.5 {
		t.Errorf("p25 = %v, want 1.5 (middle of (1,2])", v)
	}
	if v := h.Quantile(0.75); v != 3 {
		t.Errorf("p75 = %v, want 3 (middle of (2,4])", v)
	}
	if v := h.Quantile(1); v != 4 {
		t.Errorf("p100 = %v, want 4 (top of last occupied bucket)", v)
	}

	// Out-of-range q is an error, not a clamp.
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if v := h.Quantile(q); !math.IsNaN(v) {
			t.Errorf("Quantile(%v) = %v, want NaN", q, v)
		}
	}

	// Samples beyond the last bound land in +Inf and clamp to it.
	h2 := r.NewHistogram("q2", "", []float64{1, 2})
	h2.Observe(100)
	if v := h2.Quantile(0.99); v != 2 {
		t.Errorf("+Inf-bucket quantile = %v, want clamp to 2", v)
	}
}
