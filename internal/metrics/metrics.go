// Package metrics is a small dependency-free metrics registry: counters,
// gauges, and fixed-bucket histograms, exported in Prometheus text
// format and as an expvar-style JSON document. It exists so the serving
// binaries can expose live protocol telemetry (bytes, rounds, latency
// distributions) without pulling a client library into a cryptographic
// codebase.
//
// Metric values are updated lock-free (atomics) on the hot path;
// histograms take a short mutex per observation. Registration happens
// once at startup and panics on misuse (duplicate or invalid names),
// mirroring expvar.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter; negative deltas are ignored (counters
// never go down).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add shifts the gauge by n (negative allowed).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution metric. Buckets follow the
// Prometheus convention: counts[i] observations fell at or below
// bounds[i]; one implicit +Inf bucket catches the rest.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; last is +Inf
	sum    float64
	count  uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations so far.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-quantile (q in [0,1]) of the observed
// distribution from the bucket counts, interpolating linearly inside the
// winning bucket the way Prometheus' histogram_quantile does. Values in
// the +Inf bucket clamp to the highest finite bound. Returns NaN when
// nothing has been observed or q is out of range — the load harness uses
// this to report p50/p99 straight from the live series.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	bounds, cum, _, count := h.snapshot()
	if count == 0 {
		return math.NaN()
	}
	rank := q * float64(count)
	for i, b := range bounds {
		if float64(cum[i]) >= rank {
			lo, loCum := 0.0, uint64(0)
			if i > 0 {
				lo, loCum = bounds[i-1], cum[i-1]
			}
			in := cum[i] - loCum
			if in == 0 {
				return b
			}
			return lo + (b-lo)*(rank-float64(loCum))/float64(in)
		}
	}
	return bounds[len(bounds)-1] // +Inf bucket: clamp to the last bound
}

// snapshot returns (bounds, cumulative counts per bound, sum, count).
func (h *Histogram) snapshot() ([]float64, []uint64, float64, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := make([]uint64, len(h.counts))
	var run uint64
	for i, c := range h.counts {
		run += c
		cum[i] = run
	}
	return h.bounds, cum, h.sum, h.count
}

// DurationBuckets is a decade ladder suited to protocol phases: 100µs up
// to ~2 minutes.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// SizeBuckets is a power-of-4 byte ladder: 256B up to 1GiB.
var SizeBuckets = []float64{
	256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30,
}

// CounterVec is a family of counters distinguished by one label (e.g.
// bytes per protocol phase).
type CounterVec struct {
	label string
	mu    sync.Mutex
	kids  map[string]*Counter
	order []string
}

// With returns the child counter for the given label value, creating it
// on first use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.kids[value]
	if !ok {
		c = &Counter{}
		v.kids[value] = c
		v.order = append(v.order, value)
	}
	return c
}

// children returns (label values, counters) in first-use order.
func (v *CounterVec) children() ([]string, []*Counter) {
	v.mu.Lock()
	defer v.mu.Unlock()
	vals := make([]string, len(v.order))
	copy(vals, v.order)
	cs := make([]*Counter, len(vals))
	for i, val := range vals {
		cs[i] = v.kids[val]
	}
	return vals, cs
}

// GaugeVec is a family of gauges distinguished by one label (e.g. pool
// depth per correlation key).
type GaugeVec struct {
	label string
	mu    sync.Mutex
	kids  map[string]*Gauge
	order []string
}

// With returns the child gauge for the given label value, creating it on
// first use.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.kids[value]
	if !ok {
		g = &Gauge{}
		v.kids[value] = g
		v.order = append(v.order, value)
	}
	return g
}

// children returns (label values, gauges) in first-use order.
func (v *GaugeVec) children() ([]string, []*Gauge) {
	v.mu.Lock()
	defer v.mu.Unlock()
	vals := make([]string, len(v.order))
	copy(vals, v.order)
	gs := make([]*Gauge, len(vals))
	for i, val := range vals {
		gs[i] = v.kids[val]
	}
	return vals, gs
}

// HistogramVec is a family of histograms distinguished by one label,
// sharing one bucket ladder (e.g. session latency per model).
type HistogramVec struct {
	label  string
	bounds []float64
	mu     sync.Mutex
	kids   map[string]*Histogram
	order  []string
}

// With returns the child histogram for the given label value, creating
// it on first use.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.kids[value]
	if !ok {
		h = &Histogram{bounds: v.bounds, counts: make([]uint64, len(v.bounds)+1)}
		v.kids[value] = h
		v.order = append(v.order, value)
	}
	return h
}

// children returns (label values, histograms) in first-use order.
func (v *HistogramVec) children() ([]string, []*Histogram) {
	v.mu.Lock()
	defer v.mu.Unlock()
	vals := make([]string, len(v.order))
	copy(vals, v.order)
	hs := make([]*Histogram, len(vals))
	for i, val := range vals {
		hs[i] = v.kids[val]
	}
	return vals, hs
}

// metric couples a registered metric with its metadata.
type metric struct {
	name string
	help string
	item any // *Counter | *Gauge | *Histogram | *CounterVec | *GaugeVec | *HistogramVec
}

// Registry holds named metrics and renders them for export. The zero
// value is not usable; call NewRegistry.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*metric
	ordered []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

func (r *Registry) register(name, help string, item any) {
	if name == "" {
		panic("metrics: empty metric name")
	}
	for _, c := range name {
		if !(c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')) {
			panic(fmt.Sprintf("metrics: invalid metric name %q", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric %q", name))
	}
	m := &metric{name: name, help: help, item: item}
	r.byName[name] = m
	r.ordered = append(r.ordered, m)
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, c)
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, g)
	return g
}

// NewHistogram registers and returns a histogram with the given bucket
// upper bounds (must be sorted ascending; +Inf is implicit).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 || !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("metrics: histogram %q needs sorted non-empty buckets", name))
	}
	h := &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
	r.register(name, help, h)
	return h
}

// NewCounterVec registers and returns a single-label counter family.
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{label: label, kids: make(map[string]*Counter)}
	r.register(name, help, v)
	return v
}

// NewHistogramVec registers and returns a single-label histogram family
// with a shared bucket ladder.
func (r *Registry) NewHistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	if len(bounds) == 0 || !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("metrics: histogram family %q needs sorted non-empty buckets", name))
	}
	v := &HistogramVec{label: label, bounds: bounds, kids: make(map[string]*Histogram)}
	r.register(name, help, v)
	return v
}

// NewGaugeVec registers and returns a single-label gauge family.
func (r *Registry) NewGaugeVec(name, help, label string) *GaugeVec {
	v := &GaugeVec{label: label, kids: make(map[string]*Gauge)}
	r.register(name, help, v)
	return v
}

// each visits registered metrics in registration order.
func (r *Registry) each(fn func(*metric)) {
	r.mu.Lock()
	snapshot := make([]*metric, len(r.ordered))
	copy(snapshot, r.ordered)
	r.mu.Unlock()
	for _, m := range snapshot {
		fn(m)
	}
}
