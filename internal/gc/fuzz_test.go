package gc

import (
	"sync"
	"testing"

	"abnn2/internal/prg"
	"abnn2/internal/transport"
)

// fuzzEvaluator builds a real Evaluator (base OTs against a throwaway
// Garbler) and returns the peer conn for injecting the garbled-material
// flight. The drainer discards the evaluator's outgoing label-OT u
// matrices so the pipe never fills across iterations.
func fuzzEvaluator(f *testing.F) (*Evaluator, transport.Conn) {
	f.Helper()
	ca, cb := transport.Pipe()
	var (
		gerr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, gerr = NewGarbler(cb, 99, prg.New(prg.SeedFromInt(1)))
	}()
	e, eerr := NewEvaluator(ca, 99, prg.New(prg.SeedFromInt(2)))
	wg.Wait()
	if gerr != nil || eerr != nil {
		f.Fatalf("setup: %v %v", gerr, eerr)
	}
	go func() {
		for {
			if _, err := cb.Recv(); err != nil {
				return
			}
		}
	}()
	return e, cb
}

// FuzzEvaluatorRun treats the garbled-material flight as attacker bytes.
// For BatchReLUCircuit(4, 2) the valid length is TableBytes() +
// NumGarbler*LabelSize + decode + NumEvaluator*2*LabelSize; every other
// length must error, and even a correctly-sized flight of garbage must
// evaluate (to garbage bits) without panicking.
func FuzzEvaluatorRun(f *testing.F) {
	e, peer := fuzzEvaluator(f)
	circ := BatchReLUCircuit(4, 2)
	want := circ.TableBytes() + circ.NumGarbler*LabelSize +
		(len(circ.Outputs)+7)/8 + circ.NumEvaluator*2*LabelSize
	evalBits := make([]byte, circ.NumEvaluator)
	for i := range evalBits {
		evalBits[i] = byte(i) & 1
	}
	f.Add(make([]byte, want))
	f.Add(make([]byte, want-1))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := peer.Send(data); err != nil {
			t.Skip("pipe closed")
		}
		e.Run(circ, evalBits)
	})
}

// FuzzEvaluate drives the pure evaluation function directly: arbitrary
// table bytes, label material carved from the fuzzer's second argument,
// and a decode vector. Evaluate validates every slice length itself, so
// no input may panic.
func FuzzEvaluate(f *testing.F) {
	circ := BatchSignCircuit(8, 1)
	f.Add(make([]byte, circ.TableBytes()), make([]byte, 16))
	f.Add([]byte{}, []byte{})
	f.Add(make([]byte, 7), make([]byte, 3))
	f.Fuzz(func(t *testing.T, tables, labelSrc []byte) {
		gl := make([]Label, circ.NumGarbler)
		el := make([]Label, circ.NumEvaluator)
		for i := range gl {
			for j := 0; j < LabelSize && i*LabelSize+j < len(labelSrc); j++ {
				gl[i][j] = labelSrc[i*LabelSize+j]
			}
		}
		decode := make([]byte, len(circ.Outputs))
		Evaluate(circ, tables, gl, el, decode)
	})
}
