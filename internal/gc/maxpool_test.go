package gc

import (
	"testing"
	"testing/quick"
)

func TestSignedLessExhaustive5(t *testing.T) {
	const bits = 5
	b := NewBuilder()
	a := b.GarblerInput(bits)
	c := b.EvaluatorInput(bits)
	b.Output(b.SignedLess(a, c))
	circ := b.Finish()
	toSigned := func(x uint64) int64 {
		if x >= 16 {
			return int64(x) - 32
		}
		return int64(x)
	}
	for x := uint64(0); x < 32; x++ {
		for y := uint64(0); y < 32; y++ {
			got := garbleEval(t, circ, UintToBits(x, bits), UintToBits(y, bits), 61)
			want := byte(0)
			if toSigned(x) < toSigned(y) {
				want = 1
			}
			if got[0] != want {
				t.Fatalf("less(%d,%d) = %d, want %d", toSigned(x), toSigned(y), got[0], want)
			}
		}
	}
}

func TestMaxProperty(t *testing.T) {
	const bits = 16
	b := NewBuilder()
	a := b.GarblerInput(bits)
	c := b.EvaluatorInput(bits)
	b.Output(b.Max(a, c)...)
	circ := b.Finish()
	mask := uint64(1<<bits - 1)
	f := func(x, y int16) bool {
		got := BitsToUint(garbleEval(t, circ, UintToBits(uint64(x)&mask, bits), UintToBits(uint64(y)&mask, bits), 62))
		want := int64(x)
		if int64(y) > want {
			want = int64(y)
		}
		return int64(int16(got)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBatchMaxPoolCircuit(t *testing.T) {
	const bits = 8
	const win, n = 4, 3
	for _, withReLU := range []bool{false, true} {
		circ := BatchMaxPoolCircuit(bits, win, n, withReLU)
		mask := uint64(255)
		ys := [][]int64{
			{5, -3, 9, 2},
			{-8, -1, -7, -2},
			{0, 0, 0, 0},
		}
		y1 := make([]uint64, n*win)
		y0 := make([]uint64, n*win)
		z1 := []uint64{13, 200, 77}
		seed := uint64(63)
		for k := 0; k < n; k++ {
			for e := 0; e < win; e++ {
				i := k*win + e
				y1[i] = uint64(i*31+7) & mask
				y0[i] = (uint64(ys[k][e]) - y1[i]) & mask
			}
		}
		gBits := append(VecToBits(y1, bits), VecToBits(z1, bits)...)
		out := garbleEval(t, circ, gBits, VecToBits(y0, bits), seed)
		z0 := BitsToVec(out, bits, n)
		for k := 0; k < n; k++ {
			want := ys[k][0]
			for _, v := range ys[k][1:] {
				if v > want {
					want = v
				}
			}
			if withReLU && want < 0 {
				want = 0
			}
			got := int64(int8((z0[k] + z1[k]) & mask))
			if got != want {
				t.Fatalf("relu=%v window %d: max = %d, want %d", withReLU, k, got, want)
			}
		}
	}
}

func TestArgmaxCircuit(t *testing.T) {
	const bits = 12
	cases := [][]int64{
		{5, -3, 9, 2},
		{-8, -1, -7, -2},
		{7, 7, 7, 7}, // ties: first index wins (strict less for update)
		{1},
		{-5, 100},
	}
	for ci, ys := range cases {
		n := len(ys)
		idxBits := uint(3)
		circ := ArgmaxCircuit(bits, n, idxBits)
		mask := uint64(1<<bits - 1)
		y1 := make([]uint64, n)
		y0 := make([]uint64, n)
		for i, y := range ys {
			y1[i] = uint64(i*97+13) & mask
			y0[i] = (uint64(y) - y1[i]) & mask
		}
		maskBitsVal := uint64(5) // arbitrary garbler mask
		gBits := append(VecToBits(y1, bits), UintToBits(maskBitsVal, idxBits)...)
		out := garbleEval(t, circ, gBits, VecToBits(y0, bits), uint64(64+ci))
		got := BitsToUint(out) ^ maskBitsVal
		want := 0
		for i, y := range ys {
			if y > ys[want] {
				want = i
			}
			_ = i
		}
		if got != uint64(want) {
			t.Fatalf("case %d: argmax = %d, want %d", ci, got, want)
		}
	}
}

func TestPopCountCircuit(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 15, 16, 33} {
		b := NewBuilder()
		xs := b.GarblerInput(n)
		_ = b.EvaluatorInput(0)
		out := b.PopCount(xs)
		b.Output(out...)
		circ := b.Finish()
		need := 1
		for (1 << need) < n+1 {
			need++
		}
		if len(out) != need {
			t.Fatalf("n=%d: popcount width %d, want %d", n, len(out), need)
		}
		// Test a few patterns including all-zero and all-one.
		patterns := [][]byte{make([]byte, n), nil, nil}
		patterns[1] = make([]byte, n)
		for i := range patterns[1] {
			patterns[1][i] = 1
		}
		patterns[2] = make([]byte, n)
		for i := range patterns[2] {
			patterns[2][i] = byte((i * 7) % 2)
		}
		for pi, p := range patterns {
			want := uint64(0)
			for _, v := range p {
				want += uint64(v)
			}
			got := BitsToUint(garbleEval(t, circ, p, nil, uint64(70+pi)))
			if got != want {
				t.Fatalf("n=%d pattern %d: popcount %d, want %d", n, pi, got, want)
			}
		}
	}
}

func TestMulModExhaustive4(t *testing.T) {
	const bits = 4
	b := NewBuilder()
	a := b.GarblerInput(bits)
	c := b.EvaluatorInput(bits)
	b.Output(b.MulMod(a, c)...)
	circ := b.Finish()
	for x := uint64(0); x < 16; x++ {
		for y := uint64(0); y < 16; y++ {
			got := BitsToUint(garbleEval(t, circ, UintToBits(x, bits), UintToBits(y, bits), 90))
			if got != (x*y)&15 {
				t.Fatalf("%d*%d = %d, want %d", x, y, got, (x*y)&15)
			}
		}
	}
}

func TestGreaterConst(t *testing.T) {
	const bits = 6
	b := NewBuilder()
	x := b.GarblerInput(bits)
	_ = b.EvaluatorInput(0)
	b.Output(b.GreaterConst(x, 25))
	circ := b.Finish()
	for v := uint64(0); v < 64; v++ {
		got := garbleEval(t, circ, UintToBits(v, bits), nil, 80)
		want := byte(0)
		if v > 25 {
			want = 1
		}
		if got[0] != want {
			t.Fatalf("greater(%d, 25) = %d, want %d", v, got[0], want)
		}
	}
}

func TestArgmaxCircuitPanicsOnNarrowIndex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for 2^idxBits < n")
		}
	}()
	ArgmaxCircuit(8, 5, 2)
}
