package gc

// Circuit constructors for ABNN2's non-linear layers. All word values are
// little-endian bit vectors over the ring Z_2^bits; input conventions
// follow the paper's role assignment: the client (garbler) holds y1 and
// fresh output shares z1, the server (evaluator) holds y0 and learns z0.

// BatchReLUCircuit builds the Algorithm-2 circuit for n neurons of the
// given bit width:
//
//	for each neuron k: y = y0[k] + y1[k] mod 2^bits
//	                   z0[k] = ReLU(y) - z1[k] mod 2^bits
//
// Garbler inputs: y1 (n*bits), then z1 (n*bits). Evaluator inputs: y0
// (n*bits). Outputs: z0 (n*bits), revealed to the evaluator.
// Cost: about 3*bits AND gates per neuron.
func BatchReLUCircuit(bits uint, n int) *Circuit {
	b := NewBuilder()
	l := int(bits)
	y1 := b.GarblerInput(n * l)
	z1 := b.GarblerInput(n * l)
	y0 := b.EvaluatorInput(n * l)
	for k := 0; k < n; k++ {
		y := b.AdderMod(y0[k*l:(k+1)*l], y1[k*l:(k+1)*l])
		pos := b.NOT(y[l-1]) // 1 when y >= 0 in two's complement
		relu := b.AndBit(pos, y)
		z0 := b.SubMod(relu, z1[k*l:(k+1)*l])
		b.Output(z0...)
	}
	return b.Finish()
}

// BatchSignCircuit builds the comparison-only circuit used by the
// optimised ReLU (paper section 4.2): it reveals, per neuron, the single
// bit b = 1 iff y0 + y1 >= 0 (z0 > -z1 in the paper's phrasing), and
// nothing else passes through the circuit. Cost: about bits-1 AND gates
// per neuron — one third of the Algorithm-2 circuit.
//
// Garbler inputs: y1 (n*bits). Evaluator inputs: y0 (n*bits).
// Outputs: n sign bits, revealed to the evaluator.
func BatchSignCircuit(bits uint, n int) *Circuit {
	b := NewBuilder()
	l := int(bits)
	y1 := b.GarblerInput(n * l)
	y0 := b.EvaluatorInput(n * l)
	for k := 0; k < n; k++ {
		y := b.AdderMod(y0[k*l:(k+1)*l], y1[k*l:(k+1)*l])
		b.Output(b.NOT(y[l-1]))
	}
	return b.Finish()
}

// BatchFuncCircuit builds the generic Algorithm-2 circuit for an arbitrary
// bitwise-defined activation given as a sub-circuit factory: f receives
// the builder and the reconstructed y bits and returns the activated bits.
// It is exported so downstream users can plug activations other than ReLU
// into the same reshare pattern.
func BatchFuncCircuit(bits uint, n int, f func(b *Builder, y []int) []int) *Circuit {
	b := NewBuilder()
	l := int(bits)
	y1 := b.GarblerInput(n * l)
	z1 := b.GarblerInput(n * l)
	y0 := b.EvaluatorInput(n * l)
	for k := 0; k < n; k++ {
		y := b.AdderMod(y0[k*l:(k+1)*l], y1[k*l:(k+1)*l])
		act := f(b, y)
		z0 := b.SubMod(act, z1[k*l:(k+1)*l])
		b.Output(z0...)
	}
	return b.Finish()
}

// BatchMaxPoolCircuit builds the secure max-pooling circuit for n
// windows of `win` values each (non-overlapping pooling): per window,
// reconstruct each y = y0 + y1, take the tournament max (optionally
// clamped at zero, fusing the ReLU into the pool since
// max(relu(x_i)) == relu(max(x_i))), and reshare as z0 = result - z1.
//
// Garbler inputs: y1 (n*win words), then z1 (n words). Evaluator inputs:
// y0 (n*win words). Outputs: z0 (n words), revealed to the evaluator.
// Inputs are ordered window-by-window; the caller gathers values into
// window order.
func BatchMaxPoolCircuit(bits uint, win, n int, withReLU bool) *Circuit {
	if win < 1 {
		panic("gc: pooling window must be at least 1")
	}
	b := NewBuilder()
	l := int(bits)
	y1 := b.GarblerInput(n * win * l)
	z1 := b.GarblerInput(n * l)
	y0 := b.EvaluatorInput(n * win * l)
	for k := 0; k < n; k++ {
		base := k * win * l
		best := b.AdderMod(y0[base:base+l], y1[base:base+l])
		for e := 1; e < win; e++ {
			off := base + e*l
			y := b.AdderMod(y0[off:off+l], y1[off:off+l])
			best = b.Max(best, y)
		}
		if withReLU {
			pos := b.NOT(best[l-1])
			best = b.AndBit(pos, best)
		}
		z0 := b.SubMod(best, z1[k*l:(k+1)*l])
		b.Output(z0...)
	}
	return b.Finish()
}

// BatchArgmaxCircuit is ArgmaxCircuit over `batch` independent samples
// in one circuit (one protocol round for a whole prediction batch).
// Garbler inputs: y1 (batch*n words), masks (batch*idxBits). Evaluator:
// y0 (batch*n words). Outputs: batch masked indices.
func BatchArgmaxCircuit(bits uint, n int, idxBits uint, batch int) *Circuit {
	if n < 1 || uint64(n) > 1<<idxBits {
		panic("gc: argmax index width too small")
	}
	b := NewBuilder()
	l := int(bits)
	ib := int(idxBits)
	y1 := b.GarblerInput(batch * n * l)
	masks := b.GarblerInput(batch * ib)
	y0 := b.EvaluatorInput(batch * n * l)
	for s := 0; s < batch; s++ {
		base := s * n * l
		best := b.AdderMod(y0[base:base+l], y1[base:base+l])
		zero := b.XOR(best[0], best[0])
		one := b.constOne(zero)
		bestIdx := make([]int, ib)
		for i := range bestIdx {
			bestIdx[i] = zero
		}
		for e := 1; e < n; e++ {
			off := base + e*l
			y := b.AdderMod(y0[off:off+l], y1[off:off+l])
			gt := b.SignedLess(best, y)
			best = b.MuxVec(gt, y, best)
			candIdx := make([]int, ib)
			for i := range candIdx {
				if (e>>uint(i))&1 == 1 {
					candIdx[i] = one
				} else {
					candIdx[i] = zero
				}
			}
			bestIdx = b.MuxVec(gt, candIdx, bestIdx)
		}
		for i := 0; i < ib; i++ {
			b.Output(b.XOR(bestIdx[i], masks[s*ib+i]))
		}
	}
	return b.Finish()
}

// ArgmaxCircuit builds a secure argmax over n words: it reconstructs
// every y = y0 + y1, runs a tournament carrying the running index, and
// outputs the winning index XOR a garbler-chosen mask (so the evaluator
// learns nothing: it forwards the masked index to the garbler, who
// unmasks). idxBits index bits must satisfy 2^idxBits >= n.
//
// Garbler inputs: y1 (n words), mask (idxBits). Evaluator: y0 (n words).
// Outputs: masked index (idxBits bits).
func ArgmaxCircuit(bits uint, n int, idxBits uint) *Circuit {
	if n < 1 || uint64(n) > 1<<idxBits {
		panic("gc: argmax index width too small")
	}
	b := NewBuilder()
	l := int(bits)
	ib := int(idxBits)
	y1 := b.GarblerInput(n * l)
	mask := b.GarblerInput(ib)
	y0 := b.EvaluatorInput(n * l)
	best := b.AdderMod(y0[0:l], y1[0:l])
	// Index 0 as constant wires.
	zero := b.XOR(best[0], best[0]) // constant 0 (free)
	bestIdx := make([]int, ib)
	for i := range bestIdx {
		bestIdx[i] = zero
	}
	for e := 1; e < n; e++ {
		y := b.AdderMod(y0[e*l:(e+1)*l], y1[e*l:(e+1)*l])
		gt := b.SignedLess(best, y) // candidate wins
		best = b.MuxVec(gt, y, best)
		// Candidate index e as constants.
		candIdx := make([]int, ib)
		one := b.constOne(zero)
		for i := range candIdx {
			if (e>>uint(i))&1 == 1 {
				candIdx[i] = one
			} else {
				candIdx[i] = zero
			}
		}
		bestIdx = b.MuxVec(gt, candIdx, bestIdx)
	}
	for i := 0; i < ib; i++ {
		b.Output(b.XOR(bestIdx[i], mask[i]))
	}
	return b.Finish()
}

// PopCount appends a Wallace-style counter returning the number of set
// bits among the inputs as a little-endian word of ceil(log2(n+1)) bits.
// Cost: about n AND gates (each full adder costs one AND via AdderMod on
// growing widths; we use a balanced tree of ripple adders).
func (b *Builder) PopCount(xs []int) []int {
	if len(xs) == 0 {
		panic("gc: popcount of nothing")
	}
	// Start with 1-bit words, repeatedly add pairs, widening by one bit
	// per level (sum of two k-bit counts fits in k+1 bits).
	words := make([][]int, len(xs))
	for i, x := range xs {
		words[i] = []int{x}
	}
	for len(words) > 1 {
		var next [][]int
		for i := 0; i+1 < len(words); i += 2 {
			a, c := words[i], words[i+1]
			// Widen both to len+1 with a constant-0 wire.
			zero := b.XOR(a[0], a[0])
			aw := append(append([]int{}, a...), zero)
			cw := append(append([]int{}, c...), zero)
			for len(aw) < len(cw) {
				aw = append(aw, zero)
			}
			for len(cw) < len(aw) {
				cw = append(cw, zero)
			}
			next = append(next, b.AdderMod(aw, cw))
		}
		if len(words)%2 == 1 {
			next = append(next, words[len(words)-1])
		}
		words = next
	}
	// The count fits in ceil(log2(n+1)) bits; higher wires are constant 0
	// (the widened adders never wrap), so trim to the canonical width.
	need := 1
	for (1 << need) < len(xs)+1 {
		need++
	}
	out := words[0]
	if len(out) > need {
		out = out[:need]
	}
	for len(out) < need {
		out = append(out, b.XOR(xs[0], xs[0]))
	}
	return out
}

// GreaterConst appends the comparison [x > k] for an unsigned word x and
// a public constant k, via x - k - 1 borrow logic: compute x + (~k) and
// take the carry out (x > k over the natural numbers when the k+1
// subtraction does not borrow). Implemented as: lt = SignedLess over
// width+1 with zero-extension, negated.
func (b *Builder) GreaterConst(x []int, k uint64) int {
	zero := b.XOR(x[0], x[0])
	one := b.constOne(x[0])
	// Zero-extend x by one bit so the comparison is unsigned.
	xw := append(append([]int{}, x...), zero)
	kw := make([]int, len(xw))
	for i := range kw {
		if (k>>uint(i))&1 == 1 {
			kw[i] = one
		} else {
			kw[i] = zero
		}
	}
	// x > k  <=>  k < x (both non-negative in the widened signed view).
	return b.SignedLess(kw, xw)
}

// UintToBits expands the low `bits` bits of x, LSB first, one byte per bit.
func UintToBits(x uint64, bits uint) []byte {
	out := make([]byte, bits)
	for i := uint(0); i < bits; i++ {
		out[i] = byte((x >> i) & 1)
	}
	return out
}

// BitsToUint packs a little-endian bit vector back into a uint64.
func BitsToUint(bits []byte) uint64 {
	var x uint64
	for i, b := range bits {
		x |= uint64(b&1) << uint(i)
	}
	return x
}

// VecToBits concatenates UintToBits for each element.
func VecToBits(xs []uint64, bits uint) []byte {
	out := make([]byte, 0, uint(len(xs))*bits)
	for _, x := range xs {
		out = append(out, UintToBits(x, bits)...)
	}
	return out
}

// BitsToVec splits a concatenated bit vector into n values of the given
// width.
func BitsToVec(b []byte, bits uint, n int) []uint64 {
	out := make([]uint64, n)
	for k := 0; k < n; k++ {
		out[k] = BitsToUint(b[uint(k)*bits : uint(k+1)*bits])
	}
	return out
}
