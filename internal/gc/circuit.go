// Package gc implements Yao's garbled-circuit protocol with the modern
// optimisations the paper's GC layer relies on: free-XOR (XOR gates cost
// nothing), point-and-permute, and half-gates AND garbling (two
// ciphertexts per AND gate). ABNN2 evaluates its non-linear layers
// (Algorithm 2 and the optimised ReLU of section 4.2) inside this
// machinery, with the client as garbler and the server as evaluator.
//
// Circuits are built by both parties deterministically from public layer
// parameters, so only garbled tables, input labels and decode bits cross
// the wire.
package gc

import "fmt"

// GateKind enumerates circuit gate types. XOR and INV are free under
// free-XOR garbling; AND costs two ciphertexts.
type GateKind uint8

const (
	GateXOR GateKind = iota
	GateAND
	GateINV // out = NOT a (b unused)
)

// Gate is one two-input boolean gate over wire indices.
type Gate struct {
	Kind GateKind
	A, B int
	Out  int
}

// Circuit is a boolean circuit over single-bit wires. Wires [0,
// NumGarbler) belong to the garbler's input, the next NumEvaluator wires
// to the evaluator's input; gate outputs follow.
type Circuit struct {
	NumGarbler   int
	NumEvaluator int
	NumWires     int
	Gates        []Gate
	Outputs      []int
}

// NumAND returns the number of AND gates, the communication-relevant size
// of the circuit (XOR and INV are free).
func (c *Circuit) NumAND() int {
	n := 0
	for _, g := range c.Gates {
		if g.Kind == GateAND {
			n++
		}
	}
	return n
}

// TableBytes returns the size of the garbled tables on the wire: two
// LabelSize ciphertexts per AND gate.
func (c *Circuit) TableBytes() int { return c.NumAND() * 2 * LabelSize }

// Builder incrementally constructs a Circuit. Obtain one from NewBuilder,
// declare inputs first, then compose gates, then Finish.
type Builder struct {
	c      Circuit
	inputs bool // input declaration phase over?
}

// NewBuilder returns an empty circuit builder.
func NewBuilder() *Builder { return &Builder{} }

// GarblerInput reserves n garbler-input wires and returns their indices.
// All garbler inputs must be declared before evaluator inputs.
func (b *Builder) GarblerInput(n int) []int {
	if b.c.NumEvaluator > 0 || b.inputs {
		panic("gc: garbler inputs must be declared first")
	}
	ws := make([]int, n)
	for i := range ws {
		ws[i] = b.c.NumWires
		b.c.NumWires++
	}
	b.c.NumGarbler += n
	return ws
}

// EvaluatorInput reserves n evaluator-input wires and returns their
// indices.
func (b *Builder) EvaluatorInput(n int) []int {
	if b.inputs {
		panic("gc: inputs must be declared before gates")
	}
	ws := make([]int, n)
	for i := range ws {
		ws[i] = b.c.NumWires
		b.c.NumWires++
	}
	b.c.NumEvaluator += n
	return ws
}

func (b *Builder) newWire() int {
	b.inputs = true
	w := b.c.NumWires
	b.c.NumWires++
	return w
}

// XOR appends an XOR gate and returns its output wire.
func (b *Builder) XOR(a, c int) int {
	out := b.newWire()
	b.c.Gates = append(b.c.Gates, Gate{Kind: GateXOR, A: a, B: c, Out: out})
	return out
}

// AND appends an AND gate and returns its output wire.
func (b *Builder) AND(a, c int) int {
	out := b.newWire()
	b.c.Gates = append(b.c.Gates, Gate{Kind: GateAND, A: a, B: c, Out: out})
	return out
}

// NOT appends an inverter and returns its output wire.
func (b *Builder) NOT(a int) int {
	out := b.newWire()
	b.c.Gates = append(b.c.Gates, Gate{Kind: GateINV, A: a, Out: out})
	return out
}

// OR computes a OR c = NOT(NOT a AND NOT c) — one AND gate.
func (b *Builder) OR(a, c int) int {
	return b.NOT(b.AND(b.NOT(a), b.NOT(c)))
}

// Output marks wires as circuit outputs, in order.
func (b *Builder) Output(ws ...int) { b.c.Outputs = append(b.c.Outputs, ws...) }

// Finish validates and returns the circuit.
func (b *Builder) Finish() *Circuit {
	for _, g := range b.c.Gates {
		if g.A < 0 || g.A >= g.Out || (g.Kind != GateINV && (g.B < 0 || g.B >= g.Out)) {
			panic(fmt.Sprintf("gc: gate output %d depends on later wire", g.Out))
		}
	}
	for _, o := range b.c.Outputs {
		if o < 0 || o >= b.c.NumWires {
			panic(fmt.Sprintf("gc: output wire %d out of range", o))
		}
	}
	c := b.c
	return &c
}

// --- word-level helpers (little-endian bit vectors) ---

// AdderMod appends a ripple-carry adder computing (a + b) mod 2^len(a).
// The final carry is simply dropped, which is why the modular reduction
// costs no extra gates — the property the paper highlights in section 4.2
// ("no extra cost required to complete the non-XOR gates corresponding to
// the modulo operation"). One AND gate per bit except the last.
func (b *Builder) AdderMod(a, c []int) []int {
	if len(a) != len(c) {
		panic("gc: adder operand width mismatch")
	}
	n := len(a)
	sum := make([]int, n)
	carry := -1
	for i := 0; i < n; i++ {
		if carry < 0 {
			sum[i] = b.XOR(a[i], c[i])
			if i < n-1 {
				carry = b.AND(a[i], c[i])
			}
		} else {
			axc := b.XOR(a[i], carry)
			sum[i] = b.XOR(axc, c[i])
			if i < n-1 {
				// carry' = (a^carry)(b^carry) ^ carry
				bxc := b.XOR(c[i], carry)
				carry = b.XOR(b.AND(axc, bxc), carry)
			}
		}
	}
	return sum
}

// SubMod appends a subtractor computing (a - b) mod 2^len(a) as
// a + NOT(b) + 1 via a ripple-carry chain with initial carry 1.
func (b *Builder) SubMod(a, c []int) []int {
	if len(a) != len(c) {
		panic("gc: subtractor operand width mismatch")
	}
	n := len(a)
	diff := make([]int, n)
	// carry-in = 1 for bit 0: sum0 = a0 ^ ~b0 ^ 1 = a0 ^ b0;
	// carry1 = (a0^1)(~b0^1) ^ 1 = OR(a0, ~b0) ... implement uniformly by
	// tracking carry as a wire; seed with a constant-1 derived wire.
	one := b.constOne(a[0])
	nb := make([]int, n)
	for i := range c {
		nb[i] = b.NOT(c[i])
	}
	carry := one
	for i := 0; i < n; i++ {
		axc := b.XOR(a[i], carry)
		diff[i] = b.XOR(axc, nb[i])
		if i < n-1 {
			bxc := b.XOR(nb[i], carry)
			carry = b.XOR(b.AND(axc, bxc), carry)
		}
	}
	return diff
}

// constOne synthesises a constant-1 wire as w XOR NOT(w) for any existing
// wire w; both gates are free under free-XOR garbling.
func (b *Builder) constOne(w int) int {
	return b.XOR(w, b.NOT(w))
}

// MuxVec appends a word multiplexer: out = sel ? a : c (bitwise
// out_i = c_i XOR sel AND (a_i XOR c_i)). One AND per bit.
func (b *Builder) MuxVec(sel int, a, c []int) []int {
	if len(a) != len(c) {
		panic("gc: mux operand width mismatch")
	}
	out := make([]int, len(a))
	for i := range a {
		d := b.XOR(a[i], c[i])
		out[i] = b.XOR(c[i], b.AND(sel, d))
	}
	return out
}

// MulMod appends a shift-and-add multiplier computing (a * c) mod
// 2^len(a). About 2*len^2 AND gates — expensive, which is precisely why
// ABNN2 keeps multiplications out of GC and in the OT domain; provided
// for activations that need products (e.g. the square activation of
// CryptoNets-style networks).
func (b *Builder) MulMod(a, c []int) []int {
	if len(a) != len(c) {
		panic("gc: multiplier operand width mismatch")
	}
	n := len(a)
	zero := b.XOR(a[0], a[0])
	acc := make([]int, n)
	for i := range acc {
		acc[i] = zero
	}
	for i := 0; i < n; i++ {
		// partial = (a AND c_i) << i, truncated to n bits.
		partial := make([]int, n)
		for k := 0; k < i; k++ {
			partial[k] = zero
		}
		for k := i; k < n; k++ {
			partial[k] = b.AND(c[i], a[k-i])
		}
		acc = b.AdderMod(acc, partial)
	}
	return acc
}

// SignedLess appends a two's-complement comparator returning the single
// bit [a < b]. With d = a - b:
//
//	a < b  <=>  (sign(a) AND NOT sign(b)) OR (sign(a) == sign(b) AND sign(d))
//
// The two disjuncts are mutually exclusive, so OR is a free XOR.
// Cost: one subtractor (len-1 ANDs) plus 2 ANDs.
func (b *Builder) SignedLess(a, c []int) int {
	if len(a) != len(c) {
		panic("gc: comparator operand width mismatch")
	}
	n := len(a)
	d := b.SubMod(a, c)
	as, cs, ds := a[n-1], c[n-1], d[n-1]
	neg := b.AND(as, b.NOT(cs))            // a<0, b>=0
	sameSign := b.NOT(b.XOR(as, cs))       // signs equal
	return b.XOR(neg, b.AND(sameSign, ds)) // exclusive cases
}

// Max appends out = max(a, c) for signed words: one comparator plus one
// word mux.
func (b *Builder) Max(a, c []int) []int {
	lt := b.SignedLess(a, c)
	return b.MuxVec(lt, c, a)
}

// AndBit appends out_i = sel AND a_i for every bit of a.
func (b *Builder) AndBit(sel int, a []int) []int {
	out := make([]int, len(a))
	for i := range a {
		out[i] = b.AND(sel, a[i])
	}
	return out
}
