package gc

import (
	"testing"

	"abnn2/internal/prg"
)

// garbleEval runs Garble+Evaluate locally (no network) with the given
// input bits and returns the output bits.
func garbleEval(t *testing.T, c *Circuit, gBits, eBits []byte, seed uint64) []byte {
	t.Helper()
	g, err := Garble(c, gBits, prg.New(prg.SeedFromInt(seed)))
	if err != nil {
		t.Fatalf("garble: %v", err)
	}
	evalLabels := make([]Label, c.NumEvaluator)
	for i := range evalLabels {
		evalLabels[i] = g.EvalPairs[i][eBits[i]&1]
	}
	out, err := Evaluate(c, g.Tables, g.GarblerLabels, evalLabels, g.Decode)
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	return out
}

func TestGateTruthTables(t *testing.T) {
	build := func(kind GateKind) *Circuit {
		b := NewBuilder()
		a := b.GarblerInput(1)
		c := b.EvaluatorInput(1)
		var out int
		switch kind {
		case GateXOR:
			out = b.XOR(a[0], c[0])
		case GateAND:
			out = b.AND(a[0], c[0])
		}
		b.Output(out)
		return b.Finish()
	}
	truth := map[GateKind][4]byte{
		GateXOR: {0, 1, 1, 0},
		GateAND: {0, 0, 0, 1},
	}
	for kind, tt := range truth {
		c := build(kind)
		for x := 0; x < 2; x++ {
			for y := 0; y < 2; y++ {
				got := garbleEval(t, c, []byte{byte(x)}, []byte{byte(y)}, uint64(17+x*2+y))
				if got[0] != tt[x*2+y] {
					t.Errorf("kind=%d x=%d y=%d: got %d want %d", kind, x, y, got[0], tt[x*2+y])
				}
			}
		}
	}
}

func TestNotAndOr(t *testing.T) {
	b := NewBuilder()
	a := b.GarblerInput(1)
	c := b.EvaluatorInput(1)
	b.Output(b.NOT(a[0]), b.OR(a[0], c[0]))
	circ := b.Finish()
	for x := 0; x < 2; x++ {
		for y := 0; y < 2; y++ {
			got := garbleEval(t, circ, []byte{byte(x)}, []byte{byte(y)}, uint64(31+x*2+y))
			if got[0] != byte(1-x) {
				t.Errorf("NOT %d = %d", x, got[0])
			}
			wantOr := byte(0)
			if x == 1 || y == 1 {
				wantOr = 1
			}
			if got[1] != wantOr {
				t.Errorf("OR %d %d = %d", x, y, got[1])
			}
		}
	}
}

func TestAdderModExhaustive4(t *testing.T) {
	const bits = 4
	b := NewBuilder()
	a := b.GarblerInput(bits)
	c := b.EvaluatorInput(bits)
	b.Output(b.AdderMod(a, c)...)
	circ := b.Finish()
	for x := uint64(0); x < 16; x++ {
		for y := uint64(0); y < 16; y++ {
			got := BitsToUint(garbleEval(t, circ, UintToBits(x, bits), UintToBits(y, bits), 51))
			if got != (x+y)%16 {
				t.Fatalf("%d+%d = %d, want %d", x, y, got, (x+y)%16)
			}
		}
	}
}

func TestSubModExhaustive4(t *testing.T) {
	const bits = 4
	b := NewBuilder()
	a := b.GarblerInput(bits)
	c := b.EvaluatorInput(bits)
	b.Output(b.SubMod(a, c)...)
	circ := b.Finish()
	for x := uint64(0); x < 16; x++ {
		for y := uint64(0); y < 16; y++ {
			got := BitsToUint(garbleEval(t, circ, UintToBits(x, bits), UintToBits(y, bits), 52))
			if got != (x-y)&15 {
				t.Fatalf("%d-%d = %d, want %d", x, y, got, (x-y)&15)
			}
		}
	}
}

func TestMuxVec(t *testing.T) {
	const bits = 8
	b := NewBuilder()
	in := b.GarblerInput(2*bits + 1)
	sel := in[2*bits]
	_ = b.EvaluatorInput(0)
	b.Output(b.MuxVec(sel, in[:bits], in[bits:2*bits])...)
	circ := b.Finish()
	a, c := uint64(0xA5), uint64(0x3C)
	for _, s := range []byte{0, 1} {
		gBits := append(append(UintToBits(a, bits), UintToBits(c, bits)...), s)
		got := BitsToUint(garbleEval(t, circ, gBits, nil, 53))
		want := c
		if s == 1 {
			want = a
		}
		if got != want {
			t.Errorf("mux sel=%d got %x want %x", s, got, want)
		}
	}
}

func TestBatchReLUCircuit(t *testing.T) {
	const bits = 8
	const n = 3
	circ := BatchReLUCircuit(bits, n)
	if circ.NumGarbler != 2*n*bits || circ.NumEvaluator != n*bits {
		t.Fatalf("input wires %d/%d", circ.NumGarbler, circ.NumEvaluator)
	}
	// y values: 100 (positive), -9 (negative), 0.
	ys := []int64{100, -9, 0}
	mask := uint64(255)
	y1 := []uint64{7, 250, 13}
	z1 := []uint64{99, 1, 200}
	y0 := make([]uint64, n)
	for k, y := range ys {
		y0[k] = (uint64(y) - y1[k]) & mask
	}
	gBits := append(VecToBits(y1, bits), VecToBits(z1, bits)...)
	out := garbleEval(t, circ, gBits, VecToBits(y0, bits), 54)
	z0 := BitsToVec(out, bits, n)
	for k, y := range ys {
		relu := uint64(0)
		if y > 0 {
			relu = uint64(y)
		}
		if got := (z0[k] + z1[k]) & mask; got != relu {
			t.Errorf("neuron %d: reconstructed %d, want %d", k, got, relu)
		}
	}
}

func TestBatchSignCircuit(t *testing.T) {
	const bits = 8
	ys := []int64{5, -5, 0, 127, -128}
	n := len(ys)
	circ := BatchSignCircuit(bits, n)
	mask := uint64(255)
	y1 := []uint64{11, 22, 33, 44, 55}
	y0 := make([]uint64, n)
	for k, y := range ys {
		y0[k] = (uint64(y) - y1[k]) & mask
	}
	out := garbleEval(t, circ, VecToBits(y1, bits), VecToBits(y0, bits), 55)
	for k, y := range ys {
		want := byte(0)
		if y >= 0 {
			want = 1
		}
		if out[k] != want {
			t.Errorf("neuron %d (y=%d): sign bit %d want %d", k, y, out[k], want)
		}
	}
}

func TestBatchFuncCircuitIdentity(t *testing.T) {
	const bits = 6
	circ := BatchFuncCircuit(bits, 1, func(b *Builder, y []int) []int { return y })
	y1, z1 := uint64(17), uint64(40)
	y := uint64(33)
	y0 := (y - y1) & 63
	gBits := append(UintToBits(y1, bits), UintToBits(z1, bits)...)
	out := BitsToUint(garbleEval(t, circ, gBits, UintToBits(y0, bits), 56))
	if got := (out + z1) & 63; got != y {
		t.Errorf("identity activation: got %d want %d", got, y)
	}
}

func TestNumANDCounts(t *testing.T) {
	const bits = 32
	relu := BatchReLUCircuit(bits, 1)
	sign := BatchSignCircuit(bits, 1)
	if relu.NumAND() <= sign.NumAND() {
		t.Errorf("ReLU ANDs (%d) should exceed sign-only ANDs (%d)", relu.NumAND(), sign.NumAND())
	}
	// Sign circuit should cost roughly one adder: bits-1 ANDs.
	if sign.NumAND() != bits-1 {
		t.Errorf("sign ANDs = %d, want %d", sign.NumAND(), bits-1)
	}
	// Alg-2 ReLU: adder (bits-1) + and-bit (bits) + sub (bits-1).
	if want := 3*bits - 2; relu.NumAND() != want {
		t.Errorf("relu ANDs = %d, want %d", relu.NumAND(), want)
	}
}

func TestGarbleInputLengthError(t *testing.T) {
	c := BatchSignCircuit(8, 1)
	if _, err := Garble(c, []byte{1}, prg.New(prg.SeedFromInt(1))); err == nil {
		t.Error("short garbler bits accepted")
	}
}

func TestEvaluateValidation(t *testing.T) {
	c := BatchSignCircuit(8, 1)
	g, err := Garble(c, make([]byte, c.NumGarbler), prg.New(prg.SeedFromInt(2)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(c, g.Tables[:len(g.Tables)-1], g.GarblerLabels, make([]Label, c.NumEvaluator), g.Decode); err == nil {
		t.Error("truncated tables accepted")
	}
	if _, err := Evaluate(c, g.Tables, g.GarblerLabels[:1], make([]Label, c.NumEvaluator), g.Decode); err == nil {
		t.Error("short garbler labels accepted")
	}
}

func TestBitsRoundTrip(t *testing.T) {
	for _, x := range []uint64{0, 1, 0xdeadbeef, 1 << 63} {
		if BitsToUint(UintToBits(x, 64)) != x {
			t.Errorf("roundtrip %x failed", x)
		}
	}
	v := []uint64{3, 9, 250}
	got := BitsToVec(VecToBits(v, 8), 8, 3)
	for i := range v {
		if got[i] != v[i] {
			t.Errorf("vec roundtrip[%d] = %d", i, got[i])
		}
	}
}
