package gc

import (
	"sync"
	"testing"

	"abnn2/internal/prg"
	"abnn2/internal/transport"
)

func setupParties(t *testing.T) (*Garbler, *Evaluator, *transport.Meter, func()) {
	t.Helper()
	ca, cb, m := transport.MeteredPipe()
	var (
		g    *Garbler
		gerr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		g, gerr = NewGarbler(ca, 99, prg.New(prg.SeedFromInt(1)))
	}()
	e, eerr := NewEvaluator(cb, 99, prg.New(prg.SeedFromInt(2)))
	wg.Wait()
	if gerr != nil || eerr != nil {
		t.Fatalf("setup: %v %v", gerr, eerr)
	}
	return g, e, m, func() { ca.Close() }
}

func TestProtocolReLU(t *testing.T) {
	const bits = 16
	ys := []int64{1000, -1000, 0, 32767, -32768, 1, -1}
	n := len(ys)
	g, e, _, done := setupParties(t)
	defer done()
	circ := BatchReLUCircuit(bits, n)
	mask := uint64(1<<bits - 1)
	rng := prg.New(prg.SeedFromInt(3))
	y1 := make([]uint64, n)
	z1 := make([]uint64, n)
	y0 := make([]uint64, n)
	for k, y := range ys {
		y1[k] = rng.Uint64() & mask
		z1[k] = rng.Uint64() & mask
		y0[k] = (uint64(y) - y1[k]) & mask
	}
	var (
		gerr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		gerr = g.Run(circ, append(VecToBits(y1, bits), VecToBits(z1, bits)...))
	}()
	out, eerr := e.Run(circ, VecToBits(y0, bits))
	wg.Wait()
	if gerr != nil || eerr != nil {
		t.Fatalf("run: %v %v", gerr, eerr)
	}
	z0 := BitsToVec(out, bits, n)
	for k, y := range ys {
		relu := uint64(0)
		if y > 0 {
			relu = uint64(y) & mask
		}
		if got := (z0[k] + z1[k]) & mask; got != relu {
			t.Errorf("neuron %d (y=%d): reconstructed %d want %d", k, y, got, relu)
		}
	}
}

func TestProtocolRepeatedRuns(t *testing.T) {
	const bits = 8
	g, e, _, done := setupParties(t)
	defer done()
	circ := BatchSignCircuit(bits, 2)
	for round := 0; round < 3; round++ {
		y1 := []uint64{uint64(round * 10), 200}
		y0 := []uint64{5, 100}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Run(circ, VecToBits(y1, bits)); err != nil {
				t.Errorf("round %d garbler: %v", round, err)
			}
		}()
		out, err := e.Run(circ, VecToBits(y0, bits))
		wg.Wait()
		if err != nil {
			t.Fatalf("round %d evaluator: %v", round, err)
		}
		for k := 0; k < 2; k++ {
			y := (y1[k] + y0[k]) & 255
			want := byte(1)
			if y&128 != 0 {
				want = 0
			}
			if out[k] != want {
				t.Errorf("round %d neuron %d: sign %d want %d (y=%d)", round, k, out[k], want, y)
			}
		}
	}
}

// After setup, each protocol run must take exactly two flights:
// evaluator->garbler OT columns, garbler->evaluator garbled material.
func TestProtocolOnlineFlights(t *testing.T) {
	g, e, meter, done := setupParties(t)
	defer done()
	circ := BatchReLUCircuit(8, 1)
	meter.Reset()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.Run(circ, make([]byte, circ.NumGarbler))
	}()
	if _, err := e.Run(circ, make([]byte, circ.NumEvaluator)); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if f := meter.Snapshot().Flights; f != 2 {
		t.Errorf("online flights = %d, want 2", f)
	}
}

// The garbler->evaluator message size must match the analytic GC cost:
// 2*kappa per AND + kappa per garbler input + kappa*2 per evaluator input
// + packed decode bits.
func TestProtocolCommunicationMatchesFormula(t *testing.T) {
	g, e, meter, done := setupParties(t)
	defer done()
	circ := BatchReLUCircuit(16, 4)
	meter.Reset()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.Run(circ, make([]byte, circ.NumGarbler))
	}()
	if _, err := e.Run(circ, make([]byte, circ.NumEvaluator)); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	s := meter.Snapshot()
	wantGE := int64(circ.TableBytes() + circ.NumGarbler*LabelSize +
		(len(circ.Outputs)+7)/8 + circ.NumEvaluator*2*LabelSize)
	if s.BytesAB != wantGE {
		t.Errorf("garbler sent %d bytes, want %d", s.BytesAB, wantGE)
	}
	wantEG := int64(((circ.NumEvaluator + 7) &^ 7) * 128 / 8)
	if s.BytesBA != wantEG {
		t.Errorf("evaluator sent %d bytes, want %d", s.BytesBA, wantEG)
	}
}
