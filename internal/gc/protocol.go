package gc

import (
	"fmt"

	"abnn2/internal/otext"
	"abnn2/internal/prg"
	"abnn2/internal/transport"
)

// Garbler drives the garbling side of the two-party GC protocol (the
// client in ABNN2). It owns an OT-extension sender used to deliver the
// evaluator's input labels. Not safe for concurrent use.
type Garbler struct {
	conn transport.Conn
	ot   *otext.Sender
	rng  *prg.PRG
}

// Evaluator drives the evaluating side (the server in ABNN2).
type Evaluator struct {
	conn transport.Conn
	ot   *otext.Receiver
}

// NewGarbler sets up the garbling side, running base OTs for the label
// transfers on conn.
func NewGarbler(conn transport.Conn, session uint64, rng *prg.PRG) (*Garbler, error) {
	ot, err := otext.NewSender(conn, otext.RepetitionCode(), session, rng)
	if err != nil {
		return nil, fmt.Errorf("gc: garbler OT setup: %w", err)
	}
	return &Garbler{conn: conn, ot: ot, rng: rng}, nil
}

// NewEvaluator sets up the evaluating side.
func NewEvaluator(conn transport.Conn, session uint64, rng *prg.PRG) (*Evaluator, error) {
	ot, err := otext.NewReceiver(conn, otext.RepetitionCode(), session, rng)
	if err != nil {
		return nil, fmt.Errorf("gc: evaluator OT setup: %w", err)
	}
	return &Evaluator{conn: conn, ot: ot}, nil
}

// Run garbles c under the garbler's input bits and sends everything the
// evaluator needs in a single flight (after receiving the OT column
// matrix). The protocol per invocation is two flights total:
// evaluator -> garbler (OT columns), garbler -> evaluator (tables, labels,
// decode bits, OT ciphertexts).
func (g *Garbler) Run(c *Circuit, garblerBits []byte) error {
	garbled, err := Garble(c, garblerBits, g.rng)
	if err != nil {
		return err
	}
	// OT extension round for the evaluator's input labels.
	var blk *otext.SenderBlock
	if c.NumEvaluator > 0 {
		blk, err = g.ot.Extend(c.NumEvaluator)
		if err != nil {
			return fmt.Errorf("gc: label OT: %w", err)
		}
	}
	msg := make([]byte, 0, len(garbled.Tables)+
		c.NumGarbler*LabelSize+(len(c.Outputs)+7)/8+c.NumEvaluator*2*LabelSize)
	msg = append(msg, garbled.Tables...)
	for _, l := range garbled.GarblerLabels {
		msg = append(msg, l[:]...)
	}
	msg = append(msg, packBits(garbled.Decode)...)
	for i := 0; i < c.NumEvaluator; i++ {
		var ct0, ct1 Label
		pad0 := blk.Pad(i, 0, LabelSize)
		pad1 := blk.Pad(i, 1, LabelSize)
		prg.XORBytes(ct0[:], garbled.EvalPairs[i][0][:], pad0)
		prg.XORBytes(ct1[:], garbled.EvalPairs[i][1][:], pad1)
		msg = append(msg, ct0[:]...)
		msg = append(msg, ct1[:]...)
	}
	if err := g.conn.Send(msg); err != nil {
		return fmt.Errorf("gc: send garbled material: %w", err)
	}
	return nil
}

// Run evaluates c with the evaluator's input bits and returns the decoded
// output bits.
func (e *Evaluator) Run(c *Circuit, evalBits []byte) ([]byte, error) {
	if len(evalBits) != c.NumEvaluator {
		return nil, fmt.Errorf("gc: %d evaluator bits for %d wires", len(evalBits), c.NumEvaluator)
	}
	var blk *otext.ReceiverBlock
	if c.NumEvaluator > 0 {
		choices := make([]int, len(evalBits))
		for i, b := range evalBits {
			choices[i] = int(b & 1)
		}
		var err error
		blk, err = e.ot.Extend(choices)
		if err != nil {
			return nil, fmt.Errorf("gc: label OT: %w", err)
		}
	}
	msg, err := e.conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("gc: recv garbled material: %w", err)
	}
	tb := c.TableBytes()
	decodeBytes := (len(c.Outputs) + 7) / 8
	want := tb + c.NumGarbler*LabelSize + decodeBytes + c.NumEvaluator*2*LabelSize
	if len(msg) != want {
		return nil, fmt.Errorf("gc: garbled material is %d bytes, want %d", len(msg), want)
	}
	tables := msg[:tb]
	off := tb
	garblerLabels := make([]Label, c.NumGarbler)
	for i := range garblerLabels {
		copy(garblerLabels[i][:], msg[off:])
		off += LabelSize
	}
	decode := unpackBits(msg[off:off+decodeBytes], len(c.Outputs))
	off += decodeBytes
	evalLabels := make([]Label, c.NumEvaluator)
	for i := range evalLabels {
		b := evalBits[i] & 1
		ct := msg[off+int(b)*LabelSize : off+int(b)*LabelSize+LabelSize]
		pad := blk.Pad(i, LabelSize)
		prg.XORBytes(evalLabels[i][:], ct, pad)
		off += 2 * LabelSize
	}
	return Evaluate(c, tables, garblerLabels, evalLabels, decode)
}

func packBits(bits []byte) []byte {
	out := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b&1 == 1 {
			out[i/8] |= 1 << (uint(i) % 8)
		}
	}
	return out
}

func unpackBits(b []byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = (b[i/8] >> (uint(i) % 8)) & 1
	}
	return out
}
