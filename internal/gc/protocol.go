package gc

import (
	"fmt"

	"abnn2/internal/otext"
	"abnn2/internal/par"
	"abnn2/internal/prg"
	"abnn2/internal/transport"
)

// Garbler drives the garbling side of the two-party GC protocol (the
// client in ABNN2). It owns an OT-extension sender used to deliver the
// evaluator's input labels. Not safe for concurrent use.
type Garbler struct {
	conn    transport.Conn
	ot      *otext.Sender
	rng     *prg.PRG
	workers int
}

// Evaluator drives the evaluating side (the server in ABNN2).
type Evaluator struct {
	conn    transport.Conn
	ot      *otext.Receiver
	workers int
}

// NewGarbler sets up the garbling side, running base OTs for the label
// transfers on conn.
func NewGarbler(conn transport.Conn, session uint64, rng *prg.PRG) (*Garbler, error) {
	ot, err := otext.NewSender(conn, otext.RepetitionCode(), session, rng)
	if err != nil {
		return nil, fmt.Errorf("gc: garbler OT setup: %w", err)
	}
	return &Garbler{conn: conn, ot: ot, rng: rng}, nil
}

// NewEvaluator sets up the evaluating side.
func NewEvaluator(conn transport.Conn, session uint64, rng *prg.PRG) (*Evaluator, error) {
	ot, err := otext.NewReceiver(conn, otext.RepetitionCode(), session, rng)
	if err != nil {
		return nil, fmt.Errorf("gc: evaluator OT setup: %w", err)
	}
	return &Evaluator{conn: conn, ot: ot}, nil
}

// SetWorkers bounds the kernel parallelism of RunBatch (and of the OT
// extension rounds underneath). 0, the default, means one worker per
// CPU. The wire bytes are identical for every setting.
func (g *Garbler) SetWorkers(n int) {
	g.workers = n
	g.ot.SetWorkers(n)
}

// SetWorkers mirrors Garbler.SetWorkers.
func (e *Evaluator) SetWorkers(n int) {
	e.workers = n
	e.ot.SetWorkers(n)
}

// Run garbles c under the garbler's input bits and sends everything the
// evaluator needs in a single flight (after receiving the OT column
// matrix). The protocol per invocation is two flights total:
// evaluator -> garbler (OT columns), garbler -> evaluator (tables, labels,
// decode bits, OT ciphertexts).
func (g *Garbler) Run(c *Circuit, garblerBits []byte) error {
	garbled, err := Garble(c, garblerBits, g.rng)
	if err != nil {
		return err
	}
	return g.sendGarbled(c, garbled)
}

// RunBatch runs the garbler side for a batch of independent circuits.
// Garbling — the CPU-heavy half — fans out across the shared worker
// pool; the per-circuit randomness is pre-derived sequentially and the
// wire flights go out in batch order, so the transcript is byte-for-byte
// identical for any worker count. The evaluator must mirror the call
// with RunBatch over the same circuits.
func (g *Garbler) RunBatch(circs []*Circuit, bits [][]byte) error {
	if len(circs) != len(bits) {
		return fmt.Errorf("gc: %d circuits for %d input sets", len(circs), len(bits))
	}
	// One child PRG per circuit, derived in order from the garbler's
	// stream: chunk k's labels do not depend on how many goroutines
	// garble, only on k.
	rngs := make([]*prg.PRG, len(circs))
	for i := range rngs {
		rngs[i] = g.rng.Child(fmt.Sprintf("batch/%d", i))
	}
	garbled := make([]*Garbled, len(circs))
	if err := par.ChunksErr(g.workers, len(circs), func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			gb, err := Garble(circs[i], bits[i], rngs[i])
			if err != nil {
				return err
			}
			garbled[i] = gb
		}
		return nil
	}); err != nil {
		return err
	}
	// Communication stays sequential in batch order: one OT round plus
	// one garbled-material flight per circuit, exactly as len(circs)
	// consecutive Run calls would produce.
	for i := range circs {
		if err := g.sendGarbled(circs[i], garbled[i]); err != nil {
			return err
		}
	}
	return nil
}

// sendGarbled performs the communication half of Run: the label OT round
// and the single garbled-material flight.
func (g *Garbler) sendGarbled(c *Circuit, garbled *Garbled) error {
	var blk *otext.SenderBlock
	var err error
	if c.NumEvaluator > 0 {
		blk, err = g.ot.Extend(c.NumEvaluator)
		if err != nil {
			return fmt.Errorf("gc: label OT: %w", err)
		}
	}
	msg := make([]byte, 0, len(garbled.Tables)+
		c.NumGarbler*LabelSize+(len(c.Outputs)+7)/8+c.NumEvaluator*2*LabelSize)
	msg = append(msg, garbled.Tables...)
	for _, l := range garbled.GarblerLabels {
		msg = append(msg, l[:]...)
	}
	msg = append(msg, packBits(garbled.Decode)...)
	for i := 0; i < c.NumEvaluator; i++ {
		var ct0, ct1 Label
		pad0 := blk.Pad(i, 0, LabelSize)
		pad1 := blk.Pad(i, 1, LabelSize)
		prg.XORBytes(ct0[:], garbled.EvalPairs[i][0][:], pad0)
		prg.XORBytes(ct1[:], garbled.EvalPairs[i][1][:], pad1)
		msg = append(msg, ct0[:]...)
		msg = append(msg, ct1[:]...)
	}
	if err := g.conn.Send(msg); err != nil {
		return fmt.Errorf("gc: send garbled material: %w", err)
	}
	return nil
}

// received holds one circuit's parsed garbled material, ready to
// evaluate.
type received struct {
	tables        []byte
	garblerLabels []Label
	evalLabels    []Label
	decode        []byte
}

// Run evaluates c with the evaluator's input bits and returns the decoded
// output bits.
func (e *Evaluator) Run(c *Circuit, evalBits []byte) ([]byte, error) {
	rcv, err := e.recvGarbled(c, evalBits)
	if err != nil {
		return nil, err
	}
	return Evaluate(c, rcv.tables, rcv.garblerLabels, rcv.evalLabels, rcv.decode)
}

// RunBatch runs the evaluator side for a batch of independent circuits,
// mirroring Garbler.RunBatch: the per-circuit OT rounds and receives
// happen sequentially in batch order (fixed wire order), then the
// CPU-heavy evaluation fans out across the shared worker pool. Returns
// the decoded output bits per circuit.
func (e *Evaluator) RunBatch(circs []*Circuit, bits [][]byte) ([][]byte, error) {
	if len(circs) != len(bits) {
		return nil, fmt.Errorf("gc: %d circuits for %d input sets", len(circs), len(bits))
	}
	rcvs := make([]received, len(circs))
	for i := range circs {
		rcv, err := e.recvGarbled(circs[i], bits[i])
		if err != nil {
			return nil, err
		}
		rcvs[i] = rcv
	}
	outs := make([][]byte, len(circs))
	if err := par.ChunksErr(e.workers, len(circs), func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			out, err := Evaluate(circs[i], rcvs[i].tables, rcvs[i].garblerLabels, rcvs[i].evalLabels, rcvs[i].decode)
			if err != nil {
				return err
			}
			outs[i] = out
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return outs, nil
}

// recvGarbled performs the communication half of Run: the label OT round
// and parsing of the garbled-material flight.
func (e *Evaluator) recvGarbled(c *Circuit, evalBits []byte) (received, error) {
	if len(evalBits) != c.NumEvaluator {
		return received{}, fmt.Errorf("gc: %d evaluator bits for %d wires", len(evalBits), c.NumEvaluator)
	}
	var blk *otext.ReceiverBlock
	if c.NumEvaluator > 0 {
		choices := make([]int, len(evalBits))
		for i, b := range evalBits {
			choices[i] = int(b & 1)
		}
		var err error
		blk, err = e.ot.Extend(choices)
		if err != nil {
			return received{}, fmt.Errorf("gc: label OT: %w", err)
		}
	}
	msg, err := e.conn.Recv()
	if err != nil {
		return received{}, fmt.Errorf("gc: recv garbled material: %w", err)
	}
	tb := c.TableBytes()
	decodeBytes := (len(c.Outputs) + 7) / 8
	want := tb + c.NumGarbler*LabelSize + decodeBytes + c.NumEvaluator*2*LabelSize
	if len(msg) != want {
		return received{}, fmt.Errorf("gc: garbled material is %d bytes, want %d", len(msg), want)
	}
	tables := msg[:tb]
	off := tb
	garblerLabels := make([]Label, c.NumGarbler)
	for i := range garblerLabels {
		copy(garblerLabels[i][:], msg[off:])
		off += LabelSize
	}
	decode := unpackBits(msg[off:off+decodeBytes], len(c.Outputs))
	off += decodeBytes
	evalLabels := make([]Label, c.NumEvaluator)
	for i := range evalLabels {
		b := evalBits[i] & 1
		ct := msg[off+int(b)*LabelSize : off+int(b)*LabelSize+LabelSize]
		pad := blk.Pad(i, LabelSize)
		prg.XORBytes(evalLabels[i][:], ct, pad)
		off += 2 * LabelSize
	}
	return received{tables: tables, garblerLabels: garblerLabels, evalLabels: evalLabels, decode: decode}, nil
}

func packBits(bits []byte) []byte {
	out := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b&1 == 1 {
			out[i/8] |= 1 << (uint(i) % 8)
		}
	}
	return out
}

func unpackBits(b []byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = (b[i/8] >> (uint(i) % 8)) & 1
	}
	return out
}
