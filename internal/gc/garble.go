package gc

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"abnn2/internal/prg"
)

// LabelSize is the wire-label width in bytes (kappa = 128 bits).
const LabelSize = 16

// Label is a wire label.
type Label [LabelSize]byte

func (l Label) lsb() byte { return l[0] & 1 }

func xorLabel(a, b Label) Label {
	var out Label
	binary.LittleEndian.PutUint64(out[0:8],
		binary.LittleEndian.Uint64(a[0:8])^binary.LittleEndian.Uint64(b[0:8]))
	binary.LittleEndian.PutUint64(out[8:16],
		binary.LittleEndian.Uint64(a[8:16])^binary.LittleEndian.Uint64(b[8:16]))
	return out
}

// mmoCipher is the fixed-key AES permutation behind the garbling hash.
var mmoCipher = func() cipher.Block {
	sum := sha256.Sum256([]byte("abnn2/gc/halfgates"))
	c, err := aes.NewCipher(sum[:16])
	if err != nil {
		panic(err) // impossible: fixed key length
	}
	return c
}()

// hasher computes the garbling hash H(label, tweak), instantiated as the
// standard fixed-key AES MMO construction pi(x) XOR x with the tweak
// folded into the input (JustGarble / half-gates paper instantiation).
// The scratch buffers live in the struct so the hot loop performs no
// allocations (slices passed through the cipher.Block interface would
// otherwise escape to the heap on every call).
type hasher struct {
	x, e [16]byte
}

func (h *hasher) hash(l Label, tweak uint64) Label {
	binary.LittleEndian.PutUint64(h.x[0:8], binary.LittleEndian.Uint64(l[0:8])^tweak)
	copy(h.x[8:16], l[8:16])
	mmoCipher.Encrypt(h.e[:], h.x[:])
	var out Label
	binary.LittleEndian.PutUint64(out[0:8],
		binary.LittleEndian.Uint64(h.e[0:8])^binary.LittleEndian.Uint64(h.x[0:8]))
	binary.LittleEndian.PutUint64(out[8:16],
		binary.LittleEndian.Uint64(h.e[8:16])^binary.LittleEndian.Uint64(h.x[8:16]))
	return out
}

// Garbled is the garbler's output: everything the evaluator needs except
// the evaluator's own input labels (those are transferred by OT).
type Garbled struct {
	Tables        []byte  // 2 * LabelSize bytes per AND gate, in gate order
	GarblerLabels []Label // active labels for the garbler's inputs
	Decode        []byte  // one permute bit per output wire
	// Evaluator input label pairs, kept by the garbler for the OTs.
	EvalPairs [][2]Label
}

// Garble garbles the circuit under fresh randomness from rng, with the
// garbler's input bits given. Free-XOR with global offset R (lsb 1),
// half-gates for AND, INV by XORing the output-wire semantics with R.
func Garble(c *Circuit, garblerBits []byte, rng *prg.PRG) (*Garbled, error) {
	if len(garblerBits) != c.NumGarbler {
		return nil, fmt.Errorf("gc: %d garbler bits for %d input wires", len(garblerBits), c.NumGarbler)
	}
	var r Label
	copy(r[:], rng.Bytes(LabelSize))
	r[0] |= 1 // point-and-permute: lsb of R must be 1

	zero := make([]Label, c.NumWires) // zero label of every wire
	for i := 0; i < c.NumGarbler+c.NumEvaluator; i++ {
		copy(zero[i][:], rng.Bytes(LabelSize))
	}
	tables := make([]byte, 0, c.TableBytes())
	h := new(hasher)
	var gateIndex uint64
	for _, g := range c.Gates {
		switch g.Kind {
		case GateXOR:
			zero[g.Out] = xorLabel(zero[g.A], zero[g.B])
		case GateINV:
			// NOT flips semantics: label for "out=0" is label for "a=1".
			zero[g.Out] = xorLabel(zero[g.A], r)
		case GateAND:
			a0 := zero[g.A]
			b0 := zero[g.B]
			a1 := xorLabel(a0, r)
			b1 := xorLabel(b0, r)
			pa := a0.lsb()
			pb := b0.lsb()
			j := 2 * gateIndex
			jp := 2*gateIndex + 1
			// Generator half-gate.
			tg := xorLabel(h.hash(a0, j), h.hash(a1, j))
			if pb == 1 {
				tg = xorLabel(tg, r)
			}
			wg := h.hash(a0, j)
			if pa == 1 {
				wg = xorLabel(wg, tg)
			}
			// Evaluator half-gate.
			te := xorLabel(xorLabel(h.hash(b0, jp), h.hash(b1, jp)), a0)
			we := h.hash(b0, jp)
			if pb == 1 {
				we = xorLabel(we, xorLabel(te, a0))
			}
			zero[g.Out] = xorLabel(wg, we)
			tables = append(tables, tg[:]...)
			tables = append(tables, te[:]...)
			gateIndex++
		default:
			return nil, fmt.Errorf("gc: unknown gate kind %d", g.Kind)
		}
	}

	out := &Garbled{Tables: tables}
	out.GarblerLabels = make([]Label, c.NumGarbler)
	for i := 0; i < c.NumGarbler; i++ {
		if garblerBits[i]&1 == 1 {
			out.GarblerLabels[i] = xorLabel(zero[i], r)
		} else {
			out.GarblerLabels[i] = zero[i]
		}
	}
	out.EvalPairs = make([][2]Label, c.NumEvaluator)
	for i := 0; i < c.NumEvaluator; i++ {
		w := c.NumGarbler + i
		out.EvalPairs[i][0] = zero[w]
		out.EvalPairs[i][1] = xorLabel(zero[w], r)
	}
	out.Decode = make([]byte, len(c.Outputs))
	for i, w := range c.Outputs {
		out.Decode[i] = zero[w].lsb()
	}
	return out, nil
}

// Evaluate runs the evaluator over the garbled tables given active labels
// for all inputs, returning the decoded output bits.
func Evaluate(c *Circuit, tables []byte, garblerLabels, evalLabels []Label, decode []byte) ([]byte, error) {
	if len(garblerLabels) != c.NumGarbler || len(evalLabels) != c.NumEvaluator {
		return nil, fmt.Errorf("gc: label count mismatch (%d,%d) want (%d,%d)",
			len(garblerLabels), len(evalLabels), c.NumGarbler, c.NumEvaluator)
	}
	if len(tables) != c.TableBytes() {
		return nil, fmt.Errorf("gc: tables are %d bytes, want %d", len(tables), c.TableBytes())
	}
	if len(decode) != len(c.Outputs) {
		return nil, fmt.Errorf("gc: decode has %d bits, want %d", len(decode), len(c.Outputs))
	}
	active := make([]Label, c.NumWires)
	copy(active, garblerLabels)
	copy(active[c.NumGarbler:], evalLabels)
	h := new(hasher)
	var gateIndex uint64
	for _, g := range c.Gates {
		switch g.Kind {
		case GateXOR:
			active[g.Out] = xorLabel(active[g.A], active[g.B])
		case GateINV:
			active[g.Out] = active[g.A]
		case GateAND:
			var tg, te Label
			copy(tg[:], tables[gateIndex*2*LabelSize:])
			copy(te[:], tables[gateIndex*2*LabelSize+LabelSize:])
			j := 2 * gateIndex
			jp := 2*gateIndex + 1
			a := active[g.A]
			b := active[g.B]
			wg := h.hash(a, j)
			if a.lsb() == 1 {
				wg = xorLabel(wg, tg)
			}
			we := h.hash(b, jp)
			if b.lsb() == 1 {
				we = xorLabel(we, xorLabel(te, a))
			}
			active[g.Out] = xorLabel(wg, we)
			gateIndex++
		default:
			return nil, fmt.Errorf("gc: unknown gate kind %d", g.Kind)
		}
	}
	bits := make([]byte, len(c.Outputs))
	for i, w := range c.Outputs {
		bits[i] = active[w].lsb() ^ decode[i]
	}
	return bits, nil
}
