package gc

import (
	"math/rand"
	"testing"

	"abnn2/internal/prg"
)

// plainEval evaluates a circuit in the clear, the differential oracle for
// the garbling scheme.
func plainEval(c *Circuit, gBits, eBits []byte) []byte {
	wires := make([]byte, c.NumWires)
	copy(wires, gBits)
	copy(wires[c.NumGarbler:], eBits)
	for _, g := range c.Gates {
		switch g.Kind {
		case GateXOR:
			wires[g.Out] = wires[g.A] ^ wires[g.B]
		case GateAND:
			wires[g.Out] = wires[g.A] & wires[g.B]
		case GateINV:
			wires[g.Out] = wires[g.A] ^ 1
		}
	}
	out := make([]byte, len(c.Outputs))
	for i, w := range c.Outputs {
		out[i] = wires[w]
	}
	return out
}

// randomCircuit builds a random DAG circuit with the given gate count.
func randomCircuit(rng *rand.Rand, nG, nE, gates int) *Circuit {
	b := NewBuilder()
	g := b.GarblerInput(nG)
	e := b.EvaluatorInput(nE)
	wires := append(append([]int{}, g...), e...)
	for i := 0; i < gates; i++ {
		a := wires[rng.Intn(len(wires))]
		c := wires[rng.Intn(len(wires))]
		var w int
		switch rng.Intn(4) {
		case 0:
			w = b.XOR(a, c)
		case 1:
			w = b.AND(a, c)
		case 2:
			w = b.NOT(a)
		case 3:
			w = b.OR(a, c)
		}
		wires = append(wires, w)
	}
	// Outputs: a handful of random wires including the last.
	for i := 0; i < 5; i++ {
		b.Output(wires[rng.Intn(len(wires))])
	}
	b.Output(wires[len(wires)-1])
	return b.Finish()
}

// Differential fuzz: garbled evaluation must match plaintext evaluation
// on random circuits and random inputs.
func TestGarbleMatchesPlainOnRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 40; trial++ {
		nG := 1 + rng.Intn(6)
		nE := 1 + rng.Intn(6)
		circ := randomCircuit(rng, nG, nE, 10+rng.Intn(60))
		for rep := 0; rep < 4; rep++ {
			gBits := make([]byte, nG)
			eBits := make([]byte, nE)
			for i := range gBits {
				gBits[i] = byte(rng.Intn(2))
			}
			for i := range eBits {
				eBits[i] = byte(rng.Intn(2))
			}
			want := plainEval(circ, gBits, eBits)
			garbled, err := Garble(circ, gBits, prg.New(prg.SeedFromInt(uint64(trial*10+rep))))
			if err != nil {
				t.Fatalf("trial %d: garble: %v", trial, err)
			}
			evalLabels := make([]Label, nE)
			for i := range evalLabels {
				evalLabels[i] = garbled.EvalPairs[i][eBits[i]]
			}
			got, err := Evaluate(circ, garbled.Tables, garbled.GarblerLabels, evalLabels, garbled.Decode)
			if err != nil {
				t.Fatalf("trial %d: evaluate: %v", trial, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d rep %d output %d: garbled %d, plain %d", trial, rep, i, got[i], want[i])
				}
			}
		}
	}
}

// Corrupting every garbled table must corrupt the output — sanity that
// the evaluator actually uses the tables. (A single flipped ciphertext
// can legitimately be a no-op: half-gates apply each ciphertext only when
// the corresponding active label's permute bit is 1.)
func TestCorruptTablesChangeOutput(t *testing.T) {
	circ := BatchReLUCircuit(16, 2)
	gBits := make([]byte, circ.NumGarbler)
	for i := range gBits {
		gBits[i] = byte(i % 2)
	}
	garbled, err := Garble(circ, gBits, prg.New(prg.SeedFromInt(7)))
	if err != nil {
		t.Fatal(err)
	}
	evalLabels := make([]Label, circ.NumEvaluator)
	for i := range evalLabels {
		evalLabels[i] = garbled.EvalPairs[i][i%2]
	}
	clean, err := Evaluate(circ, garbled.Tables, garbled.GarblerLabels, evalLabels, garbled.Decode)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte{}, garbled.Tables...)
	for i := range corrupt {
		corrupt[i] ^= 0xA7
	}
	dirty, err := Evaluate(circ, corrupt, garbled.GarblerLabels, evalLabels, garbled.Decode)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range clean {
		if clean[i] != dirty[i] {
			same = false
		}
	}
	if same {
		t.Error("corrupting all garbled tables left all outputs unchanged")
	}
}
