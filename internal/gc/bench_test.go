package gc

import (
	"testing"

	"abnn2/internal/prg"
)

func BenchmarkGarbleReLU256x32(b *testing.B) {
	circ := BatchReLUCircuit(32, 256)
	bits := make([]byte, circ.NumGarbler)
	rng := prg.New(prg.SeedFromInt(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Garble(circ, bits, rng); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(circ.NumAND()), "AND-gates")
}

func BenchmarkEvaluateReLU256x32(b *testing.B) {
	circ := BatchReLUCircuit(32, 256)
	bits := make([]byte, circ.NumGarbler)
	g, err := Garble(circ, bits, prg.New(prg.SeedFromInt(2)))
	if err != nil {
		b.Fatal(err)
	}
	evalLabels := make([]Label, circ.NumEvaluator)
	for i := range evalLabels {
		evalLabels[i] = g.EvalPairs[i][0]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(circ, g.Tables, g.GarblerLabels, evalLabels, g.Decode); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildReLUCircuit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = BatchReLUCircuit(32, 256)
	}
}
