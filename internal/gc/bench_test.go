package gc

import (
	"sync"
	"testing"

	"abnn2/internal/prg"
	"abnn2/internal/transport"
)

func BenchmarkGarbleReLU256x32(b *testing.B) {
	circ := BatchReLUCircuit(32, 256)
	bits := make([]byte, circ.NumGarbler)
	rng := prg.New(prg.SeedFromInt(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Garble(circ, bits, rng); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(circ.NumAND()), "AND-gates")
}

func BenchmarkEvaluateReLU256x32(b *testing.B) {
	circ := BatchReLUCircuit(32, 256)
	bits := make([]byte, circ.NumGarbler)
	g, err := Garble(circ, bits, prg.New(prg.SeedFromInt(2)))
	if err != nil {
		b.Fatal(err)
	}
	evalLabels := make([]Label, circ.NumEvaluator)
	for i := range evalLabels {
		evalLabels[i] = g.EvalPairs[i][0]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(circ, g.Tables, g.GarblerLabels, evalLabels, g.Decode); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildReLUCircuit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = BatchReLUCircuit(32, 256)
	}
}

// benchRunBatch measures a full garble+evaluate RunBatch round trip over
// an in-process pipe at a fixed worker count; the Workers1 vs Workers8
// ratio is the batch-garbling speedup quoted in EXPERIMENTS.md.
func benchRunBatch(b *testing.B, workers int) {
	ca, cb := transport.Pipe()
	defer ca.Close()
	var (
		g    *Garbler
		gerr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		g, gerr = NewGarbler(ca, 99, prg.New(prg.SeedFromInt(1)))
	}()
	e, eerr := NewEvaluator(cb, 99, prg.New(prg.SeedFromInt(2)))
	wg.Wait()
	if gerr != nil || eerr != nil {
		b.Fatalf("setup: %v %v", gerr, eerr)
	}
	g.SetWorkers(workers)
	e.SetWorkers(workers)
	const batch = 8
	circ := BatchReLUCircuit(32, 256)
	circs := make([]*Circuit, batch)
	gbits := make([][]byte, batch)
	ebits := make([][]byte, batch)
	for i := range circs {
		circs[i] = circ
		gbits[i] = make([]byte, circ.NumGarbler)
		ebits[i] = make([]byte, circ.NumEvaluator)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var inner sync.WaitGroup
		inner.Add(1)
		go func() {
			defer inner.Done()
			if err := g.RunBatch(circs, gbits); err != nil {
				b.Error(err)
			}
		}()
		if _, err := e.RunBatch(circs, ebits); err != nil {
			b.Fatal(err)
		}
		inner.Wait()
	}
	b.ReportMetric(float64(batch*circ.NumAND()), "AND-gates")
}

func BenchmarkRunBatchReLUWorkers1(b *testing.B) { benchRunBatch(b, 1) }
func BenchmarkRunBatchReLUWorkers8(b *testing.B) { benchRunBatch(b, 8) }
