package core

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"abnn2/internal/gc"
	"abnn2/internal/nn"
	"abnn2/internal/otext"
	"abnn2/internal/prg"
	"abnn2/internal/quant"
	"abnn2/internal/ring"
	"abnn2/internal/transport"
)

// Failure injection: protocol parties must reject malformed peer
// messages with errors, never panic or silently mis-share.

// rogueTripletClient performs a correct OT-extension setup and column
// round, then sends a truncated payload.
func TestServerRejectsTruncatedPayload(t *testing.T) {
	p := Params{Ring: ring.New(32), Scheme: quant.Binary()}
	ca, cb, _ := transport.MeteredPipe()
	defer ca.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// A rogue client: real OT sender setup + extension, bogus payload.
		snd, err := otext.NewSender(ca, otext.WalshHadamardCode(256), sessionTriplets, prg.New(prg.SeedFromInt(1)))
		if err != nil {
			t.Errorf("rogue setup: %v", err)
			return
		}
		if _, err := snd.Extend(4); err != nil {
			t.Errorf("rogue extend: %v", err)
			return
		}
		snd.Conn().Send([]byte{1, 2, 3}) // far too short
	}()
	st, err := NewServerTriplets(cb, p, sessionTriplets)
	if err != nil {
		t.Fatal(err)
	}
	_, err = st.GenerateServer(MatShape{M: 2, N: 2, O: 1}, []int64{0, 1, 1, 0}, OneBatch)
	wg.Wait()
	if err == nil {
		t.Fatal("truncated payload accepted")
	}
	if !strings.Contains(err.Error(), "truncated") {
		t.Logf("error (acceptable, just not the specific one): %v", err)
	}
}

// The server engine must reject a masked-input message of the wrong size.
func TestServerEngineRejectsMalformedInput(t *testing.T) {
	scheme := quant.Binary()
	m := nn.NewModel(4, 2)
	m.InitXavier(prg.New(prg.SeedFromInt(2)))
	qm := nn.Quantize(m, scheme, 4)
	p := Params{Ring: ring.New(32), Scheme: scheme}
	ca, cb, _ := transport.MeteredPipe()
	defer ca.Close()
	var (
		srvErr error
		wg     sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv, err := NewServerEngine(ca, qm, p, ReLUGC)
		if err == nil {
			err = srv.Offline(1)
		}
		if err == nil {
			err = srv.Online()
		}
		srvErr = err
	}()
	cli, err := NewClientEngine(cb, ArchOf(qm), p, ReLUGC, prg.New(prg.SeedFromInt(3)))
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Offline(1); err != nil {
		t.Fatal(err)
	}
	// Send a garbage masked-input directly instead of calling Predict.
	if err := cb.Send([]byte{0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if srvErr == nil {
		t.Fatal("server accepted malformed masked input")
	}
}

// A dropped connection mid-offline must surface as an error on the
// surviving party, not a hang (the pipe close unblocks Recv).
func TestOfflineSurvivesPeerDisappearing(t *testing.T) {
	p := Params{Ring: ring.New(32), Scheme: quant.Binary()}
	ca, cb, _ := transport.MeteredPipe()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Client completes setup then vanishes.
		ct, err := NewClientTriplets(ca, p, sessionTriplets, prg.New(prg.SeedFromInt(4)))
		if err != nil {
			t.Errorf("client setup: %v", err)
		}
		_ = ct
		ca.Close()
	}()
	st, err := NewServerTriplets(cb, p, sessionTriplets)
	if err != nil {
		// Setup itself may fail if the close raced in; also fine.
		wg.Wait()
		return
	}
	_, err = st.GenerateServer(MatShape{M: 4, N: 4, O: 1}, make([]int64, 16), OneBatch)
	wg.Wait()
	if err == nil {
		t.Fatal("server succeeded against a vanished peer")
	}
}

// runTriplets runs one full triplet session (base-OT setup + extension +
// payload round) with each side's connection wrapped per the given fault
// plans, returning both parties' errors. A nil-class plan is a clean run.
func runTripletsFaulted(t *testing.T, cliPlan, srvPlan transport.FaultPlan) (cliErr, srvErr error, cliConn, srvConn *transport.FaultConn) {
	t.Helper()
	p := Params{Ring: ring.New(32), Scheme: quant.Binary()}
	shape := MatShape{M: 2, N: 2, O: 1}
	ca, cb := transport.Pipe()
	fc := transport.Fault(ca, cliPlan)
	fs := transport.Fault(cb, srvPlan)
	done := make(chan struct{})
	go func() {
		defer close(done)
		ct, err := NewClientTriplets(fc, p, sessionTriplets, prg.New(prg.SeedFromInt(11)))
		if err == nil {
			_, err = ct.GenerateClient(shape, ring.NewMat(shape.N, shape.O), OneBatch)
		}
		cliErr = err
	}()
	st, err := NewServerTriplets(fs, p, sessionTriplets)
	if err == nil {
		_, err = st.GenerateServer(shape, []int64{0, 1, 1, 0}, OneBatch)
	}
	srvErr = err
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		buf := make([]byte, 1<<20)
		t.Fatalf("triplet run hung:\n%s", buf[:runtime.Stack(buf, true)])
	}
	fc.Close()
	return cliErr, srvErr, fc, fs
}

// TestTripletsSurviveDisconnectAtEveryMessage closes the connection at
// every message boundary of the triplet protocol, on each side in turn.
// Whatever the cut point — mid base-OT, mid extension, or during the
// payload round — both parties must return an error rather than hang:
// the disconnecting side sees its own send fail, the survivor sees the
// hangup on its next wire operation.
func TestTripletsSurviveDisconnectAtEveryMessage(t *testing.T) {
	cliErr, srvErr, fc, fs := runTripletsFaulted(t, transport.FaultPlan{}, transport.FaultPlan{})
	if cliErr != nil || srvErr != nil {
		t.Fatalf("clean run failed: client=%v server=%v", cliErr, srvErr)
	}
	cliSends, srvSends := fc.Sends(), fs.Sends()
	t.Logf("triplet session: client sends %d messages, server sends %d", cliSends, srvSends)
	for i := 0; i < cliSends; i++ {
		cliErr, srvErr, _, _ := runTripletsFaulted(t,
			transport.FaultPlan{Class: transport.FaultDisconnect, Message: i},
			transport.FaultPlan{})
		if cliErr == nil || srvErr == nil {
			t.Errorf("client disconnect at message %d: client=%v server=%v (both should error)", i, cliErr, srvErr)
		}
	}
	for i := 0; i < srvSends; i++ {
		cliErr, srvErr, _, _ := runTripletsFaulted(t,
			transport.FaultPlan{},
			transport.FaultPlan{Class: transport.FaultDisconnect, Message: i})
		if cliErr == nil || srvErr == nil {
			t.Errorf("server disconnect at message %d: client=%v server=%v (both should error)", i, cliErr, srvErr)
		}
	}
}

// runReLUFaulted runs one full nonlinear session (base-OT setup + a
// batched ReLU) under the given fault plans.
func runReLUFaulted(t *testing.T, variant ReLUVariant, cliPlan, srvPlan transport.FaultPlan) (cliErr, srvErr error, cliConn, srvConn *transport.FaultConn) {
	t.Helper()
	rg := ring.New(32)
	n := 8
	ca, cb := transport.Pipe()
	fc := transport.Fault(ca, cliPlan)
	fs := transport.Fault(cb, srvPlan)
	done := make(chan struct{})
	go func() {
		defer close(done)
		cn, err := NewClientNonlinear(fc, rg, sessionGC, prg.New(prg.SeedFromInt(21)))
		if err == nil {
			rng := prg.New(prg.SeedFromInt(22))
			err = cn.ReLUClient(variant, rng.Vec(rg, n), rng.Vec(rg, n))
		}
		cliErr = err
	}()
	sn, err := NewServerNonlinear(fs, rg, sessionGC, prg.New(prg.SeedFromInt(23)))
	if err == nil {
		rng := prg.New(prg.SeedFromInt(24))
		_, err = sn.ReLUServer(variant, rng.Vec(rg, n))
	}
	srvErr = err
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		buf := make([]byte, 1<<20)
		t.Fatalf("ReLU run hung:\n%s", buf[:runtime.Stack(buf, true)])
	}
	fc.Close()
	return cliErr, srvErr, fc, fs
}

// TestReLUSurvivesDisconnectAtEveryMessage is the ReLU counterpart: both
// GC variants, every message boundary, each side in turn.
func TestReLUSurvivesDisconnectAtEveryMessage(t *testing.T) {
	for _, variant := range []ReLUVariant{ReLUGC, ReLUOptimized} {
		cliErr, srvErr, fc, fs := runReLUFaulted(t, variant, transport.FaultPlan{}, transport.FaultPlan{})
		if cliErr != nil || srvErr != nil {
			t.Fatalf("variant %v clean run failed: client=%v server=%v", variant, cliErr, srvErr)
		}
		cliSends, srvSends := fc.Sends(), fs.Sends()
		t.Logf("variant %v: client sends %d messages, server sends %d", variant, cliSends, srvSends)
		for i := 0; i < cliSends; i++ {
			cliErr, srvErr, _, _ := runReLUFaulted(t, variant,
				transport.FaultPlan{Class: transport.FaultDisconnect, Message: i},
				transport.FaultPlan{})
			if cliErr == nil || srvErr == nil {
				t.Errorf("variant %v, client disconnect at message %d: client=%v server=%v", variant, i, cliErr, srvErr)
			}
		}
		for i := 0; i < srvSends; i++ {
			cliErr, srvErr, _, _ := runReLUFaulted(t, variant,
				transport.FaultPlan{},
				transport.FaultPlan{Class: transport.FaultDisconnect, Message: i})
			if cliErr == nil || srvErr == nil {
				t.Errorf("variant %v, server disconnect at message %d: client=%v server=%v", variant, i, cliErr, srvErr)
			}
		}
	}
}

// Argmax client must reject out-of-range masked indices (corrupt peer).
func TestArgmaxRejectsGarbage(t *testing.T) {
	rg := ring.New(16)
	ca, cb, _ := transport.MeteredPipe()
	defer ca.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Rogue server: proper GC evaluator setup and run, then send a
		// wrong-size message instead of forwarding masked indices.
		sn, err := NewServerNonlinear(ca, rg, sessionGC, prg.New(prg.SeedFromInt(5)))
		if err != nil {
			t.Errorf("rogue setup: %v", err)
			return
		}
		// Evaluate the argmax circuit legitimately (to keep the GC
		// transcript in sync), then send garbage.
		circ := gc.BatchArgmaxCircuit(rg.Bits(), 3, indexBits(3), 1)
		if _, err := sn.eval.Run(circ, make([]byte, 3*int(rg.Bits()))); err != nil {
			t.Errorf("rogue evaluate: %v", err)
			return
		}
		sn.conn.Send(make([]byte, 99))
	}()
	cn, err := NewClientNonlinear(cb, rg, sessionGC, prg.New(prg.SeedFromInt(6)))
	if err != nil {
		t.Fatal(err)
	}
	_, err = cn.ArgmaxClient(make(ring.Vec, 3), 3, 1)
	wg.Wait()
	if err == nil {
		t.Fatal("argmax client accepted wrong-size message")
	}
}
