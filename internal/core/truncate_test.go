package core

import (
	"testing"

	"abnn2/internal/prg"
	"abnn2/internal/ring"
	"abnn2/internal/sharing"
)

// Probabilistic truncation is correct up to +-1 except with probability
// about |value| / 2^(l-1) per element (the share-wrap event, SecureML
// Theorem 1). The tests therefore assert a failure *rate*, with
// deterministic seeds.

func TestTruncShareWithinOne(t *testing.T) {
	rg := ring.New(32)
	rng := prg.New(prg.SeedFromInt(1))
	const tbits = 8
	const trials = 5000
	failures := 0
	for i := 0; i < trials; i++ {
		// Values of ~20 bits: expected wrap rate 2^(21-32) ~ 0.05%.
		z := rg.FromSigned(int64(rng.Intn(1<<20)) - (1 << 19))
		z0, z1 := sharing.Share(rg, z, rng)
		got := rg.Signed(rg.Add(TruncShare0(rg, z0, tbits), TruncShare1(rg, z1, tbits)))
		want := rg.Signed(z) >> tbits
		if d := got - want; d < -1 || d > 1 {
			failures++
		}
	}
	// Allow up to 10x the expected wrap rate before declaring a bug.
	if failures > 25 {
		t.Fatalf("%d/%d truncations off by more than 1 (expect ~2.5)", failures, trials)
	}
}

func TestTruncVecMatchesScalar(t *testing.T) {
	rg := ring.New(32)
	rng := prg.New(prg.SeedFromInt(2))
	v := rng.Vec(rg, 16)
	want := make(ring.Vec, 16)
	for i := range v {
		want[i] = TruncShare0(rg, v[i], 5)
	}
	got := v.Clone()
	TruncVec0(rg, got, 5)
	if !rg.EqualVec(got, want) {
		t.Fatal("TruncVec0 diverged from TruncShare0")
	}
	want1 := make(ring.Vec, 16)
	for i := range v {
		want1[i] = TruncShare1(rg, v[i], 5)
	}
	got1 := v.Clone()
	TruncVec1(rg, got1, 5)
	if !rg.EqualVec(got1, want1) {
		t.Fatal("TruncVec1 diverged from TruncShare1")
	}
}

// Requantized shares reconstruct to the exact reference within one unit
// at the wrap rate above.
func TestRequantRate(t *testing.T) {
	rg := ring.New(32)
	rng := prg.New(prg.SeedFromInt(3))
	const c, tb = 39, 14
	const trials = 4000
	failures := 0
	for i := 0; i < trials; i++ {
		// |z| < 2^14 so |z*c| < 2^20: wrap rate ~ 2^-11.
		z := rg.FromSigned(int64(rng.Intn(1<<14)) - (1 << 13))
		z0, z1 := sharing.Share(rg, z, rng)
		got := rg.Signed(rg.Add(RequantShare0(rg, z0, c, tb), RequantShare1(rg, z1, c, tb)))
		want := rg.Signed(TruncExact(rg, z, c, tb))
		if d := got - want; d < -1 || d > 1 {
			failures++
		}
	}
	if failures > 20 {
		t.Fatalf("%d/%d requantizations off by more than 1 (expect ~2)", failures, trials)
	}
}

// The +-1 slack must actually be the common case, not a fluke: exact
// agreement or off-by-one should cover essentially everything.
func TestTruncZeroSharesExact(t *testing.T) {
	rg := ring.New(32)
	// With z1 = 0, truncation is exact division of the representative.
	for _, v := range []int64{0, 1, 255, 256, 1 << 20} {
		z := rg.FromSigned(v)
		got := rg.Signed(rg.Add(TruncShare0(rg, z, 8), TruncShare1(rg, 0, 8)))
		if got != v>>8 {
			t.Fatalf("trunc(%d) with zero share = %d, want %d", v, got, v>>8)
		}
	}
}

func TestTruncExactKnown(t *testing.T) {
	rg := ring.New(32)
	// 1000 * 39 / 2^14 = floor(39000/16384) = 2.
	if got := rg.Signed(TruncExact(rg, rg.FromSigned(1000), 39, 14)); got != 2 {
		t.Fatalf("TruncExact = %d, want 2", got)
	}
	// Negative: floor(-39000/16384) = -3.
	if got := rg.Signed(TruncExact(rg, rg.FromSigned(-1000), 39, 14)); got != -3 {
		t.Fatalf("TruncExact(neg) = %d, want -3", got)
	}
}

func TestTrunc64Rate(t *testing.T) {
	rg := ring.New(64)
	rng := prg.New(prg.SeedFromInt(4))
	failures := 0
	for i := 0; i < 2000; i++ {
		z := rg.FromSigned(int64(rng.Intn(1<<40)) - (1 << 39))
		z0, z1 := sharing.Share(rg, z, rng)
		got := rg.Signed(rg.Add(TruncShare0(rg, z0, 16), TruncShare1(rg, z1, 16)))
		want := rg.Signed(z) >> 16
		if d := got - want; d < -1 || d > 1 {
			failures++
		}
	}
	// 41-bit values in a 64-bit ring: wrap rate ~ 2^-22, so zero expected.
	if failures > 0 {
		t.Fatalf("%d/2000 64-bit truncations failed (expect 0)", failures)
	}
}
