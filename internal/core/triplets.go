package core

import (
	"fmt"

	"abnn2/internal/baseline"
	"abnn2/internal/otext"
	"abnn2/internal/par"
	"abnn2/internal/prg"
	"abnn2/internal/quant"
	"abnn2/internal/ring"
)

// This file implements the offline phase: dot-product / matrix triplet
// generation (paper Algorithm 1 and sections 4.1.2-4.1.3).
//
// For a server matrix W (m x n, quantized) and client matrix R (n x o,
// uniform shares), the parties end with U (server) and V (client), both
// m x o, such that U + V = W * R mod 2^l.
//
// OT enumeration order is row-major over W, fragments innermost:
// (i, j, f) for i in [m], j in [n], f in [gamma]. Both parties derive the
// identical order from the public shape and scheme.

// ClientTriplets is the client-side triplet generator. It owns the
// OT-extension sender (KK13 instantiation over the 256-bit
// Walsh-Hadamard code, which serves every fragment size up to N=256).
// When a per-layer Schedule routes layers to the baseline backends, it
// also lazily owns the matching baseline generators over the same
// connection (distinct OT session tags keep the instances apart).
type ClientTriplets struct {
	params  Params
	ot      *otext.Sender
	rng     *prg.PRG
	vals    [][]ring.Elem
	session uint64

	altVals map[string][][]ring.Elem // fragValues per override scheme
	sml     *baseline.SecureMLClient
	mon     *baseline.MiniONNClient
	quo     *baseline.QuotientClient
}

// ServerTriplets is the server-side triplet generator (OT receiver),
// plus the lazily-created server sides of any scheduled baselines.
type ServerTriplets struct {
	params  Params
	ot      *otext.Receiver
	vals    [][]ring.Elem
	rng     *prg.PRG
	session uint64

	sml *baseline.SecureMLServer
	mon *baseline.MiniONNServer
	quo *baseline.QuotientServer
}

// Baseline generators ride the same connection as the ABNN2 triplets;
// offsetting the session tag keeps their OT-extension instances (and
// random-oracle domains) separate from the triplet and GC sessions.
const (
	sessionOffSecureML = 0x40
	sessionOffQuotient = 0x41
)

// NewClientTriplets performs base-OT setup for the client role.
func NewClientTriplets(conn Conn, p Params, session uint64, rng *prg.PRG) (*ClientTriplets, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ot, err := otext.NewSender(conn, otext.WalshHadamardCode(256), session, rng)
	if err != nil {
		return nil, fmt.Errorf("core: client triplet setup: %w", err)
	}
	ot.SetWorkers(p.Workers)
	return &ClientTriplets{params: p, ot: ot, rng: rng, vals: p.fragValues(), session: session}, nil
}

// NewServerTriplets performs base-OT setup for the server role. The
// receiver's setup randomness is independent of any secret reuse, so it
// is drawn from a fresh OS seed.
func NewServerTriplets(conn Conn, p Params, session uint64) (*ServerTriplets, error) {
	return NewServerTripletsSeeded(conn, p, session, prg.New(prg.NewSeed()))
}

// NewServerTripletsSeeded is NewServerTriplets with caller-controlled
// randomness, the form the transcript-determinism and golden-transcript
// tests (internal/testkit) pin both parties with.
func NewServerTripletsSeeded(conn Conn, p Params, session uint64, rng *prg.PRG) (*ServerTriplets, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ot, err := otext.NewReceiver(conn, otext.WalshHadamardCode(256), session, rng)
	if err != nil {
		return nil, fmt.Errorf("core: server triplet setup: %w", err)
	}
	ot.SetWorkers(p.Workers)
	return &ServerTriplets{params: p, ot: ot, vals: p.fragValues(), rng: rng, session: session}, nil
}

// Baseline generator accessors. Creation is lazy — at the first layer a
// schedule routes to the backend — so unscheduled sessions consume no
// extra randomness and stay byte-identical to the pre-schedule wire
// format. Both parties reach the same layer at the same point of the
// message sequence, so the lazily-run setup flights pair up.

func (c *ClientTriplets) secureML() (*baseline.SecureMLClient, error) {
	if c.sml == nil {
		g, err := baseline.NewSecureMLClient(c.ot.Conn(), c.params.Ring, c.session+sessionOffSecureML, c.rng.Child("secureml"))
		if err != nil {
			return nil, fmt.Errorf("core: secureml setup: %w", err)
		}
		c.sml = g
	}
	return c.sml, nil
}

func (c *ClientTriplets) miniONN() (*baseline.MiniONNClient, error) {
	if c.mon == nil {
		bits := c.params.MiniONNBits
		if bits == 0 {
			bits = baseline.MiniONNKeyBits
		}
		g, err := baseline.NewMiniONNClient(c.ot.Conn(), c.params.Ring, bits, c.rng.Child("minionn"))
		if err != nil {
			return nil, fmt.Errorf("core: minionn setup: %w", err)
		}
		c.mon = g
	}
	return c.mon, nil
}

func (c *ClientTriplets) quotient() (*baseline.QuotientClient, error) {
	if c.quo == nil {
		g, err := baseline.NewQuotientClient(c.ot.Conn(), c.params.Ring, c.session+sessionOffQuotient, c.rng.Child("quotient"))
		if err != nil {
			return nil, fmt.Errorf("core: quotient setup: %w", err)
		}
		c.quo = g
	}
	return c.quo, nil
}

func (s *ServerTriplets) secureML() (*baseline.SecureMLServer, error) {
	if s.sml == nil {
		g, err := baseline.NewSecureMLServer(s.ot.Conn(), s.params.Ring, s.session+sessionOffSecureML, s.rng.Child("secureml"))
		if err != nil {
			return nil, fmt.Errorf("core: secureml setup: %w", err)
		}
		s.sml = g
	}
	return s.sml, nil
}

func (s *ServerTriplets) miniONN() (*baseline.MiniONNServer, error) {
	if s.mon == nil {
		g, err := baseline.NewMiniONNServer(s.ot.Conn(), s.params.Ring, s.rng.Child("minionn"))
		if err != nil {
			return nil, fmt.Errorf("core: minionn setup: %w", err)
		}
		s.mon = g
	}
	return s.mon, nil
}

func (s *ServerTriplets) quotient() (*baseline.QuotientServer, error) {
	if s.quo == nil {
		g, err := baseline.NewQuotientServer(s.ot.Conn(), s.params.Ring, s.session+sessionOffQuotient, s.rng.Child("quotient"))
		if err != nil {
			return nil, fmt.Errorf("core: quotient setup: %w", err)
		}
		s.quo = g
	}
	return s.quo, nil
}

// schemeParams resolves an optional per-layer scheme override into the
// Params and fragment-value table the ABNN2 kernel runs under. Override
// tables are cached by scheme name; a nil or identical override is the
// fast path with zero allocation.
func (c *ClientTriplets) schemeParams(sc quant.Scheme) (Params, [][]ring.Elem) {
	if sc == nil || sc.Name() == c.params.Scheme.Name() {
		return c.params, c.vals
	}
	p := c.params
	p.Scheme = sc
	if c.altVals == nil {
		c.altVals = make(map[string][][]ring.Elem)
	}
	vals, ok := c.altVals[sc.Name()]
	if !ok {
		vals = p.fragValues()
		c.altVals[sc.Name()] = vals
	}
	return p, vals
}

func (s *ServerTriplets) schemeParams(sc quant.Scheme) (Params, [][]ring.Elem) {
	if sc == nil || sc.Name() == s.params.Scheme.Name() {
		return s.params, s.vals
	}
	p := s.params
	p.Scheme = sc
	return p, p.fragValues()
}

// Mode selects the payload packaging of the offline phase.
type Mode int

const (
	// OneBatch is the section 4.1.3 correlated-OT variant: the candidate-0
	// payload is derived from the random-oracle pad itself, so only N-1
	// ciphertexts of l bits cross the wire per OT. Only valid for o = 1.
	OneBatch Mode = iota
	// MultiBatch is the section 4.1.2 variant: one OT per weight fragment
	// carries all o products in N ciphertexts of o*l bits each.
	MultiBatch
	// NaiveN is the unoptimised Fig. 3 protocol for o = 1 (all N
	// ciphertexts sent); kept for the one-batch ablation benchmark.
	NaiveN
)

func (m Mode) String() string {
	switch m {
	case OneBatch:
		return "one-batch"
	case MultiBatch:
		return "multi-batch"
	case NaiveN:
		return "naive-N"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ModeFor picks the paper's mode for a batch size: the C-OT variant for
// single predictions, multi-batch otherwise.
func ModeFor(o int) Mode {
	if o == 1 {
		return OneBatch
	}
	return MultiBatch
}

// GenerateClient runs the client side of the offline phase for shape sh
// with the client share matrix R (n x o). It returns V (m x o) such that
// the server's U satisfies U + V = W * R.
func (c *ClientTriplets) GenerateClient(sh MatShape, R *ring.Mat, mode Mode) (*ring.Mat, error) {
	return c.generateClient(c.params, c.vals, sh, R, mode)
}

// GenerateClientScheme is GenerateClient under a per-layer fragmentation
// override (a planner-chosen η/γ decomposition); a nil scheme inherits
// the session scheme.
func (c *ClientTriplets) GenerateClientScheme(sh MatShape, R *ring.Mat, mode Mode, sc quant.Scheme) (*ring.Mat, error) {
	p, vals := c.schemeParams(sc)
	return c.generateClient(p, vals, sh, R, mode)
}

func (c *ClientTriplets) generateClient(params Params, vals [][]ring.Elem, sh MatShape, R *ring.Mat, mode Mode) (*ring.Mat, error) {
	if err := checkShape(sh, mode); err != nil {
		return nil, err
	}
	if R.Rows != sh.N || R.Cols != sh.O {
		return nil, fmt.Errorf("core: R is %dx%d, want %dx%d", R.Rows, R.Cols, sh.N, sh.O)
	}
	rg := params.Ring
	gamma := params.Scheme.Gamma()
	total := params.NumOTs(sh)
	V := ring.NewMat(sh.M, sh.O)
	elemBytes := rg.Bytes()
	padBytes := sh.O * elemBytes

	ot := 0 // global OT index
	for ot < total {
		chunk := total - ot
		if chunk > chunkOTs {
			chunk = chunkOTs
		}
		blk, err := c.ot.Extend(chunk)
		if err != nil {
			return nil, fmt.Errorf("core: client extend: %w", err)
		}
		// Every OT's ciphertext block has a public size, so workers can
		// write disjoint spans of the payload flight directly.
		offs := payloadOffsets(params, ot, chunk, mode, elemBytes, padBytes)
		payload := make([]byte, offs[chunk])
		// Pre-draw the per-OT masking randomness sequentially, in the
		// exact order the sequential protocol consumed it — seeded
		// transcripts stay byte-identical for every worker count.
		var masks ring.Vec
		switch mode {
		case NaiveN:
			masks = c.rng.Vec(rg, chunk)
		case MultiBatch:
			masks = c.rng.Vec(rg, chunk*sh.O)
		}
		// Fragment x row accumulation: each worker sums its OT range
		// into a private partial of V, reduced below. Ring addition is
		// commutative, so the result is independent of scheduling.
		partials := make([]ring.Vec, par.NumChunks(params.Workers, chunk))
		par.Chunks(params.Workers, chunk, func(part, lo, hi int) {
			pv := make(ring.Vec, sh.M*sh.O)
			partials[part] = pv
			pV := &ring.Mat{Rows: sh.M, Cols: sh.O, Data: pv}
			buf := make([]byte, 0, padBytes)
			for local := lo; local < hi; local++ {
				g := ot + local
				i := g / (sh.N * gamma) // W row
				j := (g / gamma) % sh.N // W col
				f := g % gamma          // fragment
				n := params.Scheme.FragmentN(f)
				vrow := pV.Row(i)
				out := payload[offs[local]:offs[local+1]]
				switch mode {
				case OneBatch:
					// s := pad(0); V accumulates s; ciphertexts for t>=1 are
					// (Value(t)*r - s) XOR pad(t).
					s := rg.FromBytesFull(blk.Pad(local, 0, 8))
					vrow[0] = rg.Add(vrow[0], s)
					r := R.At(j, 0)
					for t := 1; t < n; t++ {
						m := rg.Sub(rg.Mul(vals[f][t], r), s)
						copy(out[(t-1)*elemBytes:], xorRingElem(rg, m, blk.Pad(local, t, elemBytes)))
					}
				case NaiveN:
					// Fresh random s; all N ciphertexts sent.
					s := masks[local]
					vrow[0] = rg.Add(vrow[0], s)
					r := R.At(j, 0)
					for t := 0; t < n; t++ {
						m := rg.Sub(rg.Mul(vals[f][t], r), s)
						copy(out[t*elemBytes:], xorRingElem(rg, m, blk.Pad(local, t, elemBytes)))
					}
				case MultiBatch:
					// One OT carries all o columns: random s_k per column,
					// payload_t = concat_k (Value(t)*r_jk - s_k).
					ss := masks[local*sh.O : (local+1)*sh.O]
					rg.AddVecInPlace(vrow, ss)
					rrow := R.Row(j)
					for t := 0; t < n; t++ {
						buf = buf[:0]
						for k := 0; k < sh.O; k++ {
							buf = rg.AppendElem(buf, rg.Sub(rg.Mul(vals[f][t], rrow[k]), ss[k]))
						}
						prg.XORBytes(out[t*padBytes:(t+1)*padBytes], buf, blk.Pad(local, t, padBytes))
					}
				}
			}
		})
		for _, pv := range partials {
			rg.AddVecInPlace(V.Data, pv)
		}
		if err := c.ot.Conn().Send(payload); err != nil {
			return nil, fmt.Errorf("core: client send payload: %w", err)
		}
		ot += chunk
	}
	return V, nil
}

// payloadOffsets returns the chunk+1 prefix offsets of each OT's
// ciphertext block inside one payload flight, for the chunk starting at
// global OT index base. Sizes depend only on public data (mode and the
// fragment schedule), so both parties — and every worker — compute the
// identical layout.
func payloadOffsets(p Params, base, chunk int, mode Mode, elemBytes, padBytes int) []int {
	gamma := p.Scheme.Gamma()
	offs := make([]int, chunk+1)
	for local := 0; local < chunk; local++ {
		n := p.Scheme.FragmentN((base + local) % gamma)
		var ct int
		switch mode {
		case OneBatch:
			ct = (n - 1) * elemBytes
		case NaiveN:
			ct = n * elemBytes
		case MultiBatch:
			ct = n * padBytes
		}
		offs[local+1] = offs[local] + ct
	}
	return offs
}

// GenerateServer runs the server side for quantized weights W (m x n,
// row-major int64). It returns U (m x o).
func (s *ServerTriplets) GenerateServer(sh MatShape, W []int64, mode Mode) (*ring.Mat, error) {
	return s.generateServer(s.params, sh, W, mode)
}

// GenerateServerScheme is GenerateServer under a per-layer fragmentation
// override; a nil scheme inherits the session scheme.
func (s *ServerTriplets) GenerateServerScheme(sh MatShape, W []int64, mode Mode, sc quant.Scheme) (*ring.Mat, error) {
	p, _ := s.schemeParams(sc)
	return s.generateServer(p, sh, W, mode)
}

func (s *ServerTriplets) generateServer(params Params, sh MatShape, W []int64, mode Mode) (*ring.Mat, error) {
	if err := checkShape(sh, mode); err != nil {
		return nil, err
	}
	if len(W) != sh.M*sh.N {
		return nil, fmt.Errorf("core: W has %d elements, want %d", len(W), sh.M*sh.N)
	}
	choices, err := quant.DecomposeAll(params.Scheme, W)
	if err != nil {
		return nil, err
	}
	rg := params.Ring
	gamma := params.Scheme.Gamma()
	total := params.NumOTs(sh)
	U := ring.NewMat(sh.M, sh.O)
	elemBytes := rg.Bytes()
	padBytes := sh.O * elemBytes

	ot := 0
	for ot < total {
		chunk := total - ot
		if chunk > chunkOTs {
			chunk = chunkOTs
		}
		cs := make([]int, chunk)
		for local := 0; local < chunk; local++ {
			g := ot + local
			cs[local] = choices[g/gamma][g%gamma]
		}
		blk, err := s.ot.Extend(cs)
		if err != nil {
			return nil, fmt.Errorf("core: server extend: %w", err)
		}
		payload, err := s.ot.Conn().Recv()
		if err != nil {
			return nil, fmt.Errorf("core: server recv payload: %w", err)
		}
		offs := payloadOffsets(params, ot, chunk, mode, elemBytes, padBytes)
		if len(payload) != offs[chunk] {
			return nil, fmt.Errorf("core: payload is %d bytes, want %d", len(payload), offs[chunk])
		}
		// Mirror of the client kernel: workers decode disjoint payload
		// spans into private partials of U, reduced below.
		partials := make([]ring.Vec, par.NumChunks(params.Workers, chunk))
		err = par.ChunksErr(params.Workers, chunk, func(part, lo, hi int) error {
			pu := make(ring.Vec, sh.M*sh.O)
			partials[part] = pu
			pU := &ring.Mat{Rows: sh.M, Cols: sh.O, Data: pu}
			buf := make([]byte, padBytes)
			for local := lo; local < hi; local++ {
				g := ot + local
				i := g / (sh.N * gamma)
				w := cs[local]
				urow := pU.Row(i)
				ct := payload[offs[local]:offs[local+1]]
				switch mode {
				case OneBatch:
					if w == 0 {
						// Output -s where s = pad(0); Value(0)*r = 0.
						sPad := rg.FromBytesFull(blk.Pad(local, 8))
						urow[0] = rg.Add(urow[0], rg.Neg(sPad))
					} else {
						m := unxorRingElem(rg, ct[(w-1)*elemBytes:][:elemBytes], blk.Pad(local, elemBytes))
						urow[0] = rg.Add(urow[0], m)
					}
				case NaiveN:
					m := unxorRingElem(rg, ct[w*elemBytes:][:elemBytes], blk.Pad(local, elemBytes))
					urow[0] = rg.Add(urow[0], m)
				case MultiBatch:
					prg.XORBytes(buf, ct[w*padBytes:(w+1)*padBytes], blk.Pad(local, padBytes))
					vec, _, err := rg.DecodeVec(buf, sh.O)
					if err != nil {
						return fmt.Errorf("core: OT %d payload: %w", g, err)
					}
					rg.AddVecInPlace(urow, vec)
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, pu := range partials {
			rg.AddVecInPlace(U.Data, pu)
		}
		ot += chunk
	}
	// U currently holds sum(Value*r - s); V holds sum(s): U + V = W*R.
	return U, nil
}

func checkShape(sh MatShape, mode Mode) error {
	if sh.M <= 0 || sh.N <= 0 || sh.O <= 0 {
		return fmt.Errorf("core: invalid shape %+v", sh)
	}
	if (mode == OneBatch || mode == NaiveN) && sh.O != 1 {
		return fmt.Errorf("core: %v mode requires o=1, got o=%d", mode, sh.O)
	}
	return nil
}

// xorRingElem returns the elemBytes-wide encoding of m XORed with pad.
func xorRingElem(rg ring.Ring, m ring.Elem, pad []byte) []byte {
	enc := rg.AppendElem(nil, m)
	prg.XORBytes(enc, enc, pad[:len(enc)])
	return enc
}

// unxorRingElem reverses xorRingElem.
func unxorRingElem(rg ring.Ring, ct, pad []byte) ring.Elem {
	buf := make([]byte, len(ct))
	prg.XORBytes(buf, ct, pad[:len(ct)])
	e, _, err := rg.DecodeElem(buf)
	if err != nil {
		// len(ct) is rg.Bytes() by construction; decoding cannot fail.
		panic(err)
	}
	return e
}
