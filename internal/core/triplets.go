package core

import (
	"fmt"

	"abnn2/internal/otext"
	"abnn2/internal/prg"
	"abnn2/internal/quant"
	"abnn2/internal/ring"
)

// This file implements the offline phase: dot-product / matrix triplet
// generation (paper Algorithm 1 and sections 4.1.2-4.1.3).
//
// For a server matrix W (m x n, quantized) and client matrix R (n x o,
// uniform shares), the parties end with U (server) and V (client), both
// m x o, such that U + V = W * R mod 2^l.
//
// OT enumeration order is row-major over W, fragments innermost:
// (i, j, f) for i in [m], j in [n], f in [gamma]. Both parties derive the
// identical order from the public shape and scheme.

// ClientTriplets is the client-side triplet generator. It owns the
// OT-extension sender (KK13 instantiation over the 256-bit
// Walsh-Hadamard code, which serves every fragment size up to N=256).
type ClientTriplets struct {
	params Params
	ot     *otext.Sender
	rng    *prg.PRG
	vals   [][]ring.Elem
}

// ServerTriplets is the server-side triplet generator (OT receiver).
type ServerTriplets struct {
	params Params
	ot     *otext.Receiver
	vals   [][]ring.Elem
}

// NewClientTriplets performs base-OT setup for the client role.
func NewClientTriplets(conn Conn, p Params, session uint64, rng *prg.PRG) (*ClientTriplets, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ot, err := otext.NewSender(conn, otext.WalshHadamardCode(256), session, rng)
	if err != nil {
		return nil, fmt.Errorf("core: client triplet setup: %w", err)
	}
	return &ClientTriplets{params: p, ot: ot, rng: rng, vals: p.fragValues()}, nil
}

// NewServerTriplets performs base-OT setup for the server role. The
// receiver's setup randomness is independent of any secret reuse, so it
// is drawn from a fresh OS seed.
func NewServerTriplets(conn Conn, p Params, session uint64) (*ServerTriplets, error) {
	return newServerTripletsSeeded(conn, p, session, prg.New(prg.NewSeed()))
}

// newServerTripletsSeeded is NewServerTriplets with caller-controlled
// randomness (transcript-determinism tests).
func newServerTripletsSeeded(conn Conn, p Params, session uint64, rng *prg.PRG) (*ServerTriplets, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ot, err := otext.NewReceiver(conn, otext.WalshHadamardCode(256), session, rng)
	if err != nil {
		return nil, fmt.Errorf("core: server triplet setup: %w", err)
	}
	return &ServerTriplets{params: p, ot: ot, vals: p.fragValues()}, nil
}

// Mode selects the payload packaging of the offline phase.
type Mode int

const (
	// OneBatch is the section 4.1.3 correlated-OT variant: the candidate-0
	// payload is derived from the random-oracle pad itself, so only N-1
	// ciphertexts of l bits cross the wire per OT. Only valid for o = 1.
	OneBatch Mode = iota
	// MultiBatch is the section 4.1.2 variant: one OT per weight fragment
	// carries all o products in N ciphertexts of o*l bits each.
	MultiBatch
	// NaiveN is the unoptimised Fig. 3 protocol for o = 1 (all N
	// ciphertexts sent); kept for the one-batch ablation benchmark.
	NaiveN
)

func (m Mode) String() string {
	switch m {
	case OneBatch:
		return "one-batch"
	case MultiBatch:
		return "multi-batch"
	case NaiveN:
		return "naive-N"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ModeFor picks the paper's mode for a batch size: the C-OT variant for
// single predictions, multi-batch otherwise.
func ModeFor(o int) Mode {
	if o == 1 {
		return OneBatch
	}
	return MultiBatch
}

// GenerateClient runs the client side of the offline phase for shape sh
// with the client share matrix R (n x o). It returns V (m x o) such that
// the server's U satisfies U + V = W * R.
func (c *ClientTriplets) GenerateClient(sh MatShape, R *ring.Mat, mode Mode) (*ring.Mat, error) {
	if err := checkShape(sh, mode); err != nil {
		return nil, err
	}
	if R.Rows != sh.N || R.Cols != sh.O {
		return nil, fmt.Errorf("core: R is %dx%d, want %dx%d", R.Rows, R.Cols, sh.N, sh.O)
	}
	rg := c.params.Ring
	gamma := c.params.Scheme.Gamma()
	total := c.params.NumOTs(sh)
	V := ring.NewMat(sh.M, sh.O)
	elemBytes := rg.Bytes()
	padBytes := sh.O * elemBytes

	ot := 0 // global OT index
	for ot < total {
		chunk := total - ot
		if chunk > chunkOTs {
			chunk = chunkOTs
		}
		blk, err := c.ot.Extend(chunk)
		if err != nil {
			return nil, fmt.Errorf("core: client extend: %w", err)
		}
		payload := make([]byte, 0, chunk*padBytes*2)
		for local := 0; local < chunk; local++ {
			g := ot + local
			i := g / (sh.N * gamma) // W row
			j := (g / gamma) % sh.N // W col
			f := g % gamma          // fragment
			n := c.params.Scheme.FragmentN(f)
			vrow := V.Row(i)
			switch mode {
			case OneBatch:
				// s := pad(0); V accumulates s; ciphertexts for t>=1 are
				// (Value(t)*r - s) XOR pad(t).
				s := rg.FromBytesFull(blk.Pad(local, 0, 8))
				vrow[0] = rg.Add(vrow[0], s)
				r := R.At(j, 0)
				for t := 1; t < n; t++ {
					m := rg.Sub(rg.Mul(c.vals[f][t], r), s)
					ct := xorRingElem(rg, m, blk.Pad(local, t, elemBytes))
					payload = append(payload, ct...)
				}
			case NaiveN:
				// Fresh random s; all N ciphertexts sent.
				s := c.rng.Elem(rg)
				vrow[0] = rg.Add(vrow[0], s)
				r := R.At(j, 0)
				for t := 0; t < n; t++ {
					m := rg.Sub(rg.Mul(c.vals[f][t], r), s)
					ct := xorRingElem(rg, m, blk.Pad(local, t, elemBytes))
					payload = append(payload, ct...)
				}
			case MultiBatch:
				// One OT carries all o columns: random s_k per column,
				// payload_t = concat_k (Value(t)*r_jk - s_k).
				ss := c.rng.Vec(rg, sh.O)
				rg.AddVecInPlace(vrow, ss)
				rrow := R.Row(j)
				buf := make([]byte, 0, padBytes)
				for t := 0; t < n; t++ {
					buf = buf[:0]
					for k := 0; k < sh.O; k++ {
						buf = rg.AppendElem(buf, rg.Sub(rg.Mul(c.vals[f][t], rrow[k]), ss[k]))
					}
					ct := make([]byte, padBytes)
					prg.XORBytes(ct, buf, blk.Pad(local, t, padBytes))
					payload = append(payload, ct...)
				}
			}
		}
		if err := c.ot.Conn().Send(payload); err != nil {
			return nil, fmt.Errorf("core: client send payload: %w", err)
		}
		ot += chunk
	}
	return V, nil
}

// GenerateServer runs the server side for quantized weights W (m x n,
// row-major int64). It returns U (m x o).
func (s *ServerTriplets) GenerateServer(sh MatShape, W []int64, mode Mode) (*ring.Mat, error) {
	if err := checkShape(sh, mode); err != nil {
		return nil, err
	}
	if len(W) != sh.M*sh.N {
		return nil, fmt.Errorf("core: W has %d elements, want %d", len(W), sh.M*sh.N)
	}
	choices, err := quant.DecomposeAll(s.params.Scheme, W)
	if err != nil {
		return nil, err
	}
	rg := s.params.Ring
	gamma := s.params.Scheme.Gamma()
	total := s.params.NumOTs(sh)
	U := ring.NewMat(sh.M, sh.O)
	elemBytes := rg.Bytes()
	padBytes := sh.O * elemBytes

	ot := 0
	for ot < total {
		chunk := total - ot
		if chunk > chunkOTs {
			chunk = chunkOTs
		}
		cs := make([]int, chunk)
		for local := 0; local < chunk; local++ {
			g := ot + local
			cs[local] = choices[g/gamma][g%gamma]
		}
		blk, err := s.ot.Extend(cs)
		if err != nil {
			return nil, fmt.Errorf("core: server extend: %w", err)
		}
		payload, err := s.ot.Conn().Recv()
		if err != nil {
			return nil, fmt.Errorf("core: server recv payload: %w", err)
		}
		off := 0
		for local := 0; local < chunk; local++ {
			g := ot + local
			i := g / (sh.N * gamma)
			f := g % gamma
			n := s.params.Scheme.FragmentN(f)
			w := cs[local]
			urow := U.Row(i)
			switch mode {
			case OneBatch:
				ctBytes := (n - 1) * elemBytes
				if off+ctBytes > len(payload) {
					return nil, fmt.Errorf("core: payload truncated at OT %d", g)
				}
				if w == 0 {
					// Output -s where s = pad(0); Value(0)*r = 0.
					sPad := rg.FromBytesFull(blk.Pad(local, 8))
					urow[0] = rg.Add(urow[0], rg.Neg(sPad))
				} else {
					ct := payload[off+(w-1)*elemBytes:][:elemBytes]
					m := unxorRingElem(rg, ct, blk.Pad(local, elemBytes))
					urow[0] = rg.Add(urow[0], m)
				}
				off += ctBytes
			case NaiveN:
				ctBytes := n * elemBytes
				if off+ctBytes > len(payload) {
					return nil, fmt.Errorf("core: payload truncated at OT %d", g)
				}
				ct := payload[off+w*elemBytes:][:elemBytes]
				m := unxorRingElem(rg, ct, blk.Pad(local, elemBytes))
				urow[0] = rg.Add(urow[0], m)
				off += ctBytes
			case MultiBatch:
				ctBytes := n * padBytes
				if off+ctBytes > len(payload) {
					return nil, fmt.Errorf("core: payload truncated at OT %d", g)
				}
				ct := payload[off+w*padBytes:][:padBytes]
				pad := blk.Pad(local, padBytes)
				buf := make([]byte, padBytes)
				prg.XORBytes(buf, ct, pad)
				vec, _, err := rg.DecodeVec(buf, sh.O)
				if err != nil {
					return nil, fmt.Errorf("core: OT %d payload: %w", g, err)
				}
				rg.AddVecInPlace(urow, vec)
				off += ctBytes
			}
		}
		if off != len(payload) {
			return nil, fmt.Errorf("core: %d trailing payload bytes", len(payload)-off)
		}
		ot += chunk
	}
	// U currently holds sum(Value*r - s); V holds sum(s): U + V = W*R.
	return U, nil
}

func checkShape(sh MatShape, mode Mode) error {
	if sh.M <= 0 || sh.N <= 0 || sh.O <= 0 {
		return fmt.Errorf("core: invalid shape %+v", sh)
	}
	if (mode == OneBatch || mode == NaiveN) && sh.O != 1 {
		return fmt.Errorf("core: %v mode requires o=1, got o=%d", mode, sh.O)
	}
	return nil
}

// xorRingElem returns the elemBytes-wide encoding of m XORed with pad.
func xorRingElem(rg ring.Ring, m ring.Elem, pad []byte) []byte {
	enc := rg.AppendElem(nil, m)
	prg.XORBytes(enc, enc, pad[:len(enc)])
	return enc
}

// unxorRingElem reverses xorRingElem.
func unxorRingElem(rg ring.Ring, ct, pad []byte) ring.Elem {
	buf := make([]byte, len(ct))
	prg.XORBytes(buf, ct, pad[:len(ct)])
	e, _, err := rg.DecodeElem(buf)
	if err != nil {
		// len(ct) is rg.Bytes() by construction; decoding cannot fail.
		panic(err)
	}
	return e
}
