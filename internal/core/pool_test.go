package core

import (
	"sync"
	"testing"

	"abnn2/internal/prg"
	"abnn2/internal/ring"
)

// runMaxPool shares ys, runs the pooling protocol over the windows, and
// returns the reconstructed outputs.
func runMaxPool(t *testing.T, rg ring.Ring, ys []int64, windows [][]int, withReLU bool) []int64 {
	t.Helper()
	cn, sn, _, done := nonlinearPair(t, rg)
	defer done()
	rng := prg.New(prg.SeedFromInt(99))
	n := len(ys)
	y0 := make(ring.Vec, n)
	y1 := make(ring.Vec, n)
	for i, y := range ys {
		y1[i] = rng.Elem(rg)
		y0[i] = rg.Sub(rg.FromSigned(y), y1[i])
	}
	z1 := rng.Vec(rg, len(windows))
	var (
		cerr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		cerr = cn.MaxPoolClient(y1, z1, windows, withReLU)
	}()
	z0, serr := sn.MaxPoolServer(y0, windows, withReLU)
	wg.Wait()
	if cerr != nil || serr != nil {
		t.Fatalf("maxpool: client=%v server=%v", cerr, serr)
	}
	out := make([]int64, len(windows))
	for i := range windows {
		out[i] = rg.Signed(rg.Add(z0[i], z1[i]))
	}
	return out
}

func TestMaxPoolProtocol(t *testing.T) {
	rg := ring.New(16)
	ys := []int64{5, -3, 9, 2, -8, -1, -7, -2, 0, 100, -100, 50}
	windows := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9, 10, 11}}
	got := runMaxPool(t, rg, ys, windows, false)
	want := []int64{9, -1, 100}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("window %d: %d want %d", i, got[i], want[i])
		}
	}
	gotRelu := runMaxPool(t, rg, ys, windows, true)
	wantRelu := []int64{9, 0, 100}
	for i := range wantRelu {
		if gotRelu[i] != wantRelu[i] {
			t.Errorf("relu window %d: %d want %d", i, gotRelu[i], wantRelu[i])
		}
	}
}

func TestMaxPoolGatheredOrder(t *testing.T) {
	// Windows referencing scattered indices (as real channel-major pooling
	// does) must gather correctly.
	rg := ring.New(16)
	ys := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	windows := [][]int{{0, 2, 4, 6}, {1, 3, 5, 7}}
	got := runMaxPool(t, rg, ys, windows, false)
	if got[0] != 7 || got[1] != 8 {
		t.Fatalf("got %v, want [7 8]", got)
	}
}

func TestMaxPoolChunkBoundary(t *testing.T) {
	rg := ring.New(16)
	nWin := poolChunk + 3
	ys := make([]int64, nWin*2)
	windows := make([][]int, nWin)
	want := make([]int64, nWin)
	for i := 0; i < nWin; i++ {
		ys[2*i] = int64(i)
		ys[2*i+1] = int64(-i)
		windows[i] = []int{2 * i, 2*i + 1}
		want[i] = int64(i)
	}
	got := runMaxPool(t, rg, ys, windows, false)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("window %d: %d want %d", i, got[i], want[i])
		}
	}
}

func TestMaxPoolValidation(t *testing.T) {
	cn, _, _, done := nonlinearPair(t, ring.New(16))
	defer done()
	if err := cn.MaxPoolClient(make(ring.Vec, 4), make(ring.Vec, 1), [][]int{{0, 1}, {2, 3}}, false); err == nil {
		t.Error("z1/window count mismatch accepted")
	}
	if err := cn.MaxPoolClient(make(ring.Vec, 4), make(ring.Vec, 2), [][]int{{0, 1}, {2}}, false); err == nil {
		t.Error("ragged windows accepted")
	}
}

func TestArgmaxProtocol(t *testing.T) {
	rg := ring.New(32)
	cn, sn, _, done := nonlinearPair(t, rg)
	defer done()
	rng := prg.New(prg.SeedFromInt(7))
	scores := [][]int64{
		{10, -5, 30, 7},
		{-1, -2, -3, -4},
		{0, 0, 0, 1},
	}
	n, batch := 4, len(scores)
	y0 := make(ring.Vec, 0, n*batch)
	y1 := make(ring.Vec, 0, n*batch)
	for _, row := range scores {
		for _, v := range row {
			s1 := rng.Elem(rg)
			y1 = append(y1, s1)
			y0 = append(y0, rg.Sub(rg.FromSigned(v), s1))
		}
	}
	var (
		serr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		serr = sn.ArgmaxServer(y0, n, batch)
	}()
	got, cerr := cn.ArgmaxClient(y1, n, batch)
	wg.Wait()
	if cerr != nil || serr != nil {
		t.Fatalf("argmax: %v %v", cerr, serr)
	}
	want := []int{2, 0, 3}
	for k := range want {
		if got[k] != want[k] {
			t.Errorf("sample %d: argmax %d, want %d", k, got[k], want[k])
		}
	}
}

func TestArgmaxSingleCandidate(t *testing.T) {
	rg := ring.New(16)
	cn, sn, _, done := nonlinearPair(t, rg)
	defer done()
	y1 := ring.Vec{5}
	y0 := ring.Vec{rg.Sub(rg.FromSigned(-3), 5)}
	var (
		serr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		serr = sn.ArgmaxServer(y0, 1, 1)
	}()
	got, cerr := cn.ArgmaxClient(y1, 1, 1)
	wg.Wait()
	if cerr != nil || serr != nil {
		t.Fatalf("%v %v", cerr, serr)
	}
	if got[0] != 0 {
		t.Fatalf("argmax of singleton = %d", got[0])
	}
}
