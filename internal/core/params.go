// Package core implements ABNN2's protocols: quantized matrix
// multiplication triplets from 1-out-of-N OT extension (paper section
// 4.1), the multi-batch and one-batch optimisations, the non-linear layer
// protocols (section 4.2), and the end-to-end two-party inference engine
// (section 3, Figure 2).
//
// Roles follow the paper: the server S holds the quantized model and acts
// as the OT-extension *receiver* (its weight fragments are the choices);
// the client C holds the activations' random shares and acts as the OT
// *sender*. For the garbled-circuit layers the client garbles and the
// server evaluates.
package core

import (
	"fmt"

	"abnn2/internal/quant"
	"abnn2/internal/ring"
	"abnn2/internal/trace"
	"abnn2/internal/transport"
)

// Conn is the two-party channel every protocol in this package runs over.
type Conn = transport.Conn

// Params fixes the public protocol parameters both parties must agree on.
type Params struct {
	Ring   ring.Ring    // the share ring Z_2^l
	Scheme quant.Scheme // weight quantization / fragmentation scheme
	// Workers bounds the compute parallelism of the protocol kernels
	// (OT extension, garbling, triplet accumulation, matmul) on this
	// party. 0 means one worker per CPU. Purely local: the two parties
	// may use different values, and every value yields byte-identical
	// transcripts.
	Workers int
	// Trace records per-phase/per-layer protocol spans. Purely local
	// telemetry (the peer never observes it); nil disables tracing with
	// zero overhead.
	Trace *trace.Tracer
	// MiniONNBits sets the Paillier key size used when a per-layer
	// Schedule routes a layer to the MiniONN backend; 0 means the
	// baseline package default. Public protocol state: both parties must
	// agree (the client generates the key, the server checks it).
	MiniONNBits int
}

// Validate checks internal consistency.
func (p Params) Validate() error {
	if p.Ring.Bits() == 0 {
		return fmt.Errorf("core: ring not initialised")
	}
	if p.Scheme == nil {
		return fmt.Errorf("core: scheme not set")
	}
	if p.Workers < 0 {
		return fmt.Errorf("core: negative worker count %d", p.Workers)
	}
	for i := 0; i < p.Scheme.Gamma(); i++ {
		if n := p.Scheme.FragmentN(i); n < 2 || n > 256 {
			return fmt.Errorf("core: fragment %d has N=%d, want [2,256]", i, n)
		}
	}
	return nil
}

// chunkOTs bounds how many OTs are packed into a single extension round /
// wire message; it caps peak memory and keeps frames far below the
// transport limit even at batch size 128.
const chunkOTs = 4096

// MatShape describes a public matrix-multiplication shape: the server's
// m x n quantized matrix times the client's n x o share matrix.
type MatShape struct{ M, N, O int }

// NumOTs returns the OT count gamma*m*n of the offline phase (Table 1).
func (p Params) NumOTs(sh MatShape) int {
	return p.Scheme.Gamma() * sh.M * sh.N
}

// fragValues precomputes, per fragment index, the signed contribution of
// every candidate, embedded in the ring. fragValues[i][t] =
// ring(Value(i,t)).
func (p Params) fragValues() [][]ring.Elem {
	out := make([][]ring.Elem, p.Scheme.Gamma())
	for i := range out {
		n := p.Scheme.FragmentN(i)
		vals := make([]ring.Elem, n)
		for t := 0; t < n; t++ {
			vals[t] = p.Ring.FromSigned(p.Scheme.Value(i, t))
		}
		out[i] = vals
	}
	return out
}
