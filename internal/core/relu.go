package core

import (
	"fmt"

	"abnn2/internal/gc"
	"abnn2/internal/prg"
	"abnn2/internal/ring"
	"abnn2/internal/transport"
)

// Non-linear layer protocols (paper section 4.2). Two variants:
//
//   - ReLUGC: Algorithm 2 run for f = ReLU. The whole computation
//     y = y0+y1, z0 = max(0,y) - z1 happens inside one garbled circuit;
//     nothing about y leaks. ~3l AND gates per neuron.
//
//   - ReLUOptimized: the section 4.2 optimisation. The garbled circuit
//     only computes the comparison bit b = [y >= 0] (~l AND gates); the
//     reshare happens with one plain message per direction. The paper
//     accepts that b itself is revealed ("if so, then we reconstruct z
//     and reshare it; if not, we only need to reshare zero") — i.e. the
//     sign pattern of activations leaks to both parties. We implement it
//     faithfully and document the leakage; the ablation benchmark
//     quantifies what the leak buys.
//
// Roles: client garbles (it knows y1 and the fresh output share z1 chosen
// offline), server evaluates (inputs y0, learns z0).

// ReLUVariant selects the non-linear protocol.
type ReLUVariant int

const (
	// ReLUGC is the fully oblivious Algorithm-2 protocol.
	ReLUGC ReLUVariant = iota
	// ReLUOptimized is the section 4.2 sign-bit protocol (leaks signs).
	ReLUOptimized
)

func (v ReLUVariant) String() string {
	if v == ReLUOptimized {
		return "optimized"
	}
	return "gc"
}

// reluChunk bounds neurons per garbled circuit. Chunking keeps the
// garbler/evaluator working set tens of megabytes even at batch size 128
// on the 784->128 layer (one circuit per chunk; chunks run sequentially
// on the same session).
const reluChunk = 2048

// circuitCache memoizes the deterministic per-chunk circuits; building a
// 2048-neuron circuit is pure CPU and identical across chunks and runs.
type circuitCache struct {
	relu     map[cacheKey]*gc.Circuit
	sign     map[cacheKey]*gc.Circuit
	squares  map[cacheKey]*gc.Circuit
	pools    map[poolKey]*gc.Circuit
	argmaxes map[argmaxKey]*gc.Circuit
}

type cacheKey struct {
	bits uint
	n    int
}

func (cc *circuitCache) pool(k poolKey) *gc.Circuit {
	if cc.pools == nil {
		cc.pools = make(map[poolKey]*gc.Circuit)
	}
	if c, ok := cc.pools[k]; ok {
		return c
	}
	c := gc.BatchMaxPoolCircuit(k.bits, k.win, k.n, k.relu)
	cc.pools[k] = c
	return c
}

func (cc *circuitCache) argmax(k argmaxKey, build func() *gc.Circuit) *gc.Circuit {
	if cc.argmaxes == nil {
		cc.argmaxes = make(map[argmaxKey]*gc.Circuit)
	}
	if c, ok := cc.argmaxes[k]; ok {
		return c
	}
	c := build()
	cc.argmaxes[k] = c
	return c
}

func (cc *circuitCache) reluCircuit(bits uint, n int) *gc.Circuit {
	if cc.relu == nil {
		cc.relu = make(map[cacheKey]*gc.Circuit)
	}
	k := cacheKey{bits, n}
	if c, ok := cc.relu[k]; ok {
		return c
	}
	c := gc.BatchReLUCircuit(bits, n)
	cc.relu[k] = c
	return c
}

func (cc *circuitCache) signCircuit(bits uint, n int) *gc.Circuit {
	if cc.sign == nil {
		cc.sign = make(map[cacheKey]*gc.Circuit)
	}
	k := cacheKey{bits, n}
	if c, ok := cc.sign[k]; ok {
		return c
	}
	c := gc.BatchSignCircuit(bits, n)
	cc.sign[k] = c
	return c
}

// ClientNonlinear runs the client (garbler) side of activation layers.
type ClientNonlinear struct {
	rg      ring.Ring
	garb    *gc.Garbler
	conn    transport.Conn
	cache   circuitCache
	maskRng *prg.PRG // masks for output-hiding protocols (argmax)
}

// ServerNonlinear runs the server (evaluator) side.
type ServerNonlinear struct {
	rg    ring.Ring
	eval  *gc.Evaluator
	conn  transport.Conn
	cache circuitCache
}

// NewClientNonlinear sets up the garbler role (base OTs for label
// transfer happen here).
func NewClientNonlinear(conn transport.Conn, rg ring.Ring, session uint64, rng *prg.PRG) (*ClientNonlinear, error) {
	g, err := gc.NewGarbler(conn, session, rng)
	if err != nil {
		return nil, err
	}
	return &ClientNonlinear{rg: rg, garb: g, conn: conn, maskRng: rng.Child("argmax-masks")}, nil
}

// NewServerNonlinear sets up the evaluator role.
func NewServerNonlinear(conn transport.Conn, rg ring.Ring, session uint64, rng *prg.PRG) (*ServerNonlinear, error) {
	e, err := gc.NewEvaluator(conn, session, rng)
	if err != nil {
		return nil, err
	}
	return &ServerNonlinear{rg: rg, eval: e, conn: conn}, nil
}

// SetWorkers bounds the kernel parallelism of the GC session underneath
// (garbling and label OT). 0 means one worker per CPU.
func (c *ClientNonlinear) SetWorkers(n int) { c.garb.SetWorkers(n) }

// SetWorkers mirrors ClientNonlinear.SetWorkers.
func (s *ServerNonlinear) SetWorkers(n int) { s.eval.SetWorkers(n) }

// reluSpans splits n neurons into reluChunk-sized [start, end) spans.
func reluSpans(n int) [][2]int {
	var spans [][2]int
	for start := 0; start < n; start += reluChunk {
		end := start + reluChunk
		if end > n {
			end = n
		}
		spans = append(spans, [2]int{start, end})
	}
	return spans
}

// ReLUClient runs the client side over a share vector: y1 are the
// client's shares of the pre-activations, z1 the client's (pre-chosen)
// shares of the outputs. Long vectors are split into chunks of reluChunk
// neurons, one garbled circuit per chunk; the chunks garble as one batch
// so the CPU-heavy half fans out across the worker pool while the wire
// flights keep a fixed order.
func (c *ClientNonlinear) ReLUClient(variant ReLUVariant, y1, z1 ring.Vec) error {
	if len(y1) != len(z1) {
		return fmt.Errorf("core: relu share length mismatch %d vs %d", len(y1), len(z1))
	}
	if variant != ReLUGC && variant != ReLUOptimized {
		return fmt.Errorf("core: unknown ReLU variant %d", variant)
	}
	bits := c.rg.Bits()
	spans := reluSpans(len(y1))
	circs := make([]*gc.Circuit, len(spans))
	ins := make([][]byte, len(spans))
	for k, sp := range spans {
		n := sp[1] - sp[0]
		if variant == ReLUGC {
			circs[k] = c.cache.reluCircuit(bits, n)
			ins[k] = append(gc.VecToBits(y1[sp[0]:sp[1]], bits), gc.VecToBits(z1[sp[0]:sp[1]], bits)...)
		} else {
			circs[k] = c.cache.signCircuit(bits, n)
			ins[k] = gc.VecToBits(y1[sp[0]:sp[1]], bits)
		}
	}
	if err := c.garb.RunBatch(circs, ins); err != nil {
		return err
	}
	if variant == ReLUGC {
		return nil
	}
	// Optimized variant: receive the sign bits the server decoded, then
	// reshare — one round per chunk, in chunk order.
	for _, sp := range spans {
		n := sp[1] - sp[0]
		raw, err := c.conn.Recv()
		if err != nil {
			return fmt.Errorf("core: recv sign bits: %w", err)
		}
		if len(raw) != (n+7)/8 {
			return fmt.Errorf("core: sign bits are %d bytes, want %d", len(raw), (n+7)/8)
		}
		d := make(ring.Vec, n)
		for i := 0; i < n; i++ {
			if (raw[i/8]>>(uint(i)%8))&1 == 1 {
				d[i] = c.rg.Sub(y1[sp[0]+i], z1[sp[0]+i]) // positive: z0 = y0 + (y1 - z1)
			} else {
				d[i] = c.rg.Neg(z1[sp[0]+i]) // negative: z0 = -z1
			}
		}
		if err := c.conn.Send(c.rg.AppendVec(nil, d)); err != nil {
			return fmt.Errorf("core: send reshare: %w", err)
		}
	}
	return nil
}

// ReLUServer runs the server side over its share vector y0, returning its
// shares z0 of the activations. Chunking mirrors ReLUClient.
func (s *ServerNonlinear) ReLUServer(variant ReLUVariant, y0 ring.Vec) (ring.Vec, error) {
	if variant != ReLUGC && variant != ReLUOptimized {
		return nil, fmt.Errorf("core: unknown ReLU variant %d", variant)
	}
	bits := s.rg.Bits()
	spans := reluSpans(len(y0))
	circs := make([]*gc.Circuit, len(spans))
	ins := make([][]byte, len(spans))
	for k, sp := range spans {
		n := sp[1] - sp[0]
		if variant == ReLUGC {
			circs[k] = s.cache.reluCircuit(bits, n)
		} else {
			circs[k] = s.cache.signCircuit(bits, n)
		}
		ins[k] = gc.VecToBits(y0[sp[0]:sp[1]], bits)
	}
	outs, err := s.eval.RunBatch(circs, ins)
	if err != nil {
		return nil, err
	}
	z0 := make(ring.Vec, 0, len(y0))
	if variant == ReLUGC {
		for k, sp := range spans {
			z0 = append(z0, gc.BitsToVec(outs[k], bits, sp[1]-sp[0])...)
		}
		return z0, nil
	}
	// Optimized variant: reveal signs and reshare per chunk, mirroring
	// the client's round order.
	for k, sp := range spans {
		n := sp[1] - sp[0]
		signs := outs[k]
		packed := make([]byte, (n+7)/8)
		for i, b := range signs {
			if b&1 == 1 {
				packed[i/8] |= 1 << (uint(i) % 8)
			}
		}
		if err := s.conn.Send(packed); err != nil {
			return nil, fmt.Errorf("core: send sign bits: %w", err)
		}
		raw, err := s.conn.Recv()
		if err != nil {
			return nil, fmt.Errorf("core: recv reshare: %w", err)
		}
		d, rest, err := s.rg.DecodeVec(raw, n)
		if err != nil || len(rest) != 0 {
			return nil, fmt.Errorf("core: reshare message malformed: %v", err)
		}
		for i := 0; i < n; i++ {
			if signs[i]&1 == 1 {
				z0 = append(z0, s.rg.Add(y0[sp[0]+i], d[i]))
			} else {
				z0 = append(z0, d[i])
			}
		}
	}
	return z0, nil
}
