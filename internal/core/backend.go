package core

import (
	"fmt"

	"abnn2/internal/quant"
)

// Per-layer backend selection. Every matmul backend in the repo produces
// the same object — additive shares U (server) and V (client) with
// U + V = W * R over Z_2^l — so the offline phase of each linear layer
// can run under a different protocol without the online phase noticing:
// the online messages depend only on the shares, never on how they were
// generated. A Schedule fixes that choice per layer; the cost-model
// planner (internal/plan) emits one, and the conformance sweep
// (internal/testkit) locks arbitrary mixes against the plaintext oracle.

// BackendID identifies one secure-matmul offline backend.
type BackendID uint8

const (
	// BackendABNN2 is the paper's 1-out-of-N OT triplet protocol
	// (one-batch or multi-batch picked by ModeFor, as always).
	BackendABNN2 BackendID = iota
	// BackendSecureML is the bitwise correlated-OT triplet baseline.
	BackendSecureML
	// BackendMiniONN is the Paillier additively-homomorphic baseline.
	BackendMiniONN
	// BackendQuotient is the ternary correlated-OT baseline; it is
	// vector-only (o = 1) and requires weights in {-1, 0, 1}.
	BackendQuotient

	numBackends
)

func (b BackendID) String() string {
	switch b {
	case BackendABNN2:
		return "abnn2"
	case BackendSecureML:
		return "secureml"
	case BackendMiniONN:
		return "minionn"
	case BackendQuotient:
		return "quotient"
	}
	return fmt.Sprintf("BackendID(%d)", uint8(b))
}

// Valid reports whether b names a known backend.
func (b BackendID) Valid() bool { return b < numBackends }

// ParseBackend parses a backend name as printed by BackendID.String.
func ParseBackend(s string) (BackendID, error) {
	for b := BackendID(0); b < numBackends; b++ {
		if b.String() == s {
			return b, nil
		}
	}
	return 0, fmt.Errorf("core: unknown backend %q", s)
}

// Backends lists every backend id, in wire order.
func Backends() []BackendID {
	out := make([]BackendID, numBackends)
	for i := range out {
		out[i] = BackendID(i)
	}
	return out
}

// LayerChoice fixes one linear layer's offline backend. Scheme, when
// non-nil, overrides the session fragmentation scheme for the ABNN2
// backend (an alternative η/γ decomposition of the same weight range);
// it must be nil for the baselines, which do not fragment.
type LayerChoice struct {
	Backend BackendID
	Scheme  quant.Scheme
}

// Schedule assigns one LayerChoice per linear layer. A nil Schedule is
// the legacy path — every layer runs ABNN2 under the session scheme —
// and is transcript-identical to sessions that predate scheduling.
type Schedule []LayerChoice

// Validate checks the schedule against a layer count and, on the server
// side, the weights each choice must be able to represent (weights is
// nil on the client, which holds none).
func (s Schedule) Validate(arch Arch, weights [][]int64) error {
	if s == nil {
		return nil
	}
	if len(s) != len(arch.Layers) {
		return fmt.Errorf("core: schedule has %d layers, architecture has %d", len(s), len(arch.Layers))
	}
	if weights != nil && len(weights) != len(arch.Layers) {
		return fmt.Errorf("core: %d weight sets for %d layers", len(weights), len(arch.Layers))
	}
	for li, ch := range s {
		if !ch.Backend.Valid() {
			return fmt.Errorf("core: layer %d: unknown backend %d", li, uint8(ch.Backend))
		}
		if ch.Scheme != nil {
			if ch.Backend != BackendABNN2 {
				return fmt.Errorf("core: layer %d: scheme override on non-ABNN2 backend %s", li, ch.Backend)
			}
			for f := 0; f < ch.Scheme.Gamma(); f++ {
				if n := ch.Scheme.FragmentN(f); n < 2 || n > 256 {
					return fmt.Errorf("core: layer %d: fragment %d has N=%d, want [2,256]", li, f, n)
				}
			}
		}
		if weights == nil {
			continue
		}
		switch ch.Backend {
		case BackendABNN2:
			if ch.Scheme != nil {
				min, max := ch.Scheme.Range()
				for _, w := range weights[li] {
					if w < min || w > max {
						return fmt.Errorf("core: layer %d: weight %d outside scheme %s range", li, w, ch.Scheme.Name())
					}
				}
			}
		case BackendQuotient:
			for _, w := range weights[li] {
				if w < -1 || w > 1 {
					return fmt.Errorf("core: layer %d: weight %d outside quotient's ternary range", li, w)
				}
			}
		}
	}
	return nil
}
