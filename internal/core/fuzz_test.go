package core

import (
	"sync"
	"testing"

	"abnn2/internal/prg"
	"abnn2/internal/quant"
	"abnn2/internal/ring"
	"abnn2/internal/transport"
)

// fuzzServerTriplets builds a real ServerTriplets (base OTs against a
// throwaway client) and returns the peer conn for injecting payload
// flights. The drainer discards the server's outgoing u matrices.
func fuzzServerTriplets(f *testing.F, p Params) (*ServerTriplets, transport.Conn) {
	f.Helper()
	ca, cb := transport.Pipe()
	var (
		cerr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, cerr = NewClientTriplets(cb, p, 7, prg.New(prg.SeedFromInt(1)))
	}()
	srv, serr := NewServerTripletsSeeded(ca, p, 7, prg.New(prg.SeedFromInt(2)))
	wg.Wait()
	if cerr != nil || serr != nil {
		f.Fatalf("setup: client=%v server=%v", cerr, serr)
	}
	go func() {
		for {
			if _, err := cb.Recv(); err != nil {
				return
			}
		}
	}()
	return srv, cb
}

// FuzzTripletPayloadOneBatch feeds arbitrary bytes as the client's
// one-batch ciphertext payload. Shape 2x3 over the 4(2,2) scheme gives
// gamma*m*n = 12 OTs in a single chunk; the valid payload length is
// sum over OTs of (N_f - 1) * elemBytes = 12 * 3 * 5 = 180 bytes for
// the 33-bit ring. Anything else must error; a correctly-sized garbage
// payload must decode (to garbage shares) without panicking.
func FuzzTripletPayloadOneBatch(f *testing.F) {
	p := Params{Ring: ring.New(33), Scheme: quant.NewBitScheme(true, 2, 2), Workers: 1}
	srv, peer := fuzzServerTriplets(f, p)
	sh := MatShape{M: 2, N: 3, O: 1}
	W := []int64{1, -2, 0, 3, -1, 2}
	f.Add(make([]byte, 180))
	f.Add(make([]byte, 179))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := peer.Send(data); err != nil {
			t.Skip("pipe closed")
		}
		srv.GenerateServer(sh, W, OneBatch)
	})
}

// FuzzTripletPayloadMultiBatch is the same for the multi-batch packing:
// N_f * o * elemBytes per OT, so (4+4) * 2 * 5 * 6 = 480 bytes for the
// same shape at o=2. The DecodeVec canonicality check (high pad bits of
// the 33-bit ring must be zero) is reachable only here.
func FuzzTripletPayloadMultiBatch(f *testing.F) {
	p := Params{Ring: ring.New(33), Scheme: quant.NewBitScheme(true, 2, 2), Workers: 1}
	srv, peer := fuzzServerTriplets(f, p)
	sh := MatShape{M: 2, N: 3, O: 2}
	W := []int64{1, -2, 0, 3, -1, 2}
	f.Add(make([]byte, 480))
	f.Add(make([]byte, 479))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := peer.Send(data); err != nil {
			t.Skip("pipe closed")
		}
		srv.GenerateServer(sh, W, MultiBatch)
	})
}
