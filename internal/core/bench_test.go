package core

import (
	"sync"
	"testing"

	"abnn2/internal/prg"
	"abnn2/internal/quant"
	"abnn2/internal/ring"
	"abnn2/internal/transport"
)

// benchTriplets measures offline triplet generation throughput for one
// scheme and shape.
func benchTriplets(b *testing.B, scheme quant.Scheme, sh MatShape, mode Mode) {
	p := Params{Ring: ring.New(32), Scheme: scheme}
	ca, cb := transport.Pipe()
	defer ca.Close()
	var (
		ct  *ClientTriplets
		err error
		wg  sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		ct, err = NewClientTriplets(ca, p, 1, prg.New(prg.SeedFromInt(1)))
	}()
	st, serr := NewServerTriplets(cb, p, 1)
	wg.Wait()
	if err != nil || serr != nil {
		b.Fatalf("setup: %v %v", err, serr)
	}
	rng := prg.New(prg.SeedFromInt(2))
	min, max := scheme.Range()
	span := int(max - min + 1)
	W := make([]int64, sh.M*sh.N)
	for i := range W {
		W[i] = min + int64(rng.Intn(span))
	}
	R := rng.Mat(p.Ring, sh.N, sh.O)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var cwg sync.WaitGroup
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			if _, err := ct.GenerateClient(sh, R, mode); err != nil {
				b.Error(err)
			}
		}()
		if _, err := st.GenerateServer(sh, W, mode); err != nil {
			b.Fatal(err)
		}
		cwg.Wait()
	}
	b.ReportMetric(float64(p.NumOTs(sh)), "OTs/op")
}

func BenchmarkTripletsOneBatch8bit(b *testing.B) {
	benchTriplets(b, quant.Uniform(2, 4), MatShape{M: 128, N: 128, O: 1}, OneBatch)
}

func BenchmarkTripletsOneBatchBinary(b *testing.B) {
	benchTriplets(b, quant.Binary(), MatShape{M: 128, N: 128, O: 1}, OneBatch)
}

func BenchmarkTripletsOneBatchTernary(b *testing.B) {
	benchTriplets(b, quant.Ternary(), MatShape{M: 128, N: 128, O: 1}, OneBatch)
}

func BenchmarkTripletsMultiBatch16(b *testing.B) {
	benchTriplets(b, quant.Uniform(2, 4), MatShape{M: 128, N: 128, O: 16}, MultiBatch)
}

// benchReLU measures the non-linear protocols.
func benchReLU(b *testing.B, variant ReLUVariant, n int) {
	rg := ring.New(32)
	ca, cb := transport.Pipe()
	defer ca.Close()
	var (
		cn  *ClientNonlinear
		err error
		wg  sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		cn, err = NewClientNonlinear(ca, rg, 5, prg.New(prg.SeedFromInt(1)))
	}()
	sn, serr := NewServerNonlinear(cb, rg, 5, prg.New(prg.SeedFromInt(2)))
	wg.Wait()
	if err != nil || serr != nil {
		b.Fatalf("setup: %v %v", err, serr)
	}
	rng := prg.New(prg.SeedFromInt(3))
	y0 := rng.Vec(rg, n)
	y1 := rng.Vec(rg, n)
	z1 := rng.Vec(rg, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var cwg sync.WaitGroup
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			if err := cn.ReLUClient(variant, y1, z1); err != nil {
				b.Error(err)
			}
		}()
		if _, err := sn.ReLUServer(variant, y0); err != nil {
			b.Fatal(err)
		}
		cwg.Wait()
	}
	b.ReportMetric(float64(n), "neurons/op")
}

func BenchmarkReLUGC256(b *testing.B)        { benchReLU(b, ReLUGC, 256) }
func BenchmarkReLUOptimized256(b *testing.B) { benchReLU(b, ReLUOptimized, 256) }

// benchMaxPool measures the GC pooling protocol over 2x2 windows.
func BenchmarkMaxPool256Windows(b *testing.B) {
	rg := ring.New(32)
	ca, cb := transport.Pipe()
	defer ca.Close()
	var (
		cn  *ClientNonlinear
		err error
		wg  sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		cn, err = NewClientNonlinear(ca, rg, 5, prg.New(prg.SeedFromInt(1)))
	}()
	sn, serr := NewServerNonlinear(cb, rg, 5, prg.New(prg.SeedFromInt(2)))
	wg.Wait()
	if err != nil || serr != nil {
		b.Fatalf("setup: %v %v", err, serr)
	}
	const nWin = 256
	rng := prg.New(prg.SeedFromInt(3))
	y0 := rng.Vec(rg, nWin*4)
	y1 := rng.Vec(rg, nWin*4)
	z1 := rng.Vec(rg, nWin)
	windows := make([][]int, nWin)
	for i := range windows {
		windows[i] = []int{4 * i, 4*i + 1, 4*i + 2, 4*i + 3}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var cwg sync.WaitGroup
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			if err := cn.MaxPoolClient(y1, z1, windows, true); err != nil {
				b.Error(err)
			}
		}()
		if _, err := sn.MaxPoolServer(y0, windows, true); err != nil {
			b.Fatal(err)
		}
		cwg.Wait()
	}
	b.ReportMetric(nWin, "windows/op")
}
