package core

import (
	"sync"
	"testing"

	"abnn2/internal/otext"
	"abnn2/internal/prg"
	"abnn2/internal/quant"
	"abnn2/internal/ring"
	"abnn2/internal/transport"
)

// tripletPair creates a connected client/server triplet generator pair.
func tripletPair(t *testing.T, p Params) (*ClientTriplets, *ServerTriplets, *transport.Meter, func()) {
	t.Helper()
	ca, cb, meter := transport.MeteredPipe()
	var (
		ct  *ClientTriplets
		err error
		wg  sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		ct, err = NewClientTriplets(ca, p, 1, prg.New(prg.SeedFromInt(10)))
	}()
	st, serr := NewServerTriplets(cb, p, 1)
	wg.Wait()
	if err != nil || serr != nil {
		t.Fatalf("setup: %v %v", err, serr)
	}
	return ct, st, meter, func() { ca.Close() }
}

// randomWeights draws representable weights for the scheme.
func randomWeights(scheme quant.Scheme, n int, seed uint64) []int64 {
	g := prg.New(prg.SeedFromInt(seed))
	min, max := scheme.Range()
	out := make([]int64, n)
	span := int(max - min + 1)
	for i := range out {
		out[i] = min + int64(g.Intn(span))
	}
	return out
}

// runTriplets executes the offline phase and checks U + V = W * R.
func runTriplets(t *testing.T, p Params, sh MatShape, mode Mode, seed uint64) transport.Stats {
	t.Helper()
	ct, st, meter, done := tripletPair(t, p)
	defer done()
	W := randomWeights(p.Scheme, sh.M*sh.N, seed)
	R := prg.New(prg.SeedFromInt(seed+1)).Mat(p.Ring, sh.N, sh.O)
	meter.Reset()
	var (
		V    *ring.Mat
		cerr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		V, cerr = ct.GenerateClient(sh, R, mode)
	}()
	U, serr := st.GenerateServer(sh, W, mode)
	wg.Wait()
	if cerr != nil || serr != nil {
		t.Fatalf("mode %v: client=%v server=%v", mode, cerr, serr)
	}
	// Reference: W * R over the ring with two's-complement weights.
	Wm := ring.NewMat(sh.M, sh.N)
	for i, w := range W {
		Wm.Data[i] = p.Ring.FromSigned(w)
	}
	want := p.Ring.MulMat(Wm, R)
	got := p.Ring.AddMat(U, V)
	if !p.Ring.EqualMat(got, want) {
		for i := 0; i < sh.M; i++ {
			for k := 0; k < sh.O; k++ {
				if got.At(i, k) != want.At(i, k) {
					t.Fatalf("mode %v scheme %s: (U+V)[%d][%d] = %d, want %d",
						mode, p.Scheme.Name(), i, k, got.At(i, k), want.At(i, k))
				}
			}
		}
	}
	return meter.Snapshot()
}

func TestOneBatchAllSchemes(t *testing.T) {
	schemes := []quant.Scheme{
		quant.Binary(),
		quant.Ternary(),
		quant.OneBit(8, true),
		quant.Uniform(2, 4),
		quant.NewBitScheme(true, 3, 3, 2),
		quant.NewBitScheme(true, 4, 4),
		quant.NewBitScheme(true, 2, 1),
	}
	for _, s := range schemes {
		p := Params{Ring: ring.New(32), Scheme: s}
		runTriplets(t, p, MatShape{M: 5, N: 7, O: 1}, OneBatch, 100)
	}
}

func TestNaiveNMatchesOneBatch(t *testing.T) {
	p := Params{Ring: ring.New(32), Scheme: quant.Uniform(2, 2)}
	runTriplets(t, p, MatShape{M: 3, N: 4, O: 1}, NaiveN, 200)
}

func TestMultiBatchAllSchemes(t *testing.T) {
	schemes := []quant.Scheme{
		quant.Binary(),
		quant.Ternary(),
		quant.Uniform(2, 4),
		quant.NewBitScheme(true, 3, 3, 2),
	}
	for _, s := range schemes {
		p := Params{Ring: ring.New(32), Scheme: s}
		runTriplets(t, p, MatShape{M: 4, N: 6, O: 5}, MultiBatch, 300)
	}
}

func TestRingWidths(t *testing.T) {
	for _, bits := range []uint{16, 32, 64} {
		p := Params{Ring: ring.New(bits), Scheme: quant.Uniform(2, 2)}
		runTriplets(t, p, MatShape{M: 3, N: 3, O: 2}, MultiBatch, uint64(bits))
		runTriplets(t, p, MatShape{M: 3, N: 3, O: 1}, OneBatch, uint64(bits))
	}
}

func TestChunkingBoundary(t *testing.T) {
	// Shape chosen so gamma*m*n straddles a chunk boundary.
	p := Params{Ring: ring.New(32), Scheme: quant.Uniform(2, 2)}
	sh := MatShape{M: 1, N: chunkOTs/2 + 7, O: 1} // 2*(2048+7) OTs > chunk
	runTriplets(t, p, sh, OneBatch, 400)
}

// Communication must match Table 1's formulas exactly:
// one-batch:  gamma*m*n * (l*(N-1) + 2*kappa) bits
// multi-batch: gamma*m*n * (o*l*N + 2*kappa) bits
// (payload client->server; column matrices server->client).
func TestCommunicationMatchesTable1(t *testing.T) {
	l := 32
	cases := []struct {
		scheme quant.Scheme
		sh     MatShape
		mode   Mode
	}{
		{quant.Uniform(2, 4), MatShape{8, 16, 1}, OneBatch},
		{quant.Ternary(), MatShape{8, 16, 1}, OneBatch},
		{quant.Uniform(2, 4), MatShape{8, 16, 4}, MultiBatch},
		{quant.NewBitScheme(true, 3, 3, 2), MatShape{8, 16, 1}, OneBatch},
	}
	for _, c := range cases {
		p := Params{Ring: ring.New(uint(l)), Scheme: c.scheme}
		stats := runTriplets(t, p, c.sh, c.mode, 500)
		var payloadBits, colBits int64
		for f := 0; f < c.scheme.Gamma(); f++ {
			n := int64(c.scheme.FragmentN(f))
			per := int64(c.sh.M * c.sh.N)
			if c.mode == OneBatch {
				payloadBits += per * int64(l) * (n - 1)
			} else {
				payloadBits += per * int64(c.sh.O) * int64(l) * n
			}
			colBits += per * 2 * otext.Kappa
		}
		if got := stats.BytesAB * 8; got != payloadBits {
			t.Errorf("%s %v: client payload %d bits, want %d", c.scheme.Name(), c.mode, got, payloadBits)
		}
		if got := stats.BytesBA * 8; got != colBits {
			t.Errorf("%s %v: server columns %d bits, want %d", c.scheme.Name(), c.mode, got, colBits)
		}
	}
}

// One-batch must use strictly less client->server traffic than naive-N
// for the same shape (the section 4.1.3 claim).
func TestOneBatchBeatsNaive(t *testing.T) {
	p := Params{Ring: ring.New(32), Scheme: quant.Uniform(2, 4)}
	sh := MatShape{M: 4, N: 8, O: 1}
	sOne := runTriplets(t, p, sh, OneBatch, 600)
	sNaive := runTriplets(t, p, sh, NaiveN, 601)
	if sOne.BytesAB >= sNaive.BytesAB {
		t.Errorf("one-batch payload %d >= naive %d", sOne.BytesAB, sNaive.BytesAB)
	}
}

func TestShapeValidation(t *testing.T) {
	p := Params{Ring: ring.New(32), Scheme: quant.Binary()}
	ct, st, _, done := tripletPair(t, p)
	defer done()
	if _, err := ct.GenerateClient(MatShape{M: 2, N: 2, O: 3}, ring.NewMat(2, 3), OneBatch); err == nil {
		t.Error("one-batch with o=3 accepted by client")
	}
	if _, err := st.GenerateServer(MatShape{M: 2, N: 2, O: 1}, []int64{0, 1, 0}, OneBatch); err == nil {
		t.Error("wrong weight count accepted by server")
	}
	if _, err := st.GenerateServer(MatShape{M: 1, N: 2, O: 1}, []int64{0, 5}, OneBatch); err == nil {
		t.Error("out-of-range weight accepted by server")
	}
	if _, err := ct.GenerateClient(MatShape{M: 2, N: 2, O: 1}, ring.NewMat(3, 1), OneBatch); err == nil {
		t.Error("wrong R shape accepted by client")
	}
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{}).Validate(); err == nil {
		t.Error("zero params validated")
	}
	if err := (Params{Ring: ring.New(32)}).Validate(); err == nil {
		t.Error("missing scheme validated")
	}
	if err := (Params{Ring: ring.New(32), Scheme: quant.Binary()}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}
