package core

import (
	"sync"
	"testing"

	"abnn2/internal/prg"
	"abnn2/internal/ring"
	"abnn2/internal/transport"
)

func nonlinearPair(t *testing.T, rg ring.Ring) (*ClientNonlinear, *ServerNonlinear, *transport.Meter, func()) {
	t.Helper()
	ca, cb, meter := transport.MeteredPipe()
	var (
		cn  *ClientNonlinear
		err error
		wg  sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		cn, err = NewClientNonlinear(ca, rg, 5, prg.New(prg.SeedFromInt(1)))
	}()
	sn, serr := NewServerNonlinear(cb, rg, 5, prg.New(prg.SeedFromInt(2)))
	wg.Wait()
	if err != nil || serr != nil {
		t.Fatalf("setup: %v %v", err, serr)
	}
	return cn, sn, meter, func() { ca.Close() }
}

// runReLU shares ys, runs the protocol, and checks z0+z1 = ReLU(y).
func runReLU(t *testing.T, rg ring.Ring, variant ReLUVariant, ys []int64) transport.Stats {
	t.Helper()
	cn, sn, meter, done := nonlinearPair(t, rg)
	defer done()
	rng := prg.New(prg.SeedFromInt(77))
	n := len(ys)
	y0 := make(ring.Vec, n)
	y1 := make(ring.Vec, n)
	z1 := rng.Vec(rg, n)
	for i, y := range ys {
		y1[i] = rng.Elem(rg)
		y0[i] = rg.Sub(rg.FromSigned(y), y1[i])
	}
	meter.Reset()
	var (
		cerr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		cerr = cn.ReLUClient(variant, y1, z1)
	}()
	z0, serr := sn.ReLUServer(variant, y0)
	wg.Wait()
	if cerr != nil || serr != nil {
		t.Fatalf("variant %v: client=%v server=%v", variant, cerr, serr)
	}
	for i, y := range ys {
		want := int64(0)
		if y > 0 {
			want = y
		}
		got := rg.Signed(rg.Add(z0[i], z1[i]))
		if got != want {
			t.Errorf("variant %v neuron %d (y=%d): ReLU = %d, want %d", variant, i, y, got, want)
		}
	}
	return meter.Snapshot()
}

func TestReLUBothVariants(t *testing.T) {
	ys := []int64{0, 1, -1, 500, -500, 32000, -32000, 12345, -12345}
	for _, variant := range []ReLUVariant{ReLUGC, ReLUOptimized} {
		for _, bits := range []uint{16, 32} {
			runReLU(t, ring.New(bits), variant, ys)
		}
	}
}

func TestReLU64Bit(t *testing.T) {
	ys := []int64{1 << 40, -(1 << 40), 7, -7}
	runReLU(t, ring.New(64), ReLUGC, ys)
	runReLU(t, ring.New(64), ReLUOptimized, ys)
}

// The optimised variant must move fewer garbled-table bytes: its circuit
// is ~1/3 the AND gates. Total traffic should reflect that.
func TestOptimizedReLUCheaper(t *testing.T) {
	ys := make([]int64, 64)
	for i := range ys {
		ys[i] = int64(i*37 - 1000)
	}
	rg := ring.New(32)
	full := runReLU(t, rg, ReLUGC, ys)
	opt := runReLU(t, rg, ReLUOptimized, ys)
	if opt.TotalBytes() >= full.TotalBytes() {
		t.Errorf("optimized ReLU used %d bytes, full GC %d", opt.TotalBytes(), full.TotalBytes())
	}
}

// Vectors longer than one chunk must be processed correctly across the
// chunk boundary.
func TestReLUChunkBoundary(t *testing.T) {
	n := reluChunk + 37
	ys := make([]int64, n)
	for i := range ys {
		ys[i] = int64(i - n/2)
	}
	runReLU(t, ring.New(16), ReLUGC, ys)
	runReLU(t, ring.New(16), ReLUOptimized, ys)
}

func TestReLUShareLengthMismatch(t *testing.T) {
	cn, _, _, done := nonlinearPair(t, ring.New(16))
	defer done()
	if err := cn.ReLUClient(ReLUGC, make(ring.Vec, 2), make(ring.Vec, 3)); err == nil {
		t.Error("length mismatch accepted")
	}
}
