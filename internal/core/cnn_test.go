package core

import (
	"sync"
	"testing"

	"abnn2/internal/nn"
	"abnn2/internal/prg"
	"abnn2/internal/quant"
	"abnn2/internal/ring"
	"abnn2/internal/transport"
)

// buildTestCNN constructs a quantized CNN directly (integer weights,
// scale 1) so the plaintext reference is exact:
// conv(1->2, 3x3, pad 1) + ReLU + pool2 -> conv(2->3, 3x3, s1) + ReLU ->
// FC(3*2*2 -> 4... dims worked out below).
func buildTestCNN(t *testing.T, scheme quant.Scheme, withPool bool) *nn.QuantizedModel {
	t.Helper()
	rng := prg.New(prg.SeedFromInt(77))
	min, max := scheme.Range()
	span := int(max - min + 1)
	randW := func(n int) []int64 {
		w := make([]int64, n)
		for i := range w {
			w[i] = min + int64(rng.Intn(span))
		}
		return w
	}
	conv1 := &nn.ConvSpec{Ci: 1, H: 8, W: 8, Kh: 3, Kw: 3, Stride: 1, Pad: 1} // out 2x8x8
	l1 := &nn.QuantizedLayer{
		In: conv1.InputSize(), Out: 2,
		W: randW(2 * conv1.ColRows()), B: randW(2),
		Scale: 1, ReLU: true, Scheme: scheme, Conv: conv1,
	}
	in2H := 8
	if withPool {
		l1.Pool = &nn.PoolSpec{K: 2} // out 2x4x4
		in2H = 4
	}
	conv2 := &nn.ConvSpec{Ci: 2, H: in2H, W: in2H, Kh: 3, Kw: 3, Stride: 1, Pad: 0} // out 3x(in2H-2)^2
	l2 := &nn.QuantizedLayer{
		In: conv2.InputSize(), Out: 3,
		W: randW(3 * conv2.ColRows()), B: randW(3),
		Scale: 1, ReLU: true, Scheme: scheme, Conv: conv2,
	}
	fcIn := 3 * (in2H - 2) * (in2H - 2)
	l3 := &nn.QuantizedLayer{
		In: fcIn, Out: 4,
		W: randW(4 * fcIn), B: randW(4),
		Scale: 1, Scheme: scheme,
	}
	return &nn.QuantizedModel{Frac: 0, Layers: []*nn.QuantizedLayer{l1, l2, l3}}
}

// runCNNInference executes secure inference for the CNN and compares
// against the plaintext ring reference, bit-exactly.
func runCNNInference(t *testing.T, qm *nn.QuantizedModel, p Params, variant ReLUVariant, batch int) {
	t.Helper()
	ca, cb, _ := transport.MeteredPipe()
	defer ca.Close()
	arch := ArchOf(qm)
	var (
		serr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv, err := NewServerEngine(ca, qm, p, variant)
		if err == nil {
			err = srv.Offline(batch)
		}
		if err == nil {
			err = srv.Online()
		}
		serr = err
	}()
	cli, err := NewClientEngine(cb, arch, p, variant, prg.New(prg.SeedFromInt(33)))
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Offline(batch); err != nil {
		t.Fatal(err)
	}
	rng := prg.New(prg.SeedFromInt(44))
	X := ring.NewMat(arch.InputSize(), batch)
	for i := range X.Data {
		X.Data[i] = p.Ring.FromSigned(int64(rng.Intn(9) - 4))
	}
	got, err := cli.Predict(X)
	wg.Wait()
	if serr != nil || err != nil {
		t.Fatalf("server=%v client=%v", serr, err)
	}
	for k := 0; k < batch; k++ {
		x := make(ring.Vec, arch.InputSize())
		for i := range x {
			x[i] = X.At(i, k)
		}
		want := qm.ForwardRing(p.Ring, x)
		if len(want) != got.Rows {
			t.Fatalf("output rows %d vs reference %d", got.Rows, len(want))
		}
		for i := range want {
			if got.At(i, k) != want[i] {
				t.Fatalf("col %d out %d: secure %d != plaintext %d",
					k, i, p.Ring.Signed(got.At(i, k)), p.Ring.Signed(want[i]))
			}
		}
	}
}

func TestSecureCNNWithPool(t *testing.T) {
	scheme := quant.Uniform(2, 2)
	qm := buildTestCNN(t, scheme, true)
	p := Params{Ring: ring.New(32), Scheme: scheme}
	runCNNInference(t, qm, p, ReLUGC, 1)
	runCNNInference(t, qm, p, ReLUGC, 3)
}

func TestSecureCNNWithoutPool(t *testing.T) {
	scheme := quant.Ternary()
	qm := buildTestCNN(t, scheme, false)
	p := Params{Ring: ring.New(32), Scheme: scheme}
	runCNNInference(t, qm, p, ReLUGC, 2)
}

func TestSecureCNNOptimizedReLU(t *testing.T) {
	// Optimized ReLU applies to non-pool activation layers; pooled layers
	// always use the max circuit.
	scheme := quant.Uniform(2, 2)
	qm := buildTestCNN(t, scheme, true)
	p := Params{Ring: ring.New(32), Scheme: scheme}
	runCNNInference(t, qm, p, ReLUOptimized, 1)
}

// End-to-end with the private argmax finish: the classes must equal the
// plaintext argmax, and the server must learn nothing (checked by
// protocol design; here we check correctness).
func TestSecureInferenceArgmaxFinish(t *testing.T) {
	scheme := quant.Uniform(2, 4)
	m := nn.NewModel(16, 8, 4)
	m.InitXavier(prg.New(prg.SeedFromInt(9)))
	qm := nn.Quantize(m, scheme, 6)
	p := Params{Ring: ring.New(32), Scheme: scheme}
	ca, cb, _ := transport.MeteredPipe()
	defer ca.Close()
	arch := ArchOf(qm)
	batch := 4
	var (
		serr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv, err := NewServerEngine(ca, qm, p, ReLUGC)
		if err == nil {
			err = srv.Offline(batch)
		}
		if err == nil {
			err = srv.OnlineArgmax()
		}
		serr = err
	}()
	cli, err := NewClientEngine(cb, arch, p, ReLUGC, prg.New(prg.SeedFromInt(31)))
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Offline(batch); err != nil {
		t.Fatal(err)
	}
	rng := prg.New(prg.SeedFromInt(41))
	X := ring.NewMat(arch.InputSize(), batch)
	for i := range X.Data {
		X.Data[i] = p.Ring.FromSigned(int64(rng.Intn(64) - 32))
	}
	classes, err := cli.PredictArgmax(X)
	wg.Wait()
	if serr != nil || err != nil {
		t.Fatalf("server=%v client=%v", serr, err)
	}
	for k := 0; k < batch; k++ {
		x := make(ring.Vec, arch.InputSize())
		for i := range x {
			x[i] = X.At(i, k)
		}
		out := qm.ForwardRing(p.Ring, x)
		best := 0
		for i := 1; i < len(out); i++ {
			if p.Ring.Signed(out[i]) > p.Ring.Signed(out[best]) {
				best = i
			}
		}
		if classes[k] != best {
			t.Errorf("sample %d: secure argmax %d, plaintext %d", k, classes[k], best)
		}
	}
}

// CNN + requantization on the 32-bit ring: conv outputs rescale with the
// same local-truncation machinery as FC layers. Secure vs reference with
// truncation tolerance, plus pooled layers (max is order-preserving, so
// +-1 slack survives pooling as +-1).
func TestSecureCNNRequant32(t *testing.T) {
	scheme := quant.Uniform(2, 2)
	qm := buildTestCNN(t, scheme, true)
	for _, l := range qm.Layers {
		l.ReqC, l.ReqT = 7, 3 // rescale by 7/8 each layer, keeps magnitudes sane
	}
	p := Params{Ring: ring.New(32), Scheme: scheme}
	ca, cb, _ := transport.MeteredPipe()
	defer ca.Close()
	arch := ArchOf(qm)
	batch := 2
	var (
		serr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv, err := NewServerEngine(ca, qm, p, ReLUGC)
		if err == nil {
			err = srv.Offline(batch)
		}
		if err == nil {
			err = srv.Online()
		}
		serr = err
	}()
	cli, err := NewClientEngine(cb, arch, p, ReLUGC, prg.New(prg.SeedFromInt(35)))
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Offline(batch); err != nil {
		t.Fatal(err)
	}
	rng := prg.New(prg.SeedFromInt(45))
	X := ring.NewMat(arch.InputSize(), batch)
	for i := range X.Data {
		X.Data[i] = p.Ring.FromSigned(int64(rng.Intn(9) - 4))
	}
	got, err := cli.Predict(X)
	wg.Wait()
	if serr != nil || err != nil {
		t.Fatalf("server=%v client=%v", serr, err)
	}
	// Tolerance: per-layer +-1 amplified by the next layers' weight sums;
	// with 4-bit weights and 3 layers a generous bound is plenty.
	const tol = 2000
	for k := 0; k < batch; k++ {
		x := make(ring.Vec, arch.InputSize())
		for i := range x {
			x[i] = X.At(i, k)
		}
		want := qm.ForwardRing(p.Ring, x)
		for i := range want {
			d := p.Ring.Signed(got.At(i, k)) - p.Ring.Signed(want[i])
			if d < -tol || d > tol {
				t.Fatalf("col %d out %d: secure %d vs reference %d",
					k, i, p.Ring.Signed(got.At(i, k)), p.Ring.Signed(want[i]))
			}
		}
	}
}

// A linear junction (layer without ReLU or pool feeding another layer)
// must chain client shares correctly.
func TestLinearJunction(t *testing.T) {
	scheme := quant.Uniform(2, 2)
	rng := prg.New(prg.SeedFromInt(5))
	min, max := scheme.Range()
	span := int(max - min + 1)
	randW := func(n int) []int64 {
		w := make([]int64, n)
		for i := range w {
			w[i] = min + int64(rng.Intn(span))
		}
		return w
	}
	qm := &nn.QuantizedModel{Frac: 0, Layers: []*nn.QuantizedLayer{
		{In: 6, Out: 5, W: randW(30), B: randW(5), Scale: 1, Scheme: scheme}, // no relu
		{In: 5, Out: 3, W: randW(15), B: randW(3), Scale: 1, Scheme: scheme},
	}}
	p := Params{Ring: ring.New(32), Scheme: scheme}
	runCNNInference(t, qm, p, ReLUGC, 2)
}
