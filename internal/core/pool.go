package core

import (
	"fmt"
	"math/bits"

	"abnn2/internal/gc"
	"abnn2/internal/ring"
)

// Secure max pooling and secure argmax, built on the same garbled-circuit
// session as the ReLU protocols. Both are extensions beyond the paper's
// FC-only evaluation: pooling enables CNNs (the workloads MiniONN/XONN
// evaluate), and argmax lets the client learn only the predicted class
// instead of the full score vector.

// poolChunk bounds windows per garbled circuit, mirroring reluChunk.
const poolChunk = 512

type poolKey struct {
	bits uint
	win  int
	n    int
	relu bool
}

type argmaxKey struct {
	bits    uint
	n       int
	idxBits uint
	batch   int
}

// MaxPoolClient runs the client (garbler) side of non-overlapping max
// pooling. y1 is the client's share of the pre-pool values; windows[i]
// lists the y-indices of output window i; z1 is the client's pre-chosen
// share of the pooled outputs (one per window). withReLU fuses
// max(0, .) into the pool.
func (c *ClientNonlinear) MaxPoolClient(y1, z1 ring.Vec, windows [][]int, withReLU bool) error {
	if len(z1) != len(windows) {
		return fmt.Errorf("core: %d z1 shares for %d windows", len(z1), len(windows))
	}
	win, err := uniformWindow(windows)
	if err != nil {
		return err
	}
	rbits := c.rg.Bits()
	var circs []*gc.Circuit
	var ins [][]byte
	for start := 0; start < len(windows); start += poolChunk {
		end := start + poolChunk
		if end > len(windows) {
			end = len(windows)
		}
		n := end - start
		// Gather y1 values in window order.
		gathered := make(ring.Vec, 0, n*win)
		for _, w := range windows[start:end] {
			for _, idx := range w {
				gathered = append(gathered, y1[idx])
			}
		}
		circs = append(circs, c.poolCircuit(rbits, win, n, withReLU))
		ins = append(ins, append(gc.VecToBits(gathered, rbits), gc.VecToBits(z1[start:end], rbits)...))
	}
	// All chunks garble as one batch on the worker pool.
	if err := c.garb.RunBatch(circs, ins); err != nil {
		return fmt.Errorf("core: maxpool garble: %w", err)
	}
	return nil
}

// MaxPoolServer runs the server (evaluator) side, returning its shares of
// the pooled outputs (one per window, in window order).
func (s *ServerNonlinear) MaxPoolServer(y0 ring.Vec, windows [][]int, withReLU bool) (ring.Vec, error) {
	win, err := uniformWindow(windows)
	if err != nil {
		return nil, err
	}
	rbits := s.rg.Bits()
	var circs []*gc.Circuit
	var ins [][]byte
	var ns []int
	for start := 0; start < len(windows); start += poolChunk {
		end := start + poolChunk
		if end > len(windows) {
			end = len(windows)
		}
		n := end - start
		gathered := make(ring.Vec, 0, n*win)
		for _, w := range windows[start:end] {
			for _, idx := range w {
				gathered = append(gathered, y0[idx])
			}
		}
		circs = append(circs, s.poolCircuit(rbits, win, n, withReLU))
		ins = append(ins, gc.VecToBits(gathered, rbits))
		ns = append(ns, n)
	}
	outs, err := s.eval.RunBatch(circs, ins)
	if err != nil {
		return nil, fmt.Errorf("core: maxpool evaluate: %w", err)
	}
	z0 := make(ring.Vec, 0, len(windows))
	for k, out := range outs {
		z0 = append(z0, gc.BitsToVec(out, rbits, ns[k])...)
	}
	return z0, nil
}

func uniformWindow(windows [][]int) (int, error) {
	if len(windows) == 0 {
		return 0, fmt.Errorf("core: empty window set")
	}
	win := len(windows[0])
	for i, w := range windows {
		if len(w) != win {
			return 0, fmt.Errorf("core: window %d has %d elements, want %d", i, len(w), win)
		}
	}
	return win, nil
}

func (c *ClientNonlinear) poolCircuit(bits uint, win, n int, relu bool) *gc.Circuit {
	return c.cache.pool(poolKey{bits, win, n, relu})
}

func (s *ServerNonlinear) poolCircuit(bits uint, win, n int, relu bool) *gc.Circuit {
	return s.cache.pool(poolKey{bits, win, n, relu})
}

// ArgmaxClient runs the client side of secure argmax over a batch of
// score-share columns (y1 laid out sample-major: sample k occupies
// y1[k*n:(k+1)*n]). The client learns the argmax of each sample; the
// server learns nothing (it forwards masked indices).
func (c *ClientNonlinear) ArgmaxClient(y1 ring.Vec, n, batch int) ([]int, error) {
	if len(y1) != n*batch {
		return nil, fmt.Errorf("core: argmax shares %d for %d x %d", len(y1), n, batch)
	}
	idxBits := indexBits(n)
	rbits := c.rg.Bits()
	circ := c.cache.argmax(argmaxKey{rbits, n, idxBits, batch}, func() *gc.Circuit {
		return gc.BatchArgmaxCircuit(rbits, n, idxBits, batch)
	})
	// Fresh masks from the garbler's randomness pool: derive from a
	// dedicated PRG child so masks never repeat across calls.
	masks := make([]uint64, batch)
	maskBits := make([]byte, 0, batch*int(idxBits))
	for k := range masks {
		masks[k] = c.maskRng.Uint64() & ((1 << idxBits) - 1)
		maskBits = append(maskBits, gc.UintToBits(masks[k], idxBits)...)
	}
	in := append(gc.VecToBits(y1, rbits), maskBits...)
	if err := c.garb.Run(circ, in); err != nil {
		return nil, fmt.Errorf("core: argmax garble: %w", err)
	}
	raw, err := c.conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("core: argmax recv: %w", err)
	}
	want := (batch*int(idxBits) + 7) / 8
	if len(raw) != want {
		return nil, fmt.Errorf("core: argmax message is %d bytes, want %d", len(raw), want)
	}
	out := make([]int, batch)
	for k := 0; k < batch; k++ {
		var v uint64
		for i := 0; i < int(idxBits); i++ {
			bit := (raw[(k*int(idxBits)+i)/8] >> (uint(k*int(idxBits)+i) % 8)) & 1
			v |= uint64(bit) << uint(i)
		}
		idx := int(v ^ masks[k])
		if idx >= n {
			return nil, fmt.Errorf("core: argmax index %d out of range (corrupt transcript)", idx)
		}
		out[k] = idx
	}
	return out, nil
}

// ArgmaxServer runs the server side: evaluate the circuit and forward the
// masked indices to the client.
func (s *ServerNonlinear) ArgmaxServer(y0 ring.Vec, n, batch int) error {
	if len(y0) != n*batch {
		return fmt.Errorf("core: argmax shares %d for %d x %d", len(y0), n, batch)
	}
	idxBits := indexBits(n)
	rbits := s.rg.Bits()
	circ := s.cache.argmax(argmaxKey{rbits, n, idxBits, batch}, func() *gc.Circuit {
		return gc.BatchArgmaxCircuit(rbits, n, idxBits, batch)
	})
	out, err := s.eval.Run(circ, gc.VecToBits(y0, rbits))
	if err != nil {
		return fmt.Errorf("core: argmax evaluate: %w", err)
	}
	packed := make([]byte, (len(out)+7)/8)
	for i, b := range out {
		if b&1 == 1 {
			packed[i/8] |= 1 << (uint(i) % 8)
		}
	}
	if err := s.conn.Send(packed); err != nil {
		return fmt.Errorf("core: argmax send: %w", err)
	}
	return nil
}

// indexBits returns the index width for n candidates.
func indexBits(n int) uint {
	if n <= 1 {
		return 1
	}
	return uint(bits.Len(uint(n - 1)))
}
