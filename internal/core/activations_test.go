package core

import (
	"sync"
	"testing"

	"abnn2/internal/prg"
	"abnn2/internal/ring"
)

func runSquare(t *testing.T, rg ring.Ring, ys []int64) []int64 {
	t.Helper()
	cn, sn, _, done := nonlinearPair(t, rg)
	defer done()
	rng := prg.New(prg.SeedFromInt(55))
	n := len(ys)
	y0 := make(ring.Vec, n)
	y1 := make(ring.Vec, n)
	z1 := rng.Vec(rg, n)
	for i, y := range ys {
		y1[i] = rng.Elem(rg)
		y0[i] = rg.Sub(rg.FromSigned(y), y1[i])
	}
	var (
		cerr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		cerr = cn.SquareClient(y1, z1)
	}()
	z0, serr := sn.SquareServer(y0)
	wg.Wait()
	if cerr != nil || serr != nil {
		t.Fatalf("square: %v %v", cerr, serr)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = rg.Signed(rg.Add(z0[i], z1[i]))
	}
	return out
}

func TestSquareActivation(t *testing.T) {
	rg := ring.New(16)
	ys := []int64{0, 1, -1, 7, -7, 100, -100, 181} // 181^2 = 32761 < 2^15
	got := runSquare(t, rg, ys)
	for i, y := range ys {
		want := rg.Signed(rg.FromSigned(y * y))
		if got[i] != want {
			t.Errorf("square(%d) = %d, want %d", y, got[i], want)
		}
	}
}

// Squaring wraps mod 2^l exactly like ring multiplication does.
func TestSquareWrapsModRing(t *testing.T) {
	rg := ring.New(8)
	ys := []int64{20, -20, 127} // 400 mod 256 = 144 -> signed -112
	got := runSquare(t, rg, ys)
	for i, y := range ys {
		want := rg.Signed(rg.Mul(rg.FromSigned(y), rg.FromSigned(y)))
		if got[i] != want {
			t.Errorf("square(%d) mod 256 = %d, want %d", y, got[i], want)
		}
	}
}

func TestSquareChunkBoundary(t *testing.T) {
	rg := ring.New(8)
	n := squareChunk + 5
	ys := make([]int64, n)
	for i := range ys {
		ys[i] = int64(i%23 - 11)
	}
	got := runSquare(t, rg, ys)
	for i, y := range ys {
		want := rg.Signed(rg.Mul(rg.FromSigned(y), rg.FromSigned(y)))
		if got[i] != want {
			t.Fatalf("square[%d](%d) = %d, want %d", i, y, got[i], want)
		}
	}
}

func TestSquareLengthMismatch(t *testing.T) {
	cn, _, _, done := nonlinearPair(t, ring.New(16))
	defer done()
	if err := cn.SquareClient(make(ring.Vec, 2), make(ring.Vec, 1)); err == nil {
		t.Error("length mismatch accepted")
	}
}
