package core

import (
	"fmt"
	"testing"

	"abnn2/internal/quant"
	"abnn2/internal/ring"
)

// TestInferenceEdgeBitwidths drives the full secure pipeline through
// the paper's "arbitrary bitwidth" claim at the ring edges: the
// smallest supported ring (l=8), a deliberately odd non-power-of-two
// width (l=33), and the largest (l=64, where the modular mask is all
// ones). Every scheme family crosses every width, in both the one-batch
// (batch=1, correlated-OT) and multi-batch (batch=3) triplet modes, and
// must match the plaintext quantized reference bit-exactly — the secure
// protocol computes in the same ring as the reference, so even l=8
// agrees despite overflow wraparound.
func TestInferenceEdgeBitwidths(t *testing.T) {
	schemes := []quant.Scheme{
		quant.Binary(),
		quant.Ternary(),
		quant.Uniform(2, 4), // "8(2,2,2,2)"
	}
	for _, bits := range []uint{8, 33, 64} {
		for _, sc := range schemes {
			sc := sc
			bits := bits
			t.Run(fmt.Sprintf("l=%d/%s", bits, sc.Name()), func(t *testing.T) {
				t.Parallel()
				qm := buildTestModel(t, sc)
				p := Params{Ring: ring.New(bits), Scheme: sc}
				for _, batch := range []int{1, 3} {
					runInference(t, qm, p, ReLUGC, batch)
				}
			})
		}
	}
}

// TestInferenceEdgeBitwidthsOptimizedReLU spot-checks the sign-bit ReLU
// protocol at the two extreme widths (the sign lives in the top bit, so
// the mask arithmetic differs most at l=8 and l=64).
func TestInferenceEdgeBitwidthsOptimizedReLU(t *testing.T) {
	for _, bits := range []uint{8, 64} {
		bits := bits
		t.Run(fmt.Sprintf("l=%d", bits), func(t *testing.T) {
			t.Parallel()
			sc := quant.Uniform(2, 4)
			qm := buildTestModel(t, sc)
			p := Params{Ring: ring.New(bits), Scheme: sc}
			runInference(t, qm, p, ReLUOptimized, 1)
		})
	}
}
